# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/flash_test[1]_include.cmake")
include("/root/repo/build/tests/controller_test[1]_include.cmake")
include("/root/repo/build/tests/page_ftl_test[1]_include.cmake")
include("/root/repo/build/tests/legacy_ftl_test[1]_include.cmake")
include("/root/repo/build/tests/dftl_test[1]_include.cmake")
include("/root/repo/build/tests/device_test[1]_include.cmake")
include("/root/repo/build/tests/blocklayer_test[1]_include.cmake")
include("/root/repo/build/tests/pcm_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/db_test[1]_include.cmake")
include("/root/repo/build/tests/storage_manager_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/crash_property_test[1]_include.cmake")
include("/root/repo/build/tests/log_store_test[1]_include.cmake")
