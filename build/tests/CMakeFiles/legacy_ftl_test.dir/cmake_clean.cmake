file(REMOVE_RECURSE
  "CMakeFiles/legacy_ftl_test.dir/legacy_ftl_test.cc.o"
  "CMakeFiles/legacy_ftl_test.dir/legacy_ftl_test.cc.o.d"
  "legacy_ftl_test"
  "legacy_ftl_test.pdb"
  "legacy_ftl_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/legacy_ftl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
