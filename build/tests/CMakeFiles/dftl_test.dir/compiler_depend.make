# Empty compiler generated dependencies file for dftl_test.
# This may be replaced when dependencies are built.
