file(REMOVE_RECURSE
  "CMakeFiles/dftl_test.dir/dftl_test.cc.o"
  "CMakeFiles/dftl_test.dir/dftl_test.cc.o.d"
  "dftl_test"
  "dftl_test.pdb"
  "dftl_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dftl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
