file(REMOVE_RECURSE
  "CMakeFiles/blocklayer_test.dir/blocklayer_test.cc.o"
  "CMakeFiles/blocklayer_test.dir/blocklayer_test.cc.o.d"
  "blocklayer_test"
  "blocklayer_test.pdb"
  "blocklayer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blocklayer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
