# Empty dependencies file for blocklayer_test.
# This may be replaced when dependencies are built.
