file(REMOVE_RECURSE
  "CMakeFiles/page_ftl_test.dir/page_ftl_test.cc.o"
  "CMakeFiles/page_ftl_test.dir/page_ftl_test.cc.o.d"
  "page_ftl_test"
  "page_ftl_test.pdb"
  "page_ftl_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/page_ftl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
