file(REMOVE_RECURSE
  "CMakeFiles/ssd_inspector.dir/ssd_inspector.cpp.o"
  "CMakeFiles/ssd_inspector.dir/ssd_inspector.cpp.o.d"
  "ssd_inspector"
  "ssd_inspector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssd_inspector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
