# Empty dependencies file for ssd_inspector.
# This may be replaced when dependencies are built.
