# Empty compiler generated dependencies file for uflip_explorer.
# This may be replaced when dependencies are built.
