file(REMOVE_RECURSE
  "CMakeFiles/uflip_explorer.dir/uflip_explorer.cpp.o"
  "CMakeFiles/uflip_explorer.dir/uflip_explorer.cpp.o.d"
  "uflip_explorer"
  "uflip_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uflip_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
