file(REMOVE_RECURSE
  "CMakeFiles/bench_intro_hdd_vs_ssd.dir/bench_intro_hdd_vs_ssd.cc.o"
  "CMakeFiles/bench_intro_hdd_vs_ssd.dir/bench_intro_hdd_vs_ssd.cc.o.d"
  "bench_intro_hdd_vs_ssd"
  "bench_intro_hdd_vs_ssd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_intro_hdd_vs_ssd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
