# Empty compiler generated dependencies file for bench_intro_hdd_vs_ssd.
# This may be replaced when dependencies are built.
