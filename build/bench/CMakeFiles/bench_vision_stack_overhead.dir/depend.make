# Empty dependencies file for bench_vision_stack_overhead.
# This may be replaced when dependencies are built.
