file(REMOVE_RECURSE
  "CMakeFiles/bench_vision_stack_overhead.dir/bench_vision_stack_overhead.cc.o"
  "CMakeFiles/bench_vision_stack_overhead.dir/bench_vision_stack_overhead.cc.o.d"
  "bench_vision_stack_overhead"
  "bench_vision_stack_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_vision_stack_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
