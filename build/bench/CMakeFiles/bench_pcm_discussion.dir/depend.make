# Empty dependencies file for bench_pcm_discussion.
# This may be replaced when dependencies are built.
