file(REMOVE_RECURSE
  "CMakeFiles/bench_pcm_discussion.dir/bench_pcm_discussion.cc.o"
  "CMakeFiles/bench_pcm_discussion.dir/bench_pcm_discussion.cc.o.d"
  "bench_pcm_discussion"
  "bench_pcm_discussion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pcm_discussion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
