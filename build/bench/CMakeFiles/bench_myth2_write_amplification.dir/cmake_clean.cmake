file(REMOVE_RECURSE
  "CMakeFiles/bench_myth2_write_amplification.dir/bench_myth2_write_amplification.cc.o"
  "CMakeFiles/bench_myth2_write_amplification.dir/bench_myth2_write_amplification.cc.o.d"
  "bench_myth2_write_amplification"
  "bench_myth2_write_amplification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_myth2_write_amplification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
