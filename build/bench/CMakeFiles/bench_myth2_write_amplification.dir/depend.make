# Empty dependencies file for bench_myth2_write_amplification.
# This may be replaced when dependencies are built.
