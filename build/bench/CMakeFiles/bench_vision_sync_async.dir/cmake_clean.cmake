file(REMOVE_RECURSE
  "CMakeFiles/bench_vision_sync_async.dir/bench_vision_sync_async.cc.o"
  "CMakeFiles/bench_vision_sync_async.dir/bench_vision_sync_async.cc.o.d"
  "bench_vision_sync_async"
  "bench_vision_sync_async.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_vision_sync_async.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
