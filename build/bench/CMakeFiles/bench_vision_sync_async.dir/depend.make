# Empty dependencies file for bench_vision_sync_async.
# This may be replaced when dependencies are built.
