# Empty dependencies file for bench_myth3_reads_vs_writes.
# This may be replaced when dependencies are built.
