file(REMOVE_RECURSE
  "CMakeFiles/bench_myth3_reads_vs_writes.dir/bench_myth3_reads_vs_writes.cc.o"
  "CMakeFiles/bench_myth3_reads_vs_writes.dir/bench_myth3_reads_vs_writes.cc.o.d"
  "bench_myth3_reads_vs_writes"
  "bench_myth3_reads_vs_writes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_myth3_reads_vs_writes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
