# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for bench_myth3_reads_vs_writes.
