# Empty dependencies file for bench_fig2_gc_interference.
# This may be replaced when dependencies are built.
