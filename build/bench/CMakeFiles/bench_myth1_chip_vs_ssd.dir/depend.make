# Empty dependencies file for bench_myth1_chip_vs_ssd.
# This may be replaced when dependencies are built.
