file(REMOVE_RECURSE
  "CMakeFiles/bench_myth1_chip_vs_ssd.dir/bench_myth1_chip_vs_ssd.cc.o"
  "CMakeFiles/bench_myth1_chip_vs_ssd.dir/bench_myth1_chip_vs_ssd.cc.o.d"
  "bench_myth1_chip_vs_ssd"
  "bench_myth1_chip_vs_ssd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_myth1_chip_vs_ssd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
