# Empty dependencies file for bench_vision_interface.
# This may be replaced when dependencies are built.
