file(REMOVE_RECURSE
  "CMakeFiles/bench_vision_interface.dir/bench_vision_interface.cc.o"
  "CMakeFiles/bench_vision_interface.dir/bench_vision_interface.cc.o.d"
  "bench_vision_interface"
  "bench_vision_interface.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_vision_interface.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
