# Empty compiler generated dependencies file for bench_myth2_rand_vs_seq.
# This may be replaced when dependencies are built.
