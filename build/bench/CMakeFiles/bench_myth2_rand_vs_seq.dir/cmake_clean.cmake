file(REMOVE_RECURSE
  "CMakeFiles/bench_myth2_rand_vs_seq.dir/bench_myth2_rand_vs_seq.cc.o"
  "CMakeFiles/bench_myth2_rand_vs_seq.dir/bench_myth2_rand_vs_seq.cc.o.d"
  "bench_myth2_rand_vs_seq"
  "bench_myth2_rand_vs_seq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_myth2_rand_vs_seq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
