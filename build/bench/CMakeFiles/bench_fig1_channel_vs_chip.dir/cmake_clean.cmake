file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_channel_vs_chip.dir/bench_fig1_channel_vs_chip.cc.o"
  "CMakeFiles/bench_fig1_channel_vs_chip.dir/bench_fig1_channel_vs_chip.cc.o.d"
  "bench_fig1_channel_vs_chip"
  "bench_fig1_channel_vs_chip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_channel_vs_chip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
