# Empty compiler generated dependencies file for bench_fig1_channel_vs_chip.
# This may be replaced when dependencies are built.
