file(REMOVE_RECURSE
  "libpb_blocklayer.a"
)
