
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/blocklayer/block_layer.cc" "src/CMakeFiles/pb_blocklayer.dir/blocklayer/block_layer.cc.o" "gcc" "src/CMakeFiles/pb_blocklayer.dir/blocklayer/block_layer.cc.o.d"
  "/root/repo/src/blocklayer/direct_driver.cc" "src/CMakeFiles/pb_blocklayer.dir/blocklayer/direct_driver.cc.o" "gcc" "src/CMakeFiles/pb_blocklayer.dir/blocklayer/direct_driver.cc.o.d"
  "/root/repo/src/blocklayer/io_scheduler.cc" "src/CMakeFiles/pb_blocklayer.dir/blocklayer/io_scheduler.cc.o" "gcc" "src/CMakeFiles/pb_blocklayer.dir/blocklayer/io_scheduler.cc.o.d"
  "/root/repo/src/blocklayer/simple_device.cc" "src/CMakeFiles/pb_blocklayer.dir/blocklayer/simple_device.cc.o" "gcc" "src/CMakeFiles/pb_blocklayer.dir/blocklayer/simple_device.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pb_ssd.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pb_ftl.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pb_flash.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
