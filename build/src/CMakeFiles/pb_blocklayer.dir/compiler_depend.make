# Empty compiler generated dependencies file for pb_blocklayer.
# This may be replaced when dependencies are built.
