file(REMOVE_RECURSE
  "CMakeFiles/pb_blocklayer.dir/blocklayer/block_layer.cc.o"
  "CMakeFiles/pb_blocklayer.dir/blocklayer/block_layer.cc.o.d"
  "CMakeFiles/pb_blocklayer.dir/blocklayer/direct_driver.cc.o"
  "CMakeFiles/pb_blocklayer.dir/blocklayer/direct_driver.cc.o.d"
  "CMakeFiles/pb_blocklayer.dir/blocklayer/io_scheduler.cc.o"
  "CMakeFiles/pb_blocklayer.dir/blocklayer/io_scheduler.cc.o.d"
  "CMakeFiles/pb_blocklayer.dir/blocklayer/simple_device.cc.o"
  "CMakeFiles/pb_blocklayer.dir/blocklayer/simple_device.cc.o.d"
  "libpb_blocklayer.a"
  "libpb_blocklayer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pb_blocklayer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
