file(REMOVE_RECURSE
  "libpb_pcm.a"
)
