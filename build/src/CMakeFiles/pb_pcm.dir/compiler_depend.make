# Empty compiler generated dependencies file for pb_pcm.
# This may be replaced when dependencies are built.
