file(REMOVE_RECURSE
  "CMakeFiles/pb_pcm.dir/pcm/pcm_device.cc.o"
  "CMakeFiles/pb_pcm.dir/pcm/pcm_device.cc.o.d"
  "libpb_pcm.a"
  "libpb_pcm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pb_pcm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
