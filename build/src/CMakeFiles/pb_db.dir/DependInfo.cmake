
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/db/btree.cc" "src/CMakeFiles/pb_db.dir/db/btree.cc.o" "gcc" "src/CMakeFiles/pb_db.dir/db/btree.cc.o.d"
  "/root/repo/src/db/buffer_pool.cc" "src/CMakeFiles/pb_db.dir/db/buffer_pool.cc.o" "gcc" "src/CMakeFiles/pb_db.dir/db/buffer_pool.cc.o.d"
  "/root/repo/src/db/heap_file.cc" "src/CMakeFiles/pb_db.dir/db/heap_file.cc.o" "gcc" "src/CMakeFiles/pb_db.dir/db/heap_file.cc.o.d"
  "/root/repo/src/db/log_store.cc" "src/CMakeFiles/pb_db.dir/db/log_store.cc.o" "gcc" "src/CMakeFiles/pb_db.dir/db/log_store.cc.o.d"
  "/root/repo/src/db/recovery.cc" "src/CMakeFiles/pb_db.dir/db/recovery.cc.o" "gcc" "src/CMakeFiles/pb_db.dir/db/recovery.cc.o.d"
  "/root/repo/src/db/storage_manager.cc" "src/CMakeFiles/pb_db.dir/db/storage_manager.cc.o" "gcc" "src/CMakeFiles/pb_db.dir/db/storage_manager.cc.o.d"
  "/root/repo/src/db/wal.cc" "src/CMakeFiles/pb_db.dir/db/wal.cc.o" "gcc" "src/CMakeFiles/pb_db.dir/db/wal.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pb_pcm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pb_blocklayer.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pb_ssd.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pb_ftl.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pb_flash.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
