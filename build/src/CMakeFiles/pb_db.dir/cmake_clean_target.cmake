file(REMOVE_RECURSE
  "libpb_db.a"
)
