# Empty dependencies file for pb_db.
# This may be replaced when dependencies are built.
