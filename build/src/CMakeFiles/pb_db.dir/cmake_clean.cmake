file(REMOVE_RECURSE
  "CMakeFiles/pb_db.dir/db/btree.cc.o"
  "CMakeFiles/pb_db.dir/db/btree.cc.o.d"
  "CMakeFiles/pb_db.dir/db/buffer_pool.cc.o"
  "CMakeFiles/pb_db.dir/db/buffer_pool.cc.o.d"
  "CMakeFiles/pb_db.dir/db/heap_file.cc.o"
  "CMakeFiles/pb_db.dir/db/heap_file.cc.o.d"
  "CMakeFiles/pb_db.dir/db/log_store.cc.o"
  "CMakeFiles/pb_db.dir/db/log_store.cc.o.d"
  "CMakeFiles/pb_db.dir/db/recovery.cc.o"
  "CMakeFiles/pb_db.dir/db/recovery.cc.o.d"
  "CMakeFiles/pb_db.dir/db/storage_manager.cc.o"
  "CMakeFiles/pb_db.dir/db/storage_manager.cc.o.d"
  "CMakeFiles/pb_db.dir/db/wal.cc.o"
  "CMakeFiles/pb_db.dir/db/wal.cc.o.d"
  "libpb_db.a"
  "libpb_db.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pb_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
