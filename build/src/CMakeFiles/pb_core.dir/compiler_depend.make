# Empty compiler generated dependencies file for pb_core.
# This may be replaced when dependencies are built.
