file(REMOVE_RECURSE
  "CMakeFiles/pb_core.dir/core/atomic_write.cc.o"
  "CMakeFiles/pb_core.dir/core/atomic_write.cc.o.d"
  "CMakeFiles/pb_core.dir/core/hybrid_store.cc.o"
  "CMakeFiles/pb_core.dir/core/hybrid_store.cc.o.d"
  "CMakeFiles/pb_core.dir/core/nameless.cc.o"
  "CMakeFiles/pb_core.dir/core/nameless.cc.o.d"
  "CMakeFiles/pb_core.dir/core/pcm_log.cc.o"
  "CMakeFiles/pb_core.dir/core/pcm_log.cc.o.d"
  "libpb_core.a"
  "libpb_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pb_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
