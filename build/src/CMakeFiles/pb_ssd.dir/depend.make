# Empty dependencies file for pb_ssd.
# This may be replaced when dependencies are built.
