file(REMOVE_RECURSE
  "CMakeFiles/pb_ssd.dir/ssd/channel.cc.o"
  "CMakeFiles/pb_ssd.dir/ssd/channel.cc.o.d"
  "CMakeFiles/pb_ssd.dir/ssd/config.cc.o"
  "CMakeFiles/pb_ssd.dir/ssd/config.cc.o.d"
  "CMakeFiles/pb_ssd.dir/ssd/controller.cc.o"
  "CMakeFiles/pb_ssd.dir/ssd/controller.cc.o.d"
  "CMakeFiles/pb_ssd.dir/ssd/device.cc.o"
  "CMakeFiles/pb_ssd.dir/ssd/device.cc.o.d"
  "CMakeFiles/pb_ssd.dir/ssd/write_buffer.cc.o"
  "CMakeFiles/pb_ssd.dir/ssd/write_buffer.cc.o.d"
  "libpb_ssd.a"
  "libpb_ssd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pb_ssd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
