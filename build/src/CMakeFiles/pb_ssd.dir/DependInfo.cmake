
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ssd/channel.cc" "src/CMakeFiles/pb_ssd.dir/ssd/channel.cc.o" "gcc" "src/CMakeFiles/pb_ssd.dir/ssd/channel.cc.o.d"
  "/root/repo/src/ssd/config.cc" "src/CMakeFiles/pb_ssd.dir/ssd/config.cc.o" "gcc" "src/CMakeFiles/pb_ssd.dir/ssd/config.cc.o.d"
  "/root/repo/src/ssd/controller.cc" "src/CMakeFiles/pb_ssd.dir/ssd/controller.cc.o" "gcc" "src/CMakeFiles/pb_ssd.dir/ssd/controller.cc.o.d"
  "/root/repo/src/ssd/device.cc" "src/CMakeFiles/pb_ssd.dir/ssd/device.cc.o" "gcc" "src/CMakeFiles/pb_ssd.dir/ssd/device.cc.o.d"
  "/root/repo/src/ssd/write_buffer.cc" "src/CMakeFiles/pb_ssd.dir/ssd/write_buffer.cc.o" "gcc" "src/CMakeFiles/pb_ssd.dir/ssd/write_buffer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pb_ftl.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pb_flash.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
