file(REMOVE_RECURSE
  "libpb_ssd.a"
)
