file(REMOVE_RECURSE
  "CMakeFiles/pb_workload.dir/workload/db_trace.cc.o"
  "CMakeFiles/pb_workload.dir/workload/db_trace.cc.o.d"
  "CMakeFiles/pb_workload.dir/workload/patterns.cc.o"
  "CMakeFiles/pb_workload.dir/workload/patterns.cc.o.d"
  "CMakeFiles/pb_workload.dir/workload/zipf.cc.o"
  "CMakeFiles/pb_workload.dir/workload/zipf.cc.o.d"
  "libpb_workload.a"
  "libpb_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pb_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
