# Empty compiler generated dependencies file for pb_workload.
# This may be replaced when dependencies are built.
