
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/db_trace.cc" "src/CMakeFiles/pb_workload.dir/workload/db_trace.cc.o" "gcc" "src/CMakeFiles/pb_workload.dir/workload/db_trace.cc.o.d"
  "/root/repo/src/workload/patterns.cc" "src/CMakeFiles/pb_workload.dir/workload/patterns.cc.o" "gcc" "src/CMakeFiles/pb_workload.dir/workload/patterns.cc.o.d"
  "/root/repo/src/workload/zipf.cc" "src/CMakeFiles/pb_workload.dir/workload/zipf.cc.o" "gcc" "src/CMakeFiles/pb_workload.dir/workload/zipf.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
