file(REMOVE_RECURSE
  "libpb_workload.a"
)
