file(REMOVE_RECURSE
  "libpb_ftl.a"
)
