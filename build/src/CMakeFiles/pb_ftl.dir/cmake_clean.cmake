file(REMOVE_RECURSE
  "CMakeFiles/pb_ftl.dir/ftl/block_ftl.cc.o"
  "CMakeFiles/pb_ftl.dir/ftl/block_ftl.cc.o.d"
  "CMakeFiles/pb_ftl.dir/ftl/dftl.cc.o"
  "CMakeFiles/pb_ftl.dir/ftl/dftl.cc.o.d"
  "CMakeFiles/pb_ftl.dir/ftl/gc_policy.cc.o"
  "CMakeFiles/pb_ftl.dir/ftl/gc_policy.cc.o.d"
  "CMakeFiles/pb_ftl.dir/ftl/hybrid_ftl.cc.o"
  "CMakeFiles/pb_ftl.dir/ftl/hybrid_ftl.cc.o.d"
  "CMakeFiles/pb_ftl.dir/ftl/page_ftl.cc.o"
  "CMakeFiles/pb_ftl.dir/ftl/page_ftl.cc.o.d"
  "CMakeFiles/pb_ftl.dir/ftl/placement.cc.o"
  "CMakeFiles/pb_ftl.dir/ftl/placement.cc.o.d"
  "CMakeFiles/pb_ftl.dir/ftl/wear_leveler.cc.o"
  "CMakeFiles/pb_ftl.dir/ftl/wear_leveler.cc.o.d"
  "libpb_ftl.a"
  "libpb_ftl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pb_ftl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
