# Empty compiler generated dependencies file for pb_ftl.
# This may be replaced when dependencies are built.
