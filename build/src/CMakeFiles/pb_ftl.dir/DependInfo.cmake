
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ftl/block_ftl.cc" "src/CMakeFiles/pb_ftl.dir/ftl/block_ftl.cc.o" "gcc" "src/CMakeFiles/pb_ftl.dir/ftl/block_ftl.cc.o.d"
  "/root/repo/src/ftl/dftl.cc" "src/CMakeFiles/pb_ftl.dir/ftl/dftl.cc.o" "gcc" "src/CMakeFiles/pb_ftl.dir/ftl/dftl.cc.o.d"
  "/root/repo/src/ftl/gc_policy.cc" "src/CMakeFiles/pb_ftl.dir/ftl/gc_policy.cc.o" "gcc" "src/CMakeFiles/pb_ftl.dir/ftl/gc_policy.cc.o.d"
  "/root/repo/src/ftl/hybrid_ftl.cc" "src/CMakeFiles/pb_ftl.dir/ftl/hybrid_ftl.cc.o" "gcc" "src/CMakeFiles/pb_ftl.dir/ftl/hybrid_ftl.cc.o.d"
  "/root/repo/src/ftl/page_ftl.cc" "src/CMakeFiles/pb_ftl.dir/ftl/page_ftl.cc.o" "gcc" "src/CMakeFiles/pb_ftl.dir/ftl/page_ftl.cc.o.d"
  "/root/repo/src/ftl/placement.cc" "src/CMakeFiles/pb_ftl.dir/ftl/placement.cc.o" "gcc" "src/CMakeFiles/pb_ftl.dir/ftl/placement.cc.o.d"
  "/root/repo/src/ftl/wear_leveler.cc" "src/CMakeFiles/pb_ftl.dir/ftl/wear_leveler.cc.o" "gcc" "src/CMakeFiles/pb_ftl.dir/ftl/wear_leveler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pb_flash.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
