file(REMOVE_RECURSE
  "CMakeFiles/pb_common.dir/common/histogram.cc.o"
  "CMakeFiles/pb_common.dir/common/histogram.cc.o.d"
  "CMakeFiles/pb_common.dir/common/rng.cc.o"
  "CMakeFiles/pb_common.dir/common/rng.cc.o.d"
  "CMakeFiles/pb_common.dir/common/stats.cc.o"
  "CMakeFiles/pb_common.dir/common/stats.cc.o.d"
  "CMakeFiles/pb_common.dir/common/table.cc.o"
  "CMakeFiles/pb_common.dir/common/table.cc.o.d"
  "libpb_common.a"
  "libpb_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pb_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
