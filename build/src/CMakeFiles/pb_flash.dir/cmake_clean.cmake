file(REMOVE_RECURSE
  "CMakeFiles/pb_flash.dir/flash/address.cc.o"
  "CMakeFiles/pb_flash.dir/flash/address.cc.o.d"
  "CMakeFiles/pb_flash.dir/flash/chip.cc.o"
  "CMakeFiles/pb_flash.dir/flash/chip.cc.o.d"
  "CMakeFiles/pb_flash.dir/flash/error_model.cc.o"
  "CMakeFiles/pb_flash.dir/flash/error_model.cc.o.d"
  "CMakeFiles/pb_flash.dir/flash/page_store.cc.o"
  "CMakeFiles/pb_flash.dir/flash/page_store.cc.o.d"
  "libpb_flash.a"
  "libpb_flash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pb_flash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
