file(REMOVE_RECURSE
  "libpb_flash.a"
)
