
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/flash/address.cc" "src/CMakeFiles/pb_flash.dir/flash/address.cc.o" "gcc" "src/CMakeFiles/pb_flash.dir/flash/address.cc.o.d"
  "/root/repo/src/flash/chip.cc" "src/CMakeFiles/pb_flash.dir/flash/chip.cc.o" "gcc" "src/CMakeFiles/pb_flash.dir/flash/chip.cc.o.d"
  "/root/repo/src/flash/error_model.cc" "src/CMakeFiles/pb_flash.dir/flash/error_model.cc.o" "gcc" "src/CMakeFiles/pb_flash.dir/flash/error_model.cc.o.d"
  "/root/repo/src/flash/page_store.cc" "src/CMakeFiles/pb_flash.dir/flash/page_store.cc.o" "gcc" "src/CMakeFiles/pb_flash.dir/flash/page_store.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/pb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
