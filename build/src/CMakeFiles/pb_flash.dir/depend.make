# Empty dependencies file for pb_flash.
# This may be replaced when dependencies are built.
