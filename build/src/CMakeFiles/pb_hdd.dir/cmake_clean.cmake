file(REMOVE_RECURSE
  "CMakeFiles/pb_hdd.dir/hdd/hdd.cc.o"
  "CMakeFiles/pb_hdd.dir/hdd/hdd.cc.o.d"
  "libpb_hdd.a"
  "libpb_hdd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pb_hdd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
