# Empty compiler generated dependencies file for pb_hdd.
# This may be replaced when dependencies are built.
