file(REMOVE_RECURSE
  "libpb_hdd.a"
)
