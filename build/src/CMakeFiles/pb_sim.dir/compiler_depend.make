# Empty compiler generated dependencies file for pb_sim.
# This may be replaced when dependencies are built.
