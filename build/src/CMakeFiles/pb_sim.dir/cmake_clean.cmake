file(REMOVE_RECURSE
  "CMakeFiles/pb_sim.dir/sim/completion.cc.o"
  "CMakeFiles/pb_sim.dir/sim/completion.cc.o.d"
  "CMakeFiles/pb_sim.dir/sim/event_queue.cc.o"
  "CMakeFiles/pb_sim.dir/sim/event_queue.cc.o.d"
  "CMakeFiles/pb_sim.dir/sim/resource.cc.o"
  "CMakeFiles/pb_sim.dir/sim/resource.cc.o.d"
  "CMakeFiles/pb_sim.dir/sim/simulator.cc.o"
  "CMakeFiles/pb_sim.dir/sim/simulator.cc.o.d"
  "libpb_sim.a"
  "libpb_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pb_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
