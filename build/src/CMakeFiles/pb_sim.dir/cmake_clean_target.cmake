file(REMOVE_RECURSE
  "libpb_sim.a"
)
