// Trace-overhead benchmark: what does the cross-layer latency
// attribution subsystem (src/trace/) cost the simulator?
//
// The same fig2-style GC-interference workload (aged device, concurrent
// random writes, random reads) runs three ways:
//
//   untraced  no Tracer attached          (the pre-trace hot path)
//   disabled  Tracer attached, disabled   (what every normal run pays:
//                                          a pointer test per hook)
//   enabled   Tracer attached, recording  (full span capture)
//
// All three must be *simulation-identical*: same final sim time, same
// IO count, same GC work — tracing observes the schedule, it must never
// perturb it. The bench asserts that, prints wall-clock overheads, and
// emits BENCH_trace_overhead.json for the scripts/check_perf.sh gate
// (disabled overhead <= 2%).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "common/table.h"
#include "trace/tracer.h"
#include "workload/patterns.h"

namespace postblock {
namespace {

enum class Mode { kUntraced, kDisabled, kEnabled };

const char* ModeName(Mode m) {
  switch (m) {
    case Mode::kUntraced:
      return "untraced";
    case Mode::kDisabled:
      return "disabled";
    case Mode::kEnabled:
      return "enabled";
  }
  return "?";
}

ssd::Config DeviceConfig() {
  ssd::Config c = ssd::Config::Consumer2012();
  c.over_provisioning = 0.10;
  return c;
}

struct RunOut {
  double seconds = 0;       // wall clock of the whole run
  SimTime sim_end = 0;      // deterministic: must match across modes
  std::uint64_t ios = 0;    // completed device requests
  std::uint64_t gc_moves = 0;
  std::uint64_t events = 0;   // trace events recorded (enabled only)
  std::uint64_t dropped = 0;  // ring overwrites (enabled only)
};

RunOut RunOnce(Mode mode, trace::Tracer* tracer) {
  const auto wall_start = std::chrono::steady_clock::now();

  sim::Simulator sim;
  ssd::Config config = DeviceConfig();
  config.tracer = mode == Mode::kUntraced ? nullptr : tracer;
  ssd::Device device(&sim, config);
  const std::uint64_t n = device.num_blocks();

  bench::FillSequential(&sim, &device, n);
  workload::RandomPattern churn(0, n, /*is_write=*/true, 1, 99);
  bench::Precondition(&sim, &device, &churn, 2 * n);

  // Concurrent QD2 random-write stream (keeps GC live during reads).
  auto stop = std::make_shared<bool>(false);
  auto writer_pattern = std::make_shared<workload::RandomPattern>(
      0, n, /*is_write=*/true, 1, 7);
  auto issue = std::make_shared<std::function<void()>>();
  *issue = [&sim, &device, stop, writer_pattern, issue]() {
    if (*stop) return;
    const workload::IoDesc d = writer_pattern->Next();
    blocklayer::IoRequest w;
    w.op = blocklayer::IoOp::kWrite;
    w.lba = d.lba;
    w.nblocks = 1;
    w.tokens = {1};
    w.on_complete = [issue, stop](const blocklayer::IoResult&) {
      if (!*stop) (*issue)();
    };
    device.Submit(std::move(w));
  };
  (*issue)();
  (*issue)();

  workload::RandomPattern reads(0, n, false, 1, 8);
  (void)workload::RunClosedLoop(&sim, &device, &reads, 20000, 4);
  *stop = true;
  *issue = nullptr;  // break the self-reference
  sim.Run();

  RunOut out;
  out.seconds = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - wall_start)
                    .count();
  out.sim_end = sim.Now();
  out.ios = device.counters().Get("completions");
  out.gc_moves = device.ftl()->counters().Get("gc_page_moves");
  if (mode == Mode::kEnabled && tracer != nullptr) {
    out.events = tracer->total_recorded();
    out.dropped = tracer->dropped();
  }
  return out;
}

}  // namespace
}  // namespace postblock

int main() {
  using namespace postblock;
  bench::Banner(
      "trace_overhead", "latency-attribution cost over the fig2 workload",
      "attribution must be free when disabled (<= 2% wall clock) and "
      "must never perturb the simulated schedule");

  constexpr int kReps = 5;
  const Mode kModes[] = {Mode::kUntraced, Mode::kDisabled, Mode::kEnabled};

  // best-of-N per mode; the in-rep order rotates so no mode always runs
  // first (allocator warm-up and frequency drift would otherwise bias
  // whichever mode is measured earliest).
  double best[3] = {1e30, 1e30, 1e30};
  RunOut last[3];
  for (int rep = 0; rep < kReps; ++rep) {
    for (int i = 0; i < 3; ++i) {
      const int m = (i + rep) % 3;
      trace::Tracer tracer(1 << 16);
      tracer.set_enabled(kModes[m] == Mode::kEnabled);
      const RunOut out = RunOnce(kModes[m], &tracer);
      best[m] = std::min(best[m], out.seconds);
      last[m] = out;
    }
  }

  // Determinism: tracing must observe, never perturb.
  bool identical = true;
  for (int m = 1; m < 3; ++m) {
    if (last[m].sim_end != last[0].sim_end ||
        last[m].ios != last[0].ios ||
        last[m].gc_moves != last[0].gc_moves) {
      identical = false;
      std::printf(
          "DETERMINISM VIOLATION: %s run diverged from untraced "
          "(sim_end %llu vs %llu, ios %llu vs %llu, gc_moves %llu vs "
          "%llu)\n",
          ModeName(kModes[m]),
          static_cast<unsigned long long>(last[m].sim_end),
          static_cast<unsigned long long>(last[0].sim_end),
          static_cast<unsigned long long>(last[m].ios),
          static_cast<unsigned long long>(last[0].ios),
          static_cast<unsigned long long>(last[m].gc_moves),
          static_cast<unsigned long long>(last[0].gc_moves));
    }
  }

  const double disabled_ovh = best[1] / best[0] - 1.0;
  const double enabled_ovh = best[2] / best[0] - 1.0;

  Table table({"mode", "best wall s", "overhead", "sim_end ns", "ios",
               "trace events", "ring dropped"});
  const double ovh[3] = {0.0, disabled_ovh, enabled_ovh};
  for (int m = 0; m < 3; ++m) {
    table.AddRow({ModeName(kModes[m]), Table::Num(best[m], 3),
                  Table::Num(ovh[m] * 100.0, 2) + "%",
                  Table::Int(last[m].sim_end), Table::Int(last[m].ios),
                  Table::Int(last[m].events),
                  Table::Int(last[m].dropped)});
  }
  table.Print();

  std::FILE* f = std::fopen("BENCH_trace_overhead.json", "w");
  if (f != nullptr) {
    const ssd::Config config = DeviceConfig();
    std::fprintf(f, "{\n");
    bench::WriteJsonMeta(f, &config);
    std::fprintf(f,
                 "  \"untraced\": {\"seconds\": %.4f},\n"
                 "  \"disabled\": {\"seconds\": %.4f, "
                 "\"overhead_vs_untraced\": %.4f},\n"
                 "  \"enabled\": {\"seconds\": %.4f, "
                 "\"overhead_vs_untraced\": %.4f, \"events\": %llu, "
                 "\"dropped\": %llu},\n"
                 "  \"deterministic\": %s\n}\n",
                 best[0], best[1], disabled_ovh, best[2], enabled_ovh,
                 static_cast<unsigned long long>(last[2].events),
                 static_cast<unsigned long long>(last[2].dropped),
                 identical ? "true" : "false");
    std::fclose(f);
    std::printf("\nwrote BENCH_trace_overhead.json\n");
  }

  if (!identical) return 1;
  std::printf(
      "shape check: disabled overhead %.2f%% (gate: <= 2%%), enabled "
      "%.2f%%; all three runs simulation-identical.\n",
      disabled_ovh * 100.0, enabled_ovh * 100.0);
  return 0;
}
