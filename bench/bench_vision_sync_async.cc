// E7 — Section 3, principle 1: "synchronous patterns (log writes,
// buffer steals under memory pressure) should be directed to PCM-based
// SSDs via non-volatile memory accesses from the CPU, while
// asynchronous patterns ... should be directed to flash-based SSDs."
//
// The same KV storage manager runs over the same simulated SSD in both
// wirings; only the architecture differs. We report transaction commit
// latency and throughput for a commit-heavy OLTP mix, plus read
// latency to show the async path is unharmed.

#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "common/table.h"
#include "db/storage_manager.h"
#include "workload/db_trace.h"

namespace postblock {
namespace {

struct Result {
  Histogram commit;
  double txn_per_sec = 0;
  Histogram get_latency;
  std::uint64_t padded_bytes = 0;
};

Result RunDbWorkload(db::Wiring wiring, std::size_t txns) {
  sim::Simulator sim;
  ssd::Config ssd_cfg = ssd::Config::Consumer2012();
  ssd_cfg.write_buffer.pages = 256;
  ssd::Device device(&sim, ssd_cfg);
  db::StorageConfig cfg;
  cfg.wiring = wiring;
  db::StorageManager manager(&sim, &device, cfg);

  bool ready = false;
  manager.Bootstrap([&](Status) { ready = true; });
  sim.RunUntilPredicate([&] { return ready; });

  workload::DbTraceConfig trace_cfg;
  trace_cfg.key_space = 20000;
  trace_cfg.put_fraction = 0.6;
  workload::DbTrace trace(trace_cfg);

  Result result;
  const SimTime start = sim.Now();
  for (std::size_t i = 0; i < txns; ++i) {
    const workload::KvOp op = trace.Next();
    bool fired = false;
    if (op.kind == workload::KvOp::Kind::kGet) {
      const SimTime t0 = sim.Now();
      manager.Get(op.key, [&](StatusOr<std::uint64_t>) {
        result.get_latency.Record(sim.Now() - t0);
        fired = true;
      });
    } else if (op.kind == workload::KvOp::Kind::kPut) {
      manager.Put(op.key, op.value, [&](Status) { fired = true; });
    } else {
      manager.Delete(op.key, [&](Status) { fired = true; });
    }
    sim.RunUntilPredicate([&] { return fired; });
  }
  const SimTime elapsed = sim.Now() - start;
  result.commit = manager.commit_latency();
  result.txn_per_sec =
      static_cast<double>(txns) * 1e9 / static_cast<double>(elapsed);
  result.padded_bytes = manager.store()->counters().Get("sync_padded_bytes");
  return result;
}

}  // namespace
}  // namespace postblock

int main() {
  using namespace postblock;
  bench::Banner(
      "E7", "Section 3 principle 1 — sync->PCM, async->flash",
      "routing WAL commits to PCM over the memory bus cuts commit "
      "latency by orders of magnitude vs WAL-on-SSD-behind-the-block-"
      "interface, and lifts whole-workload throughput; reads are "
      "untouched");

  Table table({"wiring", "commit p50", "commit p99", "commit mean",
               "ops/s", "get p50", "WAL pad waste"});
  for (auto wiring : {db::Wiring::kClassic, db::Wiring::kVision}) {
    const auto r = RunDbWorkload(wiring, 4000);
    table.AddRow(
        {db::WiringName(wiring), Table::Time(r.commit.P50()),
         Table::Time(r.commit.P99()),
         Table::Time(static_cast<SimTime>(r.commit.Mean())),
         Table::Num(r.txn_per_sec, 0), Table::Time(r.get_latency.P50()),
         std::to_string(r.padded_bytes / 1024) + " KiB"});
  }
  table.Print();
  std::printf(
      "\nshape check: vision commit p50 is hundreds of ns (a PCM line "
      "store) vs hundreds of us classic (page program + flush through "
      "the block layer) — a 2-3 order-of-magnitude gap; throughput "
      "follows since the workload is commit-bound; the classic WAL also "
      "burns a 4 KiB block per tiny record (pad waste).\n");
  return 0;
}
