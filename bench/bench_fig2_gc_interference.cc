// E2 — Figure 2: the controller's GC and wear-leveling modules share
// chips and channels with host IO, so background reclamation surfaces
// as foreground latency ("the garbage collection and wear leveling
// operations thus interfere with the IOs submitted by the
// applications").
//
// We measure the *same read-only workload* three ways: on an idle
// device, concurrently with a write stream on a fresh device (programs
// queue ahead of reads), and concurrently with a write stream on an
// aged device (programs + GC relocations + 2ms erases queue ahead of
// reads).

#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "common/table.h"
#include "workload/patterns.h"

namespace postblock {
namespace {

ssd::Config DeviceConfig() {
  ssd::Config c = ssd::Config::Consumer2012();
  c.over_provisioning = 0.10;
  return c;
}

struct Observation {
  workload::RunResult reads;
  std::uint64_t gc_moves = 0;
  std::uint64_t gc_erases = 0;
  double wa = 0;
};

Observation Measure(bool aged, bool concurrent_writes) {
  sim::Simulator sim;
  ssd::Device device(&sim, DeviceConfig());
  const std::uint64_t n = device.num_blocks();

  bench::FillSequential(&sim, &device, n);
  if (aged) {
    workload::RandomPattern churn(0, n, /*is_write=*/true, 1, 99);
    bench::Precondition(&sim, &device, &churn, 2 * n);
  }
  const std::uint64_t base_moves =
      device.ftl()->counters().Get("gc_page_moves");
  const std::uint64_t base_erases =
      device.ftl()->counters().Get("gc_erases");

  // Background writer: a continuous QD2 random-write stream that runs
  // for as long as the read measurement does.
  auto stop = std::make_shared<bool>(false);
  auto writer_pattern = std::make_shared<workload::RandomPattern>(
      0, n, /*is_write=*/true, 1, 7);
  auto issue = std::make_shared<std::function<void()>>();
  *issue = [&sim, &device, stop, writer_pattern, issue]() {
    if (*stop) return;
    const workload::IoDesc d = writer_pattern->Next();
    blocklayer::IoRequest w;
    w.op = blocklayer::IoOp::kWrite;
    w.lba = d.lba;
    w.nblocks = 1;
    w.tokens = {1};
    w.on_complete = [issue, stop](const blocklayer::IoResult&) {
      if (!*stop) (*issue)();
    };
    device.Submit(std::move(w));
  };
  if (concurrent_writes) {
    (*issue)();
    (*issue)();
  }

  Observation out;
  workload::RandomPattern reads(0, n, false, 1, 8);
  out.reads = workload::RunClosedLoop(&sim, &device, &reads, 20000, 4);
  *stop = true;
  *issue = nullptr;  // break the self-reference
  sim.Run();

  out.gc_moves = device.ftl()->counters().Get("gc_page_moves") - base_moves;
  out.gc_erases = device.ftl()->counters().Get("gc_erases") - base_erases;
  out.wa = device.WriteAmplification();
  return out;
}

}  // namespace
}  // namespace postblock

int main() {
  using namespace postblock;
  bench::Banner(
      "E2", "Figure 2 — GC/WL interference with host IO",
      "identical random reads slow down when writes — and the GC/WL "
      "traffic they induce on an aged device — share the LUNs and "
      "channels: the read tail absorbs programs and 2ms erases");

  Table table({"scenario", "read p50", "read p99", "read max",
               "read IOPS", "gc moves during run", "gc erases", "WA"});
  struct Scenario {
    const char* name;
    bool aged;
    bool writes;
  };
  for (const Scenario s :
       {Scenario{"reads alone (idle device)", false, false},
        Scenario{"reads + write stream (fresh)", false, true},
        Scenario{"reads + write stream (aged, GC active)", true, true}}) {
    const auto o = Measure(s.aged, s.writes);
    table.AddRow({s.name, Table::Time(o.reads.latency.P50()),
                  Table::Time(o.reads.latency.P99()),
                  Table::Time(o.reads.latency.max()),
                  Table::Num(o.reads.Iops(), 0), Table::Int(o.gc_moves),
                  Table::Int(o.gc_erases), Table::Num(o.wa, 2)});
  }
  table.Print();
  std::printf(
      "\nshape check: each added background component (programs, then "
      "GC moves + erases) pushes the read tail out; p99 grows from "
      "~transfer-bound to program/erase-bound.\n");
  return 0;
}
