// E1 — Figure 1: channel-bound reads vs chip-bound writes.
//
// One channel, four LUNs (the figure's configuration). Parallel reads
// serialize on the shared bus; parallel programs overlap their long
// array phases. We reproduce the figure as (a) a timeline of the 4-op
// case and (b) a parallelism sweep showing where each op type saturates.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/table.h"
#include "sim/simulator.h"
#include "ssd/config.h"
#include "ssd/controller.h"

namespace postblock {
namespace {

ssd::Config Fig1Config(std::uint32_t luns) {
  ssd::Config c;
  c.geometry.channels = 1;
  c.geometry.luns_per_channel = luns;
  c.geometry.planes_per_lun = 1;
  c.geometry.blocks_per_plane = 8;
  c.geometry.pages_per_block = 32;
  c.timing = flash::Timing::Mlc();
  return c;
}

struct ParallelResult {
  SimTime makespan = 0;
  std::vector<SimTime> completions;
};

ParallelResult RunParallel(bool writes, std::uint32_t n) {
  sim::Simulator sim;
  ssd::Controller controller(&sim, Fig1Config(n));
  if (!writes) {
    // Reads need data on flash first.
    for (std::uint32_t lun = 0; lun < n; ++lun) {
      controller.ProgramPage(flash::Ppa{0, lun, 0, 0, 0},
                             flash::PageData{lun, 1, lun, 0},
                             [](Status) {});
    }
    sim.Run();
  }
  const SimTime start = sim.Now();
  ParallelResult result;
  for (std::uint32_t lun = 0; lun < n; ++lun) {
    if (writes) {
      controller.ProgramPage(
          flash::Ppa{0, lun, 0, writes ? 1u : 0u, 0}, flash::PageData{},
          [&](Status) { result.completions.push_back(sim.Now() - start); });
    } else {
      controller.ReadPage(flash::Ppa{0, lun, 0, 0, 0},
                          [&](StatusOr<flash::PageData>) {
                            result.completions.push_back(sim.Now() - start);
                          });
    }
  }
  sim.Run();
  result.makespan = result.completions.back();
  return result;
}

}  // namespace
}  // namespace postblock

int main() {
  using namespace postblock;
  bench::Banner(
      "E1", "Figure 1 — channel transfer vs chip operations",
      "four parallel reads on one channel are channel-bound (transfers "
      "serialize); four parallel writes are chip-bound (programs "
      "overlap) — writes scale near-linearly with LUNs, reads don't");

  const flash::Timing t = flash::Timing::Mlc();
  const SimTime xfer = t.TransferNs(4096);
  const SimTime array_read = t.cmd_ns + t.read_ns;
  std::printf("timing: array read %s, program %s, page transfer %s\n",
              Table::Time(array_read).c_str(),
              Table::Time(t.program_ns).c_str(),
              Table::Time(xfer).c_str());

  bench::Section("timeline, 4 parallel ops on 1 channel x 4 LUNs");
  {
    Table table({"op", "#1 done", "#2 done", "#3 done", "#4 done",
                 "makespan", "serial would be"});
    for (bool writes : {false, true}) {
      const auto r = RunParallel(writes, 4);
      const SimTime serial =
          4 * (writes ? xfer + t.program_ns : array_read + xfer);
      table.AddRow({writes ? "4 writes" : "4 reads",
                    Table::Time(r.completions[0]),
                    Table::Time(r.completions[1]),
                    Table::Time(r.completions[2]),
                    Table::Time(r.completions[3]), Table::Time(r.makespan),
                    Table::Time(serial)});
    }
    table.Print();
  }

  bench::Section("speedup vs LUN count (1 channel)");
  {
    Table table({"LUNs", "read makespan", "read speedup", "write makespan",
                 "write speedup", "bound"});
    const SimTime read_serial_1 = RunParallel(false, 1).makespan;
    const SimTime write_serial_1 = RunParallel(true, 1).makespan;
    for (std::uint32_t n : {1u, 2u, 4u, 8u, 16u}) {
      const auto rr = RunParallel(false, n);
      const auto wr = RunParallel(true, n);
      const double rs = static_cast<double>(read_serial_1) * n /
                        static_cast<double>(rr.makespan);
      const double ws = static_cast<double>(write_serial_1) * n /
                        static_cast<double>(wr.makespan);
      table.AddRow({Table::Int(n), Table::Time(rr.makespan),
                    Table::Num(rs, 2) + "x", Table::Time(wr.makespan),
                    Table::Num(ws, 2) + "x",
                    ws > rs * 1.5 ? "reads: channel / writes: chip"
                                  : "device"});
    }
    table.Print();
  }
  std::printf(
      "\nshape check: write speedup grows ~linearly with LUNs while read "
      "speedup saturates near (array_read+transfer)/transfer = %.1fx.\n",
      static_cast<double>(array_read + xfer) / static_cast<double>(xfer));
  return 0;
}
