// E9 — Section 3, principle 3: "we should seek inspiration in the
// low-latency networking literature ... streamlined execution
// throughout the I/O stack to minimize CPU overhead."
//
// Once the device stops being the latency bottleneck, per-IO kernel
// cost caps IOPS. We sweep the host path — 2012 single-queue block
// layer, a streamlined multiqueue stack, and user-space direct access —
// over queue depth, and separately sweep interrupt vs polled
// completion.

#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "blocklayer/block_layer.h"
#include "blocklayer/direct_driver.h"
#include "blocklayer/simple_device.h"
#include "common/table.h"
#include "workload/patterns.h"

namespace postblock {
namespace {

// A next-generation NVM device fast enough that the host path is the
// bottleneck — the situation the paper says has already arrived.
blocklayer::SimpleDeviceConfig FastNvm() {
  blocklayer::SimpleDeviceConfig cfg;
  cfg.num_blocks = 1 << 20;
  cfg.read_ns = 8 * kMicrosecond;
  cfg.write_ns = 10 * kMicrosecond;
  cfg.units = 64;
  cfg.controller_overhead_ns = 1 * kMicrosecond;
  return cfg;
}

struct PathResult {
  double iops = 0;
  SimTime p50 = 0;
  double cpu_util = 0;
};

PathResult RunPath(const char* path, std::uint32_t qd) {
  sim::Simulator sim;
  blocklayer::SimpleBlockDevice device(&sim, FastNvm());
  const std::uint64_t n = device.num_blocks();

  std::unique_ptr<blocklayer::BlockLayer> layer;
  std::unique_ptr<blocklayer::DirectDriver> direct;
  blocklayer::BlockDevice* front = &device;
  if (std::string(path) == "block layer (2012)") {
    blocklayer::BlockLayerConfig cfg;
    cfg.cpu = blocklayer::CpuCosts::Legacy();
    cfg.nr_queues = 1;
    layer = std::make_unique<blocklayer::BlockLayer>(&sim, &device, cfg);
    front = layer.get();
  } else if (std::string(path) == "multiqueue (blk-mq)") {
    blocklayer::BlockLayerConfig cfg;
    cfg.cpu = blocklayer::CpuCosts::Streamlined();
    cfg.nr_queues = 4;
    layer = std::make_unique<blocklayer::BlockLayer>(&sim, &device, cfg);
    front = layer.get();
  } else if (std::string(path) == "direct (ioMemory-style)") {
    direct = std::make_unique<blocklayer::DirectDriver>(&sim, &device);
    front = direct.get();
  }

  workload::RandomPattern writes(0, n, true, 1, 3);
  const auto r = workload::RunClosedLoop(&sim, front, &writes, 30000, qd);
  PathResult out;
  out.iops = r.Iops();
  out.p50 = r.latency.P50();
  out.cpu_util = layer ? layer->CpuUtilization()
                       : (direct ? direct->CpuUtilization() : 0.0);
  return out;
}

}  // namespace
}  // namespace postblock

int main() {
  using namespace postblock;
  bench::Banner(
      "E9", "Section 3 principle 3 — IO stack CPU overhead caps IOPS",
      "with a fast (cached) device, the legacy block layer's per-IO "
      "submit/schedule/interrupt work becomes the bottleneck; a "
      "streamlined multiqueue stack recovers much of it and user-space "
      "direct access nearly all");

  bench::Section("4KiB random writes on a fast NVM device: IOPS by host path x QD");
  {
    Table table({"host path", "QD1", "QD8", "QD64", "QD256",
                 "cpu util @QD256", "p50 @QD1"});
    for (const char* path : {"raw device", "block layer (2012)",
                             "multiqueue (blk-mq)",
                             "direct (ioMemory-style)"}) {
      std::vector<std::string> row = {path};
      PathResult last{};
      PathResult first{};
      for (std::uint32_t qd : {1u, 8u, 64u, 256u}) {
        const auto r = RunPath(path, qd);
        row.push_back(Table::Num(r.iops, 0));
        last = r;
        if (qd == 1) first = r;
      }
      row.push_back(Table::Num(100 * last.cpu_util, 1) + "%");
      row.push_back(Table::Time(first.p50));
      table.AddRow(row);
    }
    table.Print();
  }

  bench::Section("interrupt vs polled completion (block layer, QD32)");
  {
    Table table({"completion", "IOPS", "p50", "p99"});
    for (bool interrupts : {true, false}) {
      sim::Simulator sim;
      blocklayer::SimpleBlockDevice device(&sim, FastNvm());
      blocklayer::BlockLayerConfig cfg;
      cfg.interrupt_completion = interrupts;
      blocklayer::BlockLayer layer(&sim, &device, cfg);
      workload::RandomPattern writes(0, device.num_blocks(), true, 1, 3);
      const auto r =
          workload::RunClosedLoop(&sim, &layer, &writes, 30000, 32);
      table.AddRow({interrupts ? "interrupt" : "polled",
                    Table::Num(r.Iops(), 0), Table::Time(r.latency.P50()),
                    Table::Time(r.latency.P99())});
    }
    table.Print();
  }
  std::printf(
      "\nshape check: raw-device IOPS >> legacy block layer at high QD "
      "(CPU-bound); multiqueue closes most of the gap, direct access "
      "the rest; polling beats interrupts once the device is fast.\n");
  return 0;
}
