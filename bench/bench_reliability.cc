// Reliability-layer cost benchmark: what do the fault-injection hooks
// and the recovery machinery cost a healthy device, and what does
// recovery cost when faults actually fire?
//
// Three questions, three sections:
//
//   1. Hook overhead. The fig2 GC-interference workload runs twice:
//      with no injector wired (the shipped default) and with an
//      attached-but-empty injector. Both must produce a byte-identical
//      simulated schedule (same end time, same IOs, same GC moves, same
//      pages programmed) — the injector is consulted *before* the
//      stochastic model precisely so it consumes no Rng draws — and the
//      attached run must cost <= 1% wall clock.
//
//   2. Retry-ladder tax. Every page of a small device gets a scripted
//      first-attempt read failure; mean simulated read latency is
//      compared against a clean run of the same reads. This prices one
//      rung of the ladder (re-sense + escalated tR).
//
//   3. Lifetime to spares exhaustion. With every block's first erase
//      scripted to fail and a small spare budget, the device accepts
//      writes until retirement drains the spares and it drops to
//      read-only. The accepted-write count is deterministic and is the
//      device's usable lifetime under that fault load.
//
// Emits BENCH_reliability.json for the scripts/check_perf.sh gate
// (schedule identical + hook overhead <= 1%).

#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "common/table.h"
#include "flash/fault_injector.h"
#include "ftl/page_ftl.h"
#include "sim/completion.h"
#include "workload/patterns.h"

namespace postblock {
namespace {

ssd::Config DeviceConfig() {
  ssd::Config c = ssd::Config::Consumer2012();
  c.over_provisioning = 0.10;
  return c;
}

struct RunOut {
  double seconds = 0;
  SimTime sim_end = 0;
  std::uint64_t ios = 0;
  std::uint64_t gc_moves = 0;
  std::uint64_t pages_programmed = 0;
};

/// The fig2 workload from bench_metrics_overhead: aged device, QD2
/// random-write stream keeping GC live, QD4 random reads on top.
RunOut RunOnce(bool attach_injector) {
  const auto wall_start = std::chrono::steady_clock::now();

  sim::Simulator sim;
  ssd::Config config = DeviceConfig();
  flash::FaultInjector injector(config.geometry);
  config.fault_injector = attach_injector ? &injector : nullptr;
  ssd::Device device(&sim, config);
  const std::uint64_t n = device.num_blocks();

  bench::FillSequential(&sim, &device, n);
  workload::RandomPattern churn(0, n, /*is_write=*/true, 1, 99);
  bench::Precondition(&sim, &device, &churn, 2 * n);

  auto stop = std::make_shared<bool>(false);
  auto writer_pattern = std::make_shared<workload::RandomPattern>(
      0, n, /*is_write=*/true, 1, 7);
  auto issue = std::make_shared<std::function<void()>>();
  *issue = [&sim, &device, stop, writer_pattern, issue]() {
    if (*stop) return;
    const workload::IoDesc d = writer_pattern->Next();
    blocklayer::IoRequest w;
    w.op = blocklayer::IoOp::kWrite;
    w.lba = d.lba;
    w.nblocks = 1;
    w.tokens = {1};
    w.on_complete = [issue, stop](const blocklayer::IoResult&) {
      if (!*stop) (*issue)();
    };
    device.Submit(std::move(w));
  };
  (*issue)();
  (*issue)();

  workload::RandomPattern reads(0, n, false, 1, 8);
  (void)workload::RunClosedLoop(&sim, &device, &reads, 20000, 4);
  *stop = true;
  *issue = nullptr;  // break the self-reference
  sim.Run();

  RunOut out;
  out.seconds = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - wall_start)
                    .count();
  out.sim_end = sim.Now();
  out.ios = device.counters().Get("completions");
  out.gc_moves = device.ftl()->counters().Get("gc_page_moves");
  out.pages_programmed =
      device.controller()->counters().Get("pages_programmed");
  return out;
}

/// Mean simulated latency of one read per page, optionally with every
/// page's first read attempt scripted to fail (one ladder rung each).
SimTime MeanReadLatency(bool faulty) {
  sim::Simulator sim;
  ssd::Config config = ssd::Config::Small();
  config.errors = flash::ErrorModelConfig::None();
  flash::FaultInjector injector(config.geometry);
  config.fault_injector = &injector;
  ssd::Controller controller(&sim, config);
  ftl::PageFtl ftl(&controller);

  const Lba kPages = 256;
  for (Lba lba = 0; lba < kPages; ++lba) {
    sim::Completion done;
    ftl.Write(lba, lba + 1, done.AsCallback(&sim));
    sim.Run();
  }
  if (faulty) {
    for (Lba lba = 0; lba < kPages; ++lba) {
      auto ppa = ftl.Locate(lba);
      if (ppa.has_value()) injector.FailRead(*ppa, 1);
    }
  }
  SimTime total = 0;
  for (Lba lba = 0; lba < kPages; ++lba) {
    const SimTime start = sim.Now();
    bool fired = false;
    ftl.Read(lba, [&](StatusOr<std::uint64_t>) { fired = true; });
    sim.RunUntilPredicate([&] { return fired; });
    total += sim.Now() - start;
  }
  return total / kPages;
}

struct LifetimeOut {
  std::uint64_t writes_accepted = 0;
  std::uint64_t blocks_retired = 0;
};

/// Writes until scripted erase faults drain the spare pool and the
/// device drops to read-only.
LifetimeOut LifetimeToReadOnly() {
  sim::Simulator sim;
  ssd::Config config = ssd::Config::Small();
  config.errors = flash::ErrorModelConfig::None();
  config.reliability.spare_blocks_per_lun = 2;
  flash::FaultInjector injector(config.geometry);
  config.fault_injector = &injector;
  ssd::Controller controller(&sim, config);
  ftl::PageFtl ftl(&controller);
  const auto& g = config.geometry;
  for (std::uint32_t c = 0; c < g.channels; ++c) {
    for (std::uint32_t l = 0; l < g.luns_per_channel; ++l) {
      for (std::uint32_t p = 0; p < g.planes_per_lun; ++p) {
        for (std::uint32_t b = 0; b < g.blocks_per_plane; ++b) {
          injector.FailErase(flash::BlockAddr{c, l, p, b}, 1);
        }
      }
    }
  }
  LifetimeOut out;
  Rng rng(17);
  while (!controller.read_only() && out.writes_accepted < 2000000) {
    sim::Completion done;
    ftl.Write(rng.Next() % 64, out.writes_accepted + 1,
              done.AsCallback(&sim));
    sim.Run();
    if (!done.done() || !done.status().ok()) break;
    ++out.writes_accepted;
  }
  out.blocks_retired = controller.blocks_retired();
  return out;
}

}  // namespace
}  // namespace postblock

int main() {
  using namespace postblock;
  bench::Banner(
      "reliability",
      "fault-injection hook cost + recovery-path pricing",
      "error recovery must be free on a healthy device: an attached but "
      "silent injector may not perturb the simulated schedule and must "
      "cost <= 1% wall clock");

  constexpr int kReps = 5;
  double best[2] = {1e30, 1e30};
  RunOut last[2];
  // Rotate in-rep order so neither mode always pays warm-up.
  for (int rep = 0; rep < kReps; ++rep) {
    for (int i = 0; i < 2; ++i) {
      const int m = (i + rep) % 2;
      const RunOut out = RunOnce(/*attach_injector=*/m == 1);
      best[m] = std::min(best[m], out.seconds);
      last[m] = out;
    }
  }

  bool identical =
      last[1].sim_end == last[0].sim_end && last[1].ios == last[0].ios &&
      last[1].gc_moves == last[0].gc_moves &&
      last[1].pages_programmed == last[0].pages_programmed;
  if (!identical) {
    std::printf(
        "DETERMINISM VIOLATION: attached-injector run diverged "
        "(sim_end %llu vs %llu, ios %llu vs %llu, gc_moves %llu vs "
        "%llu, programmed %llu vs %llu)\n",
        static_cast<unsigned long long>(last[1].sim_end),
        static_cast<unsigned long long>(last[0].sim_end),
        static_cast<unsigned long long>(last[1].ios),
        static_cast<unsigned long long>(last[0].ios),
        static_cast<unsigned long long>(last[1].gc_moves),
        static_cast<unsigned long long>(last[0].gc_moves),
        static_cast<unsigned long long>(last[1].pages_programmed),
        static_cast<unsigned long long>(last[0].pages_programmed));
  }
  const double overhead = best[1] / best[0] - 1.0;

  const SimTime clean_ns = MeanReadLatency(/*faulty=*/false);
  const SimTime faulty_ns = MeanReadLatency(/*faulty=*/true);
  const double tax =
      static_cast<double>(faulty_ns) / static_cast<double>(clean_ns);

  const LifetimeOut life = LifetimeToReadOnly();

  Table table({"section", "value", "notes"});
  table.AddRow({"hook overhead", Table::Num(overhead * 100.0, 2) + "%",
                identical ? "schedule identical" : "SCHEDULE DIVERGED"});
  table.AddRow({"clean read", Table::Int(clean_ns) + " ns", "no faults"});
  table.AddRow({"1-rung read", Table::Int(faulty_ns) + " ns",
                "x" + Table::Num(tax, 2) + " latency tax"});
  table.AddRow({"lifetime", Table::Int(life.writes_accepted) + " writes",
                Table::Int(life.blocks_retired) + " blocks retired"});
  table.Print();

  std::FILE* f = std::fopen("BENCH_reliability.json", "w");
  if (f != nullptr) {
    const ssd::Config config = DeviceConfig();
    std::fprintf(f, "{\n");
    bench::WriteJsonMeta(f, &config);
    std::fprintf(f,
                 "  \"none\": {\"seconds\": %.4f},\n"
                 "  \"attached\": {\"seconds\": %.4f, "
                 "\"overhead_vs_none\": %.4f},\n"
                 "  \"retry\": {\"clean_read_ns\": %llu, "
                 "\"one_rung_read_ns\": %llu, \"latency_tax\": %.3f},\n"
                 "  \"lifetime\": {\"writes_until_read_only\": %llu, "
                 "\"blocks_retired\": %llu},\n"
                 "  \"deterministic\": %s\n"
                 "}\n",
                 best[0], best[1], overhead,
                 static_cast<unsigned long long>(clean_ns),
                 static_cast<unsigned long long>(faulty_ns), tax,
                 static_cast<unsigned long long>(life.writes_accepted),
                 static_cast<unsigned long long>(life.blocks_retired),
                 identical ? "true" : "false");
    std::fclose(f);
    std::printf("\nwrote BENCH_reliability.json\n");
  }
  return identical ? 0 : 1;
}
