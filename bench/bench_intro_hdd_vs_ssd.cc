// E10 — introduction context: "tens of flash chips wired in parallel
// behind a safe cache deliver hundreds of thousands accesses per second
// at a latency of tens of microseconds. Compared to modern hard disks,
// this is a hundredfold improvement in terms of bandwidth and latency."
//
// Also the premise the whole stack was built on: on disk, sequential
// is orders of magnitude faster than random; on the SSD the gap
// (nearly) closes — which is why the disk-era block interface misleads.

#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "common/table.h"
#include "hdd/hdd.h"
#include "workload/patterns.h"

namespace postblock {
namespace {

struct DeviceRun {
  double iops = 0;
  double mbps = 0;
  SimTime p50 = 0;
};

DeviceRun RunOn(blocklayer::BlockDevice* dev, sim::Simulator* sim,
                bool random, bool write, std::uint64_t span,
                std::uint32_t qd) {
  std::unique_ptr<workload::Pattern> pattern;
  if (random) {
    pattern =
        std::make_unique<workload::RandomPattern>(0, span, write, 1, 3);
  } else {
    pattern =
        std::make_unique<workload::SequentialPattern>(0, span, write);
  }
  const auto r = workload::RunClosedLoop(sim, dev, pattern.get(),
                                         random ? 4000 : 20000, qd);
  return DeviceRun{r.Iops(), r.BytesPerSec(4096) / (1024.0 * 1024),
                   r.latency.P50()};
}

}  // namespace
}  // namespace postblock

int main() {
  using namespace postblock;
  bench::Banner(
      "E10", "introduction — SSD vs magnetic disk",
      "~100x better random IO and latency; the seq/rand gap that shaped "
      "3 decades of database design collapses on the SSD");

  Table table({"device", "workload", "IOPS", "bandwidth", "p50",
               "seq/rand gap"});
  double gap_hdd = 0;
  double gap_ssd = 0;
  double hdd_rand_iops = 0;
  double ssd_rand_iops = 0;

  {
    sim::Simulator sim;
    hdd::Hdd disk(&sim, hdd::HddConfig{});
    const std::uint64_t span = disk.num_blocks();
    const auto seq = RunOn(&disk, &sim, false, false, span, 1);
    const auto rand = RunOn(&disk, &sim, true, false, span, 1);
    gap_hdd = seq.iops / rand.iops;
    hdd_rand_iops = rand.iops;
    table.AddRow({"HDD 7200rpm", "seq 4KiB read", Table::Num(seq.iops, 0),
                  Table::Rate(seq.mbps * 1024 * 1024),
                  Table::Time(seq.p50), ""});
    table.AddRow({"HDD 7200rpm", "rand 4KiB read",
                  Table::Num(rand.iops, 0),
                  Table::Rate(rand.mbps * 1024 * 1024),
                  Table::Time(rand.p50),
                  Table::Num(gap_hdd, 0) + "x"});
  }
  {
    sim::Simulator sim;
    ssd::Config cfg = ssd::Config::Consumer2012();
    cfg.write_buffer.pages = 256;
    ssd::Device device(&sim, cfg);
    const std::uint64_t span = device.num_blocks();
    bench::FillSequential(&sim, &device, span);
    const auto seq = RunOn(&device, &sim, false, false, span, 32);
    const auto rand = RunOn(&device, &sim, true, false, span, 32);
    gap_ssd = seq.iops / rand.iops;
    ssd_rand_iops = rand.iops;
    table.AddRow({"SSD (32 LUNs)", "seq 4KiB read",
                  Table::Num(seq.iops, 0),
                  Table::Rate(seq.mbps * 1024 * 1024),
                  Table::Time(seq.p50), ""});
    table.AddRow({"SSD (32 LUNs)", "rand 4KiB read",
                  Table::Num(rand.iops, 0),
                  Table::Rate(rand.mbps * 1024 * 1024),
                  Table::Time(rand.p50),
                  Table::Num(gap_ssd, 1) + "x"});
  }
  table.Print();
  std::printf(
      "\nSSD/HDD random-read advantage: %.0fx (paper: 'hundredfold').\n"
      "seq/rand gap: HDD %.0fx vs SSD %.1fx — the performance contract "
      "the block interface was built on is gone.\n",
      ssd_rand_iops / hdd_rand_iops, gap_hdd, gap_ssd);
  return 0;
}
