// Event-core microbenchmark: measures the simulator's discrete-event
// engine itself — events/sec and heap allocations/event — for the
// timing-wheel + InplaceCallback core (sim::Simulator) against the
// original binary-heap + std::function core (kept verbatim as
// sim::ReferenceEventQueue and re-wrapped here as RefSimulator).
//
// Workloads:
//   pingpong      K self-rescheduling timers, short deltas (the steady
//                 state of every device model in this repo). Acceptance:
//                 wheel >= 3x reference events/sec, 0 allocs/event.
//   burst         same-timestamp bursts (tie-break machinery).
//   wide_horizon  pseudo-random deltas up to ~100 s, past the wheel
//                 horizon (cascade + overflow paths).
//
// Emits BENCH_sim_core.json for scripts/check_perf.sh and prints a
// table. Both cores run every workload and must agree on final Now().

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <new>
#include <queue>
#include <string>
#include <vector>

#include "src/common/types.h"
#include "bench/bench_util.h"
#include "src/sim/reference_event_queue.h"
#include "src/sim/simulator.h"

// --- Counting allocator hook -------------------------------------------
// Global operator new/delete overrides local to this binary; every heap
// allocation anywhere in the process bumps the counter, so
// "allocations/event" really means the whole scheduling path.

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t n) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace postblock::sim {
namespace {

/// The pre-timing-wheel simulator core, verbatim from the seed tree:
/// binary heap keyed on (when, seq) + std::function callbacks. The
/// workloads below are templated over the simulator type so both cores
/// run byte-identical schedules.
class RefSimulator {
 public:
  using Callback = std::function<void()>;

  SimTime Now() const { return now_; }
  void Schedule(SimTime delay, Callback cb) {
    queue_.Push(now_ + delay, std::move(cb));
  }
  SimTime Run() {
    while (!queue_.empty()) {
      now_ = queue_.NextTime();
      auto cb = queue_.Pop();
      ++events_;
      cb();
    }
    return now_;
  }
  std::uint64_t events_executed() const { return events_; }

 private:
  ReferenceEventQueue queue_;
  SimTime now_ = 0;
  std::uint64_t events_ = 0;
};

struct RunStats {
  std::uint64_t events = 0;
  double seconds = 0;
  std::uint64_t allocs = 0;
  SimTime final_now = 0;

  double eps() const { return seconds > 0 ? events / seconds : 0; }
  double allocs_per_event() const {
    return events > 0 ? static_cast<double>(allocs) / events : 0;
  }
};

template <typename Fn>
RunStats Measure(std::uint64_t events, Fn&& run) {
  RunStats s;
  s.events = events;
  const std::uint64_t alloc0 =
      g_alloc_count.load(std::memory_order_relaxed);
  const auto t0 = std::chrono::steady_clock::now();
  s.final_now = run();
  const auto t1 = std::chrono::steady_clock::now();
  s.allocs = g_alloc_count.load(std::memory_order_relaxed) - alloc0;
  s.seconds = std::chrono::duration<double>(t1 - t0).count();
  return s;
}

// --- Workloads ---------------------------------------------------------

/// K timers, each rescheduling itself `total/K`-ish times with a short
/// period. Captures are 48 bytes — the size the device models' staging
/// lambdas were rebuilt around — which fills InplaceCallback's inline
/// buffer exactly but forces libstdc++ std::function to the heap.
template <typename Sim>
SimTime PingPong(Sim& sim, std::uint64_t total, unsigned actors) {
  struct Ctx {
    Sim* sim;
    std::uint64_t remaining;
  };
  Ctx ctx{&sim, total};
  struct Fire {
    static void At(Ctx* c, std::uint64_t salt, std::uint64_t payload,
                   std::uint64_t a, std::uint64_t b, std::uint64_t d) {
      if (c->remaining == 0) return;
      --c->remaining;
      c->sim->Schedule(100, [c, salt, payload, a, b, d] {
        At(c, salt + 1, payload ^ salt, a + 1, b ^ a, d + b);
      });
    }
  };
  for (unsigned i = 0; i < actors; ++i) {
    sim.Schedule(1 + (i * 7) % 997, [&ctx, i] {
      Fire::At(&ctx, i, i * 0x9e3779b9ull, i, ~std::uint64_t{i}, 1);
    });
  }
  return sim.Run();
}

/// R rounds of B events all at the same timestamp: stresses the
/// insertion-order tie-break path.
template <typename Sim>
SimTime Burst(Sim& sim, unsigned rounds, unsigned burst) {
  struct Ctx {
    std::uint64_t sink = 0;
  };
  static Ctx ctx;
  for (unsigned r = 1; r <= rounds; ++r) {
    for (unsigned b = 0; b < burst; ++b) {
      sim.Schedule(r * 100, [b, r, x = std::uint64_t{b} * r] {
        ctx.sink += b + r + x;
      });
    }
  }
  return sim.Run();
}

/// Chains with pseudo-random deltas spanning ns to ~100 s: most events
/// land in coarse wheel levels or the overflow map and cascade down.
template <typename Sim>
SimTime WideHorizon(Sim& sim, std::uint64_t total, unsigned chains) {
  struct Ctx {
    Sim* sim;
    std::uint64_t remaining;
    std::uint64_t lcg = 0x2545f4914f6cdd1dull;
    SimTime NextDelay() {
      lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
      const std::uint64_t r = lcg >> 33;
      // Mix of short (ns..us) and long (up to ~100 s) delays.
      return (r % 8 == 0) ? (r % (100 * kSecond)) : (r % 4096);
    }
  };
  Ctx ctx{&sim, total};
  struct Fire {
    static void At(Ctx* c, std::uint64_t salt, std::uint64_t payload) {
      if (c->remaining == 0) return;
      --c->remaining;
      c->sim->Schedule(c->NextDelay(),
                       [c, salt, payload] { At(c, salt + 1, payload); });
    }
  };
  for (unsigned i = 0; i < chains; ++i) Fire::At(&ctx, i, i);
  return sim.Run();
}

struct Comparison {
  std::string name;
  RunStats reference;
  RunStats wheel;
  double speedup() const {
    return reference.seconds > 0 && wheel.seconds > 0
               ? wheel.eps() / reference.eps()
               : 0;
  }
};

void Print(const Comparison& c) {
  std::printf(
      "%-13s ref: %9.2fM ev/s  %5.2f allocs/ev | wheel: %9.2fM ev/s  "
      "%5.2f allocs/ev | speedup %.2fx\n",
      c.name.c_str(), c.reference.eps() / 1e6,
      c.reference.allocs_per_event(), c.wheel.eps() / 1e6,
      c.wheel.allocs_per_event(), c.speedup());
}

void EmitJson(const std::vector<Comparison>& rows, const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n");
  postblock::bench::WriteJsonMeta(f);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Comparison& c = rows[i];
    std::fprintf(
        f,
        "  \"%s\": {\"events\": %llu, \"reference_eps\": %.0f, "
        "\"wheel_eps\": %.0f, \"speedup\": %.3f, "
        "\"reference_allocs_per_event\": %.4f, "
        "\"wheel_allocs_per_event\": %.4f}%s\n",
        c.name.c_str(), static_cast<unsigned long long>(c.wheel.events),
        c.reference.eps(), c.wheel.eps(), c.speedup(),
        c.reference.allocs_per_event(), c.wheel.allocs_per_event(),
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "}\n");
  std::fclose(f);
}

int Main() {
  constexpr std::uint64_t kPingPongEvents = 4'000'000;
  constexpr unsigned kActors = 4096;
  constexpr unsigned kRounds = 2000;
  constexpr unsigned kBurst = 1000;
  constexpr std::uint64_t kWideEvents = 2'000'000;
  constexpr unsigned kChains = 4096;

  std::printf("bench_sim_core: discrete-event engine throughput\n");
  std::printf(
      "  reference = binary heap + std::function (pre-change core)\n"
      "  wheel     = hierarchical timing wheel + InplaceCallback\n\n");

  std::vector<Comparison> rows;

  {
    Comparison c{"pingpong", {}, {}};
    {
      RefSimulator sim;
      // Warm the same instance: primes internal vectors and allocator
      // caches so the measured phase is steady state for both cores.
      PingPong(sim, kPingPongEvents / 10, kActors);
      c.reference = Measure(kPingPongEvents + kActors,
                            [&] { return PingPong(sim, kPingPongEvents,
                                                  kActors); });
    }
    {
      Simulator sim;
      PingPong(sim, kPingPongEvents / 10, kActors);
      c.wheel = Measure(kPingPongEvents + kActors,
                        [&] { return PingPong(sim, kPingPongEvents,
                                              kActors); });
    }
    Print(c);
    rows.push_back(std::move(c));
  }

  {
    Comparison c{"burst", {}, {}};
    {
      RefSimulator sim;
      c.reference =
          Measure(std::uint64_t{kRounds} * kBurst,
                  [&] { return Burst(sim, kRounds, kBurst); });
    }
    {
      Simulator sim;
      c.wheel = Measure(std::uint64_t{kRounds} * kBurst,
                        [&] { return Burst(sim, kRounds, kBurst); });
    }
    Print(c);
    rows.push_back(std::move(c));
  }

  {
    Comparison c{"wide_horizon", {}, {}};
    {
      RefSimulator sim;
      c.reference = Measure(kWideEvents, [&] {
        return WideHorizon(sim, kWideEvents, kChains);
      });
    }
    {
      Simulator sim;
      c.wheel = Measure(kWideEvents, [&] {
        return WideHorizon(sim, kWideEvents, kChains);
      });
    }
    Print(c);
    rows.push_back(std::move(c));
  }

  bool ok = true;
  for (const Comparison& c : rows) {
    if (c.reference.final_now != c.wheel.final_now) {
      std::printf("DETERMINISM MISMATCH in %s: ref Now()=%llu wheel "
                  "Now()=%llu\n",
                  c.name.c_str(),
                  static_cast<unsigned long long>(c.reference.final_now),
                  static_cast<unsigned long long>(c.wheel.final_now));
      ok = false;
    }
  }
  std::printf("\nfinal simulated times: %s\n",
              ok ? "identical across cores" : "MISMATCH");

  EmitJson(rows, "BENCH_sim_core.json");
  std::printf("wrote BENCH_sim_core.json\n");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace postblock::sim

int main() { return postblock::sim::Main(); }
