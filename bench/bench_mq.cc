// E17 — the multi-queue host path: IOPS vs queue count under a
// CPU-cost-bound fig-E9-style workload, 1-queue neutrality of the mq
// machinery, and per-IO allocation accounting.
//
// Emits BENCH_mq.json for scripts/check_perf.sh gate 6:
//   - "schedule_identical": a default config and a config spelling out
//     every mq knob at its neutral value must produce bit-identical
//     schedules (the in-binary proxy for "1 queue == pre-mq layer");
//   - "one_queue": deterministic sim-time IOPS of the 1-queue path,
//     compared against bench/baselines/mq_baseline.json within 2% —
//     the 1-queue overhead gate (any new per-IO cost on the default
//     path shows up here);
//   - "scaling": IOPS at 1/2/4/8 queues with the per-queue submission
//     lock as the bottleneck; 4 queues must beat 1 queue by >= 2x;
//   - "allocs": steady-state CallbackSlab traffic per IO (the
//     InplaceCallback-backed completion path must not hit the heap).

#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "blocklayer/block_layer.h"
#include "blocklayer/simple_device.h"
#include "common/table.h"
#include "sim/inplace_callback.h"
#include "workload/patterns.h"

namespace postblock {
namespace {

// A next-generation NVM device fast enough that the host path is the
// bottleneck (the E9 situation).
blocklayer::SimpleDeviceConfig FastNvm() {
  blocklayer::SimpleDeviceConfig cfg;
  cfg.num_blocks = 1 << 20;
  cfg.read_ns = 8 * kMicrosecond;
  cfg.write_ns = 10 * kMicrosecond;
  cfg.units = 64;
  cfg.controller_overhead_ns = 1 * kMicrosecond;
  return cfg;
}

// Host CPU costs where the per-queue submission lock dominates: each
// request holds its queue's lock for schedule_ns, so a single queue
// serializes at ~1/schedule_ns IOPS no matter how many cores submit —
// the 2012 single-queue bottleneck. Splitting into N queues splits the
// serialization.
blocklayer::CpuCosts LockBoundCosts() {
  blocklayer::CpuCosts c;
  c.submit_ns = 400;
  c.schedule_ns = 2000;
  c.interrupt_ns = 2000;
  c.polled_ns = 400;
  return c;
}

double RunQueues(std::uint32_t nr_queues, std::uint64_t ops) {
  sim::Simulator sim;
  blocklayer::SimpleBlockDevice device(&sim, FastNvm());
  blocklayer::BlockLayerConfig cfg;
  cfg.cpu = LockBoundCosts();
  cfg.cores = 8;
  cfg.nr_queues = nr_queues;
  cfg.queue_depth = 64;
  cfg.interrupt_completion = false;  // polled, E9's fast-path ending
  blocklayer::BlockLayer layer(&sim, &device, cfg);
  workload::RandomPattern writes(0, device.num_blocks(), true, 1, 3);
  const auto r = workload::RunClosedLoop(&sim, &layer, &writes, ops, 256);
  return r.Iops();
}

// Schedule fingerprint: FNV-1a over every (completion time, io id) in
// completion order, plus the final sim time. Bit-identical schedules
// hash identically; any reordering or retiming diverges.
struct Fingerprint {
  std::uint64_t hash = 1469598103934665603ull;
  std::uint64_t completed = 0;
  SimTime end = 0;

  void Mix(std::uint64_t v) {
    for (int b = 0; b < 8; ++b) {
      hash ^= (v >> (8 * b)) & 0xff;
      hash *= 1099511628211ull;
    }
  }
};

Fingerprint RunFingerprint(const blocklayer::BlockLayerConfig& cfg,
                           std::uint64_t ops) {
  sim::Simulator sim;
  blocklayer::SimpleBlockDevice dev(&sim, FastNvm());
  blocklayer::BlockLayer layer(&sim, &dev, cfg);
  Fingerprint fp;
  std::uint64_t issued = 0;
  std::function<void()> issue = [&] {
    while (issued < ops && issued - fp.completed < 16) {
      blocklayer::IoRequest r;
      r.op = blocklayer::IoOp::kRead;
      r.lba = (issued * 37) % dev.num_blocks();
      r.nblocks = 1;
      r.stream = static_cast<std::uint8_t>(issued % 3);
      const std::uint64_t id = issued++;
      r.on_complete = [&, id](const blocklayer::IoResult&) {
        ++fp.completed;
        fp.Mix(sim.Now());
        fp.Mix(id);
        issue();
      };
      layer.Submit(std::move(r));
    }
  };
  issue();
  fp.end = sim.Run();
  return fp;
}

}  // namespace
}  // namespace postblock

int main() {
  using namespace postblock;
  bench::Banner(
      "E17", "multi-queue host path — IOPS vs queue count",
      "once the device is fast, the single software queue's lock caps "
      "IOPS; per-context queues with private locks scale submission "
      "near-linearly until cores or the device bind");

  // 1. Schedule identity: default config vs every-knob-neutral config.
  blocklayer::BlockLayerConfig def;
  blocklayer::BlockLayerConfig neutral;
  neutral.tags_per_queue = 0;
  neutral.stream_queues = false;
  neutral.doorbell_batch = 1;
  neutral.doorbell_ns = 0;
  neutral.coalesce_depth = 1;
  neutral.coalesce_ns = 0;
  neutral.shared_depth = 0;
  neutral.qos_weights = {};
  neutral.merge_window = 1;
  neutral.cross_stream_merge = false;
  const Fingerprint fp_def = RunFingerprint(def, 4000);
  const Fingerprint fp_neutral = RunFingerprint(neutral, 4000);
  const bool schedule_identical = fp_def.hash == fp_neutral.hash &&
                                  fp_def.end == fp_neutral.end &&
                                  fp_def.completed == fp_neutral.completed;

  bench::Section("1-queue neutrality");
  std::printf(
      "default vs explicit-neutral mq knobs: %s (fingerprint %016llx, "
      "%llu IOs, sim end %llu ns)\n",
      schedule_identical ? "schedule identical" : "SCHEDULES DIVERGED",
      static_cast<unsigned long long>(fp_def.hash),
      static_cast<unsigned long long>(fp_def.completed),
      static_cast<unsigned long long>(fp_def.end));

  // 2. IOPS vs queue count, lock-bound. Sim-time, fully deterministic.
  const std::uint64_t kOps = 200000;
  bench::Section(
      "4KiB random writes, lock-bound host path (schedule=2us/IO): "
      "IOPS by nr_queues");
  std::vector<std::pair<std::uint32_t, double>> scaling;
  double iops1 = 0;
  {
    Table table({"nr_queues", "IOPS", "speedup vs 1q"});
    for (std::uint32_t nq : {1u, 2u, 4u, 8u}) {
      const double iops = RunQueues(nq, kOps);
      if (nq == 1) iops1 = iops;
      scaling.emplace_back(nq, iops);
      table.AddRow({std::to_string(nq), Table::Num(iops, 0),
                    Table::Num(iops / iops1, 2) + "x"});
    }
    table.Print();
  }
  double iops4 = 0;
  for (const auto& [nq, iops] : scaling) {
    if (nq == 4) iops4 = iops;
  }
  const double speedup4 = iops4 / iops1;

  // 3. Steady-state allocations per IO. The first run warms the
  // CallbackSlab free list; the measured run must serve every boxed
  // callback from it.
  sim::CallbackSlab::ResetStats();
  const std::uint64_t kAllocOps = 50000;
  (void)RunQueues(4, kAllocOps);  // warm
  sim::CallbackSlab::ResetStats();
  (void)RunQueues(4, kAllocOps);  // measured
  const auto slab = sim::CallbackSlab::stats();
  const double allocs_per_io =
      static_cast<double>(slab.chunk_allocs) / kAllocOps;
  const double reuses_per_io =
      static_cast<double>(slab.chunk_reuses) / kAllocOps;

  bench::Section("completion-path allocations (steady state)");
  std::printf(
      "slab chunk allocs/IO %.4f (reuses/IO %.2f, oversize %llu) over "
      "%llu IOs at 4 queues\n",
      allocs_per_io, reuses_per_io,
      static_cast<unsigned long long>(slab.oversize_allocs),
      static_cast<unsigned long long>(kAllocOps));

  std::printf(
      "\nshape check: IOPS scales with queue count while the lock "
      "binds (>=2x at 4 queues); 1 queue is schedule-identical to the "
      "pre-mq layer; the hot path never allocates in steady state.\n");

  // BENCH_mq.json for gate 6.
  std::FILE* f = std::fopen("BENCH_mq.json", "w");
  if (f != nullptr) {
    std::fprintf(f, "{\n");
    // Topology stamp: single-tenant workload swept up to 8 mq queues.
    bench::WriteJsonMeta(f, nullptr, 0, /*tenants=*/1, /*queues=*/8);
    std::fprintf(f, "  \"schedule_identical\": %s,\n",
                 schedule_identical ? "true" : "false");
    std::fprintf(f,
                 "  \"one_queue\": {\"iops\": %.1f, \"sim_end_ns\": %llu, "
                 "\"fingerprint\": \"%016llx\"},\n",
                 iops1, static_cast<unsigned long long>(fp_def.end),
                 static_cast<unsigned long long>(fp_def.hash));
    std::fprintf(f, "  \"scaling\": {");
    for (std::size_t i = 0; i < scaling.size(); ++i) {
      std::fprintf(f, "%s\"q%u\": %.1f", i == 0 ? "" : ", ",
                   scaling[i].first, scaling[i].second);
    }
    std::fprintf(f, ", \"speedup_4q\": %.3f},\n", speedup4);
    std::fprintf(f,
                 "  \"allocs\": {\"chunk_allocs_per_io\": %.5f, "
                 "\"chunk_reuses_per_io\": %.3f, \"oversize_allocs\": "
                 "%llu}\n",
                 allocs_per_io, reuses_per_io,
                 static_cast<unsigned long long>(slab.oversize_allocs));
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("wrote BENCH_mq.json\n");
  }
  return 0;
}
