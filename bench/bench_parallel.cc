// bench_parallel — sharded event cores: scaling and determinism.
//
// Runs the 4-channel fig2-class workload (host reads/writes fighting
// per-channel GC) on the sharded engine at workers = 0 (sequential
// reference), 1, 2 and 4, and reports events/sec, per-worker-count
// speedup, and the determinism bit: every worker count must produce a
// combined fingerprint byte-identical to the sequential reference.
//
// Emits BENCH_parallel.json; scripts/check_perf.sh gate 7 enforces the
// determinism bit unconditionally and the >= 1.6x speedup floor at 4
// workers when the machine actually has >= 4 hardware threads (the
// meta stamp records both counts so a scaling number can never be
// misread).

#include <chrono>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "obs/engine_profiler.h"
#include "ssd/config.h"
#include "ssd/sharded_backend.h"

namespace postblock::ssd {
namespace {

struct Row {
  std::uint32_t workers = 0;
  std::uint64_t events = 0;
  std::uint64_t messages = 0;
  std::uint64_t rounds = 0;
  double seconds = 0;
  std::uint64_t fingerprint = 0;
  SimTime sim_end_ns = 0;

  double eps() const { return seconds > 0 ? events / seconds : 0; }
};

Config BenchConfig() {
  Config config = Config::Small();
  config.geometry.channels = 4;
  config.geometry.luns_per_channel = 4;
  return config;
}

ShardedRunConfig BenchRun(std::uint32_t workers,
                          std::uint64_t ios_per_channel) {
  ShardedRunConfig run;
  run.workers = workers;
  run.ios_per_channel = ios_per_channel;
  run.queue_depth_per_channel = 16;
  return run;
}

Row RunOnce(std::uint32_t workers, std::uint64_t ios_per_channel,
            obs::EngineProfiler* profiler = nullptr) {
  ShardedRunConfig run = BenchRun(workers, ios_per_channel);
  run.observer = profiler;
  ShardedFlashSim sim(BenchConfig(), run);
  const auto t0 = std::chrono::steady_clock::now();
  const SimTime end = sim.Run();
  const auto t1 = std::chrono::steady_clock::now();

  Row row;
  row.workers = workers;
  row.events = sim.engine()->events_executed();
  row.messages = sim.engine()->messages_delivered();
  row.rounds = sim.engine()->rounds();
  row.seconds = std::chrono::duration<double>(t1 - t0).count();
  row.fingerprint = sim.CombinedFingerprint();
  row.sim_end_ns = end;
  return row;
}

int Main() {
  constexpr std::uint64_t kIosPerChannel = 60'000;
  const std::uint32_t hw = std::thread::hardware_concurrency();

  std::printf("bench_parallel: sharded event cores on the 4-channel "
              "fig2-class workload\n");
  std::printf("  %" PRIu64 " IOs/channel, QD 16/channel, "
              "hardware_concurrency=%u\n\n",
              kIosPerChannel, hw);

  const std::vector<std::uint32_t> worker_counts = {0, 1, 2, 4};
  std::vector<Row> rows;
  for (const std::uint32_t w : worker_counts) {
    // Warm-up at a fraction of the size, then the measured run.
    RunOnce(w, kIosPerChannel / 10);
    Row row = RunOnce(w, kIosPerChannel);
    std::printf("  workers=%u: %8.2fM ev/s  (%" PRIu64 " events, %" PRIu64
                " seam msgs, %" PRIu64 " rounds, %.3fs)\n",
                w, row.eps() / 1e6, row.events, row.messages, row.rounds,
                row.seconds);
    rows.push_back(row);
  }

  const Row& seq = rows[0];
  bool determinism_ok = true;
  for (const Row& r : rows) {
    if (r.fingerprint != seq.fingerprint || r.events != seq.events) {
      std::printf("DETERMINISM MISMATCH at workers=%u: fingerprint "
                  "%016" PRIx64 " vs reference %016" PRIx64 "\n",
                  r.workers, r.fingerprint, seq.fingerprint);
      determinism_ok = false;
    }
  }
  // Profiled run: attach obs::EngineProfiler at the highest parallel
  // worker count the bench exercises and hold its fingerprint to the
  // sequential reference — the attached-observer neutrality bit gate 9
  // also enforces — then report where the wall time went per shard.
  obs::EngineProfiler profiler;
  const Row profiled = RunOnce(worker_counts.back(), kIosPerChannel,
                               &profiler);
  const bool profiler_neutral =
      profiled.fingerprint == seq.fingerprint &&
      profiled.events == seq.events;
  std::printf("\nprofiled run (workers=%u, obs::EngineProfiler "
              "attached): %s\n",
              worker_counts.back(),
              profiler_neutral ? "schedule byte-identical"
                               : "FINGERPRINT MISMATCH");
  for (std::size_t s = 0; s < profiler.shard_profiles().size(); ++s) {
    const obs::ShardProfile& p = profiler.shard_profiles()[s];
    std::printf("  shard %zu: util %.1f%%  busy %.1fms idle %.1fms "
                "barrier %.1fms  %" PRIu64 " events\n",
                s, p.Utilization() * 100, p.busy_wall_ns / 1e6,
                p.idle_wall_ns / 1e6, p.barrier_wall_ns / 1e6, p.events);
  }
  const Histogram& slack = profiler.slack_hist();
  std::printf("  lookahead slack: p50=%" PRIu64 "ns p99=%" PRIu64
              "ns max=%" PRIu64 "ns over %" PRIu64 " shard-windows\n",
              slack.P50(), slack.P99(), slack.max(), slack.count());

  const double speedup_4w =
      seq.seconds > 0 && rows.back().seconds > 0
          ? seq.seconds / rows.back().seconds
          : 0;
  std::printf("\ndeterminism: %s\n",
              determinism_ok ? "all worker counts byte-identical"
                             : "MISMATCH");
  std::printf("speedup at 4 workers vs sequential: %.2fx%s\n", speedup_4w,
              hw < 4 ? "  (machine has <4 hardware threads; floor not "
                       "meaningful here)"
                     : "");

  std::FILE* f = std::fopen("BENCH_parallel.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_parallel.json\n");
    return 1;
  }
  std::fprintf(f, "{\n");
  const Config config = BenchConfig();
  bench::WriteJsonMeta(f, &config, /*workers=*/4);
  for (const Row& r : rows) {
    std::fprintf(f,
                 "  \"workers%u\": {\"events\": %" PRIu64
                 ", \"eps\": %.0f, \"seconds\": %.6f, \"seam_messages\": "
                 "%" PRIu64 ", \"rounds\": %" PRIu64
                 ", \"fingerprint\": \"%016" PRIx64
                 "\", \"sim_end_ns\": %" PRIu64 "},\n",
                 r.workers, r.events, r.eps(), r.seconds, r.messages,
                 r.rounds, r.fingerprint,
                 static_cast<std::uint64_t>(r.sim_end_ns));
  }
  std::fprintf(f, "  \"profiler\": {\"neutral\": %s, \"windows\": %" PRIu64
               ", \"shards\": [\n",
               profiler_neutral ? "true" : "false",
               profiler.windows_observed());
  for (std::size_t s = 0; s < profiler.shard_profiles().size(); ++s) {
    const obs::ShardProfile& p = profiler.shard_profiles()[s];
    std::fprintf(f,
                 "    {\"shard\": %zu, \"utilization\": %.4f, "
                 "\"busy_ns\": %" PRIu64 ", \"idle_ns\": %" PRIu64
                 ", \"barrier_ns\": %" PRIu64 ", \"events\": %" PRIu64
                 "}%s\n",
                 s, p.Utilization(), p.busy_wall_ns, p.idle_wall_ns,
                 p.barrier_wall_ns, p.events,
                 s + 1 < profiler.shard_profiles().size() ? "," : "");
  }
  std::fprintf(f,
               "  ], \"lookahead_slack_ns\": {\"count\": %" PRIu64
               ", \"p50\": %" PRIu64 ", \"p99\": %" PRIu64
               ", \"max\": %" PRIu64 "}},\n",
               slack.count(), slack.P50(), slack.P99(), slack.max());
  std::fprintf(f, "  \"determinism_ok\": %s,\n",
               determinism_ok ? "true" : "false");
  std::fprintf(f, "  \"speedup_4w\": %.3f\n", speedup_4w);
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote BENCH_parallel.json\n");

  // The full git-SHA-stamped profile report rides alongside.
  const Config cfg = BenchConfig();
  const Status st = profiler.WriteReport(
      "BENCH_parallel.profile.json",
      bench::MetaJsonFields(&cfg, worker_counts.back()));
  if (st.ok()) std::printf("wrote BENCH_parallel.profile.json\n");

  return determinism_ok && profiler_neutral ? 0 : 1;
}

}  // namespace
}  // namespace postblock::ssd

int main() { return postblock::ssd::Main(); }
