// E5 — Myth 2 corollary, the paper's explicit "topic for future work":
// "random writes have a negative impact on garbage collection, as
// locality is impossible to detect for the FTL ... pages that are to be
// reclaimed together tend to be spread over many blocks."
//
// We quantify it: sustained-write amplification over time for
// sequential, random and zipf patterns on the page-mapping FTL, with
// ablations over GC policy and over-provisioning.

#include <cstdio>
#include <memory>
#include <string>

#include "bench/bench_util.h"
#include "common/table.h"
#include "ftl/ftl.h"
#include "workload/patterns.h"

namespace postblock {
namespace {

ssd::Config BaseConfig(double op, ssd::GcPolicyKind policy) {
  ssd::Config c = ssd::Config::Small();
  c.geometry.channels = 4;
  c.geometry.luns_per_channel = 2;
  c.geometry.blocks_per_plane = 64;
  c.geometry.pages_per_block = 32;
  c.over_provisioning = op;
  c.gc.policy = policy;
  return c;
}

std::unique_ptr<workload::Pattern> MakePattern(const std::string& kind,
                                               std::uint64_t span) {
  if (kind == "sequential") {
    return std::make_unique<workload::SequentialPattern>(0, span, true);
  }
  if (kind == "zipf") {
    return std::make_unique<workload::ZipfPattern>(0, span, 0.99, true, 5);
  }
  return std::make_unique<workload::RandomPattern>(0, span, true, 1, 5);
}

}  // namespace
}  // namespace postblock

int main() {
  using namespace postblock;
  bench::Banner(
      "E5", "Myth 2 corollary — GC cost of write patterns over time",
      "sequential overwrites keep WA ~1 (whole blocks die together); "
      "uniform random spreads soon-dead pages across blocks so WA "
      "climbs as the device fills its over-provisioning; skew (zipf) "
      "sits between; more OP and cost-benefit GC soften it");

  bench::Section("write amplification per window (page-map, greedy, OP=0.125)");
  {
    Table table({"pattern", "win1", "win2", "win3", "win4", "win5",
                 "final WA", "gc moves/host write"});
    for (const char* kind : {"sequential", "random", "zipf"}) {
      sim::Simulator sim;
      ssd::Device device(&sim,
                         BaseConfig(0.125, ssd::GcPolicyKind::kGreedy));
      const std::uint64_t n = device.num_blocks();
      bench::FillSequential(&sim, &device, n);
      auto pattern = MakePattern(kind, n);
      std::vector<std::string> cells = {kind};
      std::uint64_t prev_prog =
          device.controller()->counters().Get("pages_programmed");
      std::uint64_t prev_host =
          device.ftl()->counters().Get("host_pages_accepted");
      for (int window = 0; window < 5; ++window) {
        bench::Precondition(&sim, &device, pattern.get(), n / 2);
        const std::uint64_t prog =
            device.controller()->counters().Get("pages_programmed");
        const std::uint64_t host =
            device.ftl()->counters().Get("host_pages_accepted");
        cells.push_back(Table::Num(
            static_cast<double>(prog - prev_prog) /
                static_cast<double>(host - prev_host),
            2));
        prev_prog = prog;
        prev_host = host;
      }
      cells.push_back(Table::Num(device.WriteAmplification(), 2));
      cells.push_back(Table::Num(
          static_cast<double>(
              device.ftl()->counters().Get("gc_page_moves")) /
              static_cast<double>(
                  device.ftl()->counters().Get("host_pages_accepted")),
          2));
      table.AddRow(cells);
    }
    table.Print();
  }

  bench::Section("ablation: GC policy x over-provisioning (random writes)");
  {
    Table table({"gc policy", "OP", "steady WA", "gc erases",
                 "write stalls"});
    for (auto policy :
         {ssd::GcPolicyKind::kGreedy, ssd::GcPolicyKind::kCostBenefit}) {
      for (double op : {0.07, 0.125, 0.25}) {
        sim::Simulator sim;
        ssd::Device device(&sim, BaseConfig(op, policy));
        const std::uint64_t n = device.num_blocks();
        bench::FillSequential(&sim, &device, n);
        workload::RandomPattern churn(0, n, true, 1, 5);
        bench::Precondition(&sim, &device, &churn, 3 * n);
        table.AddRow({ssd::GcPolicyKindName(policy), Table::Num(op, 3),
                      Table::Num(device.WriteAmplification(), 2),
                      Table::Int(device.ftl()->counters().Get("gc_erases")),
                      Table::Int(
                          device.ftl()->counters().Get("write_stalls"))});
      }
    }
    table.Print();
  }
  std::printf(
      "\nshape check: random-write WA rises over windows and exceeds "
      "sequential's ~1; WA falls steeply as OP grows; skew (zipf) "
      "concentrates soon-dead pages less than sequential but keeps a "
      "cold tail GC must carry.\n");
  return 0;
}
