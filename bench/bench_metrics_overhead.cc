// Metrics-overhead benchmark: what does the sim-time metrics registry
// (src/metrics/) cost the simulator?
//
// The same fig2-style GC-interference workload (aged device, concurrent
// random writes, random reads) runs three ways:
//
//   none      no registry attached       (the flag-off hot path: one
//                                         pointer test per hook)
//   attached  registry attached          (hot-path counter pushes and
//                                         histogram records, no sampler)
//   sampling  registry + 1ms Sampler     (full windowed time series)
//
// All three must do identical *device* work: metrics observe the
// schedule, they must never perturb it. The sampled run's final sim
// time may trail up to one interval past the others (the sampler's last
// parked tick); every device observable — IOs, GC moves, pages
// programmed — must match exactly, and the final sampled cumulative row
// must equal the stack's always-on Counters. The bench asserts all of
// that, prints wall-clock overheads, and emits
// BENCH_metrics_overhead.json for the scripts/check_perf.sh gate
// (attached overhead <= 2%).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "common/table.h"
#include "metrics/metrics.h"
#include "metrics/sampler.h"
#include "workload/patterns.h"

namespace postblock {
namespace {

enum class Mode { kNone, kAttached, kSampling };

const char* ModeName(Mode m) {
  switch (m) {
    case Mode::kNone:
      return "none";
    case Mode::kAttached:
      return "attached";
    case Mode::kSampling:
      return "sampling";
  }
  return "?";
}

constexpr SimTime kSampleIntervalNs = 1'000'000;  // 1 ms of sim time

ssd::Config DeviceConfig() {
  ssd::Config c = ssd::Config::Consumer2012();
  c.over_provisioning = 0.10;
  return c;
}

struct RunOut {
  double seconds = 0;    // wall clock of the whole run
  SimTime sim_end = 0;   // none/attached must match; sampling may trail
  std::uint64_t ios = 0;
  std::uint64_t gc_moves = 0;
  std::uint64_t pages_programmed = 0;
  std::uint64_t samples = 0;       // sampling only
  bool crosscheck_ok = true;       // final sampled row == Counters
};

RunOut RunOnce(Mode mode) {
  const auto wall_start = std::chrono::steady_clock::now();

  sim::Simulator sim;
  metrics::MetricRegistry registry;
  ssd::Config config = DeviceConfig();
  config.metrics = mode == Mode::kNone ? nullptr : &registry;
  ssd::Device device(&sim, config);
  const std::uint64_t n = device.num_blocks();

  bench::FillSequential(&sim, &device, n);
  workload::RandomPattern churn(0, n, /*is_write=*/true, 1, 99);
  bench::Precondition(&sim, &device, &churn, 2 * n);

  // Sampling covers the measured phase only (the timeline a run report
  // would plot), not the preconditioning.
  metrics::Sampler sampler(&sim, &registry, kSampleIntervalNs);
  if (mode == Mode::kSampling) sampler.Start();

  // Concurrent QD2 random-write stream (keeps GC live during reads).
  auto stop = std::make_shared<bool>(false);
  auto writer_pattern = std::make_shared<workload::RandomPattern>(
      0, n, /*is_write=*/true, 1, 7);
  auto issue = std::make_shared<std::function<void()>>();
  *issue = [&sim, &device, stop, writer_pattern, issue]() {
    if (*stop) return;
    const workload::IoDesc d = writer_pattern->Next();
    blocklayer::IoRequest w;
    w.op = blocklayer::IoOp::kWrite;
    w.lba = d.lba;
    w.nblocks = 1;
    w.tokens = {1};
    w.on_complete = [issue, stop](const blocklayer::IoResult&) {
      if (!*stop) (*issue)();
    };
    device.Submit(std::move(w));
  };
  (*issue)();
  (*issue)();

  workload::RandomPattern reads(0, n, false, 1, 8);
  (void)workload::RunClosedLoop(&sim, &device, &reads, 20000, 4);
  *stop = true;
  *issue = nullptr;  // break the self-reference
  sim.Run();
  if (mode == Mode::kSampling) sampler.Stop();

  RunOut out;
  out.seconds = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - wall_start)
                    .count();
  out.sim_end = sim.Now();
  out.ios = device.counters().Get("completions");
  out.gc_moves = device.ftl()->counters().Get("gc_page_moves");
  out.pages_programmed =
      device.controller()->counters().Get("pages_programmed");
  if (mode == Mode::kSampling) {
    out.samples = sampler.samples_taken();
    // Acceptance cross-check: final cumulative rows == Counters. The
    // sampler started after preconditioning, but cumulative columns
    // read the full-run counters, so equality is exact.
    const metrics::TimeSeries& ts = sampler.series();
    out.crosscheck_ok =
        ts.FinalU64("ssd.pages_programmed") == out.pages_programmed &&
        ts.FinalU64("dev.completions") == out.ios &&
        ts.FinalU64("ftl.gc_page_moves") == out.gc_moves &&
        ts.FinalU64("dev.read_lat_ns.count") ==
            device.read_latency().count();
  }
  return out;
}

}  // namespace
}  // namespace postblock

int main() {
  using namespace postblock;
  bench::Banner(
      "metrics_overhead", "metrics-registry cost over the fig2 workload",
      "metrics must be free when disabled (<= 2% wall clock) and must "
      "never perturb the simulated device schedule");

  constexpr int kReps = 5;
  const Mode kModes[] = {Mode::kNone, Mode::kAttached, Mode::kSampling};

  // best-of-N per mode; the in-rep order rotates so no mode always runs
  // first (allocator warm-up and frequency drift would otherwise bias
  // whichever mode is measured earliest).
  double best[3] = {1e30, 1e30, 1e30};
  RunOut last[3];
  for (int rep = 0; rep < kReps; ++rep) {
    for (int i = 0; i < 3; ++i) {
      const int m = (i + rep) % 3;
      const RunOut out = RunOnce(kModes[m]);
      best[m] = std::min(best[m], out.seconds);
      last[m] = out;
    }
  }

  // Determinism: metrics must observe, never perturb. The attached run
  // must be simulation-identical; the sampled run must do identical
  // device work and may only trail by the final parked tick.
  bool identical = true;
  for (int m = 1; m < 3; ++m) {
    const bool device_ok = last[m].ios == last[0].ios &&
                           last[m].gc_moves == last[0].gc_moves &&
                           last[m].pages_programmed ==
                               last[0].pages_programmed;
    const bool time_ok =
        m == 1 ? last[m].sim_end == last[0].sim_end
               : (last[m].sim_end >= last[0].sim_end &&
                  last[m].sim_end <= last[0].sim_end + kSampleIntervalNs);
    if (!device_ok || !time_ok) {
      identical = false;
      std::printf(
          "DETERMINISM VIOLATION: %s run diverged from bare "
          "(sim_end %llu vs %llu, ios %llu vs %llu, gc_moves %llu vs "
          "%llu)\n",
          ModeName(kModes[m]),
          static_cast<unsigned long long>(last[m].sim_end),
          static_cast<unsigned long long>(last[0].sim_end),
          static_cast<unsigned long long>(last[m].ios),
          static_cast<unsigned long long>(last[0].ios),
          static_cast<unsigned long long>(last[m].gc_moves),
          static_cast<unsigned long long>(last[0].gc_moves));
    }
  }
  if (!last[2].crosscheck_ok) {
    identical = false;
    std::printf(
        "CROSS-CHECK VIOLATION: final sampled cumulative rows do not "
        "equal the stack's Counters\n");
  }

  const double attached_ovh = best[1] / best[0] - 1.0;
  const double sampling_ovh = best[2] / best[0] - 1.0;

  Table table({"mode", "best wall s", "overhead", "sim_end ns", "ios",
               "samples"});
  const double ovh[3] = {0.0, attached_ovh, sampling_ovh};
  for (int m = 0; m < 3; ++m) {
    table.AddRow({ModeName(kModes[m]), Table::Num(best[m], 3),
                  Table::Num(ovh[m] * 100.0, 2) + "%",
                  Table::Int(last[m].sim_end), Table::Int(last[m].ios),
                  Table::Int(last[m].samples)});
  }
  table.Print();

  std::FILE* f = std::fopen("BENCH_metrics_overhead.json", "w");
  if (f != nullptr) {
    const ssd::Config config = DeviceConfig();
    std::fprintf(f, "{\n");
    bench::WriteJsonMeta(f, &config);
    std::fprintf(f,
                 "  \"none\": {\"seconds\": %.4f},\n"
                 "  \"attached\": {\"seconds\": %.4f, "
                 "\"overhead_vs_none\": %.4f},\n"
                 "  \"sampling\": {\"seconds\": %.4f, "
                 "\"overhead_vs_none\": %.4f, \"samples\": %llu},\n"
                 "  \"deterministic\": %s\n}\n",
                 best[0], best[1], attached_ovh, best[2], sampling_ovh,
                 static_cast<unsigned long long>(last[2].samples),
                 identical ? "true" : "false");
    std::fclose(f);
    std::printf("\nwrote BENCH_metrics_overhead.json\n");
  }

  if (!identical) return 1;
  std::printf(
      "shape check: attached overhead %.2f%% (gate: <= 2%%), sampling "
      "%.2f%%; device schedule identical in all three runs.\n",
      attached_ovh * 100.0, sampling_ovh * 100.0);
  return 0;
}
