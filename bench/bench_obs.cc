// Observability-overhead benchmark: what do the src/obs instruments
// cost, and do they stay schedule-neutral?
//
// Part A — obs::EngineProfiler on the sharded engine. The 4-channel
// fig2-class workload (the gate-7 workload) runs detached and with the
// profiler attached, best-of-N with rotating in-rep order, at
// workers = 0 (the sequential reference — wall-clock-stable on any
// machine). The attached run must cost <= 2% and its committed
// schedule fingerprint must be byte-identical to detached; an extra
// attached run at workers = 2 must also match (the observer may not
// perturb the parallel schedule either).
//
// Part B — obs::SloWatchdog determinism. A deterministic device
// workload runs twice with the watchdog attached to the sampler under
// an intentionally breached p99 bound; both runs must detect breaches
// (> 0) and produce bit-identical breach digests.
//
// Emits BENCH_obs.json for scripts/check_perf.sh gate 9.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/table.h"
#include "metrics/metrics.h"
#include "metrics/sampler.h"
#include "obs/engine_profiler.h"
#include "obs/slo_watchdog.h"
#include "sim/simulator.h"
#include "ssd/config.h"
#include "ssd/device.h"
#include "ssd/sharded_backend.h"
#include "workload/patterns.h"

namespace postblock {
namespace {

// --- Part A: profiler overhead + neutrality -------------------------------

ssd::Config EngineConfig() {
  ssd::Config config = ssd::Config::Small();
  config.geometry.channels = 4;
  config.geometry.luns_per_channel = 4;
  return config;
}

struct EngineOut {
  double seconds = 0;
  std::uint64_t events = 0;
  std::uint64_t fingerprint = 0;
};

EngineOut RunEngine(std::uint32_t workers, std::uint64_t ios_per_channel,
                    obs::EngineProfiler* profiler) {
  ssd::ShardedRunConfig run;
  run.workers = workers;
  run.ios_per_channel = ios_per_channel;
  run.queue_depth_per_channel = 16;
  run.observer = profiler;
  ssd::ShardedFlashSim sim(EngineConfig(), run);
  const auto t0 = std::chrono::steady_clock::now();
  sim.Run();
  const auto t1 = std::chrono::steady_clock::now();
  EngineOut out;
  out.seconds = std::chrono::duration<double>(t1 - t0).count();
  out.events = sim.engine()->events_executed();
  out.fingerprint = sim.CombinedFingerprint();
  return out;
}

// --- Part B: watchdog determinism -----------------------------------------

struct WatchOut {
  std::uint64_t breaches = 0;
  std::uint64_t digest = 0;
  std::size_t unresolved = 0;
  std::uint64_t samples = 0;
};

WatchOut RunWatchdog() {
  sim::Simulator sim;
  metrics::MetricRegistry registry;
  ssd::Config config = ssd::Config::Small();
  config.over_provisioning = 0.10;
  config.metrics = &registry;
  ssd::Device device(&sim, config);
  const std::uint64_t n = device.num_blocks();
  bench::FillSequential(&sim, &device, n);

  // The 1ns p99 bound and the absurd throughput floor are breached by
  // construction: the bench verifies the watchdog *fires*, and fires
  // the same way twice. The third spec names a metric that does not
  // exist — the unresolved path must be stable too.
  obs::SloWatchdog watchdog(std::vector<obs::SloSpec>{
      {"read p99 <= 1ns (intentional breach)", "dev.read_lat_ns",
       obs::SloKind::kMaxP99, 1.0, /*min_window_count=*/1},
      {"completions >= 1e12/s (intentional breach)", "dev.completions",
       obs::SloKind::kMinThroughput, 1e12},
      {"missing metric (stays unresolved)", "no.such.metric",
       obs::SloKind::kMaxGauge, 1.0},
  });
  metrics::Sampler sampler(&sim, &registry, 1'000'000);
  sampler.set_observer(&watchdog);
  sampler.Start();

  workload::RandomPattern reads(0, n, /*is_write=*/false, 1, 8);
  (void)workload::RunClosedLoop(&sim, &device, &reads, 5000, 4);
  sim.Run();
  sampler.Stop();

  WatchOut out;
  out.breaches = watchdog.total_breaches();
  out.digest = watchdog.Digest();
  out.unresolved = watchdog.unresolved_specs();
  out.samples = sampler.samples_taken();
  return out;
}

}  // namespace
}  // namespace postblock

int main() {
  using namespace postblock;
  bench::Banner("obs",
                "observability cost over the gate-7 sharded workload",
                "profiler attached <= 2% wall clock and schedule "
                "byte-identical; watchdog breach stream deterministic");

  constexpr std::uint64_t kIosPerChannel = 30'000;
  constexpr int kReps = 5;

  // Part A: best-of-N detached vs attached, rotating in-rep order so
  // neither mode always pays allocator warm-up / frequency drift.
  double best[2] = {1e30, 1e30};
  EngineOut last[2];
  obs::EngineProfiler profiler;
  for (int rep = 0; rep < kReps; ++rep) {
    for (int i = 0; i < 2; ++i) {
      const int m = (i + rep) % 2;
      if (m == 1) profiler.Reset();
      const EngineOut out =
          RunEngine(/*workers=*/0, kIosPerChannel,
                    m == 1 ? &profiler : nullptr);
      best[m] = std::min(best[m], out.seconds);
      last[m] = out;
    }
  }
  const double overhead = best[0] > 0 ? best[1] / best[0] - 1.0 : 0;

  // Neutrality: attached fingerprints (sequential and parallel) must
  // equal the detached sequential reference.
  obs::EngineProfiler par_profiler;
  const EngineOut par =
      RunEngine(/*workers=*/2, kIosPerChannel, &par_profiler);
  const bool neutral = last[1].fingerprint == last[0].fingerprint &&
                       last[1].events == last[0].events &&
                       par.fingerprint == last[0].fingerprint &&
                       par.events == last[0].events;

  Table table({"mode", "best wall s", "overhead", "events",
               "fingerprint"});
  char fp[32];
  std::snprintf(fp, sizeof fp, "%016llx",
                static_cast<unsigned long long>(last[0].fingerprint));
  table.AddRow({"detached", Table::Num(best[0], 3), "0.00%",
                Table::Int(last[0].events), fp});
  std::snprintf(fp, sizeof fp, "%016llx",
                static_cast<unsigned long long>(last[1].fingerprint));
  table.AddRow({"attached", Table::Num(best[1], 3),
                Table::Num(overhead * 100.0, 2) + "%",
                Table::Int(last[1].events), fp});
  std::snprintf(fp, sizeof fp, "%016llx",
                static_cast<unsigned long long>(par.fingerprint));
  table.AddRow({"attached w=2", Table::Num(par.seconds, 3), "-",
                Table::Int(par.events), fp});
  table.Print();
  std::printf("profiler: %llu windows observed, %llu seam messages, "
              "slack p99 %llu ns; neutrality: %s\n",
              static_cast<unsigned long long>(profiler.windows_observed()),
              static_cast<unsigned long long>(profiler.messages()),
              static_cast<unsigned long long>(profiler.slack_hist().P99()),
              neutral ? "schedule byte-identical" : "VIOLATED");

  // Part B: run the breached-SLO workload twice.
  const WatchOut w1 = RunWatchdog();
  const WatchOut w2 = RunWatchdog();
  const bool watchdog_ok = w1.breaches > 0 && w1.breaches == w2.breaches &&
                           w1.digest == w2.digest && w1.unresolved == 1;
  std::printf(
      "watchdog: %llu breaches over %llu samples (run 2: %llu), digest "
      "%016llx vs %016llx, %zu unresolved spec — %s\n",
      static_cast<unsigned long long>(w1.breaches),
      static_cast<unsigned long long>(w1.samples),
      static_cast<unsigned long long>(w2.breaches),
      static_cast<unsigned long long>(w1.digest),
      static_cast<unsigned long long>(w2.digest), w1.unresolved,
      watchdog_ok ? "deterministic" : "VIOLATION");

  std::FILE* f = std::fopen("BENCH_obs.json", "w");
  if (f != nullptr) {
    const ssd::Config config = EngineConfig();
    std::fprintf(f, "{\n");
    bench::WriteJsonMeta(f, &config);
    std::fprintf(f,
                 "  \"profiler\": {\"detached_seconds\": %.4f, "
                 "\"attached_seconds\": %.4f, \"overhead\": %.4f, "
                 "\"neutral\": %s, \"windows\": %llu, \"events\": %llu},\n",
                 best[0], best[1], overhead, neutral ? "true" : "false",
                 static_cast<unsigned long long>(
                     profiler.windows_observed()),
                 static_cast<unsigned long long>(last[1].events));
    std::fprintf(f,
                 "  \"watchdog\": {\"breaches\": %llu, \"digest\": "
                 "\"%016llx\", \"digest_identical\": %s, "
                 "\"deterministic\": %s}\n}\n",
                 static_cast<unsigned long long>(w1.breaches),
                 static_cast<unsigned long long>(w1.digest),
                 w1.digest == w2.digest ? "true" : "false",
                 watchdog_ok ? "true" : "false");
    std::fclose(f);
    std::printf("wrote BENCH_obs.json\n");
  }

  if (!neutral || !watchdog_ok) return 1;
  std::printf(
      "shape check: attached profiler overhead %.2f%% (gate: <= 2%%), "
      "schedule identical on/off, watchdog deterministic.\n",
      overhead * 100.0);
  return 0;
}
