// E4 — Myth 2: "on flash SSDs, random writes are very costly and should
// be avoided."
//
// True for pre-2009 mapping schemes (block-mapped, hybrid log-block);
// false for page mapping — and a battery-backed write buffer makes the
// two patterns complete identically at the host. We sweep FTL kind x
// buffer and report sequential vs random 4 KiB write performance.

#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "common/table.h"
#include "workload/patterns.h"

namespace postblock {
namespace {

struct Row {
  double seq_iops = 0;
  double rand_iops = 0;
  SimTime seq_p50 = 0;
  SimTime rand_p50 = 0;
  double wa = 0;
};

Row Measure(ssd::FtlKind kind, bool buffered) {
  Row row;
  for (bool random : {false, true}) {
    sim::Simulator sim;
    ssd::Config cfg = ssd::Config::Small();
    cfg.geometry.channels = 4;
    cfg.geometry.luns_per_channel = 2;
    cfg.geometry.blocks_per_plane = 64;
    cfg.geometry.pages_per_block = 32;
    cfg.ftl = kind;
    cfg.write_buffer.pages = buffered ? 128 : 0;
    ssd::Device device(&sim, cfg);
    const std::uint64_t span = device.num_blocks() / 2;

    // The classic contrast: sequential *appends* into a fresh region vs
    // random *overwrites* of a populated one (what a log-structured vs
    // an update-in-place workload hand the device).
    bench::FillSequential(&sim, &device, span);
    std::unique_ptr<workload::Pattern> pattern;
    if (random) {
      pattern = std::make_unique<workload::RandomPattern>(0, span, true, 1,
                                                          21);
    } else {
      pattern = std::make_unique<workload::SequentialPattern>(
          span, device.num_blocks() - span, true);
    }
    // One pass over the region (no wrap) keeps the sequential stream a
    // true append stream.
    const auto r =
        workload::RunClosedLoop(&sim, &device, pattern.get(), span, 4);
    sim.Run();  // drain buffer + GC so WA is settled
    if (random) {
      row.rand_iops = r.Iops();
      row.rand_p50 = r.latency.P50();
      row.wa = device.WriteAmplification();
    } else {
      row.seq_iops = r.Iops();
      row.seq_p50 = r.latency.P50();
    }
  }
  return row;
}

}  // namespace
}  // namespace postblock

int main() {
  using namespace postblock;
  bench::Banner(
      "E4", "Myth 2 — random vs sequential 4KiB writes",
      "block/hybrid mapping: sequential >> random (merges); page "
      "mapping: near parity; page mapping + safe write cache: parity at "
      "cache latency regardless of pattern");

  Table table({"FTL", "write cache", "seq IOPS", "rand IOPS",
               "seq/rand ratio", "seq p50", "rand p50", "rand WA"});
  struct Config {
    ssd::FtlKind kind;
    bool buffered;
  };
  for (const Config c :
       {Config{ssd::FtlKind::kBlockMap, false},
        Config{ssd::FtlKind::kHybrid, false},
        Config{ssd::FtlKind::kDftl, false},
        Config{ssd::FtlKind::kPageMap, false},
        Config{ssd::FtlKind::kPageMap, true}}) {
    const Row row = Measure(c.kind, c.buffered);
    table.AddRow({ssd::FtlKindName(c.kind), c.buffered ? "yes" : "no",
                  Table::Num(row.seq_iops, 0),
                  Table::Num(row.rand_iops, 0),
                  Table::Num(row.seq_iops / row.rand_iops, 1) + "x",
                  Table::Time(row.seq_p50), Table::Time(row.rand_p50),
                  Table::Num(row.wa, 2)});
  }
  table.Print();
  std::printf(
      "\nshape check: the seq/rand ratio collapses from >>1 on the "
      "legacy FTLs to ~1 on page mapping; with the battery-backed cache "
      "both patterns complete at buffer-insert latency.\n");
  return 0;
}
