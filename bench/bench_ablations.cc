// Ablations over the design choices DESIGN.md calls out, plus the
// extension features: multi-plane parallelism (§2.2), priority IO
// scheduling (ref [13]), energy accounting (ref [2]), write-buffer
// sizing and the DFTL mapping-cache size.

#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "blocklayer/block_layer.h"
#include "blocklayer/simple_device.h"
#include "common/table.h"
#include "ftl/dftl.h"
#include "workload/patterns.h"

namespace postblock {
namespace {

void PlaneParallelism() {
  bench::Section("multi-plane operation (1 channel x 2 LUNs x 4 planes)");
  Table table({"plane_parallelism", "rand write IOPS", "rand read IOPS",
               "write p50"});
  for (bool enabled : {false, true}) {
    sim::Simulator sim;
    ssd::Config cfg;
    cfg.geometry.channels = 1;
    cfg.geometry.luns_per_channel = 2;
    cfg.geometry.planes_per_lun = 4;
    cfg.geometry.blocks_per_plane = 32;
    cfg.geometry.pages_per_block = 32;
    cfg.plane_parallelism = enabled;
    ssd::Device device(&sim, cfg);
    const std::uint64_t n = device.num_blocks();
    bench::FillSequential(&sim, &device, n / 2);
    workload::RandomPattern writes(0, n / 2, true, 1, 3);
    const auto w = workload::RunClosedLoop(&sim, &device, &writes, 6000, 16);
    workload::RandomPattern reads(0, n / 2, false, 1, 4);
    const auto r = workload::RunClosedLoop(&sim, &device, &reads, 6000, 16);
    table.AddRow({enabled ? "on" : "off", Table::Num(w.Iops(), 0),
                  Table::Num(r.Iops(), 0), Table::Time(w.latency.P50())});
  }
  table.Print();
}

void PriorityScheduling() {
  bench::Section(
      "WAL-write latency behind a page-flush burst (ref [13])");
  Table table({"scheduler", "log write p50", "log write p99",
               "flush burst makespan"});
  for (auto kind : {blocklayer::SchedulerKind::kNoop,
                    blocklayer::SchedulerKind::kPriority}) {
    sim::Simulator sim;
    ssd::Config ssd_cfg = ssd::Config::Consumer2012();
    ssd::Device device(&sim, ssd_cfg);
    blocklayer::BlockLayerConfig cfg;
    cfg.scheduler = kind;
    cfg.queue_depth = 8;
    blocklayer::BlockLayer layer(&sim, &device, cfg);

    Histogram log_latency;
    std::uint64_t outstanding_flushes = 0;
    // Burst of 256 background page flushes...
    for (int i = 0; i < 256; ++i) {
      blocklayer::IoRequest w;
      w.op = blocklayer::IoOp::kWrite;
      w.lba = static_cast<Lba>(i * 2);
      w.nblocks = 1;
      w.tokens = {1};
      w.on_complete = [&](const blocklayer::IoResult&) {
        --outstanding_flushes;
      };
      ++outstanding_flushes;
      layer.Submit(std::move(w));
    }
    // ...with commit-critical log writes arriving every 100us.
    for (int i = 0; i < 16; ++i) {
      sim.Schedule(static_cast<SimTime>(i) * 100 * kMicrosecond, [&] {
        blocklayer::IoRequest log;
        log.op = blocklayer::IoOp::kWrite;
        log.lba = 100000;
        log.nblocks = 1;
        log.tokens = {7};
        log.priority = 1;
        const SimTime t0 = sim.Now();
        log.on_complete = [&, t0](const blocklayer::IoResult&) {
          log_latency.Record(sim.Now() - t0);
        };
        layer.Submit(std::move(log));
      });
    }
    sim.Run();
    table.AddRow({blocklayer::SchedulerKindName(kind),
                  Table::Time(log_latency.P50()),
                  Table::Time(log_latency.P99()), Table::Time(sim.Now())});
  }
  table.Print();
}

void CopybackCost() {
  bench::Section("GC page-move cost: external read+program vs copyback");
  sim::Simulator sim;
  ssd::Config cfg = ssd::Config::SingleChip();
  ssd::Controller controller(&sim, cfg);
  controller.ProgramPage(flash::Ppa{0, 0, 0, 0, 0},
                         flash::PageData{1, 1, 1, 0}, [](Status) {});
  sim.Run();

  Table table({"mechanism", "latency", "channel busy", "energy"});
  {
    const SimTime t0 = sim.Now();
    const double e0 = static_cast<double>(controller.EnergyNj());
    const double b0 =
        static_cast<double>(controller.channel(0)->resource()->busy_ns());
    bool done = false;
    controller.ReadPage(flash::Ppa{0, 0, 0, 0, 0},
                        [&](StatusOr<flash::PageData> d) {
                          controller.ProgramPage(
                              flash::Ppa{0, 0, 0, 1, 0}, *d,
                              [&](Status) { done = true; });
                        });
    sim.Run();
    (void)done;
    table.AddRow(
        {"read + program (via controller)", Table::Time(sim.Now() - t0),
         Table::Time(static_cast<SimTime>(
             controller.channel(0)->resource()->busy_ns() - b0)),
         Table::Num((controller.EnergyNj() - e0) / 1000, 1) + " uJ"});
  }
  {
    const SimTime t0 = sim.Now();
    const double e0 = static_cast<double>(controller.EnergyNj());
    const double b0 =
        static_cast<double>(controller.channel(0)->resource()->busy_ns());
    controller.CopybackPage(flash::Ppa{0, 0, 0, 0, 0},
                            flash::Ppa{0, 0, 0, 2, 0}, [](Status) {});
    sim.Run();
    table.AddRow(
        {"copyback (in-die move)", Table::Time(sim.Now() - t0),
         Table::Time(static_cast<SimTime>(
             controller.channel(0)->resource()->busy_ns() - b0)),
         Table::Num((controller.EnergyNj() - e0) / 1000, 1) + " uJ"});
  }
  table.Print();
}

void EnergyPerWorkload() {
  bench::Section("flash energy per host 4KiB write (uFLIP-energy, ref [2])");
  Table table({"workload", "WA", "energy/host write", "total energy"});
  struct Case {
    const char* name;
    bool churn;
  };
  for (const Case c : {Case{"fresh sequential fill", false},
                       Case{"aged random overwrite", true}}) {
    sim::Simulator sim;
    ssd::Device device(&sim, ssd::Config::Small());
    const std::uint64_t n = device.num_blocks();
    if (c.churn) {
      bench::FillSequential(&sim, &device, n);
      workload::RandomPattern churn(0, n, true, 1, 5);
      bench::Precondition(&sim, &device, &churn, 2 * n);
    }
    const std::uint64_t e0 = device.controller()->EnergyNj();
    const std::uint64_t h0 =
        device.ftl()->counters().Get("host_pages_accepted");
    std::unique_ptr<workload::Pattern> p;
    if (c.churn) {
      p = std::make_unique<workload::RandomPattern>(0, n, true, 1, 6);
    } else {
      p = std::make_unique<workload::SequentialPattern>(0, n, true);
    }
    bench::Precondition(&sim, &device, p.get(), n / 2);
    const double de =
        static_cast<double>(device.controller()->EnergyNj() - e0);
    const double dh = static_cast<double>(
        device.ftl()->counters().Get("host_pages_accepted") - h0);
    table.AddRow({c.name, Table::Num(device.WriteAmplification(), 2),
                  Table::Num(de / dh / 1000, 1) + " uJ",
                  Table::Num(de / 1e9, 3) + " J"});
  }
  table.Print();
}

void BufferSizeSweep() {
  bench::Section("write-buffer size (burst of 512 random writes, QD8)");
  Table table({"buffer pages", "write p50", "write p99", "IOPS"});
  for (std::uint32_t pages : {0u, 16u, 64u, 256u, 1024u}) {
    sim::Simulator sim;
    ssd::Config cfg = ssd::Config::Consumer2012();
    cfg.write_buffer.pages = pages;
    ssd::Device device(&sim, cfg);
    workload::RandomPattern writes(0, device.num_blocks(), true, 1, 3);
    const auto r = workload::RunClosedLoop(&sim, &device, &writes, 512, 8);
    table.AddRow({Table::Int(pages), Table::Time(r.latency.P50()),
                  Table::Time(r.latency.P99()), Table::Num(r.Iops(), 0)});
  }
  table.Print();
}

void DftlCmtSweep() {
  bench::Section("DFTL cached-mapping-table size (uniform random writes)");
  Table table({"CMT pages", "cmt hit rate", "map reads", "map writes",
               "WA"});
  for (std::uint32_t cmt : {2u, 8u, 32u, 128u}) {
    sim::Simulator sim;
    ssd::Config cfg = ssd::Config::Small();
    cfg.geometry.blocks_per_plane = 64;
    cfg.ftl = ssd::FtlKind::kDftl;
    cfg.dftl_cmt_pages = cmt;
    cfg.dftl_entries_per_tp = 64;
    ssd::Device device(&sim, cfg);
    const std::uint64_t n = device.num_blocks();
    workload::RandomPattern writes(0, n, true, 1, 9);
    (void)workload::RunClosedLoop(&sim, &device, &writes, 8000, 4);
    sim.Run();
    const auto& c = device.ftl()->counters();
    const double hits = static_cast<double>(c.Get("cmt_hits"));
    const double total = hits + static_cast<double>(c.Get("cmt_misses"));
    table.AddRow({Table::Int(cmt),
                  Table::Num(100 * hits / (total > 0 ? total : 1), 1) + "%",
                  Table::Int(c.Get("map_reads")),
                  Table::Int(c.Get("map_writes")),
                  Table::Num(device.WriteAmplification(), 2)});
  }
  table.Print();
}

}  // namespace
}  // namespace postblock

int main() {
  using namespace postblock;
  bench::Banner(
      "E13", "ablations over the design space",
      "each controller design choice the paper discusses, isolated: "
      "plane parallelism, IO priorities, energy, buffer size, DFTL "
      "cache size");
  PlaneParallelism();
  PriorityScheduling();
  CopybackCost();
  EnergyPerWorkload();
  BufferSizeSweep();
  DftlCmtSweep();
  return 0;
}
