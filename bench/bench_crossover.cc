// E22 — the Section 3 crossover study: the same B+-tree/WAL database
// workload over the two ends of the paper's argument.
//
//   classic — block interface all the way down: WAL records padded to
//     whole log blocks on a page-mapped SSD (device owns an 8 B per
//     logical page L2P, GC hidden), checkpoints as plain page writes.
//   vision  — post-block: WAL appends to PCM over the memory bus, data
//     pages as epoch-tagged nameless writes to an append-mode device
//     (host owns the L2P, sized by live pages; the device keeps
//     per-block counters only and never garbage-collects on its own).
//
// Three axes, one table: commit latency, write amplification, and
// mapping-table DRAM (device + host). Emits BENCH_crossover.json for
// scripts/check_perf.sh gate 11:
//   - "determinism_ok": each wiring digests identically across two
//     runs (the post-block stack honors the schedule contract);
//   - vision write amplification must undercut classic on this
//     churn-heavy workload (the de-indirection claim, measured);
//   - the device-side L2P must shrink to per-block counters while both
//     sides report their full mapping DRAM (device + host), so the
//     footprint argument is a number, not an assertion. (On this
//     deliberately tiny, deliberately full device the *total* DRAM is
//     a wash — the host map costs ~16 B per live page vs 8 B per
//     logical page — but the host half scales with live data and can
//     be paged; the device half is pinned DRAM sized by capacity.)

#include <cstdint>
#include <cstdio>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "common/table.h"
#include "db/storage_manager.h"
#include "sim/simulator.h"
#include "ssd/device.h"

namespace postblock {
namespace {

// Sized so the block-interface side actually pays for its hidden GC: a
// bulk-loaded tree of ~220 pages plus the 64-block WAL region keeps
// the 512-page device at ~65% true utilization, so after the churn
// phase wraps the flash several times over, classic GC victims carry
// live B+-tree pages that must be relocated. The vision side's churn is
// identical — but liveness is host-declared (retire + free), so blocks
// die mostly whole and the append device's only relocations are the
// cooperative migrations it reports to the host.
constexpr std::uint64_t kBulkKeys = 28000;
constexpr int kBulkBatch = 100;
constexpr int kCommits = 3000;
// Short enough that a checkpoint's transient double-occupancy (every
// old copy stays live-named until the meta page commits the epoch)
// fits the small device on the vision side.
constexpr int kCheckpointEvery = 60;

ssd::Config CrossoverSsd(bool vision) {
  ssd::Config c = ssd::Config::Small();
  c.geometry.blocks_per_plane = 8;  // 512 pages: churn must wrap it
  if (vision) c.ftl = ssd::FtlKind::kVisionAppend;
  return c;
}

struct WiringResult {
  double commit_mean_ns = 0;
  std::uint64_t commit_p99_ns = 0;
  double wa = 0;
  std::uint64_t device_map_bytes = 0;
  std::uint64_t host_map_bytes = 0;
  std::uint64_t sim_end_ns = 0;
  std::string digest;
};

WiringResult RunWiring(db::Wiring wiring) {
  const bool vision = wiring == db::Wiring::kVision;
  sim::Simulator sim;
  ssd::Device device(&sim, CrossoverSsd(vision));
  db::StorageConfig cfg;
  cfg.wiring = wiring;
  cfg.buffer_frames = 256;
  db::StorageManager manager(&sim, &device, cfg);
  auto sync = [&](auto&& start) {
    bool fired = false;
    Status out = Status::Internal("pending");
    start([&](Status st) {
      out = std::move(st);
      fired = true;
    });
    if (!sim.RunUntilPredicate([&] { return fired; }) || !out.ok()) {
      std::fprintf(stderr, "bench_crossover: op failed: %s\n",
                   out.ToString().c_str());
      std::exit(1);
    }
  };
  sync([&](db::StorageManager::StatusCb cb) {
    manager.Bootstrap(std::move(cb));
  });

  // Bulk load: one WAL record per kBulkBatch keys, then a checkpoint
  // to put the whole tree on flash.
  Rng load_rng(17);
  for (std::uint64_t base = 0; base < kBulkKeys; base += kBulkBatch) {
    std::vector<db::WalOp> ops;
    ops.reserve(kBulkBatch);
    for (int j = 0; j < kBulkBatch; ++j) {
      ops.push_back({db::WalOp::Kind::kPut, base + j, load_rng.Next() | 1});
    }
    sync([&](db::StorageManager::StatusCb cb) {
      manager.CommitBatch(std::move(ops), std::move(cb));
    });
  }
  sync([&](db::StorageManager::StatusCb cb) {
    manager.Checkpoint(std::move(cb));
  });

  // Overwrite-heavy transactional churn: the WAL absorbs every commit
  // (padded log blocks on classic, PCM bytes on vision) and the
  // checkpoints repeatedly replace B+-tree pages scattered across the
  // whole key space.
  Rng rng(33);
  for (int i = 0; i < kCommits; ++i) {
    const std::uint64_t k = rng.Uniform(kBulkKeys);
    if (rng.Bernoulli(0.15)) {
      sync([&](db::StorageManager::StatusCb cb) {
        manager.Delete(k, std::move(cb));
      });
    } else {
      const std::uint64_t v = rng.Next() | 1;
      sync([&](db::StorageManager::StatusCb cb) {
        manager.Put(k, v, std::move(cb));
      });
    }
    if (i % kCheckpointEvery == kCheckpointEvery - 1) {
      sync([&](db::StorageManager::StatusCb cb) {
        manager.Checkpoint(std::move(cb));
      });
    }
  }

  WiringResult r;
  r.commit_mean_ns = manager.commit_latency().Mean();
  r.commit_p99_ns = manager.commit_latency().P99();
  r.wa = device.ftl()->WriteAmplification();
  r.device_map_bytes = device.Caps().mapping_table_bytes;
  r.host_map_bytes =
      manager.host_map() != nullptr ? manager.host_map()->MappingBytes() : 0;
  r.sim_end_ns = sim.Now();
  std::ostringstream digest;
  digest << sim.Now() << ':' << manager.counters().Get("txns") << ':'
         << manager.counters().Get("checkpoints") << ':' << r.wa << ':'
         << device.counters().Get("requests") << ':'
         << device.counters().Get("nameless_writes") << ':'
         << device.counters().Get("nameless_frees") << ':'
         << r.host_map_bytes << ':' << r.commit_mean_ns;
  r.digest = digest.str();
  return r;
}

}  // namespace
}  // namespace postblock

int main() {
  using namespace postblock;
  bench::Banner(
      "E22", "the Section 3 crossover study",
      "killing the block interface wins on every axis at once: commit "
      "latency (PCM sync path), write amplification (host-declared "
      "liveness, no hidden GC) and mapping DRAM (one map, sized by "
      "live pages, instead of a redundant device L2P over the whole "
      "logical space)");

  // Run-twice determinism per wiring: the crossover numbers are
  // schedule observables, so they must reproduce bit for bit.
  const WiringResult classic = RunWiring(db::Wiring::kClassic);
  const WiringResult classic2 = RunWiring(db::Wiring::kClassic);
  const WiringResult vision = RunWiring(db::Wiring::kVision);
  const WiringResult vision2 = RunWiring(db::Wiring::kVision);
  const bool deterministic =
      classic.digest == classic2.digest && vision.digest == vision2.digest;

  const std::uint64_t classic_map =
      classic.device_map_bytes + classic.host_map_bytes;
  const std::uint64_t vision_map =
      vision.device_map_bytes + vision.host_map_bytes;

  Table table({"metric", "classic (block)", "vision (post-block)"});
  table.AddRow({"commit latency mean", Table::Time(static_cast<std::uint64_t>(
                                           classic.commit_mean_ns)),
                Table::Time(static_cast<std::uint64_t>(
                    vision.commit_mean_ns))});
  table.AddRow({"commit latency p99", Table::Time(classic.commit_p99_ns),
                Table::Time(vision.commit_p99_ns)});
  table.AddRow({"write amplification", Table::Num(classic.wa, 3),
                Table::Num(vision.wa, 3)});
  table.AddRow({"device map DRAM (B)", Table::Int(classic.device_map_bytes),
                Table::Int(vision.device_map_bytes)});
  table.AddRow({"host map DRAM (B)", Table::Int(classic.host_map_bytes),
                Table::Int(vision.host_map_bytes)});
  table.AddRow({"total map DRAM (B)", Table::Int(classic_map),
                Table::Int(vision_map)});
  table.AddRow({"run-twice digest", classic.digest == classic2.digest
                                        ? "identical"
                                        : "DIVERGED",
                vision.digest == vision2.digest ? "identical" : "DIVERGED"});
  table.Print();

  const double speedup =
      vision.commit_mean_ns > 0 ? classic.commit_mean_ns / vision.commit_mean_ns
                                : 0;
  const double device_map_shrink =
      vision.device_map_bytes > 0
          ? static_cast<double>(classic.device_map_bytes) /
                static_cast<double>(vision.device_map_bytes)
          : 0;
  std::printf(
      "\nshape check: vision commits %.0fx faster, WA %.3f vs %.3f, "
      "device L2P DRAM %.1fx smaller (total map DRAM %llu B vs %llu B).\n",
      speedup, vision.wa, classic.wa, device_map_shrink,
      static_cast<unsigned long long>(classic_map),
      static_cast<unsigned long long>(vision_map));

  std::FILE* f = std::fopen("BENCH_crossover.json", "w");
  if (f != nullptr) {
    const ssd::Config shape = CrossoverSsd(false);
    std::fprintf(f, "{\n");
    bench::WriteJsonMeta(f, &shape);
    std::fprintf(f, "  \"determinism_ok\": %s,\n",
                 deterministic ? "true" : "false");
    auto wiring_json = [&](const char* name, const WiringResult& r) {
      std::fprintf(f,
                   "  \"%s\": {\"commit_mean_ns\": %.1f, "
                   "\"commit_p99_ns\": %llu, "
                   "\"write_amplification\": %.4f, "
                   "\"device_map_bytes\": %llu, \"host_map_bytes\": %llu, "
                   "\"sim_end_ns\": %llu},\n",
                   name, r.commit_mean_ns,
                   static_cast<unsigned long long>(r.commit_p99_ns), r.wa,
                   static_cast<unsigned long long>(r.device_map_bytes),
                   static_cast<unsigned long long>(r.host_map_bytes),
                   static_cast<unsigned long long>(r.sim_end_ns));
    };
    wiring_json("classic", classic);
    wiring_json("vision", vision);
    std::fprintf(f,
                 "  \"crossover\": {\"commit_speedup\": %.2f, "
                 "\"device_map_shrink\": %.3f, "
                 "\"classic_total_map_bytes\": %llu, "
                 "\"vision_total_map_bytes\": %llu}\n",
                 speedup, device_map_shrink,
                 static_cast<unsigned long long>(classic_map),
                 static_cast<unsigned long long>(vision_map));
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("wrote BENCH_crossover.json\n");
  }
  return 0;
}
