// bench_sharded_device — the full ssd::Device on the sharded engine.
//
// Runs a closed-loop aged-device workload (sequential precondition,
// then a 40%-write random mix at QD 32, GC relocations crossing the
// controller/channel seam) through the real controller/FTL/channel
// stack on one shard per flash channel plus a controller shard, at
// workers = 0 (sequential reference), 1, 2 and 4. Reports events/sec,
// speedup, and the determinism bit: every worker count must produce a
// combined fingerprint (model observables + committed schedule)
// byte-identical to the sequential reference.
//
// Emits BENCH_sharded_device.json; scripts/check_perf.sh gate 10
// enforces the determinism bit unconditionally and the >= 1.5x
// events/sec floor at 4 workers when the machine actually has >= 4
// hardware threads.

#include <chrono>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "ssd/config.h"
#include "ssd/sharded_device.h"

namespace postblock::ssd {
namespace {

struct Row {
  std::uint32_t workers = 0;
  std::uint64_t events = 0;
  std::uint64_t messages = 0;
  std::uint64_t rounds = 0;
  double seconds = 0;
  std::uint64_t fingerprint = 0;
  SimTime sim_end_ns = 0;
  double wa = 0;

  double eps() const { return seconds > 0 ? events / seconds : 0; }
};

Config BenchConfig() {
  Config config;
  config.geometry.channels = 4;
  config.geometry.luns_per_channel = 4;
  config.geometry.planes_per_lun = 1;
  config.geometry.blocks_per_plane = 64;
  config.geometry.pages_per_block = 32;
  config.geometry.page_size_bytes = 4096;
  return config;
}

ShardedDeviceRun BenchRun(std::uint32_t workers, std::uint64_t ios) {
  ShardedDeviceRun run;
  run.workers = workers;
  run.queue_depth = 32;
  run.total_ios = ios;
  run.write_percent = 40;
  run.fill_fraction = 0.7;
  run.seed = 0xdead5eed;
  return run;
}

Row RunOnce(std::uint32_t workers, std::uint64_t ios) {
  ShardedDeviceSim sim(BenchConfig(), BenchRun(workers, ios));
  const auto t0 = std::chrono::steady_clock::now();
  const SimTime end = sim.Run();
  const auto t1 = std::chrono::steady_clock::now();

  Row row;
  row.workers = workers;
  row.events = sim.engine()->events_executed();
  row.messages = sim.engine()->messages_delivered();
  row.rounds = sim.engine()->rounds();
  row.seconds = std::chrono::duration<double>(t1 - t0).count();
  row.fingerprint = sim.CombinedFingerprint();
  row.sim_end_ns = end;
  row.wa = sim.device()->WriteAmplification();
  return row;
}

int Main() {
  constexpr std::uint64_t kIos = 120'000;
  const std::uint32_t hw = std::thread::hardware_concurrency();

  std::printf("bench_sharded_device: full ssd::Device on the sharded "
              "engine\n");
  std::printf("  4 channels + controller shard, %" PRIu64
              " IOs at QD 32 (40%% writes, aged 70%%), "
              "hardware_concurrency=%u\n\n",
              kIos, hw);

  const std::vector<std::uint32_t> worker_counts = {0, 1, 2, 4};
  std::vector<Row> rows;
  for (const std::uint32_t w : worker_counts) {
    // Warm-up at a fraction of the size, then the measured run.
    RunOnce(w, kIos / 10);
    Row row = RunOnce(w, kIos);
    std::printf("  workers=%u: %8.2fM ev/s  (%" PRIu64 " events, %" PRIu64
                " seam msgs, %" PRIu64 " rounds, WA %.2f, %.3fs)\n",
                w, row.eps() / 1e6, row.events, row.messages, row.rounds,
                row.wa, row.seconds);
    rows.push_back(row);
  }

  const Row& seq = rows[0];
  bool determinism_ok = true;
  for (const Row& r : rows) {
    if (r.fingerprint != seq.fingerprint || r.events != seq.events) {
      std::printf("DETERMINISM MISMATCH at workers=%u: fingerprint "
                  "%016" PRIx64 " vs reference %016" PRIx64 "\n",
                  r.workers, r.fingerprint, seq.fingerprint);
      determinism_ok = false;
    }
  }

  const double speedup_4w =
      seq.seconds > 0 && rows.back().seconds > 0
          ? seq.seconds / rows.back().seconds
          : 0;
  std::printf("\ndeterminism: %s\n",
              determinism_ok ? "all worker counts byte-identical"
                             : "MISMATCH");
  std::printf("speedup at 4 workers vs sequential: %.2fx%s\n", speedup_4w,
              hw < 4 ? "  (machine has <4 hardware threads; floor not "
                       "meaningful here)"
                     : "");

  std::FILE* f = std::fopen("BENCH_sharded_device.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write BENCH_sharded_device.json\n");
    return 1;
  }
  std::fprintf(f, "{\n");
  const Config config = BenchConfig();
  bench::WriteJsonMeta(f, &config, /*workers=*/4);
  for (const Row& r : rows) {
    std::fprintf(f,
                 "  \"workers%u\": {\"events\": %" PRIu64
                 ", \"eps\": %.0f, \"seconds\": %.6f, \"seam_messages\": "
                 "%" PRIu64 ", \"rounds\": %" PRIu64
                 ", \"write_amplification\": %.4f, \"fingerprint\": "
                 "\"%016" PRIx64 "\", \"sim_end_ns\": %" PRIu64 "},\n",
                 r.workers, r.events, r.eps(), r.seconds, r.messages,
                 r.rounds, r.wa, r.fingerprint,
                 static_cast<std::uint64_t>(r.sim_end_ns));
  }
  std::fprintf(f, "  \"determinism_ok\": %s,\n",
               determinism_ok ? "true" : "false");
  std::fprintf(f, "  \"speedup_4w\": %.3f\n", speedup_4w);
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote BENCH_sharded_device.json\n");
  return determinism_ok ? 0 : 1;
}

}  // namespace
}  // namespace postblock::ssd

int main() { return postblock::ssd::Main(); }
