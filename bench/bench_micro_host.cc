// E12 — host-side microbenchmarks (google-benchmark): the in-memory
// data structures whose per-op cost underlies the simulator and the
// FTL mapping paths. Real wall-clock time, not simulated time.

#include <benchmark/benchmark.h>

#include "common/histogram.h"
#include "common/rng.h"
#include "flash/address.h"
#include "sim/event_queue.h"
#include "sim/simulator.h"
#include "workload/zipf.h"

namespace postblock {
namespace {

void BM_EventQueuePushPop(benchmark::State& state) {
  sim::EventQueue q;
  Rng rng(1);
  std::uint64_t t = 0;
  for (auto _ : state) {
    q.Push(t + rng.Uniform(1000), [] {});
    if (q.size() > 64) q.Pop()();
    ++t;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EventQueuePushPop);

void BM_SimulatorEventDispatch(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    sim::Simulator sim;
    int sink = 0;
    for (int i = 0; i < 1000; ++i) {
      sim.Schedule(static_cast<SimTime>(i), [&sink] { ++sink; });
    }
    state.ResumeTiming();
    sim.Run();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_SimulatorEventDispatch);

void BM_HistogramRecord(benchmark::State& state) {
  Histogram h;
  Rng rng(1);
  for (auto _ : state) {
    h.Record(rng.Uniform(10'000'000));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramRecord);

void BM_HistogramPercentile(benchmark::State& state) {
  Histogram h;
  Rng rng(1);
  for (int i = 0; i < 100000; ++i) h.Record(rng.Uniform(10'000'000));
  for (auto _ : state) {
    benchmark::DoNotOptimize(h.Percentile(99.0));
  }
}
BENCHMARK(BM_HistogramPercentile);

void BM_RngNext(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.Next());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RngNext);

void BM_ZipfNext(benchmark::State& state) {
  workload::ZipfGenerator zipf(state.range(0), 0.99);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.Next());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ZipfNext)->Arg(1000)->Arg(100000);

void BM_PpaFlattenRoundTrip(benchmark::State& state) {
  flash::Geometry g;
  g.channels = 8;
  g.luns_per_channel = 4;
  g.blocks_per_plane = 256;
  g.pages_per_block = 128;
  Rng rng(1);
  for (auto _ : state) {
    const std::uint64_t flat = rng.Uniform(g.total_pages());
    const flash::Ppa ppa = flash::Ppa::FromFlat(g, flat);
    benchmark::DoNotOptimize(ppa.Flatten(g));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PpaFlattenRoundTrip);

}  // namespace
}  // namespace postblock

BENCHMARK_MAIN();
