// E19 — multi-tenant virtual block devices: the blkif-style
// front-end/back-end split multiplexing many tenants onto one device.
//
// Emits BENCH_vbd.json for scripts/check_perf.sh gate 8:
//   - "neutral": a single pass-through tenant (whole device, no QoS
//     gate) must produce a schedule bit-identical to driving the
//     device directly — the in-binary proxy for "all 12 paper benches
//     unchanged with no tenants configured";
//   - "scaling": create/run/destroy at 1/16/256/1024 tenants (sim-time
//     IOPS, wall clock, full-run digest), with the 256-tenant point run
//     twice — the digests must match (determinism at scale);
//   - "noisy": the uFLIP noisy-neighbor scene on a real flash device.
//     One latency-sensitive tenant reads at depth while an aggressor
//     issues GC-heavy random writes. Unthrottled, the victim's p999
//     collapses (the motivating number); with DRR QoS weights on the
//     backend's admission gate, the aggressor is starved of device
//     slots, never pushes the device over the GC cliff, and the
//     victim's p999 stays < 2x its solo run — the gate 8 bound.

#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "blocklayer/simple_device.h"
#include "common/histogram.h"
#include "common/table.h"
#include <chrono>
#include "metrics/metrics.h"
#include "metrics/sampler.h"
#include "obs/slo_watchdog.h"
#include "sim/simulator.h"
#include "ssd/config.h"
#include "ftl/ftl.h"
#include "ssd/device.h"
#include "vbd/backend.h"
#include "vbd/frontend.h"
#include "vbd/vbd.h"
#include "workload/multi_tenant.h"
#include "workload/patterns.h"

namespace postblock {
namespace {

blocklayer::SimpleDeviceConfig FastNvm(std::uint64_t blocks) {
  blocklayer::SimpleDeviceConfig cfg;
  cfg.num_blocks = blocks;
  cfg.read_ns = 8 * kMicrosecond;
  cfg.write_ns = 10 * kMicrosecond;
  cfg.units = 64;
  cfg.controller_overhead_ns = 1 * kMicrosecond;
  return cfg;
}

// Schedule fingerprint: FNV-1a over every (completion time, io id) in
// completion order, plus the final sim time (bench_mq's witness).
struct Fingerprint {
  std::uint64_t hash = 1469598103934665603ull;
  std::uint64_t completed = 0;
  SimTime end = 0;

  void Mix(std::uint64_t v) {
    for (int b = 0; b < 8; ++b) {
      hash ^= (v >> (8 * b)) & 0xff;
      hash *= 1099511628211ull;
    }
  }
};

// --- Neutrality -------------------------------------------------------

/// Sequential write pass over the whole device then `reads` strided
/// reads, closed loop; `through_vbd` routes every IO through a Backend
/// with one whole-device pass-through tenant instead of the raw device.
Fingerprint RunNeutral(bool through_vbd, std::uint64_t blocks,
                       std::uint64_t reads) {
  sim::Simulator sim;
  blocklayer::SimpleBlockDevice dev(&sim, FastNvm(blocks));
  std::unique_ptr<vbd::Backend> backend;
  blocklayer::BlockDevice* target = &dev;
  if (through_vbd) {
    backend = std::make_unique<vbd::Backend>(&sim, &dev);
    vbd::TenantConfig tc;
    tc.name = "passthrough";
    tc.capacity_blocks = blocks;
    target = backend->CreateTenant(tc).value();
  }

  Fingerprint fp;
  const std::uint64_t ops = blocks + reads;
  std::uint64_t issued = 0;
  std::function<void()> issue = [&] {
    while (issued < ops && issued - fp.completed < 16) {
      blocklayer::IoRequest r;
      const std::uint64_t id = issued++;
      if (id < blocks) {
        r.op = blocklayer::IoOp::kWrite;
        r.lba = id;
        r.tokens = {id + 1};
      } else {
        r.op = blocklayer::IoOp::kRead;
        r.lba = (id * 37) % blocks;
      }
      r.nblocks = 1;
      r.on_complete = [&, id](const blocklayer::IoResult&) {
        ++fp.completed;
        fp.Mix(sim.Now());
        fp.Mix(id);
        issue();
      };
      target->Submit(std::move(r));
    }
  };
  issue();
  fp.end = sim.Run();
  return fp;
}

// --- Tenant-count scaling ---------------------------------------------

struct ScalePoint {
  std::uint32_t tenants = 0;
  std::uint64_t ios = 0;
  double sim_ms = 0;
  double wall_ms = 0;
  double iops = 0;  // sim-time IOPS across all tenants
  std::uint64_t digest = 0;
};

/// Full lifecycle at `n` tenants: create all, run a concurrent write
/// mix (64 shared device slots, DRR weights 1..4), destroy all. The
/// digest folds every completion (tenant, time, status) plus the final
/// clock — the run-twice determinism witness.
ScalePoint RunScale(std::uint32_t n) {
  const auto wall0 = std::chrono::steady_clock::now();
  sim::Simulator sim;
  blocklayer::SimpleBlockDevice dev(&sim,
                                    FastNvm(static_cast<std::uint64_t>(n) *
                                            64));
  vbd::BackendConfig cfg;
  cfg.shared_depth = 64;
  vbd::Backend backend(&sim, &dev, cfg);

  std::vector<vbd::Frontend*> fes;
  std::vector<std::unique_ptr<workload::Pattern>> patterns;
  std::vector<workload::TenantLoad> loads;
  fes.reserve(n);
  for (std::uint32_t t = 0; t < n; ++t) {
    vbd::TenantConfig tc;
    tc.capacity_blocks = 64;
    tc.qos_weight = 1 + t % 4;
    fes.push_back(backend.CreateTenant(tc).value());
    patterns.push_back(std::make_unique<workload::RandomPattern>(
        0, 64, /*is_write=*/true, 1, /*seed=*/1000 + t));
    loads.push_back({fes.back(), patterns.back().get(), /*ops=*/50,
                     /*queue_depth=*/2, /*think_ns=*/0});
  }
  const workload::MixResult mix = workload::RunMultiTenantMix(&sim, loads);

  std::uint64_t destroyed = 0;
  for (vbd::Frontend* fe : fes) {
    (void)backend.DestroyTenant(
        fe->id(), [&](const blocklayer::IoResult&) { ++destroyed; });
  }
  sim.Run();

  ScalePoint p;
  p.tenants = n;
  p.ios = static_cast<std::uint64_t>(n) * 50;
  p.sim_ms = static_cast<double>(mix.elapsed_ns) / 1e6;
  p.wall_ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - wall0)
                  .count();
  p.iops = static_cast<double>(p.ios) /
           (static_cast<double>(mix.elapsed_ns) / 1e9);
  Fingerprint fp;
  fp.hash = mix.digest;
  fp.Mix(sim.Now());
  fp.Mix(destroyed);
  p.digest = fp.hash;
  return p;
}

// --- Noisy neighbor ---------------------------------------------------

struct NoisyScene {
  std::uint64_t p999_ns = 0;
  std::uint64_t p50_ns = 0;
  std::uint64_t victim_reads = 0;
  std::uint64_t aggressor_writes = 0;
  std::uint64_t gc_erases = 0;
  // SLO watchdog observations (slo_bound_ns > 0 runs only).
  std::uint64_t slo_breaches = 0;
  std::uint64_t slo_digest = 0;
};

constexpr std::uint64_t kVictimBlocks = 512;
constexpr std::uint64_t kAggressorBlocks = 1024;
constexpr std::uint64_t kVictimOps = 20000;
constexpr std::uint32_t kVictimDepth = 32;

/// One deterministic noisy-neighbor scene on a Small flash device.
/// `with_aggressor` adds the random-write tenant; `qos` turns on the
/// backend's shared-depth DRR gate (victim weight 64 : aggressor 1).
/// `slo_bound_ns` > 0 attaches the obs::SloWatchdog on a 2 ms sampling
/// grid with a p999 bound on the victim's per-window read latency —
/// read-only observability, so the scene's schedule is unchanged.
NoisyScene RunNoisy(bool with_aggressor, bool qos,
                    std::uint64_t slo_bound_ns = 0) {
  sim::Simulator sim;
  ssd::Config dc = ssd::Config::Small();
  ssd::Device dev(&sim, dc);

  metrics::MetricRegistry registry;
  vbd::BackendConfig cfg;
  if (qos) cfg.shared_depth = kVictimDepth;
  if (slo_bound_ns > 0) cfg.metrics = &registry;
  vbd::Backend backend(&sim, &dev, cfg);

  vbd::TenantConfig vc;
  vc.name = "victim";
  vc.capacity_blocks = kVictimBlocks;
  vc.qos_weight = 64;
  vc.register_metrics = slo_bound_ns > 0;
  vbd::Frontend* victim = backend.CreateTenant(vc).value();

  vbd::Frontend* aggressor = nullptr;
  if (with_aggressor) {
    vbd::TenantConfig ac;
    ac.name = "aggressor";
    ac.capacity_blocks = kAggressorBlocks;
    ac.qos_weight = 1;
    aggressor = backend.CreateTenant(ac).value();
  }

  // Precondition: the victim's namespace is fully written (its reads
  // must hit media, not the thin-provisioning zero path); the
  // aggressor starts half full so its random overwrites invalidate
  // pages and drag the device toward the GC cliff.
  workload::SequentialPattern vfill(0, kVictimBlocks, /*is_write=*/true);
  workload::RunClosedLoop(&sim, victim, &vfill, kVictimBlocks, 8);
  if (aggressor != nullptr) {
    workload::SequentialPattern afill(0, kAggressorBlocks / 2,
                                      /*is_write=*/true);
    workload::RunClosedLoop(&sim, aggressor, &afill, kAggressorBlocks / 2,
                            8);
  }
  sim.Run();
  const std::uint64_t erases_before = dev.ftl()->counters().Get("gc_erases");

  // The SLO watchdog rides the sampler grid, started only for the
  // measured mix (the fill traffic above is not part of the objective).
  std::unique_ptr<metrics::Sampler> sampler;
  std::unique_ptr<obs::SloWatchdog> watchdog;
  if (slo_bound_ns > 0) {
    sampler = std::make_unique<metrics::Sampler>(&sim, &registry,
                                                 2 * kMillisecond);
    watchdog = std::make_unique<obs::SloWatchdog>(std::vector<obs::SloSpec>{
        {"victim read p999", "vbd.victim.read_lat_ns",
         obs::SloKind::kMaxP999, static_cast<double>(slo_bound_ns),
         /*min_window_count=*/16}});
    sampler->set_observer(watchdog.get());
    sampler->Start();
  }

  workload::RandomPattern vreads(0, kVictimBlocks, /*is_write=*/false, 1,
                                 /*seed=*/5);
  workload::RandomPattern awrites(0, kAggressorBlocks, /*is_write=*/true,
                                  1, /*seed=*/6);
  std::vector<workload::TenantLoad> loads;
  loads.push_back({victim, &vreads, kVictimOps, kVictimDepth, 0});
  if (aggressor != nullptr) {
    loads.push_back({aggressor, &awrites, /*ops=*/0, /*queue_depth=*/8,
                     /*think_ns=*/0});
  }
  const workload::MixResult mix = workload::RunMultiTenantMix(&sim, loads);
  if (sampler != nullptr) sampler->Stop();

  NoisyScene s;
  s.p999_ns = mix.tenants[0].read_latency.P999();
  s.p50_ns = mix.tenants[0].read_latency.P50();
  s.victim_reads = mix.tenants[0].completed;
  s.aggressor_writes =
      aggressor != nullptr ? mix.tenants[1].completed : 0;
  s.gc_erases = dev.ftl()->counters().Get("gc_erases") - erases_before;
  if (watchdog != nullptr) {
    s.slo_breaches = watchdog->total_breaches();
    s.slo_digest = watchdog->Digest();
  }
  return s;
}

}  // namespace
}  // namespace postblock

int main() {
  using namespace postblock;
  bench::Banner(
      "E19", "multi-tenant virtual block devices — isolation and QoS",
      "the block interface multiplexes tenants blindly; a vbd split "
      "with per-tenant namespaces and DRR admission bounds a victim's "
      "tail latency while an aggressor runs GC-heavy writes");

  // 1. Neutrality: pass-through tenant vs raw device.
  const Fingerprint raw = RunNeutral(false, 4096, 8000);
  const Fingerprint vbd_fp = RunNeutral(true, 4096, 8000);
  const bool schedule_identical = raw.hash == vbd_fp.hash &&
                                  raw.end == vbd_fp.end &&
                                  raw.completed == vbd_fp.completed;
  bench::Section("pass-through neutrality");
  std::printf(
      "raw device vs 1 whole-device tenant: %s (fingerprint %016llx, "
      "%llu IOs, sim end %llu ns)\n",
      schedule_identical ? "schedule identical" : "SCHEDULES DIVERGED",
      static_cast<unsigned long long>(raw.hash),
      static_cast<unsigned long long>(raw.completed),
      static_cast<unsigned long long>(raw.end));

  // 2. Tenant-count scaling, with the 256 point run twice.
  bench::Section("tenant-count scaling (create/run/destroy, 50 IOs/tenant)");
  std::vector<ScalePoint> scale;
  std::uint64_t digest256_a = 0, digest256_b = 0;
  {
    Table table({"tenants", "IOs", "sim ms", "wall ms", "sim IOPS"});
    for (const std::uint32_t n : {1u, 16u, 256u, 1024u}) {
      const ScalePoint p = RunScale(n);
      if (n == 256) {
        digest256_a = p.digest;
        digest256_b = RunScale(n).digest;
      }
      scale.push_back(p);
      table.AddRow({std::to_string(p.tenants), std::to_string(p.ios),
                    Table::Num(p.sim_ms, 2), Table::Num(p.wall_ms, 1),
                    Table::Num(p.iops, 0)});
    }
    table.Print();
  }
  const bool digest_identical = digest256_a == digest256_b;
  std::printf("256-tenant run-twice digest: %s (%016llx)\n",
              digest_identical ? "identical" : "DIVERGED",
              static_cast<unsigned long long>(digest256_a));

  // 3. Noisy neighbor on flash: solo, unthrottled, QoS-throttled.
  bench::Section("noisy neighbor (flash, victim reads qd32 vs GC-heavy "
                 "random writes)");
  const NoisyScene solo = RunNoisy(false, false);
  // Declare the gate-8 objective as a live SLO: victim per-window read
  // p999 <= 2x its solo p999, watched by obs::SloWatchdog on both
  // shared scenes. The unthrottled scene is the intentional breacher.
  const std::uint64_t slo_bound_ns = 2 * solo.p999_ns;
  const NoisyScene noqos = RunNoisy(true, false, slo_bound_ns);
  const NoisyScene qos = RunNoisy(true, true, slo_bound_ns);
  const double ratio_noqos = static_cast<double>(noqos.p999_ns) /
                             static_cast<double>(solo.p999_ns);
  const double ratio_qos = static_cast<double>(qos.p999_ns) /
                           static_cast<double>(solo.p999_ns);
  {
    Table table({"scene", "victim p50", "victim p999", "vs solo",
                 "aggressor IOs", "GC erases"});
    const auto row = [&](const char* name, const NoisyScene& s,
                         double ratio) {
      table.AddRow({name, Table::Num(s.p50_ns / 1e3, 0) + " us",
                    Table::Num(s.p999_ns / 1e3, 0) + " us",
                    ratio == 0 ? "-" : Table::Num(ratio, 2) + "x",
                    std::to_string(s.aggressor_writes),
                    std::to_string(s.gc_erases)});
    };
    row("solo", solo, 0);
    row("shared, no QoS", noqos, ratio_noqos);
    row("shared, DRR 64:1", qos, ratio_qos);
    table.Print();
  }
  std::printf(
      "\nshape check: unthrottled sharing multiplies the victim's p999 "
      "(%.1fx); the DRR admission gate starves the aggressor of device "
      "slots and holds it to %.2fx (< 2x required).\n",
      ratio_noqos, ratio_qos);
  std::printf(
      "SLO watchdog (victim window p999 <= %.0f us): %llu breaches "
      "unthrottled, %llu with QoS (digests %016llx / %016llx)\n",
      slo_bound_ns / 1e3,
      static_cast<unsigned long long>(noqos.slo_breaches),
      static_cast<unsigned long long>(qos.slo_breaches),
      static_cast<unsigned long long>(noqos.slo_digest),
      static_cast<unsigned long long>(qos.slo_digest));

  // BENCH_vbd.json for gate 8.
  std::FILE* f = std::fopen("BENCH_vbd.json", "w");
  if (f != nullptr) {
    std::fprintf(f, "{\n");
    bench::WriteJsonMeta(f, nullptr, 0, /*tenants=*/1024, /*queues=*/1);
    std::fprintf(f,
                 "  \"neutral\": {\"schedule_identical\": %s, "
                 "\"fingerprint\": \"%016llx\", \"ios\": %llu},\n",
                 schedule_identical ? "true" : "false",
                 static_cast<unsigned long long>(raw.hash),
                 static_cast<unsigned long long>(raw.completed));
    std::fprintf(f, "  \"scaling\": {");
    for (std::size_t i = 0; i < scale.size(); ++i) {
      std::fprintf(f,
                   "%s\"t%u\": {\"ios\": %llu, \"sim_ms\": %.3f, "
                   "\"wall_ms\": %.1f, \"iops\": %.0f}",
                   i == 0 ? "" : ", ", scale[i].tenants,
                   static_cast<unsigned long long>(scale[i].ios),
                   scale[i].sim_ms, scale[i].wall_ms, scale[i].iops);
    }
    std::fprintf(f, ", \"digest_identical_256\": %s},\n",
                 digest_identical ? "true" : "false");
    std::fprintf(f,
                 "  \"noisy\": {\"p999_solo_us\": %.1f, "
                 "\"p999_noqos_us\": %.1f, \"p999_qos_us\": %.1f, "
                 "\"ratio_noqos\": %.3f, \"ratio_qos\": %.3f, "
                 "\"gc_erases_noqos\": %llu, \"gc_erases_qos\": %llu},\n",
                 solo.p999_ns / 1e3, noqos.p999_ns / 1e3,
                 qos.p999_ns / 1e3, ratio_noqos, ratio_qos,
                 static_cast<unsigned long long>(noqos.gc_erases),
                 static_cast<unsigned long long>(qos.gc_erases));
    std::fprintf(f,
                 "  \"slo\": {\"bound_ns\": %llu, "
                 "\"breaches_noqos\": %llu, \"breaches_qos\": %llu, "
                 "\"digest_noqos\": \"%016llx\", \"digest_qos\": "
                 "\"%016llx\"}\n",
                 static_cast<unsigned long long>(slo_bound_ns),
                 static_cast<unsigned long long>(noqos.slo_breaches),
                 static_cast<unsigned long long>(qos.slo_breaches),
                 static_cast<unsigned long long>(noqos.slo_digest),
                 static_cast<unsigned long long>(qos.slo_digest));
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("wrote BENCH_vbd.json\n");
  }
  return 0;
}
