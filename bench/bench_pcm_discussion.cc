// E11 — Section 2.4 discussion: "even if we contemplate pure PCM-based
// SSDs, the issues of parallelism, wear leveling and error management
// will likely introduce significant complexity. Also, PCM-based SSDs
// will not make the issues of low latency and high-parallelism
// disappear."
//
// We compare persisting 64B and 4KiB through (a) PCM on the memory bus
// and (b) an Onyx-style PCM SSD behind the block interface + block
// layer, idle and under load — the interface, not the medium, sets the
// floor.

#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "blocklayer/block_layer.h"
#include "blocklayer/simple_device.h"
#include "common/table.h"
#include "pcm/pcm_device.h"
#include "workload/patterns.h"

namespace postblock {
namespace {

blocklayer::SimpleDeviceConfig OnyxLike() {
  // PCM array behind a block controller: fast medium, block-granular.
  blocklayer::SimpleDeviceConfig cfg;
  cfg.num_blocks = 1 << 18;
  cfg.read_ns = 8 * kMicrosecond;    // 4 KiB over PCM banks
  cfg.write_ns = 25 * kMicrosecond;
  cfg.units = 16;
  cfg.controller_overhead_ns = 2 * kMicrosecond;
  return cfg;
}

}  // namespace
}  // namespace postblock

int main() {
  using namespace postblock;
  bench::Banner(
      "E11", "Section 2.4 — PCM does not dissolve the problem",
      "PCM on the memory bus persists 64B in ~ns; the same medium "
      "behind a block interface pays block granularity + stack overhead "
      "+ queueing — the abstraction, not the cell, dominates");

  bench::Section("persist latency by path");
  {
    Table table({"path", "64 B persist", "4 KiB persist"});
    {
      sim::Simulator sim;
      pcm::PcmDevice dimm(&sim, pcm::PcmConfig{});
      SimTime t64 = 0;
      SimTime t4k = 0;
      bool done = false;
      const SimTime s1 = sim.Now();
      dimm.Write(0, std::vector<std::uint8_t>(64, 1), [&](Status) {
        t64 = sim.Now() - s1;
        done = true;
      });
      sim.RunUntilPredicate([&] { return done; });
      done = false;
      const SimTime s2 = sim.Now();
      dimm.Write(4096, std::vector<std::uint8_t>(4096, 1), [&](Status) {
        t4k = sim.Now() - s2;
        done = true;
      });
      sim.RunUntilPredicate([&] { return done; });
      table.AddRow({"PCM DIMM (memory bus)", Table::Time(t64),
                    Table::Time(t4k)});
    }
    {
      sim::Simulator sim;
      blocklayer::SimpleBlockDevice pcm_ssd(&sim, OnyxLike());
      blocklayer::BlockLayerConfig blcfg;
      blocklayer::BlockLayer layer(&sim, &pcm_ssd, blcfg);
      auto persist_one = [&]() {
        blocklayer::IoRequest w;
        w.op = blocklayer::IoOp::kWrite;
        w.lba = 1;
        w.nblocks = 1;
        w.tokens = {1};
        bool fired = false;
        const SimTime s = sim.Now();
        SimTime latency = 0;
        w.on_complete = [&](const blocklayer::IoResult&) {
          latency = sim.Now() - s;
          fired = true;
        };
        layer.Submit(std::move(w));
        sim.RunUntilPredicate([&] { return fired; });
        return latency;
      };
      const SimTime lat = persist_one();
      table.AddRow({"PCM SSD behind block layer",
                    Table::Time(lat) + " (64B pays a full block)",
                    Table::Time(lat)});
    }
    table.Print();
  }

  bench::Section("PCM SSD under load: queueing exists on any medium");
  {
    Table table({"QD", "IOPS", "p50", "p99"});
    for (std::uint32_t qd : {1u, 8u, 32u, 128u}) {
      sim::Simulator sim;
      blocklayer::SimpleBlockDevice pcm_ssd(&sim, OnyxLike());
      blocklayer::BlockLayerConfig blcfg;
      blocklayer::BlockLayer layer(&sim, &pcm_ssd, blcfg);
      workload::RandomPattern writes(0, 1 << 18, true, 1, 3);
      const auto r =
          workload::RunClosedLoop(&sim, &layer, &writes, 20000, qd);
      table.AddRow({Table::Int(qd), Table::Num(r.Iops(), 0),
                    Table::Time(r.latency.P50()),
                    Table::Time(r.latency.P99())});
    }
    table.Print();
  }
  std::printf(
      "\nshape check: a 64B commit on the DIMM path costs ~0.5us; the "
      "same bytes behind the block interface cost 4KiB + tens of us, "
      "and p99 grows with queue depth — parallelism and scheduling "
      "remain system problems on PCM too.\n");
  return 0;
}
