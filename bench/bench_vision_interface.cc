// E8 — Section 3, principle 2: replace the memory abstraction with a
// communication abstraction. Three concrete commands beyond
// read/write, each measured against its block-interface workaround:
//
//   trim            vs  leaving dead data for GC to carry,
//   atomic writes   vs  double-write journaling,
//   nameless writes vs  host-assigned LBAs + device mapping table.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/table.h"
#include "common/rng.h"
#include "core/atomic_write.h"
#include "core/nameless.h"
#include "db/log_store.h"
#include "ftl/page_ftl.h"
#include "workload/patterns.h"

namespace postblock {
namespace {

void TrimExperiment() {
  bench::Section("trim vs no-trim (dead half of the device, then churn)");
  Table table({"variant", "WA", "gc page moves", "gc erases"});
  for (bool use_trim : {false, true}) {
    sim::Simulator sim;
    ssd::Config cfg = ssd::Config::Small();
    cfg.geometry.blocks_per_plane = 64;
    ssd::Device device(&sim, cfg);
    const std::uint64_t n = device.num_blocks();
    bench::FillSequential(&sim, &device, n);
    if (use_trim) {
      // The application tells the device which half is dead.
      blocklayer::IoRequest t;
      t.op = blocklayer::IoOp::kTrim;
      t.lba = n / 2;
      t.nblocks = static_cast<std::uint32_t>(n - n / 2);
      bool fired = false;
      t.on_complete = [&](const blocklayer::IoResult&) { fired = true; };
      device.Submit(std::move(t));
      sim.RunUntilPredicate([&] { return fired; });
    }
    workload::RandomPattern churn(0, n / 2, true, 1, 77);
    bench::Precondition(&sim, &device, &churn, 3 * n / 2);
    table.AddRow({use_trim ? "with trim" : "without trim",
                  Table::Num(device.WriteAmplification(), 2),
                  Table::Int(device.ftl()->counters().Get("gc_page_moves")),
                  Table::Int(device.ftl()->counters().Get("gc_erases"))});
  }
  table.Print();
}

void AtomicExperiment() {
  bench::Section("atomic writes: native command vs double-write journal");
  Table table({"mechanism", "group size", "latency", "flash programs",
               "block writes issued"});
  for (std::size_t group : {4u, 16u, 64u}) {
    for (bool native : {true, false}) {
      sim::Simulator sim;
      ssd::Config cfg = ssd::Config::Consumer2012();
      ssd::Device device(&sim, cfg);
      std::vector<std::pair<Lba, std::uint64_t>> pages;
      for (std::size_t i = 0; i < group; ++i) {
        pages.emplace_back(static_cast<Lba>(i), i + 1);
      }
      const std::uint64_t prog0 =
          device.controller()->counters().Get("pages_programmed");
      SimTime latency = 0;
      if (native) {
        core::AtomicWriter writer(&sim, device.page_ftl());
        bool fired = false;
        writer.WriteAtomic(pages, [&](Status) { fired = true; });
        sim.RunUntilPredicate([&] { return fired; });
        latency = writer.latency().max();
      } else {
        core::JournaledAtomicWriter writer(&sim, &device,
                                           /*journal_start=*/10000,
                                           /*journal_blocks=*/256);
        bool fired = false;
        writer.WriteAtomic(pages, [&](Status) { fired = true; });
        sim.RunUntilPredicate([&] { return fired; });
        latency = writer.latency().max();
      }
      sim.Run();
      const std::uint64_t programs =
          device.controller()->counters().Get("pages_programmed") - prog0;
      table.AddRow({native ? "native atomic" : "journaled",
                    Table::Int(group), Table::Time(latency),
                    Table::Int(programs),
                    native ? Table::Int(0)
                           : Table::Int(2 * group + 2)});
    }
  }
  table.Print();
}

void LogOnLogExperiment() {
  bench::Section(
      "log-on-log: host log-structured store over the FTL's log (§3)");
  Table table({"configuration", "host WA", "device WA", "compound WA",
               "device gc moves"});
  // Baseline: the same update stream as plain random overwrites — the
  // FTL alone does all the cleaning.
  {
    sim::Simulator sim;
    ssd::Config cfg = ssd::Config::Small();
    cfg.geometry.blocks_per_plane = 64;
    ssd::Device device(&sim, cfg);
    const std::uint64_t n = device.num_blocks();
    const std::uint64_t span = n * 7 / 10;
    bench::FillSequential(&sim, &device, span);
    workload::RandomPattern churn(0, span, true, 1, 21);
    bench::Precondition(&sim, &device, &churn, 2 * span);
    table.AddRow({"no host log (FTL cleans alone)", "1.00",
                  Table::Num(device.WriteAmplification(), 2),
                  Table::Num(device.WriteAmplification(), 2),
                  Table::Int(device.ftl()->counters().Get("gc_page_moves"))});
  }
  for (bool trim : {false, true}) {
    sim::Simulator sim;
    ssd::Config cfg = ssd::Config::Small();
    cfg.geometry.blocks_per_plane = 64;
    ssd::Device device(&sim, cfg);
    db::LogStructuredStore::Options opts;
    // Segments deliberately smaller than a flash block (4 pages vs 32):
    // one erase block then interleaves live and dead host segments, so
    // the FTL's collector and the host's collector genuinely fight.
    // (Block-aligned segments are the degenerate easy case: host
    // logging hands the FTL perfectly sequential traffic.)
    opts.segment_pages = 4;
    opts.records_per_page = 16;
    opts.compact_threshold = 0.4;
    opts.trim_dead_segments = trim;
    db::LogStructuredStore store(&sim, &device, opts);
    // Live set ~70% of the device, so both collectors are under real
    // pressure.
    const std::uint64_t keys =
        device.num_blocks() * opts.records_per_page * 7 / 10;
    Rng rng(21);
    for (std::uint64_t i = 0; i < keys * 3; ++i) {
      store.Put(rng.Uniform(keys), i + 1, [](Status) {});
      if (i % 64 == 0) sim.Run();
    }
    store.Flush([](Status) {});
    sim.Run();
    const double host_wa = store.HostWriteAmplification();
    const double dev_wa = device.WriteAmplification();
    table.AddRow({trim ? "host log + trim" : "host log, no trim",
                  Table::Num(host_wa, 2), Table::Num(dev_wa, 2),
                  Table::Num(host_wa * dev_wa, 2),
                  Table::Int(device.ftl()->counters().Get("gc_page_moves"))});
  }
  table.Print();
  std::printf(
      "  the host log turns device GC trivial (WA ~1) while re-doing the\n"
      "  same cleaning one layer up — the compound cost matches what the\n"
      "  FTL could have done alone. That duplication is exactly the\n"
      "  paper's point: log-structure management belongs in ONE layer,\n"
      "  negotiated over a richer interface.\n");
}

void NamelessExperiment() {
  bench::Section("nameless writes: device picks the address, host holds names");
  sim::Simulator sim;
  ssd::Config cfg = ssd::Config::Small();
  cfg.geometry.blocks_per_plane = 64;
  ssd::Device device(&sim, cfg);
  core::NamelessStore store(&sim, &device);
  std::uint64_t migrations = 0;
  store.SetMigrationHandler(
      [&](core::NamelessStore::Name, core::NamelessStore::Name) {
        ++migrations;
      });
  const std::size_t capacity = device.page_ftl()->user_pages();
  std::vector<core::NamelessStore::Name> names;
  // Fill 60%, then free/rewrite cycles to provoke GC relocations.
  for (std::uint64_t i = 0; names.size() < capacity * 6 / 10; ++i) {
    bool fired = false;
    store.Write(i + 1, [&](StatusOr<core::NamelessStore::Name> r) {
      if (r.ok()) names.push_back(*r);
      fired = true;
    });
    sim.RunUntilPredicate([&] { return fired; });
  }
  for (int round = 0; round < 4; ++round) {
    // Free every 4th page — blocks end up 75% live, so reclaiming them
    // forces relocations (and thus peer migration callbacks).
    std::vector<core::NamelessStore::Name> survivors;
    std::size_t freed = 0;
    for (std::size_t i = 0; i < names.size(); ++i) {
      if (i % 4 == 0) {
        bool fired = false;
        store.Free(names[i], [&](Status) { fired = true; });
        sim.RunUntilPredicate([&] { return fired; });
        ++freed;
      } else {
        survivors.push_back(names[i]);
      }
    }
    names = std::move(survivors);
    for (std::size_t i = 0; i < freed; ++i) {
      bool fired = false;
      store.Write(round * 100000 + i,
                  [&](StatusOr<core::NamelessStore::Name> r) {
                    if (r.ok()) names.push_back(*r);
                    fired = true;
                  });
      sim.RunUntilPredicate([&] { return fired; });
    }
  }
  Table table({"metric", "LBA interface", "nameless interface"});
  const std::uint64_t user_pages = device.page_ftl()->user_pages();
  table.AddRow({"device mapping entries (worst case)",
                Table::Int(user_pages), Table::Int(store.live())});
  table.AddRow({"device map RAM @8B/entry",
                std::to_string(user_pages * 8 / 1024) + " KiB",
                std::to_string(store.live() * 8 / 1024) + " KiB"});
  table.AddRow({"peer migration callbacks", "n/a (device hides moves)",
                Table::Int(migrations)});
  table.AddRow({"host allocation state", "allocator + free list",
                "names only"});
  table.Print();
}

}  // namespace
}  // namespace postblock

int main() {
  using namespace postblock;
  bench::Banner(
      "E8", "Section 3 principle 2 — the communication abstraction",
      "trim halves GC cargo for dead data; a native atomic command "
      "costs n+1 programs vs 2n+2 writes + 2 barriers for journaling; "
      "nameless writes shrink device mapping state to live pages and "
      "replace hidden migrations with peer callbacks");
  TrimExperiment();
  AtomicExperiment();
  LogOnLogExperiment();
  NamelessExperiment();
  return 0;
}
