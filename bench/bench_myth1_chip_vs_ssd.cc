// E3 — Myth 1: "SSDs behave as the non-volatile memory they contain."
//
// The paper: attributing chip characteristics to the device ignores
// parallelism and error/GC management at the controller. We put the
// datasheet chip numbers next to measured device-level latencies and
// throughput in three regimes: idle, parallel, and aged.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/table.h"
#include "workload/patterns.h"

namespace postblock {
namespace {

ssd::Config DeviceConfig() {
  ssd::Config c = ssd::Config::Consumer2012();
  c.write_buffer.pages = 0;  // keep the flash path visible
  return c;
}

}  // namespace
}  // namespace postblock

int main() {
  using namespace postblock;
  bench::Banner(
      "E3", "Myth 1 — a device is not its chips",
      "device-level behaviour diverges from chip datasheet numbers in "
      "both directions: parallelism makes throughput far exceed one "
      "chip's, while queueing/GC give latencies the chip never shows");

  const flash::Timing t = flash::Timing::Mlc();
  bench::Section("chip datasheet (what the myth extrapolates from)");
  {
    Table table({"op", "latency", "single-chip 4KiB throughput"});
    const double read_bw =
        4096.0 * 1e9 / static_cast<double>(t.cmd_ns + t.read_ns +
                                           t.TransferNs(4096));
    const double write_bw =
        4096.0 * 1e9 /
        static_cast<double>(t.TransferNs(4096) + t.program_ns);
    table.AddRow({"page read", Table::Time(t.cmd_ns + t.read_ns),
                  Table::Rate(read_bw)});
    table.AddRow({"page program", Table::Time(t.program_ns),
                  Table::Rate(write_bw)});
    table.AddRow({"block erase", Table::Time(t.erase_ns), "-"});
    table.Print();
  }

  bench::Section("device level (8 channels x 4 LUNs, page-map FTL)");
  Table table({"regime", "op", "p50", "p99", "max", "throughput",
               "IOPS"});
  struct Regime {
    const char* name;
    bool aged;
    std::uint32_t qd;
  };
  for (const Regime regime : {Regime{"idle QD1", false, 1},
                              Regime{"parallel QD32", false, 32},
                              Regime{"aged QD32", true, 32}}) {
    sim::Simulator sim;
    ssd::Device device(&sim, DeviceConfig());
    const std::uint64_t n = device.num_blocks();
    bench::FillSequential(&sim, &device, n);
    if (regime.aged) {
      workload::RandomPattern churn(0, n, true, 1, 3);
      bench::Precondition(&sim, &device, &churn, 2 * n);
    }
    for (bool is_write : {false, true}) {
      workload::RandomPattern pattern(0, n, is_write, 1, 17);
      const auto r = workload::RunClosedLoop(&sim, &device, &pattern,
                                             20000, regime.qd);
      table.AddRow({regime.name, is_write ? "4KiB write" : "4KiB read",
                    Table::Time(r.latency.P50()),
                    Table::Time(r.latency.P99()),
                    Table::Time(r.latency.max()),
                    Table::Rate(r.BytesPerSec(4096)),
                    Table::Num(r.Iops(), 0)});
    }
  }
  table.Print();
  std::printf(
      "\nshape check: parallel throughput is many times the single-chip "
      "number (the myth underestimates the device), while aged-device "
      "p99 blows past any chip latency (the myth overestimates its "
      "predictability).\n");
  return 0;
}
