// E6 — Myth 3: "on flash SSDs, reads are cheaper than writes."
//
// At the chip level, yes. At the device level the paper lists four
// reasons it can invert; we measure three of them:
//   (a) a read queued behind an erase/program on its LUN waits out the
//       full operation (latency cannot hide behind a cache),
//   (b) buffered writes complete at cache speed while reads must touch
//       flash: at equal queue depth, writes win,
//   (c) read parallelism depends on where earlier *writes* placed the
//       data: channel-striped placement vs LBA-static placement.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/table.h"
#include "ssd/controller.h"
#include "workload/patterns.h"

namespace postblock {
namespace {

// (a) read-behind-erase on a single LUN.
void ReadBehindErase() {
  bench::Section("(a) read stalls behind erase/program on its LUN");
  Table table({"scenario", "read latency"});
  for (int scenario = 0; scenario < 3; ++scenario) {
    sim::Simulator sim;
    ssd::Config cfg = ssd::Config::SingleChip();
    ssd::Controller controller(&sim, cfg);
    controller.ProgramPage(flash::Ppa{0, 0, 0, 0, 0},
                           flash::PageData{0, 1, 7, 0}, [](Status) {});
    sim.Run();
    const SimTime start = sim.Now();
    if (scenario == 1) {
      controller.EraseBlock(flash::BlockAddr{0, 0, 0, 1}, [](Status) {});
    } else if (scenario == 2) {
      controller.ProgramPage(flash::Ppa{0, 0, 0, 1, 0}, flash::PageData{},
                             [](Status) {});
    }
    SimTime read_done = 0;
    controller.ReadPage(flash::Ppa{0, 0, 0, 0, 0},
                        [&](StatusOr<flash::PageData>) {
                          read_done = sim.Now() - start;
                        });
    sim.Run();
    const char* label = scenario == 0   ? "idle LUN"
                        : scenario == 1 ? "behind erase"
                                        : "behind program";
    table.AddRow({label, Table::Time(read_done)});
  }
  table.Print();
}

// (b) reads vs buffered writes at equal parallelism.
void ReadVsWriteThroughput() {
  bench::Section("(b) 4KiB random read vs write, QD sweep (safe cache on)");
  Table table({"QD", "read IOPS", "read p99", "write IOPS", "write p99",
               "writes faster?"});
  for (std::uint32_t qd : {1u, 4u, 16u, 64u}) {
    double iops[2];
    SimTime p99[2];
    for (bool is_write : {false, true}) {
      sim::Simulator sim;
      ssd::Config cfg = ssd::Config::Consumer2012();
      cfg.write_buffer.pages = 256;
      ssd::Device device(&sim, cfg);
      const std::uint64_t n = device.num_blocks();
      bench::FillSequential(&sim, &device, n / 2);
      workload::RandomPattern pattern(0, n / 2, is_write, 1, 31);
      const auto r =
          workload::RunClosedLoop(&sim, &device, &pattern, 20000, qd);
      iops[is_write] = r.Iops();
      p99[is_write] = r.latency.P99();
    }
    table.AddRow({Table::Int(qd), Table::Num(iops[0], 0),
                  Table::Time(p99[0]), Table::Num(iops[1], 0),
                  Table::Time(p99[1]),
                  iops[1] > iops[0] ? "yes" : "no"});
  }
  table.Print();
}

// (c) read parallelism inherits write placement.
void PlacementShapesReads() {
  bench::Section(
      "(c) random reads after channel-striped vs LBA-static writes");
  Table table({"write placement", "read IOPS", "read p50", "read p99",
               "busiest channel util"});
  for (auto placement : {ssd::PlacementKind::kChannelStripe,
                         ssd::PlacementKind::kLbaStatic}) {
    sim::Simulator sim;
    ssd::Config cfg = ssd::Config::Consumer2012();
    cfg.placement = placement;
    ssd::Device device(&sim, cfg);
    // A small hot region: 4 logical blocks' worth of pages. LBA-static
    // placement pins it to 4 LUNs; striping spreads it device-wide.
    const std::uint64_t span = 4ull * cfg.geometry.pages_per_block;
    bench::FillSequential(&sim, &device, span);
    workload::RandomPattern reads(0, span, false, 1, 13);
    const auto r =
        workload::RunClosedLoop(&sim, &device, &reads, 20000, 32);
    double max_util = 0;
    for (std::uint32_t c = 0; c < cfg.geometry.channels; ++c) {
      max_util = std::max(max_util,
                          device.controller()->channel(c)->Utilization());
    }
    table.AddRow({ssd::PlacementKindName(placement),
                  Table::Num(r.Iops(), 0), Table::Time(r.latency.P50()),
                  Table::Time(r.latency.P99()),
                  Table::Num(100 * max_util, 1) + "%"});
  }
  table.Print();
}

}  // namespace
}  // namespace postblock

int main() {
  using namespace postblock;
  bench::Banner(
      "E6", "Myth 3 — reads are not necessarily cheaper than writes",
      "reads stall behind busy LUNs (no cache can hide read latency); "
      "buffered writes beat reads at the host interface; read "
      "parallelism exists only if earlier writes striped the data");
  ReadBehindErase();
  ReadVsWriteThroughput();
  PlacementShapesReads();
  std::printf(
      "\nshape check: (a) read behind erase pays ~2ms extra; (b) the "
      "safe cache makes writes beat reads at low QD while reads scale "
      "past the drain rate at high QD; (c) LBA-static placement starves "
      "read parallelism on the hot "
      "region's LUN while striping spreads it.\n");
  return 0;
}
