#ifndef POSTBLOCK_BENCH_BENCH_UTIL_H_
#define POSTBLOCK_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <memory>
#include <string>
#include <thread>

#include "blocklayer/block_device.h"
#include "common/table.h"
#include "common/types.h"
#include "sim/simulator.h"
#include "ssd/device.h"
#include "workload/patterns.h"

namespace postblock::bench {

/// Short git SHA of the working tree, or "unknown" when git (or the
/// repo) is unavailable — BENCH_*.json files carry it so a result can
/// be matched to the code that produced it.
inline std::string GitShaShort() {
  std::string sha;
  if (std::FILE* p = ::popen("git rev-parse --short HEAD 2>/dev/null",
                             "r")) {
    char buf[64];
    if (std::fgets(buf, sizeof(buf), p) != nullptr) sha = buf;
    ::pclose(p);
  }
  while (!sha.empty() && (sha.back() == '\n' || sha.back() == '\r')) {
    sha.pop_back();
  }
  return sha.empty() ? "unknown" : sha;
}

/// Writes the shared `"meta"` object (followed by a comma) into an open
/// BENCH_*.json: git SHA, the worker-thread count the run used (0 =
/// single-threaded reference path) and the machine's hardware
/// concurrency — so a scaling number can never be read without knowing
/// how many cores produced it — plus the device shape when a config is
/// given and, when >= 0, the tenant/queue topology the run exercised
/// (max vbd tenants multiplexed, mq submission queues), so multi-tenant
/// and multi-queue artifacts are self-describing. Consumers
/// (scripts/check_perf.sh) skip the "meta" key when comparing runs.
inline void WriteJsonMeta(std::FILE* f,
                          const ssd::Config* config = nullptr,
                          std::uint32_t workers = 0,
                          std::int64_t tenants = -1,
                          std::int64_t queues = -1) {
  std::fprintf(f, "  \"meta\": {\"git_sha\": \"%s\"",
               GitShaShort().c_str());
  std::fprintf(f, ", \"workers\": %u, \"hardware_concurrency\": %u",
               workers, std::thread::hardware_concurrency());
  if (config != nullptr) {
    std::fprintf(f, ", \"channels\": %u, \"chips\": %u",
                 config->geometry.channels, config->geometry.luns());
  }
  if (tenants >= 0) {
    std::fprintf(f, ", \"tenants\": %lld",
                 static_cast<long long>(tenants));
  }
  if (queues >= 0) {
    std::fprintf(f, ", \"queues\": %lld",
                 static_cast<long long>(queues));
  }
  std::fprintf(f, "},\n");
}

/// Prints the experiment banner: which paper artifact this regenerates
/// and what shape the paper claims.
inline void Banner(const std::string& id, const std::string& artifact,
                   const std::string& claim) {
  std::printf("\n=== %s — %s ===\n", id.c_str(), artifact.c_str());
  std::printf("paper claim: %s\n\n", claim.c_str());
}

inline void Section(const std::string& name) {
  std::printf("\n-- %s --\n", name.c_str());
}

/// Issues `ops` single-page writes from `pattern` and runs to idle —
/// used to precondition (age) a device so GC has history to fight.
inline void Precondition(sim::Simulator* sim,
                         blocklayer::BlockDevice* device,
                         workload::Pattern* pattern, std::uint64_t ops,
                         std::uint32_t queue_depth = 8) {
  (void)workload::RunClosedLoop(sim, device, pattern, ops, queue_depth);
  sim->Run();  // drain background GC
}

/// Sequentially fills the first `blocks` LBAs (valid data everywhere).
inline void FillSequential(sim::Simulator* sim,
                           blocklayer::BlockDevice* device,
                           std::uint64_t blocks) {
  workload::SequentialPattern fill(0, blocks, /*is_write=*/true);
  Precondition(sim, device, &fill, blocks);
}

}  // namespace postblock::bench

#endif  // POSTBLOCK_BENCH_BENCH_UTIL_H_
