#ifndef POSTBLOCK_BENCH_BENCH_UTIL_H_
#define POSTBLOCK_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <memory>
#include <string>
#include <thread>

#include "blocklayer/block_device.h"
#include "common/json.h"
#include "common/table.h"
#include "common/types.h"
#include "sim/simulator.h"
#include "ssd/device.h"
#include "workload/patterns.h"

namespace postblock::bench {

/// Short git SHA of the working tree, or "unknown" when git (or the
/// repo) is unavailable — BENCH_*.json files carry it so a result can
/// be matched to the code that produced it.
inline std::string GitShaShort() {
  std::string sha;
  if (std::FILE* p = ::popen("git rev-parse --short HEAD 2>/dev/null",
                             "r")) {
    char buf[64];
    if (std::fgets(buf, sizeof(buf), p) != nullptr) sha = buf;
    ::pclose(p);
  }
  while (!sha.empty() && (sha.back() == '\n' || sha.back() == '\r')) {
    sha.pop_back();
  }
  return sha.empty() ? "unknown" : sha;
}

/// Builds the shared meta fields string — git SHA, the worker-thread
/// count the run used (0 = single-threaded reference path) and the
/// machine's hardware concurrency — so a scaling number can never be
/// read without knowing how many cores produced it — plus the device
/// shape when a config is given and, when >= 0, the tenant/queue
/// topology the run exercised. The returned string is the *inside* of
/// a JSON object ("\"git_sha\": ..., ..."), ready to splice into
/// metrics::TimeSeries::WriteJson or obs::EngineProfiler::WriteReport
/// meta_fields, or to wrap in braces directly.
inline std::string MetaJsonFields(const ssd::Config* config = nullptr,
                                  std::uint32_t workers = 0,
                                  std::int64_t tenants = -1,
                                  std::int64_t queues = -1) {
  char buf[256];
  // The SHA comes from a subprocess; escape it like any other
  // externally-sourced string so a weird git setup can't emit invalid
  // JSON into every BENCH_*.json on the machine.
  std::string out = "\"git_sha\": \"" + JsonEscaped(GitShaShort()) + "\"";
  std::snprintf(buf, sizeof(buf),
                ", \"workers\": %u, \"hardware_concurrency\": %u", workers,
                std::thread::hardware_concurrency());
  out += buf;
  if (config != nullptr) {
    std::snprintf(buf, sizeof(buf), ", \"channels\": %u, \"chips\": %u",
                  config->geometry.channels, config->geometry.luns());
    out += buf;
  }
  if (tenants >= 0) {
    std::snprintf(buf, sizeof(buf), ", \"tenants\": %lld",
                  static_cast<long long>(tenants));
    out += buf;
  }
  if (queues >= 0) {
    std::snprintf(buf, sizeof(buf), ", \"queues\": %lld",
                  static_cast<long long>(queues));
    out += buf;
  }
  return out;
}

/// Writes the shared `"meta"` object (followed by a comma) into an open
/// BENCH_*.json — MetaJsonFields wrapped for the common direct-write
/// case. Consumers (scripts/check_perf.sh) skip the "meta" key when
/// comparing runs.
inline void WriteJsonMeta(std::FILE* f,
                          const ssd::Config* config = nullptr,
                          std::uint32_t workers = 0,
                          std::int64_t tenants = -1,
                          std::int64_t queues = -1) {
  std::fprintf(f, "  \"meta\": {%s},\n",
               MetaJsonFields(config, workers, tenants, queues).c_str());
}

/// Prints the experiment banner: which paper artifact this regenerates
/// and what shape the paper claims.
inline void Banner(const std::string& id, const std::string& artifact,
                   const std::string& claim) {
  std::printf("\n=== %s — %s ===\n", id.c_str(), artifact.c_str());
  std::printf("paper claim: %s\n\n", claim.c_str());
}

inline void Section(const std::string& name) {
  std::printf("\n-- %s --\n", name.c_str());
}

/// Issues `ops` single-page writes from `pattern` and runs to idle —
/// used to precondition (age) a device so GC has history to fight.
inline void Precondition(sim::Simulator* sim,
                         blocklayer::BlockDevice* device,
                         workload::Pattern* pattern, std::uint64_t ops,
                         std::uint32_t queue_depth = 8) {
  (void)workload::RunClosedLoop(sim, device, pattern, ops, queue_depth);
  sim->Run();  // drain background GC
}

/// Sequentially fills the first `blocks` LBAs (valid data everywhere).
inline void FillSequential(sim::Simulator* sim,
                           blocklayer::BlockDevice* device,
                           std::uint64_t blocks) {
  workload::SequentialPattern fill(0, blocks, /*is_write=*/true);
  Precondition(sim, device, &fill, blocks);
}

}  // namespace postblock::bench

#endif  // POSTBLOCK_BENCH_BENCH_UTIL_H_
