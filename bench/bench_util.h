#ifndef POSTBLOCK_BENCH_BENCH_UTIL_H_
#define POSTBLOCK_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <memory>
#include <string>

#include "blocklayer/block_device.h"
#include "common/table.h"
#include "common/types.h"
#include "sim/simulator.h"
#include "ssd/device.h"
#include "workload/patterns.h"

namespace postblock::bench {

/// Prints the experiment banner: which paper artifact this regenerates
/// and what shape the paper claims.
inline void Banner(const std::string& id, const std::string& artifact,
                   const std::string& claim) {
  std::printf("\n=== %s — %s ===\n", id.c_str(), artifact.c_str());
  std::printf("paper claim: %s\n\n", claim.c_str());
}

inline void Section(const std::string& name) {
  std::printf("\n-- %s --\n", name.c_str());
}

/// Issues `ops` single-page writes from `pattern` and runs to idle —
/// used to precondition (age) a device so GC has history to fight.
inline void Precondition(sim::Simulator* sim,
                         blocklayer::BlockDevice* device,
                         workload::Pattern* pattern, std::uint64_t ops,
                         std::uint32_t queue_depth = 8) {
  (void)workload::RunClosedLoop(sim, device, pattern, ops, queue_depth);
  sim->Run();  // drain background GC
}

/// Sequentially fills the first `blocks` LBAs (valid data everywhere).
inline void FillSequential(sim::Simulator* sim,
                           blocklayer::BlockDevice* device,
                           std::uint64_t blocks) {
  workload::SequentialPattern fill(0, blocks, /*is_write=*/true);
  Precondition(sim, device, &fill, blocks);
}

}  // namespace postblock::bench

#endif  // POSTBLOCK_BENCH_BENCH_UTIL_H_
