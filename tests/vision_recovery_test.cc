// The post-block crossover's crash story: a StorageManager in vision
// wiring over the append-mode device (FtlKind::kVisionAppend) — host
// owns the L2P, the device issues names — must survive power loss at
// any point. Recovery rebuilds the host map from the device's LiveNames
// scan (OOB owner stamps + checkpoint epochs), then replays the WAL.
// Also: the append device's own name discipline (generation-guarded
// stale names, cooperative migration), and run-twice determinism of
// both wirings.

#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/nameless.h"
#include "db/storage_manager.h"
#include "host/command.h"
#include "sim/simulator.h"
#include "ssd/device.h"

namespace postblock::db {
namespace {

ssd::Config AppendSsd() {
  ssd::Config c = ssd::Config::Small();
  c.geometry.blocks_per_plane = 64;
  c.ftl = ssd::FtlKind::kVisionAppend;
  return c;
}

class VisionRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sim_ = std::make_unique<sim::Simulator>();
    device_ = std::make_unique<ssd::Device>(sim_.get(), AppendSsd());
    StorageConfig cfg;
    cfg.wiring = Wiring::kVision;
    cfg.buffer_frames = 256;
    manager_ =
        std::make_unique<StorageManager>(sim_.get(), device_.get(), cfg);
    Status st = Sync([&](StorageManager::StatusCb cb) {
      manager_->Bootstrap(std::move(cb));
    });
    ASSERT_TRUE(st.ok()) << st;
  }

  template <typename F>
  Status Sync(F&& f) {
    Status out = Status::Internal("pending");
    bool fired = false;
    f([&](Status st) {
      out = std::move(st);
      fired = true;
    });
    EXPECT_TRUE(sim_->RunUntilPredicate([&] { return fired; }))
        << "operation stalled";
    return out;
  }

  Status Put(std::uint64_t k, std::uint64_t v) {
    return Sync([&](StorageManager::StatusCb cb) {
      manager_->Put(k, v, std::move(cb));
    });
  }

  Status Del(std::uint64_t k) {
    return Sync([&](StorageManager::StatusCb cb) {
      manager_->Delete(k, std::move(cb));
    });
  }

  StatusOr<std::uint64_t> Get(std::uint64_t k) {
    StatusOr<std::uint64_t> out = Status::Internal("pending");
    bool fired = false;
    manager_->Get(k, [&](StatusOr<std::uint64_t> r) {
      out = std::move(r);
      fired = true;
    });
    EXPECT_TRUE(sim_->RunUntilPredicate([&] { return fired; }));
    return out;
  }

  Status Checkpoint() {
    return Sync([&](StorageManager::StatusCb cb) {
      manager_->Checkpoint(std::move(cb));
    });
  }

  Status CrashAndRecover() {
    PB_RETURN_IF_ERROR(manager_->SimulateCrash());
    return Sync([&](StorageManager::StatusCb cb) {
      manager_->Recover(std::move(cb));
    });
  }

  void VerifyShadow(const std::map<std::uint64_t, std::uint64_t>& shadow,
                    const char* where) {
    for (const auto& [k, v] : shadow) {
      ASSERT_EQ(*Get(k), v) << where << " key " << k;
    }
  }

  std::unique_ptr<sim::Simulator> sim_;
  std::unique_ptr<ssd::Device> device_;
  std::unique_ptr<StorageManager> manager_;
};

TEST_F(VisionRecoveryTest, AppendWiringIsCapabilityProbed) {
  // The manager must have discovered the append device through Caps()
  // and wired the host-owned map in — not by peeking at the config.
  ASSERT_NE(manager_->host_map(), nullptr);
  ASSERT_NE(device_->append_ftl(), nullptr);
  EXPECT_GT(manager_->host_map()->live(), 0u);   // bootstrap checkpoint
  EXPECT_GT(manager_->host_map()->MappingBytes(), 0u);
  EXPECT_EQ(manager_->ckpt_seq(), 1u);
  // The device below holds no per-page L2P: its mapping DRAM is
  // per-block bookkeeping, far below 8 B per logical page.
  EXPECT_LT(device_->Caps().mapping_table_bytes,
            device_->num_blocks() * 8);
  ASSERT_TRUE(Put(1, 10).ok());
  EXPECT_EQ(*Get(1), 10u);
}

TEST_F(VisionRecoveryTest, RecoverWithoutCheckpointReplaysWal) {
  for (std::uint64_t k = 0; k < 50; ++k) {
    ASSERT_TRUE(Put(k, k * 7).ok());
  }
  ASSERT_TRUE(CrashAndRecover().ok());
  for (std::uint64_t k = 0; k < 50; ++k) {
    ASSERT_EQ(*Get(k), k * 7) << k;
  }
}

TEST_F(VisionRecoveryTest, RecoverAfterCheckpointAndMoreCommits) {
  for (std::uint64_t k = 0; k < 40; ++k) {
    ASSERT_TRUE(Put(k, k + 1).ok());
  }
  ASSERT_TRUE(Checkpoint().ok());
  for (std::uint64_t k = 40; k < 80; ++k) {
    ASSERT_TRUE(Put(k, k + 1).ok());
  }
  ASSERT_TRUE(Del(0).ok());
  ASSERT_TRUE(CrashAndRecover().ok());
  EXPECT_TRUE(Get(0).status().IsNotFound());
  for (std::uint64_t k = 1; k < 80; ++k) {
    ASSERT_EQ(*Get(k), k + 1) << k;
  }
}

TEST_F(VisionRecoveryTest, TornCheckpointFallsBackToPriorEpoch) {
  std::map<std::uint64_t, std::uint64_t> shadow;
  for (std::uint64_t k = 0; k < 60; ++k) {
    ASSERT_TRUE(Put(k, k + 100).ok());
    shadow[k] = k + 100;
  }
  ASSERT_TRUE(Checkpoint().ok());
  const std::uint64_t committed = manager_->ckpt_seq();
  // Overwrite every key: the next checkpoint's flush replaces pages
  // that all have committed epoch-1 copies on flash.
  for (std::uint64_t k = 0; k < 60; ++k) {
    ASSERT_TRUE(Put(k, k + 500).ok());
    shadow[k] = k + 500;
  }
  // Start a checkpoint and cut power while its page writes are in
  // flight — before the meta page (the commit point) can land.
  bool ckpt_fired = false;
  manager_->Checkpoint([&](Status) { ckpt_fired = true; });
  // Run until some of the checkpoint's page writes have completed (the
  // host map retires each overwritten old copy as its replacement
  // lands) but the checkpoint as a whole hasn't committed.
  ASSERT_TRUE(sim_->RunUntilPredicate([&] {
    return ckpt_fired || manager_->host_map()->retired() >= 1;
  }));
  ASSERT_FALSE(ckpt_fired);
  ASSERT_TRUE(manager_->SimulateCrash().ok());
  Status st = Sync([&](StorageManager::StatusCb cb) {
    manager_->Recover(std::move(cb));
  });
  ASSERT_TRUE(st.ok()) << st;
  // The torn checkpoint's orphan pages (epoch > committed) were
  // discarded; recovery attached to the prior epoch and the WAL replay
  // reconstructed everything acknowledged.
  EXPECT_EQ(manager_->ckpt_seq(), committed);
  EXPECT_GT(manager_->counters().Get("orphan_names"), 0u);
  VerifyShadow(shadow, "torn checkpoint");
}

TEST_F(VisionRecoveryTest, ShadowMapCrashTorture) {
  // The PR 4 torture pattern on the post-block stack: random
  // put/delete traffic against an in-memory shadow, power cycles
  // landing between commits, after checkpoints, and *inside*
  // checkpoints. After every recovery the database must agree with the
  // shadow exactly — no lost acknowledged commit, no stale page, no
  // aliased name.
  Rng rng(11);
  std::map<std::uint64_t, std::uint64_t> shadow;
  for (int round = 0; round < 6; ++round) {
    const int ops = 40 + static_cast<int>(rng.Uniform(40));
    for (int i = 0; i < ops; ++i) {
      const std::uint64_t k = rng.Uniform(200);
      if (rng.Bernoulli(0.25)) {
        ASSERT_TRUE(Del(k).ok());
        shadow.erase(k);
      } else {
        const std::uint64_t v = rng.Next() | 1;
        ASSERT_TRUE(Put(k, v).ok());
        shadow[k] = v;
      }
    }
    switch (round % 3) {
      case 0:
        break;  // crash with a WAL full of post-checkpoint commits
      case 1:
        ASSERT_TRUE(Checkpoint().ok());
        break;
      case 2: {
        // Torn checkpoint: cut power mid-flush.
        bool fired = false;
        manager_->Checkpoint([&](Status) { fired = true; });
        sim_->RunUntil(sim_->Now() + 10 * 1000 + rng.Uniform(40 * 1000));
        (void)fired;
        break;
      }
    }
    ASSERT_TRUE(CrashAndRecover().ok()) << "round " << round;
    VerifyShadow(shadow, "torture round");
  }
  // The workload churned enough to retire and free old copies; the
  // device must have gotten space back (erases happened) without ever
  // garbage-collecting on its own initiative.
  EXPECT_GT(device_->counters().Get("nameless_frees"), 0u);
}

// --- Device-level name discipline -------------------------------------------

TEST(AppendDeviceTest, StaleNamesAreNotFoundNeverAliased) {
  // Free a name, force its block through erase + reprogram, then read
  // the dead name: the generation guard must answer NotFound — serving
  // whatever landed in that physical page would be an aliased read.
  sim::Simulator sim;
  ssd::Device dev(&sim, AppendSsd());
  auto write = [&](std::uint64_t token) {
    std::uint64_t name = 0;
    bool fired = false;
    dev.Execute(host::Command::NamelessWrite(
        token, [&](const blocklayer::IoResult& r) {
          ASSERT_TRUE(r.status.ok()) << r.status;
          name = r.tokens[0];
          fired = true;
        }));
    EXPECT_TRUE(sim.RunUntilPredicate([&] { return fired; }));
    return name;
  };
  const std::uint64_t doomed = write(0xdead);
  bool freed = false;
  dev.Execute(host::Command::NamelessFree(
      doomed, [&](const blocklayer::IoResult& r) {
        ASSERT_TRUE(r.status.ok());
        freed = true;
      }));
  ASSERT_TRUE(sim.RunUntilPredicate([&] { return freed; }));
  // The freed page was its block's only live page, so the block was
  // erased. Writing a full device's worth of fresh pages guarantees
  // the physical page is programmed again under a new generation.
  const std::uint64_t fill = dev.append_ftl()->user_pages() / 2;
  std::set<std::uint64_t> fresh;
  for (std::uint64_t i = 0; i < fill; ++i) fresh.insert(write(i + 1));
  EXPECT_EQ(fresh.size(), fill);        // all distinct
  EXPECT_EQ(fresh.count(doomed), 0u);   // the dead name never reissued
  Status st = Status::Ok();
  dev.Execute(host::Command::NamelessRead(
      doomed,
      [&](const blocklayer::IoResult& r) { st = r.status; }));
  sim.Run();
  EXPECT_TRUE(st.IsNotFound()) << st;
}

TEST(AppendDeviceTest, CooperativeMigrationKeepsNamesReadable) {
  // Fragment the device (free scattered pages) and keep writing until
  // the free-block watermark forces cooperative migration. Every move
  // must arrive as a callback, and every live name must stay readable
  // with its original payload.
  sim::Simulator sim;
  ssd::Device dev(&sim, AppendSsd());
  core::NamelessStore store(&sim, &dev);
  ASSERT_TRUE(store.device_supported());
  std::map<std::uint64_t, std::uint64_t> values;  // name -> token
  store.SetMigrationHandler([&](std::uint64_t old_name,
                                std::uint64_t new_name) {
    auto it = values.find(old_name);
    ASSERT_NE(it, values.end()) << "migration callback for unknown name";
    values.emplace(new_name, it->second);
    values.erase(it);
  });
  auto write = [&](std::uint64_t token) {
    bool fired = false;
    store.Write(token, [&](StatusOr<std::uint64_t> r) {
      ASSERT_TRUE(r.ok()) << r.status();
      values.emplace(*r, token);
      fired = true;
    });
    ASSERT_TRUE(sim.RunUntilPredicate([&] { return fired; }));
  };
  auto free_name = [&](std::uint64_t name) {
    bool fired = false;
    store.Free(name, [&](Status st) {
      ASSERT_TRUE(st.ok()) << st;
      fired = true;
    });
    ASSERT_TRUE(sim.RunUntilPredicate([&] { return fired; }));
    values.erase(name);
  };
  const std::uint64_t capacity = dev.append_ftl()->user_pages();
  std::uint64_t token = 1;
  for (std::uint64_t i = 0; i < capacity * 6 / 10; ++i) write(token++);
  for (int round = 0; round < 4; ++round) {
    // Free every 4th live name (blocks stay 75% live — erases need
    // migration), then write replacements.
    std::vector<std::uint64_t> names;
    names.reserve(values.size());
    for (const auto& [n, t] : values) names.push_back(n);
    std::size_t freed = 0;
    for (std::size_t i = 0; i < names.size(); i += 4) {
      free_name(names[i]);
      ++freed;
    }
    for (std::size_t i = 0; i < freed; ++i) write(token++);
  }
  EXPECT_GT(dev.counters().Get("nameless_migrations"), 0u);
  // Every name the host holds reads back its own payload.
  for (const auto& [name, expect] : values) {
    std::uint64_t got = 0;
    bool fired = false;
    store.Read(name, [&](StatusOr<std::uint64_t> r) {
      ASSERT_TRUE(r.ok()) << r.status();
      got = *r;
      fired = true;
    });
    ASSERT_TRUE(sim.RunUntilPredicate([&] { return fired; }));
    ASSERT_EQ(got, expect) << "name " << name;
  }
  // Migration never invented or lost space.
  EXPECT_EQ(dev.append_ftl()->live_pages(), values.size());
}

// --- Run-twice determinism ---------------------------------------------------

std::string WorkloadDigest(Wiring wiring, bool append_device) {
  sim::Simulator sim;
  ssd::Config cfg = ssd::Config::Small();
  cfg.geometry.blocks_per_plane = 64;
  if (append_device) cfg.ftl = ssd::FtlKind::kVisionAppend;
  ssd::Device device(&sim, cfg);
  StorageConfig scfg;
  scfg.wiring = wiring;
  scfg.buffer_frames = 128;
  StorageManager manager(&sim, &device, scfg);
  auto sync = [&](auto&& f) {
    Status out = Status::Internal("pending");
    bool fired = false;
    f([&](Status st) {
      out = std::move(st);
      fired = true;
    });
    EXPECT_TRUE(sim.RunUntilPredicate([&] { return fired; }));
    return out;
  };
  EXPECT_TRUE(sync([&](StorageManager::StatusCb cb) {
                manager.Bootstrap(std::move(cb));
              }).ok());
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t k = rng.Uniform(150);
    EXPECT_TRUE(sync([&](StorageManager::StatusCb cb) {
                  manager.Put(k, rng.Next(), std::move(cb));
                }).ok());
    if (i % 64 == 63) {
      EXPECT_TRUE(sync([&](StorageManager::StatusCb cb) {
                    manager.Checkpoint(std::move(cb));
                  }).ok());
    }
  }
  std::ostringstream out;
  out << sim.Now() << ':' << manager.counters().Get("txns") << ':'
      << manager.counters().Get("checkpoints") << ':'
      << device.ftl()->WriteAmplification() << ':'
      << device.counters().Get("requests") << ':'
      << device.counters().Get("nameless_writes") << ':'
      << manager.commit_latency().Mean();
  return out.str();
}

TEST(VisionDeterminismTest, RunTwiceIsIdenticalBothWirings) {
  // The repo's schedule contract extends to the post-block stack: the
  // same workload must produce byte-identical digests on a second run,
  // for the classic wiring and for the vision wiring over the append
  // device alike.
  const std::string classic1 = WorkloadDigest(Wiring::kClassic, false);
  const std::string classic2 = WorkloadDigest(Wiring::kClassic, false);
  EXPECT_EQ(classic1, classic2);
  const std::string vision1 = WorkloadDigest(Wiring::kVision, true);
  const std::string vision2 = WorkloadDigest(Wiring::kVision, true);
  EXPECT_EQ(vision1, vision2);
  EXPECT_NE(classic1, vision1);  // genuinely different architectures
}

}  // namespace
}  // namespace postblock::db
