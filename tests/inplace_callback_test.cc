// Unit tests for InplaceCallback and its CallbackSlab fallback: inline
// storage for small captures, move-only semantics, slab boxing for
// oversized captures, and compile-time guards that the event core's
// hot-path capture sizes keep fitting.

#include <array>
#include <cstdint>
#include <memory>
#include <utility>

#include <gtest/gtest.h>

#include "sim/inplace_callback.h"
#include "sim/simulator.h"

namespace postblock::sim {
namespace {

TEST(InplaceCallbackTest, EmptyIsFalsey) {
  InplaceCallback cb;
  EXPECT_FALSE(static_cast<bool>(cb));
}

TEST(InplaceCallbackTest, SmallCaptureStoredInline) {
  int hits = 0;
  InplaceCallback cb = [&hits] { ++hits; };
  ASSERT_TRUE(static_cast<bool>(cb));
  EXPECT_TRUE(cb.stored_inline());
  cb();
  cb();
  EXPECT_EQ(hits, 2);
}

TEST(InplaceCallbackTest, FullInlineBufferStillInline) {
  // Exactly kInlineBytes of capture must not spill to the slab.
  std::array<std::uint64_t, 6> payload{1, 2, 3, 4, 5, 6};
  static_assert(sizeof(payload) == InplaceCallback::kInlineBytes);
  std::uint64_t sum = 0;
  auto fn = [payload, &sum]() mutable {
    for (auto v : payload) sum += v;
  };
  static_assert(!InplaceCallback::fits<decltype(fn)>(),
                "payload + reference exceeds the buffer");
  std::uint64_t sum2 = 0;
  std::uint64_t* out = &sum2;
  auto fits_fn = [payload = std::array<std::uint64_t, 5>{1, 2, 3, 4, 5},
                  out] {
    for (auto v : payload) *out += v;
  };
  static_assert(InplaceCallback::fits<decltype(fits_fn)>());
  InplaceCallback cb = fits_fn;
  EXPECT_TRUE(cb.stored_inline());
  cb();
  EXPECT_EQ(sum2, 15u);
}

TEST(InplaceCallbackTest, MoveOnlyCaptureWorks) {
  auto box = std::make_unique<int>(41);
  int result = 0;
  InplaceCallback cb = [box = std::move(box), &result] {
    result = *box + 1;
  };
  EXPECT_TRUE(cb.stored_inline());
  InplaceCallback moved = std::move(cb);
  EXPECT_FALSE(static_cast<bool>(cb));  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(static_cast<bool>(moved));
  moved();
  EXPECT_EQ(result, 42);
}

TEST(InplaceCallbackTest, MoveAssignReleasesPreviousCallable) {
  int destroyed = 0;
  struct Sentinel {
    int* counter;
    explicit Sentinel(int* c) : counter(c) {}
    Sentinel(Sentinel&& o) noexcept : counter(std::exchange(o.counter,
                                                            nullptr)) {}
    ~Sentinel() {
      if (counter != nullptr) ++*counter;
    }
  };
  InplaceCallback cb = [s = Sentinel(&destroyed)] { (void)s; };
  cb = InplaceCallback([] {});
  EXPECT_EQ(destroyed, 1);
}

TEST(InplaceCallbackTest, OversizedCaptureFallsBackToSlab) {
  const auto before = CallbackSlab::stats();
  std::array<std::uint64_t, 16> big{};  // 128 bytes: too big for inline
  big[7] = 99;
  std::uint64_t seen = 0;
  std::uint64_t* out = &seen;
  auto fn = [big, out] { *out = big[7]; };
  static_assert(!InplaceCallback::fits<decltype(fn)>());
  {
    InplaceCallback cb = fn;
    EXPECT_TRUE(static_cast<bool>(cb));
    EXPECT_FALSE(cb.stored_inline());
    // Moving a boxed callback moves the box pointer, not the payload.
    InplaceCallback moved = std::move(cb);
    moved();
  }
  EXPECT_EQ(seen, 99u);
  const auto after = CallbackSlab::stats();
  EXPECT_EQ(after.chunk_allocs + after.chunk_reuses,
            before.chunk_allocs + before.chunk_reuses + 1);
  EXPECT_EQ(after.oversize_allocs, before.oversize_allocs);
}

TEST(InplaceCallbackTest, SlabRecyclesChunksInSteadyState) {
  std::array<std::uint64_t, 16> big{};
  auto make = [&big] { return InplaceCallback([big] { (void)big; }); };
  { InplaceCallback warm = make(); }  // leaves one chunk on the free list
  const auto before = CallbackSlab::stats();
  for (int i = 0; i < 100; ++i) {
    InplaceCallback cb = make();
    cb();
  }
  const auto after = CallbackSlab::stats();
  EXPECT_EQ(after.chunk_allocs, before.chunk_allocs);  // all reuses
  EXPECT_EQ(after.chunk_reuses, before.chunk_reuses + 100);
}

TEST(InplaceCallbackTest, CapturesBeyondChunkSizeStillWork) {
  std::array<std::uint64_t, 64> huge{};  // 512 bytes > kChunkBytes
  huge[63] = 7;
  static_assert(sizeof(huge) > CallbackSlab::kChunkBytes);
  std::uint64_t seen = 0;
  std::uint64_t* out = &seen;
  const auto before = CallbackSlab::stats();
  {
    InplaceCallback cb = [huge, out] { *out = huge[63]; };
    EXPECT_FALSE(cb.stored_inline());
    cb();
  }
  EXPECT_EQ(seen, 7u);
  EXPECT_EQ(CallbackSlab::stats().oversize_allocs,
            before.oversize_allocs + 1);
}

// Compile-time guard that the event core's hot-path capture shapes fit
// the inline buffer. The device models capture at most a {this, state*}
// pair or a pooled-record pointer; if someone grows a hot lambda past
// kInlineBytes, this is where the build should break loudly.
TEST(InplaceCallbackTest, HotPathCaptureShapesFitInline) {
  struct Dummy {};
  Dummy* a = nullptr;
  Dummy* b = nullptr;
  auto two_pointers = [a, b] { (void)a; (void)b; };
  static_assert(InplaceCallback::fits<decltype(two_pointers)>());
  auto pooled_record = [a] { (void)a; };
  static_assert(InplaceCallback::fits<decltype(pooled_record)>());
  // The largest sanctioned shape: six 8-byte words.
  auto six_words = [a, b, c = std::uint64_t{0}, d = std::uint64_t{0},
                    e = std::uint64_t{0}, f = std::uint64_t{0}] {
    (void)a; (void)b; (void)c; (void)d; (void)e; (void)f;
  };
  static_assert(InplaceCallback::fits<decltype(six_words)>());
  SUCCEED();
}

TEST(InplaceCallbackTest, SimulatorHotLoopStaysOffTheSlab) {
  // End-to-end: a self-rescheduling chain through the real Simulator
  // must never touch the slab (captures stay inline).
  const auto before = CallbackSlab::stats();
  Simulator sim;
  struct Ctx {
    Simulator* sim;
    int remaining = 10000;
  };
  Ctx ctx{&sim};
  struct Fire {
    static void At(Ctx* c) {
      if (c->remaining-- > 0) {
        c->sim->Schedule(7, [c] { At(c); });
      }
    }
  };
  Fire::At(&ctx);
  sim.Run();
  const auto after = CallbackSlab::stats();
  EXPECT_EQ(after.chunk_allocs, before.chunk_allocs);
  EXPECT_EQ(after.chunk_reuses, before.chunk_reuses);
  EXPECT_EQ(after.oversize_allocs, before.oversize_allocs);
}

}  // namespace
}  // namespace postblock::sim
