// Vision-layer tests: HybridStore (sync->PCM vs classic), AtomicWriter
// vs JournaledAtomicWriter, NamelessStore.

#include <memory>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "blocklayer/direct_driver.h"
#include "core/atomic_write.h"
#include "core/hybrid_store.h"
#include "core/nameless.h"
#include "core/pcm_log.h"
#include "pcm/pcm_device.h"
#include "sim/simulator.h"
#include "ssd/device.h"

namespace postblock::core {
namespace {

// --- HybridStore -------------------------------------------------------------

class HybridStoreTest : public ::testing::Test {
 protected:
  HybridStoreTest()
      : device_(&sim_, ssd::Config::Small()),
        pcm_(&sim_, pcm::PcmConfig{}),
        log_(&sim_, &pcm_, 0, 1 * kMiB) {}

  sim::Simulator sim_;
  ssd::Device device_;
  pcm::PcmDevice pcm_;
  PcmLog log_;
};

TEST_F(HybridStoreTest, VisionSyncPersistGoesToPcm) {
  HybridStore store(&sim_, &device_, &log_);
  EXPECT_TRUE(store.vision_mode());
  bool done = false;
  store.SyncPersist(std::vector<std::uint8_t>(100, 1), [&](Status st) {
    ASSERT_TRUE(st.ok());
    done = true;
  });
  sim_.Run();
  ASSERT_TRUE(done);
  EXPECT_EQ(log_.counters().Get("appends"), 1u);
  EXPECT_LT(store.sync_latency().max(), 5 * kMicrosecond);
}

TEST_F(HybridStoreTest, ClassicSyncPersistCostsAPageWriteAndFlush) {
  HybridStore store(&sim_, &device_, /*log_region_start=*/0,
                    /*log_region_blocks=*/64);
  EXPECT_FALSE(store.vision_mode());
  bool done = false;
  store.SyncPersist(std::vector<std::uint8_t>(100, 1), [&](Status st) {
    ASSERT_TRUE(st.ok());
    done = true;
  });
  sim_.Run();
  ASSERT_TRUE(done);
  // A full flash program (>=400us) plus overheads.
  EXPECT_GT(store.sync_latency().max(), 400 * kMicrosecond);
  // 100 bytes padded to a 4 KiB block.
  EXPECT_EQ(store.counters().Get("sync_padded_bytes"), 4096u - 100u);
}

TEST_F(HybridStoreTest, VisionCommitLatencyOrdersOfMagnitudeLower) {
  HybridStore vision(&sim_, &device_, &log_);
  HybridStore classic(&sim_, &device_, 0, 64);
  for (int i = 0; i < 16; ++i) {
    vision.SyncPersist(std::vector<std::uint8_t>(64, 1), [](Status) {});
    classic.SyncPersist(std::vector<std::uint8_t>(64, 1), [](Status) {});
  }
  sim_.Run();
  EXPECT_LT(vision.sync_latency().Mean() * 50,
            classic.sync_latency().Mean());
}

TEST_F(HybridStoreTest, AsyncPathForwardsToDevice) {
  HybridStore store(&sim_, &device_, &log_);
  bool done = false;
  blocklayer::IoRequest w;
  w.op = blocklayer::IoOp::kWrite;
  w.lba = 1;
  w.nblocks = 1;
  w.tokens = {5};
  w.on_complete = [&](const blocklayer::IoResult& r) {
    ASSERT_TRUE(r.status.ok());
    done = true;
  };
  store.SubmitAsync(std::move(w));
  sim_.Run();
  ASSERT_TRUE(done);
  EXPECT_EQ(store.counters().Get("async_requests"), 1u);
}

// --- Atomic writes -------------------------------------------------------------

class AtomicTest : public ::testing::Test {
 protected:
  AtomicTest() : device_(&sim_, ssd::Config::Small()) {}

  std::uint64_t ReadToken(Lba lba) {
    std::uint64_t token = ~0ull;
    bool fired = false;
    blocklayer::IoRequest r;
    r.op = blocklayer::IoOp::kRead;
    r.lba = lba;
    r.nblocks = 1;
    r.on_complete = [&](const blocklayer::IoResult& res) {
      EXPECT_TRUE(res.status.ok());
      token = res.tokens[0];
      fired = true;
    };
    device_.Submit(std::move(r));
    EXPECT_TRUE(sim_.RunUntilPredicate([&] { return fired; }));
    return token;
  }

  sim::Simulator sim_;
  ssd::Device device_;
};

TEST_F(AtomicTest, NativeAtomicWriteVisible) {
  AtomicWriter writer(&sim_, device_.page_ftl());
  bool done = false;
  writer.WriteAtomic({{1, 11}, {2, 22}}, [&](Status st) {
    ASSERT_TRUE(st.ok());
    done = true;
  });
  sim_.Run();
  ASSERT_TRUE(done);
  EXPECT_EQ(ReadToken(1), 11u);
  EXPECT_EQ(ReadToken(2), 22u);
}

TEST_F(AtomicTest, JournaledWriterVisibleButCostsDouble) {
  JournaledAtomicWriter writer(&sim_, &device_, /*journal_start=*/100,
                               /*journal_blocks=*/64);
  bool done = false;
  writer.WriteAtomic({{1, 11}, {2, 22}, {3, 33}}, [&](Status st) {
    ASSERT_TRUE(st.ok());
    done = true;
  });
  sim_.Run();
  ASSERT_TRUE(done);
  EXPECT_EQ(ReadToken(1), 11u);
  EXPECT_EQ(ReadToken(2), 22u);
  EXPECT_EQ(ReadToken(3), 33u);
  // n data pages journaled + descriptor + commit, then n home writes.
  EXPECT_EQ(writer.counters().Get("journal_writes"), 5u);
  EXPECT_EQ(writer.counters().Get("home_writes"), 3u);
}

TEST_F(AtomicTest, NativeCheaperThanJournaled) {
  AtomicWriter native(&sim_, device_.page_ftl());
  JournaledAtomicWriter journaled(&sim_, &device_, 100, 64);
  std::vector<std::pair<Lba, std::uint64_t>> batch;
  for (Lba lba = 0; lba < 8; ++lba) batch.emplace_back(lba, lba + 1);
  bool d1 = false;
  native.WriteAtomic(batch, [&](Status) { d1 = true; });
  sim_.Run();
  bool d2 = false;
  journaled.WriteAtomic(batch, [&](Status) { d2 = true; });
  sim_.Run();
  ASSERT_TRUE(d1 && d2);
  EXPECT_LT(native.latency().max(), journaled.latency().max());
}

// --- NamelessStore ----------------------------------------------------------

class NamelessTest : public ::testing::Test {
 protected:
  NamelessTest()
      : device_(&sim_, ssd::Config::Small()),
        store_(&sim_, &device_) {}

  NamelessStore::Name WriteSync(std::uint64_t token) {
    NamelessStore::Name name = 0;
    bool fired = false;
    store_.Write(token, [&](StatusOr<NamelessStore::Name> r) {
      ASSERT_TRUE(r.ok());
      name = *r;
      fired = true;
    });
    EXPECT_TRUE(sim_.RunUntilPredicate([&] { return fired; }));
    return name;
  }

  StatusOr<std::uint64_t> ReadSync(NamelessStore::Name name) {
    StatusOr<std::uint64_t> out = Status::Internal("not run");
    bool fired = false;
    store_.Read(name, [&](StatusOr<std::uint64_t> r) {
      out = std::move(r);
      fired = true;
    });
    EXPECT_TRUE(sim_.RunUntilPredicate([&] { return fired; }));
    return out;
  }

  sim::Simulator sim_;
  ssd::Device device_;
  NamelessStore store_;
};

TEST_F(NamelessTest, WriteReturnsUsableName) {
  const auto name = WriteSync(77);
  EXPECT_EQ(*ReadSync(name), 77u);
  EXPECT_EQ(store_.live(), 1u);
}

TEST_F(NamelessTest, DistinctWritesGetDistinctNames) {
  std::set<NamelessStore::Name> names;
  for (int i = 0; i < 32; ++i) names.insert(WriteSync(i + 1));
  EXPECT_EQ(names.size(), 32u);
}

TEST_F(NamelessTest, FreeReleasesName) {
  const auto name = WriteSync(5);
  bool freed = false;
  store_.Free(name, [&](Status st) {
    ASSERT_TRUE(st.ok());
    freed = true;
  });
  sim_.Run();
  ASSERT_TRUE(freed);
  EXPECT_EQ(store_.live(), 0u);
  EXPECT_TRUE(ReadSync(name).status().IsNotFound());
}

TEST_F(NamelessTest, UnknownNameRejected) {
  EXPECT_TRUE(ReadSync(0xDEADBEEF).status().IsNotFound());
}

TEST_F(NamelessTest, MigrationCallbacksKeepNamesCurrent) {
  // Fill and churn so GC relocates named pages; the peer callbacks must
  // keep every name readable throughout.
  std::uint64_t migrations_seen = 0;
  store_.SetMigrationHandler(
      [&](NamelessStore::Name, NamelessStore::Name) {
        ++migrations_seen;
      });
  std::vector<std::pair<NamelessStore::Name, std::uint64_t>> live;
  const std::size_t capacity = device_.page_ftl()->user_pages();
  // Keep ~60% full while freeing + rewriting to force GC churn.
  for (std::uint64_t i = 0; live.size() < capacity * 6 / 10; ++i) {
    live.emplace_back(WriteSync(i + 1), i + 1);
  }
  for (int round = 0; round < 6; ++round) {
    // Free the oldest quarter, write fresh pages.
    const std::size_t quarter = live.size() / 4;
    for (std::size_t i = 0; i < quarter; ++i) {
      bool freed = false;
      store_.Free(live[i].first, [&](Status st) {
        ASSERT_TRUE(st.ok());
        freed = true;
      });
      ASSERT_TRUE(sim_.RunUntilPredicate([&] { return freed; }));
    }
    live.erase(live.begin(),
               live.begin() + static_cast<std::ptrdiff_t>(quarter));
    for (std::size_t i = 0; i < quarter; ++i) {
      const std::uint64_t token = 1000000 + round * 1000 + i;
      live.emplace_back(WriteSync(token), token);
    }
    // Names may have migrated; `live` holds stale names unless we track
    // the handler's updates — so re-fetch through the handler:
  }
  // Verify: every live name (as updated by migration callbacks applied
  // inside the store) reads its token. We read via the store's own
  // bookkeeping by re-querying each recorded name, accepting that a
  // migrated old name is NotFound only if we failed to track it.
  std::uint64_t not_found = 0;
  for (const auto& [name, token] : live) {
    auto r = ReadSync(name);
    if (r.ok()) {
      EXPECT_EQ(*r, token);
    } else {
      ++not_found;
    }
  }
  // Anything unfound must be explained by migrations we chose not to
  // track in this test's local list.
  EXPECT_LE(not_found, migrations_seen);
  if (device_.ftl()->counters().Get("gc_page_moves") > 0) {
    EXPECT_GT(migrations_seen, 0u);
  }
}

}  // namespace
}  // namespace postblock::core
