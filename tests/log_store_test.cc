// LogStructuredStore tests: the host-level log whose compaction stacks
// on top of the FTL's GC (the paper's §3 "log on log").

#include <map>
#include <memory>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "db/log_store.h"
#include "sim/simulator.h"
#include "ssd/device.h"

namespace postblock::db {
namespace {

LogStructuredStore::Options SmallOptions() {
  LogStructuredStore::Options o;
  o.segment_pages = 8;
  o.records_per_page = 4;
  o.compact_threshold = 0.4;
  return o;
}

class LogStoreTest : public ::testing::Test {
 protected:
  LogStoreTest()
      : device_(&sim_, ssd::Config::Small()),
        store_(&sim_, &device_, SmallOptions()) {}

  Status Put(std::uint64_t k, std::uint64_t v) {
    Status out = Status::Internal("pending");
    bool fired = false;
    store_.Put(k, v, [&](Status st) {
      out = st;
      fired = true;
    });
    // Puts complete at page granularity; force the page out.
    store_.Flush([](Status) {});
    EXPECT_TRUE(sim_.RunUntilPredicate([&] { return fired; }));
    return out;
  }

  /// Buffered put: callback deferred until the page fills.
  void PutBuffered(std::uint64_t k, std::uint64_t v) {
    store_.Put(k, v, [](Status st) { ASSERT_TRUE(st.ok()); });
    sim_.Run();
  }

  StatusOr<std::uint64_t> Get(std::uint64_t k) {
    StatusOr<std::uint64_t> out = Status::Internal("pending");
    bool fired = false;
    store_.Get(k, [&](StatusOr<std::uint64_t> r) {
      out = std::move(r);
      fired = true;
    });
    EXPECT_TRUE(sim_.RunUntilPredicate([&] { return fired; }));
    return out;
  }

  sim::Simulator sim_;
  ssd::Device device_;
  LogStructuredStore store_;
};

TEST_F(LogStoreTest, PutGetRoundTrip) {
  ASSERT_TRUE(Put(7, 70).ok());
  EXPECT_EQ(*Get(7), 70u);
}

TEST_F(LogStoreTest, GetFromOpenPageBeforeFlush) {
  store_.Put(9, 90, [](Status) {});
  EXPECT_EQ(*Get(9), 90u);  // record still buffered
}

TEST_F(LogStoreTest, OverwriteReturnsNewest) {
  ASSERT_TRUE(Put(7, 1).ok());
  ASSERT_TRUE(Put(7, 2).ok());
  EXPECT_EQ(*Get(7), 2u);
}

TEST_F(LogStoreTest, MissingKeyNotFound) {
  EXPECT_TRUE(Get(12345).status().IsNotFound());
}

TEST_F(LogStoreTest, DeleteRemoves) {
  ASSERT_TRUE(Put(7, 1).ok());
  bool fired = false;
  store_.Delete(7, [&](Status st) {
    ASSERT_TRUE(st.ok());
    fired = true;
  });
  ASSERT_TRUE(sim_.RunUntilPredicate([&] { return fired; }));
  EXPECT_TRUE(Get(7).status().IsNotFound());
  EXPECT_EQ(store_.live_keys(), 0u);
}

TEST_F(LogStoreTest, GroupCommitFiresAllCallbacksOnPageFlush) {
  int fired = 0;
  for (int i = 0; i < 3; ++i) {
    store_.Put(i, i, [&](Status st) {
      ASSERT_TRUE(st.ok());
      ++fired;
    });
  }
  sim_.Run();
  EXPECT_EQ(fired, 0);  // page (4 records) not yet full
  store_.Put(3, 3, [&](Status st) {
    ASSERT_TRUE(st.ok());
    ++fired;
  });
  sim_.Run();
  EXPECT_EQ(fired, 4);
}

TEST_F(LogStoreTest, CompactionReclaimsDeadSegmentsAndKeepsData) {
  // Hammer a small key set so segments fill with dead versions.
  std::map<std::uint64_t, std::uint64_t> shadow;
  Rng rng(5);
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t k = rng.Uniform(40);
    PutBuffered(k, i + 1);
    shadow[k] = i + 1;
  }
  bool flushed = false;
  store_.Flush([&](Status) { flushed = true; });
  ASSERT_TRUE(sim_.RunUntilPredicate([&] { return flushed; }));
  sim_.Run();
  EXPECT_GT(store_.counters().Get("compactions"), 0u);
  // The store stays within the device despite 2000 records / 40 keys.
  EXPECT_LT(store_.SegmentsInUse(), store_.SegmentCount());
  for (const auto& [k, v] : shadow) {
    ASSERT_EQ(*Get(k), v) << k;
  }
}

TEST_F(LogStoreTest, HostWriteAmplificationAboveOneUnderChurn) {
  Rng rng(6);
  for (int i = 0; i < 3000; ++i) {
    PutBuffered(rng.Uniform(64), i + 1);
  }
  sim_.Run();
  EXPECT_GT(store_.HostWriteAmplification(), 1.0);
  // And the device below is amplifying on top of that: log on log.
  EXPECT_GE(device_.WriteAmplification(), 1.0);
}

TEST_F(LogStoreTest, TrimOptionForwardsTrimsToDevice) {
  auto churn = [&](bool trim) {
    sim::Simulator sim;
    ssd::Device device(&sim, ssd::Config::Small());
    LogStructuredStore::Options o = SmallOptions();
    o.trim_dead_segments = trim;
    LogStructuredStore store(&sim, &device, o);
    Rng rng(7);
    for (int i = 0; i < 2000; ++i) {
      store.Put(rng.Uniform(64), i + 1, [](Status) {});
      sim.Run();
    }
    sim.Run();
    return device.ftl()->counters().Get("trims");
  };
  EXPECT_EQ(churn(false), 0u);
  EXPECT_GT(churn(true), 0u);
}

}  // namespace
}  // namespace postblock::db
