#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sim/completion.h"
#include "sim/event_queue.h"
#include "sim/resource.h"
#include "sim/simulator.h"

namespace postblock::sim {
namespace {

// --- EventQueue --------------------------------------------------------

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.Push(30, [&] { order.push_back(3); });
  q.Push(10, [&] { order.push_back(1); });
  q.Push(20, [&] { order.push_back(2); });
  while (!q.empty()) q.Pop()();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, TiesFireInInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.Push(5, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.Pop()();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueueTest, NextTimeReportsEarliest) {
  EventQueue q;
  q.Push(42, [] {});
  q.Push(7, [] {});
  EXPECT_EQ(q.NextTime(), 7u);
}

// --- Simulator ---------------------------------------------------------

TEST(SimulatorTest, ClockAdvancesToEventTime) {
  Simulator sim;
  SimTime seen = 0;
  sim.Schedule(100, [&] { seen = sim.Now(); });
  sim.Run();
  EXPECT_EQ(seen, 100u);
  EXPECT_EQ(sim.Now(), 100u);
}

TEST(SimulatorTest, NestedSchedulingUsesCurrentTime) {
  Simulator sim;
  SimTime inner_time = 0;
  sim.Schedule(50, [&] {
    sim.Schedule(25, [&] { inner_time = sim.Now(); });
  });
  sim.Run();
  EXPECT_EQ(inner_time, 75u);
}

TEST(SimulatorTest, RunUntilLeavesLaterEvents) {
  Simulator sim;
  int fired = 0;
  sim.Schedule(10, [&] { ++fired; });
  sim.Schedule(100, [&] { ++fired; });
  sim.RunUntil(50);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.Now(), 50u);
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.Run();
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, ScheduleAfterRunUntilKeepsEarlierTimestamps) {
  // Regression: RunUntil's deadline check must not commit the event
  // queue to a pending far-future event. Work scheduled after RunUntil
  // returns, earlier than that event, runs first at its own timestamp
  // (the pattern storage-manager crash tests use: stop short of a
  // pending program completion, then schedule recovery work).
  Simulator sim;
  std::vector<SimTime> fired_at;
  sim.Schedule(1000, [&] { fired_at.push_back(sim.Now()); });
  sim.RunUntil(10);
  EXPECT_EQ(sim.Now(), 10u);
  sim.ScheduleAt(100, [&] { fired_at.push_back(sim.Now()); });
  EXPECT_EQ(sim.schedule_clamped(), 0u);
  sim.Run();
  EXPECT_EQ(fired_at, (std::vector<SimTime>{100, 1000}));
}

TEST(SimulatorTest, RunUntilPredicateStopsEarly) {
  Simulator sim;
  int fired = 0;
  for (int i = 1; i <= 10; ++i) {
    sim.Schedule(static_cast<SimTime>(i * 10), [&] { ++fired; });
  }
  const bool satisfied =
      sim.RunUntilPredicate([&] { return fired == 3; });
  EXPECT_TRUE(satisfied);
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(sim.Now(), 30u);
}

TEST(SimulatorTest, RunUntilPredicateFalseWhenQueueDrains) {
  Simulator sim;
  sim.Schedule(10, [] {});
  EXPECT_FALSE(sim.RunUntilPredicate([] { return false; }));
}

// Scheduling at an absolute timestamp already in the past is a latent
// time bug. Debug builds assert; release builds clamp to Now() and
// count the incident in the sim.schedule_clamped stat.
#ifdef NDEBUG
TEST(SimulatorTest, ScheduleAtClampsPastTimesAndCountsThem) {
  Simulator sim;
  sim.Schedule(100, [] {});
  sim.Run();
  EXPECT_EQ(sim.schedule_clamped(), 0u);
  SimTime seen = 0;
  sim.ScheduleAt(10, [&] { seen = sim.Now(); });  // in the past
  EXPECT_EQ(sim.schedule_clamped(), 1u);
  sim.Run();
  EXPECT_EQ(seen, 100u);
}
#else
TEST(SimulatorDeathTest, ScheduleAtInThePastAsserts) {
  Simulator sim;
  sim.Schedule(100, [] {});
  sim.Run();
  EXPECT_DEATH(sim.ScheduleAt(10, [] {}), "timestamp in the past");
}
#endif

TEST(SimulatorTest, ScheduleAtPresentOrFutureDoesNotCountClamps) {
  Simulator sim;
  sim.Schedule(50, [] {});
  sim.Run();
  SimTime seen = 0;
  sim.ScheduleAt(sim.Now(), [&] { seen = sim.Now(); });  // exactly now: ok
  sim.ScheduleAt(200, [] {});
  sim.Run();
  EXPECT_EQ(seen, 50u);
  EXPECT_EQ(sim.Now(), 200u);
  EXPECT_EQ(sim.schedule_clamped(), 0u);
}

TEST(SimulatorTest, CountsEvents) {
  Simulator sim;
  for (int i = 0; i < 5; ++i) sim.Schedule(1, [] {});
  sim.Run();
  EXPECT_EQ(sim.events_executed(), 5u);
}

// --- Resource ----------------------------------------------------------

TEST(ResourceTest, GrantsImmediatelyWhenFree) {
  Simulator sim;
  Resource r(&sim, "r");
  bool granted = false;
  r.Acquire([&] { granted = true; });
  EXPECT_TRUE(granted);  // synchronous grant
  EXPECT_EQ(r.in_use(), 1);
}

TEST(ResourceTest, QueuesWhenBusyAndGrantsFcfs) {
  Simulator sim;
  Resource r(&sim, "r");
  std::vector<int> order;
  r.Acquire([&] { order.push_back(0); });
  r.Acquire([&] { order.push_back(1); });
  r.Acquire([&] { order.push_back(2); });
  EXPECT_EQ(r.queue_length(), 2u);
  r.Release();
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
  r.Release();
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(ResourceTest, CapacityAllowsConcurrency) {
  Simulator sim;
  Resource r(&sim, "r", 3);
  int granted = 0;
  for (int i = 0; i < 5; ++i) r.Acquire([&] { ++granted; });
  EXPECT_EQ(granted, 3);
  EXPECT_EQ(r.queue_length(), 2u);
}

TEST(ResourceTest, UseForSerializesDurations) {
  Simulator sim;
  Resource r(&sim, "r");
  std::vector<SimTime> done_at;
  for (int i = 0; i < 3; ++i) {
    r.UseFor(100, [&] { done_at.push_back(sim.Now()); });
  }
  sim.Run();
  ASSERT_EQ(done_at.size(), 3u);
  EXPECT_EQ(done_at[0], 100u);
  EXPECT_EQ(done_at[1], 200u);
  EXPECT_EQ(done_at[2], 300u);
}

TEST(ResourceTest, UtilizationTracksBusyFraction) {
  Simulator sim;
  Resource r(&sim, "r");
  r.UseFor(100, [] {});
  sim.Run();
  // Busy 100ns out of 100ns elapsed.
  EXPECT_NEAR(r.Utilization(), 1.0, 1e-9);
  sim.Schedule(100, [] {});
  sim.Run();
  EXPECT_NEAR(r.Utilization(), 0.5, 1e-9);
}

TEST(ResourceTest, WaitHistogramRecordsQueueing) {
  Simulator sim;
  Resource r(&sim, "r");
  r.UseFor(100, [] {});
  r.UseFor(100, [] {});
  sim.Run();
  EXPECT_EQ(r.wait_hist().count(), 2u);
  EXPECT_EQ(r.wait_hist().max(), 100u);
}

TEST(ResourceTest, SameTimestampReleasesInterleaveWithOtherEvents) {
  // Two holders of a capacity-2 resource release at the same timestamp
  // with an unrelated event scheduled between the two releases. Each
  // release schedules its own grant event, so the grants interleave
  // with the unrelated event in schedule order — the second grant must
  // not be batched into the first release's event and jump ahead.
  Simulator sim;
  Resource r(&sim, "r", 2);
  r.Acquire([] {});
  r.Acquire([] {});
  std::vector<std::string> order;
  r.Acquire([&] { order.push_back("grant1"); });
  r.Acquire([&] { order.push_back("grant2"); });
  sim.Schedule(10, [&] {
    r.Release();
    sim.Schedule(0, [&] { order.push_back("unrelated"); });
    r.Release();
  });
  sim.Run();
  EXPECT_EQ(order, (std::vector<std::string>{"grant1", "unrelated",
                                             "grant2"}));
}

TEST(ResourceTest, LongGrantChainsDoNotOverflowStack) {
  Simulator sim;
  Resource r(&sim, "r");
  int done = 0;
  for (int i = 0; i < 100000; ++i) {
    r.UseFor(1, [&] { ++done; });
  }
  sim.Run();
  EXPECT_EQ(done, 100000);
}

// --- Completion --------------------------------------------------------

TEST(CompletionTest, WaitForRunsUntilDone) {
  Simulator sim;
  Completion c;
  sim.Schedule(500, [&] { c.Complete(&sim, Status::Ok()); });
  EXPECT_TRUE(WaitFor(&sim, c));
  EXPECT_TRUE(c.done());
  EXPECT_TRUE(c.status().ok());
  EXPECT_EQ(c.completed_at(), 500u);
}

TEST(CompletionTest, WaitForFailsIfNeverCompleted) {
  Simulator sim;
  Completion c;
  sim.Schedule(10, [] {});
  EXPECT_FALSE(WaitFor(&sim, c));
}

TEST(CompletionTest, AsCallbackCarriesStatus) {
  Simulator sim;
  Completion c;
  auto cb = c.AsCallback(&sim);
  sim.Schedule(5, [cb] { cb(Status::DataLoss("x")); });
  EXPECT_TRUE(WaitFor(&sim, c));
  EXPECT_TRUE(c.status().IsDataLoss());
}

TEST(CountdownLatchTest, CountsDownToZero) {
  Simulator sim;
  CountdownLatch latch(3);
  auto cb = latch.AsCallback();
  for (int i = 0; i < 3; ++i) {
    sim.Schedule(static_cast<SimTime>(i), [cb] { cb(Status::Ok()); });
  }
  EXPECT_TRUE(WaitFor(&sim, latch));
  EXPECT_TRUE(latch.done());
}

}  // namespace
}  // namespace postblock::sim
