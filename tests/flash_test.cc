#include <gtest/gtest.h>

#include "flash/address.h"
#include "flash/chip.h"
#include "flash/error_model.h"
#include "flash/geometry.h"
#include "flash/page_store.h"
#include "flash/timing.h"

namespace postblock::flash {
namespace {

Geometry TinyGeometry() {
  Geometry g;
  g.channels = 2;
  g.luns_per_channel = 2;
  g.planes_per_lun = 2;
  g.blocks_per_plane = 4;
  g.pages_per_block = 8;
  g.page_size_bytes = 4096;
  return g;
}

// --- Geometry ----------------------------------------------------------

TEST(GeometryTest, DerivedCounts) {
  const Geometry g = TinyGeometry();
  EXPECT_EQ(g.luns(), 4u);
  EXPECT_EQ(g.blocks_per_lun(), 8u);
  EXPECT_EQ(g.total_blocks(), 32u);
  EXPECT_EQ(g.pages_per_lun(), 64u);
  EXPECT_EQ(g.total_pages(), 256u);
  EXPECT_EQ(g.capacity_bytes(), 256u * 4096);
  EXPECT_TRUE(g.Valid());
}

TEST(GeometryTest, InvalidWhenAnyDimensionZero) {
  Geometry g = TinyGeometry();
  g.channels = 0;
  EXPECT_FALSE(g.Valid());
}

// --- Addressing --------------------------------------------------------

class AddressRoundTripTest : public ::testing::TestWithParam<Geometry> {};

TEST_P(AddressRoundTripTest, PpaFlattenRoundTrips) {
  const Geometry g = GetParam();
  for (std::uint64_t f = 0; f < g.total_pages(); ++f) {
    const Ppa ppa = Ppa::FromFlat(g, f);
    EXPECT_TRUE(InBounds(g, ppa));
    EXPECT_EQ(ppa.Flatten(g), f);
  }
}

TEST_P(AddressRoundTripTest, BlockFlattenRoundTrips) {
  const Geometry g = GetParam();
  for (std::uint64_t f = 0; f < g.total_blocks(); ++f) {
    const BlockAddr a = BlockAddr::FromFlat(g, f);
    EXPECT_TRUE(InBounds(g, a));
    EXPECT_EQ(a.Flatten(g), f);
  }
}

Geometry Slim() {
  Geometry g;
  g.channels = 1;
  g.luns_per_channel = 1;
  g.planes_per_lun = 1;
  g.blocks_per_plane = 3;
  g.pages_per_block = 2;
  return g;
}

Geometry Wide() {
  Geometry g;
  g.channels = 8;
  g.luns_per_channel = 4;
  g.planes_per_lun = 1;
  g.blocks_per_plane = 2;
  g.pages_per_block = 4;
  return g;
}

INSTANTIATE_TEST_SUITE_P(Geometries, AddressRoundTripTest,
                         ::testing::Values(TinyGeometry(), Slim(), Wide()));

TEST(AddressTest, GlobalLunIsChannelMajor) {
  const Geometry g = TinyGeometry();  // 2 channels x 2 luns
  EXPECT_EQ((Ppa{0, 0, 0, 0, 0}).GlobalLun(g), 0u);
  EXPECT_EQ((Ppa{0, 1, 0, 0, 0}).GlobalLun(g), 1u);
  EXPECT_EQ((Ppa{1, 0, 0, 0, 0}).GlobalLun(g), 2u);
  EXPECT_EQ((Ppa{1, 1, 0, 0, 0}).GlobalLun(g), 3u);
}

TEST(AddressTest, OutOfBoundsDetected) {
  const Geometry g = TinyGeometry();
  EXPECT_FALSE(InBounds(g, Ppa{2, 0, 0, 0, 0}));
  EXPECT_FALSE(InBounds(g, Ppa{0, 2, 0, 0, 0}));
  EXPECT_FALSE(InBounds(g, Ppa{0, 0, 2, 0, 0}));
  EXPECT_FALSE(InBounds(g, Ppa{0, 0, 0, 4, 0}));
  EXPECT_FALSE(InBounds(g, Ppa{0, 0, 0, 0, 8}));
}

TEST(AddressTest, ToStringIsReadable) {
  EXPECT_EQ((Ppa{1, 2, 0, 3, 4}).ToString(), "ch1/lun2/pl0/blk3/pg4");
  EXPECT_EQ((BlockAddr{1, 2, 0, 3}).ToString(), "ch1/lun2/pl0/blk3");
}

// --- Timing ------------------------------------------------------------

TEST(TimingTest, TransferScalesWithPageSize) {
  const Timing t = Timing::Mlc();
  // 4 KiB at 200 MB/s = 20480 ns + command cycles.
  EXPECT_EQ(t.TransferNs(4096), t.cmd_ns + 20480u);
  EXPECT_GT(t.TransferNs(8192), t.TransferNs(4096));
}

TEST(TimingTest, GradeOrdering) {
  EXPECT_LT(Timing::Slc().program_ns, Timing::Mlc().program_ns);
  EXPECT_LT(Timing::Mlc().program_ns, Timing::Tlc().program_ns);
  EXPECT_LT(Timing::Slc().read_ns, Timing::Tlc().read_ns);
}

// --- PageStore constraints (C1-C4) --------------------------------------

class PageStoreTest : public ::testing::Test {
 protected:
  PageStoreTest() : store_(TinyGeometry()) {}
  PageStore store_;
};

TEST_F(PageStoreTest, ProgramThenReadRoundTrips) {
  const Ppa ppa{0, 0, 0, 0, 0};
  ASSERT_TRUE(store_.Program(ppa, PageData{7, 1, 0xABCD, 0}).ok());
  auto r = store_.Read(ppa);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->lba, 7u);
  EXPECT_EQ(r->token, 0xABCDu);
}

TEST_F(PageStoreTest, C2ReprogramWithoutEraseFails) {
  const Ppa ppa{0, 0, 0, 0, 0};
  ASSERT_TRUE(store_.Program(ppa, PageData{}).ok());
  const Status st = store_.Program(ppa, PageData{});
  EXPECT_TRUE(st.IsFailedPrecondition());
  EXPECT_NE(st.message().find("C2"), std::string::npos);
}

TEST_F(PageStoreTest, C3BackwardsProgramFails) {
  ASSERT_TRUE(store_.Program(Ppa{0, 0, 0, 0, 3}, PageData{}).ok());
  const Status st = store_.Program(Ppa{0, 0, 0, 0, 1}, PageData{});
  EXPECT_TRUE(st.IsFailedPrecondition());
  EXPECT_NE(st.message().find("C3"), std::string::npos);
}

TEST_F(PageStoreTest, C3AscendingWithGapsAllowed) {
  EXPECT_TRUE(store_.Program(Ppa{0, 0, 0, 0, 1}, PageData{}).ok());
  EXPECT_TRUE(store_.Program(Ppa{0, 0, 0, 0, 5}, PageData{}).ok());
  EXPECT_EQ(store_.GetBlockInfo(BlockAddr{0, 0, 0, 0}).write_point, 6u);
}

TEST_F(PageStoreTest, ReadOfErasedPageFails) {
  EXPECT_TRUE(store_.Read(Ppa{0, 0, 0, 0, 0}).status()
                  .IsFailedPrecondition());
}

TEST_F(PageStoreTest, InvalidPagesRemainReadable) {
  const Ppa ppa{0, 0, 0, 0, 0};
  ASSERT_TRUE(store_.Program(ppa, PageData{1, 1, 42, 0}).ok());
  ASSERT_TRUE(store_.MarkInvalid(ppa).ok());
  auto r = store_.Read(ppa);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->token, 42u);
}

TEST_F(PageStoreTest, EraseResetsBlock) {
  const BlockAddr blk{0, 0, 0, 0};
  for (std::uint32_t p = 0; p < 8; ++p) {
    ASSERT_TRUE(store_.Program(Ppa{0, 0, 0, 0, p}, PageData{p, 1, p, 0})
                    .ok());
  }
  EXPECT_EQ(store_.GetBlockInfo(blk).valid_pages, 8u);
  ASSERT_TRUE(store_.Erase(blk).ok());
  const BlockInfo& info = store_.GetBlockInfo(blk);
  EXPECT_EQ(info.write_point, 0u);
  EXPECT_EQ(info.valid_pages, 0u);
  EXPECT_EQ(info.erase_count, 1u);  // C4 bookkeeping
  EXPECT_EQ(store_.GetPageState(Ppa{0, 0, 0, 0, 3}), PageState::kFree);
  // And the block can be programmed again from page 0.
  EXPECT_TRUE(store_.Program(Ppa{0, 0, 0, 0, 0}, PageData{}).ok());
}

TEST_F(PageStoreTest, MarkInvalidUpdatesValidCount) {
  ASSERT_TRUE(store_.Program(Ppa{0, 0, 0, 0, 0}, PageData{}).ok());
  ASSERT_TRUE(store_.Program(Ppa{0, 0, 0, 0, 1}, PageData{}).ok());
  ASSERT_TRUE(store_.MarkInvalid(Ppa{0, 0, 0, 0, 0}).ok());
  EXPECT_EQ(store_.GetBlockInfo(BlockAddr{0, 0, 0, 0}).valid_pages, 1u);
  // Double-invalidate is rejected.
  EXPECT_TRUE(store_.MarkInvalid(Ppa{0, 0, 0, 0, 0})
                  .IsFailedPrecondition());
}

TEST_F(PageStoreTest, RevalidateRestoresValidity) {
  const Ppa ppa{0, 0, 0, 0, 0};
  ASSERT_TRUE(store_.Program(ppa, PageData{}).ok());
  ASSERT_TRUE(store_.MarkInvalid(ppa).ok());
  ASSERT_TRUE(store_.Revalidate(ppa).ok());
  EXPECT_EQ(store_.GetPageState(ppa), PageState::kValid);
  EXPECT_EQ(store_.GetBlockInfo(BlockAddr{0, 0, 0, 0}).valid_pages, 1u);
  EXPECT_TRUE(store_.Revalidate(ppa).IsFailedPrecondition());
}

TEST_F(PageStoreTest, BadBlockRejectsProgramAndErase) {
  const BlockAddr blk{0, 0, 0, 0};
  ASSERT_TRUE(store_.MarkBad(blk).ok());
  EXPECT_EQ(store_.bad_blocks(), 1u);
  EXPECT_TRUE(store_.Program(Ppa{0, 0, 0, 0, 0}, PageData{})
                  .IsFailedPrecondition());
  EXPECT_TRUE(store_.Erase(blk).IsFailedPrecondition());
  // Idempotent.
  ASSERT_TRUE(store_.MarkBad(blk).ok());
  EXPECT_EQ(store_.bad_blocks(), 1u);
}

TEST_F(PageStoreTest, OutOfRangeOperationsRejected) {
  EXPECT_TRUE(store_.Program(Ppa{9, 0, 0, 0, 0}, PageData{})
                  .IsOutOfRange());
  EXPECT_TRUE(store_.Read(Ppa{9, 0, 0, 0, 0}).status().IsOutOfRange());
  EXPECT_TRUE(store_.Erase(BlockAddr{9, 0, 0, 0}).IsOutOfRange());
  EXPECT_TRUE(store_.MarkInvalid(Ppa{9, 0, 0, 0, 0}).IsOutOfRange());
}

TEST_F(PageStoreTest, WearStatistics) {
  ASSERT_TRUE(store_.Erase(BlockAddr{0, 0, 0, 0}).ok());
  ASSERT_TRUE(store_.Erase(BlockAddr{0, 0, 0, 0}).ok());
  ASSERT_TRUE(store_.Erase(BlockAddr{0, 0, 0, 1}).ok());
  EXPECT_EQ(store_.MaxEraseCount(), 2u);
  EXPECT_EQ(store_.MinEraseCount(), 0u);
  EXPECT_NEAR(store_.MeanEraseCount(), 3.0 / 32, 1e-9);
}

// --- ErrorModel ----------------------------------------------------------

TEST(ErrorModelTest, NoneNeverFails) {
  ErrorModel m(ErrorModelConfig::None());
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(m.SampleRead(1000, &rng), ReadOutcome::kClean);
    EXPECT_FALSE(m.SampleEraseFailure(1 << 20, &rng));
  }
}

TEST(ErrorModelTest, WearFactorGrowsCubically) {
  ErrorModel m(ErrorModelConfig::Mlc());
  EXPECT_NEAR(m.WearFactor(0), 1.0, 1e-9);
  EXPECT_GT(m.WearFactor(10000), m.WearFactor(5000));
  EXPECT_GT(m.WearFactor(20000), 100.0);
}

TEST(ErrorModelTest, WornBlocksFailMoreOften) {
  ErrorModel m(ErrorModelConfig::Tlc());
  Rng rng(1);
  int fresh_bad = 0;
  int worn_bad = 0;
  for (int i = 0; i < 20000; ++i) {
    fresh_bad += m.SampleRead(0, &rng) == ReadOutcome::kUncorrectable;
    worn_bad += m.SampleRead(25000, &rng) == ReadOutcome::kUncorrectable;
  }
  EXPECT_GT(worn_bad, fresh_bad);
}

TEST(ErrorModelTest, EraseFailuresOnlyPastEndurance) {
  ErrorModel m(ErrorModelConfig::Mlc());
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(m.SampleEraseFailure(100, &rng));
  }
  int failures = 0;
  for (int i = 0; i < 10000; ++i) {
    failures += m.SampleEraseFailure(20001, &rng);
  }
  EXPECT_GT(failures, 0);
}

// --- FlashArray -----------------------------------------------------------

TEST(FlashArrayTest, CountsOperations) {
  FlashArray flash(TinyGeometry(), Timing::Mlc(),
                   ErrorModelConfig::None());
  ASSERT_TRUE(flash.Program(Ppa{0, 0, 0, 0, 0}, PageData{1, 1, 9, 0}).ok());
  ASSERT_TRUE(flash.Read(Ppa{0, 0, 0, 0, 0}).ok());
  ASSERT_TRUE(flash.Erase(BlockAddr{0, 0, 0, 1}).ok());
  EXPECT_EQ(flash.counters().Get("pages_programmed"), 1u);
  EXPECT_EQ(flash.counters().Get("pages_read"), 1u);
  EXPECT_EQ(flash.counters().Get("blocks_erased"), 1u);
}

TEST(FlashArrayTest, UncorrectableReadsReportDataLoss) {
  ErrorModelConfig errors;
  errors.base_uncorrectable_rate = 1.0;  // every read dies
  FlashArray flash(TinyGeometry(), Timing::Mlc(), errors);
  ASSERT_TRUE(flash.Program(Ppa{0, 0, 0, 0, 0}, PageData{}).ok());
  EXPECT_TRUE(flash.Read(Ppa{0, 0, 0, 0, 0}).status().IsDataLoss());
  EXPECT_EQ(flash.counters().Get("reads_uncorrectable"), 1u);
}

TEST(FlashArrayTest, EraseFailureRetiresBlock) {
  ErrorModelConfig errors;
  errors.endurance_cycles = 1;
  errors.post_endurance_erase_failure = 1.0;
  FlashArray flash(TinyGeometry(), Timing::Mlc(), errors);
  const BlockAddr blk{0, 0, 0, 0};
  ASSERT_TRUE(flash.Erase(blk).ok());  // erase #1: at endurance, fine
  EXPECT_TRUE(flash.Erase(blk).IsDataLoss());  // erase #2: dies
  EXPECT_TRUE(flash.GetBlockInfo(blk).bad);
  EXPECT_EQ(flash.bad_blocks(), 1u);
}

TEST(FlashArrayTest, PeekBypassesErrorModel) {
  ErrorModelConfig errors;
  errors.base_uncorrectable_rate = 1.0;
  FlashArray flash(TinyGeometry(), Timing::Mlc(), errors);
  ASSERT_TRUE(flash.Program(Ppa{0, 0, 0, 0, 0}, PageData{1, 1, 5, 0}).ok());
  auto r = flash.Peek(Ppa{0, 0, 0, 0, 0});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->token, 5u);
}

}  // namespace
}  // namespace postblock::flash
