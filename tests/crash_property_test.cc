// Adversarial property tests: multi-block IO integrity across FTLs and
// atomic-write all-or-nothing under power cuts at random instants.

#include <map>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "ftl/page_ftl.h"
#include "sim/simulator.h"
#include "ssd/device.h"

namespace postblock {
namespace {

// --- Multi-block requests against a shadow model ----------------------------

class MultiBlockIntegrityTest
    : public ::testing::TestWithParam<ssd::FtlKind> {};

TEST_P(MultiBlockIntegrityTest, RandomSizedRequestsMatchShadow) {
  sim::Simulator sim;
  ssd::Config cfg = ssd::Config::Small();
  cfg.ftl = GetParam();
  cfg.write_buffer.pages = 24;
  ssd::Device device(&sim, cfg);
  const Lba n = std::min<Lba>(device.num_blocks(), 600);
  std::map<Lba, std::uint64_t> shadow;
  Rng rng(31337);

  auto run = [&](blocklayer::IoRequest req) {
    blocklayer::IoResult out;
    bool fired = false;
    req.on_complete = [&](const blocklayer::IoResult& r) {
      out = r;
      fired = true;
    };
    device.Submit(std::move(req));
    EXPECT_TRUE(sim.RunUntilPredicate([&] { return fired; }));
    return out;
  };

  for (int i = 0; i < 800; ++i) {
    const std::uint32_t nblocks =
        static_cast<std::uint32_t>(rng.UniformRange(1, 8));
    const Lba lba = rng.Uniform(n - nblocks);
    const double dice = rng.NextDouble();
    blocklayer::IoRequest req;
    req.lba = lba;
    req.nblocks = nblocks;
    if (dice < 0.45) {
      req.op = blocklayer::IoOp::kWrite;
      for (std::uint32_t b = 0; b < nblocks; ++b) {
        const std::uint64_t token = rng.Next() | 1;
        req.tokens.push_back(token);
        shadow[lba + b] = token;
      }
      ASSERT_TRUE(run(std::move(req)).status.ok()) << i;
    } else if (dice < 0.55) {
      req.op = blocklayer::IoOp::kTrim;
      for (std::uint32_t b = 0; b < nblocks; ++b) shadow[lba + b] = 0;
      ASSERT_TRUE(run(std::move(req)).status.ok()) << i;
    } else {
      req.op = blocklayer::IoOp::kRead;
      const auto res = run(std::move(req));
      ASSERT_TRUE(res.status.ok()) << i;
      ASSERT_EQ(res.tokens.size(), nblocks);
      for (std::uint32_t b = 0; b < nblocks; ++b) {
        const auto it = shadow.find(lba + b);
        const std::uint64_t want = it == shadow.end() ? 0 : it->second;
        ASSERT_EQ(res.tokens[b], want)
            << "op " << i << " lba " << lba + b << " ftl "
            << ssd::FtlKindName(GetParam());
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllFtls, MultiBlockIntegrityTest,
    ::testing::Values(ssd::FtlKind::kPageMap, ssd::FtlKind::kBlockMap,
                      ssd::FtlKind::kHybrid, ssd::FtlKind::kDftl),
    [](const ::testing::TestParamInfo<ssd::FtlKind>& info) {
      switch (info.param) {
        case ssd::FtlKind::kPageMap:
          return "PageMap";
        case ssd::FtlKind::kBlockMap:
          return "BlockMap";
        case ssd::FtlKind::kHybrid:
          return "Hybrid";
        default:
          return "Dftl";
      }
    });

// --- Atomic groups under power cuts at random instants ----------------------

TEST(AtomicCrashPropertyTest, GroupsAreAllOrNothingAtAnyCutPoint) {
  // Repeatedly: start an atomic batch over LBAs with known old values,
  // cut power at a random point inside the batch's execution window,
  // recover, and check the batch is entirely old or entirely new.
  Rng rng(4242);
  for (int trial = 0; trial < 25; ++trial) {
    sim::Simulator sim;
    ssd::Config cfg = ssd::Config::Small();
    ssd::Controller controller(&sim, cfg);
    ftl::PageFtl ftl(&controller);

    // Old values everywhere the batch touches (distinct, in range).
    const std::size_t group_size = 2 + rng.Uniform(6);
    std::vector<Lba> lbas;
    for (std::size_t i = 0; i < group_size; ++i) {
      lbas.push_back((static_cast<Lba>(trial) * 37 +
                      static_cast<Lba>(i) * 3) %
                     ftl.user_pages());
    }
    for (const Lba lba : lbas) {
      bool fired = false;
      ftl.Write(lba, 1000 + lba, [&](Status st) {
        ASSERT_TRUE(st.ok());
        fired = true;
      });
      ASSERT_TRUE(sim.RunUntilPredicate([&] { return fired; }));
    }

    // The batch, with a power cut at a random instant in [0, 3ms).
    std::vector<std::pair<Lba, std::uint64_t>> batch;
    for (const Lba lba : lbas) batch.emplace_back(lba, 2000 + lba);
    bool committed = false;
    ftl.WriteAtomic(batch, [&](Status st) {
      committed = st.ok();
    });
    const SimTime cut = rng.Uniform(3 * kMillisecond);
    sim.RunUntil(sim.Now() + cut);
    ASSERT_TRUE(ftl.PowerCycle().ok()) << "trial " << trial;

    // Count how many LBAs show the new value.
    std::size_t new_count = 0;
    for (const Lba lba : lbas) {
      std::uint64_t got = 0;
      bool fired = false;
      ftl.Read(lba, [&](StatusOr<std::uint64_t> r) {
        ASSERT_TRUE(r.ok());
        got = *r;
        fired = true;
      });
      ASSERT_TRUE(sim.RunUntilPredicate([&] { return fired; }));
      if (got == 2000 + lba) {
        ++new_count;
      } else {
        ASSERT_EQ(got, 1000 + lba) << "trial " << trial << " lba " << lba;
      }
    }
    ASSERT_TRUE(new_count == 0 || new_count == lbas.size())
        << "torn atomic group in trial " << trial << ": " << new_count
        << " of " << lbas.size() << " pages new (committed="
        << committed << ", cut at " << cut << "ns)";
    // If the host saw the commit ack before the cut, the new values
    // must be there.
    if (committed) {
      ASSERT_EQ(new_count, lbas.size());
    }
  }
}

}  // namespace
}  // namespace postblock
