// End-to-end flash error recovery under scripted faults: the retry
// ladder, remap/refresh, bad-block spares, mapping poisoning and the
// deterministic fault-injection harness itself (ISSUE: fig2-style
// torture — no lost update, no stale read, spares exhaustion fails
// safe).

#include <map>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "flash/fault_injector.h"
#include "ftl/block_ftl.h"
#include "ftl/dftl.h"
#include "ftl/page_ftl.h"
#include "sim/completion.h"
#include "sim/simulator.h"
#include "ssd/config.h"
#include "ssd/controller.h"
#include "ssd/write_buffer.h"

namespace postblock {
namespace {

ssd::Config FaultConfig() {
  ssd::Config c = ssd::Config::Small();  // 2ch x 2lun x 32blk x 16pg
  c.gc.low_watermark_blocks = 3;
  c.gc.reserve_blocks = 1;
  // Pure scripted determinism: the stochastic model never fires, so
  // every fault in these tests is one this file injected.
  c.errors = flash::ErrorModelConfig::None();
  return c;
}

class FaultTest : public ::testing::Test {
 protected:
  void Build(const ssd::Config& config) {
    ftl_.reset();
    controller_.reset();
    simulator_ = std::make_unique<sim::Simulator>();
    injector_ =
        std::make_unique<flash::FaultInjector>(config.geometry);
    ssd::Config wired = config;
    wired.fault_injector = injector_.get();
    controller_ =
        std::make_unique<ssd::Controller>(simulator_.get(), wired);
    ftl_ = std::make_unique<ftl::PageFtl>(controller_.get());
  }

  void SetUp() override { Build(FaultConfig()); }

  Status WriteSync(Lba lba, std::uint64_t token) {
    sim::Completion done;
    ftl_->Write(lba, token, done.AsCallback(simulator_.get()));
    EXPECT_TRUE(sim::WaitFor(simulator_.get(), done))
        << "write never completed";
    return done.status();
  }

  StatusOr<std::uint64_t> ReadSync(Lba lba) {
    StatusOr<std::uint64_t> out = Status::Internal("not run");
    bool fired = false;
    ftl_->Read(lba, [&](StatusOr<std::uint64_t> r) {
      out = std::move(r);
      fired = true;
    });
    EXPECT_TRUE(simulator_->RunUntilPredicate([&] { return fired; }))
        << "read never completed";
    return out;
  }

  flash::Ppa LocateOrDie(Lba lba) {
    auto ppa = ftl_->Locate(lba);
    EXPECT_TRUE(ppa.has_value());
    return *ppa;
  }

  std::unique_ptr<sim::Simulator> simulator_;
  std::unique_ptr<flash::FaultInjector> injector_;
  std::unique_ptr<ssd::Controller> controller_;
  std::unique_ptr<ftl::PageFtl> ftl_;
};

// --- The injector itself ---------------------------------------------

TEST_F(FaultTest, AttachedEmptyInjectorChangesNothing) {
  // A wired-but-silent injector must leave the run identical to one
  // with no injector at all (the bench determinism gate in miniature).
  auto run = [](flash::FaultInjector* injector) {
    ssd::Config c = FaultConfig();
    c.fault_injector = injector;
    sim::Simulator sim;
    ssd::Controller controller(&sim, c);
    ftl::PageFtl ftl(&controller);
    Rng rng(7);
    for (int i = 0; i < 400; ++i) {
      const Lba lba = rng.Next() % 64;
      sim::Completion done;
      ftl.Write(lba, i + 1, done.AsCallback(&sim));
      sim.Run();
    }
    return std::make_pair(sim.Now(),
                          controller.flash()->counters().All());
  };
  flash::FaultInjector idle(FaultConfig().geometry);
  const auto with = run(&idle);
  const auto without = run(nullptr);
  EXPECT_EQ(with.first, without.first);
  EXPECT_EQ(with.second, without.second);
}

TEST_F(FaultTest, ScriptedFaultsAreDeterministic) {
  // Two identical runs with the same scripts agree on everything:
  // end time, flash counters, and what every LBA reads back as.
  auto run = [] {
    ssd::Config c = FaultConfig();
    sim::Simulator sim;
    flash::FaultInjector injector(c.geometry);
    c.fault_injector = &injector;
    ssd::Controller controller(&sim, c);
    ftl::PageFtl ftl(&controller);
    Rng rng(11);
    for (int i = 0; i < 200; ++i) {
      sim::Completion done;
      ftl.Write(rng.Next() % 32, i + 1, done.AsCallback(&sim));
      sim.Run();
    }
    auto ppa = ftl.Locate(5);
    if (ppa.has_value()) injector.FailReadAlways(*ppa);
    std::vector<std::string> results;
    for (Lba lba = 0; lba < 32; ++lba) {
      StatusOr<std::uint64_t> out = Status::Internal("not run");
      ftl.Read(lba, [&](StatusOr<std::uint64_t> r) { out = std::move(r); });
      sim.Run();
      results.push_back(out.ok() ? std::to_string(*out)
                                 : out.status().ToString());
    }
    return std::make_tuple(sim.Now(), controller.flash()->counters().All(),
                           results, injector.counters().All());
  };
  EXPECT_EQ(run(), run());
}

// --- Retry ladder ----------------------------------------------------

TEST_F(FaultTest, RetryLadderRecoversAfterScriptedTransients) {
  ASSERT_TRUE(WriteSync(9, 4242).ok());
  const flash::Ppa ppa = LocateOrDie(9);
  injector_->FailRead(ppa, {1, 2});  // attempts 1+2 fail, 3 succeeds
  auto r = ReadSync(9);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 4242u);
  EXPECT_EQ(controller_->read_retries(), 2u);
  EXPECT_EQ(controller_->flash()->counters().Get("read_retries"), 2u);
  EXPECT_EQ(injector_->counters().Get("read_faults_fired"), 2u);
}

TEST_F(FaultTest, RetryRungsCostEscalatingLatency) {
  ASSERT_TRUE(WriteSync(3, 1).ok());
  ASSERT_TRUE(WriteSync(4, 2).ok());
  const SimTime clean_start = simulator_->Now();
  ASSERT_TRUE(ReadSync(3).ok());
  const SimTime clean = simulator_->Now() - clean_start;

  injector_->FailRead(LocateOrDie(4), {1, 2});
  const SimTime retried_start = simulator_->Now();
  ASSERT_TRUE(ReadSync(4).ok());
  const SimTime retried = simulator_->Now() - retried_start;
  EXPECT_GT(retried, clean) << "retry rungs must not be free";
}

TEST_F(FaultTest, ExhaustedLadderPoisonsMappingNoStaleData) {
  ASSERT_TRUE(WriteSync(7, 777).ok());
  injector_->FailReadAlways(LocateOrDie(7));
  auto first = ReadSync(7);
  EXPECT_TRUE(first.status().IsDataLoss());
  // Poisoned: later reads answer DataLoss without re-sensing dead
  // cells, deterministically.
  auto second = ReadSync(7);
  EXPECT_TRUE(second.status().IsDataLoss());
  EXPECT_GE(ftl_->counters().Get("pages_poisoned"), 1u);
  EXPECT_GE(ftl_->counters().Get("host_reads_poisoned"), 1u);
  // A fresh write clears the poison (new data, new cells).
  ASSERT_TRUE(WriteSync(7, 778).ok());
  auto third = ReadSync(7);
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(*third, 778u);
}

// --- Stuck-busy LUNs -------------------------------------------------

TEST_F(FaultTest, StuckBusyLunDelaysTheNextOperation) {
  ASSERT_TRUE(WriteSync(2, 22).ok());
  const flash::Ppa ppa = LocateOrDie(2);
  const SimTime clean_start = simulator_->Now();
  ASSERT_TRUE(ReadSync(2).ok());
  const SimTime clean = simulator_->Now() - clean_start;

  const SimTime kStuck = 2 * kMillisecond;
  injector_->StuckBusy(ppa.GlobalLun(controller_->config().geometry),
                       kStuck, 1);
  const SimTime stuck_start = simulator_->Now();
  ASSERT_TRUE(ReadSync(2).ok());
  const SimTime stuck = simulator_->Now() - stuck_start;
  EXPECT_GE(stuck, clean + kStuck);
  EXPECT_EQ(injector_->counters().Get("busy_penalties"), 1u);

  // The script is consumed: the next read is clean again.
  const SimTime after_start = simulator_->Now();
  ASSERT_TRUE(ReadSync(2).ok());
  EXPECT_EQ(simulator_->Now() - after_start, clean);
}

// --- Refresh (remap-on-correctable-threshold) ------------------------

TEST_F(FaultTest, CorrectableThresholdTriggersRefreshRelocation) {
  ssd::Config c = FaultConfig();
  c.reliability.refresh_correctable_threshold = 3;
  Build(c);
  // One write per LBA: lba 12's page lands in an early block, and the
  // rest push every LUN past its first block so that block is sealed —
  // refresh skips blocks still accepting writes.
  for (Lba lba = 0; lba < 80; ++lba) {
    ASSERT_TRUE(WriteSync(lba, lba == 12 ? 1212 : 5000 + lba).ok());
  }
  const flash::Ppa ppa = LocateOrDie(12);
  injector_->FailRead(ppa, {1, 2, 3}, flash::ReadOutcome::kCorrectable);
  for (int i = 0; i < 3; ++i) {
    auto r = ReadSync(12);
    ASSERT_TRUE(r.ok());  // correctable = ECC fixed it
    EXPECT_EQ(*r, 1212u);
  }
  simulator_->Run();  // let the refresh collection drain
  EXPECT_EQ(controller_->flash()->counters().Get("refresh_triggers"), 1u);
  EXPECT_GE(ftl_->counters().Get("refresh_runs"), 1u);
  // The data moved off the decaying block and still reads back.
  const flash::Ppa moved = LocateOrDie(12);
  EXPECT_FALSE(moved.channel == ppa.channel && moved.lun == ppa.lun &&
               moved.plane == ppa.plane && moved.block == ppa.block)
      << "refresh must relocate the page to a different block";
  EXPECT_EQ(*ReadSync(12), 1212u);
}

// --- GC relocation vs. dead pages (the page_ftl.cc:661 regression) ---

TEST_F(FaultTest, GcRelocationFailurePoisonsInsteadOfAliasing) {
  // Kill one page's cells, then force the collector over its block via
  // the refresh path (greedy GC would keep picking fully-invalid
  // blocks and never touch a 1-live-page block). The failed relocation
  // must poison the LBA: a host read gets DataLoss — never another
  // LBA's token, never stale data — even after the victim block is
  // erased and reused.
  ssd::Config c = FaultConfig();
  c.reliability.refresh_correctable_threshold = 3;
  Build(c);
  std::map<Lba, std::uint64_t> shadow;
  for (Lba lba = 0; lba < 80; ++lba) {
    const std::uint64_t token = 1000000 + lba;
    ASSERT_TRUE(WriteSync(lba, token).ok());
    shadow[lba] = token;
  }
  const Lba victim_lba = 13;
  const flash::Ppa dead = LocateOrDie(victim_lba);
  // A healthy co-resident page in the same (sealed) block whose
  // correctable reads will drag the whole block into refresh.
  Lba buddy = victim_lba;
  for (Lba lba = 0; lba < 80 && buddy == victim_lba; ++lba) {
    auto p = ftl_->Locate(lba);
    if (lba != victim_lba && p.has_value() && p->Block() == dead.Block()) {
      buddy = lba;
    }
  }
  ASSERT_NE(buddy, victim_lba) << "no co-resident lba in victim block";
  injector_->FailReadAlways(dead);
  injector_->FailRead(LocateOrDie(buddy), {1, 2, 3},
                      flash::ReadOutcome::kCorrectable);
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(ReadSync(buddy).ok());
  simulator_->Run();  // refresh collects the block; dead page read fails
  EXPECT_GE(ftl_->counters().Get("gc_read_failures"), 1u);
  EXPECT_GE(ftl_->counters().Get("pages_poisoned"), 1u);
  // The buddy was rescued; the victim's only copy died with the cells.
  ASSERT_TRUE(ReadSync(buddy).ok());
  EXPECT_EQ(*ReadSync(buddy), shadow[buddy]);
  EXPECT_TRUE(ReadSync(victim_lba).status().IsDataLoss());
  // The stored bits are gone but the cells themselves get reused:
  // churn until the freed block holds other LBAs' data, then verify the
  // poisoned mapping never aliases into it.
  injector_->ClearReadFaults(dead);
  Rng rng(23);
  for (int i = 0; i < 1200; ++i) {
    const Lba lba = rng.Next() % 80;
    if (lba == victim_lba) continue;
    const std::uint64_t token = 2000000 + i;
    ASSERT_TRUE(WriteSync(lba, token).ok());
    shadow[lba] = token;
  }
  simulator_->Run();
  for (const auto& [lba, token] : shadow) {
    if (lba == victim_lba) continue;
    auto r = ReadSync(lba);
    ASSERT_TRUE(r.ok()) << "lba " << lba << ": " << r.status().ToString();
    EXPECT_EQ(*r, token) << "stale or aliased data at lba " << lba;
  }
  // Still DataLoss — poison survives block reuse without re-sensing.
  EXPECT_TRUE(ReadSync(victim_lba).status().IsDataLoss());
  // A fresh host write is the only thing that clears it.
  ASSERT_TRUE(WriteSync(victim_lba, 42).ok());
  EXPECT_EQ(*ReadSync(victim_lba), 42u);
}

// --- Erase retirement: spares, unified accounting, read-only ---------

void ScriptEraseFaultsEverywhere(flash::FaultInjector* injector,
                                 const flash::Geometry& g) {
  for (std::uint32_t c = 0; c < g.channels; ++c) {
    for (std::uint32_t l = 0; l < g.luns_per_channel; ++l) {
      for (std::uint32_t p = 0; p < g.planes_per_lun; ++p) {
        for (std::uint32_t b = 0; b < g.blocks_per_plane; ++b) {
          injector->FailErase(flash::BlockAddr{c, l, p, b}, 1);
        }
      }
    }
  }
}

TEST_F(FaultTest, RetirementAccountingAgreesAcrossAllLayers) {
  ssd::Config c = FaultConfig();
  c.reliability.spare_blocks_per_lun = 100;  // never exhaust here
  Build(c);
  // First erase of each early block fails and retires it. Only a
  // quarter of the array is scripted: retiring every block would
  // eventually drain the free lists and stall writes forever.
  const auto& geom = controller_->config().geometry;
  for (std::uint32_t ch = 0; ch < geom.channels; ++ch) {
    for (std::uint32_t l = 0; l < geom.luns_per_channel; ++l) {
      for (std::uint32_t p = 0; p < geom.planes_per_lun; ++p) {
        for (std::uint32_t b = 0; b < geom.blocks_per_plane / 4; ++b) {
          injector_->FailErase(flash::BlockAddr{ch, l, p, b}, 1);
        }
      }
    }
  }
  Rng rng(31);
  for (int i = 0; i < 2500; ++i) {
    ASSERT_TRUE(WriteSync(rng.Next() % 64, i + 1).ok());
  }
  simulator_->Run();
  const std::uint64_t flash_failures =
      controller_->flash()->counters().Get("erase_failures");
  ASSERT_GE(flash_failures, 1u) << "churn never triggered a GC erase";
  // The same retirement count seen by flash, controller mirror, FTL
  // counter and the spare-pool drain — one event, four ledgers.
  EXPECT_EQ(flash_failures, controller_->blocks_retired());
  EXPECT_EQ(flash_failures, ftl_->counters().Get("blocks_retired"));
  const auto& g = controller_->config().geometry;
  EXPECT_EQ(flash_failures,
            static_cast<std::uint64_t>(g.luns()) * 100 -
                controller_->spare_blocks_total());
  EXPECT_EQ(flash_failures, injector_->counters().Get("erase_faults_fired"));
}

TEST_F(FaultTest, SparesExhaustionFailsSafeToReadOnly) {
  ssd::Config c = FaultConfig();
  c.reliability.spare_blocks_per_lun = 1;
  Build(c);
  ScriptEraseFaultsEverywhere(injector_.get(),
                              controller_->config().geometry);
  Rng rng(37);
  std::map<Lba, std::uint64_t> shadow;
  int i = 0;
  while (!controller_->read_only() && i < 20000) {
    const Lba lba = rng.Next() % 64;
    const std::uint64_t token = ++i;
    const Status st = WriteSync(lba, token);
    if (st.ok()) shadow[lba] = token;
  }
  simulator_->Run();
  ASSERT_TRUE(controller_->read_only())
      << "spares never exhausted under scripted erase faults";
  // Writes now fail with a definite status, not silent loss or UB.
  EXPECT_TRUE(WriteSync(1, 999999).IsResourceExhausted());
  EXPECT_GE(ftl_->counters().Get("writes_rejected_read_only"), 1u);
  // Every acked write is still readable (or honestly DataLoss).
  for (const auto& [lba, token] : shadow) {
    auto r = ReadSync(lba);
    if (r.ok()) {
      EXPECT_EQ(*r, token);
    } else {
      EXPECT_TRUE(r.status().IsDataLoss());
    }
  }
}

// --- Legacy FTLs: free-list exhaustion is a status, not UB -----------

TEST(BlockFtlFaultTest, MergeEraseRetirementSurfacesResourceExhausted) {
  ssd::Config c = FaultConfig();
  c.reliability.spare_blocks_per_lun = 1;
  sim::Simulator sim;
  flash::FaultInjector injector(c.geometry);
  c.fault_injector = &injector;
  ssd::Controller controller(&sim, c);
  ftl::BlockFtl ftl(&controller);
  ScriptEraseFaultsEverywhere(&injector, c.geometry);

  auto write = [&](Lba lba, std::uint64_t token) {
    sim::Completion done;
    ftl.Write(lba, token, done.AsCallback(&sim));
    sim.Run();
    EXPECT_TRUE(done.done());
    return done.status();
  };
  // First write maps the vblock; the overwrite forces a merge whose
  // erase fails — retiring the block and burning lun 0's only spare.
  ASSERT_TRUE(write(0, 1).ok());
  ASSERT_TRUE(write(0, 2).ok());
  EXPECT_TRUE(controller.read_only());
  EXPECT_EQ(controller.blocks_retired(),
            ftl.counters().Get("blocks_retired"));
  // Read-only now rejects writes up front with a real status.
  EXPECT_TRUE(write(5, 3).IsResourceExhausted());
  // The merged data survived the failed erase of its old block.
  StatusOr<std::uint64_t> out = Status::Internal("not run");
  ftl.Read(0, [&](StatusOr<std::uint64_t> r) { out = std::move(r); });
  sim.Run();
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, 2u);
}

// --- Write buffer: drain failures must not become a silent Ok --------

class FlakyFtl : public ftl::Ftl {
 public:
  explicit FlakyFtl(sim::Simulator* sim) : sim_(sim) {}
  int fail_writes = 0;  // >0: fail that many; <0: fail forever

  void Write(Lba, std::uint64_t, WriteCallback cb,
             trace::Ctx = {}) override {
    Status st = Status::Ok();
    if (fail_writes != 0) {
      if (fail_writes > 0) --fail_writes;
      st = Status::DataLoss("injected drain failure");
    }
    sim_->Schedule(1000, [cb = std::move(cb), st]() { cb(st); });
  }
  void Read(Lba, ReadCallback cb, trace::Ctx = {}) override {
    sim_->Schedule(1000, [cb = std::move(cb)]() { cb(std::uint64_t{0}); });
  }
  void Trim(Lba, WriteCallback cb, trace::Ctx = {}) override {
    sim_->Schedule(0, [cb = std::move(cb)]() { cb(Status::Ok()); });
  }
  std::uint64_t user_pages() const override { return 1024; }
  const Counters& counters() const override { return counters_; }
  double WriteAmplification() const override { return 0.0; }

 private:
  sim::Simulator* sim_;
  Counters counters_;
};

TEST(WriteBufferFaultTest, DrainRetriesOnceThenSucceeds) {
  sim::Simulator sim;
  FlakyFtl ftl(&sim);
  ftl.fail_writes = 1;
  ssd::WriteBufferConfig cfg;
  cfg.pages = 8;
  ssd::WriteBuffer buffer(&sim, &ftl, cfg, 1);
  sim::Completion put, flush;
  buffer.SubmitWrite(5, 55, put.AsCallback(&sim));
  sim.Run();
  ASSERT_TRUE(put.done() && put.status().ok());
  buffer.Flush(flush.AsCallback(&sim));
  sim.Run();
  ASSERT_TRUE(flush.done());
  EXPECT_TRUE(flush.status().ok()) << "retried drain made the page durable";
  EXPECT_EQ(buffer.counters().Get("drain_retries"), 1u);
  EXPECT_EQ(buffer.counters().Get("drain_drops"), 0u);
}

TEST(WriteBufferFaultTest, ExhaustedDrainSurfacesRealStatusToFlush) {
  sim::Simulator sim;
  FlakyFtl ftl(&sim);
  ftl.fail_writes = -1;  // media never accepts the page
  ssd::WriteBufferConfig cfg;
  cfg.pages = 8;
  ssd::WriteBuffer buffer(&sim, &ftl, cfg, 1);
  sim::Completion put, flush;
  buffer.SubmitWrite(5, 55, put.AsCallback(&sim));
  sim.Run();
  ASSERT_TRUE(put.done() && put.status().ok());  // buffered = accepted
  buffer.Flush(flush.AsCallback(&sim));
  sim.Run();
  ASSERT_TRUE(flush.done());
  EXPECT_TRUE(flush.status().IsDataLoss())
      << "flush must report the dropped page, got: "
      << flush.status().ToString();
  EXPECT_EQ(buffer.counters().Get("drain_retries"), 1u);
  EXPECT_EQ(buffer.counters().Get("drain_drops"), 1u);
  // The error was delivered once; the (now empty) buffer is healthy.
  sim::Completion again;
  buffer.Flush(again.AsCallback(&sim));
  sim.Run();
  ASSERT_TRUE(again.done());
  EXPECT_TRUE(again.status().ok());
}

// --- DFTL: uncorrectable translation page during a CMT miss ----------

TEST(DftlFaultTest, CmtMissFetchFailureIsCountedAndSurvivable) {
  ssd::Config c = FaultConfig();
  c.dftl_cmt_pages = 2;
  sim::Simulator sim;
  flash::FaultInjector injector(c.geometry);
  c.fault_injector = &injector;
  ssd::Controller controller(&sim, c);
  ftl::Dftl dftl(&controller);
  const std::uint32_t per_tp = 512;  // dftl_entries_per_tp default

  auto write = [&](Lba lba, std::uint64_t token) {
    sim::Completion done;
    dftl.Write(lba, token, done.AsCallback(&sim));
    sim.Run();
    ASSERT_TRUE(done.done() && done.status().ok());
  };
  auto read = [&](Lba lba) {
    StatusOr<std::uint64_t> out = Status::Internal("not run");
    dftl.Read(lba, [&](StatusOr<std::uint64_t> r) { out = std::move(r); });
    sim.Run();
    return out;
  };

  // Dirty tp0, then touch two other translation pages so tp0 is
  // evicted (CMT capacity 2) and written back to flash.
  write(0, 100);
  write(per_tp, 200);
  write(2 * per_tp, 300);
  sim.Run();
  auto map_ppa = dftl.base()->Locate(dftl.translation_lba(0));
  ASSERT_TRUE(map_ppa.has_value()) << "tp0 was never written back";
  // The flash copy of tp0 is now unreadable. The re-fetch on the next
  // miss burns the whole retry ladder, fails — and the device keeps
  // serving (the resident directory is authoritative), but the failure
  // must be visible in the counters.
  injector.FailReadAlways(*map_ppa);
  auto r = read(0);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 100u);
  EXPECT_EQ(dftl.counters().Get("map_read_failures"), 1u);
  EXPECT_GE(controller.read_retries(), 1u) << "ladder should have run";
}

// --- Fig2-style torture: scripted faults under a GC-heavy workload ---

TEST(FaultTortureTest, GcChurnWithScriptedFaultsNeverAliasesOrLosesAcks) {
  auto run = [] {
    ssd::Config c = FaultConfig();
    sim::Simulator sim;
    flash::FaultInjector injector(c.geometry);
    c.fault_injector = &injector;
    ssd::Controller controller(&sim, c);
    ftl::PageFtl ftl(&controller);

    auto write = [&](Lba lba, std::uint64_t token) {
      sim::Completion done;
      ftl.Write(lba, token, done.AsCallback(&sim));
      sim.Run();
      return done.status();
    };
    auto read = [&](Lba lba) {
      StatusOr<std::uint64_t> out = Status::Internal("not run");
      ftl.Read(lba, [&](StatusOr<std::uint64_t> r) { out = std::move(r); });
      sim.Run();
      return out;
    };

    Rng rng(101);
    std::map<Lba, std::uint64_t> shadow;
    const Lba kSpace = 96;
    // Phase 1: populate, including three cold LBAs we then kill.
    for (int i = 0; i < 400; ++i) {
      const Lba lba = rng.Next() % kSpace;
      if (write(lba, 10000 + i).ok()) shadow[lba] = 10000 + i;
    }
    const Lba cold[3] = {90, 91, 92};
    for (const Lba lba : cold) {
      if (write(lba, 777000 + lba).ok()) shadow[lba] = 777000 + lba;
      auto ppa = ftl.Locate(lba);
      if (ppa.has_value()) injector.FailReadAlways(*ppa);
    }
    // A couple of scripted erase faults and a stuck LUN, mid-churn.
    injector.FailErase(flash::BlockAddr{0, 0, 0, 3}, 1);
    injector.FailErase(flash::BlockAddr{1, 1, 0, 7}, 1);
    injector.StuckBusy(0, 5 * kMillisecond, 3);
    // Phase 2: hot churn over everything except the cold LBAs — GC must
    // relocate (and fail to relocate) the dead pages.
    for (int i = 0; i < 3000; ++i) {
      const Lba lba = rng.Next() % 88;
      const std::uint64_t token = 20000 + i;
      const Status st = write(lba, token);
      if (st.ok()) {
        shadow[lba] = token;
      } else {
        EXPECT_TRUE(st.IsResourceExhausted()) << st.ToString();
      }
    }
    sim.Run();

    // Verdict: every acked write reads back as itself or as an honest
    // DataLoss — never stale, never another LBA's token.
    std::vector<std::string> verdict;
    std::uint64_t data_losses = 0;
    for (const auto& [lba, token] : shadow) {
      auto r = read(lba);
      if (r.ok()) {
        EXPECT_EQ(*r, token)
            << "lost update or aliased read at lba " << lba;
        verdict.push_back(std::to_string(*r));
      } else {
        EXPECT_TRUE(r.status().IsDataLoss()) << r.status().ToString();
        ++data_losses;
        verdict.push_back("DataLoss");
      }
    }
    // The cold pages' cells are gone; their relocations must have
    // poisoned the mappings rather than resurrecting garbage.
    EXPECT_GE(data_losses, 3u);
    EXPECT_GE(ftl.counters().Get("pages_poisoned"), 3u);
    EXPECT_GE(injector.counters().Get("read_faults_fired"), 3u);
    EXPECT_EQ(injector.counters().Get("busy_penalties"), 3u);
    return std::make_tuple(sim.Now(), verdict,
                           controller.flash()->counters().All(),
                           injector.counters().All());
  };
  const auto first = run();
  const auto second = run();
  EXPECT_EQ(first, second) << "torture run must be deterministic";
}

}  // namespace
}  // namespace postblock
