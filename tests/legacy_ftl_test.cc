// Tests for the pre-page-mapping FTLs: BlockFtl (early SSDs) and
// HybridFtl (BAST-style log blocks) — the devices behind Myth 2's
// "random writes are very costly".

#include <map>
#include <memory>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "ftl/block_ftl.h"
#include "ftl/hybrid_ftl.h"
#include "sim/completion.h"
#include "sim/simulator.h"
#include "ssd/config.h"
#include "ssd/controller.h"

namespace postblock::ftl {
namespace {

ssd::Config SmallConfig(ssd::FtlKind kind) {
  ssd::Config c = ssd::Config::Small();
  c.ftl = kind;
  return c;
}

// Shared fixture driving any Ftl through synchronous helpers.
class LegacyFtlTest : public ::testing::TestWithParam<ssd::FtlKind> {
 protected:
  void SetUp() override { Build(); }

  void Build() {
    ftl_.reset();
    controller_.reset();
    simulator_ = std::make_unique<sim::Simulator>();
    controller_ = std::make_unique<ssd::Controller>(
        simulator_.get(), SmallConfig(GetParam()));
    if (GetParam() == ssd::FtlKind::kBlockMap) {
      ftl_ = std::make_unique<BlockFtl>(controller_.get());
    } else {
      ftl_ = std::make_unique<HybridFtl>(controller_.get());
    }
  }

  Status WriteSync(Lba lba, std::uint64_t token) {
    sim::Completion done;
    ftl_->Write(lba, token, done.AsCallback(simulator_.get()));
    EXPECT_TRUE(sim::WaitFor(simulator_.get(), done))
        << "write stalled, lba=" << lba;
    return done.status();
  }

  StatusOr<std::uint64_t> ReadSync(Lba lba) {
    StatusOr<std::uint64_t> out = Status::Internal("not run");
    bool fired = false;
    ftl_->Read(lba, [&](StatusOr<std::uint64_t> r) {
      out = std::move(r);
      fired = true;
    });
    EXPECT_TRUE(simulator_->RunUntilPredicate([&] { return fired; }));
    return out;
  }

  Status TrimSync(Lba lba) {
    sim::Completion done;
    ftl_->Trim(lba, done.AsCallback(simulator_.get()));
    EXPECT_TRUE(sim::WaitFor(simulator_.get(), done));
    return done.status();
  }

  std::unique_ptr<sim::Simulator> simulator_;
  std::unique_ptr<ssd::Controller> controller_;
  std::unique_ptr<Ftl> ftl_;
};

TEST_P(LegacyFtlTest, WriteReadRoundTrip) {
  ASSERT_TRUE(WriteSync(5, 99).ok());
  EXPECT_EQ(*ReadSync(5), 99u);
}

TEST_P(LegacyFtlTest, OverwriteReturnsNewest) {
  ASSERT_TRUE(WriteSync(5, 1).ok());
  ASSERT_TRUE(WriteSync(5, 2).ok());
  EXPECT_EQ(*ReadSync(5), 2u);
}

TEST_P(LegacyFtlTest, UnwrittenReadsAsZero) {
  EXPECT_EQ(*ReadSync(11), 0u);
}

TEST_P(LegacyFtlTest, TrimmedReadsAsZero) {
  ASSERT_TRUE(WriteSync(7, 3).ok());
  ASSERT_TRUE(TrimSync(7).ok());
  EXPECT_EQ(*ReadSync(7), 0u);
}

TEST_P(LegacyFtlTest, OutOfRangeRejected) {
  const Lba beyond = ftl_->user_pages();
  EXPECT_TRUE(WriteSync(beyond, 1).IsOutOfRange());
  EXPECT_TRUE(ReadSync(beyond).status().IsOutOfRange());
  EXPECT_TRUE(TrimSync(beyond).IsOutOfRange());
}

TEST_P(LegacyFtlTest, SequentialFillAndVerify) {
  // One full logical block region per LUN at least.
  const Lba n = std::min<Lba>(ftl_->user_pages(), 512);
  for (Lba lba = 0; lba < n; ++lba) {
    ASSERT_TRUE(WriteSync(lba, lba + 1).ok()) << lba;
  }
  for (Lba lba = 0; lba < n; ++lba) {
    ASSERT_EQ(*ReadSync(lba), lba + 1) << lba;
  }
}

TEST_P(LegacyFtlTest, RandomOverwriteChurnPreservesData) {
  const Lba n = std::min<Lba>(ftl_->user_pages(), 256);
  std::map<Lba, std::uint64_t> shadow;
  Rng rng(21);
  for (std::uint64_t i = 0; i < 4 * n; ++i) {
    const Lba lba = rng.Uniform(n);
    const std::uint64_t token = i + 1;
    ASSERT_TRUE(WriteSync(lba, token).ok()) << i;
    shadow[lba] = token;
  }
  for (const auto& [lba, token] : shadow) {
    ASSERT_EQ(*ReadSync(lba), token) << "lba=" << lba;
  }
}

TEST_P(LegacyFtlTest, SequentialWritesAreCheap) {
  const Lba n = std::min<Lba>(ftl_->user_pages(), 512);
  for (Lba lba = 0; lba < n; ++lba) {
    ASSERT_TRUE(WriteSync(lba, 1).ok());
  }
  // Sequential fill programs ~1 flash page per host page.
  EXPECT_NEAR(ftl_->WriteAmplification(), 1.0, 0.1);
}

TEST_P(LegacyFtlTest, RandomOverwritesAreExpensive) {
  // The Myth-2 mechanism: scattered overwrites cost far more flash
  // programs than host pages written on block/hybrid mapping. The span
  // must exceed the hybrid FTL's log pool coverage or logs absorb it.
  const Lba n = std::min<Lba>(ftl_->user_pages(), 640);
  for (Lba lba = 0; lba < n; ++lba) {
    ASSERT_TRUE(WriteSync(lba, 1).ok());
  }
  Rng rng(31);
  for (std::uint64_t i = 0; i < n; ++i) {
    ASSERT_TRUE(WriteSync(rng.Uniform(n), i + 2).ok());
  }
  EXPECT_GT(ftl_->WriteAmplification(), 2.0);
}

INSTANTIATE_TEST_SUITE_P(
    Kinds, LegacyFtlTest,
    ::testing::Values(ssd::FtlKind::kBlockMap, ssd::FtlKind::kHybrid),
    [](const ::testing::TestParamInfo<ssd::FtlKind>& info) {
      return info.param == ssd::FtlKind::kBlockMap ? "BlockMap" : "Hybrid";
    });

// --- BlockFtl specifics --------------------------------------------------

class BlockFtlTest : public ::testing::Test {
 protected:
  BlockFtlTest()
      : controller_(&sim_, SmallConfig(ssd::FtlKind::kBlockMap)),
        ftl_(&controller_) {}

  Status WriteSync(Lba lba, std::uint64_t token) {
    sim::Completion done;
    ftl_.Write(lba, token, done.AsCallback(&sim_));
    EXPECT_TRUE(sim::WaitFor(&sim_, done));
    return done.status();
  }

  sim::Simulator sim_;
  ssd::Controller controller_;
  BlockFtl ftl_;
};

TEST_F(BlockFtlTest, InOrderAppendsNeverMerge) {
  for (Lba lba = 0; lba < 16; ++lba) {
    ASSERT_TRUE(WriteSync(lba, 1).ok());
  }
  EXPECT_EQ(ftl_.counters().Get("merges"), 0u);
  EXPECT_EQ(ftl_.counters().Get("direct_writes"), 16u);
}

TEST_F(BlockFtlTest, OverwriteTriggersMergeWithFullBlockCopy) {
  const std::uint32_t ppb =
      controller_.config().geometry.pages_per_block;
  for (Lba lba = 0; lba < ppb; ++lba) {
    ASSERT_TRUE(WriteSync(lba, lba).ok());
  }
  ASSERT_TRUE(WriteSync(0, 999).ok());  // overwrite page 0
  EXPECT_EQ(ftl_.counters().Get("merges"), 1u);
  // All other live pages of the block were copied.
  EXPECT_EQ(ftl_.counters().Get("merge_page_copies"), ppb - 1u);
}

TEST_F(BlockFtlTest, BackwardsWriteAlsoMerges) {
  ASSERT_TRUE(WriteSync(5, 1).ok());  // write point now 6
  ASSERT_TRUE(WriteSync(2, 2).ok());  // backwards: merge
  EXPECT_EQ(ftl_.counters().Get("merges"), 1u);
}

// --- HybridFtl specifics -------------------------------------------------

class HybridFtlTest : public ::testing::Test {
 protected:
  HybridFtlTest()
      : controller_(&sim_, SmallConfig(ssd::FtlKind::kHybrid)),
        ftl_(&controller_) {}

  Status WriteSync(Lba lba, std::uint64_t token) {
    sim::Completion done;
    ftl_.Write(lba, token, done.AsCallback(&sim_));
    EXPECT_TRUE(sim::WaitFor(&sim_, done));
    return done.status();
  }

  sim::Simulator sim_;
  ssd::Controller controller_;
  HybridFtl ftl_;
};

TEST_F(HybridFtlTest, OverwritesAbsorbedByLogBlocks) {
  const std::uint32_t ppb =
      controller_.config().geometry.pages_per_block;
  for (Lba lba = 0; lba < ppb; ++lba) {
    ASSERT_TRUE(WriteSync(lba, lba).ok());
  }
  // A handful of overwrites fit in the log block: no merge yet.
  for (Lba lba = 0; lba < 4; ++lba) {
    ASSERT_TRUE(WriteSync(lba, 100 + lba).ok());
  }
  EXPECT_EQ(ftl_.counters().Get("full_merges"), 0u);
  EXPECT_EQ(ftl_.counters().Get("log_appends"), 4u);
}

TEST_F(HybridFtlTest, SequentialRewriteUsesSwitchMerge) {
  const std::uint32_t ppb =
      controller_.config().geometry.pages_per_block;
  for (Lba lba = 0; lba < ppb; ++lba) {
    ASSERT_TRUE(WriteSync(lba, 1).ok());
  }
  // Rewrite the whole logical block sequentially: the log fills 0..ppb-1
  // in order and becomes the data block for free.
  for (Lba lba = 0; lba < ppb; ++lba) {
    ASSERT_TRUE(WriteSync(lba, 2).ok());
  }
  // Another pass forces the pending merge of the filled log.
  ASSERT_TRUE(WriteSync(0, 3).ok());
  EXPECT_GT(ftl_.counters().Get("switch_merges"), 0u);
  EXPECT_EQ(ftl_.counters().Get("full_merges"), 0u);
}

TEST_F(HybridFtlTest, ScatteredOverwritesForceFullMerges) {
  // Touch more vblocks per LUN than the log pool holds (pool = 4).
  const std::uint32_t ppb =
      controller_.config().geometry.pages_per_block;
  const Lba n = std::min<Lba>(ftl_.user_pages(), 40 * ppb);
  for (Lba lba = 0; lba < n; ++lba) {
    ASSERT_TRUE(WriteSync(lba, 1).ok());
  }
  // Overwrite page 0 of every logical block: thrashes the log pool.
  for (int round = 0; round < 4; ++round) {
    for (Lba vb = 0; vb < n / ppb; ++vb) {
      ASSERT_TRUE(WriteSync(vb * ppb, round).ok());
    }
  }
  EXPECT_GT(ftl_.counters().Get("log_evictions"), 0u);
  EXPECT_GT(ftl_.counters().Get("full_merges"), 0u);
}

}  // namespace
}  // namespace postblock::ftl
