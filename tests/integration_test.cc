// Whole-stack integration tests: workloads driven through the block
// layer into the simulated SSD, plus white-box invariant audits of the
// flash accounting after heavy churn.

#include <map>
#include <memory>

#include <gtest/gtest.h>

#include "blocklayer/block_layer.h"
#include "blocklayer/direct_driver.h"
#include "common/rng.h"
#include "ftl/page_ftl.h"
#include "sim/simulator.h"
#include "ssd/device.h"
#include "workload/patterns.h"

namespace postblock {
namespace {

// --- Full path: pattern -> block layer -> SSD -> flash ----------------------

class StackTest : public ::testing::TestWithParam<ssd::FtlKind> {};

TEST_P(StackTest, ClosedLoopThroughBlockLayerCompletesAndVerifies) {
  sim::Simulator sim;
  ssd::Config cfg = ssd::Config::Small();
  cfg.ftl = GetParam();
  cfg.write_buffer.pages = 32;
  ssd::Device device(&sim, cfg);
  blocklayer::BlockLayerConfig bl_cfg;
  blocklayer::BlockLayer layer(&sim, &device, bl_cfg);

  const std::uint64_t span = device.num_blocks() / 2;
  workload::SequentialPattern fill(0, span, /*is_write=*/true);
  const auto w = workload::RunClosedLoop(&sim, &layer, &fill, span, 8);
  EXPECT_EQ(w.errors, 0u);
  EXPECT_EQ(w.ops, span);

  workload::RandomPattern reads(0, span, false, 1, 9);
  const auto r = workload::RunClosedLoop(&sim, &layer, &reads, 2000, 8);
  EXPECT_EQ(r.errors, 0u);
  EXPECT_GT(r.Iops(), 0.0);
  // The block layer adds CPU work on top of the device path.
  EXPECT_GT(layer.CpuUtilization(), 0.0);
  EXPECT_EQ(layer.counters().Get("submitted"),
            layer.counters().Get("completed"));
}

INSTANTIATE_TEST_SUITE_P(
    AllFtls, StackTest,
    ::testing::Values(ssd::FtlKind::kPageMap, ssd::FtlKind::kBlockMap,
                      ssd::FtlKind::kHybrid, ssd::FtlKind::kDftl),
    [](const ::testing::TestParamInfo<ssd::FtlKind>& info) {
      switch (info.param) {
        case ssd::FtlKind::kPageMap:
          return "PageMap";
        case ssd::FtlKind::kBlockMap:
          return "BlockMap";
        case ssd::FtlKind::kHybrid:
          return "Hybrid";
        default:
          return "Dftl";
      }
    });

// --- White-box accounting invariants after churn ----------------------------

class InvariantTest : public ::testing::Test {
 protected:
  InvariantTest() {
    cfg_ = ssd::Config::Small();
    controller_ = std::make_unique<ssd::Controller>(&sim_, cfg_);
    ftl_ = std::make_unique<ftl::PageFtl>(controller_.get());
  }

  void Churn(std::uint64_t ops, std::uint64_t seed) {
    Rng rng(seed);
    const Lba n = ftl_->user_pages();
    for (std::uint64_t i = 0; i < ops; ++i) {
      bool fired = false;
      if (rng.Bernoulli(0.1)) {
        ftl_->Trim(rng.Uniform(n), [&](Status) { fired = true; });
      } else {
        ftl_->Write(rng.Uniform(n), i + 1, [&](Status st) {
          ASSERT_TRUE(st.ok());
          fired = true;
        });
      }
      ASSERT_TRUE(sim_.RunUntilPredicate([&] { return fired; }));
    }
    sim_.Run();  // drain background GC
  }

  sim::Simulator sim_;
  ssd::Config cfg_;
  std::unique_ptr<ssd::Controller> controller_;
  std::unique_ptr<ftl::PageFtl> ftl_;
};

TEST_F(InvariantTest, ValidPageAccountingMatchesMapping) {
  Churn(3000, 11);
  // Every valid flash page must be the current target of exactly one
  // mapping (no atomic groups in this run => no marker pages).
  const auto& g = cfg_.geometry;
  std::uint64_t valid_pages = 0;
  for (std::uint64_t b = 0; b < g.total_blocks(); ++b) {
    const auto addr = flash::BlockAddr::FromFlat(g, b);
    const auto& info = controller_->flash()->GetBlockInfo(addr);
    EXPECT_LE(info.valid_pages, info.write_point);
    EXPECT_LE(info.write_point, g.pages_per_block);
    valid_pages += info.valid_pages;
  }
  std::uint64_t mapped = 0;
  for (Lba lba = 0; lba < ftl_->user_pages(); ++lba) {
    if (ftl_->Locate(lba).has_value()) ++mapped;
  }
  EXPECT_EQ(valid_pages, mapped);
}

TEST_F(InvariantTest, MappingsPointAtMatchingOob) {
  Churn(2000, 13);
  for (Lba lba = 0; lba < ftl_->user_pages(); ++lba) {
    const auto ppa = ftl_->Locate(lba);
    if (!ppa.has_value()) continue;
    ASSERT_EQ(controller_->flash()->GetPageState(*ppa),
              flash::PageState::kValid)
        << lba;
    auto peek = controller_->flash()->Peek(*ppa);
    ASSERT_TRUE(peek.ok());
    EXPECT_EQ(peek->lba, lba);
  }
}

TEST_F(InvariantTest, FreeBlockCountsStayWithinGeometry) {
  Churn(3000, 17);
  const auto& g = cfg_.geometry;
  std::size_t total_free = 0;
  for (std::uint32_t l = 0; l < g.luns(); ++l) {
    total_free += ftl_->FreeBlocks(l);
    EXPECT_LE(ftl_->FreeBlocks(l), g.blocks_per_lun());
  }
  EXPECT_LE(total_free, g.total_blocks());
  // GC must keep at least the reserve available per LUN at quiescence.
  for (std::uint32_t l = 0; l < g.luns(); ++l) {
    EXPECT_GE(ftl_->FreeBlocks(l), cfg_.gc.reserve_blocks) << "lun " << l;
  }
}

TEST_F(InvariantTest, WriteAmplificationAtLeastOne) {
  Churn(2000, 19);
  EXPECT_GE(ftl_->WriteAmplification(), 1.0);
}

TEST_F(InvariantTest, GcReadsEqualPageMoves) {
  Churn(4000, 23);
  EXPECT_EQ(ftl_->counters().Get("gc_reads"),
            ftl_->counters().Get("gc_page_moves"));
}

// --- Direct driver end-to-end ------------------------------------------------

TEST(DirectPathTest, SameDataThroughBothPaths) {
  sim::Simulator sim;
  ssd::Device device(&sim, ssd::Config::Small());
  blocklayer::DirectDriver direct(&sim, &device);
  blocklayer::BlockLayerConfig cfg;
  blocklayer::BlockLayer layer(&sim, &device, cfg);

  // Write via the block layer, read via the direct driver.
  blocklayer::IoRequest w;
  w.op = blocklayer::IoOp::kWrite;
  w.lba = 10;
  w.nblocks = 2;
  w.tokens = {5, 6};
  bool wrote = false;
  w.on_complete = [&](const blocklayer::IoResult& r) {
    ASSERT_TRUE(r.status.ok());
    wrote = true;
  };
  layer.Submit(std::move(w));
  ASSERT_TRUE(sim.RunUntilPredicate([&] { return wrote; }));

  blocklayer::IoRequest r;
  r.op = blocklayer::IoOp::kRead;
  r.lba = 10;
  r.nblocks = 2;
  bool read = false;
  r.on_complete = [&](const blocklayer::IoResult& res) {
    ASSERT_TRUE(res.status.ok());
    EXPECT_EQ(res.tokens, (std::vector<std::uint64_t>{5, 6}));
    read = true;
  };
  direct.Submit(std::move(r));
  ASSERT_TRUE(sim.RunUntilPredicate([&] { return read; }));
}

}  // namespace
}  // namespace postblock
