// Multi-tenant virtual block devices: pass-through neutrality, bounds
// and quota enforcement (typed statuses), thin-read zero-fill, tenant
// lifecycle under live traffic (destroy/disconnect/reconnect with
// drain and cancel), destroy-then-recreate with no stale data, DRR QoS
// sharing, 256-tenant run-twice determinism, per-tenant trace tracks
// through the Chrome exporter round trip, and multi-tenant attribution
// on the sharded parallel engine.
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include <unistd.h>

#include "blocklayer/simple_device.h"
#include "metrics/metrics.h"
#include "sim/simulator.h"
#include "ssd/sharded_backend.h"
#include "trace/chrome_trace.h"
#include "trace/tracer.h"
#include "vbd/backend.h"
#include "vbd/frontend.h"
#include "vbd/vbd.h"
#include "workload/multi_tenant.h"
#include "workload/patterns.h"

namespace postblock::vbd {
namespace {

using blocklayer::IoOp;
using blocklayer::IoRequest;
using blocklayer::IoResult;
using blocklayer::SimpleBlockDevice;
using blocklayer::SimpleDeviceConfig;

SimpleDeviceConfig SmallDevice(std::uint64_t blocks = 4096) {
  SimpleDeviceConfig c;
  c.num_blocks = blocks;
  c.read_ns = 10 * kMicrosecond;
  c.write_ns = 20 * kMicrosecond;
  c.units = 8;
  return c;
}

TenantConfig TC(std::uint64_t capacity, std::uint64_t quota = 0,
                std::uint32_t weight = 1, std::string name = "") {
  TenantConfig c;
  c.name = std::move(name);
  c.capacity_blocks = capacity;
  c.quota_blocks = quota;
  c.qos_weight = weight;
  return c;
}

/// One (completion time, io id) pair per IO, in completion order.
using Schedule = std::vector<std::pair<SimTime, std::uint64_t>>;

/// Sequential write pass over [0, blocks) then `reads` random-ish reads,
/// closed loop at `depth`, against an arbitrary BlockDevice. Returns
/// the exact completion schedule.
Schedule RunSchedule(sim::Simulator* sim, blocklayer::BlockDevice* dev,
                     std::uint64_t blocks, std::uint64_t reads,
                     std::uint32_t depth) {
  Schedule sched;
  const std::uint64_t ops = blocks + reads;
  std::uint64_t issued = 0;
  std::uint64_t completed = 0;
  std::function<void()> issue = [&] {
    while (issued < ops && issued - completed < depth) {
      IoRequest r;
      const std::uint64_t id = issued++;
      if (id < blocks) {
        r.op = IoOp::kWrite;
        r.lba = id;
        r.tokens = {id * 1000003ull + 1};
      } else {
        r.op = IoOp::kRead;
        r.lba = (id * 37) % blocks;
      }
      r.nblocks = 1;
      r.on_complete = [&, id](const IoResult& res) {
        EXPECT_TRUE(res.status.ok()) << res.status;
        ++completed;
        sched.emplace_back(sim->Now(), id);
        issue();
      };
      dev->Submit(std::move(r));
    }
  };
  issue();
  sim->Run();
  EXPECT_EQ(completed, ops);
  return sched;
}

/// Submits one op synchronously and runs the sim until it completes.
IoResult RunOne(sim::Simulator* sim, blocklayer::BlockDevice* dev, IoOp op,
                Lba lba, std::uint32_t nblocks,
                std::vector<std::uint64_t> tokens = {}) {
  IoResult out;
  bool done = false;
  IoRequest r;
  r.op = op;
  r.lba = lba;
  r.nblocks = nblocks;
  r.tokens = std::move(tokens);
  r.on_complete = [&](const IoResult& res) {
    out.status = res.status;
    out.tokens = res.tokens;
    done = true;
  };
  dev->Submit(std::move(r));
  sim->RunUntilPredicate([&] { return done; });
  EXPECT_TRUE(done);
  return out;
}

// --- Neutrality -------------------------------------------------------

TEST(VbdNeutrality, PassThroughTenantScheduleIsByteIdentical) {
  const std::uint64_t kBlocks = 1024;
  Schedule raw;
  {
    sim::Simulator sim;
    SimpleBlockDevice dev(&sim, SmallDevice(kBlocks));
    raw = RunSchedule(&sim, &dev, kBlocks, 2000, 8);
  }
  Schedule tenant;
  {
    sim::Simulator sim;
    SimpleBlockDevice dev(&sim, SmallDevice(kBlocks));
    Backend backend(&sim, &dev, BackendConfig{});
    auto fe = backend.CreateTenant(
        TC(kBlocks, 0, 1, "whole"));
    ASSERT_TRUE(fe.ok()) << fe.status();
    EXPECT_EQ(backend.extent_base(fe.value()->id()), 0u);
    tenant = RunSchedule(&sim, fe.value(), kBlocks, 2000, 8);
  }
  ASSERT_EQ(raw.size(), tenant.size());
  EXPECT_EQ(raw, tenant);
}

// --- Bounds, quota, thin reads ---------------------------------------

TEST(VbdIsolation, OutOfNamespaceLbaRejectedTyped) {
  sim::Simulator sim;
  SimpleBlockDevice dev(&sim, SmallDevice());
  Backend backend(&sim, &dev, BackendConfig{});
  auto a = backend.CreateTenant(TC(100));
  auto b = backend.CreateTenant(TC(100));
  ASSERT_TRUE(a.ok() && b.ok());
  // Tenant B occupies [100, 200) on the lower device; tenant A may
  // never reach it.
  EXPECT_EQ(backend.extent_base(b.value()->id()), 100u);
  const std::uint64_t before = dev.counters().Get("requests");

  EXPECT_EQ(RunOne(&sim, a.value(), IoOp::kRead, 100, 1).status.code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(RunOne(&sim, a.value(), IoOp::kWrite, 99, 2, {1, 2})
                .status.code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(RunOne(&sim, a.value(), IoOp::kRead, ~0ull, 1).status.code(),
            StatusCode::kOutOfRange);
  // Rejections never touched the lower device, but did advance time
  // (the configured rejection latency) and were counted.
  EXPECT_EQ(dev.counters().Get("requests"), before);
  EXPECT_EQ(a.value()->stats().rejected_bounds, 3u);
  EXPECT_EQ(a.value()->stats().errors, 0u);
}

TEST(VbdQuota, ExhaustionIsTypedAndTrimRefunds) {
  sim::Simulator sim;
  SimpleBlockDevice dev(&sim, SmallDevice());
  Backend backend(&sim, &dev, BackendConfig{});
  auto fe_or = backend.CreateTenant(
      TC(100, 10));
  ASSERT_TRUE(fe_or.ok());
  Frontend* fe = fe_or.value();

  for (Lba l = 0; l < 10; ++l) {
    EXPECT_TRUE(
        RunOne(&sim, fe, IoOp::kWrite, l, 1, {l + 1}).status.ok());
  }
  EXPECT_EQ(fe->quota_used(), 10u);
  // An 11th distinct LBA is a typed failure, not UB.
  EXPECT_EQ(RunOne(&sim, fe, IoOp::kWrite, 50, 1, {51}).status.code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(fe->stats().rejected_quota, 1u);
  // Overwriting an already-charged LBA still fits.
  EXPECT_TRUE(RunOne(&sim, fe, IoOp::kWrite, 3, 1, {333}).status.ok());
  EXPECT_EQ(fe->quota_used(), 10u);
  // A multi-block write that would only partially fit is rejected as a
  // whole — no partial allocation.
  EXPECT_EQ(
      RunOne(&sim, fe, IoOp::kWrite, 9, 2, {91, 92}).status.code(),
      StatusCode::kResourceExhausted);
  EXPECT_EQ(fe->quota_used(), 10u);
  // Trim refunds budget; the freed block can be re-provisioned.
  EXPECT_TRUE(RunOne(&sim, fe, IoOp::kTrim, 0, 2).status.ok());
  EXPECT_EQ(fe->quota_used(), 8u);
  EXPECT_TRUE(RunOne(&sim, fe, IoOp::kWrite, 50, 1, {51}).status.ok());
  EXPECT_EQ(fe->quota_used(), 9u);
}

TEST(VbdThin, UnwrittenReadsZeroFilledNeverTouchMedia) {
  sim::Simulator sim;
  SimpleBlockDevice dev(&sim, SmallDevice());
  Backend backend(&sim, &dev, BackendConfig{});
  auto fe_or = backend.CreateTenant(TC(128));
  ASSERT_TRUE(fe_or.ok());
  Frontend* fe = fe_or.value();

  // Fully-unwritten read: served from the allocation map at the thin
  // latency, no lower-device request.
  const std::uint64_t before = dev.counters().Get("requests");
  const SimTime t0 = sim.Now();
  IoResult r = RunOne(&sim, fe, IoOp::kRead, 10, 4);
  EXPECT_TRUE(r.status.ok());
  ASSERT_EQ(r.tokens.size(), 4u);
  for (std::uint64_t tok : r.tokens) EXPECT_EQ(tok, 0u);
  EXPECT_EQ(dev.counters().Get("requests"), before);
  EXPECT_EQ(sim.Now() - t0, backend.config().thin_read_latency_ns);
  EXPECT_EQ(fe->stats().thin_reads, 1u);

  // Partially-written read: forwarded, unwritten blocks zero-filled.
  EXPECT_TRUE(RunOne(&sim, fe, IoOp::kWrite, 11, 1, {777}).status.ok());
  r = RunOne(&sim, fe, IoOp::kRead, 10, 3);
  EXPECT_TRUE(r.status.ok());
  ASSERT_EQ(r.tokens.size(), 3u);
  EXPECT_EQ(r.tokens[0], 0u);
  EXPECT_EQ(r.tokens[1], 777u);
  EXPECT_EQ(r.tokens[2], 0u);
  EXPECT_EQ(fe->stats().zero_filled_blocks, 4u + 2u);
}

// --- Lifecycle --------------------------------------------------------

TEST(VbdLifecycle, DestroyUnderInflightIoDrainsAndCancels) {
  sim::Simulator sim;
  SimpleBlockDevice dev(&sim, SmallDevice());
  BackendConfig cfg;
  cfg.shared_depth = 2;  // QoS gate on: extra submissions park
  Backend backend(&sim, &dev, cfg);
  auto fe_or = backend.CreateTenant(TC(256));
  ASSERT_TRUE(fe_or.ok());
  Frontend* fe = fe_or.value();

  std::uint64_t ok = 0, cancelled = 0;
  for (Lba l = 0; l < 6; ++l) {
    IoRequest r;
    r.op = IoOp::kWrite;
    r.lba = l;
    r.nblocks = 1;
    r.tokens = {l + 1};
    r.on_complete = [&](const IoResult& res) {
      if (res.status.ok()) {
        ++ok;
      } else {
        EXPECT_EQ(res.status.code(), StatusCode::kUnavailable);
        ++cancelled;
      }
    };
    fe->Submit(std::move(r));
  }
  EXPECT_EQ(backend.tenant_inflight(fe->id()), 2u);
  EXPECT_EQ(backend.tenant_pending(fe->id()), 4u);

  bool destroyed = false;
  ASSERT_TRUE(backend
                  .DestroyTenant(fe->id(),
                                 [&](const IoResult& res) {
                                   EXPECT_TRUE(res.status.ok());
                                   // Every in-flight IO retired first.
                                   EXPECT_EQ(ok, 2u);
                                   destroyed = true;
                                 })
                  .ok());
  // Queued IO was cancelled synchronously with a typed status.
  EXPECT_EQ(cancelled, 4u);
  EXPECT_EQ(fe->state(), TenantState::kDraining);
  // Destroying a draining tenant is a typed precondition failure.
  EXPECT_TRUE(backend.DestroyTenant(fe->id()).IsFailedPrecondition());

  sim.Run();
  EXPECT_TRUE(destroyed);
  EXPECT_EQ(ok, 2u);
  EXPECT_EQ(fe->state(), TenantState::kDestroyed);
  EXPECT_EQ(backend.num_tenants(), 0u);
  EXPECT_EQ(backend.stale_completions(), 0u);
  EXPECT_EQ(backend.io_states_allocated(), backend.io_states_free());

  // The stale handle keeps its frozen record and rejects new IO.
  EXPECT_EQ(fe->stats().completed, 2u);
  EXPECT_EQ(fe->stats().cancelled, 4u);
  EXPECT_EQ(RunOne(&sim, fe, IoOp::kRead, 0, 1).status.code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(fe->stats().rejected_state, 1u);
}

TEST(VbdLifecycle, DestroyRecreateReusesNamespaceNoStaleData) {
  for (const bool trim_on_destroy : {true, false}) {
    sim::Simulator sim;
    SimpleBlockDevice dev(&sim, SmallDevice());
    BackendConfig cfg;
    cfg.trim_on_destroy = trim_on_destroy;
    Backend backend(&sim, &dev, cfg);

    auto a_or = backend.CreateTenant(TC(64));
    ASSERT_TRUE(a_or.ok());
    Frontend* a = a_or.value();
    const std::uint64_t base_a = backend.extent_base(a->id());
    for (Lba l = 0; l < 64; ++l) {
      ASSERT_TRUE(
          RunOne(&sim, a, IoOp::kWrite, l, 1, {l + 100}).status.ok());
    }
    ASSERT_TRUE(backend.DestroyTenant(a->id()).ok());
    sim.Run();
    ASSERT_EQ(a->state(), TenantState::kDestroyed);

    // The recreated tenant reuses the same extent and slot...
    auto b_or = backend.CreateTenant(TC(64));
    ASSERT_TRUE(b_or.ok());
    Frontend* b = b_or.value();
    EXPECT_EQ(b->id(), a->id());
    EXPECT_EQ(backend.extent_base(b->id()), base_a);
    EXPECT_NE(b->epoch(), a->epoch());

    // ...but none of its predecessor's data is visible, trimmed or not.
    for (Lba l = 0; l < 64; l += 7) {
      IoResult r = RunOne(&sim, b, IoOp::kRead, l, 1);
      ASSERT_TRUE(r.status.ok());
      ASSERT_EQ(r.tokens.size(), 1u);
      EXPECT_EQ(r.tokens[0], 0u) << "stale data at lba " << l
                                 << " trim=" << trim_on_destroy;
    }
    // With trim enabled the media itself was wiped, too.
    if (trim_on_destroy) {
      EXPECT_GT(dev.counters().Get("blocks_trimmed"), 0u);
    }
    // Writes land fresh; a partial read mixes new data with zeros.
    ASSERT_TRUE(RunOne(&sim, b, IoOp::kWrite, 1, 1, {42}).status.ok());
    IoResult r = RunOne(&sim, b, IoOp::kRead, 0, 3);
    ASSERT_TRUE(r.status.ok());
    EXPECT_EQ(r.tokens[0], 0u);
    EXPECT_EQ(r.tokens[1], 42u);
    EXPECT_EQ(r.tokens[2], 0u);
  }
}

TEST(VbdLifecycle, DisconnectRetainsDataReconnectResumes) {
  sim::Simulator sim;
  SimpleBlockDevice dev(&sim, SmallDevice());
  Backend backend(&sim, &dev, BackendConfig{});
  auto fe_or = backend.CreateTenant(TC(64));
  ASSERT_TRUE(fe_or.ok());
  Frontend* fe = fe_or.value();
  ASSERT_TRUE(RunOne(&sim, fe, IoOp::kWrite, 5, 1, {55}).status.ok());

  bool drained = false;
  ASSERT_TRUE(
      backend.Disconnect(fe->id(), [&](const IoResult&) { drained = true; })
          .ok());
  sim.Run();
  EXPECT_TRUE(drained);
  EXPECT_EQ(fe->state(), TenantState::kDisconnected);
  EXPECT_EQ(backend.num_tenants(), 1u);

  // Disconnected tenants reject IO but keep their namespace and data.
  EXPECT_EQ(RunOne(&sim, fe, IoOp::kRead, 5, 1).status.code(),
            StatusCode::kUnavailable);
  ASSERT_TRUE(backend.Connect(fe->id()).ok());
  EXPECT_EQ(fe->state(), TenantState::kConnected);
  IoResult r = RunOne(&sim, fe, IoOp::kRead, 5, 1);
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(r.tokens[0], 55u);
  EXPECT_EQ(fe->quota_used(), 1u);
}

// --- QoS --------------------------------------------------------------

TEST(VbdQos, DrrSharesDeviceSlotsByWeight) {
  sim::Simulator sim;
  SimpleBlockDevice dev(&sim, SmallDevice());
  BackendConfig cfg;
  cfg.shared_depth = 4;
  Backend backend(&sim, &dev, cfg);
  auto heavy_or = backend.CreateTenant(
      TC(512, 0, 3));
  auto light_or = backend.CreateTenant(
      TC(512, 0, 1));
  ASSERT_TRUE(heavy_or.ok() && light_or.ok());

  // Writes: reads of a never-written namespace are thin-served locally
  // and would bypass the shared-depth gate altogether.
  workload::RandomPattern heavy_pat(0, 512, /*is_write=*/true, 1, 21);
  workload::RandomPattern light_pat(0, 512, /*is_write=*/true, 1, 22);
  std::vector<workload::TenantLoad> loads(2);
  loads[0] = {heavy_or.value(), &heavy_pat, /*ops=*/600,
              /*queue_depth=*/16, 0};
  loads[1] = {light_or.value(), &light_pat, /*ops=*/0,
              /*queue_depth=*/16, 0};
  workload::MixResult mix = workload::RunMultiTenantMix(&sim, loads);

  // While both stayed backlogged, DRR hands out 3 slots to the heavy
  // tenant per 1 to the light one.
  const double ratio =
      static_cast<double>(mix.tenants[0].completed) /
      static_cast<double>(mix.tenants[1].completed);
  EXPECT_GT(ratio, 2.5) << "heavy=" << mix.tenants[0].completed
                        << " light=" << mix.tenants[1].completed;
  EXPECT_LT(ratio, 3.6);
}

// --- Scale + determinism ---------------------------------------------

/// Creates `n` tenants, runs a mixed read/write load over all of them
/// concurrently, destroys every tenant, and digests the full run.
std::uint64_t RunManyTenantsOnce(std::uint32_t n) {
  sim::Simulator sim;
  SimpleBlockDevice dev(&sim, SmallDevice(/*blocks=*/n * 64));
  BackendConfig cfg;
  cfg.shared_depth = 64;
  Backend backend(&sim, &dev, cfg);

  std::vector<Frontend*> fes;
  std::vector<std::unique_ptr<workload::Pattern>> patterns;
  std::vector<workload::TenantLoad> loads;
  for (std::uint32_t t = 0; t < n; ++t) {
    auto fe = backend.CreateTenant(TC(64, 0, 1 + t % 4));
    EXPECT_TRUE(fe.ok());
    fes.push_back(fe.value());
    patterns.push_back(std::make_unique<workload::RandomPattern>(
        0, 64, /*is_write=*/t % 2 == 0, 1, /*seed=*/1000 + t));
    loads.push_back({fe.value(), patterns.back().get(), /*ops=*/20,
                     /*queue_depth=*/2, /*think_ns=*/0});
  }
  workload::MixResult mix = workload::RunMultiTenantMix(&sim, loads);
  std::uint64_t digest = mix.digest;

  std::uint32_t destroyed = 0;
  for (Frontend* fe : fes) {
    EXPECT_TRUE(backend
                    .DestroyTenant(fe->id(),
                                   [&](const IoResult&) { ++destroyed; })
                    .ok());
  }
  sim.Run();
  EXPECT_EQ(destroyed, n);
  EXPECT_EQ(backend.num_tenants(), 0u);
  EXPECT_EQ(backend.stale_completions(), 0u);
  EXPECT_EQ(backend.io_states_allocated(), backend.io_states_free());

  // Fold the teardown into the digest: destroy completion time plus
  // every tenant's frozen stats.
  digest ^= sim.Now() * 0x9e3779b97f4a7c15ull;
  for (const Frontend* fe : fes) {
    digest = digest * 1099511628211ull ^ fe->stats().completed;
    digest = digest * 1099511628211ull ^ fe->stats().blocks_written;
  }
  return digest;
}

TEST(VbdScale, Tenants256CreateRunDestroyRunTwiceIdentical) {
  const std::uint64_t first = RunManyTenantsOnce(256);
  const std::uint64_t second = RunManyTenantsOnce(256);
  EXPECT_EQ(first, second);
}

// --- Per-tenant observability ----------------------------------------

TEST(VbdObservability, PerTenantMetricsRegisteredAndRecorded) {
  sim::Simulator sim;
  SimpleBlockDevice dev(&sim, SmallDevice());
  metrics::MetricRegistry registry;
  BackendConfig cfg;
  cfg.metrics = &registry;
  Backend backend(&sim, &dev, cfg);
  TenantConfig tc = TC(64, 0, 1, "db");
  tc.register_metrics = true;
  auto fe_or = backend.CreateTenant(tc);
  ASSERT_TRUE(fe_or.ok());
  ASSERT_TRUE(registry.Has("vbd.db.read_lat_ns"));
  ASSERT_TRUE(registry.Has("vbd.db.write_lat_ns"));
  ASSERT_TRUE(registry.Has("vbd.submitted"));

  ASSERT_TRUE(
      RunOne(&sim, fe_or.value(), IoOp::kWrite, 0, 1, {1}).status.ok());
  ASSERT_TRUE(RunOne(&sim, fe_or.value(), IoOp::kRead, 0, 1).status.ok());
  EXPECT_EQ(registry.CounterByName("vbd.submitted"), 2u);
  EXPECT_EQ(registry.CounterByName("vbd.completed"), 2u);
  // Both latency windows saw exactly one sample.
  bool found_read = false;
  for (metrics::Id id = 0; id < registry.num_histograms(); ++id) {
    if (registry.hist_name(id) == "vbd.db.read_lat_ns") {
      EXPECT_EQ(registry.hist_total(id), 1u);
      found_read = true;
    }
  }
  EXPECT_TRUE(found_read);
}

TEST(VbdObservability, TenantTraceTracksRoundTripThroughExporter) {
  sim::Simulator sim;
  SimpleBlockDevice dev(&sim, SmallDevice());
  trace::Tracer tracer(1 << 12);
  tracer.set_enabled(true);
  BackendConfig cfg;
  cfg.tracer = &tracer;
  Backend backend(&sim, &dev, cfg);
  auto a = backend.CreateTenant(TC(64, 0, 1, "alice"));
  auto b = backend.CreateTenant(TC(64, 0, 1, "bob"));
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_TRUE(RunOne(&sim, a.value(), IoOp::kWrite, 0, 1, {1}).status.ok());
  ASSERT_TRUE(RunOne(&sim, b.value(), IoOp::kWrite, 0, 1, {2}).status.ok());
  ASSERT_TRUE(RunOne(&sim, a.value(), IoOp::kRead, 0, 1).status.ok());

  // Write through the file exporter (per-PID artifact: ctest -j safe)
  // and re-parse its own output.
  const std::string path = ::testing::TempDir() + "/vbd_test." +
                           std::to_string(::getpid()) + ".trace.json";
  ASSERT_TRUE(trace::WriteChromeTrace(tracer, path).ok());
  std::string json = trace::ToChromeJson(tracer);
  std::vector<trace::ParsedEvent> events;
  ASSERT_TRUE(trace::ParseChromeTrace(json, &events));

  // Each tenant is its own Perfetto process group, named tenant-<slot>,
  // with the tenant's name as the thread label.
  bool alice_process = false, bob_process = false, alice_thread = false;
  std::uint64_t alice_spans = 0, bob_spans = 0;
  const std::uint64_t pid_a = trace::kPidTenantBase + a.value()->id();
  const std::uint64_t pid_b = trace::kPidTenantBase + b.value()->id();
  for (const trace::ParsedEvent& e : events) {
    if (e.ph == 'M' && e.name == "process_name") {
      if (e.pid == pid_a && e.meta_name == "tenant-0") alice_process = true;
      if (e.pid == pid_b && e.meta_name == "tenant-1") bob_process = true;
    }
    if (e.ph == 'M' && e.name == "thread_name" && e.pid == pid_a &&
        e.meta_name == "alice") {
      alice_thread = true;
    }
    if (e.ph == 'X' && e.name == "io") {
      if (e.pid == pid_a) ++alice_spans;
      if (e.pid == pid_b) ++bob_spans;
    }
  }
  EXPECT_TRUE(alice_process);
  EXPECT_TRUE(bob_process);
  EXPECT_TRUE(alice_thread);
  EXPECT_EQ(alice_spans, 2u);
  EXPECT_EQ(bob_spans, 1u);
}

// --- Multi-tenant attribution on the sharded parallel engine ----------

TEST(VbdSharded, MultiTenantAttributionDeterministicAcrossWorkers) {
  ssd::Config device = ssd::Config::Small();
  device.seed = 77;
  auto run = [&](std::uint32_t workers) {
    ssd::ShardedRunConfig rc;
    rc.workers = workers;
    rc.ios_per_channel = 600;
    rc.queue_depth_per_channel = 8;
    rc.tenant_weights = {3, 1, 1};
    ssd::ShardedFlashSim sharded(device, rc);
    sharded.Run();
    // Attribution partitions the completions exactly.
    std::uint64_t sum = 0;
    for (std::size_t t = 0; t < rc.tenant_weights.size(); ++t) {
      sum += sharded.tenant_completed(t);
    }
    EXPECT_EQ(sum, sharded.ios_completed());
    // The weight-3 tenant got (close to) 3x the weight-1 tenants.
    EXPECT_GT(sharded.tenant_completed(0),
              2 * sharded.tenant_completed(1));
    return sharded.CombinedFingerprint();
  };
  const std::uint64_t sequential = run(0);
  const std::uint64_t parallel = run(2);
  const std::uint64_t parallel_again = run(2);
  EXPECT_EQ(sequential, parallel);
  EXPECT_EQ(parallel, parallel_again);
}

}  // namespace
}  // namespace postblock::vbd
