// Multi-queue host path: determinism, tag backpressure, QoS
// starvation-freedom, completion-mode equivalence, merge-window and
// cross-stream scheduling.
#include <cstdint>
#include <functional>
#include <map>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "blocklayer/block_layer.h"
#include "blocklayer/io_scheduler.h"
#include "blocklayer/simple_device.h"
#include "sim/simulator.h"
#include "ssd/device.h"

namespace postblock::blocklayer {
namespace {

SimpleDeviceConfig FastDevice() {
  SimpleDeviceConfig c;
  c.num_blocks = 4096;
  c.read_ns = 10 * kMicrosecond;
  c.write_ns = 20 * kMicrosecond;
  c.units = 8;
  return c;
}

/// One (completion time, io id) pair per IO, in completion order — the
/// schedule fingerprint two runs must reproduce bit-for-bit.
using Schedule = std::vector<std::pair<SimTime, std::uint64_t>>;

/// Closed-loop driver: `ops` single-block reads over a deterministic
/// LBA/stream sequence at fixed depth. Everything (device, layer, sim)
/// is constructed fresh per call, so two calls with the same config
/// must produce identical schedules.
Schedule RunSchedule(const BlockLayerConfig& cfg, std::uint32_t depth,
                     std::uint64_t ops) {
  sim::Simulator sim;
  SimpleBlockDevice dev(&sim, FastDevice());
  BlockLayer layer(&sim, &dev, cfg);
  Schedule sched;
  std::uint64_t issued = 0;
  std::uint64_t completed = 0;
  std::function<void()> issue = [&] {
    while (issued < ops && issued - completed < depth) {
      IoRequest r;
      r.op = IoOp::kRead;
      r.lba = (issued * 37) % 4096;
      r.nblocks = 1;
      r.stream = static_cast<std::uint8_t>(issued % 3);
      const std::uint64_t id = issued++;
      r.on_complete = [&, id](const IoResult& res) {
        EXPECT_TRUE(res.status.ok());
        ++completed;
        sched.emplace_back(sim.Now(), id);
        issue();
      };
      layer.Submit(std::move(r));
    }
  };
  issue();
  sim.Run();
  EXPECT_EQ(completed, ops);
  EXPECT_EQ(layer.io_states_allocated(), layer.io_states_free());
  return sched;
}

BlockLayerConfig AllFeaturesOn() {
  BlockLayerConfig cfg;
  cfg.nr_queues = 4;
  cfg.queue_depth = 8;
  cfg.tags_per_queue = 8;
  cfg.stream_queues = true;
  cfg.doorbell_batch = 4;
  cfg.doorbell_ns = 300;
  cfg.coalesce_depth = 4;
  cfg.coalesce_ns = 2000;
  cfg.shared_depth = 16;
  cfg.qos_weights = {4, 2, 1, 1};
  cfg.merge_window = 4;
  return cfg;
}

// --- Determinism ----------------------------------------------------------

TEST(MqDeterminismTest, SameConfigSameSeedSameSchedule) {
  const BlockLayerConfig cfg = AllFeaturesOn();
  const Schedule a = RunSchedule(cfg, 16, 500);
  const Schedule b = RunSchedule(cfg, 16, 500);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a, b);  // identical completion times AND order
}

TEST(MqDeterminismTest, NeutralKnobsMatchDefaultSchedule) {
  // A config that spells out every mq knob at its neutral value must be
  // schedule-identical to the default config — the knobs only act when
  // turned. This is the in-repo proxy for "1-queue byte-identical to
  // the pre-mq block layer" (the cross-commit diff runs in CI).
  BlockLayerConfig def;
  BlockLayerConfig neutral;
  neutral.tags_per_queue = 0;
  neutral.stream_queues = false;
  neutral.doorbell_batch = 1;
  neutral.doorbell_ns = 0;
  neutral.coalesce_depth = 1;
  neutral.coalesce_ns = 0;
  neutral.shared_depth = 0;
  neutral.merge_window = 1;
  neutral.cross_stream_merge = false;
  EXPECT_EQ(RunSchedule(def, 16, 400), RunSchedule(neutral, 16, 400));
}

TEST(MqDeterminismTest, FourQueueDefaultsMatchAcrossRuns) {
  BlockLayerConfig cfg;
  cfg.nr_queues = 4;
  EXPECT_EQ(RunSchedule(cfg, 16, 400), RunSchedule(cfg, 16, 400));
}

// --- Tag allocator backpressure ------------------------------------------

TEST(MqTagTest, ExhaustionParksAndResumesWithoutLoss) {
  sim::Simulator sim;
  SimpleBlockDevice dev(&sim, FastDevice());
  BlockLayerConfig cfg;
  cfg.tags_per_queue = 2;
  BlockLayer layer(&sim, &dev, cfg);
  int done = 0;
  for (int i = 0; i < 8; ++i) {
    IoRequest r;
    r.op = IoOp::kRead;
    r.lba = static_cast<Lba>(i);
    r.nblocks = 1;
    r.on_complete = [&](const IoResult& res) {
      EXPECT_TRUE(res.status.ok());
      ++done;
    };
    layer.Submit(std::move(r));
  }
  // Only 2 tags: 6 of the 8 submissions parked.
  EXPECT_EQ(layer.counters().Get("tag_waits"), 6u);
  EXPECT_EQ(layer.tag_waiters(0), 6u);
  EXPECT_TRUE(layer.tags(0).exhausted());
  sim.Run();
  // Every parked request was resumed and completed; state bounded by
  // the tag capacity, nothing leaked.
  EXPECT_EQ(done, 8);
  EXPECT_EQ(layer.counters().Get("tag_resumes"), 6u);
  EXPECT_EQ(layer.io_states_allocated(), 2u);
  EXPECT_EQ(layer.io_states_free(), 2u);
  EXPECT_EQ(layer.tag_waiters(0), 0u);
}

TEST(MqTagTest, PowerCycleDropsWaitersAndReclaimsTags) {
  sim::Simulator sim;
  SimpleBlockDevice dev(&sim, FastDevice());
  BlockLayerConfig cfg = AllFeaturesOn();
  cfg.tags_per_queue = 2;
  BlockLayer layer(&sim, &dev, cfg);
  int done = 0;
  for (int i = 0; i < 24; ++i) {
    IoRequest r;
    r.op = IoOp::kRead;
    r.lba = static_cast<Lba>(i);
    r.nblocks = 1;
    r.stream = static_cast<std::uint8_t>(i % 3);
    r.on_complete = [&](const IoResult&) { ++done; };
    layer.Submit(std::move(r));
  }
  sim.RunUntil(15 * kMicrosecond);  // mid-flight
  layer.PowerCycle();
  sim.Run();
  // Dropped requests never complete; all tagged state is reclaimed once
  // the stale completions drain.
  EXPECT_EQ(layer.io_states_allocated(), layer.io_states_free());
  for (std::uint32_t q = 0; q < cfg.nr_queues; ++q) {
    EXPECT_EQ(layer.tag_waiters(q), 0u) << "queue " << q;
  }
  // The layer still works after the reset.
  bool ok = false;
  IoRequest r;
  r.op = IoOp::kRead;
  r.lba = 1;
  r.nblocks = 1;
  r.on_complete = [&](const IoResult& res) { ok = res.status.ok(); };
  layer.Submit(std::move(r));
  sim.Run();
  EXPECT_TRUE(ok);
  EXPECT_EQ(layer.io_states_allocated(), layer.io_states_free());
}

// --- QoS / DRR ------------------------------------------------------------

TEST(MqQosTest, WeightedSharedDepthStarvesNoQueue) {
  sim::Simulator sim;
  SimpleBlockDevice dev(&sim, FastDevice());
  BlockLayerConfig cfg;
  cfg.nr_queues = 2;
  cfg.stream_queues = true;
  cfg.shared_depth = 2;
  cfg.qos_weights = {8, 1};  // q0 heavily favored
  BlockLayer layer(&sim, &dev, cfg);
  int heavy_done = 0;
  int light_done = 0;
  SimTime last_light_completion = 0;
  for (int i = 0; i < 80; ++i) {
    IoRequest r;
    r.op = IoOp::kRead;
    r.lba = static_cast<Lba>(2 * i);  // strided: no back-merges
    r.nblocks = 1;
    r.stream = 2;  // 2 % 2 == queue 0
    r.on_complete = [&](const IoResult&) { ++heavy_done; };
    layer.Submit(std::move(r));
  }
  for (int i = 0; i < 5; ++i) {
    IoRequest r;
    r.op = IoOp::kRead;
    r.lba = static_cast<Lba>(1000 + 2 * i);
    r.nblocks = 1;
    r.stream = 1;  // 1 % 2 == queue 1
    r.on_complete = [&](const IoResult&) {
      ++light_done;
      last_light_completion = sim.Now();
    };
    layer.Submit(std::move(r));
  }
  sim.Run();
  EXPECT_EQ(heavy_done, 80);
  EXPECT_EQ(light_done, 5);  // weight 1, but never starved
  EXPECT_GT(layer.counters().Get("drr_rounds"), 0u);
  // The light queue drains alongside the heavy one, not after it: its
  // last IO completes well before the end of the run (DRR gives it one
  // slot per round, so it cannot be pushed to the tail).
  EXPECT_LT(last_light_completion, sim.Now());
}

TEST(MqQosTest, StreamPinningRoutesToOwnQueue) {
  sim::Simulator sim;
  SimpleBlockDevice dev(&sim, FastDevice());
  BlockLayerConfig cfg;
  cfg.nr_queues = 4;
  cfg.stream_queues = true;
  BlockLayer layer(&sim, &dev, cfg);
  for (int i = 0; i < 12; ++i) {
    IoRequest r;
    r.op = IoOp::kRead;
    r.lba = static_cast<Lba>(i);
    r.nblocks = 1;
    r.stream = 1;  // all pinned to queue 1
    r.on_complete = [](const IoResult&) {};
    layer.Submit(std::move(r));
  }
  sim.Run();
  EXPECT_EQ(layer.counters().Get("stream_pins"), 12u);
  EXPECT_EQ(layer.scheduler(1).counters().Get("enqueued"), 12u);
  EXPECT_EQ(layer.scheduler(0).counters().Get("enqueued"), 0u);
  EXPECT_EQ(layer.scheduler(2).counters().Get("enqueued"), 0u);
  EXPECT_EQ(layer.scheduler(3).counters().Get("enqueued"), 0u);
}

// --- Completion modes -----------------------------------------------------

/// Runs write-then-read-back over `cfg` and returns id -> token.
std::map<std::uint64_t, std::uint64_t> RunReadBack(
    const BlockLayerConfig& cfg) {
  sim::Simulator sim;
  SimpleBlockDevice dev(&sim, FastDevice());
  BlockLayer layer(&sim, &dev, cfg);
  for (std::uint64_t i = 0; i < 64; ++i) {
    IoRequest w;
    w.op = IoOp::kWrite;
    w.lba = i;
    w.nblocks = 1;
    w.tokens = {1000 + i};
    w.on_complete = [](const IoResult&) {};
    layer.Submit(std::move(w));
  }
  sim.Run();
  std::map<std::uint64_t, std::uint64_t> out;
  for (std::uint64_t i = 0; i < 64; ++i) {
    IoRequest r;
    r.op = IoOp::kRead;
    r.lba = i;
    r.nblocks = 1;
    r.on_complete = [&out, i](const IoResult& res) {
      ASSERT_TRUE(res.status.ok());
      ASSERT_EQ(res.tokens.size(), 1u);
      out[i] = res.tokens[0];
    };
    layer.Submit(std::move(r));
  }
  sim.Run();
  return out;
}

TEST(MqCompletionTest, PollingCoalescedAndInterruptAgreeOnResults) {
  BlockLayerConfig interrupt_cfg;  // per-IO interrupts (default)

  BlockLayerConfig coalesced_cfg;
  coalesced_cfg.coalesce_depth = 8;
  coalesced_cfg.coalesce_ns = 5 * kMicrosecond;

  BlockLayerConfig polled_cfg;
  polled_cfg.interrupt_completion = false;
  polled_cfg.coalesce_depth = 8;  // poll reaps the CQ ring in batches
  polled_cfg.coalesce_ns = 2 * kMicrosecond;

  const auto a = RunReadBack(interrupt_cfg);
  const auto b = RunReadBack(coalesced_cfg);
  const auto c = RunReadBack(polled_cfg);
  ASSERT_EQ(a.size(), 64u);
  EXPECT_EQ(a, b);  // same data, regardless of completion plumbing
  EXPECT_EQ(a, c);
}

TEST(MqCompletionTest, CoalescingReducesCompletionCharges) {
  sim::Simulator sim;
  SimpleDeviceConfig dc = FastDevice();
  dc.units = 16;
  SimpleBlockDevice dev(&sim, dc);
  BlockLayerConfig cfg;
  cfg.coalesce_depth = 8;
  cfg.coalesce_ns = 20 * kMicrosecond;
  BlockLayer layer(&sim, &dev, cfg);
  int done = 0;
  for (int i = 0; i < 64; ++i) {
    IoRequest r;
    r.op = IoOp::kRead;
    r.lba = static_cast<Lba>(i);
    r.nblocks = 1;
    r.on_complete = [&](const IoResult&) { ++done; };
    layer.Submit(std::move(r));
  }
  sim.Run();
  EXPECT_EQ(done, 64);
  const std::uint64_t posts = layer.counters().Get("cq_posts");
  const std::uint64_t flushes = layer.counters().Get("cq_flushes");
  EXPECT_EQ(posts, 64u);
  EXPECT_GT(flushes, 0u);
  EXPECT_LT(flushes, posts);  // strictly fewer interrupts than IOs
}

// --- Doorbell batching ----------------------------------------------------

TEST(MqDoorbellTest, BatchedDispatchAmortizesDeviceAdmission) {
  sim::Simulator sim;
  ssd::Config dc = ssd::Config::Small();
  ssd::Device dev(&sim, dc);
  BlockLayerConfig cfg;
  cfg.doorbell_batch = 8;
  cfg.doorbell_ns = 150;
  // A binding depth plus completion coalescing: slots free in bursts
  // when the CQ ring drains, so the refill fills whole doorbell
  // batches instead of trickling one command per ring.
  cfg.queue_depth = 8;
  cfg.coalesce_depth = 8;
  cfg.coalesce_ns = 20 * kMicrosecond;
  BlockLayer layer(&sim, &dev, cfg);
  int done = 0;
  for (int i = 0; i < 64; ++i) {
    IoRequest r;
    r.op = IoOp::kRead;
    r.lba = static_cast<Lba>(2 * i);  // strided: no back-merges
    r.nblocks = 1;
    r.on_complete = [&](const IoResult& res) {
      EXPECT_TRUE(res.status.ok());
      ++done;
    };
    layer.Submit(std::move(r));
  }
  sim.Run();
  EXPECT_EQ(done, 64);
  // Every dispatch went through a doorbell ring; rings < commands means
  // admission overhead was actually shared.
  EXPECT_EQ(layer.counters().Get("doorbell_cmds"), 64u);
  EXPECT_GT(layer.counters().Get("doorbells"), 0u);
  EXPECT_LT(layer.counters().Get("doorbells"), 64u);
  EXPECT_EQ(dev.counters().Get("doorbell_cmds"), 64u);
  EXPECT_EQ(dev.counters().Get("doorbell_rings"),
            layer.counters().Get("doorbells"));
  // Completion routing: the device attributed every completion to the
  // single software queue.
  EXPECT_EQ(dev.cq_posts(0), 64u);
}

// --- Scheduler merge window / streams -------------------------------------

TEST(MqMergeTest, InterleavedStreamsDoNotFalselyMerge) {
  // Regression: two streams interleaving contiguous LBAs used to merge
  // into one IO at the queue tail. Same-stream contiguity still merges.
  IoScheduler s(IoSchedulerConfig{SchedulerKind::kMerge});
  IoRequest a;
  a.op = IoOp::kWrite;
  a.lba = 10;
  a.nblocks = 1;
  a.tokens = {1};
  a.stream = 1;
  IoRequest b;
  b.op = IoOp::kWrite;
  b.lba = 11;  // contiguous with a, but a different stream
  b.nblocks = 1;
  b.tokens = {2};
  b.stream = 2;
  s.Enqueue(std::move(a));
  s.Enqueue(std::move(b));
  EXPECT_EQ(s.depth(), 2u);
  EXPECT_EQ(s.counters().Get("back_merges"), 0u);
  EXPECT_EQ(s.counters().Get("merge_stream_rejects"), 1u);
}

TEST(MqMergeTest, CrossStreamMergeIsOptIn) {
  IoSchedulerConfig cfg;
  cfg.kind = SchedulerKind::kMerge;
  cfg.cross_stream_merge = true;
  IoScheduler s(cfg);
  IoRequest a;
  a.op = IoOp::kWrite;
  a.lba = 10;
  a.nblocks = 1;
  a.tokens = {1};
  a.stream = 1;
  IoRequest b;
  b.op = IoOp::kWrite;
  b.lba = 11;
  b.nblocks = 1;
  b.tokens = {2};
  b.stream = 2;
  s.Enqueue(std::move(a));
  s.Enqueue(std::move(b));
  EXPECT_EQ(s.depth(), 1u);
  EXPECT_EQ(s.counters().Get("back_merges"), 1u);
}

TEST(MqMergeTest, WiderWindowMergesPastInterleavedTraffic) {
  // A(s1, lba10) then B(s2, lba50) then C(s1, lba11): with the classic
  // tail-only window C cannot reach A; window 2 finds it.
  auto make = [](Lba lba, std::uint8_t stream) {
    IoRequest r;
    r.op = IoOp::kWrite;
    r.lba = lba;
    r.nblocks = 1;
    r.tokens = {lba};
    r.stream = stream;
    return r;
  };
  IoSchedulerConfig tail_only;
  tail_only.kind = SchedulerKind::kMerge;
  tail_only.merge_window = 1;
  IoScheduler narrow(tail_only);
  narrow.Enqueue(make(10, 1));
  narrow.Enqueue(make(50, 2));
  narrow.Enqueue(make(11, 1));
  EXPECT_EQ(narrow.depth(), 3u);
  EXPECT_EQ(narrow.counters().Get("back_merges"), 0u);

  IoSchedulerConfig windowed = tail_only;
  windowed.merge_window = 2;
  IoScheduler wide(windowed);
  wide.Enqueue(make(10, 1));
  wide.Enqueue(make(50, 2));
  wide.Enqueue(make(11, 1));
  EXPECT_EQ(wide.depth(), 2u);
  EXPECT_EQ(wide.counters().Get("back_merges"), 1u);
}

}  // namespace
}  // namespace postblock::blocklayer
