// Buffer pool, WAL codec, B+-tree and heap file tests.

#include <map>
#include <memory>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "db/btree.h"
#include "db/buffer_pool.h"
#include "db/heap_file.h"
#include "db/page_image.h"
#include "db/wal.h"
#include "sim/simulator.h"
#include "ssd/device.h"

namespace postblock::db {
namespace {

ssd::Config DbSsdConfig() {
  ssd::Config c = ssd::Config::Small();
  c.geometry.blocks_per_plane = 64;  // a bit more room for DB pages
  return c;
}

class DbFixture : public ::testing::Test {
 protected:
  DbFixture()
      : device_(&sim_, DbSsdConfig()),
        pool_(&sim_, &device_, &images_, /*frames=*/128) {}

  template <typename Pred>
  void RunUntil(Pred pred) {
    ASSERT_TRUE(sim_.RunUntilPredicate(pred)) << "simulation stalled";
  }

  sim::Simulator sim_;
  ssd::Device device_;
  PageImageStore images_;
  BufferPool pool_;
};

// --- PageImageStore ---------------------------------------------------------

TEST(PageImageStoreTest, RegisterFetchRoundTrip) {
  PageImageStore store;
  std::vector<std::uint8_t> bytes(kPageBytes, 7);
  const std::uint64_t token = store.Register(bytes);
  EXPECT_NE(token, 0u);
  ASSERT_NE(store.Fetch(token), nullptr);
  EXPECT_EQ(*store.Fetch(token), bytes);
  EXPECT_EQ(store.Fetch(0), nullptr);
  EXPECT_EQ(store.Fetch(999999), nullptr);
}

TEST(PageImageStoreTest, OldVersionsRemainFetchable) {
  PageImageStore store;
  const auto t1 = store.Register(std::vector<std::uint8_t>(8, 1));
  const auto t2 = store.Register(std::vector<std::uint8_t>(8, 2));
  EXPECT_EQ((*store.Fetch(t1))[0], 1);
  EXPECT_EQ((*store.Fetch(t2))[0], 2);
}

// --- BufferPool ---------------------------------------------------------------

TEST_F(DbFixture, PinMissLoadsZeroPage) {
  Frame* got = nullptr;
  pool_.Pin(5, [&](StatusOr<Frame*> f) {
    ASSERT_TRUE(f.ok());
    got = *f;
  });
  RunUntil([&] { return got != nullptr; });
  EXPECT_EQ(got->bytes.size(), kPageBytes);
  EXPECT_EQ(got->bytes[0], 0);
  EXPECT_EQ(got->pins, 1);
  pool_.Unpin(5, false);
}

TEST_F(DbFixture, DirtyPageSurvivesFlushAndReload) {
  Frame* frame = nullptr;
  pool_.Pin(5, [&](StatusOr<Frame*> f) { frame = *f; });
  RunUntil([&] { return frame != nullptr; });
  frame->bytes[100] = 42;
  pool_.Unpin(5, true);
  bool flushed = false;
  pool_.FlushAll([&](Status st) {
    ASSERT_TRUE(st.ok());
    flushed = true;
  });
  RunUntil([&] { return flushed; });
  pool_.InvalidateClean();
  EXPECT_EQ(pool_.resident(), 0u);
  Frame* again = nullptr;
  pool_.Pin(5, [&](StatusOr<Frame*> f) { again = *f; });
  RunUntil([&] { return again != nullptr; });
  EXPECT_EQ(again->bytes[100], 42);
  pool_.Unpin(5, false);
}

TEST_F(DbFixture, SecondPinIsAHit) {
  bool done = false;
  pool_.Pin(9, [&](StatusOr<Frame*>) { done = true; });
  RunUntil([&] { return done; });
  pool_.Unpin(9, false);
  bool hit = false;
  pool_.Pin(9, [&](StatusOr<Frame*>) { hit = true; });
  EXPECT_TRUE(hit);  // synchronous hit
  pool_.Unpin(9, false);
  EXPECT_EQ(pool_.counters().Get("hits"), 1u);
  EXPECT_EQ(pool_.counters().Get("misses"), 1u);
}

TEST_F(DbFixture, ConcurrentMissesCoalesce) {
  int done = 0;
  for (int i = 0; i < 3; ++i) {
    pool_.Pin(7, [&](StatusOr<Frame*> f) {
      ASSERT_TRUE(f.ok());
      ++done;
    });
  }
  RunUntil([&] { return done == 3; });
  EXPECT_EQ(pool_.counters().Get("misses"), 1u);
  for (int i = 0; i < 3; ++i) pool_.Unpin(7, false);
}

TEST(BufferPoolEvictionTest, NoStealRefusesToEvictDirty) {
  sim::Simulator sim;
  ssd::Device device(&sim, DbSsdConfig());
  PageImageStore images;
  BufferPool pool(&sim, &device, &images, /*frames=*/2,
                  /*allow_steal=*/false);
  // Fill both frames with dirty pages.
  for (PageId id = 1; id <= 2; ++id) {
    bool done = false;
    pool.Pin(id, [&](StatusOr<Frame*> f) {
      ASSERT_TRUE(f.ok());
      done = true;
    });
    ASSERT_TRUE(sim.RunUntilPredicate([&] { return done; }));
    pool.Unpin(id, /*dirty=*/true);
  }
  Status seen;
  bool fired = false;
  pool.Pin(3, [&](StatusOr<Frame*> f) {
    seen = f.status();
    fired = true;
  });
  ASSERT_TRUE(sim.RunUntilPredicate([&] { return fired; }));
  EXPECT_TRUE(seen.IsResourceExhausted());
}

TEST(BufferPoolEvictionTest, StealModeWritesBackAndEvicts) {
  sim::Simulator sim;
  ssd::Device device(&sim, DbSsdConfig());
  PageImageStore images;
  BufferPool pool(&sim, &device, &images, /*frames=*/2,
                  /*allow_steal=*/true);
  for (PageId id = 1; id <= 2; ++id) {
    bool done = false;
    pool.Pin(id, [&](StatusOr<Frame*> f) {
      (*f)->bytes[0] = static_cast<std::uint8_t>(id);
      done = true;
    });
    ASSERT_TRUE(sim.RunUntilPredicate([&] { return done; }));
    pool.Unpin(id, /*dirty=*/true);
  }
  Frame* third = nullptr;
  pool.Pin(3, [&](StatusOr<Frame*> f) {
    ASSERT_TRUE(f.ok());
    third = *f;
  });
  ASSERT_TRUE(sim.RunUntilPredicate([&] { return third != nullptr; }));
  EXPECT_GE(pool.counters().Get("steals"), 1u);
  pool.Unpin(3, false);
  // The stolen page reads back with its content.
  sim.Run();  // let the steal write-back land
  Frame* one = nullptr;
  pool.Pin(1, [&](StatusOr<Frame*> f) { one = *f; });
  ASSERT_TRUE(sim.RunUntilPredicate([&] { return one != nullptr; }));
  EXPECT_EQ(one->bytes[0], 1);
  pool.Unpin(1, false);
}

// --- WAL codec -----------------------------------------------------------------

TEST(WalCodecTest, EncodeDecodeRoundTrip) {
  WalBatch batch;
  batch.txn_id = 42;
  batch.ops = {{WalOp::Kind::kPut, 1, 100},
               {WalOp::Kind::kDelete, 2, 0},
               {WalOp::Kind::kPut, 3, 300}};
  WalBatch decoded;
  ASSERT_TRUE(DecodeBatch(EncodeBatch(batch), &decoded));
  EXPECT_EQ(decoded.txn_id, 42u);
  ASSERT_EQ(decoded.ops.size(), 3u);
  EXPECT_EQ(decoded.ops[0].kind, WalOp::Kind::kPut);
  EXPECT_EQ(decoded.ops[0].key, 1u);
  EXPECT_EQ(decoded.ops[0].value, 100u);
  EXPECT_EQ(decoded.ops[1].kind, WalOp::Kind::kDelete);
}

TEST(WalCodecTest, RejectsGarbage) {
  WalBatch out;
  EXPECT_FALSE(DecodeBatch({1, 2, 3}, &out));
  EXPECT_FALSE(DecodeBatch(std::vector<std::uint8_t>(64, 0), &out));
}

// --- BTree -----------------------------------------------------------------------

class BTreeTest : public DbFixture {
 protected:
  BTreeTest() : tree_(&sim_, &pool_, [this]() { return next_page_++; }) {
    bool created = false;
    tree_.Create([&](Status st) {
      ASSERT_TRUE(st.ok());
      created = true;
    });
    EXPECT_TRUE(sim_.RunUntilPredicate([&] { return created; }));
  }

  Status Put(std::uint64_t k, std::uint64_t v) {
    Status out = Status::Internal("pending");
    bool fired = false;
    tree_.Put(k, v, [&](Status st) {
      out = st;
      fired = true;
    });
    EXPECT_TRUE(sim_.RunUntilPredicate([&] { return fired; }));
    return out;
  }

  StatusOr<std::uint64_t> Get(std::uint64_t k) {
    StatusOr<std::uint64_t> out = Status::Internal("pending");
    bool fired = false;
    tree_.Get(k, [&](StatusOr<std::uint64_t> r) {
      out = std::move(r);
      fired = true;
    });
    EXPECT_TRUE(sim_.RunUntilPredicate([&] { return fired; }));
    return out;
  }

  Status Del(std::uint64_t k) {
    Status out = Status::Internal("pending");
    bool fired = false;
    tree_.Delete(k, [&](Status st) {
      out = st;
      fired = true;
    });
    EXPECT_TRUE(sim_.RunUntilPredicate([&] { return fired; }));
    return out;
  }

  PageId next_page_ = 1;
  BTree tree_;
};

TEST_F(BTreeTest, PutGetSingle) {
  ASSERT_TRUE(Put(5, 50).ok());
  EXPECT_EQ(*Get(5), 50u);
}

TEST_F(BTreeTest, MissingKeyIsNotFound) {
  EXPECT_TRUE(Get(12345).status().IsNotFound());
}

TEST_F(BTreeTest, OverwriteReplaces) {
  ASSERT_TRUE(Put(5, 50).ok());
  ASSERT_TRUE(Put(5, 51).ok());
  EXPECT_EQ(*Get(5), 51u);
}

TEST_F(BTreeTest, DeleteRemoves) {
  ASSERT_TRUE(Put(5, 50).ok());
  ASSERT_TRUE(Del(5).ok());
  EXPECT_TRUE(Get(5).status().IsNotFound());
  // Deleting a missing key is fine.
  ASSERT_TRUE(Del(5).ok());
}

TEST_F(BTreeTest, ManyKeysForceSplits) {
  const std::uint64_t n = BTree::kLeafCapacity * 5;
  for (std::uint64_t k = 0; k < n; ++k) {
    ASSERT_TRUE(Put(k * 3, k).ok()) << k;
  }
  EXPECT_GT(tree_.counters().Get("node_splits") +
                tree_.counters().Get("root_splits"),
            0u);
  for (std::uint64_t k = 0; k < n; ++k) {
    ASSERT_EQ(*Get(k * 3), k) << k;
  }
  EXPECT_TRUE(Get(1).status().IsNotFound());
}

TEST_F(BTreeTest, RandomOrderInsertAndVerify) {
  Rng rng(5);
  std::map<std::uint64_t, std::uint64_t> shadow;
  for (int i = 0; i < 3000; ++i) {
    const std::uint64_t k = rng.Uniform(10000);
    shadow[k] = i;
    ASSERT_TRUE(Put(k, i).ok());
  }
  for (const auto& [k, v] : shadow) {
    ASSERT_EQ(*Get(k), v) << k;
  }
}

TEST_F(BTreeTest, MixedInsertDeleteProperty) {
  Rng rng(9);
  std::map<std::uint64_t, std::uint64_t> shadow;
  for (int i = 0; i < 4000; ++i) {
    const std::uint64_t k = rng.Uniform(2000);
    if (rng.Bernoulli(0.3)) {
      ASSERT_TRUE(Del(k).ok());
      shadow.erase(k);
    } else {
      ASSERT_TRUE(Put(k, i).ok());
      shadow[k] = i;
    }
  }
  for (std::uint64_t k = 0; k < 2000; ++k) {
    auto r = Get(k);
    auto it = shadow.find(k);
    if (it == shadow.end()) {
      ASSERT_TRUE(r.status().IsNotFound()) << k;
    } else {
      ASSERT_EQ(*r, it->second) << k;
    }
  }
}

TEST_F(BTreeTest, ScanReturnsSortedRange) {
  for (std::uint64_t k = 0; k < 500; ++k) {
    ASSERT_TRUE(Put(k * 2, k).ok());
  }
  std::vector<std::pair<std::uint64_t, std::uint64_t>> rows;
  bool fired = false;
  tree_.Scan(100, 200, [&](auto r) {
    ASSERT_TRUE(r.ok());
    rows = std::move(*r);
    fired = true;
  });
  ASSERT_TRUE(sim_.RunUntilPredicate([&] { return fired; }));
  ASSERT_EQ(rows.size(), 51u);  // keys 100,102,...,200
  EXPECT_EQ(rows.front().first, 100u);
  EXPECT_EQ(rows.back().first, 200u);
  for (std::size_t i = 1; i < rows.size(); ++i) {
    EXPECT_LT(rows[i - 1].first, rows[i].first);
  }
}

TEST_F(BTreeTest, ScanAcrossLeafBoundaries) {
  const std::uint64_t n = BTree::kLeafCapacity * 3;
  for (std::uint64_t k = 0; k < n; ++k) {
    ASSERT_TRUE(Put(k, k + 1).ok());
  }
  std::vector<std::pair<std::uint64_t, std::uint64_t>> rows;
  bool fired = false;
  tree_.Scan(0, ~0ull, [&](auto r) {
    rows = std::move(*r);
    fired = true;
  });
  ASSERT_TRUE(sim_.RunUntilPredicate([&] { return fired; }));
  ASSERT_EQ(rows.size(), n);
  for (std::uint64_t k = 0; k < n; ++k) {
    EXPECT_EQ(rows[k].first, k);
    EXPECT_EQ(rows[k].second, k + 1);
  }
}

TEST_F(BTreeTest, EmptyScan) {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> rows{{1, 1}};
  bool fired = false;
  tree_.Scan(10, 20, [&](auto r) {
    rows = std::move(*r);
    fired = true;
  });
  ASSERT_TRUE(sim_.RunUntilPredicate([&] { return fired; }));
  EXPECT_TRUE(rows.empty());
}

// --- HeapFile ---------------------------------------------------------------------

class HeapFileTest : public DbFixture {
 protected:
  HeapFileTest() : heap_(&sim_, &pool_, [this]() { return next_page_++; }) {
    bool created = false;
    heap_.Create([&](Status st) {
      ASSERT_TRUE(st.ok());
      created = true;
    });
    EXPECT_TRUE(sim_.RunUntilPredicate([&] { return created; }));
  }

  Rid Append(std::uint64_t a, std::uint64_t b) {
    Rid rid;
    bool fired = false;
    heap_.Append(a, b, [&](StatusOr<Rid> r) {
      ASSERT_TRUE(r.ok());
      rid = *r;
      fired = true;
    });
    EXPECT_TRUE(sim_.RunUntilPredicate([&] { return fired; }));
    return rid;
  }

  PageId next_page_ = 1;
  HeapFile heap_;
};

TEST_F(HeapFileTest, AppendGetRoundTrip) {
  const Rid rid = Append(7, 70);
  bool fired = false;
  heap_.Get(rid, [&](StatusOr<std::pair<std::uint64_t, std::uint64_t>> r) {
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->first, 7u);
    EXPECT_EQ(r->second, 70u);
    fired = true;
  });
  ASSERT_TRUE(sim_.RunUntilPredicate([&] { return fired; }));
}

TEST_F(HeapFileTest, BadRidIsNotFound) {
  Append(1, 2);
  bool fired = false;
  heap_.Get(Rid{heap_.first_page(), 99},
            [&](StatusOr<std::pair<std::uint64_t, std::uint64_t>> r) {
              EXPECT_TRUE(r.status().IsNotFound());
              fired = true;
            });
  ASSERT_TRUE(sim_.RunUntilPredicate([&] { return fired; }));
}

TEST_F(HeapFileTest, AppendsChainPages) {
  const std::uint32_t n = HeapFile::kRecordsPerPage * 3 + 5;
  for (std::uint32_t i = 0; i < n; ++i) {
    Append(i, i * 10);
  }
  EXPECT_EQ(heap_.counters().Get("page_chains"), 3u);
  // Scan sees them all, in order.
  std::vector<std::uint64_t> keys;
  bool fired = false;
  std::uint64_t total = 0;
  heap_.Scan(
      [&](Rid, std::uint64_t a, std::uint64_t) { keys.push_back(a); },
      [&](StatusOr<std::uint64_t> count) {
        ASSERT_TRUE(count.ok());
        total = *count;
        fired = true;
      });
  ASSERT_TRUE(sim_.RunUntilPredicate([&] { return fired; }));
  ASSERT_EQ(total, n);
  for (std::uint32_t i = 0; i < n; ++i) EXPECT_EQ(keys[i], i);
}

}  // namespace
}  // namespace postblock::db
