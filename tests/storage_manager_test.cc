// End-to-end StorageManager tests: both wirings, commits, checkpoints,
// crash recovery, and the vision-vs-classic commit-latency contrast.

#include <map>
#include <memory>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "db/storage_manager.h"
#include "sim/simulator.h"
#include "ssd/device.h"

namespace postblock::db {
namespace {

ssd::Config DbSsd() {
  ssd::Config c = ssd::Config::Small();
  c.geometry.blocks_per_plane = 64;
  return c;
}

class StorageManagerTest : public ::testing::TestWithParam<Wiring> {
 protected:
  void SetUp() override {
    sim_ = std::make_unique<sim::Simulator>();
    device_ = std::make_unique<ssd::Device>(sim_.get(), DbSsd());
    StorageConfig cfg;
    cfg.wiring = GetParam();
    cfg.buffer_frames = 256;
    manager_ =
        std::make_unique<StorageManager>(sim_.get(), device_.get(), cfg);
    Status st = Sync([&](StorageManager::StatusCb cb) {
      manager_->Bootstrap(std::move(cb));
    });
    ASSERT_TRUE(st.ok()) << st;
  }

  template <typename F>
  Status Sync(F&& f) {
    Status out = Status::Internal("pending");
    bool fired = false;
    f([&](Status st) {
      out = std::move(st);
      fired = true;
    });
    EXPECT_TRUE(sim_->RunUntilPredicate([&] { return fired; }))
        << "operation stalled";
    return out;
  }

  Status Put(std::uint64_t k, std::uint64_t v) {
    return Sync([&](StorageManager::StatusCb cb) {
      manager_->Put(k, v, std::move(cb));
    });
  }

  Status Del(std::uint64_t k) {
    return Sync([&](StorageManager::StatusCb cb) {
      manager_->Delete(k, std::move(cb));
    });
  }

  StatusOr<std::uint64_t> Get(std::uint64_t k) {
    StatusOr<std::uint64_t> out = Status::Internal("pending");
    bool fired = false;
    manager_->Get(k, [&](StatusOr<std::uint64_t> r) {
      out = std::move(r);
      fired = true;
    });
    EXPECT_TRUE(sim_->RunUntilPredicate([&] { return fired; }));
    return out;
  }

  Status Checkpoint() {
    return Sync([&](StorageManager::StatusCb cb) {
      manager_->Checkpoint(std::move(cb));
    });
  }

  Status CrashAndRecover() {
    PB_RETURN_IF_ERROR(manager_->SimulateCrash());
    return Sync([&](StorageManager::StatusCb cb) {
      manager_->Recover(std::move(cb));
    });
  }

  std::unique_ptr<sim::Simulator> sim_;
  std::unique_ptr<ssd::Device> device_;
  std::unique_ptr<StorageManager> manager_;
};

TEST_P(StorageManagerTest, PutGetDelete) {
  ASSERT_TRUE(Put(1, 10).ok());
  ASSERT_TRUE(Put(2, 20).ok());
  EXPECT_EQ(*Get(1), 10u);
  EXPECT_EQ(*Get(2), 20u);
  ASSERT_TRUE(Del(1).ok());
  EXPECT_TRUE(Get(1).status().IsNotFound());
}

TEST_P(StorageManagerTest, BatchCommitAppliesAllOps) {
  Status st = Sync([&](StorageManager::StatusCb cb) {
    manager_->CommitBatch({{WalOp::Kind::kPut, 1, 11},
                           {WalOp::Kind::kPut, 2, 22},
                           {WalOp::Kind::kDelete, 1, 0}},
                          std::move(cb));
  });
  ASSERT_TRUE(st.ok());
  EXPECT_TRUE(Get(1).status().IsNotFound());
  EXPECT_EQ(*Get(2), 22u);
}

TEST_P(StorageManagerTest, RecoverWithoutCheckpointReplaysWal) {
  for (std::uint64_t k = 0; k < 50; ++k) {
    ASSERT_TRUE(Put(k, k * 7).ok());
  }
  ASSERT_TRUE(CrashAndRecover().ok());
  for (std::uint64_t k = 0; k < 50; ++k) {
    ASSERT_EQ(*Get(k), k * 7) << k;
  }
}

TEST_P(StorageManagerTest, RecoverAfterCheckpointAndMoreCommits) {
  for (std::uint64_t k = 0; k < 40; ++k) {
    ASSERT_TRUE(Put(k, k + 1).ok());
  }
  ASSERT_TRUE(Checkpoint().ok());
  for (std::uint64_t k = 40; k < 80; ++k) {
    ASSERT_TRUE(Put(k, k + 1).ok());
  }
  ASSERT_TRUE(Del(0).ok());
  ASSERT_TRUE(CrashAndRecover().ok());
  EXPECT_TRUE(Get(0).status().IsNotFound());
  for (std::uint64_t k = 1; k < 80; ++k) {
    ASSERT_EQ(*Get(k), k + 1) << k;
  }
}

TEST_P(StorageManagerTest, UncommittedWorkNeverSurvives) {
  ASSERT_TRUE(Put(1, 10).ok());
  // Start a commit but crash before the WAL append can complete.
  bool fired = false;
  manager_->Put(2, 20, [&](Status) { fired = true; });
  // Classic commits take >400us; vision sub-us. Crash immediately at
  // t+0 (no events run), before any completion.
  ASSERT_TRUE(manager_->SimulateCrash().ok());
  (void)fired;
  Status st = Sync([&](StorageManager::StatusCb cb) {
    manager_->Recover(std::move(cb));
  });
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(*Get(1), 10u);
  EXPECT_TRUE(Get(2).status().IsNotFound());
}

TEST_P(StorageManagerTest, RepeatedCrashRecoverCycles) {
  Rng rng(4);
  std::map<std::uint64_t, std::uint64_t> shadow;
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 60; ++i) {
      const std::uint64_t k = rng.Uniform(300);
      if (rng.Bernoulli(0.2)) {
        ASSERT_TRUE(Del(k).ok());
        shadow.erase(k);
      } else {
        const std::uint64_t v = rng.Next() | 1;
        ASSERT_TRUE(Put(k, v).ok());
        shadow[k] = v;
      }
    }
    if (round == 1) {
      ASSERT_TRUE(Checkpoint().ok());
    }
    ASSERT_TRUE(CrashAndRecover().ok());
    for (const auto& [k, v] : shadow) {
      ASSERT_EQ(*Get(k), v) << "round " << round << " key " << k;
    }
  }
}

TEST_P(StorageManagerTest, ScanSeesCommittedData) {
  for (std::uint64_t k = 10; k < 20; ++k) {
    ASSERT_TRUE(Put(k, k * 2).ok());
  }
  std::vector<std::pair<std::uint64_t, std::uint64_t>> rows;
  bool fired = false;
  manager_->Scan(12, 15, [&](auto r) {
    ASSERT_TRUE(r.ok());
    rows = std::move(*r);
    fired = true;
  });
  ASSERT_TRUE(sim_->RunUntilPredicate([&] { return fired; }));
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[0].first, 12u);
  EXPECT_EQ(rows[3].second, 30u);
}

INSTANTIATE_TEST_SUITE_P(
    Wirings, StorageManagerTest,
    ::testing::Values(Wiring::kClassic, Wiring::kVision),
    [](const ::testing::TestParamInfo<Wiring>& info) {
      return info.param == Wiring::kClassic ? "Classic" : "Vision";
    });

// --- Cross-wiring comparisons (the paper's E7 in miniature) -------------------

TEST(StorageWiringContrastTest, VisionCommitsOrdersOfMagnitudeFaster) {
  auto mean_commit_ns = [](Wiring wiring) {
    sim::Simulator sim;
    ssd::Device device(&sim, DbSsd());
    StorageConfig cfg;
    cfg.wiring = wiring;
    StorageManager manager(&sim, &device, cfg);
    bool ready = false;
    manager.Bootstrap([&](Status st) {
      ASSERT_TRUE(st.ok());
      ready = true;
    });
    EXPECT_TRUE(sim.RunUntilPredicate([&] { return ready; }));
    for (std::uint64_t k = 0; k < 64; ++k) {
      bool fired = false;
      manager.Put(k, k, [&](Status st) {
        ASSERT_TRUE(st.ok());
        fired = true;
      });
      EXPECT_TRUE(sim.RunUntilPredicate([&] { return fired; }));
    }
    return manager.commit_latency().Mean();
  };
  const double vision = mean_commit_ns(Wiring::kVision);
  const double classic = mean_commit_ns(Wiring::kClassic);
  EXPECT_LT(vision * 20, classic)
      << "vision=" << vision << "ns classic=" << classic << "ns";
}

TEST(StorageWiringContrastTest, VisionCheckpointIsAtomic) {
  sim::Simulator sim;
  ssd::Device device(&sim, DbSsd());
  StorageConfig cfg;
  cfg.wiring = Wiring::kVision;
  StorageManager manager(&sim, &device, cfg);
  bool ready = false;
  manager.Bootstrap([&](Status st) {
    ASSERT_TRUE(st.ok());
    ready = true;
  });
  ASSERT_TRUE(sim.RunUntilPredicate([&] { return ready; }));
  auto put = [&](std::uint64_t k, std::uint64_t v) {
    bool fired = false;
    manager.Put(k, v, [&](Status st) {
      ASSERT_TRUE(st.ok());
      fired = true;
    });
    ASSERT_TRUE(sim.RunUntilPredicate([&] { return fired; }));
  };
  for (std::uint64_t k = 0; k < 100; ++k) put(k, k + 1);

  // Crash in the middle of the checkpoint's atomic write.
  bool ckpt_done = false;
  manager.Checkpoint([&](Status) { ckpt_done = true; });
  sim.RunUntil(sim.Now() + 300 * kMicrosecond);  // < one page program
  ASSERT_FALSE(ckpt_done);
  ASSERT_TRUE(manager.SimulateCrash().ok());
  bool recovered = false;
  manager.Recover([&](Status st) {
    ASSERT_TRUE(st.ok());
    recovered = true;
  });
  ASSERT_TRUE(sim.RunUntilPredicate([&] { return recovered; }));
  // All 100 commits must still be there: either the old checkpoint +
  // full WAL, or (had it completed) the new atomic checkpoint.
  for (std::uint64_t k = 0; k < 100; ++k) {
    bool fired = false;
    manager.Get(k, [&](StatusOr<std::uint64_t> r) {
      ASSERT_TRUE(r.ok()) << "key " << k << ": " << r.status();
      EXPECT_EQ(*r, k + 1);
      fired = true;
    });
    ASSERT_TRUE(sim.RunUntilPredicate([&] { return fired; }));
  }
}

}  // namespace
}  // namespace postblock::db
