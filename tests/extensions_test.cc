// Tests for the optional/extension features: multi-plane parallelism,
// energy accounting, priority IO scheduling, plus targeted regression
// tests for subtle bugs found during development.

#include <map>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "blocklayer/block_layer.h"
#include "blocklayer/io_scheduler.h"
#include "blocklayer/simple_device.h"
#include "common/rng.h"
#include "core/hybrid_store.h"
#include "ftl/page_ftl.h"
#include "sim/resource.h"
#include "sim/simulator.h"
#include "ssd/controller.h"
#include "ssd/device.h"

namespace postblock {
namespace {

// --- Multi-plane parallelism (paper §2.2) ---------------------------------

ssd::Config PlaneConfig(bool parallel) {
  ssd::Config c;
  c.geometry.channels = 1;
  c.geometry.luns_per_channel = 1;
  c.geometry.planes_per_lun = 4;
  c.geometry.blocks_per_plane = 4;
  c.geometry.pages_per_block = 8;
  c.plane_parallelism = parallel;
  return c;
}

SimTime ProgramFourPlanes(bool parallel) {
  sim::Simulator sim;
  ssd::Controller controller(&sim, PlaneConfig(parallel));
  for (std::uint32_t plane = 0; plane < 4; ++plane) {
    controller.ProgramPage(flash::Ppa{0, 0, plane, 0, 0},
                           flash::PageData{}, [](Status st) {
                             ASSERT_TRUE(st.ok());
                           });
  }
  sim.Run();
  return sim.Now();
}

TEST(MultiPlaneTest, ParallelPlanesOverlapPrograms) {
  const flash::Timing t;
  const SimTime xfer = t.TransferNs(4096);
  // Serial: 4 * (transfer + program). Parallel: transfers serialize on
  // the channel, programs overlap — like four LUNs.
  EXPECT_EQ(ProgramFourPlanes(false), 4 * (xfer + t.program_ns));
  EXPECT_EQ(ProgramFourPlanes(true), 4 * xfer + t.program_ns);
}

TEST(MultiPlaneTest, SamePlaneStillSerializes) {
  sim::Simulator sim;
  ssd::Controller controller(&sim, PlaneConfig(true));
  for (std::uint32_t page = 0; page < 2; ++page) {
    controller.ProgramPage(flash::Ppa{0, 0, 0, 0, page},
                           flash::PageData{}, [](Status st) {
                             ASSERT_TRUE(st.ok());
                           });
  }
  sim.Run();
  const flash::Timing t;
  EXPECT_EQ(sim.Now(), 2 * (t.TransferNs(4096) + t.program_ns));
}

TEST(MultiPlaneTest, DeviceWorksWithPlaneParallelism) {
  sim::Simulator sim;
  ssd::Config cfg = ssd::Config::Small();
  cfg.geometry.planes_per_lun = 2;
  cfg.plane_parallelism = true;
  ssd::Device device(&sim, cfg);
  std::map<Lba, std::uint64_t> shadow;
  Rng rng(4);
  for (int i = 0; i < 500; ++i) {
    const Lba lba = rng.Uniform(device.num_blocks());
    blocklayer::IoRequest w;
    w.op = blocklayer::IoOp::kWrite;
    w.lba = lba;
    w.nblocks = 1;
    w.tokens = {static_cast<std::uint64_t>(i) + 1};
    bool fired = false;
    w.on_complete = [&](const blocklayer::IoResult& r) {
      ASSERT_TRUE(r.status.ok());
      fired = true;
    };
    device.Submit(std::move(w));
    ASSERT_TRUE(sim.RunUntilPredicate([&] { return fired; }));
    shadow[lba] = static_cast<std::uint64_t>(i) + 1;
  }
  for (const auto& [lba, token] : shadow) {
    blocklayer::IoRequest r;
    r.op = blocklayer::IoOp::kRead;
    r.lba = lba;
    r.nblocks = 1;
    bool fired = false;
    r.on_complete = [&, token = token](const blocklayer::IoResult& res) {
      ASSERT_TRUE(res.status.ok());
      ASSERT_EQ(res.tokens[0], token);
      fired = true;
    };
    device.Submit(std::move(r));
    ASSERT_TRUE(sim.RunUntilPredicate([&] { return fired; }));
  }
}

// --- Energy accounting (ref [2], uFLIP energy) ------------------------------

TEST(EnergyTest, OpsAccumulateExpectedEnergy) {
  sim::Simulator sim;
  ssd::Config cfg = ssd::Config::SingleChip();
  ssd::Controller controller(&sim, cfg);
  const flash::Timing& t = cfg.timing;
  const std::uint64_t xfer_nj =
      t.transfer_nj_per_kib * cfg.geometry.page_size_bytes / 1024;

  controller.ProgramPage(flash::Ppa{0, 0, 0, 0, 0}, flash::PageData{},
                         [](Status) {});
  sim.Run();
  EXPECT_EQ(controller.EnergyNj(), t.program_energy_nj + xfer_nj);

  controller.ReadPage(flash::Ppa{0, 0, 0, 0, 0},
                      [](StatusOr<flash::PageData>) {});
  sim.Run();
  EXPECT_EQ(controller.EnergyNj(),
            t.program_energy_nj + t.read_energy_nj + 2 * xfer_nj);

  controller.EraseBlock(flash::BlockAddr{0, 0, 0, 1}, [](Status) {});
  sim.Run();
  EXPECT_EQ(controller.EnergyNj(), t.program_energy_nj +
                                       t.read_energy_nj + 2 * xfer_nj +
                                       t.erase_energy_nj);
}

TEST(EnergyTest, GcInflatesEnergyPerHostWrite) {
  // The uFLIP-energy observation: churning a full device burns more
  // joules per host write than appending to a fresh one, because GC
  // reads/programs/erases ride along.
  auto energy_per_write = [](bool churn) {
    sim::Simulator sim;
    ssd::Config cfg = ssd::Config::Small();
    ssd::Device device(&sim, cfg);
    const std::uint64_t n = device.num_blocks();
    Rng rng(5);
    auto write = [&](Lba lba, std::uint64_t tok) {
      blocklayer::IoRequest w;
      w.op = blocklayer::IoOp::kWrite;
      w.lba = lba;
      w.nblocks = 1;
      w.tokens = {tok};
      bool fired = false;
      w.on_complete = [&](const blocklayer::IoResult&) { fired = true; };
      device.Submit(std::move(w));
      EXPECT_TRUE(sim.RunUntilPredicate([&] { return fired; }));
    };
    if (churn) {
      for (Lba lba = 0; lba < n; ++lba) write(lba, 1);
      for (std::uint64_t i = 0; i < 2 * n; ++i) write(rng.Uniform(n), i);
    }
    const std::uint64_t e0 = device.controller()->EnergyNj();
    const std::uint64_t h0 =
        device.ftl()->counters().Get("host_pages_accepted");
    // Measurement window: fresh appends vs random overwrites.
    for (std::uint64_t i = 0; i < n / 4; ++i) {
      write(churn ? rng.Uniform(n) : i, i + 2);
    }
    const std::uint64_t de = device.controller()->EnergyNj() - e0;
    const std::uint64_t dh =
        device.ftl()->counters().Get("host_pages_accepted") - h0;
    return static_cast<double>(de) / static_cast<double>(dh);
  };
  const double fresh = energy_per_write(false);
  const double aged = energy_per_write(true);
  // Fresh appends cost ~ program + transfer energy exactly.
  EXPECT_NEAR(fresh, 52000.0, 2000.0);
  EXPECT_GT(aged, 1.5 * fresh);
}

// --- Priority scheduling (ref [13]) -----------------------------------------

TEST(PrioritySchedulerTest, HigherPriorityDispatchesFirst) {
  blocklayer::IoScheduler s(blocklayer::SchedulerKind::kPriority);
  blocklayer::IoRequest low1, high, low2;
  low1.lba = 1;
  low2.lba = 2;
  high.lba = 99;
  high.priority = 1;
  s.Enqueue(std::move(low1));
  s.Enqueue(std::move(high));
  s.Enqueue(std::move(low2));
  EXPECT_EQ(s.Dequeue().lba, 99u);
  EXPECT_EQ(s.Dequeue().lba, 1u);  // FIFO within the low class
  EXPECT_EQ(s.Dequeue().lba, 2u);
  EXPECT_EQ(s.counters().Get("priority_dispatches"), 1u);
}

TEST(PrioritySchedulerTest, LogWriteOvertakesQueuedDataWrites) {
  sim::Simulator sim;
  blocklayer::SimpleDeviceConfig dev_cfg;
  dev_cfg.num_blocks = 4096;
  dev_cfg.units = 1;  // force queueing
  dev_cfg.write_ns = 100 * kMicrosecond;
  blocklayer::SimpleBlockDevice dev(&sim, dev_cfg);
  blocklayer::BlockLayerConfig cfg;
  cfg.scheduler = blocklayer::SchedulerKind::kPriority;
  cfg.queue_depth = 1;
  blocklayer::BlockLayer layer(&sim, &dev, cfg);

  std::vector<int> completion_order;
  for (int i = 0; i < 8; ++i) {
    blocklayer::IoRequest w;
    w.op = blocklayer::IoOp::kWrite;
    w.lba = static_cast<Lba>(i * 2);
    w.nblocks = 1;
    w.tokens = {1};
    w.on_complete = [&, i](const blocklayer::IoResult&) {
      completion_order.push_back(i);
    };
    layer.Submit(std::move(w));
  }
  blocklayer::IoRequest log;
  log.op = blocklayer::IoOp::kWrite;
  log.lba = 1000;
  log.nblocks = 1;
  log.tokens = {7};
  log.priority = 1;
  log.on_complete = [&](const blocklayer::IoResult&) {
    completion_order.push_back(100);
  };
  layer.Submit(std::move(log));
  sim.Run();
  ASSERT_EQ(completion_order.size(), 9u);
  // The log write was submitted last but must not complete last; with
  // QD1 it overtakes everything still queued at its arrival.
  std::size_t log_pos = 0;
  for (std::size_t i = 0; i < completion_order.size(); ++i) {
    if (completion_order[i] == 100) log_pos = i;
  }
  EXPECT_LT(log_pos, 4u);
}

TEST(PrioritySchedulerTest, ClassicWalWritesCarryPriority) {
  sim::Simulator sim;
  ssd::Device device(&sim, ssd::Config::Small());
  core::HybridStore store(&sim, &device, /*log_region_start=*/0,
                          /*log_region_blocks=*/16);
  bool fired = false;
  store.SyncPersist({1, 2, 3}, [&](Status st) {
    ASSERT_TRUE(st.ok());
    fired = true;
  });
  ASSERT_TRUE(sim.RunUntilPredicate([&] { return fired; }));
  // The priority marker itself is set inside SyncPersist; this test
  // pins the contract (log IO = priority 1) via the counter path.
  EXPECT_EQ(store.counters().Get("sync_persists"), 1u);
}

// --- Regression: strict FCFS resource handoff --------------------------------

TEST(ResourceRegressionTest, NewAcquirerCannotJumpScheduledGrant) {
  // Bug history: Release() used to free the slot and schedule the
  // waiter's grant at +0; an Acquire arriving in that window saw a free
  // slot and jumped the queue, reordering same-LUN flash programs and
  // violating constraint C3.
  sim::Simulator sim;
  sim::Resource r(&sim, "r");
  std::vector<char> order;
  r.Acquire([] {});               // A holds
  r.Acquire([&] {                 // B waits
    order.push_back('B');
    r.Release();
  });
  sim.Schedule(10, [&] { r.Release(); });    // A releases at t=10
  sim.Schedule(10, [&] {                     // C acquires at t=10, later
    r.Acquire([&] { order.push_back('C'); });
  });
  sim.Run();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 'B');
  EXPECT_EQ(order[1], 'C');
}

// --- Regression: wear-out retires blocks without losing data -----------------

TEST(WearOutTest, ErasFailuresRetireBlocksDeviceKeepsServing) {
  sim::Simulator sim;
  ssd::Config cfg = ssd::Config::Small();
  cfg.errors.endurance_cycles = 2;  // tiny budget: blocks age quickly
  cfg.errors.post_endurance_erase_failure = 0.05;
  cfg.errors.base_correctable_rate = 0;  // isolate erase wear-out
  cfg.errors.base_uncorrectable_rate = 0;
  cfg.errors.wear_amplification = 0;
  cfg.over_provisioning = 0.4;  // headroom so retired blocks don't
                                // starve user capacity
  ssd::Device device(&sim, cfg);
  const Lba n = device.num_blocks();  // full-span churn cycles blocks
  std::map<Lba, std::uint64_t> shadow;
  Rng rng(6);
  auto write = [&](Lba lba, std::uint64_t tok) {
    blocklayer::IoRequest w;
    w.op = blocklayer::IoOp::kWrite;
    w.lba = lba;
    w.nblocks = 1;
    w.tokens = {tok};
    bool fired = false;
    w.on_complete = [&](const blocklayer::IoResult& r) {
      ASSERT_TRUE(r.status.ok());
      fired = true;
    };
    device.Submit(std::move(w));
    ASSERT_TRUE(sim.RunUntilPredicate([&] { return fired; }));
  };
  for (std::uint64_t i = 0; i < 4 * n; ++i) {
    const Lba lba = rng.Uniform(n);
    write(lba, i + 1);
    shadow[lba] = i + 1;
  }
  EXPECT_GT(device.controller()->flash()->bad_blocks(), 0u);
  for (const auto& [lba, token] : shadow) {
    blocklayer::IoRequest r;
    r.op = blocklayer::IoOp::kRead;
    r.lba = lba;
    r.nblocks = 1;
    bool fired = false;
    r.on_complete = [&, token = token](const blocklayer::IoResult& res) {
      ASSERT_TRUE(res.status.ok());
      ASSERT_EQ(res.tokens[0], token);
      fired = true;
    };
    device.Submit(std::move(r));
    ASSERT_TRUE(sim.RunUntilPredicate([&] { return fired; }));
  }
}


// --- Copyback (ONFI internal data move) --------------------------------------

TEST(CopybackTest, MovesDataWithoutChannelTransfer) {
  sim::Simulator sim;
  ssd::Config cfg = ssd::Config::SingleChip();
  ssd::Controller controller(&sim, cfg);
  controller.ProgramPage(flash::Ppa{0, 0, 0, 0, 0},
                         flash::PageData{9, 1, 777, 0},
                         [](Status st) { ASSERT_TRUE(st.ok()); });
  sim.Run();
  const SimTime start = sim.Now();
  bool done = false;
  controller.CopybackPage(flash::Ppa{0, 0, 0, 0, 0},
                          flash::Ppa{0, 0, 0, 1, 0}, [&](Status st) {
                            ASSERT_TRUE(st.ok());
                            done = true;
                          });
  sim.Run();
  ASSERT_TRUE(done);
  const flash::Timing& t = cfg.timing;
  // cmd on the bus + array read + array program; no page transfer.
  EXPECT_EQ(sim.Now() - start, t.cmd_ns + t.read_ns + t.program_ns);
  auto peek = controller.flash()->Peek(flash::Ppa{0, 0, 0, 1, 0});
  ASSERT_TRUE(peek.ok());
  EXPECT_EQ(peek->token, 777u);
  EXPECT_EQ(controller.counters().Get("copybacks"), 1u);
}

TEST(CopybackTest, CheaperThanReadThenProgram) {
  const flash::Timing t;
  const SimTime copyback = t.cmd_ns + t.read_ns + t.program_ns;
  const SimTime external = (t.cmd_ns + t.read_ns + t.TransferNs(4096)) +
                           (t.TransferNs(4096) + t.program_ns);
  EXPECT_LT(copyback, external);
}

TEST(CopybackTest, CrossPlaneRejected) {
  sim::Simulator sim;
  ssd::Config cfg;
  cfg.geometry.channels = 1;
  cfg.geometry.luns_per_channel = 2;
  cfg.geometry.planes_per_lun = 2;
  ssd::Controller controller(&sim, cfg);
  Status seen;
  controller.CopybackPage(flash::Ppa{0, 0, 0, 0, 0},
                          flash::Ppa{0, 0, 1, 0, 0},
                          [&](Status st) { seen = st; });
  sim.Run();
  EXPECT_TRUE(seen.IsInvalidArgument());
  controller.CopybackPage(flash::Ppa{0, 0, 0, 0, 0},
                          flash::Ppa{0, 1, 0, 0, 0},
                          [&](Status st) { seen = st; });
  sim.Run();
  EXPECT_TRUE(seen.IsInvalidArgument());
}

TEST(CopybackTest, ConstraintsStillEnforced) {
  sim::Simulator sim;
  ssd::Config cfg = ssd::Config::SingleChip();
  ssd::Controller controller(&sim, cfg);
  // Destination write point violation (C3) surfaces through copyback.
  controller.ProgramPage(flash::Ppa{0, 0, 0, 0, 0}, flash::PageData{},
                         [](Status) {});
  controller.ProgramPage(flash::Ppa{0, 0, 0, 1, 5}, flash::PageData{},
                         [](Status) {});
  sim.Run();
  Status seen;
  controller.CopybackPage(flash::Ppa{0, 0, 0, 0, 0},
                          flash::Ppa{0, 0, 0, 1, 2},
                          [&](Status st) { seen = st; });
  sim.Run();
  EXPECT_TRUE(seen.IsFailedPrecondition());
}

}  // namespace
}  // namespace postblock
