// ShardedEngine: conservative-lookahead sharded event cores.
//
// The load-bearing property is byte-identical committed schedules at
// every worker count (including the workers=0 sequential reference) —
// held here by exact-timestamp checks, merge-order checks, and a
// randomized cross-thread determinism property test that compares
// schedule fingerprints across 1/2/4/8 workers and run-twice repeats.

#include "sim/sharded_engine.h"

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "flash/rng_domain.h"
#include "sim/simulator.h"

namespace postblock::sim {
namespace {

std::uint64_t Fold(std::uint64_t h, std::uint64_t v) {
  std::uint64_t x = v ^ (h + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2));
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  return x ^ (x >> 31);
}

TEST(MinPendingTimeTest, PureReadDoesNotCommitWheel) {
  Simulator sim;
  sim.Schedule(5, [] {});
  sim.Schedule(70, [] {});                  // next level-0 block
  sim.Schedule(1'000'000'000, [] {});       // deep wheel level
  EXPECT_EQ(sim.MinPendingTime(), 5u);
  // A probe must not drag the push clamp forward: an event scheduled
  // below the probed minimum keeps its exact timestamp and fires first.
  std::vector<SimTime> fired;
  sim.ScheduleAt(3, [&] { fired.push_back(sim.Now()); });
  EXPECT_EQ(sim.MinPendingTime(), 3u);
  sim.Run();
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], 3u);
}

TEST(MinPendingTimeTest, OverflowAndCoarseLevels) {
  Simulator sim;
  const SimTime far = SimTime{90} * 1000 * 1000 * 1000;  // past horizon
  sim.Schedule(far, [] {});
  EXPECT_EQ(sim.MinPendingTime(), far);
  sim.Schedule(4096 + 17, [] {});  // level >= 1: slot-scan path
  EXPECT_EQ(sim.MinPendingTime(), 4096u + 17u);
}

TEST(ShardedEngineTest, SingleShardMatchesPlainSimulator) {
  // One shard, workers=0: the engine must execute the exact schedule a
  // plain Simulator would — same event count, same final time, same
  // schedule fingerprint.
  const auto drive = [](Simulator* sim) {
    for (int k = 0; k < 4; ++k) {
      auto chain = std::make_shared<std::function<void(int)>>();
      *chain = [sim, chain, k](int left) {
        if (left == 0) {
          *chain = nullptr;
          return;
        }
        sim->Schedule(10 + k, [chain, left] { (*chain)(left - 1); });
      };
      sim->Schedule(k, [chain] { (*chain)(50); });
    }
  };

  Simulator plain;
  plain.EnableFingerprint();
  drive(&plain);
  const SimTime plain_end = plain.Run();

  ShardedConfig config;
  config.shards = 1;
  config.workers = 0;
  config.lookahead = 7;  // odd window width: boundaries hit mid-chain
  ShardedEngine engine(config);
  drive(engine.shard(0));
  engine.Run();

  EXPECT_EQ(engine.shard(0)->events_executed(), plain.events_executed());
  // The executed schedule is identical (the fingerprint folds every
  // event's timestamp); the final clock parks at the committed window
  // boundary, at most lookahead-1 past the last event.
  EXPECT_EQ(engine.shard(0)->fingerprint(), plain.fingerprint());
  EXPECT_GE(engine.shard(0)->Now(), plain_end);
  EXPECT_LT(engine.shard(0)->Now(), plain_end + config.lookahead);
}

TEST(ShardedEngineTest, CrossShardMergeOrdersByTimestampShardSeq) {
  ShardedConfig config;
  config.shards = 4;
  config.workers = 0;
  config.lookahead = 100;
  ShardedEngine engine(config);

  std::vector<std::uint32_t> arrivals;
  // Setup posts in scrambled sender order, all to shard 3 at the same
  // timestamp; the deterministic merge must deliver by (when, from,
  // seq), so execution order is sender 0, 1, 1, 2 (seq breaks the tie
  // between shard 1's two messages in post order).
  engine.Post(2, 3, 500, [&] { arrivals.push_back(2); });
  engine.Post(1, 3, 500, [&] { arrivals.push_back(10); });
  engine.Post(0, 3, 500, [&] { arrivals.push_back(0); });
  engine.Post(1, 3, 500, [&] { arrivals.push_back(11); });
  engine.Run();

  ASSERT_EQ(arrivals.size(), 4u);
  EXPECT_EQ(arrivals[0], 0u);
  EXPECT_EQ(arrivals[1], 10u);
  EXPECT_EQ(arrivals[2], 11u);
  EXPECT_EQ(arrivals[3], 2u);
}

TEST(ShardedEngineTest, MessagesKeepExactTimestamps) {
  ShardedConfig config;
  config.shards = 2;
  config.workers = 0;
  config.lookahead = 50;
  ShardedEngine engine(config);

  std::vector<SimTime> at;
  // Shard 1 holds a far-future local event; the cross-shard message
  // must still fire at its exact timestamp, not get clamped onto the
  // far event (the MinPendingTime / bounded-peek contract).
  engine.shard(1)->Schedule(100'000, [&] {
    at.push_back(engine.shard(1)->Now());
  });
  engine.shard(0)->Schedule(100, [&, this_engine = &engine] {
    this_engine->Post(0, 1, 100 + 50 + 3, [&, this_engine] {
      at.push_back(this_engine->shard(1)->Now());
    });
  });
  engine.Run();

  ASSERT_EQ(at.size(), 2u);
  EXPECT_EQ(at[0], 153u);
  EXPECT_EQ(at[1], 100'000u);
}

TEST(ShardedEngineTest, RunUntilLeavesLaterWorkQueued) {
  ShardedConfig config;
  config.shards = 2;
  config.workers = 0;
  config.lookahead = 10;
  ShardedEngine engine(config);

  int early = 0;
  int late = 0;
  engine.shard(0)->Schedule(50, [&] { ++early; });
  engine.shard(1)->Schedule(900, [&] { ++late; });
  engine.RunUntil(100);
  EXPECT_EQ(early, 1);
  EXPECT_EQ(late, 0);
  EXPECT_EQ(engine.Now(), 100u);
  EXPECT_EQ(engine.shard(1)->Now(), 100u);
  engine.Run();
  EXPECT_EQ(late, 1);
}

// --- The randomized cross-thread determinism property ------------------

/// A random sharded workload: each shard runs a self-rescheduling chain
/// with per-shard-domain random deltas; a quarter of events post a
/// payload to a random other shard at now + lookahead + delta. Every
/// observable (per-shard execution hash, payload fold, event counts) is
/// folded into one digest alongside the engine fingerprints.
std::uint64_t RunRandomWorld(std::uint32_t workers, std::uint64_t seed) {
  constexpr std::uint32_t kShards = 5;
  constexpr SimTime kLookahead = 64;

  ShardedConfig config;
  config.shards = kShards;
  config.workers = workers;
  config.lookahead = kLookahead;
  ShardedEngine engine(config);

  struct ShardWorld {
    Rng rng{0};
    std::uint64_t hash = 0;
    std::uint64_t executed = 0;
  };
  // Shards only ever touch their own slot; the flash::RngDomain streams
  // make each shard's draws a function of its id alone.
  std::vector<ShardWorld> worlds(kShards);
  const flash::RngDomain domain(seed);
  for (std::uint32_t s = 0; s < kShards; ++s) {
    worlds[s].rng = domain.ForDomain(s);
  }

  struct Chain {
    ShardedEngine* engine;
    std::vector<ShardWorld>* worlds;
    std::uint32_t shard;
    int left;

    void operator()() const {
      ShardWorld& w = (*worlds)[shard];
      Simulator* sim = engine->shard(shard);
      w.hash = Fold(w.hash, sim->Now());
      ++w.executed;
      if (left == 0) return;
      const std::uint64_t draw = w.rng.Next();
      const SimTime delta = 1 + (draw & 0x3f);
      if ((draw >> 8 & 3) == 0) {
        // Cross-shard hop: the chain continues on another shard.
        const auto to = static_cast<std::uint32_t>(
            (draw >> 16) % engine->num_shards());
        engine->Post(shard, to, sim->Now() + kLookahead + delta,
                     Chain{engine, worlds, to, left - 1});
      } else {
        sim->Schedule(delta, Chain{engine, worlds, shard, left - 1});
      }
    }
  };

  for (std::uint32_t s = 0; s < kShards; ++s) {
    for (int c = 0; c < 6; ++c) {
      engine.shard(s)->Schedule(s + c, Chain{&engine, &worlds, s, 120});
    }
  }
  engine.Run();

  std::uint64_t digest = engine.Fingerprint();
  for (const ShardWorld& w : worlds) {
    digest = Fold(digest, w.hash);
    digest = Fold(digest, w.executed);
  }
  digest = Fold(digest, engine.events_executed());
  digest = Fold(digest, engine.Now());
  return digest;
}

TEST(ShardedDeterminismTest, IdenticalScheduleAtEveryWorkerCount) {
  for (const std::uint64_t seed : {1ull, 0xdecafbadull}) {
    const std::uint64_t reference = RunRandomWorld(/*workers=*/0, seed);
    for (const std::uint32_t workers : {1u, 2u, 4u, 8u}) {
      EXPECT_EQ(RunRandomWorld(workers, seed), reference)
          << "workers=" << workers << " seed=" << seed
          << " diverged from the sequential reference";
    }
  }
}

TEST(ShardedDeterminismTest, RunTwiceBitIdenticalPerWorkerCount) {
  for (const std::uint32_t workers : {1u, 2u, 4u, 8u}) {
    EXPECT_EQ(RunRandomWorld(workers, 77), RunRandomWorld(workers, 77))
        << "workers=" << workers << " not reproducible across runs";
  }
}

TEST(ShardedEngineTest, SeamTrafficObservability) {
  ShardedConfig config;
  config.shards = 2;
  config.workers = 0;
  config.lookahead = 10;
  ShardedEngine engine(config);
  engine.Post(0, 1, 5, [] {});
  engine.shard(0)->Schedule(3, [&] {
    engine.Post(0, 1, engine.shard(0)->Now() + 10, [] {});
  });
  engine.Run();
  EXPECT_EQ(engine.messages_delivered(), 2u);
  EXPECT_GE(engine.rounds(), 1u);
  EXPECT_EQ(engine.events_executed(), 3u);
}

}  // namespace
}  // namespace postblock::sim
