#include <map>
#include <memory>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "ftl/dftl.h"
#include "sim/completion.h"
#include "sim/simulator.h"
#include "ssd/config.h"
#include "ssd/controller.h"

namespace postblock::ftl {
namespace {

ssd::Config DftlConfig(std::uint32_t cmt_pages,
                       std::uint32_t entries_per_tp = 32) {
  ssd::Config c = ssd::Config::Small();
  c.ftl = ssd::FtlKind::kDftl;
  c.dftl_cmt_pages = cmt_pages;
  c.dftl_entries_per_tp = entries_per_tp;
  return c;
}

class DftlTest : public ::testing::Test {
 protected:
  void Build(const ssd::Config& config) {
    ftl_.reset();
    controller_.reset();
    simulator_ = std::make_unique<sim::Simulator>();
    controller_ =
        std::make_unique<ssd::Controller>(simulator_.get(), config);
    ftl_ = std::make_unique<Dftl>(controller_.get());
  }

  void SetUp() override { Build(DftlConfig(4)); }

  Status WriteSync(Lba lba, std::uint64_t token) {
    sim::Completion done;
    ftl_->Write(lba, token, done.AsCallback(simulator_.get()));
    EXPECT_TRUE(sim::WaitFor(simulator_.get(), done));
    return done.status();
  }

  StatusOr<std::uint64_t> ReadSync(Lba lba) {
    StatusOr<std::uint64_t> out = Status::Internal("not run");
    bool fired = false;
    ftl_->Read(lba, [&](StatusOr<std::uint64_t> r) {
      out = std::move(r);
      fired = true;
    });
    EXPECT_TRUE(simulator_->RunUntilPredicate([&] { return fired; }));
    return out;
  }

  std::unique_ptr<sim::Simulator> simulator_;
  std::unique_ptr<ssd::Controller> controller_;
  std::unique_ptr<Dftl> ftl_;
};

TEST_F(DftlTest, RoundTripAndOverwrite) {
  ASSERT_TRUE(WriteSync(5, 1).ok());
  ASSERT_TRUE(WriteSync(5, 2).ok());
  EXPECT_EQ(*ReadSync(5), 2u);
}

TEST_F(DftlTest, UserSpaceShrunkByTranslationPages) {
  const std::uint64_t raw_user = controller_->config().UserPages();
  EXPECT_LT(ftl_->user_pages(), raw_user);
}

TEST_F(DftlTest, RepeatedAccessToSameRegionHitsCmt) {
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(WriteSync(i % 8, i).ok());  // one translation page
  }
  EXPECT_GE(ftl_->counters().Get("cmt_hits"), 49u);
  EXPECT_EQ(ftl_->counters().Get("cmt_misses"), 1u);
}

TEST_F(DftlTest, ScatteredAccessMissesAndEvicts) {
  const std::uint32_t entries = 32;
  // Touch 16 translation pages with a CMT of 4: constant misses.
  for (Lba tp = 0; tp < 16; ++tp) {
    ASSERT_TRUE(WriteSync(tp * entries, tp).ok());
  }
  EXPECT_EQ(ftl_->counters().Get("cmt_misses"), 16u);
  EXPECT_GT(ftl_->counters().Get("cmt_evictions_dirty"), 0u);
  EXPECT_GT(ftl_->counters().Get("map_writes"), 0u);
  EXPECT_EQ(ftl_->cached_translation_pages(), 4u);
}

TEST_F(DftlTest, EvictedTranslationPagesAreReadBack) {
  const std::uint32_t entries = 32;
  for (Lba tp = 0; tp < 8; ++tp) {
    ASSERT_TRUE(WriteSync(tp * entries, tp).ok());
  }
  // Revisit the first translation page: it was evicted dirty, so the
  // fetch costs a real map read.
  ASSERT_TRUE(WriteSync(0, 99).ok());
  EXPECT_GT(ftl_->counters().Get("map_reads"), 0u);
  EXPECT_EQ(*ReadSync(0), 99u);
}

TEST_F(DftlTest, MapTrafficInflatesWriteAmplification) {
  const std::uint32_t entries = 32;
  Rng rng(3);
  // Far more translation pages than the CMT holds, inside user space.
  const Lba span = std::min<Lba>(ftl_->user_pages(), 48 * entries);
  for (int i = 0; i < 600; ++i) {
    ASSERT_TRUE(WriteSync(rng.Uniform(span), i + 1).ok());
  }
  // Map programs count as flash programs but not host pages.
  EXPECT_GT(ftl_->WriteAmplification(), 1.1);
}

TEST_F(DftlTest, LargeCmtBehavesLikePageMapping) {
  Build(DftlConfig(/*cmt_pages=*/1024));
  Rng rng(3);
  for (int i = 0; i < 600; ++i) {
    ASSERT_TRUE(WriteSync(rng.Uniform(1024), i + 1).ok());
  }
  EXPECT_EQ(ftl_->counters().Get("map_writes"), 0u);
  EXPECT_LT(ftl_->WriteAmplification(), 1.1);
}

TEST_F(DftlTest, IntegrityUnderChurn) {
  std::map<Lba, std::uint64_t> shadow;
  Rng rng(77);
  const Lba n = std::min<Lba>(ftl_->user_pages(), 512);
  for (int i = 0; i < 2000; ++i) {
    const Lba lba = rng.Uniform(n);
    ASSERT_TRUE(WriteSync(lba, i + 1).ok()) << i;
    shadow[lba] = i + 1;
  }
  for (const auto& [lba, token] : shadow) {
    ASSERT_EQ(*ReadSync(lba), token) << lba;
  }
}

TEST_F(DftlTest, OutOfRangeRejected) {
  EXPECT_TRUE(WriteSync(ftl_->user_pages(), 1).IsOutOfRange());
  EXPECT_TRUE(ReadSync(ftl_->user_pages()).status().IsOutOfRange());
}

}  // namespace
}  // namespace postblock::ftl
