// PcmDevice + PcmLog + Hdd device-model tests.

#include <vector>

#include <gtest/gtest.h>

#include "core/pcm_log.h"
#include "hdd/hdd.h"
#include "pcm/pcm_device.h"
#include "sim/simulator.h"

namespace postblock {
namespace {

// --- PcmDevice -------------------------------------------------------------

TEST(PcmDeviceTest, WriteThenReadRoundTrips) {
  sim::Simulator sim;
  pcm::PcmDevice dev(&sim, pcm::PcmConfig{});
  std::vector<std::uint8_t> payload = {1, 2, 3, 4, 5};
  bool wrote = false;
  dev.Write(100, payload, [&](Status st) {
    ASSERT_TRUE(st.ok());
    wrote = true;
  });
  sim.Run();
  ASSERT_TRUE(wrote);
  std::vector<std::uint8_t> got;
  dev.Read(100, 5, [&](StatusOr<std::vector<std::uint8_t>> r) {
    ASSERT_TRUE(r.ok());
    got = *r;
  });
  sim.Run();
  EXPECT_EQ(got, payload);
}

TEST(PcmDeviceTest, LatencyScalesWithLines) {
  sim::Simulator sim;
  pcm::PcmConfig cfg;
  cfg.read_ns_per_line = 100;
  cfg.write_ns_per_line = 500;
  cfg.line_bytes = 64;
  pcm::PcmDevice dev(&sim, cfg);
  EXPECT_EQ(dev.ReadLatency(64), 100u);
  EXPECT_EQ(dev.ReadLatency(65), 200u);
  EXPECT_EQ(dev.WriteLatency(1), 500u);
  EXPECT_EQ(dev.WriteLatency(256), 4 * 500u);
}

TEST(PcmDeviceTest, SmallSyncWritesAreSubMicrosecond) {
  // The Section 3 claim: persistence via the memory bus costs orders of
  // magnitude less than a block IO.
  sim::Simulator sim;
  pcm::PcmDevice dev(&sim, pcm::PcmConfig{});
  bool done = false;
  dev.Write(0, std::vector<std::uint8_t>(64, 7), [&](Status) {
    done = true;
  });
  sim.Run();
  ASSERT_TRUE(done);
  EXPECT_LE(sim.Now(), 1 * kMicrosecond);
}

TEST(PcmDeviceTest, OutOfRangeRejected) {
  sim::Simulator sim;
  pcm::PcmConfig cfg;
  cfg.capacity_bytes = 1024;
  pcm::PcmDevice dev(&sim, cfg);
  Status seen;
  dev.Write(1000, std::vector<std::uint8_t>(100, 0),
            [&](Status st) { seen = st; });
  sim.Run();
  EXPECT_TRUE(seen.IsOutOfRange());
  EXPECT_TRUE(dev.Peek(1000, 100).status().IsOutOfRange());
}

TEST(PcmDeviceTest, WearTracksLineWrites) {
  sim::Simulator sim;
  pcm::PcmDevice dev(&sim, pcm::PcmConfig{});
  for (int i = 0; i < 5; ++i) {
    dev.Write(0, std::vector<std::uint8_t>(64, 1), [](Status) {});
  }
  sim.Run();
  EXPECT_EQ(dev.MaxLineWear(), 5u);
}

TEST(PcmDeviceTest, BanksAllowConcurrentAccess) {
  sim::Simulator sim;
  pcm::PcmConfig cfg;
  cfg.banks = 4;
  pcm::PcmDevice dev(&sim, cfg);
  int done = 0;
  for (int i = 0; i < 4; ++i) {
    dev.Write(static_cast<std::uint64_t>(i) * 64,
              std::vector<std::uint8_t>(64, 1), [&](Status) { ++done; });
  }
  sim.Run();
  EXPECT_EQ(done, 4);
  EXPECT_EQ(sim.Now(), 500u);  // all four in parallel
}

// --- PcmLog -----------------------------------------------------------------

TEST(PcmLogTest, AppendRecoverRoundTrip) {
  sim::Simulator sim;
  pcm::PcmDevice dev(&sim, pcm::PcmConfig{});
  core::PcmLog log(&sim, &dev, 0, 64 * kKiB);
  for (std::uint8_t i = 1; i <= 5; ++i) {
    log.Append(std::vector<std::uint8_t>(i, i), [](StatusOr<core::Lsn> r) {
      ASSERT_TRUE(r.ok());
    });
  }
  sim.Run();
  const auto records = log.RecoverAll();
  ASSERT_EQ(records.size(), 5u);
  for (std::uint8_t i = 1; i <= 5; ++i) {
    EXPECT_EQ(records[i - 1].size(), i);
    EXPECT_EQ(records[i - 1][0], i);
  }
}

TEST(PcmLogTest, LsnsAreMonotonic) {
  sim::Simulator sim;
  pcm::PcmDevice dev(&sim, pcm::PcmConfig{});
  core::PcmLog log(&sim, &dev, 0, 64 * kKiB);
  std::vector<core::Lsn> lsns;
  for (int i = 0; i < 4; ++i) {
    log.Append(std::vector<std::uint8_t>(16, 1),
               [&](StatusOr<core::Lsn> r) {
                 ASSERT_TRUE(r.ok());
                 lsns.push_back(*r);
               });
  }
  sim.Run();
  ASSERT_EQ(lsns.size(), 4u);
  for (std::size_t i = 1; i < lsns.size(); ++i) {
    EXPECT_GT(lsns[i], lsns[i - 1]);
  }
}

TEST(PcmLogTest, TruncateEmptiesLog) {
  sim::Simulator sim;
  pcm::PcmDevice dev(&sim, pcm::PcmConfig{});
  core::PcmLog log(&sim, &dev, 0, 64 * kKiB);
  log.Append({1, 2, 3}, [](StatusOr<core::Lsn>) {});
  sim.Run();
  log.Truncate([](Status st) { ASSERT_TRUE(st.ok()); });
  sim.Run();
  EXPECT_EQ(log.head(), 0u);
  EXPECT_TRUE(log.RecoverAll().empty());
}

TEST(PcmLogTest, FullRegionRejectsAppends) {
  sim::Simulator sim;
  pcm::PcmDevice dev(&sim, pcm::PcmConfig{});
  core::PcmLog log(&sim, &dev, 0, 64);  // tiny region
  int rejected = 0;
  for (int i = 0; i < 4; ++i) {
    log.Append(std::vector<std::uint8_t>(16, 1),
               [&](StatusOr<core::Lsn> r) {
                 rejected += r.status().IsResourceExhausted();
               });
  }
  sim.Run();
  EXPECT_EQ(rejected, 2);
  EXPECT_EQ(log.counters().Get("append_full"), 2u);
}

TEST(PcmLogTest, AppendLatencyIsTensOfNanoseconds) {
  sim::Simulator sim;
  pcm::PcmDevice dev(&sim, pcm::PcmConfig{});
  core::PcmLog log(&sim, &dev, 0, 64 * kKiB);
  log.Append(std::vector<std::uint8_t>(48, 1),
             [](StatusOr<core::Lsn>) {});
  sim.Run();
  EXPECT_LT(log.append_latency().max(), 2 * kMicrosecond);
}

TEST(PcmLogTest, RegionOffsetIsolatesLogs) {
  sim::Simulator sim;
  pcm::PcmDevice dev(&sim, pcm::PcmConfig{});
  core::PcmLog a(&sim, &dev, 0, 4 * kKiB);
  core::PcmLog b(&sim, &dev, 4 * kKiB, 4 * kKiB);
  a.Append({1}, [](StatusOr<core::Lsn>) {});
  b.Append({2}, [](StatusOr<core::Lsn>) {});
  sim.Run();
  ASSERT_EQ(a.RecoverAll().size(), 1u);
  ASSERT_EQ(b.RecoverAll().size(), 1u);
  EXPECT_EQ(a.RecoverAll()[0][0], 1);
  EXPECT_EQ(b.RecoverAll()[0][0], 2);
}

// --- Hdd ---------------------------------------------------------------------

blocklayer::IoResult RunHdd(sim::Simulator* sim, hdd::Hdd* dev,
                            blocklayer::IoRequest req) {
  blocklayer::IoResult out;
  bool fired = false;
  req.on_complete = [&](const blocklayer::IoResult& r) {
    out = r;
    fired = true;
  };
  dev->Submit(std::move(req));
  EXPECT_TRUE(sim->RunUntilPredicate([&] { return fired; }));
  return out;
}

TEST(HddTest, RoundTrip) {
  sim::Simulator sim;
  hdd::Hdd dev(&sim, hdd::HddConfig{});
  blocklayer::IoRequest w;
  w.op = blocklayer::IoOp::kWrite;
  w.lba = 100;
  w.nblocks = 2;
  w.tokens = {4, 5};
  ASSERT_TRUE(RunHdd(&sim, &dev, std::move(w)).status.ok());
  blocklayer::IoRequest r;
  r.op = blocklayer::IoOp::kRead;
  r.lba = 100;
  r.nblocks = 2;
  EXPECT_EQ(RunHdd(&sim, &dev, std::move(r)).tokens,
            (std::vector<std::uint64_t>{4, 5}));
}

TEST(HddTest, StreamingSkipsSeekAndRotation) {
  sim::Simulator sim;
  hdd::Hdd dev(&sim, hdd::HddConfig{});
  // After an IO ending at lba X, an IO starting at X is pure transfer.
  EXPECT_LT(dev.ServiceTime(0, 1), 100 * kMicrosecond);
  // Far-away random access costs seek + rotation: milliseconds.
  EXPECT_GT(dev.ServiceTime(dev.num_blocks() / 2, 1), 4 * kMillisecond);
}

TEST(HddTest, RandomIsOrdersOfMagnitudeSlowerThanSequential) {
  sim::Simulator sim;
  hdd::Hdd dev(&sim, hdd::HddConfig{});
  const SimTime far = dev.ServiceTime(dev.num_blocks() - 1, 1);
  const SimTime near = dev.ServiceTime(0, 1);
  EXPECT_GT(far, 50 * near);
}

TEST(HddTest, SingleActuatorSerializes) {
  sim::Simulator sim;
  hdd::Hdd dev(&sim, hdd::HddConfig{});
  int done = 0;
  for (int i = 0; i < 4; ++i) {
    blocklayer::IoRequest r;
    r.op = blocklayer::IoOp::kRead;
    r.lba = static_cast<Lba>(i * 1000000);
    r.nblocks = 1;
    r.on_complete = [&](const blocklayer::IoResult&) { ++done; };
    dev.Submit(std::move(r));
  }
  sim.Run();
  EXPECT_EQ(done, 4);
  EXPECT_GT(sim.Now(), 4 * 4 * kMillisecond);  // 4 seeks + rotations
}

TEST(HddTest, TrimIsNoOp) {
  sim::Simulator sim;
  hdd::Hdd dev(&sim, hdd::HddConfig{});
  blocklayer::IoRequest t;
  t.op = blocklayer::IoOp::kTrim;
  t.lba = 0;
  t.nblocks = 1;
  EXPECT_TRUE(RunHdd(&sim, &dev, std::move(t)).status.ok());
}

}  // namespace
}  // namespace postblock
