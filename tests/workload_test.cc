#include <map>
#include <memory>

#include <gtest/gtest.h>

#include "blocklayer/simple_device.h"
#include "sim/simulator.h"
#include "workload/db_trace.h"
#include "workload/patterns.h"
#include "workload/zipf.h"

namespace postblock::workload {
namespace {

TEST(ZipfTest, UniformWhenThetaZero) {
  ZipfGenerator z(100, 0.0);
  std::map<std::uint64_t, int> counts;
  for (int i = 0; i < 100000; ++i) counts[z.Next()]++;
  // Rough uniformity: most frequent < 2x least frequent bucket of 10.
  EXPECT_GT(counts.size(), 95u);
}

TEST(ZipfTest, SkewedWhenThetaHigh) {
  ZipfGenerator z(1000, 0.99);
  std::map<std::uint64_t, int> counts;
  for (int i = 0; i < 100000; ++i) counts[z.Next()]++;
  // Rank 0 dominates.
  EXPECT_GT(counts[0], 100000 / 50);
  EXPECT_GT(counts[0], counts[500] * 10);
}

TEST(ZipfTest, ValuesWithinRange) {
  ZipfGenerator z(37, 0.8);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(z.Next(), 37u);
}

TEST(PatternTest, SequentialWrapsAround) {
  SequentialPattern p(10, 4, /*is_write=*/false);
  EXPECT_EQ(p.Next().lba, 10u);
  EXPECT_EQ(p.Next().lba, 11u);
  EXPECT_EQ(p.Next().lba, 12u);
  EXPECT_EQ(p.Next().lba, 13u);
  EXPECT_EQ(p.Next().lba, 10u);  // wrapped
}

TEST(PatternTest, RandomStaysInRange) {
  RandomPattern p(100, 50, /*is_write=*/true);
  for (int i = 0; i < 1000; ++i) {
    const IoDesc d = p.Next();
    EXPECT_TRUE(d.is_write);
    EXPECT_GE(d.lba, 100u);
    EXPECT_LT(d.lba, 150u);
  }
}

TEST(PatternTest, RandomMultiBlockAligned) {
  RandomPattern p(0, 64, /*is_write=*/true, /*nblocks=*/8);
  for (int i = 0; i < 100; ++i) {
    const IoDesc d = p.Next();
    EXPECT_EQ(d.lba % 8, 0u);
    EXPECT_LE(d.lba + d.nblocks, 64u);
  }
}

TEST(PatternTest, StrideSteps) {
  StridedPattern p(0, 100, 10, false);
  EXPECT_EQ(p.Next().lba, 0u);
  EXPECT_EQ(p.Next().lba, 10u);
  EXPECT_EQ(p.Next().lba, 20u);
}

TEST(PatternTest, MixedRespectsWriteFraction) {
  auto reads = std::make_unique<RandomPattern>(0, 100, false);
  auto writes = std::make_unique<RandomPattern>(0, 100, true);
  MixedPattern p(std::move(reads), std::move(writes), 0.25);
  int w = 0;
  for (int i = 0; i < 10000; ++i) w += p.Next().is_write;
  EXPECT_NEAR(w / 10000.0, 0.25, 0.03);
}

TEST(RunClosedLoopTest, CompletesAllOpsAndMeasures) {
  sim::Simulator sim;
  blocklayer::SimpleDeviceConfig cfg;
  cfg.num_blocks = 1024;
  blocklayer::SimpleBlockDevice dev(&sim, cfg);
  SequentialPattern pattern(0, 512, /*is_write=*/true);
  const RunResult r = RunClosedLoop(&sim, &dev, &pattern, 200, 4);
  EXPECT_EQ(r.ops, 200u);
  EXPECT_EQ(r.blocks, 200u);
  EXPECT_EQ(r.errors, 0u);
  EXPECT_GT(r.elapsed_ns, 0u);
  EXPECT_GT(r.Iops(), 0.0);
  EXPECT_EQ(r.latency.count(), 200u);
}

TEST(RunClosedLoopTest, HigherQueueDepthRaisesThroughputOnParallelDevice) {
  blocklayer::SimpleDeviceConfig cfg;
  cfg.num_blocks = 4096;
  cfg.units = 8;
  auto iops = [&](std::uint32_t qd) {
    sim::Simulator sim;
    blocklayer::SimpleBlockDevice dev(&sim, cfg);
    RandomPattern pattern(0, 4096, false);
    return RunClosedLoop(&sim, &dev, &pattern, 2000, qd).Iops();
  };
  EXPECT_GT(iops(8), iops(1) * 3);
}

TEST(DbTraceTest, MixMatchesConfig) {
  DbTraceConfig cfg;
  cfg.put_fraction = 0.4;
  cfg.delete_fraction = 0.1;
  DbTrace trace(cfg);
  int puts = 0, dels = 0, gets = 0;
  for (int i = 0; i < 20000; ++i) {
    switch (trace.Next().kind) {
      case KvOp::Kind::kPut:
        ++puts;
        break;
      case KvOp::Kind::kDelete:
        ++dels;
        break;
      case KvOp::Kind::kGet:
        ++gets;
        break;
    }
  }
  EXPECT_NEAR(puts / 20000.0, 0.4, 0.03);
  EXPECT_NEAR(dels / 20000.0, 0.1, 0.02);
  EXPECT_NEAR(gets / 20000.0, 0.5, 0.03);
}

TEST(DbTraceTest, KeysWithinSpace) {
  DbTraceConfig cfg;
  cfg.key_space = 100;
  DbTrace trace(cfg);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(trace.Next().key, 100u);
}

TEST(DbTraceTest, TakeBatches) {
  DbTrace trace(DbTraceConfig{});
  EXPECT_EQ(trace.Take(57).size(), 57u);
}

}  // namespace
}  // namespace postblock::workload
