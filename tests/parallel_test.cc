// Tier A backend (ssd::ShardedFlashSim) and Tier B sweep harness
// (sim::ParallelRunner): determinism across worker counts on the
// fig2-class sharded workload, per-shard Rng domains, and the
// N-instances-on-N-threads == N-sequential-runs equality.

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "flash/rng_domain.h"
#include "sim/parallel_runner.h"
#include "ssd/config.h"
#include "ssd/device.h"
#include "ssd/shard_plan.h"
#include "ssd/sharded_backend.h"
#include "workload/patterns.h"

namespace postblock {
namespace {

ssd::Config BackendConfig() {
  ssd::Config config = ssd::Config::Small();
  config.geometry.channels = 4;
  config.geometry.luns_per_channel = 4;
  return config;
}

ssd::ShardedRunConfig SmallRun(std::uint32_t workers) {
  ssd::ShardedRunConfig run;
  run.workers = workers;
  run.ios_per_channel = 400;
  run.queue_depth_per_channel = 8;
  return run;
}

TEST(ShardPlanTest, DeclaresPerChannelSeamEdges) {
  const ssd::Config config = BackendConfig();
  const ssd::ShardPlan plan = ssd::ShardPlan::FromConfig(config);
  EXPECT_EQ(plan.num_shards, config.geometry.channels + 1);
  EXPECT_EQ(plan.controller_shard, config.geometry.channels);
  ASSERT_EQ(plan.channel_shard.size(), config.geometry.channels);
  // One dispatch + one completion edge per channel, each bounded below
  // by controller overhead + the coalescing grid.
  EXPECT_EQ(plan.edges.size(), 2u * config.geometry.channels);
  const SimTime floor = config.controller_overhead_ns;
  for (const ssd::ShardEdge& edge : plan.edges) {
    EXPECT_GT(edge.min_latency_ns, floor);
    EXPECT_TRUE(edge.from == plan.controller_shard ||
                edge.to == plan.controller_shard)
        << "chips on different channels must not talk directly";
  }
  EXPECT_EQ(plan.Lookahead(),
            std::min(plan.dispatch_ns, plan.complete_ns));
}

TEST(RngDomainTest, StreamsAreAFunctionOfIdAlone) {
  const flash::RngDomain domain(1234);
  // Drawing heavily from one domain must not move any other domain's
  // stream — the property sequential Rng::Fork chains do not have.
  Rng a0 = domain.ForDomain(0);
  Rng burn = domain.ForDomain(7);
  for (int i = 0; i < 1000; ++i) burn.Next();
  Rng a3 = domain.ForDomain(3);
  const std::uint64_t first3 = a3.Next();

  const flash::RngDomain same(1234);
  Rng b3 = same.ForDomain(3);
  EXPECT_EQ(b3.Next(), first3);
  Rng b0 = same.ForDomain(0);
  EXPECT_EQ(b0.Next(), a0.Next());
  // Distinct domains decorrelate.
  Rng c0 = same.ForDomain(0);
  Rng c1 = same.ForDomain(1);
  EXPECT_NE(c0.Next(), c1.Next());
}

TEST(ShardedBackendTest, RunsTheFig2ClassWorkload) {
  ssd::ShardedFlashSim sim(BackendConfig(), SmallRun(/*workers=*/0));
  sim.Run();
  EXPECT_EQ(sim.ios_completed(), 4u * 400u);
  EXPECT_EQ(sim.latency().count(), 4u * 400u);
  EXPECT_GT(sim.pages_read(), 0u);
  EXPECT_GT(sim.pages_programmed(), 0u);
  // The aged start (5% free) must have GC fighting during the run, and
  // GC traffic must exceed host programs alone.
  EXPECT_GT(sim.blocks_erased(), 0u);
  EXPECT_GT(sim.gc_page_moves(), 0u);
  EXPECT_GT(sim.engine()->messages_delivered(), 0u);
}

TEST(ShardedBackendTest, ByteIdenticalAcrossWorkerCounts) {
  // The tentpole acceptance bit, at test scale: the committed schedule
  // (engine fingerprints + every model observable) is identical at
  // 1/2/4/8 workers and on a second run at each count.
  std::uint64_t reference = 0;
  std::uint64_t reference_events = 0;
  {
    ssd::ShardedFlashSim sim(BackendConfig(), SmallRun(0));
    sim.Run();
    reference = sim.CombinedFingerprint();
    reference_events = sim.engine()->events_executed();
  }
  for (const std::uint32_t workers : {1u, 2u, 4u, 8u}) {
    for (int repeat = 0; repeat < 2; ++repeat) {
      ssd::ShardedFlashSim sim(BackendConfig(), SmallRun(workers));
      sim.Run();
      EXPECT_EQ(sim.CombinedFingerprint(), reference)
          << "workers=" << workers << " repeat=" << repeat;
      EXPECT_EQ(sim.engine()->events_executed(), reference_events)
          << "workers=" << workers << " repeat=" << repeat;
    }
  }
}

// --- Tier B: the multi-instance sweep harness --------------------------

/// A real full-stack job: builds its own Simulator + ssd::Device, runs
/// a small random-write burn-in, reports latency/WA. A pure function
/// of (seed) — the harness must reproduce it bit-for-bit on any
/// thread.
sim::SweepResult DeviceJob(std::uint64_t seed) {
  sim::Simulator simulator;
  ssd::Config config = ssd::Config::Small();
  config.seed = seed;
  ssd::Device device(&simulator, config);
  const std::uint64_t blocks = device.num_blocks();
  workload::RandomPattern pattern(0, blocks, /*is_write=*/true, 1,
                                  static_cast<std::uint32_t>(seed));
  const workload::RunResult run = workload::RunClosedLoop(
      &simulator, &device, &pattern, /*ops=*/300, /*queue_depth=*/4);
  simulator.Run();

  sim::SweepResult result;
  result.metrics.emplace_back("p50_ns",
                              static_cast<double>(run.latency.P50()));
  result.metrics.emplace_back("p99_ns",
                              static_cast<double>(run.latency.P99()));
  result.metrics.emplace_back("iops", run.Iops());
  result.metrics.emplace_back("wa", device.WriteAmplification());
  result.metrics.emplace_back("sim_end_ns",
                              static_cast<double>(simulator.Now()));
  return result;
}

std::vector<sim::SweepJob> DeviceJobs() {
  std::vector<sim::SweepJob> jobs;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    jobs.push_back(sim::SweepJob{
        "seed" + std::to_string(seed),
        [seed] { return DeviceJob(seed); }});
  }
  return jobs;
}

TEST(ParallelRunnerTest, NInstancesEqualNSequentialRuns) {
  const std::vector<sim::SweepResult> sequential =
      sim::ParallelRunner(1).RunAll(DeviceJobs());
  const std::vector<sim::SweepResult> parallel =
      sim::ParallelRunner(4).RunAll(DeviceJobs());

  ASSERT_EQ(sequential.size(), parallel.size());
  for (std::size_t i = 0; i < sequential.size(); ++i) {
    EXPECT_EQ(parallel[i].name, sequential[i].name);
    EXPECT_TRUE(parallel[i].ok);
    ASSERT_EQ(parallel[i].metrics.size(), sequential[i].metrics.size());
    for (std::size_t m = 0; m < sequential[i].metrics.size(); ++m) {
      EXPECT_EQ(parallel[i].metrics[m].first,
                sequential[i].metrics[m].first);
      // Bitwise double equality: a worker thread must not change one
      // bit of an independent instance's result.
      EXPECT_EQ(parallel[i].metrics[m].second,
                sequential[i].metrics[m].second)
          << parallel[i].name << "." << parallel[i].metrics[m].first;
    }
  }
}

TEST(ParallelRunnerTest, ResultsStayInJobOrderAndErrorsAreIsolated) {
  std::vector<sim::SweepJob> jobs;
  jobs.push_back(sim::SweepJob{"ok1", [] {
    sim::SweepResult r;
    r.metrics.emplace_back("v", 1.0);
    return r;
  }});
  jobs.push_back(sim::SweepJob{"boom", []() -> sim::SweepResult {
    throw std::runtime_error("injected failure");
  }});
  jobs.push_back(sim::SweepJob{"ok2", [] {
    sim::SweepResult r;
    r.metrics.emplace_back("v", 2.0);
    return r;
  }});

  const auto results = sim::ParallelRunner(3).RunAll(std::move(jobs));
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0].name, "ok1");
  EXPECT_TRUE(results[0].ok);
  EXPECT_EQ(results[1].name, "boom");
  EXPECT_FALSE(results[1].ok);
  EXPECT_EQ(results[1].error, "injected failure");
  EXPECT_EQ(results[2].name, "ok2");
  EXPECT_TRUE(results[2].ok);
  EXPECT_EQ(results[2].metrics[0].second, 2.0);
}

TEST(ParallelRunnerTest, SweepReportJsonShape) {
  sim::SweepResult r;
  r.name = "point\"a\"";
  r.metrics.emplace_back("iops", 1250.5);
  r.note = "aged";
  const std::string json = sim::ParallelRunner::SweepReportJson(
      {r}, "\"git_sha\": \"test\"");
  EXPECT_NE(json.find("\"meta\": {\"git_sha\": \"test\"}"),
            std::string::npos);
  EXPECT_NE(json.find("\"name\": \"point\\\"a\\\"\""), std::string::npos);
  EXPECT_NE(json.find("\"iops\": 1250.5"), std::string::npos);
  EXPECT_NE(json.find("\"note\": \"aged\""), std::string::npos);
  EXPECT_NE(json.find("\"ok\": true"), std::string::npos);
}

}  // namespace
}  // namespace postblock
