// Determinism gates for the full ssd::Device on the sharded engine:
// the committed schedule (engine fingerprint) and every model
// observable folded into ShardedDeviceSim::ModelFingerprint() must be
// byte-identical across worker counts {0, 1, 2, 4} and across repeated
// runs — with GC active, with scripted faults, and with per-shard
// trace rings attached. This is gate 7's engine-level invariant
// extended to the real controller/FTL/channel stack (gate 10 holds the
// same bit at bench scale in scripts/check_perf.sh).

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "flash/fault_injector.h"
#include "ssd/config.h"
#include "ssd/sharded_device.h"

namespace postblock::ssd {
namespace {

Config TestConfig() {
  Config c;
  c.geometry.channels = 4;
  c.geometry.luns_per_channel = 2;
  c.geometry.planes_per_lun = 1;
  c.geometry.blocks_per_plane = 24;
  c.geometry.pages_per_block = 16;
  c.geometry.page_size_bytes = 4096;
  return c;
}

ShardedDeviceRun TestRun(std::uint32_t workers) {
  ShardedDeviceRun run;
  run.workers = workers;
  run.queue_depth = 16;
  run.total_ios = 3000;
  run.write_percent = 40;  // overwrite-heavy: GC must relocate
  run.fill_fraction = 0.7;
  run.seed = 0xc0ffee;
  return run;
}

struct Digest {
  std::uint64_t model;
  std::uint64_t combined;
  std::uint64_t events;
  bool operator==(const Digest& o) const {
    return model == o.model && combined == o.combined &&
           events == o.events;
  }
};

Digest RunOnce(const Config& config, const ShardedDeviceRun& run,
               double* wa = nullptr) {
  ShardedDeviceSim sim(config, run);
  sim.Run();
  EXPECT_EQ(sim.io_errors(), 0u);
  if (wa != nullptr) *wa = sim.device()->WriteAmplification();
  return Digest{sim.ModelFingerprint(), sim.CombinedFingerprint(),
                sim.engine()->events_executed()};
}

TEST(ShardedDeviceTest, ScheduleInvariantAcrossWorkerCounts) {
  const Config config = TestConfig();
  double wa = 0.0;
  const Digest reference = RunOnce(config, TestRun(0), &wa);
  // The workload must actually exercise GC relocation across the seam,
  // or the invariance claim is vacuous for the interesting traffic.
  EXPECT_GT(wa, 1.0);
  for (std::uint32_t workers : {1u, 2u, 4u}) {
    EXPECT_EQ(RunOnce(config, TestRun(workers)), reference)
        << "workers=" << workers;
  }
}

TEST(ShardedDeviceTest, RunTwiceIsIdentical) {
  const Config config = TestConfig();
  EXPECT_EQ(RunOnce(config, TestRun(2)), RunOnce(config, TestRun(2)));
}

// Scripted faults (retry ladders re-crossing the dispatch edge, a
// stuck-busy die, a retiring erase) and per-shard trace rings attached:
// both must stay worker-count invariant. The injector's scripts are
// consumed state, so each run gets a fresh one.
TEST(ShardedDeviceTest, FaultsAndTracingStayInvariant) {
  const Config base = TestConfig();
  auto digest_at = [&base](std::uint32_t workers) {
    flash::FaultInjector injector(base.geometry);
    // First two read attempts of a hot PPA fail -> two retry rungs.
    const flash::Ppa hot{0, 0, 0, 0, 0};
    injector.FailRead(hot, {1, 2});
    // A die that answers slowly for a while on another channel.
    injector.StuckBusy(/*global_lun=*/5, /*extra_ns=*/40000, /*ops=*/20);
    Config config = base;
    config.fault_injector = &injector;
    ShardedDeviceRun run = TestRun(workers);
    run.tracing = true;
    run.total_ios = 2000;
    return RunOnce(config, run);
  };
  const Digest reference = digest_at(0);
  for (std::uint32_t workers : {1u, 2u, 4u}) {
    EXPECT_EQ(digest_at(workers), reference) << "workers=" << workers;
  }
}

// The plan prices both seam directions at controller overhead plus the
// coalescing grid, and the engine must run with exactly that lookahead.
TEST(ShardedDeviceTest, PlanPricesTheSeam) {
  const Config config = TestConfig();
  ShardedDeviceSim sim(config, TestRun(0));
  const ShardPlan& plan = sim.plan();
  EXPECT_EQ(plan.num_shards, config.geometry.channels + 1);
  EXPECT_EQ(plan.controller_shard, config.geometry.channels);
  EXPECT_EQ(plan.Lookahead(), sim.engine()->config().lookahead);
  EXPECT_EQ(plan.dispatch_ns,
            config.controller_overhead_ns + TestRun(0).seam_coalesce_ns);
}

}  // namespace
}  // namespace postblock::ssd
