// src/obs: engine profiler and SLO watchdog. The load-bearing
// properties: the profiler's wall buckets tile every window exactly
// (time conservation), attaching either instrument is
// schedule-byte-identical, the watchdog's breach stream is
// deterministic across reruns, and both exports (Perfetto timeline,
// JSON reports) round-trip — including names that need JSON escaping.

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bench/bench_util.h"
#include "common/json.h"
#include "metrics/metrics.h"
#include "metrics/sampler.h"
#include "obs/engine_profiler.h"
#include "obs/slo_watchdog.h"
#include "sim/simulator.h"
#include "ssd/config.h"
#include "ssd/device.h"
#include "ssd/sharded_backend.h"
#include "trace/chrome_trace.h"
#include "trace/trace.h"
#include "trace/tracer.h"
#include "workload/patterns.h"

namespace postblock {
namespace {

ssd::Config EngineConfig() {
  ssd::Config config = ssd::Config::Small();
  config.geometry.channels = 4;
  config.geometry.luns_per_channel = 4;
  return config;
}

ssd::ShardedRunConfig SmallRun(std::uint32_t workers,
                               obs::EngineProfiler* profiler) {
  ssd::ShardedRunConfig run;
  run.workers = workers;
  run.ios_per_channel = 400;
  run.queue_depth_per_channel = 8;
  run.observer = profiler;
  return run;
}

// --- EngineProfiler ---------------------------------------------------------

TEST(EngineProfilerTest, WallBucketsTileEveryWindowExactly) {
  obs::EngineProfilerConfig pc;
  pc.max_window_records = 1 << 20;  // retain every window of this run
  pc.sample_every = 1;              // exhaustive: observe all windows
  obs::EngineProfiler profiler(pc);
  ssd::ShardedFlashSim sim(EngineConfig(), SmallRun(2, &profiler));
  sim.Run();

  ASSERT_GT(profiler.windows_observed(), 0u);
  // The run is small enough that the ring retained every window; the
  // folded totals and the ring must describe the same history.
  ASSERT_EQ(profiler.windows_dropped(), 0u);
  ASSERT_EQ(profiler.windows().size(), profiler.windows_observed());
  const std::uint32_t shards = profiler.shards();
  ASSERT_EQ(shards, EngineConfig().geometry.channels + 1);

  // Per shard: busy + idle + barrier telescopes to the sum of window
  // wall spans, exactly — the conservation identity.
  std::uint64_t span_sum = 0;
  std::vector<std::uint64_t> busy(shards), idle(shards), barrier(shards),
      events(shards);
  for (const obs::WindowRecord& w : profiler.windows()) {
    ASSERT_EQ(w.shards.size(), shards);
    ASSERT_LE(w.wall_begin_ns, w.wall_end_ns);
    span_sum += w.wall_end_ns - w.wall_begin_ns;
    for (std::uint32_t s = 0; s < shards; ++s) {
      const obs::WindowRecord::ShardSpan& sp = w.shards[s];
      ASSERT_LE(w.wall_begin_ns, sp.wall_begin_ns);
      ASSERT_LE(sp.wall_begin_ns, sp.wall_end_ns);
      ASSERT_LE(sp.wall_end_ns, w.wall_end_ns);
      idle[s] += sp.wall_begin_ns - w.wall_begin_ns;
      busy[s] += sp.wall_end_ns - sp.wall_begin_ns;
      barrier[s] += w.wall_end_ns - sp.wall_end_ns;
      events[s] += sp.events;
    }
  }
  EXPECT_EQ(profiler.total_window_wall_ns(), span_sum);
  std::uint64_t total_events = 0;
  for (std::uint32_t s = 0; s < shards; ++s) {
    const obs::ShardProfile& p = profiler.shard_profiles()[s];
    EXPECT_EQ(p.busy_wall_ns, busy[s]) << "shard " << s;
    EXPECT_EQ(p.idle_wall_ns, idle[s]) << "shard " << s;
    EXPECT_EQ(p.barrier_wall_ns, barrier[s]) << "shard " << s;
    EXPECT_EQ(p.events, events[s]) << "shard " << s;
    EXPECT_EQ(p.busy_wall_ns + p.idle_wall_ns + p.barrier_wall_ns,
              span_sum)
        << "shard " << s << ": buckets must tile the window spans";
    total_events += p.events;
  }
  // Every committed event was attributed to exactly one shard-window.
  EXPECT_EQ(total_events, sim.engine()->events_executed());
  // Seam traffic flowed and was attributed in the flow matrix.
  EXPECT_EQ(profiler.messages(), sim.engine()->messages_delivered());
  std::uint64_t matrix_sum = 0;
  for (const std::uint64_t v : profiler.message_matrix()) matrix_sum += v;
  EXPECT_EQ(matrix_sum, profiler.messages());
  EXPECT_GT(profiler.slack_hist().count(), 0u);
}

TEST(EngineProfilerTest, SamplingObservesEveryNthWindowExactly) {
  // Reference: exhaustive capture of the same (deterministic) run.
  obs::EngineProfilerConfig full;
  full.sample_every = 1;
  obs::EngineProfiler exhaustive(full);
  ssd::ShardedFlashSim ref(EngineConfig(), SmallRun(0, &exhaustive));
  ref.Run();

  obs::EngineProfilerConfig pc;
  pc.sample_every = 4;
  obs::EngineProfiler profiler(pc);
  ssd::ShardedFlashSim sim(EngineConfig(), SmallRun(0, &profiler));
  sim.Run();

  // Sampling is invisible to the schedule...
  EXPECT_EQ(sim.CombinedFingerprint(), ref.CombinedFingerprint());
  EXPECT_EQ(sim.engine()->rounds(), ref.engine()->rounds());
  // ...and observes windows 1, 5, 9, ... — ceil(rounds / 4) of them
  // (the first window always samples).
  const std::uint64_t rounds = sim.engine()->rounds();
  EXPECT_EQ(exhaustive.windows_observed(), rounds);
  EXPECT_EQ(profiler.windows_observed(), (rounds + 3) / 4);
  ASSERT_GT(profiler.windows_observed(), 0u);

  // Conservation still tiles exactly over the sampled set, and the
  // flow matrix matches the OnMessage stream it actually saw.
  for (const obs::ShardProfile& p : profiler.shard_profiles()) {
    EXPECT_EQ(p.busy_wall_ns + p.idle_wall_ns + p.barrier_wall_ns,
              profiler.total_window_wall_ns());
  }
  EXPECT_LT(profiler.messages(), exhaustive.messages());
  std::uint64_t matrix_sum = 0;
  for (const std::uint64_t v : profiler.message_matrix()) matrix_sum += v;
  EXPECT_EQ(matrix_sum, profiler.messages());
}

TEST(EngineProfilerTest, AttachingIsScheduleByteIdentical) {
  ssd::ShardedFlashSim bare(EngineConfig(), SmallRun(0, nullptr));
  bare.Run();
  const std::uint64_t want_fp = bare.CombinedFingerprint();
  const std::uint64_t want_ev = bare.engine()->events_executed();

  for (const std::uint32_t workers : {0u, 2u}) {
    obs::EngineProfiler profiler;
    ssd::ShardedFlashSim sim(EngineConfig(), SmallRun(workers, &profiler));
    sim.Run();
    EXPECT_EQ(sim.CombinedFingerprint(), want_fp) << "workers=" << workers;
    EXPECT_EQ(sim.engine()->events_executed(), want_ev)
        << "workers=" << workers;
  }
}

TEST(EngineProfilerTest, ChromeJsonRoundTripsThroughTheReParser) {
  obs::EngineProfiler profiler;
  ssd::ShardedFlashSim sim(EngineConfig(), SmallRun(2, &profiler));
  sim.Run();

  std::vector<trace::ParsedEvent> events;
  ASSERT_TRUE(trace::ParseChromeTrace(profiler.ToChromeJson(), &events));

  std::uint64_t window_x = 0, shard_x = 0;
  bool saw_process_meta = false;
  for (const trace::ParsedEvent& e : events) {
    EXPECT_EQ(e.pid, trace::kPidEngineWall);
    if (e.ph == 'M' && e.meta_name == "engine-wall") saw_process_meta = true;
    if (e.ph != 'X') continue;
    if (e.tid == 0) {
      EXPECT_EQ(e.name, "window");
      ++window_x;
    } else {
      ASSERT_LE(e.tid, profiler.shards());
      EXPECT_TRUE(e.name == "busy" || e.name == "idle") << e.name;
      ++shard_x;
    }
  }
  EXPECT_TRUE(saw_process_meta);
  EXPECT_EQ(window_x, profiler.windows().size());
  EXPECT_EQ(shard_x, profiler.windows().size() * profiler.shards());
}

TEST(EngineProfilerTest, MergedJsonKeepsBothPidSpaces) {
  obs::EngineProfiler profiler;
  ssd::ShardedFlashSim sim(EngineConfig(), SmallRun(0, &profiler));
  sim.Run();

  // A sim-time trace with one marker on a flash-pid track.
  trace::Tracer tracer(64);
  tracer.set_enabled(true);
  const std::uint32_t track =
      tracer.RegisterTrack(trace::kPidFlash, "health");
  tracer.Mark(trace::Stage::kSlo, trace::Origin::kMeta, 1, track, 1000);

  std::vector<trace::ParsedEvent> events;
  ASSERT_TRUE(trace::ParseChromeTrace(
      profiler.MergedChromeJson(trace::ToChromeJson(tracer)), &events));
  bool saw_wall = false, saw_sim = false;
  for (const trace::ParsedEvent& e : events) {
    if (e.pid == trace::kPidEngineWall) saw_wall = true;
    if (e.pid == trace::kPidFlash) saw_sim = true;
  }
  EXPECT_TRUE(saw_wall);
  EXPECT_TRUE(saw_sim);
}

TEST(EngineProfilerTest, ReportJsonCarriesMetaAndTotals) {
  obs::EngineProfiler profiler;
  ssd::ShardedFlashSim sim(EngineConfig(), SmallRun(0, &profiler));
  sim.Run();
  const ssd::Config config = EngineConfig();
  const std::string report =
      profiler.ReportJson(bench::MetaJsonFields(&config, /*workers=*/0));
  EXPECT_NE(report.find("\"git_sha\""), std::string::npos);
  EXPECT_NE(report.find("\"shards\""), std::string::npos);
  EXPECT_NE(report.find("\"lookahead_slack_ns\""), std::string::npos);
  EXPECT_NE(report.find("\"message_matrix\""), std::string::npos);
}

// --- SloWatchdog ------------------------------------------------------------

struct WatchRun {
  std::uint64_t breaches = 0;
  std::uint64_t digest = 0;
  std::uint64_t marks = 0;
  std::uint64_t unresolved = 0;
  std::vector<obs::SloBreach> events;
};

WatchRun RunWatchdogOnce() {
  sim::Simulator sim;
  metrics::MetricRegistry registry;
  trace::Tracer tracer(1 << 12);
  tracer.set_enabled(true);
  ssd::Config config = ssd::Config::Small();
  config.metrics = &registry;
  ssd::Device device(&sim, config);
  const std::uint64_t n = device.num_blocks();
  bench::FillSequential(&sim, &device, n);

  obs::SloWatchdog watchdog(std::vector<obs::SloSpec>{
      {"read p99 (intentional breach)", "dev.read_lat_ns",
       obs::SloKind::kMaxP99, 1.0, /*min_window_count=*/1},
      {"throughput floor (intentional breach)", "dev.completions",
       obs::SloKind::kMinThroughput, 1e12},
      {"missing metric", "no.such.metric", obs::SloKind::kMaxGauge, 1.0},
  });
  watchdog.AttachTrace(&tracer,
                       tracer.RegisterTrack(trace::kPidFlash, "health"));

  metrics::Sampler sampler(&sim, &registry, 1'000'000);
  sampler.set_observer(&watchdog);
  sampler.Start();
  workload::RandomPattern reads(0, n, /*is_write=*/false, 1, 8);
  (void)workload::RunClosedLoop(&sim, &device, &reads, 2000, 4);
  sim.Run();
  sampler.Stop();

  WatchRun out;
  out.breaches = watchdog.total_breaches();
  out.digest = watchdog.Digest();
  out.unresolved = watchdog.unresolved_specs();
  out.events = watchdog.breaches();
  tracer.ForEach([&](const trace::TraceEvent& e) {
    if (e.stage == trace::Stage::kSlo) ++out.marks;
  });
  return out;
}

TEST(SloWatchdogTest, BreachStreamIsDeterministicAcrossReruns) {
  const WatchRun a = RunWatchdogOnce();
  const WatchRun b = RunWatchdogOnce();
  EXPECT_GT(a.breaches, 0u) << "the 1ns p99 bound must breach";
  EXPECT_EQ(a.breaches, b.breaches);
  EXPECT_EQ(a.digest, b.digest);
  ASSERT_EQ(a.events.size(), b.events.size());
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].slo, b.events[i].slo) << i;
    EXPECT_EQ(a.events[i].at, b.events[i].at) << i;
    EXPECT_EQ(a.events[i].observed, b.events[i].observed) << i;
  }
}

TEST(SloWatchdogTest, BreachesLandOnTheHealthTrackAsSloMarkers) {
  const WatchRun a = RunWatchdogOnce();
  EXPECT_EQ(a.marks, a.breaches);
}

TEST(SloWatchdogTest, UnresolvedSpecIsReportedNotFatal) {
  const WatchRun a = RunWatchdogOnce();
  EXPECT_EQ(a.unresolved, 1u);
}

TEST(SloWatchdogTest, GaugeAndQuietSpecsDoNotBreach) {
  // A spec whose bound comfortably holds must record zero breaches.
  sim::Simulator sim;
  metrics::MetricRegistry registry;
  ssd::Config config = ssd::Config::Small();
  config.metrics = &registry;
  ssd::Device device(&sim, config);
  const std::uint64_t n = device.num_blocks();

  obs::SloWatchdog watchdog(std::vector<obs::SloSpec>{
      {"loose p99", "dev.read_lat_ns", obs::SloKind::kMaxP99, 1e15},
      {"loose floor", "dev.completions", obs::SloKind::kMinThroughput, 1.0},
  });
  metrics::Sampler sampler(&sim, &registry, 1'000'000);
  sampler.set_observer(&watchdog);
  sampler.Start();
  workload::RandomPattern reads(0, n, /*is_write=*/false, 1, 3);
  (void)workload::RunClosedLoop(&sim, &device, &reads, 500, 2);
  sim.Run();
  sampler.Stop();
  EXPECT_EQ(watchdog.total_breaches(), 0u);
  EXPECT_EQ(watchdog.unresolved_specs(), 0u);
}

TEST(SloWatchdogTest, ReportJsonEscapesSpecNames) {
  obs::SloWatchdog watchdog(std::vector<obs::SloSpec>{
      {"quoted \"name\"", "no.such.metric", obs::SloKind::kMaxGauge, 1.0},
  });
  const std::string report = watchdog.ReportJson();
  EXPECT_NE(report.find("quoted \\\"name\\\""), std::string::npos);
  EXPECT_EQ(report.find("quoted \"name\""), std::string::npos);
}

// --- Satellite: JSON/CSV escaping of user-supplied names --------------------

TEST(JsonEscapeTest, EscapesQuotesBackslashesAndControlChars) {
  EXPECT_EQ(JsonEscaped("plain"), "plain");
  EXPECT_EQ(JsonEscaped("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscaped("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscaped("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(JsonEscaped(std::string("a\x01") + "b"), "a\\u0001b");
}

TEST(CsvEscapeTest, QuotesOnlyWhenNeeded) {
  EXPECT_EQ(CsvEscaped("plain"), "plain");
  EXPECT_EQ(CsvEscaped("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvEscaped("a\"b"), "\"a\"\"b\"");
  EXPECT_EQ(CsvEscaped("a\nb"), "\"a\nb\"");
}

TEST(JsonEscapeTest, TracerTrackNamesSurviveExport) {
  trace::Tracer tracer(16);
  tracer.set_enabled(true);
  tracer.RegisterTrack(trace::kPidFlash, "tenant \"a\"\\weird");
  const std::string json = trace::ToChromeJson(tracer);
  // The raw quote must never appear unescaped inside the emitted name.
  EXPECT_NE(json.find("tenant \\\"a\\\"\\\\weird"), std::string::npos);
  std::vector<trace::ParsedEvent> events;
  EXPECT_TRUE(trace::ParseChromeTrace(json, &events));
}

// --- metrics::SampleObserver seam -------------------------------------------

TEST(SampleObserverTest, OneCallPerRowInOrder) {
  struct Recorder final : metrics::SampleObserver {
    std::vector<std::size_t> rows;
    void OnSample(const metrics::TimeSeries& series,
                  std::size_t row) override {
      ASSERT_EQ(row + 1, series.rows());
      rows.push_back(row);
    }
  };
  sim::Simulator sim;
  metrics::MetricRegistry registry;
  ssd::Config config = ssd::Config::Small();
  config.metrics = &registry;
  ssd::Device device(&sim, config);
  const std::uint64_t n = device.num_blocks();

  Recorder recorder;
  metrics::Sampler sampler(&sim, &registry, 1'000'000);
  sampler.set_observer(&recorder);
  sampler.Start();
  workload::SequentialPattern fill(0, n, /*is_write=*/true);
  (void)workload::RunClosedLoop(&sim, &device, &fill, n / 2, 4);
  sim.Run();
  sampler.Stop();

  ASSERT_EQ(recorder.rows.size(), sampler.series().rows());
  for (std::size_t i = 0; i < recorder.rows.size(); ++i) {
    EXPECT_EQ(recorder.rows[i], i);
  }
}

}  // namespace
}  // namespace postblock
