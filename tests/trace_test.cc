// Cross-layer latency-attribution subsystem (src/trace/) tests.
//
// Covers the tracer core (ring wraparound, disabled behavior, the
// drop-proof breakdown), the Chrome trace-event exporter round-trip,
// and the whole-stack contracts: stage spans tile each host IO exactly,
// GC-stall spans sum to the controller's always-on stall counters
// (the fig2 interference experiment), tracing never perturbs the
// simulated schedule, and spans propagate from the block layer down.

#include <map>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "blocklayer/block_layer.h"
#include "sim/simulator.h"
#include "ssd/device.h"
#include "trace/chrome_trace.h"
#include "trace/tracer.h"
#include "workload/patterns.h"

namespace postblock {
namespace {

using trace::Origin;
using trace::Stage;
using trace::TraceEvent;
using trace::Tracer;

// --- Tracer core ------------------------------------------------------------

TEST(TracerRingTest, WraparoundKeepsNewestEvents) {
  Tracer tracer(50);  // rounds up to 64
  tracer.set_enabled(true);
  EXPECT_EQ(tracer.capacity(), 64u);

  const std::uint32_t track = tracer.RegisterTrack(trace::kPidHost, "t");
  for (std::uint64_t i = 0; i < 200; ++i) {
    tracer.Record(Stage::kCellOp, Origin::kHostRead, /*span=*/i + 1,
                  /*parent=*/0, track, /*start=*/i * 10,
                  /*end=*/i * 10 + 5, /*arg=*/i);
  }
  EXPECT_EQ(tracer.total_recorded(), 200u);
  EXPECT_EQ(tracer.dropped(), 200u - 64u);
  EXPECT_EQ(tracer.size(), 64u);

  // ForEach visits the retained (newest) events oldest-first.
  std::uint64_t expect_arg = tracer.dropped();
  tracer.ForEach([&](const TraceEvent& e) {
    EXPECT_EQ(e.arg, expect_arg);
    EXPECT_EQ(e.span, expect_arg + 1);
    ++expect_arg;
  });
  EXPECT_EQ(expect_arg, 200u);
}

TEST(TracerRingTest, DisabledTracerRecordsNothingAndMintsNoSpans) {
  Tracer tracer(64);
  EXPECT_FALSE(tracer.enabled());
  EXPECT_EQ(tracer.NewSpan(), 0u);
  tracer.Record(Stage::kIo, Origin::kHostWrite, 1, 0, 0, 0, 100);
  tracer.Mark(Stage::kSchedule, Origin::kHostWrite, 1, 0, 50);
  EXPECT_EQ(tracer.total_recorded(), 0u);
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_EQ(tracer.breakdown().Count(Stage::kIo), 0u);

  tracer.set_enabled(true);
  EXPECT_EQ(tracer.NewSpan(), 1u);
  tracer.Record(Stage::kIo, Origin::kHostWrite, 1, 0, 0, 0, 100);
  EXPECT_EQ(tracer.total_recorded(), 1u);
}

TEST(TracerRingTest, BreakdownSurvivesRingWraparound) {
  Tracer tracer(16);
  tracer.set_enabled(true);
  std::uint64_t expect_total = 0;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    const std::uint64_t dur = 1 + i % 7;
    tracer.Record(Stage::kTransfer, Origin::kGc, i + 1, 0, 0, 0, dur);
    expect_total += dur;
  }
  ASSERT_GT(tracer.dropped(), 0u);
  // The ring truncates the timeline; the aggregate must not.
  EXPECT_EQ(tracer.breakdown().Count(Stage::kTransfer), 1000u);
  EXPECT_EQ(tracer.breakdown().TotalNs(Stage::kTransfer, Origin::kGc),
            expect_total);
}

// --- Chrome trace exporter round-trip ---------------------------------------

TEST(ChromeTraceTest, RoundTripPreservesEventsTracksAndOrder) {
  Tracer tracer(1 << 10);
  tracer.set_enabled(true);
  const std::uint32_t host = tracer.RegisterTrack(trace::kPidHost, "blkq-0");
  const std::uint32_t lun = tracer.RegisterTrack(trace::kPidFlash, "lun-0.0");

  tracer.Record(Stage::kIo, Origin::kHostRead, /*span=*/7, 0, host,
                /*start=*/1000, /*end=*/26000, /*arg=*/42);
  tracer.Record(Stage::kCellOp, Origin::kHostRead, 7, 0, lun, 2000, 22000,
                /*arg=*/9);
  tracer.Record(Stage::kTransfer, Origin::kGc, /*span=*/8, /*parent=*/7,
                lun, 22000, 24500);

  std::vector<trace::ParsedEvent> events;
  ASSERT_TRUE(trace::ParseChromeTrace(trace::ToChromeJson(tracer), &events));

  // Metadata: a process_name per pid and a thread_name per track.
  std::map<std::pair<std::uint64_t, std::uint64_t>, std::string> threads;
  std::map<std::uint64_t, std::string> processes;
  std::vector<trace::ParsedEvent> xs;
  for (const auto& e : events) {
    if (e.ph == 'M' && e.name == "thread_name") {
      threads[{e.pid, e.tid}] = e.meta_name;
    } else if (e.ph == 'M' && e.name == "process_name") {
      processes[e.pid] = e.meta_name;
    } else if (e.ph == 'X') {
      xs.push_back(e);
    }
  }
  EXPECT_EQ(processes[trace::kPidHost], "host");
  EXPECT_EQ(processes[trace::kPidFlash], "flash");
  ASSERT_EQ(tracer.tracks().size(), 2u);
  const auto& t0 = tracer.tracks()[host];
  const auto& t1 = tracer.tracks()[lun];
  EXPECT_EQ((threads[{t0.pid, t0.tid}]), "blkq-0");
  EXPECT_EQ((threads[{t1.pid, t1.tid}]), "lun-0.0");

  // Every retained event exports as one "X" with ts/dur in us, in
  // recording (oldest-first) order, span/parent/arg intact.
  ASSERT_EQ(xs.size(), tracer.size());
  EXPECT_EQ(xs[0].name, "io");
  EXPECT_EQ(xs[0].cat, "host_read");
  EXPECT_DOUBLE_EQ(xs[0].ts_us, 1.0);
  EXPECT_DOUBLE_EQ(xs[0].dur_us, 25.0);
  EXPECT_EQ(xs[0].pid, t0.pid);
  EXPECT_EQ(xs[0].tid, t0.tid);
  EXPECT_EQ(xs[0].span, 7u);
  EXPECT_EQ(xs[0].arg, 42u);
  EXPECT_EQ(xs[1].name, "cell_op");
  EXPECT_EQ(xs[1].pid, t1.pid);
  EXPECT_EQ(xs[2].name, "transfer");
  EXPECT_EQ(xs[2].cat, "gc");
  EXPECT_EQ(xs[2].span, 8u);
  EXPECT_EQ(xs[2].parent, 7u);
  EXPECT_DOUBLE_EQ(xs[2].dur_us, 2.5);
}

TEST(ChromeTraceTest, RoundTripAfterWraparound) {
  Tracer tracer(64);
  tracer.set_enabled(true);
  const std::uint32_t track = tracer.RegisterTrack(trace::kPidFlash, "ch");
  for (std::uint64_t i = 0; i < 500; ++i) {
    tracer.Record(Stage::kTransfer, Origin::kHostWrite, i + 1, 0, track,
                  i * 100, i * 100 + 50, /*arg=*/i);
  }
  std::vector<trace::ParsedEvent> events;
  ASSERT_TRUE(trace::ParseChromeTrace(trace::ToChromeJson(tracer), &events));
  std::vector<trace::ParsedEvent> xs;
  for (const auto& e : events) {
    if (e.ph == 'X') xs.push_back(e);
  }
  // Only the newest `capacity` events survive, still oldest-first.
  ASSERT_EQ(xs.size(), 64u);
  EXPECT_EQ(xs.front().arg, 500u - 64u);
  EXPECT_EQ(xs.back().arg, 499u);
  for (std::size_t i = 1; i < xs.size(); ++i) {
    EXPECT_EQ(xs[i].arg, xs[i - 1].arg + 1);
  }
}

// --- Whole-stack contracts --------------------------------------------------

// Drives `ops` random single-page IOs (QD `depth`) against `device`.
void RunRandom(sim::Simulator* sim, blocklayer::BlockDevice* device,
               bool writes, std::uint64_t ops, std::uint32_t depth,
               std::uint64_t seed) {
  workload::RandomPattern pattern(0, device->num_blocks(), writes, 1, seed);
  const auto r = workload::RunClosedLoop(sim, device, &pattern, ops, depth);
  ASSERT_EQ(r.errors, 0u);
}

// Ages a device past its first GC: sequential fill + random overwrite
// churn of twice the logical space.
void Age(sim::Simulator* sim, blocklayer::BlockDevice* device) {
  const std::uint64_t n = device->num_blocks();
  workload::SequentialPattern fill(0, n, /*is_write=*/true);
  (void)workload::RunClosedLoop(sim, device, &fill, n, 8);
  RunRandom(sim, device, /*writes=*/true, 2 * n, 8, /*seed=*/99);
}

// For a single-page unbuffered host IO the stage spans tile
// [submit, complete) exactly: queue waits, GC stalls, firmware
// admission, FTL mapping, bus transfers and array ops account for every
// nanosecond of the root kIo span. This is the subsystem's core
// accuracy contract — no hidden time, no double counting.
TEST(TraceStackTest, StageSpansTileEachHostIoExactly) {
  Tracer tracer(1 << 20);
  tracer.set_enabled(true);

  sim::Simulator sim;
  ssd::Config cfg = ssd::Config::Small();
  cfg.write_buffer.pages = 0;  // unbuffered: spans reach the flash
  cfg.tracer = &tracer;
  ssd::Device device(&sim, cfg);

  Age(&sim, &device);  // GC live -> kGcStall spans participate too
  RunRandom(&sim, &device, /*writes=*/true, 2000, 4, /*seed=*/7);
  RunRandom(&sim, &device, /*writes=*/false, 2000, 4, /*seed=*/8);

  ASSERT_EQ(tracer.dropped(), 0u) << "ring too small for the workload";

  struct SpanSums {
    std::uint64_t io = 0;
    std::uint64_t stages = 0;
    bool has_io = false;
    bool is_gc = false;
  };
  std::map<trace::SpanId, SpanSums> spans;
  tracer.ForEach([&](const TraceEvent& e) {
    SpanSums& s = spans[e.span];
    if (e.stage == Stage::kIo) {
      s.io = e.dur();
      s.has_io = true;
    } else if (e.stage == Stage::kGc) {
      s.is_gc = true;  // background collection span, not a host IO
    } else {
      s.stages += e.dur();
    }
  });

  std::uint64_t host_spans = 0;
  for (const auto& [span, s] : spans) {
    if (!s.has_io) continue;
    ASSERT_FALSE(s.is_gc);
    ++host_spans;
    EXPECT_EQ(s.stages, s.io) << "span " << span
                              << ": stage spans do not tile the IO";
  }
  // Every host IO of the whole run (aging included) produced a root span.
  EXPECT_EQ(host_spans, device.counters().Get("completions"));

  // The same invariant, via the aggregate: attributed ns == end-to-end ns.
  const auto& b = tracer.breakdown();
  for (const Origin o : {Origin::kHostRead, Origin::kHostWrite}) {
    EXPECT_EQ(b.AttributedNs(o), b.TotalNs(Stage::kIo, o));
  }
}

// The fig2 experiment, asserted: on an aged device with a concurrent
// write stream, victim reads carry kGcStall spans whose total equals
// the controller's always-on GC-stall counters — span attribution and
// integer accounting are two views of the same BusyClock arithmetic.
TEST(TraceStackTest, GcStallSpansMatchControllerCounters) {
  Tracer tracer(1 << 20);
  tracer.set_enabled(true);

  sim::Simulator sim;
  ssd::Config cfg = ssd::Config::Small();
  cfg.over_provisioning = 0.10;  // tight spare space keeps GC busy
  cfg.write_buffer.pages = 0;
  cfg.tracer = &tracer;
  ssd::Device device(&sim, cfg);
  const std::uint64_t n = device.num_blocks();

  Age(&sim, &device);

  // Concurrent QD2 random-write stream keeps GC live during the reads.
  auto stop = std::make_shared<bool>(false);
  auto pattern = std::make_shared<workload::RandomPattern>(
      0, n, /*is_write=*/true, 1, 7);
  auto issue = std::make_shared<std::function<void()>>();
  *issue = [&sim, &device, stop, pattern, issue]() {
    if (*stop) return;
    const workload::IoDesc d = pattern->Next();
    blocklayer::IoRequest w;
    w.op = blocklayer::IoOp::kWrite;
    w.lba = d.lba;
    w.nblocks = 1;
    w.tokens = {1};
    w.on_complete = [issue, stop](const blocklayer::IoResult&) {
      if (!*stop) (*issue)();
    };
    device.Submit(std::move(w));
  };
  (*issue)();
  (*issue)();
  RunRandom(&sim, &device, /*writes=*/false, 4000, 4, /*seed=*/8);
  *stop = true;
  *issue = nullptr;  // break the self-reference
  sim.Run();

  ASSERT_GT(device.ftl()->counters().Get("gc_page_moves"), 0u);

  // GC must be visible in the reads' attribution...
  const auto& b = tracer.breakdown();
  EXPECT_GT(b.TotalNs(Stage::kGcStall, Origin::kHostRead), 0u);
  EXPECT_GT(b.Count(Stage::kGcStall, Origin::kHostRead), 0u);
  // ...and the span view must agree with the counter view exactly.
  // (The breakdown sees every event, so this holds even if the ring
  // wrapped.)
  EXPECT_EQ(b.TotalNs(Stage::kGcStall, Origin::kHostRead),
            device.controller()->GcStallReadNs());
  EXPECT_EQ(b.TotalNs(Stage::kGcStall, Origin::kHostWrite),
            device.controller()->GcStallWriteNs());
}

// Tracing observes the schedule; it must never change it. The same
// workload with no tracer, a disabled tracer and a recording tracer
// must land on the same simulated end time and do the same work.
TEST(TraceStackTest, TracingNeverPerturbsTheSchedule) {
  struct Outcome {
    SimTime end = 0;
    std::uint64_t ios = 0;
    std::uint64_t gc_moves = 0;
  };
  auto run = [](Tracer* tracer) {
    sim::Simulator sim;
    ssd::Config cfg = ssd::Config::Small();
    cfg.tracer = tracer;
    ssd::Device device(&sim, cfg);
    Age(&sim, &device);
    RunRandom(&sim, &device, /*writes=*/false, 1000, 4, /*seed=*/8);
    sim.Run();
    return Outcome{sim.Now(), device.counters().Get("completions"),
                   device.ftl()->counters().Get("gc_page_moves")};
  };

  const Outcome untraced = run(nullptr);
  Tracer disabled(1 << 12);
  const Outcome with_disabled = run(&disabled);
  Tracer enabled(1 << 12);
  enabled.set_enabled(true);
  const Outcome with_enabled = run(&enabled);

  EXPECT_GT(untraced.gc_moves, 0u);
  for (const Outcome& o : {with_disabled, with_enabled}) {
    EXPECT_EQ(o.end, untraced.end);
    EXPECT_EQ(o.ios, untraced.ios);
    EXPECT_EQ(o.gc_moves, untraced.gc_moves);
  }
  EXPECT_EQ(disabled.total_recorded(), 0u);
  EXPECT_GT(enabled.total_recorded(), 0u);
}

// With a block layer on top, the root span is minted there (the whole
// software stack is attributed, not just the device) and the device
// inherits it instead of minting its own.
TEST(BlockLayerTraceTest, RootSpanMintedAboveTheDevice) {
  Tracer tracer(1 << 18);
  tracer.set_enabled(true);

  sim::Simulator sim;
  ssd::Config cfg = ssd::Config::Small();
  cfg.tracer = &tracer;
  ssd::Device device(&sim, cfg);
  blocklayer::BlockLayerConfig bl_cfg;
  bl_cfg.tracer = &tracer;
  blocklayer::BlockLayer layer(&sim, &device, bl_cfg);

  const std::uint64_t n = layer.num_blocks();
  workload::SequentialPattern fill(0, n / 2, /*is_write=*/true);
  (void)workload::RunClosedLoop(&sim, &layer, &fill, n / 2, 8);
  RunRandom(&sim, &layer, /*writes=*/false, 500, 8, /*seed=*/5);
  sim.Run();

  ASSERT_EQ(tracer.dropped(), 0u);

  // Exactly one root kIo span per block-layer request, all recorded on
  // host-pid tracks (the block layer, not the device, owns the root).
  const std::uint64_t requests = layer.counters().Get("completed");
  std::uint64_t io_events = 0;
  std::map<trace::SpanId, bool> io_span_reached_flash;
  tracer.ForEach([&](const TraceEvent& e) {
    if (e.stage == Stage::kIo) {
      ++io_events;
      EXPECT_EQ(tracer.tracks()[e.track].pid, trace::kPidHost);
      io_span_reached_flash.emplace(e.span, false);
    }
  });
  EXPECT_EQ(io_events, requests);
  EXPECT_EQ(tracer.breakdown().Count(Stage::kIo), requests);

  // The same span ids show up again below the device: cross-layer
  // propagation, not per-layer re-minting. (Buffered writes stop at
  // the cache, so only some spans reach flash tracks — but reads must.)
  tracer.ForEach([&](const TraceEvent& e) {
    if (e.stage == Stage::kIo) return;
    auto it = io_span_reached_flash.find(e.span);
    if (it != io_span_reached_flash.end() &&
        tracer.tracks()[e.track].pid == trace::kPidFlash) {
      it->second = true;
    }
  });
  std::uint64_t reached = 0;
  for (const auto& [span, hit] : io_span_reached_flash) {
    if (hit) ++reached;
  }
  EXPECT_GT(reached, 0u);
}

}  // namespace
}  // namespace postblock
