#include <set>
#include <string>

#include <gtest/gtest.h>

#include "common/histogram.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/statusor.h"
#include "common/table.h"

namespace postblock {
namespace {

// --- Status ----------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("lba 42");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.message(), "lba 42");
  EXPECT_EQ(s.ToString(), "NotFound: lba 42");
}

TEST(StatusTest, PredicatesMatchOnlyTheirCode) {
  EXPECT_TRUE(Status::DataLoss("x").IsDataLoss());
  EXPECT_FALSE(Status::DataLoss("x").IsNotFound());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::Unavailable("x").IsUnavailable());
}

Status Fails() { return Status::Internal("boom"); }
Status Propagates() {
  PB_RETURN_IF_ERROR(Fails());
  return Status::Ok();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_EQ(Propagates().code(), StatusCode::kInternal);
}

StatusOr<int> MaybeInt(bool ok) {
  if (ok) return 7;
  return Status::NotFound("no int");
}

TEST(StatusOrTest, ValueAndError) {
  auto good = MaybeInt(true);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, 7);
  EXPECT_EQ(good.value_or(9), 7);

  auto bad = MaybeInt(false);
  EXPECT_FALSE(bad.ok());
  EXPECT_TRUE(bad.status().IsNotFound());
  EXPECT_EQ(bad.value_or(9), 9);
}

StatusOr<int> Doubled(bool ok) {
  int v = 0;
  PB_ASSIGN_OR_RETURN(v, MaybeInt(ok));
  return v * 2;
}

TEST(StatusOrTest, AssignOrReturn) {
  EXPECT_EQ(*Doubled(true), 14);
  EXPECT_FALSE(Doubled(false).ok());
}

// --- Rng -------------------------------------------------------------

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += a.Next() == b.Next();
  EXPECT_LT(equal, 4);
}

TEST(RngTest, UniformRespectsBound) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.Uniform(17), 17u);
}

TEST(RngTest, UniformCoversRange) {
  Rng rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.Uniform(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.UniformRange(5, 7);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 3u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliMatchesProbabilityRoughly) {
  Rng rng(5);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(RngTest, ForkedStreamsAreIndependent) {
  Rng a(42);
  Rng fork = a.Fork();
  EXPECT_NE(a.Next(), fork.Next());
}

// --- Histogram --------------------------------------------------------

TEST(HistogramTest, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.Mean(), 0.0);
  EXPECT_EQ(h.Percentile(50), 0u);
}

TEST(HistogramTest, ExactForSmallValues) {
  Histogram h;
  for (std::uint64_t v = 0; v < 32; ++v) h.Record(v);
  EXPECT_EQ(h.count(), 32u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 31u);
  EXPECT_NEAR(h.Mean(), 15.5, 1e-9);
  EXPECT_EQ(h.Percentile(50), 15u);
}

TEST(HistogramTest, PercentileApproximatesLargeValues) {
  Histogram h;
  for (int i = 0; i < 1000; ++i) h.Record(1'000'000);
  const auto p50 = h.Percentile(50);
  EXPECT_NEAR(static_cast<double>(p50), 1e6, 1e6 * 0.05);
}

TEST(HistogramTest, PercentileOrdering) {
  Histogram h;
  for (std::uint64_t v = 1; v <= 10000; ++v) h.Record(v);
  EXPECT_LE(h.P50(), h.P95());
  EXPECT_LE(h.P95(), h.P99());
  EXPECT_LE(h.P99(), h.P999());
  EXPECT_LE(h.P999(), h.max());
}

TEST(HistogramTest, MergeCombines) {
  Histogram a, b;
  a.Record(10);
  b.Record(20);
  b.Record(30);
  a.Merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.min(), 10u);
  EXPECT_EQ(a.max(), 30u);
  EXPECT_NEAR(a.Mean(), 20.0, 1e-9);
}

TEST(HistogramTest, ResetClears) {
  Histogram h;
  h.Record(5);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0u);
}

TEST(HistogramTest, RecordNWeightsSamples) {
  Histogram h;
  h.RecordN(100, 5);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_NEAR(h.Mean(), 100.0, 1e-9);
}

TEST(HistogramTest, SummaryMentionsCount) {
  Histogram h;
  h.Record(1);
  EXPECT_NE(h.Summary().find("n=1"), std::string::npos);
}

TEST(HistogramTest, EmptyPercentileAnyP) {
  Histogram h;
  EXPECT_EQ(h.Percentile(0), 0u);
  EXPECT_EQ(h.Percentile(100), 0u);
  EXPECT_EQ(h.Percentile(-5), 0u);
  EXPECT_EQ(h.Percentile(250), 0u);
}

TEST(HistogramTest, PercentileExtremesAreExact) {
  Histogram h;
  // Values land mid-bucket at this magnitude: the midpoint
  // approximation would overshoot min at p=0 and can undershoot max at
  // p=100. The extremes are tracked exactly, so they answer exactly.
  h.Record(1'000'000);
  h.Record(3'000'000);
  h.Record(9'000'000);
  EXPECT_EQ(h.Percentile(0), h.min());
  EXPECT_EQ(h.Percentile(100), h.max());
  // Out-of-range p clamps to the extremes.
  EXPECT_EQ(h.Percentile(-1), h.min());
  EXPECT_EQ(h.Percentile(101), h.max());
}

TEST(HistogramTest, MergeAfterReset) {
  Histogram a, b;
  a.Record(50);
  a.Reset();
  b.Record(7);
  b.Record(9000);
  a.Merge(b);  // reset target must behave like a fresh histogram
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.min(), 7u);
  EXPECT_EQ(a.max(), 9000u);
  // And merging an empty (reset) source must be a no-op.
  Histogram c;
  c.Record(3);
  c.Reset();
  b.Merge(c);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_EQ(b.min(), 7u);
  EXPECT_EQ(b.max(), 9000u);
}

TEST(HistogramTest, ZeroCountSummary) {
  Histogram h;
  EXPECT_EQ(h.Summary(), "n=0 mean=0.0 p50=0 p99=0 max=0");
  h.Record(42);
  h.Reset();
  EXPECT_EQ(h.Summary(), "n=0 mean=0.0 p50=0 p99=0 max=0");
}

// --- Counters ----------------------------------------------------------

TEST(CountersTest, GetUnknownIsZero) {
  Counters c;
  EXPECT_EQ(c.Get("nope"), 0u);
}

TEST(CountersTest, AddAndIncrement) {
  Counters c;
  c.Increment("a");
  c.Add("a", 4);
  EXPECT_EQ(c.Get("a"), 5u);
  c.Reset();
  EXPECT_EQ(c.Get("a"), 0u);
}

TEST(CountersTest, ToStringListsAll) {
  Counters c;
  c.Add("x", 1);
  c.Add("y", 2);
  const std::string s = c.ToString();
  EXPECT_NE(s.find("x = 1"), std::string::npos);
  EXPECT_NE(s.find("y = 2"), std::string::npos);
}

// --- Table -------------------------------------------------------------

TEST(TableTest, RendersHeaderAndRows) {
  Table t({"a", "bb"});
  t.AddRow({"1", "2"});
  const std::string s = t.ToString();
  EXPECT_NE(s.find("| a "), std::string::npos);
  EXPECT_NE(s.find("| 1 "), std::string::npos);
  EXPECT_NE(s.find("---"), std::string::npos);
}

TEST(TableTest, ShortRowsArePadded) {
  Table t({"a", "b", "c"});
  t.AddRow({"only"});
  EXPECT_NE(t.ToString().find("only"), std::string::npos);
}

TEST(TableTest, TimeFormatting) {
  EXPECT_EQ(Table::Time(500), "500 ns");
  EXPECT_EQ(Table::Time(50'000), "50.0 us");
  EXPECT_EQ(Table::Time(50'000'000), "50.00 ms");
  EXPECT_EQ(Table::Time(50'000'000'000ull), "50.00 s");
}

TEST(TableTest, RateFormatting) {
  EXPECT_NE(Table::Rate(500.0 * 1024).find("KiB/s"), std::string::npos);
  EXPECT_NE(Table::Rate(5.0 * 1024 * 1024).find("MiB/s"),
            std::string::npos);
  EXPECT_NE(Table::Rate(5.0 * 1024 * 1024 * 1024).find("GiB/s"),
            std::string::npos);
}

TEST(TableTest, NumPrecision) {
  EXPECT_EQ(Table::Num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::Int(42), "42");
}

}  // namespace
}  // namespace postblock
