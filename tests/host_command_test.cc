// The unified typed command API: host::Command / HostInterface across
// every layer (SimpleBlockDevice, ssd::Device, BlockLayer,
// DirectDriver, HybridStore), plus TagSet and IoCallback units.
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "blocklayer/block_layer.h"
#include "blocklayer/direct_driver.h"
#include "blocklayer/simple_device.h"
#include "core/hybrid_store.h"
#include "core/pcm_log.h"
#include "host/command.h"
#include "host/tag_set.h"
#include "pcm/pcm_device.h"
#include "sim/simulator.h"
#include "ssd/device.h"

namespace postblock {
namespace {

using blocklayer::BlockLayer;
using blocklayer::BlockLayerConfig;
using blocklayer::IoCallback;
using blocklayer::IoResult;
using blocklayer::SimpleBlockDevice;
using blocklayer::SimpleDeviceConfig;

std::uint32_t Bit(host::CommandKind k) {
  return 1u << static_cast<std::uint32_t>(k);
}

// --- TagSet ---------------------------------------------------------------

TEST(TagSetTest, FixedSetGrantsAscendingAndBackpressures) {
  host::TagSet tags(3);
  EXPECT_EQ(tags.capacity(), 3u);
  EXPECT_EQ(tags.Acquire(), 0u);
  EXPECT_EQ(tags.Acquire(), 1u);
  EXPECT_EQ(tags.Acquire(), 2u);
  EXPECT_TRUE(tags.exhausted());
  EXPECT_EQ(tags.Acquire(), host::TagSet::kNoTag);
  EXPECT_EQ(tags.in_use(), 3u);
  tags.Release(1);
  EXPECT_FALSE(tags.exhausted());
  EXPECT_EQ(tags.Acquire(), 1u);  // LIFO recycle: hottest tag first
  EXPECT_EQ(tags.high_water(), 3u);
}

TEST(TagSetTest, ElasticSetNeverFails) {
  host::TagSet tags;  // capacity 0
  EXPECT_EQ(tags.capacity(), 0u);
  for (std::uint32_t i = 0; i < 100; ++i) {
    EXPECT_EQ(tags.Acquire(), i);
  }
  EXPECT_FALSE(tags.exhausted());
  tags.Release(42);
  EXPECT_EQ(tags.Acquire(), 42u);  // recycled before growing
  EXPECT_EQ(tags.high_water(), 100u);
}

// --- IoCallback -----------------------------------------------------------

TEST(IoCallbackTest, SmallCapturesStayInline) {
  int hits = 0;
  IoCallback cb([&hits](const IoResult&) { ++hits; });
  EXPECT_TRUE(static_cast<bool>(cb));
  EXPECT_TRUE(cb.stored_inline());
  cb(IoResult{Status::Ok(), {}});
  EXPECT_EQ(hits, 1);
}

TEST(IoCallbackTest, LargeCapturesAreBoxedAndStillWork) {
  struct Big {
    std::uint64_t pad[16];  // 128 bytes > kInlineBytes
  };
  Big big{};
  big.pad[0] = 7;
  std::uint64_t seen = 0;
  IoCallback cb([big, &seen](const IoResult&) { seen = big.pad[0]; });
  EXPECT_FALSE(cb.stored_inline());
  cb(IoResult{Status::Ok(), {}});
  EXPECT_EQ(seen, 7u);
}

TEST(IoCallbackTest, MoveCarriesQueueRoutingContext) {
  IoCallback cb([](const IoResult&) {});
  cb.queue_id = 3;
  cb.tag = 17;
  IoCallback moved = std::move(cb);
  EXPECT_EQ(moved.queue_id, 3);
  EXPECT_EQ(moved.tag, 17);
  IoCallback assigned;
  assigned = std::move(moved);
  EXPECT_EQ(assigned.queue_id, 3);
  EXPECT_EQ(assigned.tag, 17);
  assigned(IoResult{Status::Ok(), {}});  // target survived both moves
}

TEST(IoCallbackTest, AcceptsMoveOnlyCaptures) {
  auto owned = std::make_unique<int>(5);
  int seen = 0;
  IoCallback cb(
      [owned = std::move(owned), &seen](const IoResult&) { seen = *owned; });
  IoCallback moved = std::move(cb);
  moved(IoResult{Status::Ok(), {}});
  EXPECT_EQ(seen, 5);
}

// --- Capability discovery -------------------------------------------------

TEST(HostCommandTest, CapabilityMasksPerLayer) {
  sim::Simulator sim;
  SimpleBlockDevice simple(&sim, SimpleDeviceConfig{});
  // A plain block device: the four legacy kinds plus advisory hints.
  const std::uint32_t basic =
      Bit(host::CommandKind::kRead) | Bit(host::CommandKind::kWrite) |
      Bit(host::CommandKind::kTrim) | Bit(host::CommandKind::kFlush) |
      Bit(host::CommandKind::kHint);
  EXPECT_EQ(simple.CapabilityMask(), basic);
  EXPECT_FALSE(simple.Supports(host::CommandKind::kAtomicGroup));

  // The page-mapped SSD speaks the full vision command set, including
  // the complete nameless vocabulary (write/read/free).
  ssd::Device dev(&sim, ssd::Config::Small());
  const std::uint32_t vision = basic |
                               Bit(host::CommandKind::kAtomicGroup) |
                               Bit(host::CommandKind::kNamelessWrite) |
                               Bit(host::CommandKind::kNamelessRead) |
                               Bit(host::CommandKind::kNamelessFree);
  EXPECT_EQ(dev.CapabilityMask(), vision);

  // Stacked layers advertise what the device below can do.
  BlockLayer over_simple(&sim, &simple, BlockLayerConfig{});
  EXPECT_EQ(over_simple.CapabilityMask(), basic);
  BlockLayer over_ssd(&sim, &dev, BlockLayerConfig{});
  EXPECT_EQ(over_ssd.CapabilityMask(), vision);
  blocklayer::DirectDriver direct(&sim, &dev);
  EXPECT_EQ(direct.CapabilityMask(), vision);
}

TEST(HostCommandTest, DeviceCapsProbeReplacesConfigPeeking) {
  sim::Simulator sim;
  // A plain block device: hints only, no extended vocabulary.
  SimpleBlockDevice simple(&sim, SimpleDeviceConfig{});
  host::DeviceCaps sc = simple.Caps();
  EXPECT_FALSE(sc.nameless);
  EXPECT_FALSE(sc.atomic_groups);
  EXPECT_TRUE(sc.hint_classes);
  EXPECT_FALSE(sc.pcm_sync);
  EXPECT_EQ(sc.append_regions, 0u);

  // The page-mapped SSD: full vision set, and the DRAM argument in one
  // number — the device L2P is sized by the *logical space* (8 B per
  // logical page, whether mapped or not).
  ssd::Device dev(&sim, ssd::Config::Small());
  host::DeviceCaps dc = dev.Caps();
  EXPECT_TRUE(dc.nameless);
  EXPECT_TRUE(dc.atomic_groups);
  EXPECT_EQ(dc.append_regions, 0u);
  EXPECT_EQ(dc.mapping_table_bytes, dev.num_blocks() * 8);

  // The post-block append device: nameless-only vocabulary, advertised
  // append regions, no logical address space behind kRead/kWrite/kTrim.
  ssd::Config acfg = ssd::Config::Small();
  acfg.ftl = ssd::FtlKind::kVisionAppend;
  ssd::Device append_dev(&sim, acfg);
  host::DeviceCaps ac = append_dev.Caps();
  EXPECT_TRUE(ac.nameless);
  EXPECT_EQ(ac.append_regions, acfg.append_regions);
  EXPECT_FALSE(ac.Supports(host::CommandKind::kRead));
  EXPECT_FALSE(ac.Supports(host::CommandKind::kWrite));
  EXPECT_FALSE(ac.Supports(host::CommandKind::kTrim));
  EXPECT_TRUE(ac.Supports(host::CommandKind::kFlush));
  EXPECT_TRUE(ac.Supports(host::CommandKind::kNamelessWrite));

  // Layers restate the device's caps; HybridStore adds the one thing
  // only it can claim — the synchronous PCM persistence path.
  blocklayer::DirectDriver direct(&sim, &append_dev);
  EXPECT_EQ(direct.Caps().append_regions, acfg.append_regions);
  EXPECT_TRUE(direct.Caps().nameless);
  pcm::PcmConfig pcm_cfg;
  pcm::PcmDevice pcm(&sim, pcm_cfg);
  core::PcmLog pcm_log(&sim, &pcm, 0, 1 * kMiB);
  core::HybridStore vision_store(&sim, &direct, &pcm_log);
  EXPECT_TRUE(vision_store.Caps().pcm_sync);
  core::HybridStore classic_store(&sim, &simple, /*log_region_start=*/0,
                                  /*log_region_blocks=*/8);
  EXPECT_FALSE(classic_store.Caps().pcm_sync);
}

TEST(HostCommandTest, UnsupportedExtendedKindsNeverSilentlyDrop) {
  // Regression guard: every extended kind sent to a stack that cannot
  // execute it must still *complete*, with a typed Unimplemented — a
  // command whose callback never fires is the block interface's silent
  // contract violation this API exists to kill.
  sim::Simulator sim;
  SimpleBlockDevice dev(&sim, SimpleDeviceConfig{});
  int completions = 0;
  auto expect_unimpl = [&completions](const IoResult& r) {
    EXPECT_EQ(r.status.code(), StatusCode::kUnimplemented);
    ++completions;
  };
  dev.Execute(host::Command::NamelessWrite(7, expect_unimpl));
  dev.Execute(host::Command::NamelessRead(99, expect_unimpl));
  dev.Execute(host::Command::NamelessFree(99, expect_unimpl));
  dev.Execute(
      host::Command::AtomicGroup({{1, 10}, {2, 20}}, expect_unimpl));
  sim.Run();
  EXPECT_EQ(completions, 4);

  // Same guarantee in the other direction: the append device refuses
  // the block vocabulary it has no address space for.
  ssd::Config acfg = ssd::Config::Small();
  acfg.ftl = ssd::FtlKind::kVisionAppend;
  ssd::Device append_dev(&sim, acfg);
  int refused = 0;
  auto expect_refused = [&refused](const IoResult& r) {
    EXPECT_EQ(r.status.code(), StatusCode::kUnimplemented);
    ++refused;
  };
  append_dev.Execute(host::Command::Read(0, 1, expect_refused));
  append_dev.Execute(host::Command::Write(0, {1}, expect_refused));
  sim.Run();
  EXPECT_EQ(refused, 2);
  EXPECT_GE(append_dev.counters().Get("lba_commands_refused"), 2u);
}

// --- Execute lowering on a plain block device -----------------------------

TEST(HostCommandTest, BlockExpressibleCommandsLowerToSubmit) {
  sim::Simulator sim;
  SimpleBlockDevice dev(&sim, SimpleDeviceConfig{});
  Status wst = Status::Internal("pending");
  dev.Execute(host::Command::Write(
      7, {1234}, [&wst](const IoResult& r) { wst = r.status; }));
  sim.Run();
  EXPECT_TRUE(wst.ok());
  std::vector<std::uint64_t> tokens;
  dev.Execute(host::Command::Read(7, 1, [&tokens](const IoResult& r) {
    ASSERT_TRUE(r.status.ok());
    tokens = r.tokens;
  }));
  sim.Run();
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0], 1234u);
}

TEST(HostCommandTest, HintsCompleteOkAndUnsupportedIsUnimplemented) {
  sim::Simulator sim;
  SimpleBlockDevice dev(&sim, SimpleDeviceConfig{});
  bool hint_ok = false;
  dev.Execute(host::Command::Hint(
      host::HintKind::kSequential,
      [&hint_ok](const IoResult& r) { hint_ok = r.status.ok(); }));
  EXPECT_TRUE(hint_ok);  // hints are advisory: inline, never fail

  Status st = Status::Ok();
  dev.Execute(host::Command::AtomicGroup(
      {{1, 10}, {2, 20}}, [&st](const IoResult& r) { st = r.status; }));
  EXPECT_TRUE(st.code() == StatusCode::kUnimplemented);  // a block device cannot name this
}

// --- Extended commands on the SSD ----------------------------------------

TEST(HostCommandTest, AtomicGroupWritesAllExtentsTogether) {
  sim::Simulator sim;
  ssd::Device dev(&sim, ssd::Config::Small());
  Status st = Status::Internal("pending");
  dev.Execute(host::Command::AtomicGroup(
      {{5, 111}, {9, 222}}, [&st](const IoResult& r) { st = r.status; }));
  sim.Run();
  ASSERT_TRUE(st.ok());
  EXPECT_EQ(dev.counters().Get("atomic_groups"), 1u);
  std::vector<std::uint64_t> got(2, 0);
  dev.Execute(host::Command::Read(5, 1, [&got](const IoResult& r) {
    ASSERT_TRUE(r.status.ok());
    got[0] = r.tokens[0];
  }));
  dev.Execute(host::Command::Read(9, 1, [&got](const IoResult& r) {
    ASSERT_TRUE(r.status.ok());
    got[1] = r.tokens[0];
  }));
  sim.Run();
  EXPECT_EQ(got[0], 111u);
  EXPECT_EQ(got[1], 222u);
}

TEST(HostCommandTest, NamelessWriteReturnsDeviceChosenName) {
  sim::Simulator sim;
  ssd::Device dev(&sim, ssd::Config::Small());
  std::vector<std::uint64_t> names;
  Status st = Status::Internal("pending");
  for (int i = 0; i < 2; ++i) {
    dev.Execute(host::Command::NamelessWrite(
        900 + i, [&names, &st](const IoResult& r) {
          st = r.status;
          if (r.status.ok()) names.push_back(r.tokens[0]);
        }));
  }
  sim.Run();
  ASSERT_TRUE(st.ok());
  ASSERT_EQ(names.size(), 2u);
  EXPECT_NE(names[0], names[1]);  // distinct physical names
  EXPECT_EQ(dev.counters().Get("nameless_writes"), 2u);
}

// --- Stacked passthrough --------------------------------------------------

TEST(HostCommandTest, BlockLayerPassesExtendedCommandsThrough) {
  sim::Simulator sim;
  ssd::Device dev(&sim, ssd::Config::Small());
  BlockLayer layer(&sim, &dev, BlockLayerConfig{});
  Status st = Status::Internal("pending");
  layer.Execute(host::Command::AtomicGroup(
      {{3, 33}}, [&st](const IoResult& r) { st = r.status; }));
  sim.Run();
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(layer.counters().Get("passthrough_cmds"), 1u);
  EXPECT_EQ(dev.counters().Get("atomic_groups"), 1u);
  // Queued kinds still pay the block layer, not the passthrough.
  bool read_ok = false;
  layer.Execute(host::Command::Read(
      3, 1, [&read_ok](const IoResult& r) { read_ok = r.status.ok(); }));
  sim.Run();
  EXPECT_TRUE(read_ok);
  EXPECT_EQ(layer.counters().Get("submitted"), 1u);
  EXPECT_EQ(layer.counters().Get("passthrough_cmds"), 1u);
}

TEST(HostCommandTest, BlockLayerRefusesWhatTheDeviceCannotDo) {
  sim::Simulator sim;
  SimpleBlockDevice dev(&sim, SimpleDeviceConfig{});
  BlockLayer layer(&sim, &dev, BlockLayerConfig{});
  Status st = Status::Ok();
  layer.Execute(host::Command::NamelessWrite(
      5, [&st](const IoResult& r) { st = r.status; }));
  EXPECT_TRUE(st.code() == StatusCode::kUnimplemented);
}

TEST(HostCommandTest, DirectDriverPassesExtendedCommandsThrough) {
  sim::Simulator sim;
  ssd::Device dev(&sim, ssd::Config::Small());
  blocklayer::DirectDriver direct(&sim, &dev);
  Status st = Status::Internal("pending");
  std::uint64_t name = 0;
  direct.Execute(
      host::Command::NamelessWrite(77, [&](const IoResult& r) {
        st = r.status;
        if (r.status.ok()) name = r.tokens[0];
      }));
  sim.Run();
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(direct.counters().Get("passthrough_cmds"), 1u);
  EXPECT_EQ(dev.counters().Get("nameless_writes"), 1u);
  (void)name;
}

// --- HybridStore stream classification ------------------------------------

TEST(HostCommandTest, HybridStoreStampsStreamsForQueuePinning) {
  sim::Simulator sim;
  SimpleBlockDevice dev(&sim, SimpleDeviceConfig{});
  BlockLayerConfig cfg;
  cfg.nr_queues = 4;
  cfg.stream_queues = true;
  BlockLayer layer(&sim, &dev, cfg);
  core::HybridStore store(&sim, &layer, /*log_region_start=*/0,
                          /*log_region_blocks=*/64);
  store.set_streams(/*wal_stream=*/1, /*async_stream=*/2);

  // Unclassified async traffic inherits async_stream -> queue 2.
  bool read_ok = false;
  store.Execute(host::Command::Read(
      100, 1, [&read_ok](const IoResult& r) { read_ok = r.status.ok(); }));
  sim.Run();
  EXPECT_TRUE(read_ok);
  EXPECT_EQ(store.counters().Get("async_requests"), 1u);
  EXPECT_EQ(layer.scheduler(2).counters().Get("enqueued"), 1u);

  // Commit-critical WAL write+flush land on wal_stream's queue 1.
  Status persisted = Status::Internal("pending");
  store.SyncPersist({0xaa, 0xbb},
                    [&persisted](Status st) { persisted = st; });
  sim.Run();
  EXPECT_TRUE(persisted.ok());
  EXPECT_EQ(layer.scheduler(1).counters().Get("enqueued"), 2u);
  EXPECT_EQ(layer.counters().Get("stream_pins"), 3u);

  // An explicitly classified command keeps its own stream.
  host::Command c = host::Command::Read(101, 1, [](const IoResult&) {});
  c.stream = 3;
  store.Execute(std::move(c));
  sim.Run();
  EXPECT_EQ(layer.scheduler(3).counters().Get("enqueued"), 1u);
}

}  // namespace
}  // namespace postblock
