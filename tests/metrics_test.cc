#include <unistd.h>

#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "blocklayer/block_layer.h"
#include "metrics/metrics.h"
#include "metrics/sampler.h"
#include "sim/simulator.h"
#include "ssd/config.h"
#include "ssd/device.h"
#include "workload/patterns.h"

namespace postblock::metrics {
namespace {

// --- MetricRegistry ---------------------------------------------------------

TEST(MetricRegistryTest, PushedCounters) {
  MetricRegistry r;
  const Id a = r.AddCounter("a");
  const Id b = r.AddCounter("b");
  r.Increment(a);
  r.Add(b, 10);
  r.Add(b, 5);
  EXPECT_EQ(r.num_counters(), 2u);
  EXPECT_EQ(r.counter(a), 1u);
  EXPECT_EQ(r.counter(b), 15u);
  EXPECT_EQ(r.counter_name(a), "a");
  EXPECT_EQ(r.CounterByName("b"), 15u);
  EXPECT_EQ(r.CounterByName("nope", 42), 42u);
  EXPECT_TRUE(r.Has("a"));
  EXPECT_FALSE(r.Has("nope"));
}

TEST(MetricRegistryTest, PolledCountersAndGauges) {
  MetricRegistry r;
  std::uint64_t v = 7;
  double g = 1.5;
  const Id p = r.AddPolledCounter("p", [&v] { return v; });
  const Id q = r.AddGauge("g", [&g] { return g; });
  EXPECT_EQ(r.PollCounter(p), 7u);
  EXPECT_DOUBLE_EQ(r.PollGauge(q), 1.5);
  v = 9;
  g = -2.0;
  EXPECT_EQ(r.PollCounter(p), 9u);   // reads live state, not a copy
  EXPECT_DOUBLE_EQ(r.PollGauge(q), -2.0);
  EXPECT_EQ(r.CounterByName("p"), 9u);
  EXPECT_TRUE(r.Has("g"));
}

TEST(MetricRegistryTest, HistogramTotalSurvivesWindowReset) {
  MetricRegistry r;
  const Id h = r.AddHistogram("lat");
  r.Record(h, 100);
  r.Record(h, 200);
  EXPECT_EQ(r.window(h)->count(), 2u);
  EXPECT_EQ(r.hist_total(h), 2u);
  r.window(h)->Reset();  // what the sampler does each interval
  r.Record(h, 300);
  EXPECT_EQ(r.window(h)->count(), 1u);  // window is per-interval...
  EXPECT_EQ(r.hist_total(h), 3u);       // ...the total is cumulative
  EXPECT_TRUE(r.Has("lat"));
}

TEST(MetricRegistryTest, NamesAreSharedAcrossFamiliesButUniqueWithin) {
  MetricRegistry r;
  r.AddCounter("x");
  r.AddHistogram("h");
  r.AddGauge("g", [] { return 0.0; });
  EXPECT_TRUE(r.Has("x"));
  EXPECT_TRUE(r.Has("h"));
  EXPECT_TRUE(r.Has("g"));
}

// --- Sampler: timing --------------------------------------------------------

// Every snapshot of a busy run lands exactly on the t0 + k*interval
// grid — the tick is an ordinary timing-wheel event, executed at its
// precise timestamp.
TEST(SamplerTest, SamplesLandOnExactIntervalBoundaries) {
  sim::Simulator sim;
  MetricRegistry reg;
  std::uint64_t work = 0;
  reg.AddPolledCounter("work", [&work] { return work; });

  // Busy background load at an interval co-prime with the sampler's,
  // so device events never coincide with tick boundaries.
  std::function<void()> churn = [&] {
    ++work;
    if (work < 500) sim.Schedule(7, [&churn] { churn(); });
  };
  sim.Schedule(0, [&churn] { churn(); });

  Sampler sampler(&sim, &reg, /*interval_ns=*/100);
  sampler.Start();
  sim.Run();
  sampler.Stop();

  const auto& t = sampler.series().timestamps();
  ASSERT_GE(t.size(), 3u);
  EXPECT_EQ(t.front(), 0u);  // baseline row at Start()
  // All interior rows are exact multiples of the interval; only the
  // Stop() row may land off-grid (at the drained end time).
  for (std::size_t i = 1; i + 1 < t.size(); ++i) {
    EXPECT_EQ(t[i] % 100, 0u) << "row " << i << " at t=" << t[i];
    EXPECT_EQ(t[i], t[i - 1] + 100) << "missed an interval before row " << i;
  }
  // Sampled values are cumulative and non-decreasing.
  const Column* c = sampler.series().Find("work");
  ASSERT_NE(c, nullptr);
  for (std::size_t i = 1; i < c->u64.size(); ++i) {
    EXPECT_GE(c->u64[i], c->u64[i - 1]);
  }
  EXPECT_EQ(sampler.series().FinalU64("work"), 500u);
}

// A tick that finds the queue otherwise empty parks instead of
// rescheduling — a sampled run terminates, at most one interval past
// the point where the simulation ran dry.
TEST(SamplerTest, ParksWhenTheQueueDrains) {
  sim::Simulator sim;
  MetricRegistry reg;
  reg.AddCounter("c");

  sim.Schedule(250, [] {});  // last real event at t=250

  Sampler sampler(&sim, &reg, /*interval_ns=*/100);
  sampler.Start();
  sim.Run();  // must terminate
  EXPECT_TRUE(sampler.parked());
  EXPECT_LE(sim.Now(), 250u + 100u);

  // Resume() re-arms on the same grid after more work arrives.
  sim.Schedule(400, [] {});
  sampler.Resume();
  sim.Run();
  const auto& t = sampler.series().timestamps();
  for (std::size_t i = 1; i < t.size(); ++i) {
    EXPECT_EQ(t[i] % 100, 0u);
  }
  EXPECT_GE(t.back(), 400u + 100u - 100u);  // sampled past the new work
  sampler.Stop();
}

// Stop() takes a final row at the drained time and never duplicates a
// row that already exists at the current timestamp.
TEST(SamplerTest, StopTakesOneFinalRow) {
  sim::Simulator sim;
  MetricRegistry reg;
  const Id c = reg.AddCounter("c");
  sim.Schedule(50, [&reg, c] { reg.Add(c, 5); });

  Sampler sampler(&sim, &reg, /*interval_ns=*/1000);
  sampler.Start();
  sim.Run();
  sampler.Stop();
  const std::size_t rows = sampler.series().rows();
  sampler.Stop();  // idempotent
  EXPECT_EQ(sampler.series().rows(), rows);
  EXPECT_EQ(sampler.series().FinalU64("c"), 5u);
  // The final row reflects the fully drained run even though the run
  // ended between interval boundaries.
  EXPECT_GE(sampler.series().timestamps().back(), 50u);
}

// --- Sampler: windowed histograms -------------------------------------------

// Percentile sub-columns describe each interval in isolation: the
// window resets after every snapshot, while `.count` stays cumulative.
TEST(SamplerTest, WindowedHistogramResetsPerInterval) {
  sim::Simulator sim;
  MetricRegistry reg;
  const Id h = reg.AddHistogram("lat");

  sim.Schedule(50, [&reg, h] { reg.Record(h, 10); });
  sim.Schedule(150, [&reg, h] { reg.Record(h, 1000); });

  Sampler sampler(&sim, &reg, /*interval_ns=*/100);
  sampler.Start();
  sim.Run();
  sampler.Stop();

  const TimeSeries& ts = sampler.series();
  const Column* wc = ts.Find("lat.window_count");
  const Column* cum = ts.Find("lat.count");
  const Column* p50 = ts.Find("lat.p50");
  ASSERT_NE(wc, nullptr);
  ASSERT_NE(cum, nullptr);
  ASSERT_NE(p50, nullptr);

  const auto& t = ts.timestamps();
  // Row at t=100 sees only the first record; row at t=200 only the
  // second — windows never leak across intervals.
  std::size_t r100 = 0, r200 = 0;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i] == 100) r100 = i;
    if (t[i] == 200) r200 = i;
  }
  ASSERT_GT(r100, 0u);
  ASSERT_GT(r200, r100);
  EXPECT_EQ(wc->u64[r100], 1u);
  EXPECT_EQ(cum->u64[r100], 1u);
  EXPECT_EQ(p50->u64[r100], 10u);  // exact: small values are exact buckets
  EXPECT_EQ(wc->u64[r200], 1u);
  EXPECT_EQ(cum->u64[r200], 2u);  // cumulative count keeps growing
  EXPECT_NEAR(static_cast<double>(p50->u64[r200]), 1000.0, 1000.0 * 0.05);
}

// --- TimeSeries helpers -----------------------------------------------------

TEST(TimeSeriesTest, DeltaU64ClampsNonMonotone) {
  Column c;
  c.u64 = {5, 12, 3, 3};
  EXPECT_EQ(TimeSeries::DeltaU64(c, 0), 5u);
  EXPECT_EQ(TimeSeries::DeltaU64(c, 1), 7u);
  EXPECT_EQ(TimeSeries::DeltaU64(c, 2), 0u);  // post-crash reset: clamp
  EXPECT_EQ(TimeSeries::DeltaU64(c, 3), 0u);
  EXPECT_EQ(TimeSeries::DeltaU64(c, 9), 0u);  // out of range
}

TEST(TimeSeriesTest, CsvAndJsonExport) {
  sim::Simulator sim;
  MetricRegistry reg;
  const Id c = reg.AddCounter("ops");
  reg.AddGauge("load", [] { return 0.25; });
  sim.Schedule(10, [&reg, c] { reg.Add(c, 3); });
  sim.Schedule(110, [&reg, c] { reg.Add(c, 4); });

  Sampler sampler(&sim, &reg, /*interval_ns=*/100);
  sampler.Start();
  sim.Run();
  sampler.Stop();

  // Unique per process: gtest_discover_tests turns every TEST into its
  // own ctest entry, and `ctest -j` runs them concurrently out of one
  // TempDir — fixed artifact names would let parallel test processes
  // clobber each other's files.
  const std::string stem = ::testing::TempDir() + "/metrics_test." +
                           std::to_string(::getpid());
  const std::string csv = stem + ".csv";
  const std::string json = stem + ".json";
  ASSERT_TRUE(sampler.series().WriteCsv(csv).ok());
  ASSERT_TRUE(
      sampler.series().WriteJson(json, "\"git_sha\": \"test\"").ok());

  auto slurp = [](const std::string& path) {
    std::FILE* f = std::fopen(path.c_str(), "r");
    EXPECT_NE(f, nullptr);
    std::string out;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
    std::fclose(f);
    return out;
  };

  const std::string csv_text = slurp(csv);
  EXPECT_NE(csv_text.find("time_ns,ops,load"), std::string::npos);
  // One header line + one line per row.
  std::size_t lines = 0;
  for (char ch : csv_text) lines += ch == '\n';
  EXPECT_EQ(lines, 1 + sampler.series().rows());

  const std::string json_text = slurp(json);
  EXPECT_NE(json_text.find("\"git_sha\": \"test\""), std::string::npos);
  EXPECT_NE(json_text.find("\"ops\": {\"kind\": \"counter\""),
            std::string::npos);
  EXPECT_NE(json_text.find("\"load\": {\"kind\": \"gauge\""),
            std::string::npos);
  EXPECT_EQ(sampler.series().FinalU64("ops"), 7u);

  std::remove(csv.c_str());
  std::remove(json.c_str());
}

// --- Whole-stack contracts --------------------------------------------------

void RunRandom(sim::Simulator* sim, blocklayer::BlockDevice* device,
               bool writes, std::uint64_t ops, std::uint32_t depth,
               std::uint64_t seed) {
  workload::RandomPattern pattern(0, device->num_blocks(), writes, 1, seed);
  const auto r = workload::RunClosedLoop(sim, device, &pattern, ops, depth);
  ASSERT_EQ(r.errors, 0u);
}

// Ages a device past its first GC (sequential fill + 2x churn).
void Age(sim::Simulator* sim, blocklayer::BlockDevice* device) {
  const std::uint64_t n = device->num_blocks();
  workload::SequentialPattern fill(0, n, /*is_write=*/true);
  (void)workload::RunClosedLoop(sim, device, &fill, n, 8);
  RunRandom(sim, device, /*writes=*/true, 2 * n, 8, /*seed=*/99);
}

// Device-side fingerprint of a run: every observable the *simulated
// schedule* determines. Deliberately excludes the final sim time — the
// sampler's last (parked) tick legitimately extends the clock by up to
// one interval after the device has drained; the device schedule itself
// must be untouched.
struct Fingerprint {
  std::uint64_t completions = 0;
  std::uint64_t gc_moves = 0;
  std::uint64_t pages_programmed = 0;
  std::uint64_t read_count = 0;
  std::uint64_t read_max = 0;
  double read_sum = 0;

  bool operator==(const Fingerprint& o) const {
    return completions == o.completions && gc_moves == o.gc_moves &&
           pages_programmed == o.pages_programmed &&
           read_count == o.read_count && read_max == o.read_max &&
           read_sum == o.read_sum;
  }
};

// Metrics observe the schedule; they must never change it. The same
// workload bare, with a registry attached, and with a registry plus a
// live sampler must do identical device work with identical timing.
TEST(MetricsStackTest, SamplingNeverPerturbsTheSchedule) {
  auto run = [](bool with_metrics, bool with_sampler) {
    sim::Simulator sim;
    MetricRegistry reg;
    ssd::Config cfg = ssd::Config::Small();
    if (with_metrics) cfg.metrics = &reg;
    ssd::Device device(&sim, cfg);
    Sampler sampler(&sim, &reg, /*interval_ns=*/50'000);
    if (with_sampler) sampler.Start();
    Age(&sim, &device);
    if (with_sampler) sampler.Resume();  // Age drains the queue twice
    RunRandom(&sim, &device, /*writes=*/false, 1000, 4, /*seed=*/8);
    sim.Run();
    if (with_sampler) sampler.Stop();
    Fingerprint fp;
    fp.completions = device.counters().Get("completions");
    fp.gc_moves = device.ftl()->counters().Get("gc_page_moves");
    fp.pages_programmed =
        device.controller()->counters().Get("pages_programmed");
    fp.read_count = device.read_latency().count();
    fp.read_max = device.read_latency().max();
    fp.read_sum = device.read_latency().Mean() *
                  static_cast<double>(device.read_latency().count());
    return fp;
  };

  const Fingerprint bare = run(false, false);
  const Fingerprint attached = run(true, false);
  const Fingerprint sampled = run(true, true);
  EXPECT_GT(bare.gc_moves, 0u);
  EXPECT_TRUE(attached == bare);
  EXPECT_TRUE(sampled == bare);
}

// The tentpole acceptance cross-check: the final sampled cumulative
// rows equal the stack's existing `Counters` — the pushed mirrors and
// the always-on accounting are two views of the same events.
TEST(MetricsStackTest, FinalSampledRowEqualsCounters) {
  sim::Simulator sim;
  MetricRegistry reg;
  ssd::Config cfg = ssd::Config::Small();
  cfg.metrics = &reg;
  ssd::Device device(&sim, cfg);

  Sampler sampler(&sim, &reg, /*interval_ns=*/100'000);
  sampler.Start();
  Age(&sim, &device);
  sampler.Resume();
  RunRandom(&sim, &device, /*writes=*/true, 1500, 4, /*seed=*/3);
  sampler.Resume();
  RunRandom(&sim, &device, /*writes=*/false, 1500, 4, /*seed=*/4);
  sim.Run();
  sampler.Stop();

  ASSERT_GT(sampler.samples_taken(), 2u);
  const TimeSeries& ts = sampler.series();
  const Counters& flash = device.controller()->counters();

  // Pushed SSD counters mirror the flash layer's accounting exactly.
  EXPECT_EQ(ts.FinalU64("ssd.pages_read"), flash.Get("pages_read"));
  EXPECT_EQ(ts.FinalU64("ssd.pages_programmed"),
            flash.Get("pages_programmed"));
  EXPECT_EQ(ts.FinalU64("ssd.blocks_erased"), flash.Get("blocks_erased"));
  EXPECT_GT(ts.FinalU64("ssd.pages_programmed"), 0u);
  EXPECT_GT(ts.FinalU64("ssd.blocks_erased"), 0u);

  // Device-level pushed counters mirror Device::counters().
  EXPECT_EQ(ts.FinalU64("dev.requests"),
            device.counters().Get("requests"));
  EXPECT_EQ(ts.FinalU64("dev.completions"),
            device.counters().Get("completions"));

  // Histogram cumulative totals mirror the always-on histograms.
  EXPECT_EQ(ts.FinalU64("ssd.read_lat_ns.count"),
            device.controller()->read_latency().count());
  EXPECT_EQ(ts.FinalU64("ssd.program_lat_ns.count"),
            device.controller()->program_latency().count());
  EXPECT_EQ(ts.FinalU64("dev.read_lat_ns.count"),
            device.read_latency().count());
  EXPECT_EQ(ts.FinalU64("dev.write_lat_ns.count"),
            device.write_latency().count());

  // Polled FTL counters read the same Counters the FTL maintains.
  EXPECT_EQ(ts.FinalU64("ftl.gc_page_moves"),
            device.ftl()->counters().Get("gc_page_moves"));
  EXPECT_EQ(ts.FinalU64("ftl.host_writes"),
            device.ftl()->counters().Get("host_writes"));
  EXPECT_GT(ts.FinalU64("ftl.gc_page_moves"), 0u);

  // And the registry's name lookup agrees with the sampled columns.
  EXPECT_EQ(reg.CounterByName("ssd.pages_programmed"),
            ts.FinalU64("ssd.pages_programmed"));
}

// A block-layer stack registers its own metrics through the same
// registry; queue/inflight gauges exist and the submitted/completed
// mirrors balance on a drained run.
TEST(MetricsStackTest, BlockLayerMetrics) {
  sim::Simulator sim;
  MetricRegistry reg;
  ssd::Config cfg = ssd::Config::Small();
  cfg.metrics = &reg;
  ssd::Device device(&sim, cfg);
  blocklayer::BlockLayerConfig bl_cfg;
  bl_cfg.metrics = &reg;
  blocklayer::BlockLayer layer(&sim, &device, bl_cfg);

  Sampler sampler(&sim, &reg, /*interval_ns=*/100'000);
  sampler.Start();
  RunRandom(&sim, &layer, /*writes=*/true, 2000, 8, /*seed=*/5);
  sim.Run();
  sampler.Stop();

  const TimeSeries& ts = sampler.series();
  EXPECT_EQ(ts.FinalU64("blk.submitted"), 2000u);
  EXPECT_EQ(ts.FinalU64("blk.completed"), 2000u);
  EXPECT_EQ(ts.FinalU64("blk.lat_ns.count"), 2000u);
  EXPECT_TRUE(reg.Has("blk.queue_depth"));
  EXPECT_TRUE(reg.Has("blk.inflight"));
  // Drained: the inflight gauge reads zero at the end.
  const Column* inflight = ts.Find("blk.inflight");
  ASSERT_NE(inflight, nullptr);
  EXPECT_DOUBLE_EQ(inflight->f64.back(), 0.0);
  EXPECT_GT(ts.FinalU64("blk.cpu_busy_ns"), 0u);
}

}  // namespace
}  // namespace postblock::metrics
