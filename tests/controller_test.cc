#include <vector>

#include <gtest/gtest.h>

#include "sim/simulator.h"
#include "ssd/config.h"
#include "ssd/controller.h"

namespace postblock::ssd {
namespace {

// One channel, four LUNs: the Figure 1 configuration.
Config Fig1Config() {
  Config c;
  c.geometry.channels = 1;
  c.geometry.luns_per_channel = 4;
  c.geometry.planes_per_lun = 1;
  c.geometry.blocks_per_plane = 4;
  c.geometry.pages_per_block = 8;
  c.geometry.page_size_bytes = 4096;
  c.timing = flash::Timing::Mlc();
  return c;
}

// Expected single-op latencies for the default MLC timing.
constexpr SimTime kArrayRead = 200 + 40'000;        // cmd + t_read
constexpr SimTime kTransfer = 200 + 20'480;         // cmd + 4KiB @200MB/s
constexpr SimTime kProgram = 400'000;
constexpr SimTime kErase = 2'000'000;

class ControllerTest : public ::testing::Test {
 protected:
  ControllerTest() : controller_(&sim_, Fig1Config()) {}

  sim::Simulator sim_;
  Controller controller_;
};

TEST_F(ControllerTest, IsolatedReadLatency) {
  // A page must exist before it can be read.
  flash::Ppa ppa{0, 0, 0, 0, 0};
  bool prog_done = false;
  controller_.ProgramPage(ppa, flash::PageData{0, 1, 77, 0},
                          [&](Status st) {
                            ASSERT_TRUE(st.ok());
                            prog_done = true;
                          });
  sim_.Run();
  ASSERT_TRUE(prog_done);

  const SimTime start = sim_.Now();
  SimTime done_at = 0;
  std::uint64_t token = 0;
  controller_.ReadPage(ppa, [&](StatusOr<flash::PageData> r) {
    ASSERT_TRUE(r.ok());
    token = r->token;
    done_at = sim_.Now();
  });
  sim_.Run();
  EXPECT_EQ(token, 77u);
  EXPECT_EQ(done_at - start, kArrayRead + kTransfer);
}

TEST_F(ControllerTest, IsolatedProgramLatency) {
  SimTime done_at = 0;
  controller_.ProgramPage(flash::Ppa{0, 0, 0, 0, 0}, flash::PageData{},
                          [&](Status st) {
                            ASSERT_TRUE(st.ok());
                            done_at = sim_.Now();
                          });
  sim_.Run();
  EXPECT_EQ(done_at, kTransfer + kProgram);
}

TEST_F(ControllerTest, IsolatedEraseLatency) {
  SimTime done_at = 0;
  controller_.EraseBlock(flash::BlockAddr{0, 0, 0, 0}, [&](Status st) {
    ASSERT_TRUE(st.ok());
    done_at = sim_.Now();
  });
  sim_.Run();
  EXPECT_EQ(done_at, 200u + kErase);
}

// Figure 1, right side: four parallel programs to four LUNs on one
// channel are *chip-bound* — transfers serialize but the long array
// programs overlap, so the makespan is ~(4 transfers + 1 program), far
// below 4 serial programs.
TEST_F(ControllerTest, Fig1ParallelWritesAreChipBound) {
  std::vector<SimTime> done;
  for (std::uint32_t lun = 0; lun < 4; ++lun) {
    controller_.ProgramPage(flash::Ppa{0, lun, 0, 0, 0},
                            flash::PageData{}, [&](Status st) {
                              ASSERT_TRUE(st.ok());
                              done.push_back(sim_.Now());
                            });
  }
  sim_.Run();
  ASSERT_EQ(done.size(), 4u);
  const SimTime makespan = done.back();
  EXPECT_EQ(makespan, 4 * kTransfer + kProgram);
  // Near-4x speedup over serial execution.
  EXPECT_LT(makespan, 4 * (kTransfer + kProgram) / 3);
}

// Figure 1, left side: four parallel reads on one channel are
// *channel-bound* — array reads overlap but every page must cross the
// single bus, so the makespan is ~(1 array read + 4 transfers).
TEST_F(ControllerTest, Fig1ParallelReadsAreChannelBound) {
  for (std::uint32_t lun = 0; lun < 4; ++lun) {
    controller_.ProgramPage(flash::Ppa{0, lun, 0, 0, 0},
                            flash::PageData{0, 1, lun, 0},
                            [](Status st) { ASSERT_TRUE(st.ok()); });
  }
  sim_.Run();
  const SimTime start = sim_.Now();
  std::vector<SimTime> done;
  for (std::uint32_t lun = 0; lun < 4; ++lun) {
    controller_.ReadPage(flash::Ppa{0, lun, 0, 0, 0},
                         [&](StatusOr<flash::PageData> r) {
                           ASSERT_TRUE(r.ok());
                           done.push_back(sim_.Now());
                         });
  }
  sim_.Run();
  ASSERT_EQ(done.size(), 4u);
  const SimTime makespan = done.back() - start;
  EXPECT_EQ(makespan, kArrayRead + 4 * kTransfer);
  // Reads gain at most ~2x from LUN parallelism here: channel-bound.
  EXPECT_GT(makespan, 4 * kTransfer);
}

TEST_F(ControllerTest, SameLunOperationsSerialize) {
  // Two programs to the same LUN (different pages) cannot overlap their
  // array-program phases.
  std::vector<SimTime> done;
  controller_.ProgramPage(flash::Ppa{0, 0, 0, 0, 0}, flash::PageData{},
                          [&](Status) { done.push_back(sim_.Now()); });
  controller_.ProgramPage(flash::Ppa{0, 0, 0, 0, 1}, flash::PageData{},
                          [&](Status) { done.push_back(sim_.Now()); });
  sim_.Run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(done[0], kTransfer + kProgram);
  EXPECT_EQ(done[1], 2 * (kTransfer + kProgram));
}

TEST_F(ControllerTest, ReadBehindEraseStalls) {
  // The paper, Myth 3: "wait 3ms for the completion of an erase
  // operation on that LUN". A read queued behind an erase on the same
  // LUN pays the full erase latency first.
  flash::Ppa ppa{0, 0, 0, 1, 0};
  controller_.ProgramPage(ppa, flash::PageData{0, 1, 1, 0},
                          [](Status st) { ASSERT_TRUE(st.ok()); });
  sim_.Run();
  const SimTime start = sim_.Now();
  SimTime read_done = 0;
  controller_.EraseBlock(flash::BlockAddr{0, 0, 0, 0}, [](Status) {});
  controller_.ReadPage(ppa, [&](StatusOr<flash::PageData> r) {
    ASSERT_TRUE(r.ok());
    read_done = sim_.Now();
  });
  sim_.Run();
  EXPECT_GE(read_done - start, kErase + kArrayRead + kTransfer);
}

TEST_F(ControllerTest, LatencyHistogramsPopulate) {
  controller_.ProgramPage(flash::Ppa{0, 0, 0, 0, 0}, flash::PageData{},
                          [](Status) {});
  sim_.Run();
  controller_.ReadPage(flash::Ppa{0, 0, 0, 0, 0},
                       [](StatusOr<flash::PageData>) {});
  controller_.EraseBlock(flash::BlockAddr{0, 0, 0, 1}, [](Status) {});
  sim_.Run();
  EXPECT_EQ(controller_.program_latency().count(), 1u);
  EXPECT_EQ(controller_.read_latency().count(), 1u);
  EXPECT_EQ(controller_.erase_latency().count(), 1u);
}

TEST_F(ControllerTest, ProgramConstraintViolationSurfacesInCallback) {
  Status seen;
  controller_.ProgramPage(flash::Ppa{0, 0, 0, 0, 0}, flash::PageData{},
                          [&](Status st) { seen = st; });
  sim_.Run();
  ASSERT_TRUE(seen.ok());
  controller_.ProgramPage(flash::Ppa{0, 0, 0, 0, 0}, flash::PageData{},
                          [&](Status st) { seen = st; });
  sim_.Run();
  EXPECT_TRUE(seen.IsFailedPrecondition());
}

TEST_F(ControllerTest, ChannelUtilizationTracked) {
  controller_.ProgramPage(flash::Ppa{0, 0, 0, 0, 0}, flash::PageData{},
                          [](Status) {});
  sim_.Run();
  EXPECT_GT(controller_.channel(0)->Utilization(), 0.0);
}

}  // namespace
}  // namespace postblock::ssd
