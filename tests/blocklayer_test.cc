#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "blocklayer/block_layer.h"
#include "blocklayer/direct_driver.h"
#include "blocklayer/io_scheduler.h"
#include "blocklayer/simple_device.h"
#include "sim/simulator.h"

namespace postblock::blocklayer {
namespace {

SimpleDeviceConfig FastDevice() {
  SimpleDeviceConfig c;
  c.num_blocks = 4096;
  c.read_ns = 10 * kMicrosecond;
  c.write_ns = 20 * kMicrosecond;
  c.units = 8;
  return c;
}

IoResult RunOne(sim::Simulator* sim, BlockDevice* dev, IoRequest req) {
  IoResult out;
  bool fired = false;
  req.on_complete = [&](const IoResult& r) {
    out = r;
    fired = true;
  };
  dev->Submit(std::move(req));
  EXPECT_TRUE(sim->RunUntilPredicate([&] { return fired; }));
  return out;
}

// --- SimpleBlockDevice ----------------------------------------------------

TEST(SimpleDeviceTest, RoundTripAndTrim) {
  sim::Simulator sim;
  SimpleBlockDevice dev(&sim, FastDevice());
  IoRequest w;
  w.op = IoOp::kWrite;
  w.lba = 3;
  w.nblocks = 2;
  w.tokens = {5, 6};
  ASSERT_TRUE(RunOne(&sim, &dev, std::move(w)).status.ok());
  IoRequest r;
  r.op = IoOp::kRead;
  r.lba = 3;
  r.nblocks = 2;
  EXPECT_EQ(RunOne(&sim, &dev, std::move(r)).tokens,
            (std::vector<std::uint64_t>{5, 6}));
  IoRequest t;
  t.op = IoOp::kTrim;
  t.lba = 3;
  t.nblocks = 1;
  ASSERT_TRUE(RunOne(&sim, &dev, std::move(t)).status.ok());
  IoRequest r2;
  r2.op = IoOp::kRead;
  r2.lba = 3;
  r2.nblocks = 2;
  EXPECT_EQ(RunOne(&sim, &dev, std::move(r2)).tokens,
            (std::vector<std::uint64_t>{0, 6}));
}

TEST(SimpleDeviceTest, LatencyMatchesConfig) {
  sim::Simulator sim;
  SimpleBlockDevice dev(&sim, FastDevice());
  const SimTime start = sim.Now();
  IoRequest r;
  r.op = IoOp::kRead;
  r.lba = 0;
  r.nblocks = 1;
  RunOne(&sim, &dev, std::move(r));
  EXPECT_EQ(sim.Now() - start, 2 * kMicrosecond + 10 * kMicrosecond);
}

TEST(SimpleDeviceTest, ParallelUnitsOverlap) {
  sim::Simulator sim;
  SimpleDeviceConfig c = FastDevice();
  c.units = 4;
  SimpleBlockDevice dev(&sim, c);
  int done = 0;
  for (int i = 0; i < 4; ++i) {
    IoRequest r;
    r.op = IoOp::kRead;
    r.lba = static_cast<Lba>(i);
    r.nblocks = 1;
    r.on_complete = [&](const IoResult&) { ++done; };
    dev.Submit(std::move(r));
  }
  sim.Run();
  EXPECT_EQ(done, 4);
  // All four overlapped in the four units.
  EXPECT_EQ(sim.Now(), 2 * kMicrosecond + 10 * kMicrosecond);
}

// --- IoScheduler -----------------------------------------------------------

TEST(IoSchedulerTest, NoopIsFifo) {
  IoScheduler s(SchedulerKind::kNoop);
  IoRequest a;
  a.lba = 10;
  IoRequest b;
  b.lba = 20;
  s.Enqueue(std::move(a));
  s.Enqueue(std::move(b));
  EXPECT_EQ(s.Dequeue().lba, 10u);
  EXPECT_EQ(s.Dequeue().lba, 20u);
}

TEST(IoSchedulerTest, MergeCoalescesContiguousSameOp) {
  IoScheduler s(SchedulerKind::kMerge);
  IoRequest a;
  a.op = IoOp::kWrite;
  a.lba = 10;
  a.nblocks = 2;
  a.tokens = {1, 2};
  IoRequest b;
  b.op = IoOp::kWrite;
  b.lba = 12;
  b.nblocks = 1;
  b.tokens = {3};
  s.Enqueue(std::move(a));
  s.Enqueue(std::move(b));
  EXPECT_EQ(s.depth(), 1u);
  const IoRequest merged = s.Dequeue();
  EXPECT_EQ(merged.nblocks, 3u);
  EXPECT_EQ(merged.tokens, (std::vector<std::uint64_t>{1, 2, 3}));
  EXPECT_EQ(s.counters().Get("back_merges"), 1u);
}

TEST(IoSchedulerTest, MergedCompletionsFanOutTokenSlices) {
  IoScheduler s(SchedulerKind::kMerge);
  std::vector<std::uint64_t> first_tokens, second_tokens;
  IoRequest a;
  a.op = IoOp::kRead;
  a.lba = 10;
  a.nblocks = 2;
  a.on_complete = [&](const IoResult& r) { first_tokens = r.tokens; };
  IoRequest b;
  b.op = IoOp::kRead;
  b.lba = 12;
  b.nblocks = 1;
  b.on_complete = [&](const IoResult& r) { second_tokens = r.tokens; };
  s.Enqueue(std::move(a));
  s.Enqueue(std::move(b));
  IoRequest merged = s.Dequeue();
  merged.on_complete(IoResult{Status::Ok(), {100, 101, 102}});
  EXPECT_EQ(first_tokens, (std::vector<std::uint64_t>{100, 101}));
  EXPECT_EQ(second_tokens, (std::vector<std::uint64_t>{102}));
}

TEST(IoSchedulerTest, NonContiguousOrDifferentOpNotMerged) {
  IoScheduler s(SchedulerKind::kMerge);
  IoRequest a;
  a.op = IoOp::kWrite;
  a.lba = 10;
  a.nblocks = 1;
  a.tokens = {1};
  IoRequest gap;
  gap.op = IoOp::kWrite;
  gap.lba = 15;
  gap.nblocks = 1;
  gap.tokens = {2};
  IoRequest read;
  read.op = IoOp::kRead;
  read.lba = 16;
  read.nblocks = 1;
  s.Enqueue(std::move(a));
  s.Enqueue(std::move(gap));
  s.Enqueue(std::move(read));
  EXPECT_EQ(s.depth(), 3u);
}

// --- BlockLayer -------------------------------------------------------------

TEST(BlockLayerTest, AddsCpuCostsToLatency) {
  sim::Simulator sim;
  SimpleBlockDevice dev(&sim, FastDevice());
  BlockLayerConfig cfg;
  cfg.cpu = CpuCosts::Legacy();
  BlockLayer layer(&sim, &dev, cfg);
  const SimTime start = sim.Now();
  IoRequest r;
  r.op = IoOp::kRead;
  r.lba = 0;
  r.nblocks = 1;
  RunOne(&sim, &layer, std::move(r));
  const SimTime device_only = 12 * kMicrosecond;
  const SimTime expected = device_only + cfg.cpu.submit_ns +
                           cfg.cpu.schedule_ns + cfg.cpu.interrupt_ns;
  EXPECT_EQ(sim.Now() - start, expected);
}

TEST(BlockLayerTest, PollingCheaperThanInterrupts) {
  auto run = [](bool interrupts) {
    sim::Simulator sim;
    SimpleBlockDevice dev(&sim, FastDevice());
    BlockLayerConfig cfg;
    cfg.interrupt_completion = interrupts;
    BlockLayer layer(&sim, &dev, cfg);
    IoRequest r;
    r.op = IoOp::kRead;
    r.lba = 0;
    r.nblocks = 1;
    RunOne(&sim, &layer, std::move(r));
    return sim.Now();
  };
  EXPECT_LT(run(false), run(true));
}

TEST(BlockLayerTest, QueueDepthThrottlesDispatch) {
  sim::Simulator sim;
  SimpleDeviceConfig slow = FastDevice();
  slow.units = 64;  // device itself imposes no limit
  SimpleBlockDevice dev(&sim, slow);
  BlockLayerConfig cfg;
  cfg.queue_depth = 2;
  BlockLayerConfig deep = cfg;
  deep.queue_depth = 64;

  auto makespan = [&](const BlockLayerConfig& c) {
    sim::Simulator s;
    SimpleBlockDevice d(&s, slow);
    BlockLayer layer(&s, &d, c);
    int done = 0;
    for (int i = 0; i < 32; ++i) {
      IoRequest r;
      r.op = IoOp::kRead;
      r.lba = static_cast<Lba>(i * 2);  // avoid merges
      r.nblocks = 1;
      r.on_complete = [&](const IoResult&) { ++done; };
      layer.Submit(std::move(r));
    }
    s.Run();
    EXPECT_EQ(done, 32);
    return s.Now();
  };
  EXPECT_GT(makespan(cfg), makespan(deep));
}

TEST(BlockLayerTest, MergeSchedulerMergesSequentialStream) {
  sim::Simulator sim;
  SimpleBlockDevice dev(&sim, FastDevice());
  BlockLayerConfig cfg;
  cfg.scheduler = SchedulerKind::kMerge;
  cfg.queue_depth = 1;  // force queue buildup behind the first IO
  BlockLayer layer(&sim, &dev, cfg);
  int done = 0;
  for (int i = 0; i < 8; ++i) {
    IoRequest r;
    r.op = IoOp::kWrite;
    r.lba = static_cast<Lba>(i);
    r.nblocks = 1;
    r.tokens = {static_cast<std::uint64_t>(i)};
    r.on_complete = [&](const IoResult&) { ++done; };
    layer.Submit(std::move(r));
  }
  sim.Run();
  EXPECT_EQ(done, 8);
  EXPECT_GT(layer.scheduler(0).counters().Get("back_merges"), 0u);
}

TEST(BlockLayerTest, CpuUtilizationReported) {
  sim::Simulator sim;
  SimpleBlockDevice dev(&sim, FastDevice());
  BlockLayerConfig cfg;
  BlockLayer layer(&sim, &dev, cfg);
  IoRequest r;
  r.op = IoOp::kRead;
  r.lba = 0;
  r.nblocks = 1;
  RunOne(&sim, &layer, std::move(r));
  EXPECT_GT(layer.CpuUtilization(), 0.0);
  EXPECT_EQ(layer.counters().Get("submitted"), 1u);
  EXPECT_EQ(layer.counters().Get("completed"), 1u);
}

TEST(BlockLayerTest, PowerCycleReclaimsPooledIoStates) {
  // Requests resident in the scheduler at power-cycle time are dropped
  // without completing, but their pooled IoStates must return to the
  // free list — a leak here grows the pool on every crash test cycle.
  sim::Simulator sim;
  SimpleBlockDevice dev(&sim, FastDevice());
  BlockLayerConfig cfg;
  cfg.queue_depth = 2;  // keep most requests scheduler-resident
  BlockLayer layer(&sim, &dev, cfg);
  int completed = 0;
  for (int i = 0; i < 10; ++i) {
    IoRequest r;
    r.op = IoOp::kRead;
    r.lba = static_cast<Lba>(i * 2);  // avoid merges
    r.nblocks = 1;
    r.on_complete = [&](const IoResult&) { ++completed; };
    layer.Submit(std::move(r));
  }
  // Far enough for submissions to queue, short of any device completion.
  sim.RunUntil(10 * kMicrosecond);
  ASSERT_FALSE(layer.scheduler(0).empty());
  layer.PowerCycle();
  sim.Run();
  EXPECT_EQ(completed, 0);  // dropped IOs never reach the caller
  EXPECT_EQ(layer.io_states_allocated(), 10u);
  EXPECT_EQ(layer.io_states_free(), layer.io_states_allocated());
}

// --- DirectDriver -----------------------------------------------------------

TEST(DirectDriverTest, LowerOverheadThanBlockLayer) {
  auto latency = [](bool direct) {
    sim::Simulator sim;
    SimpleBlockDevice dev(&sim, FastDevice());
    std::unique_ptr<BlockDevice> path;
    if (direct) {
      path = std::make_unique<DirectDriver>(&sim, &dev);
    } else {
      path = std::make_unique<BlockLayer>(&sim, &dev, BlockLayerConfig{});
    }
    IoRequest r;
    r.op = IoOp::kRead;
    r.lba = 0;
    r.nblocks = 1;
    RunOne(&sim, path.get(), std::move(r));
    return sim.Now();
  };
  EXPECT_LT(latency(true), latency(false));
}

TEST(DirectDriverTest, PassesDataThrough) {
  sim::Simulator sim;
  SimpleBlockDevice dev(&sim, FastDevice());
  DirectDriver direct(&sim, &dev);
  IoRequest w;
  w.op = IoOp::kWrite;
  w.lba = 1;
  w.nblocks = 1;
  w.tokens = {9};
  ASSERT_TRUE(RunOne(&sim, &direct, std::move(w)).status.ok());
  IoRequest r;
  r.op = IoOp::kRead;
  r.lba = 1;
  r.nblocks = 1;
  EXPECT_EQ(RunOne(&sim, &direct, std::move(r)).tokens[0], 9u);
}

}  // namespace
}  // namespace postblock::blocklayer
