// Property test: the timing-wheel EventQueue must pop the exact (time,
// insertion-order) sequence of the original binary-heap implementation,
// kept as ReferenceEventQueue. This is the determinism contract the
// whole repo leans on — every bench's final Now() and stats are only
// reproducible if the event core's tie-breaks never change.

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "common/types.h"
#include "sim/event_queue.h"
#include "sim/reference_event_queue.h"

namespace postblock::sim {
namespace {

constexpr SimTime kHorizon = 1ull << 36;  // 64^6 ns: wheel coverage

struct PopRecord {
  SimTime when;
  std::uint64_t id;
  bool operator==(const PopRecord&) const = default;
};

/// Delay mixture covering every queue path: heavy same-timestamp ties,
/// short and medium delays across wheel levels, and a tail past the
/// wheel horizon that must overflow into the sorted map.
SimTime DrawDelay(std::mt19937_64& rng) {
  switch (rng() % 100) {
    case 0:  // beyond the horizon: overflow map
      return kHorizon + rng() % (2 * kHorizon);
    case 1:
    case 2:  // coarse levels
      return rng() % (kHorizon / 4);
    default: {
      const auto r = rng() % 97;
      if (r < 30) return 0;  // same-timestamp burst
      if (r < 70) return rng() % 256;
      return rng() % 1'000'000;
    }
  }
}

/// Drives both queues through an identical randomized push/pop
/// interleaving and compares the full (when, id) pop sequences.
void RunInterleaving(std::uint64_t seed, std::uint64_t pushes) {
  std::mt19937_64 rng(seed);
  EventQueue wheel;
  ReferenceEventQueue ref;
  std::vector<PopRecord> wheel_log, ref_log;
  wheel_log.reserve(pushes);
  ref_log.reserve(pushes);

  SimTime now = 0;  // time of the most recently popped event
  std::uint64_t next_id = 0;
  std::uint64_t pushed = 0;

  const auto pop_both = [&] {
    const SimTime tw = wheel.NextTime();
    const SimTime tr = ref.NextTime();
    ASSERT_EQ(tw, tr) << "NextTime diverged after "
                      << wheel_log.size() << " pops";
    now = tw;
    auto wcb = wheel.Pop();
    auto rcb = ref.Pop();
    wcb();
    rcb();
  };

  while (pushed < pushes || !wheel.empty()) {
    if (rng() % 16 == 0) {
      // Deadline-bounded peek, as Simulator::RunUntil issues. Both
      // implementations must agree; on a hit RunUntil pops the event,
      // on a miss it advances the clock to the deadline — mirror both,
      // so later pushes may land *before* the earliest pending event
      // (but at/after the cleared bound) and must still pop at their
      // own timestamps, which the sequence comparison verifies.
      const SimTime bound = now + DrawDelay(rng);
      const bool due = wheel.HasEventAtOrBefore(bound);
      ASSERT_EQ(due, ref.HasEventAtOrBefore(bound))
          << "bounded peek diverged after " << wheel_log.size()
          << " pops (bound " << bound << ")";
      if (due) {
        ASSERT_NO_FATAL_FAILURE(pop_both());
        continue;
      }
      now = bound;
    }
    const bool can_push = pushed < pushes;
    const bool must_pop = !can_push || wheel.size() > 50'000;
    if (!must_pop && (wheel.empty() || rng() % 3 != 0)) {
      // Timestamps never precede the last popped event, mirroring how
      // Simulator only schedules relative to Now().
      const SimTime when = now + DrawDelay(rng);
      const std::uint64_t id = next_id++;
      wheel.Push(when, [&wheel_log, when, id] {
        wheel_log.push_back({when, id});
      });
      ref.Push(when, [&ref_log, when, id] {
        ref_log.push_back({when, id});
      });
      ++pushed;
    } else {
      ASSERT_NO_FATAL_FAILURE(pop_both());
    }
  }

  ASSERT_TRUE(ref.empty());
  ASSERT_EQ(wheel_log.size(), pushes);
  ASSERT_EQ(wheel_log, ref_log) << "pop sequences diverged (seed "
                                << seed << ")";
}

TEST(EventQueueDeterminismTest, MillionRandomizedPushesMatchReference) {
  RunInterleaving(/*seed=*/0x5eed'0001, /*pushes=*/1'000'000);
}

TEST(EventQueueDeterminismTest, MoreSeedsSmallerRuns) {
  for (std::uint64_t seed : {42ull, 7ull, 0xdeadbeefull}) {
    RunInterleaving(seed, /*pushes=*/50'000);
    if (HasFatalFailure()) return;
  }
}

TEST(EventQueueDeterminismTest, SameTimestampBurstPopsInPushOrder) {
  EventQueue q;
  std::vector<std::uint64_t> order;
  for (std::uint64_t id = 0; id < 1000; ++id) {
    q.Push(500, [&order, id] { order.push_back(id); });
  }
  while (!q.empty()) {
    EXPECT_EQ(q.NextTime(), 500u);
    q.Pop()();
  }
  for (std::uint64_t id = 0; id < order.size(); ++id) {
    ASSERT_EQ(order[id], id);
  }
}

TEST(EventQueueDeterminismTest, FarFutureEventsKeepPushOrderTies) {
  // Two events past the horizon at the same timestamp, pushed around a
  // near event: overflow handling must preserve push order on the tie.
  EventQueue q;
  std::vector<int> order;
  const SimTime far = 3 * kHorizon + 17;
  q.Push(far, [&order] { order.push_back(1); });
  q.Push(5, [&order] { order.push_back(0); });
  q.Push(far, [&order] { order.push_back(2); });
  while (!q.empty()) q.Pop()();
  ASSERT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(EventQueueDeterminismTest, PastPushClampsToLastPoppedTime) {
  EventQueue q;
  SimTime seen = 0;
  q.Push(100, [] {});
  EXPECT_EQ(q.NextTime(), 100u);
  q.Pop()();
  q.Push(10, [&q, &seen] { seen = q.size(); });  // in the past: clamps
  EXPECT_EQ(q.NextTime(), 100u);
  q.Pop()();
  EXPECT_EQ(seen, 0u);
}

TEST(EventQueueDeterminismTest, BoundedPeekThenEarlierPushPopsAtOwnTime) {
  // Regression: a deadline peek that misses must not commit the wheel
  // to the far-future pending event — an event pushed afterwards at an
  // earlier timestamp has to pop first, at its own time, not be
  // silently deferred onto the stale event.
  EventQueue q;
  std::vector<SimTime> order;
  q.Push(1000, [&order] { order.push_back(1000); });
  EXPECT_FALSE(q.HasEventAtOrBefore(10));
  q.Push(100, [&order] { order.push_back(100); });
  EXPECT_EQ(q.NextTime(), 100u);
  q.Pop()();
  EXPECT_EQ(q.NextTime(), 1000u);
  q.Pop()();
  EXPECT_EQ(order, (std::vector<SimTime>{100, 1000}));
}

TEST(EventQueueDeterminismTest, BoundedPeekAgainstOverflowEvent) {
  // Same property when the only pending event sits in the overflow map:
  // the miss must not pull the overflow block into the wheel.
  EventQueue q;
  std::vector<SimTime> order;
  const SimTime far = 2 * kHorizon + 5;
  q.Push(far, [&order, far] { order.push_back(far); });
  EXPECT_FALSE(q.HasEventAtOrBefore(1'000'000));
  q.Push(1'000'000, [&order] { order.push_back(1'000'000); });
  EXPECT_EQ(q.NextTime(), 1'000'000u);
  q.Pop()();
  EXPECT_EQ(q.NextTime(), far);
  q.Pop()();
  EXPECT_EQ(order, (std::vector<SimTime>{1'000'000, far}));
}

TEST(EventQueueDeterminismTest, BoundedPeekPartialAdvanceKeepsLaterPushExact) {
  // A miss may legitimately advance the wheel through intermediate slot
  // hops that stay at or below the bound; pushes at/after the bound
  // must still land exactly.
  EventQueue q;
  std::vector<SimTime> order;
  q.Push(970, [&order] { order.push_back(970); });
  EXPECT_FALSE(q.HasEventAtOrBefore(965));  // hops to slot base 960
  q.Push(966, [&order] { order.push_back(966); });
  EXPECT_TRUE(q.HasEventAtOrBefore(966));
  EXPECT_EQ(q.NextTime(), 966u);
  q.Pop()();
  q.Pop()();
  EXPECT_EQ(order, (std::vector<SimTime>{966, 970}));
}

TEST(EventQueueDeterminismTest, NextTimeIsIdempotent) {
  // NextTime advances internal cursors; repeated calls must still
  // report the same timestamp until the event is popped.
  EventQueue q;
  q.Push(2 * kHorizon + 3, [] {});  // overflow path
  q.Push(4096, [] {});              // coarse level
  EXPECT_EQ(q.NextTime(), 4096u);
  EXPECT_EQ(q.NextTime(), 4096u);
  q.Pop()();
  EXPECT_EQ(q.NextTime(), 2 * kHorizon + 3);
  EXPECT_EQ(q.NextTime(), 2 * kHorizon + 3);
}

}  // namespace
}  // namespace postblock::sim
