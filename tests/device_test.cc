// ssd::Device (block-device front end) + WriteBuffer tests.

#include <map>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "sim/simulator.h"
#include "ssd/device.h"

namespace postblock::ssd {
namespace {

using blocklayer::IoOp;
using blocklayer::IoRequest;
using blocklayer::IoResult;

class DeviceTest : public ::testing::Test {
 protected:
  void Build(const Config& config) {
    device_.reset();
    simulator_ = std::make_unique<sim::Simulator>();
    device_ = std::make_unique<Device>(simulator_.get(), config);
  }

  void SetUp() override { Build(Config::Small()); }

  IoResult Run(IoRequest req) {
    IoResult out;
    bool fired = false;
    req.on_complete = [&](const IoResult& r) {
      out = r;
      fired = true;
    };
    device_->Submit(std::move(req));
    EXPECT_TRUE(simulator_->RunUntilPredicate([&] { return fired; }))
        << "request never completed";
    return out;
  }

  IoResult Write(Lba lba, std::vector<std::uint64_t> tokens) {
    IoRequest r;
    r.op = IoOp::kWrite;
    r.lba = lba;
    r.nblocks = static_cast<std::uint32_t>(tokens.size());
    r.tokens = std::move(tokens);
    return Run(std::move(r));
  }

  IoResult Read(Lba lba, std::uint32_t nblocks) {
    IoRequest r;
    r.op = IoOp::kRead;
    r.lba = lba;
    r.nblocks = nblocks;
    return Run(std::move(r));
  }

  IoResult Trim(Lba lba, std::uint32_t nblocks) {
    IoRequest r;
    r.op = IoOp::kTrim;
    r.lba = lba;
    r.nblocks = nblocks;
    return Run(std::move(r));
  }

  IoResult Flush() {
    IoRequest r;
    r.op = IoOp::kFlush;
    r.nblocks = 1;
    return Run(std::move(r));
  }

  std::unique_ptr<sim::Simulator> simulator_;
  std::unique_ptr<Device> device_;
};

TEST_F(DeviceTest, MultiBlockWriteReadRoundTrip) {
  ASSERT_TRUE(Write(10, {1, 2, 3, 4}).status.ok());
  const IoResult r = Read(10, 4);
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(r.tokens, (std::vector<std::uint64_t>{1, 2, 3, 4}));
}

TEST_F(DeviceTest, PartialOverlapReadsMixedState) {
  ASSERT_TRUE(Write(10, {7, 8}).status.ok());
  const IoResult r = Read(9, 4);  // 9 unwritten, 10-11 written, 12 not
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(r.tokens, (std::vector<std::uint64_t>{0, 7, 8, 0}));
}

TEST_F(DeviceTest, WriteTokenCountMismatchRejected) {
  IoRequest r;
  r.op = IoOp::kWrite;
  r.lba = 0;
  r.nblocks = 3;
  r.tokens = {1};
  EXPECT_TRUE(Run(std::move(r)).status.IsInvalidArgument());
}

TEST_F(DeviceTest, BeyondDeviceRejected) {
  IoRequest r;
  r.op = IoOp::kRead;
  r.lba = device_->num_blocks() - 1;
  r.nblocks = 2;
  EXPECT_TRUE(Run(std::move(r)).status.IsOutOfRange());
}

TEST_F(DeviceTest, ZeroBlockRequestCompletesOk) {
  IoRequest r;
  r.op = IoOp::kRead;
  r.nblocks = 0;
  EXPECT_TRUE(Run(std::move(r)).status.ok());
}

TEST_F(DeviceTest, TrimThenReadZero) {
  ASSERT_TRUE(Write(5, {42}).status.ok());
  ASSERT_TRUE(Trim(5, 1).status.ok());
  EXPECT_EQ(Read(5, 1).tokens[0], 0u);
}

TEST_F(DeviceTest, LatencyHistogramsPopulate) {
  Write(0, {1});
  Read(0, 1);
  EXPECT_EQ(device_->write_latency().count(), 1u);
  EXPECT_EQ(device_->read_latency().count(), 1u);
}

TEST_F(DeviceTest, EveryFtlKindWorksThroughTheDevice) {
  for (FtlKind kind : {FtlKind::kPageMap, FtlKind::kBlockMap,
                       FtlKind::kHybrid, FtlKind::kDftl}) {
    Config c = Config::Small();
    c.ftl = kind;
    Build(c);
    ASSERT_TRUE(Write(3, {11, 22}).status.ok()) << FtlKindName(kind);
    const IoResult r = Read(3, 2);
    ASSERT_TRUE(r.status.ok()) << FtlKindName(kind);
    EXPECT_EQ(r.tokens, (std::vector<std::uint64_t>{11, 22}))
        << FtlKindName(kind);
  }
}

TEST_F(DeviceTest, PageFtlAccessorOnlyForPageMap) {
  EXPECT_NE(device_->page_ftl(), nullptr);
  Config c = Config::Small();
  c.ftl = FtlKind::kBlockMap;
  Build(c);
  EXPECT_EQ(device_->page_ftl(), nullptr);
  EXPECT_TRUE(device_->PowerCycle().code() ==
              StatusCode::kUnimplemented);
}

// --- Write buffer behaviour ---------------------------------------------

Config BufferedConfig(std::uint32_t pages) {
  Config c = Config::Small();
  c.write_buffer.pages = pages;
  return c;
}

TEST_F(DeviceTest, BufferedWritesCompleteAtCacheSpeed) {
  Build(BufferedConfig(64));
  const SimTime start = simulator_->Now();
  ASSERT_TRUE(Write(0, {1}).status.ok());
  const SimTime buffered_latency = simulator_->Now() - start;
  // Far below a flash program (400us): controller overhead + insert.
  EXPECT_LT(buffered_latency, 20 * kMicrosecond);

  Build(Config::Small());  // no buffer
  const SimTime start2 = simulator_->Now();
  ASSERT_TRUE(Write(0, {1}).status.ok());
  EXPECT_GT(simulator_->Now() - start2, 400 * kMicrosecond);
}

TEST_F(DeviceTest, BufferedReadHitReturnsNewData) {
  Build(BufferedConfig(64));
  IoRequest w;
  w.op = IoOp::kWrite;
  w.lba = 3;
  w.nblocks = 1;
  w.tokens = {77};
  bool wrote = false;
  w.on_complete = [&](const IoResult&) { wrote = true; };
  device_->Submit(std::move(w));
  ASSERT_TRUE(simulator_->RunUntilPredicate([&] { return wrote; }));
  // Read immediately: the data may still be only in the buffer.
  EXPECT_EQ(Read(3, 1).tokens[0], 77u);
}

TEST_F(DeviceTest, FlushDrainsBuffer) {
  Build(BufferedConfig(64));
  for (Lba lba = 0; lba < 8; ++lba) {
    ASSERT_TRUE(Write(lba, {lba + 1}).status.ok());
  }
  ASSERT_TRUE(Flush().status.ok());
  EXPECT_EQ(device_->write_buffer()->entries(), 0u);
  // Data is on flash now.
  for (Lba lba = 0; lba < 8; ++lba) {
    EXPECT_EQ(Read(lba, 1).tokens[0], lba + 1);
  }
}

TEST_F(DeviceTest, BufferAbsorbsOverwrites) {
  Build(BufferedConfig(64));
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(Write(5, {static_cast<std::uint64_t>(i + 1)}).status.ok());
  }
  EXPECT_GT(device_->write_buffer()->counters().Get("absorbed_overwrites"),
            0u);
  ASSERT_TRUE(Flush().status.ok());
  EXPECT_EQ(Read(5, 1).tokens[0], 10u);
}

TEST_F(DeviceTest, SmallBufferBackpressuresButCompletes) {
  Build(BufferedConfig(4));
  for (Lba lba = 0; lba < 64; ++lba) {
    ASSERT_TRUE(Write(lba, {lba + 1}).status.ok());
  }
  EXPECT_GT(device_->write_buffer()->counters().Get("buffer_full_waits"),
            0u);
  ASSERT_TRUE(Flush().status.ok());
  for (Lba lba = 0; lba < 64; ++lba) {
    EXPECT_EQ(Read(lba, 1).tokens[0], lba + 1);
  }
}

TEST_F(DeviceTest, TrimDropsBufferedCopy) {
  Build(BufferedConfig(64));
  ASSERT_TRUE(Write(5, {9}).status.ok());
  ASSERT_TRUE(Trim(5, 1).status.ok());
  EXPECT_EQ(Read(5, 1).tokens[0], 0u);
  ASSERT_TRUE(Flush().status.ok());
  EXPECT_EQ(Read(5, 1).tokens[0], 0u);
}

// --- Power cycles ---------------------------------------------------------

TEST_F(DeviceTest, PowerCycleKeepsDurableData) {
  ASSERT_TRUE(Write(0, {1, 2, 3}).status.ok());
  ASSERT_TRUE(device_->PowerCycle().ok());
  const IoResult r = Read(0, 3);
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(r.tokens, (std::vector<std::uint64_t>{1, 2, 3}));
}

TEST_F(DeviceTest, BatteryBackedBufferSurvivesPowerCycle) {
  Config c = BufferedConfig(64);
  c.write_buffer.battery_backed = true;
  Build(c);
  ASSERT_TRUE(Write(7, {55}).status.ok());  // likely still buffered
  ASSERT_TRUE(device_->PowerCycle().ok());
  EXPECT_EQ(Read(7, 1).tokens[0], 55u);
}

TEST_F(DeviceTest, VolatileBufferLosesUndrainedWrites) {
  Config c = BufferedConfig(64);
  c.write_buffer.battery_backed = false;
  // Make the drain slow enough that the write is still buffered.
  c.write_buffer.drain_depth_per_lun = 1;
  Build(c);
  IoRequest w;
  w.op = IoOp::kWrite;
  w.lba = 7;
  w.nblocks = 1;
  w.tokens = {55};
  bool wrote = false;
  w.on_complete = [&](const IoResult&) { wrote = true; };
  device_->Submit(std::move(w));
  ASSERT_TRUE(simulator_->RunUntilPredicate([&] { return wrote; }));
  // Cut power before the background drain reaches flash.
  ASSERT_TRUE(device_->PowerCycle().ok());
  EXPECT_EQ(Read(7, 1).tokens[0], 0u)
      << "acknowledged-but-volatile write must vanish (no battery)";
}

// --- Whole-device integrity sweep across FTLs -----------------------------

class DeviceIntegrityTest : public ::testing::TestWithParam<FtlKind> {};

TEST_P(DeviceIntegrityTest, RandomOpsMatchShadowModel) {
  sim::Simulator sim;
  Config c = Config::Small();
  c.ftl = GetParam();
  c.write_buffer.pages = 16;
  Device device(&sim, c);

  std::map<Lba, std::uint64_t> shadow;
  Rng rng(2026);
  const Lba n = std::min<Lba>(device.num_blocks(), 400);

  auto run = [&](IoRequest req) {
    IoResult out;
    bool fired = false;
    req.on_complete = [&](const IoResult& r) {
      out = r;
      fired = true;
    };
    device.Submit(std::move(req));
    EXPECT_TRUE(sim.RunUntilPredicate([&] { return fired; }));
    return out;
  };

  for (int i = 0; i < 1500; ++i) {
    const double dice = rng.NextDouble();
    const Lba lba = rng.Uniform(n);
    if (dice < 0.5) {
      IoRequest w;
      w.op = IoOp::kWrite;
      w.lba = lba;
      w.nblocks = 1;
      w.tokens = {static_cast<std::uint64_t>(i) + 10};
      ASSERT_TRUE(run(std::move(w)).status.ok()) << i;
      shadow[lba] = static_cast<std::uint64_t>(i) + 10;
    } else if (dice < 0.6) {
      IoRequest t;
      t.op = IoOp::kTrim;
      t.lba = lba;
      t.nblocks = 1;
      ASSERT_TRUE(run(std::move(t)).status.ok()) << i;
      shadow[lba] = 0;
    } else {
      IoRequest r;
      r.op = IoOp::kRead;
      r.lba = lba;
      r.nblocks = 1;
      const IoResult res = run(std::move(r));
      ASSERT_TRUE(res.status.ok()) << i;
      const auto it = shadow.find(lba);
      const std::uint64_t want = it == shadow.end() ? 0 : it->second;
      ASSERT_EQ(res.tokens[0], want)
          << "op " << i << " lba " << lba << " on "
          << FtlKindName(GetParam());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllFtls, DeviceIntegrityTest,
    ::testing::Values(FtlKind::kPageMap, FtlKind::kBlockMap,
                      FtlKind::kHybrid, FtlKind::kDftl),
    [](const ::testing::TestParamInfo<FtlKind>& info) {
      return FtlKindName(info.param) == std::string("page-map") ? "PageMap"
             : FtlKindName(info.param) == std::string("block-map")
                 ? "BlockMap"
             : FtlKindName(info.param) == std::string("hybrid") ? "Hybrid"
                                                                : "Dftl";
    });

}  // namespace
}  // namespace postblock::ssd
