#include <map>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "ftl/page_ftl.h"
#include "sim/completion.h"
#include "sim/simulator.h"
#include "ssd/config.h"
#include "ssd/controller.h"

namespace postblock::ftl {
namespace {

ssd::Config SmallConfig() {
  ssd::Config c = ssd::Config::Small();  // 2ch x 2lun x 32blk x 16pg
  c.gc.low_watermark_blocks = 3;
  c.gc.reserve_blocks = 1;
  return c;
}

class PageFtlTest : public ::testing::Test {
 protected:
  void Build(const ssd::Config& config) {
    // Device objects must outlive every pending simulator event, so a
    // rebuild gets a fresh simulator too.
    ftl_.reset();
    controller_.reset();
    simulator_ = std::make_unique<sim::Simulator>();
    controller_ = std::make_unique<ssd::Controller>(simulator_.get(), config);
    ftl_ = std::make_unique<PageFtl>(controller_.get());
  }

  void SetUp() override { Build(SmallConfig()); }

  sim::Simulator& sim() { return *simulator_; }

  // Synchronous helpers: issue, run to completion.
  Status WriteSync(Lba lba, std::uint64_t token) {
    sim::Completion done;
    ftl_->Write(lba, token, done.AsCallback(simulator_.get()));
    EXPECT_TRUE(sim::WaitFor(simulator_.get(), done))
        << "write never completed";
    return done.status();
  }

  StatusOr<std::uint64_t> ReadSync(Lba lba) {
    StatusOr<std::uint64_t> out = Status::Internal("not run");
    bool fired = false;
    ftl_->Read(lba, [&](StatusOr<std::uint64_t> r) {
      out = std::move(r);
      fired = true;
    });
    EXPECT_TRUE(simulator_->RunUntilPredicate([&] { return fired; }))
        << "read never completed";
    return out;
  }

  Status TrimSync(Lba lba) {
    sim::Completion done;
    ftl_->Trim(lba, done.AsCallback(simulator_.get()));
    EXPECT_TRUE(sim::WaitFor(simulator_.get(), done));
    return done.status();
  }

  std::unique_ptr<sim::Simulator> simulator_;
  std::unique_ptr<ssd::Controller> controller_;
  std::unique_ptr<PageFtl> ftl_;
};

TEST_F(PageFtlTest, WriteReadRoundTrip) {
  ASSERT_TRUE(WriteSync(5, 1234).ok());
  auto r = ReadSync(5);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 1234u);
}

TEST_F(PageFtlTest, OverwriteReturnsNewest) {
  ASSERT_TRUE(WriteSync(5, 1).ok());
  ASSERT_TRUE(WriteSync(5, 2).ok());
  ASSERT_TRUE(WriteSync(5, 3).ok());
  EXPECT_EQ(*ReadSync(5), 3u);
}

TEST_F(PageFtlTest, UnmappedReadsAsZero) {
  EXPECT_EQ(*ReadSync(17), 0u);
  EXPECT_EQ(ftl_->counters().Get("host_reads_unmapped"), 1u);
}

TEST_F(PageFtlTest, TrimUnmaps) {
  ASSERT_TRUE(WriteSync(5, 42).ok());
  ASSERT_TRUE(TrimSync(5).ok());
  EXPECT_EQ(*ReadSync(5), 0u);
}

TEST_F(PageFtlTest, OutOfRangeRejected) {
  const Lba beyond = ftl_->user_pages();
  EXPECT_TRUE(WriteSync(beyond, 1).IsOutOfRange());
  EXPECT_TRUE(ReadSync(beyond).status().IsOutOfRange());
  EXPECT_TRUE(TrimSync(beyond).IsOutOfRange());
}

TEST_F(PageFtlTest, UserCapacityReflectsOverProvisioning) {
  const auto& g = controller_->config().geometry;
  EXPECT_LT(ftl_->user_pages(), g.total_pages());
  EXPECT_EQ(ftl_->user_pages(),
            static_cast<std::uint64_t>(g.total_pages() * 0.875));
}

TEST_F(PageFtlTest, ConcurrentWritesToSameLbaLastSubmittedWins) {
  // Submit two writes back-to-back without draining; they may land on
  // different LUNs and complete out of order, but the second submission
  // must win.
  sim::Completion d1, d2;
  ftl_->Write(9, 111, d1.AsCallback(simulator_.get()));
  ftl_->Write(9, 222, d2.AsCallback(simulator_.get()));
  sim().Run();
  ASSERT_TRUE(d1.done() && d2.done());
  EXPECT_EQ(*ReadSync(9), 222u);
}

TEST_F(PageFtlTest, TrimRacingWriteRespectsSubmissionOrder) {
  ASSERT_TRUE(WriteSync(9, 1).ok());
  sim::Completion w, t;
  ftl_->Write(9, 2, w.AsCallback(simulator_.get()));
  ftl_->Trim(9, t.AsCallback(simulator_.get()));  // submitted after the write
  sim().Run();
  EXPECT_EQ(*ReadSync(9), 0u) << "trim submitted last must win";
}

TEST_F(PageFtlTest, FillDeviceAndVerify) {
  const Lba n = ftl_->user_pages();
  for (Lba lba = 0; lba < n; ++lba) {
    ASSERT_TRUE(WriteSync(lba, lba * 7 + 1).ok()) << lba;
  }
  for (Lba lba = 0; lba < n; ++lba) {
    ASSERT_EQ(*ReadSync(lba), lba * 7 + 1) << lba;
  }
}

TEST_F(PageFtlTest, SteadyStateOverwritesTriggerGcAndPreserveData) {
  const Lba n = ftl_->user_pages();
  std::map<Lba, std::uint64_t> shadow;
  Rng rng(99);
  // Fill once, then random-overwrite 3x the device size.
  for (Lba lba = 0; lba < n; ++lba) {
    ASSERT_TRUE(WriteSync(lba, lba + 1).ok());
    shadow[lba] = lba + 1;
  }
  for (std::uint64_t i = 0; i < 3 * n; ++i) {
    const Lba lba = rng.Uniform(n);
    const std::uint64_t token = 1000000 + i;
    ASSERT_TRUE(WriteSync(lba, token).ok()) << "i=" << i;
    shadow[lba] = token;
  }
  EXPECT_GT(ftl_->counters().Get("gc_runs"), 0u);
  EXPECT_GT(ftl_->counters().Get("gc_erases"), 0u);
  EXPECT_GT(ftl_->WriteAmplification(), 1.0);
  for (const auto& [lba, token] : shadow) {
    ASSERT_EQ(*ReadSync(lba), token) << "lba=" << lba;
  }
}

TEST_F(PageFtlTest, WriteAmplificationNearOneForSequentialFill) {
  const Lba n = ftl_->user_pages();
  for (Lba lba = 0; lba < n; ++lba) {
    ASSERT_TRUE(WriteSync(lba, 1).ok());
  }
  EXPECT_NEAR(ftl_->WriteAmplification(), 1.0, 0.05);
}

TEST_F(PageFtlTest, TrimReducesGcWork) {
  // Dead-but-untrimmed data is cold cargo GC keeps moving; trimming it
  // lets the FTL drop it (the paper's point about TRIM's necessity).
  auto churn = [&](bool trim_dead_half) -> std::uint64_t {
    Build(SmallConfig());
    const Lba n = ftl_->user_pages();
    const Lba half = n / 2;
    for (Lba lba = 0; lba < n; ++lba) {
      EXPECT_TRUE(WriteSync(lba, 1).ok());
    }
    if (trim_dead_half) {
      for (Lba lba = half; lba < n; ++lba) {
        EXPECT_TRUE(TrimSync(lba).ok());
      }
    }
    Rng rng(5);
    for (std::uint64_t i = 0; i < 3 * n; ++i) {
      EXPECT_TRUE(WriteSync(rng.Uniform(half), i + 2).ok());
    }
    return ftl_->counters().Get("gc_page_moves");
  };
  const std::uint64_t moves_without_trim = churn(false);
  const std::uint64_t moves_with_trim = churn(true);
  EXPECT_LT(moves_with_trim, moves_without_trim);
}

TEST_F(PageFtlTest, MigrationListenerFiresOnGcMoves) {
  std::uint64_t migrations = 0;
  ftl_->SetMigrationListener(
      [&](Lba, flash::Ppa, flash::Ppa) { ++migrations; });
  const Lba n = ftl_->user_pages();
  Rng rng(3);
  for (Lba lba = 0; lba < n; ++lba) {
    ASSERT_TRUE(WriteSync(lba, 1).ok());
  }
  for (std::uint64_t i = 0; i < 2 * n; ++i) {
    ASSERT_TRUE(WriteSync(rng.Uniform(n), i + 2).ok());
  }
  EXPECT_GT(migrations, 0u);
  // Some moves are stale (the host overwrote the LBA mid-relocation)
  // and correctly produce no notification.
  EXPECT_LE(migrations, ftl_->counters().Get("gc_page_moves"));
  EXPECT_GT(migrations, ftl_->counters().Get("gc_page_moves") * 9 / 10);
}

TEST_F(PageFtlTest, LocateTracksMapping) {
  EXPECT_FALSE(ftl_->Locate(4).has_value());
  ASSERT_TRUE(WriteSync(4, 9).ok());
  ASSERT_TRUE(ftl_->Locate(4).has_value());
  ASSERT_TRUE(TrimSync(4).ok());
  EXPECT_FALSE(ftl_->Locate(4).has_value());
}

TEST_F(PageFtlTest, StaticWearLevelingBoundsSpread) {
  ssd::Config c = SmallConfig();
  c.wear.static_enabled = true;
  c.wear.spread_threshold = 8;
  Build(c);
  const Lba n = ftl_->user_pages();
  // Cold data in the low half, hot churn in a few pages.
  for (Lba lba = 0; lba < n; ++lba) {
    ASSERT_TRUE(WriteSync(lba, 1).ok());
  }
  for (std::uint64_t i = 0; i < 20 * n; ++i) {
    ASSERT_TRUE(WriteSync(n - 1 - (i % 8), i).ok());
  }
  EXPECT_GT(ftl_->counters().Get("wl_runs"), 0u);
  const auto* flash = controller_->flash();
  EXPECT_LT(flash->MaxEraseCount() - flash->MinEraseCount(), 40u);
}

// --- Atomic writes ------------------------------------------------------

TEST_F(PageFtlTest, AtomicWriteAllVisibleAfterCommit) {
  std::vector<std::pair<Lba, std::uint64_t>> pages = {
      {1, 11}, {2, 22}, {3, 33}, {4, 44}};
  sim::Completion done;
  ftl_->WriteAtomic(pages, done.AsCallback(simulator_.get()));
  ASSERT_TRUE(sim::WaitFor(simulator_.get(), done));
  ASSERT_TRUE(done.status().ok());
  for (const auto& [lba, token] : pages) {
    EXPECT_EQ(*ReadSync(lba), token);
  }
  EXPECT_EQ(ftl_->counters().Get("atomic_groups"), 1u);
  EXPECT_EQ(ftl_->counters().Get("atomic_commit_pages"), 1u);
}

TEST_F(PageFtlTest, EmptyAtomicWriteSucceeds) {
  sim::Completion done;
  ftl_->WriteAtomic({}, done.AsCallback(simulator_.get()));
  ASSERT_TRUE(sim::WaitFor(simulator_.get(), done));
  EXPECT_TRUE(done.status().ok());
}

TEST_F(PageFtlTest, AtomicWriteSupersedesAndIsSuperseded) {
  ASSERT_TRUE(WriteSync(1, 100).ok());
  sim::Completion done;
  ftl_->WriteAtomic({{1, 200}, {2, 201}}, done.AsCallback(simulator_.get()));
  ASSERT_TRUE(sim::WaitFor(simulator_.get(), done));
  EXPECT_EQ(*ReadSync(1), 200u);
  ASSERT_TRUE(WriteSync(1, 300).ok());
  EXPECT_EQ(*ReadSync(1), 300u);
  EXPECT_EQ(*ReadSync(2), 201u);
}

// --- Power-cycle recovery ------------------------------------------------

TEST_F(PageFtlTest, RecoveryRestoresCommittedData) {
  const Lba n = 64;
  for (Lba lba = 0; lba < n; ++lba) {
    ASSERT_TRUE(WriteSync(lba, lba + 500).ok());
  }
  ASSERT_TRUE(ftl_->PowerCycle().ok());
  for (Lba lba = 0; lba < n; ++lba) {
    ASSERT_EQ(*ReadSync(lba), lba + 500) << lba;
  }
}

TEST_F(PageFtlTest, RecoveryKeepsNewestVersion) {
  ASSERT_TRUE(WriteSync(3, 1).ok());
  ASSERT_TRUE(WriteSync(3, 2).ok());
  ASSERT_TRUE(WriteSync(3, 3).ok());
  ASSERT_TRUE(ftl_->PowerCycle().ok());
  EXPECT_EQ(*ReadSync(3), 3u);
}

TEST_F(PageFtlTest, DeviceWritableAfterRecovery) {
  ASSERT_TRUE(WriteSync(3, 1).ok());
  ASSERT_TRUE(ftl_->PowerCycle().ok());
  ASSERT_TRUE(WriteSync(3, 2).ok());
  ASSERT_TRUE(WriteSync(4, 9).ok());
  EXPECT_EQ(*ReadSync(3), 2u);
  EXPECT_EQ(*ReadSync(4), 9u);
}

TEST_F(PageFtlTest, RecoveryAfterGcChurnPreservesEverything) {
  const Lba n = ftl_->user_pages();
  std::map<Lba, std::uint64_t> shadow;
  Rng rng(7);
  for (Lba lba = 0; lba < n; ++lba) {
    ASSERT_TRUE(WriteSync(lba, lba + 1).ok());
    shadow[lba] = lba + 1;
  }
  for (std::uint64_t i = 0; i < 2 * n; ++i) {
    const Lba lba = rng.Uniform(n);
    ASSERT_TRUE(WriteSync(lba, 70000 + i).ok());
    shadow[lba] = 70000 + i;
  }
  ASSERT_TRUE(ftl_->PowerCycle().ok());
  for (const auto& [lba, token] : shadow) {
    ASSERT_EQ(*ReadSync(lba), token) << "lba=" << lba;
  }
}

TEST_F(PageFtlTest, UncommittedAtomicGroupInvisibleAfterCrash) {
  ASSERT_TRUE(WriteSync(1, 100).ok());
  // Start an atomic overwrite, cut power before it can finish (each
  // page program takes >400us; cut at 100us).
  sim::Completion done;
  ftl_->WriteAtomic({{1, 200}, {2, 222}}, done.AsCallback(simulator_.get()));
  sim().RunUntil(sim().Now() + 100 * kMicrosecond);
  ASSERT_FALSE(done.done());
  ASSERT_TRUE(ftl_->PowerCycle().ok());
  EXPECT_EQ(*ReadSync(1), 100u) << "old value must survive";
  EXPECT_EQ(*ReadSync(2), 0u) << "partial group must be invisible";
}

TEST_F(PageFtlTest, CommittedAtomicGroupSurvivesCrash) {
  sim::Completion done;
  ftl_->WriteAtomic({{1, 200}, {2, 222}}, done.AsCallback(simulator_.get()));
  ASSERT_TRUE(sim::WaitFor(simulator_.get(), done));
  ASSERT_TRUE(ftl_->PowerCycle().ok());
  EXPECT_EQ(*ReadSync(1), 200u);
  EXPECT_EQ(*ReadSync(2), 222u);
}

TEST_F(PageFtlTest, CommitMarkerSurvivesGcOfItsBlock) {
  // Commit an atomic group, then churn until the marker's block is
  // collected. The group's pages must still be visible after a crash.
  sim::Completion done;
  ftl_->WriteAtomic({{1, 201}, {2, 202}}, done.AsCallback(simulator_.get()));
  ASSERT_TRUE(sim::WaitFor(simulator_.get(), done));
  const Lba n = ftl_->user_pages();
  Rng rng(17);
  for (std::uint64_t i = 0; i < 4 * n; ++i) {
    Lba lba = 3 + rng.Uniform(n - 3);  // avoid the group's LBAs
    ASSERT_TRUE(WriteSync(lba, i + 5).ok());
  }
  EXPECT_GT(ftl_->counters().Get("gc_runs"), 0u);
  ASSERT_TRUE(ftl_->PowerCycle().ok());
  EXPECT_EQ(*ReadSync(1), 201u);
  EXPECT_EQ(*ReadSync(2), 202u);
}

TEST_F(PageFtlTest, RandomizedCrashRecoveryProperty) {
  // Property: after any sequence of (awaited) writes/trims and crashes,
  // every LBA reads back either its last committed value, or — only if
  // it was trimmed and never rewritten — possibly a pre-trim value
  // (trims are not persisted; documented behaviour).
  Rng rng(1234);
  std::map<Lba, std::uint64_t> committed;
  std::map<Lba, bool> trimmed;
  const Lba n = ftl_->user_pages();
  for (int round = 0; round < 4; ++round) {
    for (int i = 0; i < 300; ++i) {
      const Lba lba = rng.Uniform(n);
      if (rng.Bernoulli(0.15)) {
        ASSERT_TRUE(TrimSync(lba).ok());
        committed[lba] = 0;
        trimmed[lba] = true;
      } else {
        const std::uint64_t token = rng.Next() | 1;  // nonzero
        ASSERT_TRUE(WriteSync(lba, token).ok());
        committed[lba] = token;
        trimmed[lba] = false;
      }
    }
    ASSERT_TRUE(ftl_->PowerCycle().ok());
    for (const auto& [lba, token] : committed) {
      const std::uint64_t got = *ReadSync(lba);
      if (trimmed[lba]) {
        // Trim not persisted: zero or a resurrected older value.
        continue;
      }
      ASSERT_EQ(got, token) << "lba=" << lba << " round=" << round;
    }
  }
}

}  // namespace
}  // namespace postblock::ftl
