#!/usr/bin/env bash
# ThreadSanitizer gate for the parallel layer.
#
# Builds with -DSIM_TSAN=ON (mutually exclusive with -DSIM_ASAN=ON; see
# the top-level CMakeLists.txt) and runs the test binaries that
# exercise threads — the sharded engine's worker pool, the
# multi-instance sweep harness, the vbd suite (whose sharded test
# drives multi-tenant DRR attribution through the engine's worker
# pool), the obs suite (EngineProfiler shard scratch is written
# from worker threads and folded by the coordinator under the engine's
# ack release/acquire pair), and the sharded-device suite (the full
# controller/FTL/channel stack split across the controller/channel
# seam), and the vision-recovery suite (the post-block append device,
# host map, and epoch-checkpoint recovery — single-threaded by
# construction, but ran here so the nameless path can never regress
# into hidden sharing) — plus bench_parallel, bench_sharded_device and
# bench_crossover. Any data race TSan
# finds fails the script: the determinism story is only as good as the
# absence of unsynchronized sharing at the seam.
#
# Usage: scripts/check_tsan.sh [build-dir]     (default: build-tsan)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build-tsan}"

cmake -B "$BUILD_DIR" -S . -DSIM_TSAN=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  >/dev/null
cmake --build "$BUILD_DIR" --target sharded_sim_test parallel_test \
  vbd_test obs_test sharded_device_test vision_recovery_test \
  bench_parallel bench_sharded_device bench_crossover \
  -j "$(nproc)" >/dev/null

# halt_on_error makes the first race fatal instead of a log line the
# shell would ignore; second_deadlock_stack improves lock reports.
export TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1"

echo "check_tsan: sharded engine tests (worker pool, barriers, seam)"
"$BUILD_DIR/tests/sharded_sim_test"

echo "check_tsan: sweep harness tests (thread-confined full stacks)"
"$BUILD_DIR/tests/parallel_test"

echo "check_tsan: vbd suite (multi-tenant attribution on engine workers)"
"$BUILD_DIR/tests/vbd_test"

echo "check_tsan: obs suite (profiler scratch written from worker threads)"
"$BUILD_DIR/tests/obs_test"

echo "check_tsan: sharded device suite (full Device across the seam)"
"$BUILD_DIR/tests/sharded_device_test"

echo "check_tsan: vision recovery suite (post-block append device + host map)"
"$BUILD_DIR/tests/vision_recovery_test"

echo "check_tsan: bench_parallel (all worker counts, bench-scale load)"
( cd "$BUILD_DIR" && ./bench/bench_parallel >/dev/null )

echo "check_tsan: bench_sharded_device (full Device, bench-scale load)"
( cd "$BUILD_DIR" && ./bench/bench_sharded_device >/dev/null )

echo "check_tsan: bench_crossover (classic vs vision wiring, bench-scale load)"
( cd "$BUILD_DIR" && ./bench/bench_crossover >/dev/null )

echo "check_tsan: OK (no data races reported)"
