#!/usr/bin/env bash
# Performance regression gates.
#
# Builds Release, runs bench_sim_core (emits BENCH_sim_core.json) and
# bench_trace_overhead (emits BENCH_trace_overhead.json), then checks:
#   1. hard floors from the event-core rework: pingpong speedup >= 3x
#      over the reference binary-heap core, and 0 heap allocations per
#      event in steady state;
#   2. wheel-vs-reference speedup per workload against the committed
#      baseline (bench/baselines/sim_core_baseline.json) within +-15%.
#      The gate compares the *same-run ratio* (wheel_eps/reference_eps,
#      both measured in one process seconds apart), not absolute
#      events/sec: absolute rates drift ~20% with container load and a
#      pristine tree must never fail the gate, while machine-speed
#      drift mostly cancels out of the ratio. The residual ratio noise
#      under transient load is handled best-of-N: a below-tolerance
#      measurement re-runs the bench (up to 3 attempts total) and only
#      fails if every attempt is below — a real wheel regression fails
#      all of them, a background-load spike doesn't. A missing baseline
#      is created from the current run (first-run bootstrap). The
#      "meta" key (git SHA, device shape) is ignored when comparing;
#   3. the tracing subsystem: a disabled tracer must cost <= 2% wall
#      clock over the fig2 GC workload, and tracing in any mode must not
#      perturb the simulated schedule;
#   4. the metrics subsystem: an attached registry (no sampler) must
#      cost <= 2% wall clock over the same workload, sampling must not
#      perturb the device schedule, and the final sampled cumulative
#      rows must equal the stack's Counters;
#   5. the reliability layer: an attached-but-silent fault injector must
#      not perturb the simulated schedule (it consumes no Rng draws)
#      and must cost <= 1% wall clock over the same workload;
#   6. the multi-queue host path: a default config must be
#      schedule-identical to one with every mq knob spelled out at its
#      neutral value, 1-queue sim-time IOPS must stay within +-2% of
#      the committed baseline (bench/baselines/mq_baseline.json,
#      first-run bootstrap), 4 queues must deliver >= 2x the 1-queue
#      IOPS on the lock-bound workload, and the completion path must
#      not allocate in steady state;
#   7. the sharded parallel cores: every worker count (1/2/4) must
#      produce a combined fingerprint byte-identical to the workers=0
#      sequential reference on the 4-channel fig2-class workload
#      (enforced unconditionally), and 4 workers must deliver >= 1.6x
#      the sequential events/sec — enforced only when the machine has
#      >= 4 hardware threads (the bench stamps hardware_concurrency
#      into its meta so a skipped floor is visible in the artifact);
#   8. the multi-tenant vbd layer: a single pass-through tenant must be
#      schedule-identical to the raw device (neutrality: no tenants,
#      no cost), the 256-tenant create/run/destroy cycle must digest
#      identically when run twice (determinism at scale), and the
#      noisy-neighbor victim's p999 with DRR QoS weights on must stay
#      < 2x its solo-run p999 while the aggressor runs GC-heavy
#      random writes;
#   9. the observability layer: an attached EngineProfiler (default
#      window sampling) must cost <= 2% wall clock over the gate-7
#      sharded workload AND leave the committed schedule byte-identical
#      to the detached run, and the SloWatchdog must emit a
#      deterministic breach stream — the intentional-breach workload
#      must breach (> 0) with an identical digest across two runs;
#  10. the full ssd::Device on the sharded engine: every worker count
#      (1/2/4) must produce a combined fingerprint (model observables +
#      committed schedule) byte-identical to the workers=0 sequential
#      reference on the aged closed-loop workload, with GC relocations
#      crossing the controller/channel seam — enforced unconditionally —
#      and 4 workers must deliver >= 1.5x the sequential events/sec,
#      enforced only when the machine has >= 4 hardware threads;
#  11. the Section 3 crossover (classic block stack vs the post-block
#      vision wiring, same B+-tree/WAL workload on the same geometry):
#      both wirings must digest identically across two runs, the
#      classic side's hidden GC must actually run (WA > 1.0), the
#      vision side's WA must undercut it, vision commits must beat
#      classic commit latency, and both sides must report their
#      mapping DRAM (classic device L2P > 0, vision host map > 0)
#      with the vision device's translation state smaller than the
#      classic L2P. All sim-time observables — exact, no retry.
#
# Wall-clock gates (2, 3, 4, 5, 9) are measured numbers and therefore
# retried best-of-3 (gate_with_retry): a failed attempt re-runs the
# bench before declaring a regression. Determinism bits and sim-time
# comparisons are exact and never benefit from a retry.
#
# Usage: scripts/check_perf.sh [build-dir]     (default: build-perf)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build-perf}"
BASELINE="bench/baselines/sim_core_baseline.json"
TOLERANCE=0.15

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$BUILD_DIR" --target bench_sim_core bench_trace_overhead \
  bench_metrics_overhead bench_reliability bench_mq bench_parallel \
  bench_vbd bench_obs bench_sharded_device bench_crossover \
  -j "$(nproc)" >/dev/null

( cd "$BUILD_DIR" && ./bench/bench_sim_core )
( cd "$BUILD_DIR" && ./bench/bench_trace_overhead )
( cd "$BUILD_DIR" && ./bench/bench_metrics_overhead )
( cd "$BUILD_DIR" && ./bench/bench_reliability )
( cd "$BUILD_DIR" && ./bench/bench_mq )
( cd "$BUILD_DIR" && ./bench/bench_parallel )
( cd "$BUILD_DIR" && ./bench/bench_vbd )
( cd "$BUILD_DIR" && ./bench/bench_obs )
( cd "$BUILD_DIR" && ./bench/bench_sharded_device )
( cd "$BUILD_DIR" && ./bench/bench_crossover )
RESULT="$BUILD_DIR/BENCH_sim_core.json"
TRACE_RESULT="$BUILD_DIR/BENCH_trace_overhead.json"
METRICS_RESULT="$BUILD_DIR/BENCH_metrics_overhead.json"
RELIABILITY_RESULT="$BUILD_DIR/BENCH_reliability.json"
MQ_RESULT="$BUILD_DIR/BENCH_mq.json"
MQ_BASELINE="bench/baselines/mq_baseline.json"
PARALLEL_RESULT="$BUILD_DIR/BENCH_parallel.json"
VBD_RESULT="$BUILD_DIR/BENCH_vbd.json"
OBS_RESULT="$BUILD_DIR/BENCH_obs.json"
SHARDED_DEVICE_RESULT="$BUILD_DIR/BENCH_sharded_device.json"
CROSSOVER_RESULT="$BUILD_DIR/BENCH_crossover.json"

if [ ! -f "$BASELINE" ]; then
  mkdir -p "$(dirname "$BASELINE")"
  cp "$RESULT" "$BASELINE"
  echo "check_perf: no baseline found; recorded $BASELINE from this run."
  exit 0
fi

# Best-of-N for wall-clock gates: speedup ratios and overhead
# percentages are measured numbers, so a transient load spike on a
# small container can push one attempt past budget on a pristine tree.
# Re-measure (fresh bench run) before declaring a regression — a real
# regression fails every attempt, a background-load spike doesn't.
# Determinism bits are not load-dependent; a retry can't launder those
# (they fail all attempts identically).
GATE_ATTEMPTS=3
gate_with_retry() {  # $1 = bench binary to re-run, $2 = check function
  local attempt=1
  while ! "$2"; do
    if [ "$attempt" -ge "$GATE_ATTEMPTS" ]; then
      echo "check_perf: FAIL ($1 gate failed on all $GATE_ATTEMPTS" \
           "attempts — a real regression, not load)"
      exit 1
    fi
    attempt=$((attempt + 1))
    echo "check_perf: re-measuring $1 (attempt $attempt of" \
         "$GATE_ATTEMPTS; transient container load?)"
    ( cd "$BUILD_DIR" && "./bench/$1" )
  done
}

check_sim_core() {
  python3 - "$RESULT" "$BASELINE" "$TOLERANCE" <<'EOF'
import json
import sys

result_path, baseline_path, tol = sys.argv[1], sys.argv[2], float(sys.argv[3])
result = json.load(open(result_path))
baseline = json.load(open(baseline_path))
failures = []

# Hard floors from the event-core rework (ISSUE acceptance criteria).
pp = result.get("pingpong", {})
if pp.get("speedup", 0.0) < 3.0:
    failures.append(
        f"pingpong speedup {pp.get('speedup')}x < required 3.0x over the "
        "reference binary-heap core")
if pp.get("wheel_allocs_per_event", 1.0) >= 0.005:
    failures.append(
        f"pingpong wheel allocs/event {pp.get('wheel_allocs_per_event')} "
        "not ~0 (steady state must not allocate)")

# Regression vs recorded baseline, +-15% on the *same-run* speedup
# (wheel_eps / reference_eps, both measured in one process). Absolute
# events/sec drift ~20% with container load on an otherwise pristine
# tree, so comparing them across runs made the gate flaky; the ratio
# cancels machine speed and still catches a wheel-core regression
# (the reference heap core is rebuilt from the same tree, so only a
# relative slowdown of the wheel path can move it). "meta" (git SHA +
# device shape stamp) is provenance, not a measurement.
for name, base in baseline.items():
    if name == "meta":
        continue
    cur = result.get(name)
    if cur is None:
        failures.append(f"workload '{name}' missing from current run")
        continue
    base_sp, cur_sp = base["speedup"], cur["speedup"]
    if cur_sp < base_sp * (1.0 - tol):
        failures.append(
            f"{name}: wheel-vs-reference speedup {cur_sp:.2f}x is more "
            f"than {tol:.0%} below baseline {base_sp:.2f}x "
            f"(wheel {cur['wheel_eps']:.0f} ev/s, reference "
            f"{cur['reference_eps']:.0f} ev/s this run)")
    elif cur_sp > base_sp * (1.0 + tol):
        print(f"check_perf: note: {name} speedup improved past "
              f"+{tol:.0%} ({base_sp:.2f}x -> {cur_sp:.2f}x); consider "
              "refreshing the baseline")

if failures:
    print("check_perf: sim_core below tolerance this attempt")
    for f in failures:
        print(f"  - {f}")
    sys.exit(1)
print("check_perf: OK (within tolerance of baseline, floors met)")
EOF
}
gate_with_retry bench_sim_core check_sim_core

check_trace() {
  python3 - "$TRACE_RESULT" <<'EOF'
import json
import sys

result = json.load(open(sys.argv[1]))
failures = []

if not result.get("deterministic", False):
    failures.append(
        "tracing perturbed the simulated schedule (runs not identical)")
ovh = result.get("disabled", {}).get("overhead_vs_untraced", 1.0)
if ovh > 0.02:
    failures.append(
        f"disabled-tracer overhead {ovh:.1%} exceeds the 2% budget")

if failures:
    print("check_perf: trace overhead gate failed this attempt")
    for f in failures:
        print(f"  - {f}")
    sys.exit(1)
print(f"check_perf: OK (disabled-tracer overhead {ovh:.1%} <= 2%, "
      "schedule unperturbed)")
EOF
}
gate_with_retry bench_trace_overhead check_trace

check_metrics() {
  python3 - "$METRICS_RESULT" <<'EOF'
import json
import sys

result = json.load(open(sys.argv[1]))
failures = []

# "deterministic" covers both the device-schedule comparison and the
# final-row-vs-Counters cross-check (the bench folds both into one bit).
if not result.get("deterministic", False):
    failures.append(
        "metrics perturbed the device schedule or the final sampled "
        "rows diverged from the stack's Counters")
ovh = result.get("attached", {}).get("overhead_vs_none", 1.0)
if ovh > 0.02:
    failures.append(
        f"attached-registry overhead {ovh:.1%} exceeds the 2% budget")

if failures:
    print("check_perf: metrics overhead gate failed this attempt")
    for f in failures:
        print(f"  - {f}")
    sys.exit(1)
print(f"check_perf: OK (attached-registry overhead {ovh:.1%} <= 2%, "
      "device schedule unperturbed, Counters cross-check exact)")
EOF
}
gate_with_retry bench_metrics_overhead check_metrics

check_reliability() {
  python3 - "$RELIABILITY_RESULT" <<'EOF'
import json
import sys

result = json.load(open(sys.argv[1]))
failures = []

# The injector is consulted before the stochastic error model and draws
# nothing from the Rng, so a silent injector must leave the simulated
# schedule byte-identical. The bench folds sim_end + all device
# observables into this one bit.
if not result.get("deterministic", False):
    failures.append(
        "attached fault injector perturbed the simulated schedule")
ovh = result.get("attached", {}).get("overhead_vs_none", 1.0)
if ovh > 0.01:
    failures.append(
        f"silent-injector overhead {ovh:.1%} exceeds the 1% budget")

if failures:
    print("check_perf: reliability overhead gate failed this attempt")
    for f in failures:
        print(f"  - {f}")
    sys.exit(1)
print(f"check_perf: OK (silent-injector overhead {ovh:.1%} <= 1%, "
      "schedule unperturbed)")
EOF
}
gate_with_retry bench_reliability check_reliability

if [ ! -f "$MQ_BASELINE" ]; then
  mkdir -p "$(dirname "$MQ_BASELINE")"
  cp "$MQ_RESULT" "$MQ_BASELINE"
  echo "check_perf: no mq baseline found; recorded $MQ_BASELINE from this run."
else
python3 - "$MQ_RESULT" "$MQ_BASELINE" <<'EOF'
import json
import sys

result = json.load(open(sys.argv[1]))
baseline = json.load(open(sys.argv[2]))
failures = []

# The mq machinery must be invisible when off: a default config and a
# config with every knob spelled out at its neutral value must produce
# bit-identical schedules (completion order, times, sim end).
if not result.get("schedule_identical", False):
    failures.append(
        "default config and explicit-neutral mq config produced "
        "different schedules (1-queue neutrality broken)")

# 1-queue overhead gate: sim-time IOPS are deterministic, so the
# tolerance is tight (2%). A drop means the default submit/complete
# path picked up per-IO cost.
base_iops = baseline.get("one_queue", {}).get("iops", 0.0)
cur_iops = result.get("one_queue", {}).get("iops", 0.0)
if base_iops > 0 and cur_iops < base_iops * 0.98:
    failures.append(
        f"1-queue IOPS {cur_iops:.0f} is more than 2% below baseline "
        f"{base_iops:.0f} (default-path overhead regression)")

# The tentpole claim: splitting the submission lock scales.
speedup = result.get("scaling", {}).get("speedup_4q", 0.0)
if speedup < 2.0:
    failures.append(
        f"4-queue speedup {speedup:.2f}x < required 2.0x over 1 queue "
        "on the lock-bound workload")

allocs = result.get("allocs", {}).get("chunk_allocs_per_io", 1.0)
if allocs >= 0.01:
    failures.append(
        f"completion-path slab allocs/IO {allocs} not ~0 "
        "(steady state must recycle boxed callbacks)")

if failures:
    print("check_perf: FAIL (multi-queue host path)")
    for f in failures:
        print(f"  - {f}")
    sys.exit(1)
print(f"check_perf: OK (mq: schedule identical, 1-queue IOPS "
      f"{cur_iops:.0f} within 2% of baseline, 4-queue speedup "
      f"{speedup:.2f}x >= 2x, allocs/IO ~0)")
EOF
fi

python3 - "$PARALLEL_RESULT" <<'EOF'
import json
import sys

result = json.load(open(sys.argv[1]))
failures = []

# Determinism is the contract, not a target: every worker count must
# commit the exact schedule the sequential reference commits. Checked
# unconditionally — thread count never excuses divergence.
if not result.get("determinism_ok", False):
    failures.append(
        "sharded engine schedules diverged across worker counts "
        "(fingerprints not byte-identical to the workers=0 reference)")
ref = result.get("workers0", {}).get("fingerprint")
for key in ("workers1", "workers2", "workers4"):
    fp = result.get(key, {}).get("fingerprint")
    if fp is None or fp != ref:
        failures.append(
            f"{key} fingerprint {fp} != sequential reference {ref}")

# The scaling floor only means something when the hardware can actually
# run 4 workers; the meta stamp records what this machine had.
hw = result.get("meta", {}).get("hardware_concurrency", 0)
speedup = result.get("speedup_4w", 0.0)
if hw >= 4:
    if speedup < 1.6:
        failures.append(
            f"4-worker speedup {speedup:.2f}x < required 1.6x over the "
            f"sequential reference (hardware_concurrency={hw})")
    note = f"speedup {speedup:.2f}x >= 1.6x"
else:
    note = (f"speedup floor skipped: hardware_concurrency={hw} < 4 "
            f"(measured {speedup:.2f}x)")

if failures:
    print("check_perf: FAIL (sharded parallel cores)")
    for f in failures:
        print(f"  - {f}")
    sys.exit(1)
print("check_perf: OK (sharded cores byte-identical at every worker "
      f"count; {note})")
EOF

python3 - "$VBD_RESULT" <<'EOF'
import json
import sys

result = json.load(open(sys.argv[1]))
failures = []

# Neutrality is the contract the whole repo rests on: routing IO
# through a Backend with one whole-device tenant and no QoS gate must
# reproduce the raw device's schedule bit for bit — the in-binary proxy
# for "all paper benches unchanged with no tenants configured".
if not result.get("neutral", {}).get("schedule_identical", False):
    failures.append(
        "pass-through tenant schedule diverged from the raw device "
        "(vbd neutrality broken)")

# 256 tenants created, run concurrently, and destroyed must digest
# identically across two full runs — lifecycle at scale stays
# deterministic.
if not result.get("scaling", {}).get("digest_identical_256", False):
    failures.append(
        "256-tenant create/run/destroy digests diverged across two "
        "runs (lifecycle determinism broken)")

# The QoS claim: with DRR weights on the admission gate, the victim's
# p999 read latency stays < 2x its solo run while the aggressor issues
# GC-heavy random writes.
noisy = result.get("noisy", {})
ratio = noisy.get("ratio_qos", 99.0)
if ratio >= 2.0:
    failures.append(
        f"noisy-neighbor victim p999 with QoS {ratio:.2f}x solo >= 2x "
        f"bound (p999 solo {noisy.get('p999_solo_us')}us, with QoS "
        f"{noisy.get('p999_qos_us')}us)")

if failures:
    print("check_perf: FAIL (multi-tenant vbd)")
    for f in failures:
        print(f"  - {f}")
    sys.exit(1)
print("check_perf: OK (vbd: pass-through schedule identical, "
      "256-tenant digest stable, noisy-neighbor p999 with QoS "
      f"{ratio:.2f}x solo < 2x; unthrottled was "
      f"{noisy.get('ratio_noqos', 0):.2f}x)")
EOF

check_obs() {
  python3 - "$OBS_RESULT" <<'EOF'
import json
import sys

result = json.load(open(sys.argv[1]))
failures = []

# The observability bargain: an always-on profiler must be free enough
# to leave attached (window sampling makes it so) and must never touch
# the schedule it is measuring.
prof = result.get("profiler", {})
if not prof.get("neutral", False):
    failures.append(
        "attached profiler perturbed the committed schedule "
        "(fingerprint or event count diverged from the detached run)")
ovh = prof.get("overhead", 1.0)
if ovh > 0.02:
    failures.append(
        f"attached-profiler overhead {ovh:.1%} exceeds the 2% budget")

# The watchdog's breach stream is an observable of the deterministic
# sim, so it must be reproducible bit for bit — and the intentional
# 1ns-p99 / 1e12-ops floor specs must actually fire.
wd = result.get("watchdog", {})
if wd.get("breaches", 0) <= 0:
    failures.append(
        "intentional-breach SLO specs produced no breaches "
        "(the watchdog is not evaluating)")
if not wd.get("digest_identical", False) or not wd.get("deterministic", False):
    failures.append(
        "watchdog breach stream diverged across two identical runs")

if failures:
    print("check_perf: observability gate failed this attempt")
    for f in failures:
        print(f"  - {f}")
    sys.exit(1)
print(f"check_perf: OK (obs: attached-profiler overhead {ovh:.1%} <= 2%, "
      "schedule byte-identical, watchdog breach stream deterministic "
      f"({wd.get('breaches')} breaches, digest stable))")
EOF
}
gate_with_retry bench_obs check_obs

python3 - "$SHARDED_DEVICE_RESULT" <<'EOF'
import json
import sys

result = json.load(open(sys.argv[1]))
failures = []

# Gate 10: the full ssd::Device (FTL, GC, write buffer, reliability
# ladder) on the sharded engine. Determinism is the contract, checked
# unconditionally: every worker count must commit the schedule — and
# every model observable folded into the fingerprint (counters,
# latency histograms, write amplification, GC-stall attribution) —
# that the workers=0 sequential reference commits.
if not result.get("determinism_ok", False):
    failures.append(
        "sharded-device schedules diverged across worker counts "
        "(fingerprints not byte-identical to the workers=0 reference)")
ref = result.get("workers0", {}).get("fingerprint")
for key in ("workers1", "workers2", "workers4"):
    fp = result.get(key, {}).get("fingerprint")
    if fp is None or fp != ref:
        failures.append(
            f"{key} fingerprint {fp} != sequential reference {ref}")

# Real GC must have run, or the seam was never stressed by relocation
# traffic and the determinism bit proves less than it claims.
wa = result.get("workers0", {}).get("write_amplification", 0.0)
if wa <= 1.0:
    failures.append(
        f"write amplification {wa:.3f} <= 1.0: the aged workload did "
        "not trigger GC relocations across the seam")

# The scaling floor only means something when the hardware can actually
# run 4 workers; the meta stamp records what this machine had.
hw = result.get("meta", {}).get("hardware_concurrency", 0)
speedup = result.get("speedup_4w", 0.0)
if hw >= 4:
    if speedup < 1.5:
        failures.append(
            f"4-worker speedup {speedup:.2f}x < required 1.5x over the "
            f"sequential reference (hardware_concurrency={hw})")
    note = f"speedup {speedup:.2f}x >= 1.5x"
else:
    note = (f"speedup floor skipped: hardware_concurrency={hw} < 4 "
            f"(measured {speedup:.2f}x)")

if failures:
    print("check_perf: FAIL (sharded device)")
    for f in failures:
        print(f"  - {f}")
    sys.exit(1)
print("check_perf: OK (sharded device byte-identical at every worker "
      f"count, GC active (WA {wa:.2f}); {note})")
EOF

python3 - "$CROSSOVER_RESULT" <<'EOF'
import json
import sys

result = json.load(open(sys.argv[1]))
failures = []

# Gate 11: the paper's Section 3 crossover, measured. Everything here
# is a sim-time observable of a deterministic schedule — exact checks,
# never retried.
if not result.get("determinism_ok", False):
    failures.append(
        "crossover digests diverged across two runs of the same wiring "
        "(the post-block stack broke the schedule contract)")

classic = result.get("classic", {})
vision = result.get("vision", {})

# The classic side must actually pay for its hidden GC, or the WA
# comparison proves nothing.
cwa = classic.get("write_amplification", 0.0)
vwa = vision.get("write_amplification", 99.0)
if cwa <= 1.0:
    failures.append(
        f"classic WA {cwa:.3f} <= 1.0: the churn never forced the "
        "page-map FTL to relocate live pages")
if vwa >= cwa:
    failures.append(
        f"vision WA {vwa:.3f} >= classic WA {cwa:.3f}: host-declared "
        "liveness failed to beat hidden GC")

# Commit latency: the PCM sync path vs padded log blocks + flush.
cl = classic.get("commit_mean_ns", 0.0)
vl = vision.get("commit_mean_ns", 1e18)
if vl >= cl:
    failures.append(
        f"vision commit mean {vl:.0f}ns >= classic {cl:.0f}ns "
        "(the byte-addressed log lost to padded blocks)")

# Both sides must put a number on their mapping DRAM, and the vision
# device's translation state (per-block counters) must undercut the
# classic device's full L2P.
cdev = classic.get("device_map_bytes", 0)
vdev = vision.get("device_map_bytes", 0)
vhost = vision.get("host_map_bytes", 0)
if cdev <= 0:
    failures.append("classic device_map_bytes not reported")
if vhost <= 0:
    failures.append("vision host_map_bytes not reported")
if vdev >= cdev:
    failures.append(
        f"vision device map {vdev}B >= classic L2P {cdev}B "
        "(the device-side indirection did not die)")

if failures:
    print("check_perf: FAIL (section 3 crossover)")
    for f in failures:
        print(f"  - {f}")
    sys.exit(1)
cross = result.get("crossover", {})
print("check_perf: OK (crossover: deterministic, WA "
      f"{vwa:.3f} vs {cwa:.3f}, commit speedup "
      f"{cross.get('commit_speedup', 0):.0f}x, device L2P shrink "
      f"{cross.get('device_map_shrink', 0):.1f}x)")
EOF
