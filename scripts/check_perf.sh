#!/usr/bin/env bash
# Event-core performance regression gate.
#
# Builds Release, runs bench_sim_core (emits BENCH_sim_core.json), then
# checks:
#   1. hard floors from the event-core rework: pingpong speedup >= 3x
#      over the reference binary-heap core, and 0 heap allocations per
#      event in steady state;
#   2. events/sec against the committed baseline
#      (bench/baselines/sim_core_baseline.json) within +-15%. A missing
#      baseline is created from the current run (first-run bootstrap).
#
# Usage: scripts/check_perf.sh [build-dir]     (default: build-perf)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build-perf}"
BASELINE="bench/baselines/sim_core_baseline.json"
TOLERANCE=0.15

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$BUILD_DIR" --target bench_sim_core -j "$(nproc)" \
  >/dev/null

( cd "$BUILD_DIR" && ./bench/bench_sim_core )
RESULT="$BUILD_DIR/BENCH_sim_core.json"

if [ ! -f "$BASELINE" ]; then
  mkdir -p "$(dirname "$BASELINE")"
  cp "$RESULT" "$BASELINE"
  echo "check_perf: no baseline found; recorded $BASELINE from this run."
  exit 0
fi

python3 - "$RESULT" "$BASELINE" "$TOLERANCE" <<'EOF'
import json
import sys

result_path, baseline_path, tol = sys.argv[1], sys.argv[2], float(sys.argv[3])
result = json.load(open(result_path))
baseline = json.load(open(baseline_path))
failures = []

# Hard floors from the event-core rework (ISSUE acceptance criteria).
pp = result.get("pingpong", {})
if pp.get("speedup", 0.0) < 3.0:
    failures.append(
        f"pingpong speedup {pp.get('speedup')}x < required 3.0x over the "
        "reference binary-heap core")
if pp.get("wheel_allocs_per_event", 1.0) >= 0.005:
    failures.append(
        f"pingpong wheel allocs/event {pp.get('wheel_allocs_per_event')} "
        "not ~0 (steady state must not allocate)")

# Regression vs recorded baseline, +-15% on wheel events/sec.
for name, base in baseline.items():
    cur = result.get(name)
    if cur is None:
        failures.append(f"workload '{name}' missing from current run")
        continue
    base_eps, cur_eps = base["wheel_eps"], cur["wheel_eps"]
    if cur_eps < base_eps * (1.0 - tol):
        failures.append(
            f"{name}: wheel {cur_eps:.0f} ev/s is more than "
            f"{tol:.0%} below baseline {base_eps:.0f} ev/s")
    elif cur_eps > base_eps * (1.0 + tol):
        print(f"check_perf: note: {name} improved past +{tol:.0%} "
              f"({base_eps:.0f} -> {cur_eps:.0f} ev/s); consider "
              "refreshing the baseline")

if failures:
    print("check_perf: FAIL")
    for f in failures:
        print(f"  - {f}")
    sys.exit(1)
print("check_perf: OK (within tolerance of baseline, floors met)")
EOF
