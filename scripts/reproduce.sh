#!/usr/bin/env bash
# Builds everything, runs the full test suite, and regenerates every
# paper experiment (EXPERIMENTS.md's tables) into bench_output.txt.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build --output-on-failure 2>&1 | tee test_output.txt

: > bench_output.txt
for b in build/bench/bench_*; do
  [ -x "$b" ] || continue
  "$b" 2>&1 | tee -a bench_output.txt
done

echo
echo "done: test_output.txt + bench_output.txt written."
