#!/usr/bin/env bash
# Builds everything out of tree, runs the full test suite, regenerates
# every paper experiment (EXPERIMENTS.md's tables) into bench_output.txt,
# and runs the event-core performance gate.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build-repro}"

cmake -B "$BUILD_DIR" -S . -G Ninja
cmake --build "$BUILD_DIR"

ctest --test-dir "$BUILD_DIR" --output-on-failure 2>&1 | tee test_output.txt

: > bench_output.txt
for b in "$BUILD_DIR"/bench/bench_*; do
  [ -x "$b" ] || continue
  "$b" 2>&1 | tee -a bench_output.txt
done

scripts/check_perf.sh "$BUILD_DIR-perf"

echo
echo "done: test_output.txt + bench_output.txt written."
