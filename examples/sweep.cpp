// Parameter sweep on the multi-instance harness: N independent
// simulated SSDs run on N threads (sim::ParallelRunner), one per
// over-provisioning point, and the per-run metrics land in a single
// sweep report. Every instance is a full postblock stack confined to
// its worker thread, so the aggregated numbers are bitwise identical
// to running the points one after another.
//
//   $ ./sweep [threads] [ops_per_point] [report-path]
//   sweep report -> sweep_report.json
//
// See EXPERIMENTS.md E18 for the scaling-curve recipe built on the
// same harness.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/table.h"
#include "sim/parallel_runner.h"
#include "sim/simulator.h"
#include "ssd/config.h"
#include "ssd/device.h"
#include "workload/patterns.h"

using namespace postblock;

namespace {

/// One sweep point: age a Small-geometry SSD with random writes at the
/// given over-provisioning ratio and report steady-ish state metrics.
sim::SweepResult RunPoint(double op_fraction, std::uint64_t ops) {
  sim::Simulator simulator;
  ssd::Config config = ssd::Config::Small();
  config.over_provisioning = op_fraction;
  ssd::Device device(&simulator, config);

  // Precondition: fill the whole logical space once so GC is live and
  // the over-provisioning point actually matters.
  workload::SequentialPattern fill(0, device.num_blocks(),
                                   /*is_write=*/true);
  workload::RunClosedLoop(&simulator, &device, &fill, device.num_blocks(),
                          /*queue_depth=*/8);

  workload::RandomPattern pattern(0, device.num_blocks(),
                                  /*is_write=*/true, /*nblocks=*/1,
                                  /*seed=*/91);
  const workload::RunResult run = workload::RunClosedLoop(
      &simulator, &device, &pattern, ops, /*queue_depth=*/8);

  sim::SweepResult result;
  result.metrics.emplace_back("overprovision", op_fraction);
  result.metrics.emplace_back("iops", run.Iops());
  result.metrics.emplace_back("p50_us",
                              static_cast<double>(run.latency.P50()) / 1e3);
  result.metrics.emplace_back("p99_us",
                              static_cast<double>(run.latency.P99()) / 1e3);
  result.metrics.emplace_back("write_amplification",
                              device.WriteAmplification());
  result.metrics.emplace_back("sim_ns",
                              static_cast<double>(simulator.Now()));
  result.note = "random-write, qd8";
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint32_t threads =
      argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1]))
               : std::thread::hardware_concurrency();
  const std::uint64_t ops =
      argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 4000;
  // Overridable so concurrent invocations (CI matrix, side-by-side
  // comparisons) don't clobber one another's report.
  const std::string report = argc > 3 ? argv[3] : "sweep_report.json";

  const std::vector<double> points = {0.07, 0.125, 0.20, 0.28, 0.40};
  std::vector<sim::SweepJob> jobs;
  for (const double op : points) {
    char name[32];
    std::snprintf(name, sizeof name, "op%.3f", op);
    jobs.push_back(sim::SweepJob{
        name, [op, ops] { return RunPoint(op, ops); }});
  }

  std::printf("sweep: %zu points on %u threads, %llu ops each\n",
              jobs.size(), threads,
              static_cast<unsigned long long>(ops));
  sim::ParallelRunner runner(threads);
  const std::vector<sim::SweepResult> results = runner.RunAll(jobs);

  std::printf("%-10s %10s %10s %10s %8s\n", "point", "iops", "p50_us",
              "p99_us", "wa");
  for (const sim::SweepResult& r : results) {
    if (!r.ok) {
      std::printf("%-10s FAILED: %s\n", r.name.c_str(), r.error.c_str());
      continue;
    }
    std::printf("%-10s %10.0f %10.1f %10.1f %8.2f\n", r.name.c_str(),
                r.metrics[1].second, r.metrics[2].second,
                r.metrics[3].second, r.metrics[4].second);
  }

  // Topology stamp (self-describing artifacts): each sweep point is a
  // single-tenant, single-queue stack at queue depth 8.
  const std::string meta =
      "\"threads\": " + std::to_string(threads) +
      ", \"hardware_concurrency\": " +
      std::to_string(std::thread::hardware_concurrency()) +
      ", \"ops_per_point\": " + std::to_string(ops) +
      ", \"tenants\": 1, \"queues\": 1, \"queue_depth\": 8";
  const std::string json =
      sim::ParallelRunner::SweepReportJson(results, meta);
  std::FILE* f = std::fopen(report.c_str(), "w");
  if (f != nullptr) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("sweep report -> %s\n", report.c_str());
  }
  return 0;
}
