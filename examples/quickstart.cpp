// Quickstart: build a simulated SSD, talk to it through the block
// device interface, and look inside — the 20-line tour of postblock.
//
//   $ ./quickstart

#include <cstdio>

#include "blocklayer/request.h"
#include "common/table.h"
#include "sim/simulator.h"
#include "ssd/device.h"

using namespace postblock;

int main() {
  // 1. One simulator clocks everything.
  sim::Simulator sim;

  // 2. A 2012-class consumer SSD: 8 channels x 4 LUNs, page-mapping
  //    FTL, greedy GC, 12.5% over-provisioning, no write cache.
  ssd::Config config = ssd::Config::Consumer2012();
  ssd::Device ssd(&sim, config);
  std::printf("device: %llu blocks of %u bytes (%.1f GiB usable)\n",
              static_cast<unsigned long long>(ssd.num_blocks()),
              ssd.block_bytes(),
              static_cast<double>(ssd.num_blocks()) * ssd.block_bytes() /
                  (1024.0 * 1024 * 1024));

  // 3. Write four blocks. Payloads are 64-bit tokens (see DESIGN.md).
  blocklayer::IoRequest write;
  write.op = blocklayer::IoOp::kWrite;
  write.lba = 100;
  write.nblocks = 4;
  write.tokens = {11, 22, 33, 44};
  write.on_complete = [&](const blocklayer::IoResult& r) {
    std::printf("write completed: %s at t=%s\n",
                r.status.ToString().c_str(),
                Table::Time(sim.Now()).c_str());
  };
  ssd.Submit(std::move(write));
  sim.Run();  // advance simulated time until idle

  // 4. Read them back.
  blocklayer::IoRequest read;
  read.op = blocklayer::IoOp::kRead;
  read.lba = 100;
  read.nblocks = 4;
  read.on_complete = [&](const blocklayer::IoResult& r) {
    std::printf("read completed: tokens = {%llu, %llu, %llu, %llu}\n",
                static_cast<unsigned long long>(r.tokens[0]),
                static_cast<unsigned long long>(r.tokens[1]),
                static_cast<unsigned long long>(r.tokens[2]),
                static_cast<unsigned long long>(r.tokens[3]));
  };
  ssd.Submit(std::move(read));
  sim.Run();

  // 5. Trim is part of the interface too (the first crack in the pure
  //    memory abstraction, per the paper).
  blocklayer::IoRequest trim;
  trim.op = blocklayer::IoOp::kTrim;
  trim.lba = 100;
  trim.nblocks = 2;
  trim.on_complete = [](const blocklayer::IoResult&) {};
  ssd.Submit(std::move(trim));
  sim.Run();

  // 6. Unlike a real SSD, this one opens up.
  std::printf("\ndevice internals after the session:\n");
  std::printf("  host read latency: %s\n",
              ssd.read_latency().Summary().c_str());
  std::printf("  host write latency: %s\n",
              ssd.write_latency().Summary().c_str());
  std::printf("  write amplification: %.2f\n", ssd.WriteAmplification());
  std::printf("  flash counters:\n%s", [&] {
    std::string s;
    for (const auto& [k, v] : ssd.controller()->counters().All()) {
      s += "    " + k + " = " + std::to_string(v) + "\n";
    }
    return s;
  }().c_str());
  std::printf("  FTL counters:\n%s", [&] {
    std::string s;
    for (const auto& [k, v] : ssd.ftl()->counters().All()) {
      s += "    " + k + " = " + std::to_string(v) + "\n";
    }
    return s;
  }().c_str());
  return 0;
}
