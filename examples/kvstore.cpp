// A key-value database on the paper's redesigned storage architecture —
// the end-to-end "vision" demo:
//
//   * WAL commits -> PCM over the memory bus (sync path),
//   * data pages  -> flash SSD via a direct driver (async path),
//   * checkpoints -> the device's atomic write command,
//
// then the same database rewired the "classic" way (everything through
// the block device interface), same workload, same simulated hardware.
// Includes a power-cut + recovery demonstration.
//
//   $ ./kvstore

#include <cstdio>

#include "common/table.h"
#include "db/storage_manager.h"
#include "sim/simulator.h"
#include "ssd/device.h"
#include "workload/db_trace.h"

using namespace postblock;

namespace {

struct DemoResult {
  double txn_per_sec;
  Histogram commit;
};

DemoResult RunDemo(db::Wiring wiring, bool narrate) {
  sim::Simulator sim;
  ssd::Config ssd_cfg = ssd::Config::Consumer2012();
  ssd_cfg.write_buffer.pages = 256;
  ssd::Device ssd(&sim, ssd_cfg);
  db::StorageConfig cfg;
  cfg.wiring = wiring;
  db::StorageManager store(&sim, &ssd, cfg);

  auto wait = [&](auto submit) {
    bool fired = false;
    submit([&](Status st) {
      if (!st.ok()) std::printf("  !! %s\n", st.ToString().c_str());
      fired = true;
    });
    sim.RunUntilPredicate([&] { return fired; });
  };

  wait([&](auto cb) { store.Bootstrap(cb); });

  // OLTP-ish phase: zipf keys, 60% updates.
  workload::DbTraceConfig trace_cfg;
  trace_cfg.key_space = 10000;
  trace_cfg.put_fraction = 0.6;
  workload::DbTrace trace(trace_cfg);
  const SimTime start = sim.Now();
  const int kTxns = 3000;
  for (int i = 0; i < kTxns; ++i) {
    const workload::KvOp op = trace.Next();
    if (op.kind == workload::KvOp::Kind::kGet) {
      bool fired = false;
      store.Get(op.key, [&](StatusOr<std::uint64_t>) { fired = true; });
      sim.RunUntilPredicate([&] { return fired; });
    } else if (op.kind == workload::KvOp::Kind::kPut) {
      wait([&](auto cb) { store.Put(op.key, op.value, cb); });
    } else {
      wait([&](auto cb) { store.Delete(op.key, cb); });
    }
  }
  const double tps = static_cast<double>(kTxns) * 1e9 /
                     static_cast<double>(sim.Now() - start);

  if (narrate) {
    // Put a marker, checkpoint, put more, then pull the plug.
    wait([&](auto cb) { store.Put(424242, 1, cb); });
    wait([&](auto cb) { store.Checkpoint(cb); });
    wait([&](auto cb) { store.Put(424243, 2, cb); });
    std::printf("  power cut...\n");
    if (Status st = store.SimulateCrash(); !st.ok()) {
      std::printf("  crash failed: %s\n", st.ToString().c_str());
    }
    wait([&](auto cb) { store.Recover(cb); });
    for (std::uint64_t key : {424242ull, 424243ull}) {
      bool fired = false;
      store.Get(key, [&](StatusOr<std::uint64_t> r) {
        std::printf("  after recovery, key %llu -> %s\n",
                    static_cast<unsigned long long>(key),
                    r.ok() ? std::to_string(*r).c_str()
                           : r.status().ToString().c_str());
        fired = true;
      });
      sim.RunUntilPredicate([&] { return fired; });
    }
    std::printf("  (both survive: one via the checkpoint, one via WAL "
                "replay)\n");
  }
  return DemoResult{tps, store.commit_latency()};
}

}  // namespace

int main() {
  std::printf("kvstore: the same database, two storage architectures\n");
  std::printf("\n[vision]  WAL->PCM, pages->direct driver, atomic "
              "checkpoints\n");
  const DemoResult vision = RunDemo(db::Wiring::kVision, /*narrate=*/true);
  std::printf("\n[classic] everything through the block device "
              "interface\n");
  const DemoResult classic =
      RunDemo(db::Wiring::kClassic, /*narrate=*/false);

  std::printf("\nresults (3000 zipf transactions, 60%% updates):\n");
  Table table({"wiring", "txn/s", "commit p50", "commit p99"});
  table.AddRow({"vision", Table::Num(vision.txn_per_sec, 0),
                Table::Time(vision.commit.P50()),
                Table::Time(vision.commit.P99())});
  table.AddRow({"classic", Table::Num(classic.txn_per_sec, 0),
                Table::Time(classic.commit.P50()),
                Table::Time(classic.commit.P99())});
  table.Print();
  std::printf("\nspeedup: %.0fx — that is Section 3, principle 1, "
              "end to end.\n",
              vision.txn_per_sec / classic.txn_per_sec);
  return 0;
}
