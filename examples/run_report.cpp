// Run report: the metrics subsystem end to end. Runs the paper's
// Figure-2 GC-interference experiment (aged device, concurrent random
// writes, latency-probing reads) with the sim-time sampler attached,
// then renders what a black-box device hides and the simulator sees:
//
//   1. a per-metric summary table (final cumulative values and rates
//      for every registered metric);
//   2. a Figure-2-style timeline: per-window read p99 next to the GC
//      pages moved in the same window — the latency cliffs line up
//      with collection activity;
//   3. the cross-check: final sampled cumulative rows must equal the
//      stack's always-on Counters (exit 1 otherwise).
//
// The sampled time series is also written to <prefix>.csv and
// <prefix>.json (git-SHA stamped) for external plotting:
//
//   $ ./run_report            # writes run_report.csv / run_report.json
//   $ ./run_report myrun
//
#include <algorithm>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/table.h"
#include "metrics/metrics.h"
#include "metrics/sampler.h"
#include "sim/simulator.h"
#include "ssd/device.h"
#include "workload/patterns.h"

using namespace postblock;

namespace {

constexpr SimTime kIntervalNs = 1'000'000;  // 1 ms sampling window

// Renders `n` cells of a bar scaled so that `vmax` fills the width.
std::string Bar(double v, double vmax, int width) {
  const int n = vmax <= 0
                    ? 0
                    : static_cast<int>(v / vmax * width + 0.5);
  std::string s;
  for (int i = 0; i < std::min(n, width); ++i) s += "#";
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string prefix = argc > 1 ? argv[1] : "run_report";

  sim::Simulator sim;
  metrics::MetricRegistry registry;
  ssd::Config cfg = ssd::Config::Small();
  cfg.over_provisioning = 0.10;  // tight spare space keeps GC busy
  cfg.metrics = &registry;
  ssd::Device device(&sim, cfg);
  const std::uint64_t n = device.num_blocks();

  std::printf("aging the device (fill + 2x churn)...\n");
  bench::FillSequential(&sim, &device, n);
  workload::RandomPattern churn(0, n, /*is_write=*/true, 1, 99);
  bench::Precondition(&sim, &device, &churn, 2 * n);

  // Sample the measured phase only: the timeline is the experiment,
  // not the preconditioning. Cumulative columns still read full-run
  // counters, so the final-row cross-check stays exact.
  metrics::Sampler sampler(&sim, &registry, kIntervalNs);
  sampler.Start();

  // Concurrent QD2 random-write stream keeps GC live during the reads.
  auto stop = std::make_shared<bool>(false);
  auto writer = std::make_shared<workload::RandomPattern>(
      0, n, /*is_write=*/true, 1, 7);
  auto issue = std::make_shared<std::function<void()>>();
  *issue = [&sim, &device, stop, writer, issue]() {
    if (*stop) return;
    const workload::IoDesc d = writer->Next();
    blocklayer::IoRequest w;
    w.op = blocklayer::IoOp::kWrite;
    w.lba = d.lba;
    w.nblocks = 1;
    w.tokens = {1};
    w.on_complete = [issue, stop](const blocklayer::IoResult&) {
      if (!*stop) (*issue)();
    };
    device.Submit(std::move(w));
  };
  (*issue)();
  (*issue)();

  std::printf("running the fig2 experiment (reads vs background GC)...\n\n");
  workload::RandomPattern reads(0, n, /*is_write=*/false, 1, 8);
  (void)workload::RunClosedLoop(&sim, &device, &reads, 8000, 4);
  *stop = true;
  *issue = nullptr;  // break the self-reference
  sim.Run();
  sampler.Stop();

  const metrics::TimeSeries& ts = sampler.series();

  // --- 1. Per-metric summary ------------------------------------------------
  const double span_s =
      static_cast<double>(ts.timestamps().back() - ts.timestamps().front()) /
      1e9;
  Table summary({"metric", "kind", "final", "rate (/s, sampled span)"});
  for (const metrics::Column& c : ts.columns()) {
    if (c.is_counter) {
      const std::uint64_t total = c.u64.back();
      const std::uint64_t in_span = total >= c.u64.front()
                                        ? total - c.u64.front()
                                        : 0;
      summary.AddRow({c.name, "counter", Table::Int(total),
                      span_s > 0
                          ? Table::Num(static_cast<double>(in_span) / span_s,
                                       1)
                          : "-"});
    } else if (c.is_float) {
      summary.AddRow({c.name, "gauge", Table::Num(c.f64.back(), 3), "-"});
    }
    // Windowed sub-columns (.p50/.p99/...) describe single intervals;
    // the timeline below is their home, not a whole-run scalar.
  }
  summary.Print();

  // --- 2. Figure-2-style GC-interference timeline ---------------------------
  const metrics::Column* p99 = ts.Find("dev.read_lat_ns.p99");
  const metrics::Column* wc = ts.Find("dev.read_lat_ns.window_count");
  const metrics::Column* gc = ts.Find("ftl.gc_page_moves");
  if (p99 != nullptr && wc != nullptr && gc != nullptr && ts.rows() > 1) {
    // Merge sample rows into at most kBuckets display windows.
    constexpr std::size_t kBuckets = 40;
    const std::size_t rows = ts.rows();
    const std::size_t per = (rows - 1 + kBuckets - 1) / kBuckets;
    struct Win {
      SimTime t = 0;
      std::uint64_t p99 = 0;  // worst window inside the bucket
      std::uint64_t gc = 0;   // pages moved across the bucket
    };
    std::vector<Win> wins;
    for (std::size_t r = 1; r < rows; r += per) {
      Win w;
      w.t = ts.timestamps()[r];
      for (std::size_t k = r; k < std::min(r + per, rows); ++k) {
        if (wc->u64[k] > 0) w.p99 = std::max(w.p99, p99->u64[k]);
        w.gc += metrics::TimeSeries::DeltaU64(*gc, k);
      }
      wins.push_back(w);
    }
    std::uint64_t p99_max = 1, gc_max = 1;
    for (const Win& w : wins) {
      p99_max = std::max(p99_max, w.p99);
      gc_max = std::max(gc_max, w.gc);
    }
    std::printf(
        "\nGC interference timeline (windowed read p99 vs pages moved "
        "by GC,\n%.1f ms per line) — the paper's Figure 2:\n\n",
        static_cast<double>(per * kIntervalNs) / 1e6);
    std::printf("%10s  %-26s %-10s  %-20s %s\n", "t[ms]", "read p99",
                "", "gc moved", "");
    const SimTime t0 = ts.timestamps().front();
    for (const Win& w : wins) {
      std::printf("%10.1f  %-26s %-10s  %-20s %llu\n",
                  static_cast<double>(w.t - t0) / 1e6,
                  Bar(static_cast<double>(w.p99),
                      static_cast<double>(p99_max), 24)
                      .c_str(),
                  Table::Time(w.p99).c_str(),
                  Bar(static_cast<double>(w.gc),
                      static_cast<double>(gc_max), 18)
                      .c_str(),
                  static_cast<unsigned long long>(w.gc));
    }
  }

  // --- 3. Cross-check: sampled rows vs always-on Counters -------------------
  struct Check {
    const char* metric;
    std::uint64_t sampled;
    std::uint64_t counter;
  };
  const Check checks[] = {
      {"ssd.pages_programmed", ts.FinalU64("ssd.pages_programmed"),
       device.controller()->counters().Get("pages_programmed")},
      {"ssd.pages_read", ts.FinalU64("ssd.pages_read"),
       device.controller()->counters().Get("pages_read")},
      {"ssd.blocks_erased", ts.FinalU64("ssd.blocks_erased"),
       device.controller()->counters().Get("blocks_erased")},
      {"dev.completions", ts.FinalU64("dev.completions"),
       device.counters().Get("completions")},
      {"ftl.gc_page_moves", ts.FinalU64("ftl.gc_page_moves"),
       device.ftl()->counters().Get("gc_page_moves")},
      {"dev.read_lat_ns.count", ts.FinalU64("dev.read_lat_ns.count"),
       device.read_latency().count()},
  };
  bool ok = true;
  for (const Check& c : checks) {
    if (c.sampled != c.counter) {
      ok = false;
      std::fprintf(stderr,
                   "CROSS-CHECK FAILED: %s sampled %llu != counter %llu\n",
                   c.metric, static_cast<unsigned long long>(c.sampled),
                   static_cast<unsigned long long>(c.counter));
    }
  }
  if (ok) {
    std::printf(
        "\ncross-check OK: final sampled cumulative rows equal the "
        "stack's Counters (%zu metrics checked)\n",
        std::size(checks));
  }

  // --- 4. Export ------------------------------------------------------------
  const std::string csv = prefix + ".csv";
  const std::string json = prefix + ".json";
  const std::string meta = "\"git_sha\": \"" + bench::GitShaShort() +
                           "\", \"interval_ns\": " +
                           std::to_string(kIntervalNs);
  if (!ts.WriteCsv(csv).ok() || !ts.WriteJson(json, meta).ok()) {
    std::fprintf(stderr, "cannot write %s / %s\n", csv.c_str(),
                 json.c_str());
    return 1;
  }
  std::printf("wrote %s and %s (%zu samples x %zu columns)\n", csv.c_str(),
              json.c_str(), ts.rows(), ts.columns().size());
  return ok ? 0 : 1;
}
