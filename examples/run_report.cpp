// Run report: the metrics + observability subsystems end to end. Runs
// the paper's Figure-2 GC-interference experiment (aged device,
// concurrent random writes, latency-probing reads) with the traffic
// multiplexed through two vbd tenants and the sim-time sampler
// attached, then renders what a black-box device hides and the
// simulator sees:
//
//   1. a per-metric summary table (final cumulative values and rates
//      for every registered metric);
//   2. a Figure-2-style timeline: per-window read p99 next to the GC
//      pages moved in the same window — the latency cliffs line up
//      with collection activity;
//   3. a per-tenant vbd section: quota usage, DRR share of completed
//      IOs, per-tenant latency percentiles;
//   4. the SLO watchdog section: declarative objectives evaluated on
//      the sampling grid, with breach counts and the first breaches;
//   5. the cross-check: final sampled cumulative rows must equal the
//      stack's always-on Counters (exit 1 otherwise);
//   6. an engine-profiler section: the fig2-class workload again on
//      sim::ShardedEngine with obs::EngineProfiler attached —
//      per-shard busy/idle/barrier attribution and lookahead slack.
//
// The sampled time series is written to <prefix>.csv and <prefix>.json
// (git-SHA stamped); the profiler report goes to <prefix>.profile.json
// and the SLO report to <prefix>.slo.json:
//
//   $ ./run_report            # writes run_report.{csv,json,...}
//   $ ./run_report myrun
//
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/json.h"
#include "common/table.h"
#include "metrics/metrics.h"
#include "metrics/sampler.h"
#include "obs/engine_profiler.h"
#include "obs/slo_watchdog.h"
#include "sim/simulator.h"
#include "ssd/device.h"
#include "ssd/sharded_backend.h"
#include "trace/tracer.h"
#include "vbd/backend.h"
#include "vbd/frontend.h"
#include "vbd/vbd.h"
#include "workload/patterns.h"

using namespace postblock;

namespace {

constexpr SimTime kIntervalNs = 1'000'000;  // 1 ms sampling window

// Renders `n` cells of a bar scaled so that `vmax` fills the width.
std::string Bar(double v, double vmax, int width) {
  const int n = vmax <= 0
                    ? 0
                    : static_cast<int>(v / vmax * width + 0.5);
  std::string s;
  for (int i = 0; i < std::min(n, width); ++i) s += "#";
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string prefix = argc > 1 ? argv[1] : "run_report";

  sim::Simulator sim;
  metrics::MetricRegistry registry;
  trace::Tracer tracer(1 << 14);
  tracer.set_enabled(true);
  ssd::Config cfg = ssd::Config::Small();
  cfg.over_provisioning = 0.10;  // tight spare space keeps GC busy
  cfg.metrics = &registry;
  ssd::Device device(&sim, cfg);
  const std::uint64_t n = device.num_blocks();

  // Two tenants split the device: "reader" runs the latency probe,
  // "churner" the GC-provoking write stream. DRR admission (shared
  // depth 8, weights 6:1) keeps the probe's device slots protected.
  vbd::BackendConfig bcfg;
  bcfg.shared_depth = 8;
  bcfg.metrics = &registry;
  bcfg.tracer = &tracer;
  vbd::Backend backend(&sim, &device, bcfg);
  vbd::TenantConfig rc;
  rc.name = "reader";
  rc.capacity_blocks = n / 2;
  rc.qos_weight = 6;
  rc.register_metrics = true;
  vbd::Frontend* reader = backend.CreateTenant(rc).value();
  vbd::TenantConfig cc;
  cc.name = "churner";
  cc.capacity_blocks = n / 2;
  cc.qos_weight = 1;
  cc.register_metrics = true;
  vbd::Frontend* churner = backend.CreateTenant(cc).value();

  std::printf("aging the device (tenant fills + 2x churn)...\n");
  workload::SequentialPattern rfill(0, n / 2, /*is_write=*/true);
  workload::RunClosedLoop(&sim, reader, &rfill, n / 2, 8);
  workload::SequentialPattern cfill(0, n / 2, /*is_write=*/true);
  workload::RunClosedLoop(&sim, churner, &cfill, n / 2, 8);
  workload::RandomPattern churn(0, n / 2, /*is_write=*/true, 1, 99);
  workload::RunClosedLoop(&sim, churner, &churn, 2 * n, 8);
  sim.Run();  // drain background GC

  // Declarative objectives, evaluated on every sampling window by the
  // watchdog (read-only on the grid — the schedule cannot notice it).
  // The p99 bound is deliberately tight enough that GC cliffs breach
  // it: the report should *show* the interference, not hide it.
  obs::SloWatchdog watchdog(std::vector<obs::SloSpec>{
      {"reader read p99 <= 1.5ms", "vbd.reader.read_lat_ns",
       obs::SloKind::kMaxP99, 1.5e6, /*min_window_count=*/8},
      {"reader read p999 <= 4ms", "vbd.reader.read_lat_ns",
       obs::SloKind::kMaxP999, 4e6, /*min_window_count=*/8},
      {"device completions >= 1k/s", "dev.completions",
       obs::SloKind::kMinThroughput, 1e3},
  });
  const std::uint32_t health_track =
      tracer.RegisterTrack(trace::kPidFlash, "health");
  watchdog.AttachTrace(&tracer, health_track);

  // Sample the measured phase only: the timeline is the experiment,
  // not the preconditioning. Cumulative columns still read full-run
  // counters, so the final-row cross-check stays exact.
  metrics::Sampler sampler(&sim, &registry, kIntervalNs);
  sampler.set_observer(&watchdog);
  sampler.Start();

  // Concurrent QD2 random-write stream keeps GC live during the reads.
  auto stop = std::make_shared<bool>(false);
  auto writer = std::make_shared<workload::RandomPattern>(
      0, n / 2, /*is_write=*/true, 1, 7);
  auto issue = std::make_shared<std::function<void()>>();
  *issue = [&sim, churner, stop, writer, issue]() {
    if (*stop) return;
    const workload::IoDesc d = writer->Next();
    blocklayer::IoRequest w;
    w.op = blocklayer::IoOp::kWrite;
    w.lba = d.lba;
    w.nblocks = 1;
    w.tokens = {1};
    w.on_complete = [issue, stop](const blocklayer::IoResult&) {
      if (!*stop) (*issue)();
    };
    churner->Submit(std::move(w));
  };
  (*issue)();
  (*issue)();

  std::printf("running the fig2 experiment (reads vs background GC)...\n\n");
  workload::RandomPattern reads(0, n / 2, /*is_write=*/false, 1, 8);
  (void)workload::RunClosedLoop(&sim, reader, &reads, 8000, 4);
  *stop = true;
  *issue = nullptr;  // break the self-reference
  sim.Run();
  sampler.Stop();

  const metrics::TimeSeries& ts = sampler.series();

  // --- 1. Per-metric summary ------------------------------------------------
  const double span_s =
      static_cast<double>(ts.timestamps().back() - ts.timestamps().front()) /
      1e9;
  Table summary({"metric", "kind", "final", "rate (/s, sampled span)"});
  for (const metrics::Column& c : ts.columns()) {
    if (c.is_counter) {
      const std::uint64_t total = c.u64.back();
      const std::uint64_t in_span = total >= c.u64.front()
                                        ? total - c.u64.front()
                                        : 0;
      summary.AddRow({c.name, "counter", Table::Int(total),
                      span_s > 0
                          ? Table::Num(static_cast<double>(in_span) / span_s,
                                       1)
                          : "-"});
    } else if (c.is_float) {
      summary.AddRow({c.name, "gauge", Table::Num(c.f64.back(), 3), "-"});
    }
    // Windowed sub-columns (.p50/.p99/...) describe single intervals;
    // the timeline below is their home, not a whole-run scalar.
  }
  summary.Print();

  // --- 2. Figure-2-style GC-interference timeline ---------------------------
  const metrics::Column* p99 = ts.Find("dev.read_lat_ns.p99");
  const metrics::Column* wc = ts.Find("dev.read_lat_ns.window_count");
  const metrics::Column* gc = ts.Find("ftl.gc_page_moves");
  if (p99 != nullptr && wc != nullptr && gc != nullptr && ts.rows() > 1) {
    // Merge sample rows into at most kBuckets display windows.
    constexpr std::size_t kBuckets = 40;
    const std::size_t rows = ts.rows();
    const std::size_t per = (rows - 1 + kBuckets - 1) / kBuckets;
    struct Win {
      SimTime t = 0;
      std::uint64_t p99 = 0;  // worst window inside the bucket
      std::uint64_t gc = 0;   // pages moved across the bucket
    };
    std::vector<Win> wins;
    for (std::size_t r = 1; r < rows; r += per) {
      Win w;
      w.t = ts.timestamps()[r];
      for (std::size_t k = r; k < std::min(r + per, rows); ++k) {
        if (wc->u64[k] > 0) w.p99 = std::max(w.p99, p99->u64[k]);
        w.gc += metrics::TimeSeries::DeltaU64(*gc, k);
      }
      wins.push_back(w);
    }
    std::uint64_t p99_max = 1, gc_max = 1;
    for (const Win& w : wins) {
      p99_max = std::max(p99_max, w.p99);
      gc_max = std::max(gc_max, w.gc);
    }
    std::printf(
        "\nGC interference timeline (windowed read p99 vs pages moved "
        "by GC,\n%.1f ms per line) — the paper's Figure 2:\n\n",
        static_cast<double>(per * kIntervalNs) / 1e6);
    std::printf("%10s  %-26s %-10s  %-20s %s\n", "t[ms]", "read p99",
                "", "gc moved", "");
    const SimTime t0 = ts.timestamps().front();
    for (const Win& w : wins) {
      std::printf("%10.1f  %-26s %-10s  %-20s %llu\n",
                  static_cast<double>(w.t - t0) / 1e6,
                  Bar(static_cast<double>(w.p99),
                      static_cast<double>(p99_max), 24)
                      .c_str(),
                  Table::Time(w.p99).c_str(),
                  Bar(static_cast<double>(w.gc),
                      static_cast<double>(gc_max), 18)
                      .c_str(),
                  static_cast<unsigned long long>(w.gc));
    }
  }

  // --- 3. Per-tenant vbd section --------------------------------------------
  std::printf("\nper-tenant vbd (DRR admission, shared depth %u):\n\n",
              bcfg.shared_depth);
  {
    const std::uint64_t total_completed =
        reader->stats().completed + churner->stats().completed;
    Table tenants({"tenant", "weight", "quota used", "completed",
                   "DRR share", "read p99", "write p99"});
    const auto row = [&](const vbd::Frontend* fe, std::uint32_t weight) {
      const vbd::TenantStats& st = fe->stats();
      const double quota_pct =
          fe->quota_blocks() > 0
              ? 100.0 * static_cast<double>(fe->quota_used()) /
                    static_cast<double>(fe->quota_blocks())
              : 0;
      const double share =
          total_completed > 0
              ? 100.0 * static_cast<double>(st.completed) /
                    static_cast<double>(total_completed)
              : 0;
      tenants.AddRow(
          {fe->name(), Table::Int(weight),
           Table::Num(quota_pct, 1) + "%", Table::Int(st.completed),
           Table::Num(share, 1) + "%",
           Table::Time(st.read_latency.P99()),
           Table::Time(st.write_latency.P99())});
    };
    row(reader, rc.qos_weight);
    row(churner, cc.qos_weight);
    tenants.Print();
  }

  // --- 4. SLO watchdog section ----------------------------------------------
  std::printf("\nSLO watchdog (%zu objectives on the %u-ms sampling "
              "grid):\n\n",
              watchdog.specs().size(),
              static_cast<std::uint32_t>(kIntervalNs / kMillisecond));
  {
    Table slos({"objective", "metric", "kind", "breaches"});
    for (std::size_t i = 0; i < watchdog.specs().size(); ++i) {
      const obs::SloSpec& s = watchdog.specs()[i];
      slos.AddRow({s.name, s.metric, obs::SloKindName(s.kind),
                   Table::Int(watchdog.breach_count(
                       static_cast<std::uint32_t>(i)))});
    }
    slos.Print();
    const std::size_t show = std::min<std::size_t>(
        watchdog.breaches().size(), 5);
    for (std::size_t i = 0; i < show; ++i) {
      const obs::SloBreach& b = watchdog.breaches()[i];
      std::printf("  breach @%.1f ms: %s observed %.0f (bound %.0f)\n",
                  static_cast<double>(b.at) / 1e6,
                  watchdog.specs()[b.slo].name.c_str(), b.observed,
                  b.bound);
    }
    if (watchdog.breaches().size() > show) {
      std::printf("  ... %zu more (see %s.slo.json)\n",
                  watchdog.breaches().size() - show, prefix.c_str());
    }
    // Every breach also landed on the trace `health` track as a
    // zero-duration slo_breach marker.
    std::uint64_t marks = 0;
    tracer.ForEach([&](const trace::TraceEvent& e) {
      if (e.stage == trace::Stage::kSlo) ++marks;
    });
    std::printf("  health-track markers recorded: %llu\n",
                static_cast<unsigned long long>(marks));
  }

  // --- 5. Cross-check: sampled rows vs always-on Counters -------------------
  struct Check {
    const char* metric;
    std::uint64_t sampled;
    std::uint64_t counter;
  };
  const Check checks[] = {
      {"ssd.pages_programmed", ts.FinalU64("ssd.pages_programmed"),
       device.controller()->counters().Get("pages_programmed")},
      {"ssd.pages_read", ts.FinalU64("ssd.pages_read"),
       device.controller()->counters().Get("pages_read")},
      {"ssd.blocks_erased", ts.FinalU64("ssd.blocks_erased"),
       device.controller()->counters().Get("blocks_erased")},
      {"dev.completions", ts.FinalU64("dev.completions"),
       device.counters().Get("completions")},
      {"ftl.gc_page_moves", ts.FinalU64("ftl.gc_page_moves"),
       device.ftl()->counters().Get("gc_page_moves")},
      {"dev.read_lat_ns.count", ts.FinalU64("dev.read_lat_ns.count"),
       device.read_latency().count()},
      {"vbd.reader.read_lat_ns.count",
       ts.FinalU64("vbd.reader.read_lat_ns.count"),
       reader->stats().read_latency.count()},
  };
  bool ok = true;
  for (const Check& c : checks) {
    if (c.sampled != c.counter) {
      ok = false;
      std::fprintf(stderr,
                   "CROSS-CHECK FAILED: %s sampled %llu != counter %llu\n",
                   c.metric, static_cast<unsigned long long>(c.sampled),
                   static_cast<unsigned long long>(c.counter));
    }
  }
  if (ok) {
    std::printf(
        "\ncross-check OK: final sampled cumulative rows equal the "
        "stack's Counters (%zu metrics checked)\n",
        std::size(checks));
  }

  // --- 6. Engine profiler: the same workload class on sharded cores ---------
  std::printf("\nengine profiler (fig2-class workload on "
              "sim::ShardedEngine, 4 channels):\n\n");
  obs::EngineProfiler profiler;
  {
    ssd::Config pcfg = ssd::Config::Small();
    pcfg.geometry.channels = 4;
    ssd::ShardedRunConfig prun;
    prun.workers = 2;
    prun.ios_per_channel = 5000;
    prun.observer = &profiler;
    ssd::ShardedFlashSim shsim(pcfg, prun);
    shsim.Run();

    Table shards({"shard", "role", "utilization", "busy", "idle",
                  "barrier", "events"});
    for (std::size_t s = 0; s < profiler.shard_profiles().size(); ++s) {
      const obs::ShardProfile& p = profiler.shard_profiles()[s];
      shards.AddRow(
          {Table::Int(s),
           s + 1 == profiler.shard_profiles().size() ? "controller"
                                                     : "channel",
           Table::Num(p.Utilization() * 100, 1) + "%",
           Table::Num(p.busy_wall_ns / 1e6, 1) + " ms",
           Table::Num(p.idle_wall_ns / 1e6, 1) + " ms",
           Table::Num(p.barrier_wall_ns / 1e6, 1) + " ms",
           Table::Int(p.events)});
    }
    shards.Print();
    const Histogram& slack = profiler.slack_hist();
    std::printf(
        "\nlookahead slack (next-event time past the window floor): "
        "p50=%s p99=%s over %llu shard-windows, %llu windows, %llu "
        "seam messages\n",
        Table::Time(slack.P50()).c_str(), Table::Time(slack.P99()).c_str(),
        static_cast<unsigned long long>(slack.count()),
        static_cast<unsigned long long>(profiler.windows_observed()),
        static_cast<unsigned long long>(profiler.messages()));
  }

  // --- 7. Export ------------------------------------------------------------
  const std::string csv = prefix + ".csv";
  const std::string json = prefix + ".json";
  const std::string meta = "\"git_sha\": \"" +
                           JsonEscaped(bench::GitShaShort()) +
                           "\", \"interval_ns\": " +
                           std::to_string(kIntervalNs);
  if (!ts.WriteCsv(csv).ok() || !ts.WriteJson(json, meta).ok()) {
    std::fprintf(stderr, "cannot write %s / %s\n", csv.c_str(),
                 json.c_str());
    return 1;
  }
  const std::string profile = prefix + ".profile.json";
  if (!profiler.WriteReport(profile, bench::MetaJsonFields(&cfg, 2)).ok()) {
    std::fprintf(stderr, "cannot write %s\n", profile.c_str());
    return 1;
  }
  const std::string slo_json = prefix + ".slo.json";
  {
    std::ofstream f(slo_json, std::ios::trunc);
    f << "{\n  \"meta\": {" << meta << "},\n  \"slo\": "
      << watchdog.ReportJson() << "\n}\n";
  }
  std::printf(
      "wrote %s and %s (%zu samples x %zu columns), %s, %s\n",
      csv.c_str(), json.c_str(), ts.rows(), ts.columns().size(),
      profile.c_str(), slo_json.c_str());
  return ok ? 0 : 1;
}
