// uFLIP explorer: interactively probe a simulated SSD with the
// micro-pattern methodology of the authors' own uFLIP benchmark
// (refs [2,3,6] in the paper): sweep access pattern x FTL x queue
// depth and watch which myths hold on which device.
//
//   $ ./uflip_explorer                 # default sweep
//   $ ./uflip_explorer hybrid rand 16  # one cell: FTL, pattern, QD

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "common/table.h"
#include "sim/simulator.h"
#include "ssd/device.h"
#include "workload/patterns.h"

using namespace postblock;

namespace {

ssd::FtlKind ParseFtl(const std::string& s) {
  if (s == "block") return ssd::FtlKind::kBlockMap;
  if (s == "hybrid") return ssd::FtlKind::kHybrid;
  if (s == "dftl") return ssd::FtlKind::kDftl;
  return ssd::FtlKind::kPageMap;
}

std::unique_ptr<workload::Pattern> MakePattern(const std::string& kind,
                                               std::uint64_t span,
                                               bool write) {
  if (kind == "seq") {
    return std::make_unique<workload::SequentialPattern>(0, span, write);
  }
  if (kind == "stride") {
    return std::make_unique<workload::StridedPattern>(0, span, 17, write);
  }
  if (kind == "zipf") {
    return std::make_unique<workload::ZipfPattern>(0, span, 0.99, write);
  }
  return std::make_unique<workload::RandomPattern>(0, span, write);
}

struct Cell {
  double iops;
  SimTime p50;
  SimTime p99;
  double wa;
};

Cell RunCell(ssd::FtlKind ftl, const std::string& pattern_kind,
             std::uint32_t qd, bool write) {
  sim::Simulator sim;
  ssd::Config cfg = ssd::Config::Small();
  cfg.geometry.channels = 4;
  cfg.geometry.blocks_per_plane = 64;
  cfg.geometry.pages_per_block = 32;
  cfg.ftl = ftl;
  ssd::Device device(&sim, cfg);
  const std::uint64_t span = device.num_blocks() / 2;
  // Precondition: valid data everywhere the patterns touch.
  workload::SequentialPattern fill(0, span, true);
  (void)workload::RunClosedLoop(&sim, &device, &fill, span, 8);
  sim.Run();
  auto pattern = MakePattern(pattern_kind, span, write);
  const auto r =
      workload::RunClosedLoop(&sim, &device, pattern.get(), 5000, qd);
  sim.Run();
  return Cell{r.Iops(), r.latency.P50(), r.latency.P99(),
              device.WriteAmplification()};
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 4) {
    const ssd::FtlKind ftl = ParseFtl(argv[1]);
    const std::string pattern = argv[2];
    const std::uint32_t qd = static_cast<std::uint32_t>(atoi(argv[3]));
    for (bool write : {false, true}) {
      const Cell c = RunCell(ftl, pattern, qd, write);
      std::printf("%s %s QD%u %s: %.0f IOPS, p50 %s, p99 %s, WA %.2f\n",
                  ssd::FtlKindName(ftl), pattern.c_str(), qd,
                  write ? "write" : "read", c.iops,
                  Table::Time(c.p50).c_str(), Table::Time(c.p99).c_str(),
                  c.wa);
    }
    return 0;
  }

  std::printf("uFLIP-style sweep (4KiB ops, QD8). Usage for one cell:\n"
              "  uflip_explorer <page|block|hybrid|dftl> "
              "<seq|rand|stride|zipf> <qd>\n\n");
  for (bool write : {false, true}) {
    std::printf("%s\n", write ? "WRITES" : "READS");
    Table table({"FTL \\ pattern", "seq", "rand", "stride", "zipf"});
    for (auto ftl : {ssd::FtlKind::kPageMap, ssd::FtlKind::kBlockMap,
                     ssd::FtlKind::kHybrid, ssd::FtlKind::kDftl}) {
      std::vector<std::string> row = {ssd::FtlKindName(ftl)};
      for (const char* pattern : {"seq", "rand", "stride", "zipf"}) {
        const Cell c = RunCell(ftl, pattern, 8, write);
        row.push_back(Table::Num(c.iops, 0) + " iops/" +
                      Table::Time(c.p50));
      }
      table.AddRow(row);
    }
    table.Print();
    std::printf("\n");
  }
  std::printf(
      "Things to notice: write columns diverge wildly by FTL (Myth 2); "
      "read columns do not — until the device ages (see "
      "bench_fig2_gc_interference).\n");
  return 0;
}
