// Trace replayer: feed a block-level IO trace through any stack
// configuration and report what the device did with it. Traces are
// plain text, one request per line:
//
//     <R|W|T|F> <lba> <nblocks>
//
// (read / write / trim / flush). With no file argument, a built-in
// OLTP-ish sample trace is generated and replayed, so the example is
// runnable out of the box:
//
//   $ ./trace_replay                    # built-in sample, page-map FTL
//   $ ./trace_replay mytrace.txt hybrid
//
// --trace-out=PATH additionally records the replay with the latency
// attribution subsystem and dumps a Chrome trace-event JSON — open it
// in Perfetto (ui.perfetto.dev) or chrome://tracing to see every IO's
// time split across queues, FTL, GC and flash:
//
//   $ ./trace_replay --trace-out=replay.trace.json
//
// --metrics-out=PATH attaches the metrics registry and samples the
// whole stack every millisecond of sim time, dumping the windowed
// time series (CSV, or JSON when PATH ends in .json) — feed it to
// run_report or any plotting tool:
//
//   $ ./trace_replay --metrics-out=replay.metrics.csv

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/table.h"
#include "metrics/metrics.h"
#include "metrics/sampler.h"
#include "sim/simulator.h"
#include "ssd/device.h"
#include "trace/chrome_trace.h"
#include "trace/tracer.h"
#include "workload/zipf.h"

using namespace postblock;

namespace {

struct TraceEntry {
  char op;
  Lba lba;
  std::uint32_t nblocks;
};

std::vector<TraceEntry> LoadTrace(const std::string& path,
                                  std::uint64_t device_blocks) {
  std::vector<TraceEntry> trace;
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return trace;
  }
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    TraceEntry e{};
    if (!(ls >> e.op >> e.lba >> e.nblocks)) {
      std::fprintf(stderr, "skipping malformed line %zu: %s\n", lineno,
                   line.c_str());
      continue;
    }
    if (e.lba + e.nblocks > device_blocks) {
      std::fprintf(stderr, "skipping out-of-range line %zu\n", lineno);
      continue;
    }
    trace.push_back(e);
  }
  return trace;
}

std::vector<TraceEntry> SampleTrace(std::uint64_t device_blocks) {
  // A zipf-skewed 70/30 read/write mix with occasional trims + flushes,
  // resembling a page-level database trace.
  std::vector<TraceEntry> trace;
  const std::uint64_t span = device_blocks / 2;
  workload::ZipfGenerator zipf(span, 0.9, 17);
  Rng rng(99);
  for (Lba lba = 0; lba < span; ++lba) {
    trace.push_back({'W', lba, 1});  // load phase
  }
  for (int i = 0; i < 20000; ++i) {
    const Lba lba = zipf.Next();
    const double dice = rng.NextDouble();
    if (dice < 0.70) {
      trace.push_back({'R', lba, 1});
    } else if (dice < 0.97) {
      trace.push_back({'W', lba, 1});
    } else if (dice < 0.99) {
      trace.push_back({'T', lba, 1});
    } else {
      trace.push_back({'F', 0, 1});
    }
  }
  return trace;
}

}  // namespace

int main(int argc, char** argv) {
  // Peel off --trace-out=PATH / --metrics-out=PATH wherever they
  // appear; the remaining positional args keep their old meaning
  // (trace file, FTL kind).
  std::string trace_out;
  std::string metrics_out;
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const std::string kFlag = "--trace-out=";
    const std::string kMetricsFlag = "--metrics-out=";
    if (a.rfind(kFlag, 0) == 0) {
      trace_out = a.substr(kFlag.size());
      if (trace_out.empty()) {
        std::fprintf(stderr, "--trace-out needs a path\n");
        return 1;
      }
    } else if (a.rfind(kMetricsFlag, 0) == 0) {
      metrics_out = a.substr(kMetricsFlag.size());
      if (metrics_out.empty()) {
        std::fprintf(stderr, "--metrics-out needs a path\n");
        return 1;
      }
    } else {
      args.push_back(a);
    }
  }

  sim::Simulator sim;
  ssd::Config cfg = ssd::Config::Consumer2012();
  cfg.write_buffer.pages = 128;
  if (args.size() > 1) {
    const std::string& kind = args[1];
    if (kind == "block") cfg.ftl = ssd::FtlKind::kBlockMap;
    if (kind == "hybrid") cfg.ftl = ssd::FtlKind::kHybrid;
    if (kind == "dftl") cfg.ftl = ssd::FtlKind::kDftl;
  }
  trace::Tracer tracer(1 << 20);
  if (!trace_out.empty()) {
    tracer.set_enabled(true);
    cfg.tracer = &tracer;
  }
  metrics::MetricRegistry registry;
  if (!metrics_out.empty()) cfg.metrics = &registry;
  ssd::Device device(&sim, cfg);
  metrics::Sampler sampler(&sim, &registry, /*interval_ns=*/1'000'000);
  if (!metrics_out.empty()) sampler.Start();

  const std::vector<TraceEntry> trace =
      !args.empty() ? LoadTrace(args[0], device.num_blocks())
                    : SampleTrace(device.num_blocks());
  if (trace.empty()) {
    std::fprintf(stderr, "empty trace\n");
    return 1;
  }
  std::printf("replaying %zu requests on a %s-FTL device (QD16)...\n",
              trace.size(), ssd::FtlKindName(cfg.ftl));

  // Closed-loop replay at queue depth 16, preserving trace order.
  Histogram read_lat, write_lat;
  std::size_t next = 0;
  std::size_t completed = 0;
  std::uint64_t next_token = 1;
  std::uint64_t errors = 0;
  std::function<void()> issue = [&]() {
    if (next >= trace.size()) return;
    const TraceEntry e = trace[next++];
    blocklayer::IoRequest req;
    req.lba = e.lba;
    req.nblocks = e.nblocks;
    switch (e.op) {
      case 'W':
        req.op = blocklayer::IoOp::kWrite;
        for (std::uint32_t b = 0; b < e.nblocks; ++b) {
          req.tokens.push_back(next_token++);
        }
        break;
      case 'T':
        req.op = blocklayer::IoOp::kTrim;
        break;
      case 'F':
        req.op = blocklayer::IoOp::kFlush;
        break;
      default:
        req.op = blocklayer::IoOp::kRead;
    }
    const SimTime t0 = sim.Now();
    const char op = e.op;
    req.on_complete = [&, t0, op](const blocklayer::IoResult& r) {
      if (!r.status.ok()) ++errors;
      if (op == 'R') read_lat.Record(sim.Now() - t0);
      if (op == 'W') write_lat.Record(sim.Now() - t0);
      ++completed;
      issue();
    };
    device.Submit(std::move(req));
  };
  const SimTime start = sim.Now();
  for (int i = 0; i < 16; ++i) issue();
  sim.RunUntilPredicate([&] { return completed >= trace.size(); });
  sim.Run();
  sampler.Stop();
  const double seconds =
      static_cast<double>(sim.Now() - start) / 1e9;

  Table table({"metric", "value"});
  table.AddRow({"requests", Table::Int(trace.size())});
  table.AddRow({"errors", Table::Int(errors)});
  table.AddRow({"trace time (simulated)", Table::Num(seconds, 3) + " s"});
  table.AddRow({"read p50 / p99", Table::Time(read_lat.P50()) + " / " +
                                      Table::Time(read_lat.P99())});
  table.AddRow({"write p50 / p99", Table::Time(write_lat.P50()) + " / " +
                                       Table::Time(write_lat.P99())});
  table.AddRow({"write amplification",
                Table::Num(device.WriteAmplification(), 2)});
  table.AddRow({"gc page moves",
                Table::Int(device.ftl()->counters().Get("gc_page_moves"))});
  table.AddRow(
      {"flash energy",
       Table::Num(static_cast<double>(device.controller()->EnergyNj()) /
                      1e9,
                  3) +
           " J"});
  table.Print();

  if (!trace_out.empty()) {
    const Status st = trace::WriteChromeTrace(tracer, trace_out);
    if (!st.ok()) {
      std::fprintf(stderr, "cannot write %s: %s\n", trace_out.c_str(),
                   st.ToString().c_str());
      return 1;
    }
    std::printf(
        "\nwrote %s: %zu trace events (%llu recorded, %llu dropped by "
        "the ring) — open in Perfetto (ui.perfetto.dev) or "
        "chrome://tracing\n%s",
        trace_out.c_str(), tracer.size(),
        static_cast<unsigned long long>(tracer.total_recorded()),
        static_cast<unsigned long long>(tracer.dropped()),
        tracer.breakdown().Summary().c_str());
  }
  if (!metrics_out.empty()) {
    const bool json = metrics_out.size() >= 5 &&
                      metrics_out.rfind(".json") == metrics_out.size() - 5;
    const Status st = json ? sampler.series().WriteJson(metrics_out)
                           : sampler.series().WriteCsv(metrics_out);
    if (!st.ok()) {
      std::fprintf(stderr, "cannot write %s: %s\n", metrics_out.c_str(),
                   st.ToString().c_str());
      return 1;
    }
    std::printf(
        "\nwrote %s: %llu samples x %zu metrics (1 ms sim interval) — "
        "feed to run_report or any plotting tool\n",
        metrics_out.c_str(),
        static_cast<unsigned long long>(sampler.samples_taken()),
        sampler.series().columns().size());
  }
  return 0;
}
