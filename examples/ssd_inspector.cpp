// SSD inspector: watch a device age. Fills a drive, then keeps
// overwriting it while printing what the outside world never sees —
// free-block levels, GC traffic, wear spread, write amplification and
// the host-visible latency that results. This is the "black box"
// argument of Section 2 made observable.
//
//   $ ./ssd_inspector            # page-mapping FTL
//   $ ./ssd_inspector hybrid     # or: block, dftl

#include <cstdio>
#include <string>

#include "common/table.h"
#include "ftl/page_ftl.h"
#include "sim/simulator.h"
#include "ssd/device.h"
#include "workload/patterns.h"

using namespace postblock;

int main(int argc, char** argv) {
  ssd::Config cfg = ssd::Config::Small();
  cfg.geometry.channels = 4;
  cfg.geometry.blocks_per_plane = 64;
  cfg.geometry.pages_per_block = 32;
  cfg.over_provisioning = 0.10;
  cfg.wear.static_enabled = true;
  cfg.wear.spread_threshold = 16;
  if (argc > 1) {
    const std::string kind = argv[1];
    if (kind == "block") cfg.ftl = ssd::FtlKind::kBlockMap;
    if (kind == "hybrid") cfg.ftl = ssd::FtlKind::kHybrid;
    if (kind == "dftl") cfg.ftl = ssd::FtlKind::kDftl;
  }

  sim::Simulator sim;
  ssd::Device device(&sim, cfg);
  const std::uint64_t n = device.num_blocks();
  std::printf("device: %s FTL, %u LUNs, %llu user pages, OP %.0f%%\n\n",
              ssd::FtlKindName(cfg.ftl), cfg.geometry.luns(),
              static_cast<unsigned long long>(n),
              cfg.over_provisioning * 100);

  // Sequential fill, then rounds of random overwrite.
  workload::SequentialPattern fill(0, n, true);
  (void)workload::RunClosedLoop(&sim, &device, &fill, n, 8);
  sim.Run();

  Table table({"round", "write IOPS", "write p99", "WA", "gc runs",
               "gc moves", "wl moves", "erase min/max", "bad blocks"});
  workload::RandomPattern churn(0, n, true, 1, 42);
  for (int round = 1; round <= 6; ++round) {
    const auto r = workload::RunClosedLoop(&sim, &device, &churn, n / 2, 8);
    sim.Run();
    const auto* flash = device.controller()->flash();
    table.AddRow(
        {Table::Int(round), Table::Num(r.Iops(), 0),
         Table::Time(r.latency.P99()),
         Table::Num(device.WriteAmplification(), 2),
         Table::Int(device.ftl()->counters().Get("gc_runs")),
         Table::Int(device.ftl()->counters().Get("gc_page_moves")),
         Table::Int(device.ftl()->counters().Get("wl_page_moves")),
         Table::Int(flash->MinEraseCount()) + "/" +
             Table::Int(flash->MaxEraseCount()),
         Table::Int(flash->bad_blocks())});
  }
  table.Print();

  std::printf("\nall counters:\n");
  for (const auto& [k, v] : device.ftl()->counters().All()) {
    std::printf("  ftl.%s = %llu\n", k.c_str(),
                static_cast<unsigned long long>(v));
  }
  for (const auto& [k, v] : device.controller()->counters().All()) {
    std::printf("  flash.%s = %llu\n", k.c_str(),
                static_cast<unsigned long long>(v));
  }
  return 0;
}
