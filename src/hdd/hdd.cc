#include "hdd/hdd.h"

#include <cmath>
#include <cstdlib>
#include <memory>
#include <utility>

namespace postblock::hdd {

Hdd::Hdd(sim::Simulator* sim, const HddConfig& config)
    : sim_(sim),
      config_(config),
      actuator_(sim, "hdd-actuator", 1),
      tokens_(config.num_blocks, 0) {}

SimTime Hdd::ServiceTime(Lba lba, std::uint32_t nblocks) const {
  const std::uint64_t bytes =
      static_cast<std::uint64_t>(nblocks) * config_.block_bytes;
  const SimTime transfer =
      bytes * 1000 / config_.transfer_mb_per_s;  // MB = 10^6 B
  if (lba == head_) {
    // Streaming: the head is already there, no rotation wait.
    return transfer;
  }
  const double distance =
      static_cast<double>(lba > head_ ? lba - head_ : head_ - lba) /
      static_cast<double>(config_.num_blocks);
  // Classic sqrt seek curve between track-to-track and full stroke.
  const SimTime seek =
      config_.min_seek_ns +
      static_cast<SimTime>(
          static_cast<double>(config_.max_seek_ns - config_.min_seek_ns) *
          std::sqrt(distance));
  const SimTime half_rotation =
      SimTime{30} * kSecond / (config_.rpm);  // 60s/rpm / 2
  return seek + half_rotation + transfer;
}

void Hdd::Submit(blocklayer::IoRequest request) {
  counters_.Increment("requests");
  if (request.nblocks == 0 || request.op == blocklayer::IoOp::kFlush ||
      request.op == blocklayer::IoOp::kTrim) {
    // Disks have no trim; both are no-ops here.
    sim_->Schedule(0, [request = std::move(request)]() {
      request.on_complete(blocklayer::IoResult{Status::Ok(), {}});
    });
    return;
  }
  if (request.lba + request.nblocks > config_.num_blocks) {
    sim_->Schedule(0, [request = std::move(request)]() {
      request.on_complete(blocklayer::IoResult{
          Status::OutOfRange("beyond device"), {}});
    });
    return;
  }
  if (request.op == blocklayer::IoOp::kWrite &&
      request.tokens.size() != request.nblocks) {
    sim_->Schedule(0, [request = std::move(request)]() {
      request.on_complete(blocklayer::IoResult{
          Status::InvalidArgument("write token count != nblocks"), {}});
    });
    return;
  }
  auto req = std::make_shared<blocklayer::IoRequest>(std::move(request));
  actuator_.Acquire([this, req]() {
    const SimTime service = ServiceTime(req->lba, req->nblocks);
    sim_->Schedule(service, [this, req]() {
      blocklayer::IoResult result;
      result.status = Status::Ok();
      if (req->op == blocklayer::IoOp::kRead) {
        result.tokens.reserve(req->nblocks);
        for (std::uint32_t i = 0; i < req->nblocks; ++i) {
          result.tokens.push_back(tokens_[req->lba + i]);
        }
        counters_.Add("blocks_read", req->nblocks);
      } else {
        for (std::uint32_t i = 0; i < req->nblocks; ++i) {
          tokens_[req->lba + i] = req->tokens[i];
        }
        counters_.Add("blocks_written", req->nblocks);
      }
      head_ = req->lba + req->nblocks;
      actuator_.Release();
      req->on_complete(result);
    });
  });
}

}  // namespace postblock::hdd
