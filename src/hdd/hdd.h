#ifndef POSTBLOCK_HDD_HDD_H_
#define POSTBLOCK_HDD_HDD_H_

#include <cstdint>
#include <vector>

#include "blocklayer/block_device.h"
#include "common/stats.h"
#include "common/types.h"
#include "sim/resource.h"
#include "sim/simulator.h"

namespace postblock::hdd {

/// A 7200rpm-class magnetic disk: single actuator (strictly serial),
/// distance-dependent seek, half-rotation average latency, streaming
/// detection for sequential access. Exists for the paper's introduction
/// contrast — "a hundredfold improvement in terms of bandwidth and
/// latency" (E10) — and as the device the block interface was designed
/// around.
struct HddConfig {
  std::uint64_t num_blocks = 4ull << 20;  // 16 GiB of 4 KiB blocks
  std::uint32_t block_bytes = 4096;
  SimTime min_seek_ns = 500 * kMicrosecond;   // track-to-track
  SimTime max_seek_ns = 14 * kMillisecond;    // full stroke
  std::uint32_t rpm = 7200;
  std::uint64_t transfer_mb_per_s = 140;      // media rate
};

class Hdd : public blocklayer::BlockDevice {
 public:
  Hdd(sim::Simulator* sim, const HddConfig& config);
  ~Hdd() override = default;

  std::uint64_t num_blocks() const override { return config_.num_blocks; }
  std::uint32_t block_bytes() const override {
    return config_.block_bytes;
  }
  void Submit(blocklayer::IoRequest request) override;
  const Counters& counters() const override { return counters_; }

  /// Mechanical service time for a request at `lba` given the current
  /// head position (exposed for tests).
  SimTime ServiceTime(Lba lba, std::uint32_t nblocks) const;

 private:
  sim::Simulator* sim_;
  HddConfig config_;
  sim::Resource actuator_;
  Lba head_ = 0;  // block under the head after the last IO
  std::vector<std::uint64_t> tokens_;
  Counters counters_;
};

}  // namespace postblock::hdd

#endif  // POSTBLOCK_HDD_HDD_H_
