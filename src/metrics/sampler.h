#ifndef POSTBLOCK_METRICS_SAMPLER_H_
#define POSTBLOCK_METRICS_SAMPLER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "metrics/metrics.h"
#include "sim/simulator.h"

namespace postblock::metrics {

/// One column of the sampled time series. Counter and histogram
/// sub-columns are exact uint64; gauges are doubles. Exactly one of
/// `u64`/`f64` is populated, per `is_float`.
struct Column {
  std::string name;
  bool is_float = false;
  bool is_counter = false;  // cumulative (report deltas/rates over it)
  std::vector<std::uint64_t> u64;
  std::vector<double> f64;
};

/// In-memory column store of sampled metrics: one row per snapshot,
/// one column per metric (histograms expand into count/.window_count/
/// .p50/.p99/.p999/.max sub-columns). Counters are stored cumulative;
/// consumers compute per-window deltas (`DeltaU64`).
class TimeSeries {
 public:
  std::size_t rows() const { return t_.size(); }
  const std::vector<SimTime>& timestamps() const { return t_; }
  const std::vector<Column>& columns() const { return cols_; }

  /// Column lookup by name; nullptr when absent.
  const Column* Find(const std::string& name) const;

  /// Last sampled value of a uint64 column (0 when absent/empty) —
  /// the "final cumulative row" the Counters cross-check reads.
  std::uint64_t FinalU64(const std::string& name) const;
  double FinalF64(const std::string& name) const;

  /// Cumulative-column delta across [row-1, row] (row 0 deltas from 0).
  static std::uint64_t DeltaU64(const Column& c, std::size_t row);

  /// Plain CSV: header `time_ns,<col>,...`, one row per snapshot.
  Status WriteCsv(const std::string& path) const;
  /// JSON time series. `meta_fields` is spliced verbatim into the
  /// "meta" object (e.g. "\"git_sha\": \"abc123\"") — empty for none.
  Status WriteJson(const std::string& path,
                   const std::string& meta_fields = "") const;

 private:
  friend class Sampler;
  std::vector<SimTime> t_;
  std::vector<Column> cols_;
};

/// Read-only hook invoked after every sample row lands in the column
/// store. The observer sees the full series (layout frozen at Start())
/// plus the index of the row just taken. Implementations must not
/// schedule events or mutate metrics — the sampler's schedule-
/// neutrality argument (below) extends to observers only as long as
/// they stay read-only. obs::SloWatchdog is the canonical impl.
class SampleObserver {
 public:
  virtual ~SampleObserver() = default;
  virtual void OnSample(const TimeSeries& series, std::size_t row) = 0;
};

/// Snapshots every registered metric on a fixed sim-clock interval.
///
/// Ticks are ordinary simulator events (they ride the timing wheel),
/// but they only *read* state — counters, polls, window histograms —
/// so an enabled sampler never perturbs the simulated device schedule.
/// Two consequences of living in the event queue:
///
///   - Samples land at exact interval boundaries t0 + k*interval
///     (verified by tests): the wheel executes the tick precisely at
///     its timestamp, between whatever device events share it.
///   - A self-rescheduling tick would keep `Simulator::Run()` alive
///     forever, so a tick that finds the queue otherwise empty parks
///     instead of rescheduling: sampling stops exactly where the
///     simulation would have ended anyway. The final simulated time of
///     a sampled run may therefore exceed an unsampled run's by up to
///     one interval (the last tick); the *device* schedule — every IO
///     and GC event timestamp — is byte-identical.
///
/// Windowed histograms are reset after every snapshot, so the p50/p99/
/// p999 sub-columns describe each interval in isolation (Figure 2's
/// cliff is visible in the window where GC starts, not diluted into a
/// whole-run percentile).
class Sampler {
 public:
  /// Registration must be complete before Start(): the column layout
  /// is frozen from the registry's contents at that point.
  Sampler(sim::Simulator* sim, MetricRegistry* registry,
          SimTime interval_ns);

  Sampler(const Sampler&) = delete;
  Sampler& operator=(const Sampler&) = delete;

  /// Takes the baseline sample at the current sim time and schedules
  /// the first tick one interval out. Call once.
  void Start();

  /// Stops ticking and, if sim time advanced past the last snapshot,
  /// takes one final sample — so the last row always reflects the
  /// fully drained run (the row the Counters cross-check reads).
  void Stop();

  /// Re-arms a parked sampler on the next t0 + k*interval boundary.
  /// A sampler parks whenever the event queue fully drains, so a
  /// workload with several Run() phases calls Resume() between them.
  /// No-op unless parked.
  void Resume();

  /// Attaches a read-only per-row observer (nullptr detaches). Set
  /// before Start() to observe the baseline row as well.
  void set_observer(SampleObserver* obs) { observer_ = obs; }
  SampleObserver* observer() const { return observer_; }

  bool started() const { return started_; }
  bool stopped() const { return stopped_; }
  /// True when a tick found nothing else pending and stood down.
  bool parked() const { return parked_; }
  SimTime interval() const { return interval_; }
  std::uint64_t samples_taken() const { return series_.rows(); }

  const TimeSeries& series() const { return series_; }

 private:
  void Tick();
  void TakeSample();

  sim::Simulator* sim_;
  MetricRegistry* registry_;
  SampleObserver* observer_ = nullptr;
  SimTime interval_;
  SimTime next_ = 0;
  bool started_ = false;
  bool stopped_ = false;
  bool parked_ = false;
  // Column layout frozen at Start().
  std::size_t n_counters_ = 0;
  std::size_t n_polled_ = 0;
  std::size_t n_gauges_ = 0;
  std::size_t n_hists_ = 0;
  TimeSeries series_;
};

}  // namespace postblock::metrics

#endif  // POSTBLOCK_METRICS_SAMPLER_H_
