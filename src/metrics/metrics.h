#ifndef POSTBLOCK_METRICS_METRICS_H_
#define POSTBLOCK_METRICS_METRICS_H_

#include <cassert>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/histogram.h"

namespace postblock::metrics {

/// Array-slot handle of one registered metric. Instruments resolve
/// their names to Ids once at construction; every record-path call is
/// a plain indexed array access — no string lookup, no allocation.
using Id = std::uint32_t;
inline constexpr Id kInvalidId = ~0u;

/// The sim-time metrics registry (ISSUE 3): named counters, gauges and
/// windowed histograms for everything the paper reasons about over
/// *time* — write amplification, free blocks, queue depth, GC busy
/// fraction, windowed p99 — which the end-of-run `Counters` scalars
/// cannot answer.
///
/// Four metric families:
///
///   counter         pushed on the hot path (`Add`/`Increment`), a
///                   cumulative uint64 maintained *in parallel* with
///                   the stack's existing `Counters`, so the two
///                   observability systems cross-check each other;
///   polled counter  a cumulative uint64 read from its owner only at
///                   sample time (busy-ns integrals, existing Counters
///                   the hot path already maintains);
///   gauge           an instantaneous double read at sample time (free
///                   blocks, buffer occupancy, WA, wear spread);
///   histogram       a windowed latency distribution: `Record` on the
///                   hot path, percentiles computed per sampling
///                   interval and then reset, so p99 is *of the
///                   window*, not of the whole run.
///
/// Registration is cold-path (constructors); the record path costs one
/// array add. Attaching a registry to a stack never perturbs the
/// simulated schedule — metrics observe it (same contract as the
/// tracer, PR 2).
class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  // --- Registration (cold path, instrument constructors) -----------

  /// Registers a pushed cumulative counter. Names must be unique
  /// across the registry (one instrumented stack per registry).
  Id AddCounter(std::string name);

  /// Registers a counter whose cumulative value is polled at sample
  /// time. `poll` must be monotone non-decreasing in sim time.
  Id AddPolledCounter(std::string name, std::function<std::uint64_t()> poll);

  /// Registers an instantaneous gauge polled at sample time.
  Id AddGauge(std::string name, std::function<double()> poll);

  /// Registers a windowed histogram (interval-reset by the Sampler).
  Id AddHistogram(std::string name);

  // --- Record path (hot; zero-alloc, no lookups) --------------------

  void Add(Id id, std::uint64_t delta) { counters_[id] += delta; }
  void Increment(Id id) { ++counters_[id]; }
  void Record(Id id, std::uint64_t value) {
    windows_[id].Record(value);
    ++hist_totals_[id];
  }

  // --- Introspection (cold path: sampler, tests, reports) -----------

  std::size_t num_counters() const { return counters_.size(); }
  std::size_t num_polled() const { return polled_.size(); }
  std::size_t num_gauges() const { return gauges_.size(); }
  std::size_t num_histograms() const { return windows_.size(); }

  std::uint64_t counter(Id id) const { return counters_[id]; }
  std::uint64_t PollCounter(Id id) const { return polled_[id].poll(); }
  double PollGauge(Id id) const { return gauges_[id].poll(); }
  /// The current (unfinished) window of a histogram metric.
  Histogram* window(Id id) { return &windows_[id]; }
  const Histogram& window(Id id) const { return windows_[id]; }
  /// Cumulative records ever pushed into a histogram metric (survives
  /// window resets; cross-checkable against completion counters).
  std::uint64_t hist_total(Id id) const { return hist_totals_[id]; }

  const std::string& counter_name(Id id) const {
    return counter_names_[id];
  }
  const std::string& polled_name(Id id) const { return polled_[id].name; }
  const std::string& gauge_name(Id id) const { return gauges_[id].name; }
  const std::string& hist_name(Id id) const { return hist_names_[id]; }

  /// Cumulative value of a pushed or polled counter by name; for tests
  /// and the run-report cross-check. Returns `fallback` when unknown.
  std::uint64_t CounterByName(const std::string& name,
                              std::uint64_t fallback = 0) const;
  /// True iff any metric of any family is registered under `name`.
  bool Has(const std::string& name) const;

 private:
  struct Polled {
    std::string name;
    std::function<std::uint64_t()> poll;
  };
  struct Gauge {
    std::string name;
    std::function<double()> poll;
  };

  void CheckUnique(const std::string& name);

  std::vector<std::uint64_t> counters_;
  std::vector<std::string> counter_names_;
  std::vector<Polled> polled_;
  std::vector<Gauge> gauges_;
  std::vector<Histogram> windows_;
  std::vector<std::uint64_t> hist_totals_;
  std::vector<std::string> hist_names_;
};

}  // namespace postblock::metrics

#endif  // POSTBLOCK_METRICS_METRICS_H_
