#include "metrics/sampler.h"

#include <cassert>
#include <cstdio>

#include "common/json.h"

namespace postblock::metrics {

// --- TimeSeries --------------------------------------------------------

const Column* TimeSeries::Find(const std::string& name) const {
  for (const Column& c : cols_) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

std::uint64_t TimeSeries::FinalU64(const std::string& name) const {
  const Column* c = Find(name);
  return (c == nullptr || c->u64.empty()) ? 0 : c->u64.back();
}

double TimeSeries::FinalF64(const std::string& name) const {
  const Column* c = Find(name);
  return (c == nullptr || c->f64.empty()) ? 0.0 : c->f64.back();
}

std::uint64_t TimeSeries::DeltaU64(const Column& c, std::size_t row) {
  if (row >= c.u64.size()) return 0;
  const std::uint64_t prev = row == 0 ? 0 : c.u64[row - 1];
  // Guard against non-monotone pollers instead of underflowing.
  return c.u64[row] >= prev ? c.u64[row] - prev : 0;
}

Status TimeSeries::WriteCsv(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::NotFound("cannot open " + path + " for writing");
  }
  std::fprintf(f, "time_ns");
  for (const Column& c : cols_) {
    // Metric names carry user-supplied tenant names; RFC-4180-quote
    // them so a comma or quote can't shift the header cells.
    std::fprintf(f, ",%s", CsvEscaped(c.name).c_str());
  }
  std::fprintf(f, "\n");
  for (std::size_t r = 0; r < t_.size(); ++r) {
    std::fprintf(f, "%llu", static_cast<unsigned long long>(t_[r]));
    for (const Column& c : cols_) {
      if (c.is_float) {
        std::fprintf(f, ",%.9g", c.f64[r]);
      } else {
        std::fprintf(f, ",%llu",
                     static_cast<unsigned long long>(c.u64[r]));
      }
    }
    std::fprintf(f, "\n");
  }
  std::fclose(f);
  return Status::Ok();
}

Status TimeSeries::WriteJson(const std::string& path,
                             const std::string& meta_fields) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::NotFound("cannot open " + path + " for writing");
  }
  std::fprintf(f, "{\n  \"meta\": {%s},\n  \"samples\": %zu,\n",
               meta_fields.c_str(), t_.size());
  std::fprintf(f, "  \"time_ns\": [");
  for (std::size_t r = 0; r < t_.size(); ++r) {
    std::fprintf(f, "%s%llu", r == 0 ? "" : ", ",
                 static_cast<unsigned long long>(t_[r]));
  }
  std::fprintf(f, "],\n  \"series\": {\n");
  for (std::size_t i = 0; i < cols_.size(); ++i) {
    const Column& c = cols_[i];
    std::fprintf(f, "    \"%s\": {\"kind\": \"%s\", \"values\": [",
                 JsonEscaped(c.name).c_str(),
                 c.is_counter ? "counter" : (c.is_float ? "gauge" : "window"));
    for (std::size_t r = 0; r < t_.size(); ++r) {
      if (c.is_float) {
        std::fprintf(f, "%s%.9g", r == 0 ? "" : ", ", c.f64[r]);
      } else {
        std::fprintf(f, "%s%llu", r == 0 ? "" : ", ",
                     static_cast<unsigned long long>(c.u64[r]));
      }
    }
    std::fprintf(f, "]}%s\n", i + 1 < cols_.size() ? "," : "");
  }
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
  return Status::Ok();
}

// --- Sampler -----------------------------------------------------------

Sampler::Sampler(sim::Simulator* sim, MetricRegistry* registry,
                 SimTime interval_ns)
    : sim_(sim), registry_(registry), interval_(interval_ns) {
  assert(interval_ns > 0 && "sampler interval must be positive");
}

void Sampler::Start() {
  assert(!started_ && "Sampler::Start called twice");
  started_ = true;
  // Freeze the column layout from the registry as it stands: metrics
  // registered after Start() are not sampled.
  n_counters_ = registry_->num_counters();
  n_polled_ = registry_->num_polled();
  n_gauges_ = registry_->num_gauges();
  n_hists_ = registry_->num_histograms();
  series_.cols_.clear();
  auto add_col = [this](std::string name, bool is_float, bool is_counter) {
    Column c;
    c.name = std::move(name);
    c.is_float = is_float;
    c.is_counter = is_counter;
    series_.cols_.push_back(std::move(c));
  };
  for (Id i = 0; i < n_counters_; ++i) {
    add_col(registry_->counter_name(i), false, true);
  }
  for (Id i = 0; i < n_polled_; ++i) {
    add_col(registry_->polled_name(i), false, true);
  }
  for (Id i = 0; i < n_gauges_; ++i) {
    add_col(registry_->gauge_name(i), true, false);
  }
  for (Id i = 0; i < n_hists_; ++i) {
    const std::string& n = registry_->hist_name(i);
    add_col(n + ".count", false, true);  // cumulative records
    add_col(n + ".window_count", false, false);
    add_col(n + ".p50", false, false);
    add_col(n + ".p99", false, false);
    add_col(n + ".p999", false, false);
    add_col(n + ".max", false, false);
  }
  TakeSample();  // baseline row at t0
  next_ = sim_->Now() + interval_;
  sim_->ScheduleAt(next_, [this] { Tick(); });
}

void Sampler::Stop() {
  if (!started_ || stopped_) return;
  stopped_ = true;
  // Final row at the fully drained time (skipped if nothing advanced).
  TakeSample();
}

void Sampler::Resume() {
  if (!parked_ || stopped_) return;
  parked_ = false;
  // First boundary strictly after now, staying on the t0+k*interval
  // grid (next_ holds the parked tick's own boundary, <= now).
  const SimTime now = sim_->Now();
  next_ += interval_ * ((now - next_) / interval_ + 1);
  sim_->ScheduleAt(next_, [this] { Tick(); });
}

void Sampler::Tick() {
  if (stopped_) return;  // pending tick outlived a Stop(); do nothing
  TakeSample();
  // This tick was the only thing left in the queue: rescheduling would
  // keep the simulation alive forever doing no work. Stand down at the
  // time the run would otherwise have ended.
  if (sim_->pending_events() == 0) {
    parked_ = true;
    return;
  }
  next_ += interval_;
  sim_->ScheduleAt(next_, [this] { Tick(); });
}

void Sampler::TakeSample() {
  const SimTime now = sim_->Now();
  if (!series_.t_.empty() && series_.t_.back() == now) return;
  series_.t_.push_back(now);
  std::size_t k = 0;
  for (Id i = 0; i < n_counters_; ++i) {
    series_.cols_[k++].u64.push_back(registry_->counter(i));
  }
  for (Id i = 0; i < n_polled_; ++i) {
    series_.cols_[k++].u64.push_back(registry_->PollCounter(i));
  }
  for (Id i = 0; i < n_gauges_; ++i) {
    series_.cols_[k++].f64.push_back(registry_->PollGauge(i));
  }
  for (Id i = 0; i < n_hists_; ++i) {
    Histogram* w = registry_->window(i);
    series_.cols_[k++].u64.push_back(registry_->hist_total(i));
    series_.cols_[k++].u64.push_back(w->count());
    series_.cols_[k++].u64.push_back(w->P50());
    series_.cols_[k++].u64.push_back(w->P99());
    series_.cols_[k++].u64.push_back(w->P999());
    series_.cols_[k++].u64.push_back(w->max());
    w->Reset();  // interval-reset: next window starts clean
  }
  if (observer_ != nullptr) {
    observer_->OnSample(series_, series_.t_.size() - 1);
  }
}

}  // namespace postblock::metrics
