#include "metrics/metrics.h"

namespace postblock::metrics {

void MetricRegistry::CheckUnique(const std::string& name) {
  // Duplicate names mean two instruments registered the same stream —
  // a wiring bug (e.g. two devices sharing one registry without a
  // prefix). Cold path, so a linear scan is fine.
  assert(!Has(name) && "metric name registered twice");
  (void)name;
}

Id MetricRegistry::AddCounter(std::string name) {
  CheckUnique(name);
  counters_.push_back(0);
  counter_names_.push_back(std::move(name));
  return static_cast<Id>(counters_.size() - 1);
}

Id MetricRegistry::AddPolledCounter(std::string name,
                                    std::function<std::uint64_t()> poll) {
  CheckUnique(name);
  polled_.push_back(Polled{std::move(name), std::move(poll)});
  return static_cast<Id>(polled_.size() - 1);
}

Id MetricRegistry::AddGauge(std::string name,
                            std::function<double()> poll) {
  CheckUnique(name);
  gauges_.push_back(Gauge{std::move(name), std::move(poll)});
  return static_cast<Id>(gauges_.size() - 1);
}

Id MetricRegistry::AddHistogram(std::string name) {
  CheckUnique(name);
  windows_.emplace_back();
  hist_totals_.push_back(0);
  hist_names_.push_back(std::move(name));
  return static_cast<Id>(windows_.size() - 1);
}

std::uint64_t MetricRegistry::CounterByName(const std::string& name,
                                            std::uint64_t fallback) const {
  for (Id i = 0; i < counter_names_.size(); ++i) {
    if (counter_names_[i] == name) return counters_[i];
  }
  for (const Polled& p : polled_) {
    if (p.name == name) return p.poll();
  }
  return fallback;
}

bool MetricRegistry::Has(const std::string& name) const {
  for (const std::string& n : counter_names_) {
    if (n == name) return true;
  }
  for (const Polled& p : polled_) {
    if (p.name == name) return true;
  }
  for (const Gauge& g : gauges_) {
    if (g.name == name) return true;
  }
  for (const std::string& n : hist_names_) {
    if (n == name) return true;
  }
  return false;
}

}  // namespace postblock::metrics
