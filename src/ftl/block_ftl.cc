#include "ftl/block_ftl.h"

#include <algorithm>
#include <memory>
#include <utility>

namespace postblock::ftl {

BlockFtl::BlockFtl(ssd::Controller* controller)
    : controller_(controller),
      user_vblocks_(static_cast<std::uint64_t>(
          static_cast<double>(controller->config().geometry.total_blocks()) *
          (1.0 - controller->config().over_provisioning))),
      user_pages_(user_vblocks_ *
                  controller->config().geometry.pages_per_block),
      map_(user_vblocks_),
      luns_(controller->config().geometry.luns()),
      wear_leveler_(controller->config().wear) {
  const auto& g = controller->config().geometry;
  for (std::uint32_t l = 0; l < g.luns(); ++l) {
    const std::uint32_t channel = l / g.luns_per_channel;
    const std::uint32_t lun = l % g.luns_per_channel;
    for (std::uint32_t plane = 0; plane < g.planes_per_lun; ++plane) {
      for (std::uint32_t block = 0; block < g.blocks_per_plane; ++block) {
        luns_[l].free_blocks.push_back({channel, lun, plane, block});
      }
    }
  }
}

double BlockFtl::WriteAmplification() const {
  const std::uint64_t host = counters_.Get("host_pages_accepted");
  if (host == 0) return 0.0;
  return static_cast<double>(
             controller_->counters().Get("pages_programmed")) /
         static_cast<double>(host);
}

void BlockFtl::EnqueueOp(std::uint32_t lun,
                         std::function<void(std::function<void()>)> op) {
  luns_[lun].ops.push_back(std::move(op));
  RunNext(lun);
}

void BlockFtl::RunNext(std::uint32_t lun) {
  LunState& st = luns_[lun];
  if (st.busy || st.ops.empty()) return;
  st.busy = true;
  auto op = std::move(st.ops.front());
  st.ops.pop_front();
  op([this, lun]() {
    luns_[lun].busy = false;
    RunNext(lun);
  });
}

bool BlockFtl::TakeFreeBlock(std::uint32_t lun, flash::BlockAddr* out) {
  LunState& st = luns_[lun];
  if (st.free_blocks.empty()) {
    // Over-provisioning normally leaves spares beyond the user-visible
    // vblocks, but erase retirement eats into them permanently.
    counters_.Increment("free_list_exhausted");
    return false;
  }
  std::vector<std::uint32_t> wear;
  wear.reserve(st.free_blocks.size());
  for (const auto& b : st.free_blocks) {
    wear.push_back(controller_->flash()->GetBlockInfo(b).erase_count);
  }
  const std::size_t pick = wear_leveler_.SelectFreeBlock(wear);
  *out = st.free_blocks[pick];
  st.free_blocks.erase(st.free_blocks.begin() +
                       static_cast<std::ptrdiff_t>(pick));
  return true;
}

void BlockFtl::Write(Lba lba, std::uint64_t token, WriteCallback cb,
                     trace::Ctx ctx) {
  if (lba >= user_pages_) {
    controller_->sim()->Schedule(0, [cb = std::move(cb)]() {
      cb(Status::OutOfRange("write beyond device"));
    });
    return;
  }
  if (controller_->read_only()) {
    counters_.Increment("writes_rejected_read_only");
    controller_->sim()->Schedule(0, [cb = std::move(cb)]() {
      cb(Status::ResourceExhausted(
          "device is read-only: bad-block spares exhausted"));
    });
    return;
  }
  counters_.Increment("host_writes");
  counters_.Increment("host_pages_accepted");
  const auto& g = controller_->config().geometry;
  const std::uint64_t vblock = lba / g.pages_per_block;
  const std::uint32_t off = static_cast<std::uint32_t>(lba % g.pages_per_block);
  const std::uint32_t lun = LunOf(vblock);
  const SequenceNumber seq = next_seq_++;

  EnqueueOp(lun, [this, vblock, off, token, seq, lun, ctx,
                  cb = std::move(cb)](std::function<void()> op_done) mutable {
    VBlockEntry& e = map_[vblock];
    const auto& g = controller_->config().geometry;
    const std::uint32_t write_point =
        e.mapped ? controller_->flash()->GetBlockInfo(e.phys).write_point
                 : 0;
    if (!e.mapped || off >= write_point) {
      // In-order append (possibly with a gap): the cheap path that makes
      // sequential writes fast on block-mapped devices.
      if (!e.mapped) {
        if (!TakeFreeBlock(lun, &e.phys)) {
          cb(Status::ResourceExhausted("no free blocks on lun"));
          op_done();
          return;
        }
        e.mapped = true;
      }
      counters_.Increment("direct_writes");
      const flash::Ppa ppa{e.phys.channel, e.phys.lun, e.phys.plane,
                           e.phys.block, off};
      const Lba lba = vblock * g.pages_per_block + off;
      controller_->ProgramPage(
          ppa, flash::PageData{lba, seq, token, 0},
          [cb = std::move(cb), op_done = std::move(op_done)](Status st) {
            cb(std::move(st));
            op_done();
          },
          ctx);
      return;
    }
    // Overwrite or backwards write: copy-on-write merge of the block.
    // The merge's copies and erase carry the host write's span, so a
    // trace shows one random write dragging a whole block behind it.
    counters_.Increment("merges");
    Merge(lun, vblock, off, token, seq,
          [cb = std::move(cb), op_done = std::move(op_done)](Status st) {
            cb(std::move(st));
            op_done();
          },
          ctx);
  });
}

void BlockFtl::Merge(std::uint32_t lun, std::uint64_t vblock,
                     std::uint64_t new_off_or_npos, std::uint64_t token,
                     SequenceNumber seq, std::function<void(Status)> done,
                     trace::Ctx ctx) {
  struct Job {
    BlockFtl* ftl;
    std::uint32_t lun;
    std::uint64_t vblock;
    std::uint64_t new_off;
    std::uint64_t token;
    SequenceNumber seq;
    flash::BlockAddr old_phys;
    bool had_old;
    flash::BlockAddr new_phys;
    std::uint32_t page = 0;
    std::function<void(Status)> done;
    trace::Ctx ctx;
  };
  auto job = std::make_shared<Job>();
  job->ftl = this;
  job->lun = lun;
  job->vblock = vblock;
  job->new_off = new_off_or_npos;
  job->token = token;
  job->seq = seq;
  VBlockEntry& e = map_[vblock];
  job->had_old = e.mapped;
  if (e.mapped) job->old_phys = e.phys;
  if (!TakeFreeBlock(lun, &job->new_phys)) {
    // No destination block: the merge (and the write that forced it)
    // cannot proceed. Nothing has been copied or erased yet, so the old
    // mapping stays intact and readable.
    controller_->sim()->Schedule(0, [done = std::move(done)]() mutable {
      done(Status::ResourceExhausted("no free blocks on lun"));
    });
    return;
  }
  job->done = std::move(done);
  job->ctx = ctx;

  // Walk pages 0..ppb-1 in ascending order (constraint C3), taking the
  // new payload at new_off and copying live pages elsewhere.
  auto step = std::make_shared<std::function<void()>>();
  *step = [this, job, step]() {
    const auto& g = controller_->config().geometry;
    if (job->page >= g.pages_per_block) {
      // Remap, then erase the old block back into the free pool.
      map_[job->vblock] = VBlockEntry{job->new_phys, true};
      if (!job->had_old) {
        job->done(Status::Ok());
        return;
      }
      controller_->EraseBlock(
          job->old_phys,
          [this, job](Status st) {
            if (st.ok()) {
              luns_[job->lun].free_blocks.push_back(job->old_phys);
            } else {
              counters_.Increment("blocks_retired");
            }
            job->done(Status::Ok());
          },
          job->ctx);
      return;
    }
    const std::uint32_t p = job->page++;
    const flash::Ppa dst{job->new_phys.channel, job->new_phys.lun,
                         job->new_phys.plane, job->new_phys.block, p};
    const Lba page_lba = job->vblock * g.pages_per_block + p;
    if (p == job->new_off) {
      controller_->ProgramPage(dst,
                               flash::PageData{page_lba, job->seq,
                                               job->token, 0},
                               [job, step](Status st) {
                                 if (!st.ok()) {
                                   job->done(std::move(st));
                                   return;
                                 }
                                 (*step)();
                               },
                               job->ctx);
      return;
    }
    if (!job->had_old) {
      (*step)();
      return;
    }
    const flash::Ppa src{job->old_phys.channel, job->old_phys.lun,
                         job->old_phys.plane, job->old_phys.block, p};
    if (controller_->flash()->GetPageState(src) !=
        flash::PageState::kValid) {
      (*step)();
      return;
    }
    counters_.Increment("merge_page_copies");
    controller_->ReadPage(
        src,
        [this, job, step, dst](StatusOr<flash::PageData> res) {
          if (!res.ok()) {
            // Unreadable page: drop it (data loss surfaces on host read).
            counters_.Increment("merge_read_failures");
            (*step)();
            return;
          }
          controller_->ProgramPage(dst, *res,
                                   [job, step](Status st) {
                                     if (!st.ok()) {
                                       job->done(std::move(st));
                                       return;
                                     }
                                     (*step)();
                                   },
                                   job->ctx);
        },
        job->ctx);
  };
  (*step)();
}

void BlockFtl::Read(Lba lba, ReadCallback cb, trace::Ctx ctx) {
  if (lba >= user_pages_) {
    controller_->sim()->Schedule(0, [cb = std::move(cb)]() {
      cb(Status::OutOfRange("read beyond device"));
    });
    return;
  }
  counters_.Increment("host_reads");
  const auto& g = controller_->config().geometry;
  const std::uint64_t vblock = lba / g.pages_per_block;
  const std::uint32_t off = static_cast<std::uint32_t>(lba % g.pages_per_block);
  const std::uint32_t lun = LunOf(vblock);
  EnqueueOp(lun, [this, vblock, off, ctx,
                  cb = std::move(cb)](std::function<void()> op_done) mutable {
    const VBlockEntry& e = map_[vblock];
    if (!e.mapped) {
      counters_.Increment("host_reads_unmapped");
      cb(std::uint64_t{0});
      op_done();
      return;
    }
    const flash::Ppa ppa{e.phys.channel, e.phys.lun, e.phys.plane,
                         e.phys.block, off};
    if (controller_->flash()->GetPageState(ppa) !=
        flash::PageState::kValid) {
      counters_.Increment("host_reads_unmapped");
      cb(std::uint64_t{0});
      op_done();
      return;
    }
    controller_->ReadPage(
        ppa,
        [this, cb = std::move(cb), op_done = std::move(op_done)](
            StatusOr<flash::PageData> res) {
          if (!res.ok()) {
            counters_.Increment("read_failures");
            cb(res.status());
          } else {
            cb(res->token);
          }
          op_done();
        },
        ctx);
  });
}

void BlockFtl::Trim(Lba lba, WriteCallback cb, trace::Ctx /*ctx*/) {
  if (lba >= user_pages_) {
    controller_->sim()->Schedule(0, [cb = std::move(cb)]() {
      cb(Status::OutOfRange("trim beyond device"));
    });
    return;
  }
  counters_.Increment("trims");
  const auto& g = controller_->config().geometry;
  const std::uint64_t vblock = lba / g.pages_per_block;
  const std::uint32_t off = static_cast<std::uint32_t>(lba % g.pages_per_block);
  const std::uint32_t lun = LunOf(vblock);
  EnqueueOp(lun, [this, vblock, off,
                  cb = std::move(cb)](std::function<void()> op_done) mutable {
    const VBlockEntry& e = map_[vblock];
    if (e.mapped) {
      const flash::Ppa ppa{e.phys.channel, e.phys.lun, e.phys.plane,
                           e.phys.block, off};
      if (controller_->flash()->GetPageState(ppa) ==
          flash::PageState::kValid) {
        (void)controller_->flash()->MarkInvalid(ppa);
      }
    }
    cb(Status::Ok());
    op_done();
  });
}

}  // namespace postblock::ftl
