#include "ftl/dftl.h"

#include <utility>

namespace postblock::ftl {

Dftl::Dftl(ssd::Controller* controller)
    : controller_(controller),
      user_pages_(controller->config().UserPages()),
      entries_per_tp_(controller->config().dftl_entries_per_tp),
      cmt_capacity_(controller->config().dftl_cmt_pages) {
  tp_count_ = (user_pages_ + entries_per_tp_ - 1) / entries_per_tp_;
  // Shrink the user space so user data + translation pages still fit
  // behind the same over-provisioning.
  user_pages_ = user_pages_ > tp_count_ ? user_pages_ - tp_count_ : 0;
  tp_count_ = (user_pages_ + entries_per_tp_ - 1) / entries_per_tp_;
  base_ = std::make_unique<PageFtl>(controller,
                                    user_pages_ + tp_count_);
  tp_persisted_.assign(tp_count_, false);
}

double Dftl::WriteAmplification() const {
  const std::uint64_t host = counters_.Get("host_pages_accepted");
  if (host == 0) return 0.0;
  return static_cast<double>(
             controller_->counters().Get("pages_programmed")) /
         static_cast<double>(host);
}

void Dftl::RegisterMetrics(metrics::MetricRegistry* m) {
  // Replaces the default wholesale: host-facing counters live here, but
  // GC runs against the internal PageFtl that carries both data and map
  // traffic — reading them from this->counters() would report zeros.
  static constexpr const char* kHost[] = {"host_reads", "host_writes",
                                          "trims"};
  for (const char* name : kHost) {
    m->AddPolledCounter(std::string("ftl.") + name,
                        [this, name] { return counters_.Get(name); });
  }
  static constexpr const char* kInner[] = {"gc_runs", "gc_erases",
                                           "gc_page_moves", "write_stalls"};
  for (const char* name : kInner) {
    m->AddPolledCounter(std::string("ftl.") + name, [this, name] {
      return base_->counters().Get(name);
    });
  }
  m->AddGauge("ftl.write_amplification",
              [this] { return WriteAmplification(); });
  static constexpr const char* kCmt[] = {"cmt_hits", "cmt_misses",
                                         "map_reads", "map_writes"};
  for (const char* name : kCmt) {
    m->AddPolledCounter(std::string("dftl.") + name,
                        [this, name] { return counters_.Get(name); });
  }
  m->AddGauge("dftl.cmt_pages",
              [this] { return static_cast<double>(cmt_.size()); });
}

void Dftl::FinishFetch(std::uint64_t tp) {
  auto it = fetch_waiters_.find(tp);
  if (it == fetch_waiters_.end()) return;
  FetchState state = std::move(it->second);
  fetch_waiters_.erase(it);
  auto cit = cmt_.find(tp);
  if (cit != cmt_.end() && state.dirty) cit->second.dirty = true;
  for (auto& w : state.waiters) w();
}

void Dftl::EnsureCached(std::uint64_t tp, bool make_dirty,
                        std::function<void()> then) {
  auto hit = cmt_.find(tp);
  if (hit != cmt_.end()) {
    counters_.Increment("cmt_hits");
    lru_.erase(hit->second.lru_pos);
    lru_.push_front(tp);
    hit->second.lru_pos = lru_.begin();
    if (make_dirty) hit->second.dirty = true;
    then();
    return;
  }
  counters_.Increment("cmt_misses");

  // Coalesce concurrent misses on the same translation page.
  auto [wit, first_miss] = fetch_waiters_.try_emplace(tp);
  wit->second.waiters.push_back(std::move(then));
  if (make_dirty) wit->second.dirty = true;
  if (!first_miss) return;

  auto insert_and_drain = [this, tp, make_dirty]() {
    lru_.push_front(tp);
    cmt_[tp] = CmtEntry{lru_.begin(), make_dirty};
    FinishFetch(tp);
  };

  auto fetch = [this, tp, insert_and_drain]() {
    if (!tp_persisted_[tp]) {
      // Compulsory miss on a never-written directory entry: the GTD
      // knows it is empty; no flash read needed.
      insert_and_drain();
      return;
    }
    counters_.Increment("map_reads");
    base_->Read(MapLba(tp),
                [this, insert_and_drain](StatusOr<std::uint64_t> res) {
                  // Content is authoritative in the resident directory;
                  // the read existed for its timing + channel traffic.
                  // An uncorrectable translation page is survivable for
                  // the same reason — but it must be visible in the
                  // counters, not silently absorbed.
                  if (!res.ok()) counters_.Increment("map_read_failures");
                  insert_and_drain();
                });
  };

  if (cmt_.size() < cmt_capacity_) {
    fetch();
    return;
  }
  // Evict the LRU entry; dirty entries are written back to flash.
  const std::uint64_t victim = lru_.back();
  lru_.pop_back();
  auto vit = cmt_.find(victim);
  const bool dirty = vit->second.dirty;
  cmt_.erase(vit);
  if (!dirty) {
    counters_.Increment("cmt_evictions_clean");
    fetch();
    return;
  }
  counters_.Increment("cmt_evictions_dirty");
  counters_.Increment("map_writes");
  tp_persisted_[victim] = true;
  base_->Write(MapLba(victim), /*token=*/victim, [this, fetch](Status st) {
    if (!st.ok()) counters_.Increment("map_write_failures");
    fetch();
  });
}

void Dftl::Write(Lba lba, std::uint64_t token, WriteCallback cb,
                 trace::Ctx ctx) {
  if (lba >= user_pages_) {
    controller_->sim()->Schedule(0, [cb = std::move(cb)]() {
      cb(Status::OutOfRange("write beyond device"));
    });
    return;
  }
  counters_.Increment("host_writes");
  counters_.Increment("host_pages_accepted");
  // The data write carries the host span; translation-page traffic
  // (fetch/writeback inside EnsureCached) stays untagged — it is map
  // overhead, not attributable to one host IO.
  EnsureCached(TpOf(lba), /*make_dirty=*/true,
               [this, lba, token, ctx, cb = std::move(cb)]() mutable {
                 base_->Write(lba, token, std::move(cb), ctx);
               });
}

void Dftl::Read(Lba lba, ReadCallback cb, trace::Ctx ctx) {
  if (lba >= user_pages_) {
    controller_->sim()->Schedule(0, [cb = std::move(cb)]() {
      cb(Status::OutOfRange("read beyond device"));
    });
    return;
  }
  counters_.Increment("host_reads");
  EnsureCached(TpOf(lba), /*make_dirty=*/false,
               [this, lba, ctx, cb = std::move(cb)]() mutable {
                 base_->Read(lba, std::move(cb), ctx);
               });
}

void Dftl::Trim(Lba lba, WriteCallback cb, trace::Ctx ctx) {
  if (lba >= user_pages_) {
    controller_->sim()->Schedule(0, [cb = std::move(cb)]() {
      cb(Status::OutOfRange("trim beyond device"));
    });
    return;
  }
  counters_.Increment("trims");
  EnsureCached(TpOf(lba), /*make_dirty=*/true,
               [this, lba, ctx, cb = std::move(cb)]() mutable {
                 base_->Trim(lba, std::move(cb), ctx);
               });
}

}  // namespace postblock::ftl
