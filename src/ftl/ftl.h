#ifndef POSTBLOCK_FTL_FTL_H_
#define POSTBLOCK_FTL_FTL_H_

#include <cstdint>
#include <functional>

#include <string>

#include "common/stats.h"
#include "common/status.h"
#include "common/statusor.h"
#include "common/types.h"
#include "metrics/metrics.h"
#include "trace/trace.h"

namespace postblock::ftl {

/// Host-facing interface of a Flash Translation Layer (Figure 2): page-
/// granular logical reads, writes and trims over the LBA space, mapped
/// onto timed flash operations issued through ssd::Controller.
///
/// All calls are asynchronous; callbacks fire in simulated time, exactly
/// once. Page payloads are modeled as 64-bit tokens (flash::PageData).
class Ftl {
 public:
  using WriteCallback = std::function<void(Status)>;
  using ReadCallback = std::function<void(StatusOr<std::uint64_t>)>;

  virtual ~Ftl() = default;

  /// Writes one logical page. Completion = data durable on flash.
  /// `ctx` carries the caller's trace span/origin down to the flash ops
  /// this write turns into (empty = untraced).
  virtual void Write(Lba lba, std::uint64_t token, WriteCallback cb,
                     trace::Ctx ctx = {}) = 0;

  /// Reads one logical page. Unmapped LBAs read as token 0 (the device
  /// returns zeroes, like a real SSD after trim).
  virtual void Read(Lba lba, ReadCallback cb, trace::Ctx ctx = {}) = 0;

  /// Unmaps one logical page (the ATA TRIM retrofit the paper cites as
  /// evidence the memory abstraction has already cracked).
  virtual void Trim(Lba lba, WriteCallback cb, trace::Ctx ctx = {}) = 0;

  /// Host-visible logical pages.
  virtual std::uint64_t user_pages() const = 0;

  /// Counters. All FTLs expose at least:
  ///   host_reads, host_writes, trims, gc_runs, gc_page_moves,
  ///   gc_erases, write_stalls.
  virtual const Counters& counters() const = 0;

  /// Write amplification so far: flash pages programmed / host pages
  /// written (>= 1 once the device has seen host writes).
  virtual double WriteAmplification() const = 0;

  /// Controller-DRAM bytes this FTL's translation state occupies right
  /// now — the crossover study's third axis (page map: 8+ B per logical
  /// page; vision-append: per-block bookkeeping only). 0 = the FTL does
  /// not model its map footprint.
  virtual std::uint64_t MappingTableBytes() const { return 0; }

  /// Registers this FTL's time-series streams (cold path; called once
  /// by the owning Device when a registry is attached). The registry
  /// polls through `this`, so it must not outlive the FTL — same
  /// lifetime contract as the tracer. The default registers the common
  /// counters above as polled streams plus a WA gauge; subclasses add
  /// their own (free blocks, CMT occupancy, ...).
  virtual void RegisterMetrics(metrics::MetricRegistry* m) {
    static constexpr const char* kCommon[] = {
        "host_reads", "host_writes",  "trims",       "gc_runs",
        "gc_erases",  "gc_page_moves", "write_stalls"};
    for (const char* name : kCommon) {
      m->AddPolledCounter(std::string("ftl.") + name,
                          [this, name] { return counters().Get(name); });
    }
    m->AddGauge("ftl.write_amplification",
                [this] { return WriteAmplification(); });
  }
};

}  // namespace postblock::ftl

#endif  // POSTBLOCK_FTL_FTL_H_
