#include "ftl/page_ftl.h"

#include <algorithm>
#include <cassert>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <utility>

namespace postblock::ftl {

namespace {
// Bound on mapping-consistency read retries; exceeded only by a bug.
constexpr int kMaxReadRetries = 4;
}  // namespace

PageFtl::PageFtl(ssd::Controller* controller, std::uint64_t logical_pages)
    : controller_(controller),
      logical_pages_(logical_pages != 0 ? logical_pages
                                        : controller->config().UserPages()),
      map_(logical_pages_),
      luns_(controller->config().geometry.luns()),
      in_flight_(controller->config().geometry.total_blocks(), 0),
      last_write_(controller->config().geometry.total_blocks(), 0),
      is_free_(controller->config().geometry.total_blocks(), true),
      is_active_(controller->config().geometry.total_blocks(), false),
      placement_(WritePlacement::Create(controller->config().placement,
                                        controller->config().geometry)),
      gc_policy_(GcPolicy::Create(controller->config().gc.policy)),
      wear_leveler_(controller->config().wear),
      tracer_(controller->tracer()) {
  if (tracer_ != nullptr) {
    ftl_tracks_.reserve(luns_.size());
    for (std::uint32_t l = 0; l < luns_.size(); ++l) {
      ftl_tracks_.push_back(tracer_->RegisterTrack(
          trace::kPidTranslation, "ftl-lun-" + std::to_string(l)));
    }
    gc_policy_->set_tracer(
        tracer_,
        tracer_->RegisterTrack(trace::kPidTranslation, "gc-policy"));
  }
  const auto& g = geom();
  for (std::uint32_t l = 0; l < g.luns(); ++l) {
    const std::uint32_t channel = l / g.luns_per_channel;
    const std::uint32_t lun = l % g.luns_per_channel;
    for (std::uint32_t plane = 0; plane < g.planes_per_lun; ++plane) {
      for (std::uint32_t block = 0; block < g.blocks_per_plane; ++block) {
        luns_[l].free_blocks.push_back({channel, lun, plane, block});
      }
    }
  }
  controller_->SetRefreshListener(
      [this](const flash::BlockAddr& block) { OnRefreshRequest(block); });
}

double PageFtl::WriteAmplification() const {
  const std::uint64_t host = counters_.Get("host_pages_accepted");
  if (host == 0) return 0.0;
  const std::uint64_t programmed =
      controller_->counters().Get("pages_programmed");
  return static_cast<double>(programmed) / static_cast<double>(host);
}

void PageFtl::RegisterMetrics(metrics::MetricRegistry* m) {
  Ftl::RegisterMetrics(m);
  m->AddPolledCounter("ftl.wl_page_moves", [this] {
    return counters_.Get("wl_page_moves");
  });
  m->AddPolledCounter("ftl.blocks_retired", [this] {
    return counters_.Get("blocks_retired");
  });
  m->AddPolledCounter("ftl.pages_poisoned", [this] {
    return counters_.Get("pages_poisoned");
  });
  m->AddPolledCounter("ftl.refresh_runs", [this] {
    return counters_.Get("refresh_runs");
  });
  m->AddGauge("ftl.spare_blocks", [this] {
    return static_cast<double>(controller_->spare_blocks_total());
  });
  // Free-block gauges: the paper's GC trigger state. min catches the
  // LUN about to cross the low watermark, which the total can hide.
  m->AddGauge("ftl.free_blocks", [this] {
    std::size_t total = 0;
    for (const auto& l : luns_) total += l.free_blocks.size();
    return static_cast<double>(total);
  });
  m->AddGauge("ftl.min_free_blocks", [this] {
    if (luns_.empty()) return 0.0;
    std::size_t mn = luns_[0].free_blocks.size();
    for (const auto& l : luns_) {
      if (l.free_blocks.size() < mn) mn = l.free_blocks.size();
    }
    return static_cast<double>(mn);
  });
  m->AddGauge("ftl.gc_active_luns", [this] {
    std::size_t n = 0;
    for (const auto& l : luns_) n += l.gc_running ? 1 : 0;
    return static_cast<double>(n);
  });
  m->AddGauge("ftl.stalled_luns", [this] {
    std::size_t n = 0;
    for (const auto& l : luns_) n += l.stalled ? 1 : 0;
    return static_cast<double>(n);
  });
}

std::optional<flash::Ppa> PageFtl::Locate(Lba lba) const {
  if (lba >= logical_pages_ || !map_[lba].mapped || map_[lba].poisoned) {
    return std::nullopt;
  }
  return map_[lba].ppa;
}

// ---------------------------------------------------------------------
// Write path
// ---------------------------------------------------------------------

void PageFtl::Write(Lba lba, std::uint64_t token, WriteCallback cb,
                    trace::Ctx ctx) {
  if (lba >= logical_pages_) {
    PostGuarded(std::move(cb), Status::OutOfRange("write beyond device"));
    return;
  }
  if (controller_->read_only()) {
    counters_.Increment("writes_rejected_read_only");
    PostGuarded(std::move(cb),
                Status::ResourceExhausted(
                    "device is read-only: bad-block spares exhausted"));
    return;
  }
  counters_.Increment("host_writes");
  counters_.Increment("host_pages_accepted");
  PendingWrite w;
  w.lba = lba;
  w.token = token;
  w.seq = next_seq_++;
  w.epoch = epoch_;
  w.cb = std::move(cb);
  w.ctx = ctx;
  w.enq_t = controller_->sim()->Now();
  EnqueueWrite(std::move(w));
}

void PageFtl::WriteAtomic(std::vector<std::pair<Lba, std::uint64_t>> pages,
                          WriteCallback cb, trace::Ctx ctx) {
  if (pages.empty()) {
    PostGuarded(std::move(cb), Status::Ok());
    return;
  }
  if (controller_->read_only()) {
    counters_.Increment("writes_rejected_read_only");
    PostGuarded(std::move(cb),
                Status::ResourceExhausted(
                    "device is read-only: bad-block spares exhausted"));
    return;
  }
  for (const auto& [lba, token] : pages) {
    (void)token;
    if (lba >= logical_pages_) {
      PostGuarded(std::move(cb),
                  Status::OutOfRange("atomic write beyond device"));
      return;
    }
  }
  const std::uint64_t group = next_group_++;
  counters_.Increment("atomic_groups");
  counters_.Add("host_pages_accepted", pages.size());
  AtomicGroup& tracker = atomic_groups_[group];
  tracker.cb = std::move(cb);
  for (const auto& [lba, token] : pages) {
    PendingWrite w;
    w.lba = lba;
    w.token = token;
    w.seq = next_seq_++;
    w.group = group;
    w.epoch = epoch_;
    w.ctx = ctx;
    w.enq_t = controller_->sim()->Now();
    tracker.pages.emplace_back(lba, w.seq);
    EnqueueWrite(std::move(w));
  }
}

bool PageFtl::LunWedged(std::uint32_t lun) const {
  // A LUN is wedged when the host may not take a free block (reserve)
  // and garbage collection cannot mint one (every reclaimable block is
  // fully valid). Writes must go elsewhere until overwrites/trims of
  // its residents free something — the paper's point that a controller
  // needs the freedom to redirect writes across chips.
  const LunState& st = luns_[lun];
  if (st.free_blocks.size() > controller_->config().gc.reserve_blocks) {
    return false;
  }
  if (st.gc_running) return false;  // reclamation in progress
  return !GcFeasible(lun);
}

void PageFtl::EnqueueWrite(PendingWrite w) {
  std::uint32_t lun = placement_->LunForWrite(w.lba);
  if (LunWedged(lun)) {
    const std::uint32_t n = static_cast<std::uint32_t>(luns_.size());
    for (std::uint32_t off = 1; off < n; ++off) {
      const std::uint32_t cand = (lun + off) % n;
      if (!LunWedged(cand)) {
        lun = cand;
        counters_.Increment("placement_redirects");
        break;
      }
    }
  }
  luns_[lun].host_queue.push_back(std::move(w));
  PumpLun(lun);
}

bool PageFtl::TakeFreeBlock(std::uint32_t lun, bool for_gc) {
  LunState& st = luns_[lun];
  if (st.free_blocks.empty()) return false;
  const auto& gc_cfg = controller_->config().gc;
  if (!for_gc && st.free_blocks.size() <= gc_cfg.reserve_blocks) {
    // The reserve is strictly for GC relocation writes: if the host
    // could drain it (even "just this once"), a later collection could
    // find itself with live pages to move and nowhere to put them.
    // Over-provisioning guarantees the host never legitimately needs
    // these blocks.
    return false;
  }
  std::vector<std::uint32_t> wear;
  wear.reserve(st.free_blocks.size());
  for (const auto& b : st.free_blocks) {
    wear.push_back(controller_->flash()->GetBlockInfo(b).erase_count);
  }
  const std::size_t pick = wear_leveler_.SelectFreeBlock(
      wear, /*prefer_worn=*/for_gc && st.collecting_wl);
  const flash::BlockAddr taken = st.free_blocks[pick];
  st.free_blocks.erase(st.free_blocks.begin() +
                       static_cast<std::ptrdiff_t>(pick));
  if (for_gc) {
    st.gc_active = taken;
    st.has_gc_active = true;
    st.gc_next_page = 0;
  } else {
    st.active = taken;
    st.has_active = true;
    st.next_page = 0;
  }
  is_free_[FlatBlock(taken)] = false;
  is_active_[FlatBlock(taken)] = true;
  return true;
}

void PageFtl::PumpLun(std::uint32_t lun) {
  LunState& st = luns_[lun];
  for (;;) {
    const bool use_gc = !st.gc_queue.empty();
    std::deque<PendingWrite>* queue =
        use_gc ? &st.gc_queue : &st.host_queue;
    if (queue->empty()) break;

    bool* has_active = use_gc ? &st.has_gc_active : &st.has_active;
    flash::BlockAddr* active = use_gc ? &st.gc_active : &st.active;
    std::uint32_t* next_page = use_gc ? &st.gc_next_page : &st.next_page;

    if (*has_active && *next_page == geom().pages_per_block) {
      is_active_[FlatBlock(*active)] = false;
      *has_active = false;
    }
    if (!*has_active) {
      if (!TakeFreeBlock(lun, use_gc)) {
        if (!use_gc) {
          // If this LUN is wedged (nothing reclaimable), hand its
          // queued writes to a live LUN instead of stalling them.
          if (LunWedged(lun) && !st.host_queue.empty()) {
            const std::uint32_t n =
                static_cast<std::uint32_t>(luns_.size());
            for (std::uint32_t off = 1; off < n; ++off) {
              const std::uint32_t cand = (lun + off) % n;
              if (!LunWedged(cand)) {
                counters_.Add("stall_reroutes", st.host_queue.size());
                while (!st.host_queue.empty()) {
                  luns_[cand].host_queue.push_back(
                      std::move(st.host_queue.front()));
                  st.host_queue.pop_front();
                }
                PumpLun(cand);
                return;
              }
            }
          }
          if (!st.stalled) {
            st.stalled = true;
            counters_.Increment("write_stalls");
          }
        }
        MaybeStartGc(lun);
        return;
      }
      st.stalled = false;
    }

    PendingWrite w = std::move(queue->front());
    queue->pop_front();
    const flash::Ppa ppa{active->channel, active->lun, active->plane,
                         active->block, (*next_page)++};
    const std::uint64_t flat = FlatBlock(*active);
    ++in_flight_[flat];
    const SimTime now = controller_->sim()->Now();
    last_write_[flat] = now;

    // Mapping/placement stage: from FTL enqueue to flash issue (covers
    // free-block waits and GC-reserve stalls). Copy the ctx out before
    // the capture below moves `w`.
    const trace::Ctx ctx = w.ctx;
    if (tracer_ != nullptr && tracer_->enabled() && ctx.span != 0 &&
        now > w.enq_t) {
      tracer_->Record(trace::Stage::kMap, ctx.origin, ctx.span,
                      ctx.parent, ftl_tracks_[lun], w.enq_t, now, w.lba);
    }

    flash::PageData data;
    data.lba = w.is_commit_marker ? flash::kAtomicCommitLba : w.lba;
    data.seq = w.seq;
    data.token = w.token;
    data.group = w.group;
    controller_->ProgramPage(
        ppa, data,
        [this, lun, flat, w = std::move(w), ppa](Status s) mutable {
          --in_flight_[flat];
          OnProgramDone(lun, std::move(w), ppa, std::move(s));
        },
        ctx);
  }
  MaybeStartGc(lun);
}

void PageFtl::OnProgramDone(std::uint32_t lun, PendingWrite w,
                            flash::Ppa ppa, Status st) {
  if (w.epoch != epoch_) return;  // power-cycled away
  if (!st.ok()) {
    counters_.Increment("program_failures");
    if (w.group != 0 && !w.is_commit_marker) {
      OnAtomicPageProgrammed(w.group, w.lba, w.seq, ppa, st);
    } else if (w.cb) {
      w.cb(std::move(st));
    }
    PumpLun(lun);
    return;
  }
  if (w.is_commit_marker) {
    if (w.is_relocate) {
      // A relocated copy of a commit marker: adopt the new location.
      auto it = atomic_live_.find(w.group);
      if (it != atomic_live_.end()) {
        (void)controller_->flash()->MarkInvalid(it->second.marker);
        it->second.marker = ppa;
      } else {
        (void)controller_->flash()->MarkInvalid(ppa);
      }
      if (w.cb) w.cb(Status::Ok());
    } else {
      counters_.Increment("atomic_commit_pages");
      auto it = atomic_groups_.find(w.group);
      if (it != atomic_groups_.end()) {
        atomic_live_[w.group] =
            LiveGroup{static_cast<std::uint32_t>(it->second.programmed), ppa};
        CommitAtomicGroup(w.group);
      } else {
        (void)controller_->flash()->MarkInvalid(ppa);
      }
    }
  } else if (w.group != 0 && !w.is_relocate) {
    OnAtomicPageProgrammed(w.group, w.lba, w.seq, ppa, Status::Ok());
  } else {
    if (w.is_relocate && w.group != 0) {
      // Relocated copy of a committed atomic page: keep the live count
      // balanced (ApplyMapping will decrement one copy).
      auto it = atomic_live_.find(w.group);
      if (it != atomic_live_.end()) ++it->second.count;
    }
    ApplyMapping(w, ppa);
    if (w.cb) w.cb(Status::Ok());
  }
  PumpLun(lun);
}

void PageFtl::InvalidatePage(const flash::Ppa& ppa) {
  auto peek = controller_->flash()->Peek(ppa);
  (void)controller_->flash()->MarkInvalid(ppa);
  if (!peek.ok()) return;
  const flash::PageData& d = *peek;
  if (d.group == 0 || d.lba == flash::kAtomicCommitLba) return;
  auto it = atomic_live_.find(d.group);
  if (it == atomic_live_.end()) return;
  if (--it->second.count == 0) {
    // Last live page of the group is gone; retire the commit marker.
    (void)controller_->flash()->MarkInvalid(it->second.marker);
    atomic_live_.erase(it);
  }
}

void PageFtl::ApplyMapping(const PendingWrite& w, const flash::Ppa& ppa) {
  MapEntry& e = map_[w.lba];
  if (w.is_relocate) {
    if (e.mapped && e.seq == w.seq && e.ppa == w.expected_old) {
      if (!e.poisoned) InvalidatePage(e.ppa);
      e.ppa = ppa;
      // A copy taken before the cells died rescues a poisoned LBA.
      e.poisoned = false;
      if (migration_listener_) {
        migration_listener_(w.lba, w.expected_old, ppa);
      }
    } else {
      // The host overwrote or trimmed the LBA mid-relocation; the fresh
      // copy is garbage.
      InvalidatePage(ppa);
    }
    return;
  }
  if (w.seq > e.seq) {
    // Note: an unmapped entry still carries the seq of the trim that
    // unmapped it — a write submitted before that trim must not win.
    // A poisoned entry's old ppa was invalidated at poison time and may
    // point at recycled flash — never touch it again.
    if (e.mapped && !e.poisoned) InvalidatePage(e.ppa);
    e.ppa = ppa;
    e.seq = w.seq;
    e.mapped = true;
    e.poisoned = false;
  } else {
    // Superseded while in flight (a newer write or trim completed
    // first); this copy was never visible.
    InvalidatePage(ppa);
  }
}

// ---------------------------------------------------------------------
// Atomic groups
// ---------------------------------------------------------------------

void PageFtl::OnAtomicPageProgrammed(std::uint64_t group, Lba /*lba*/,
                                     SequenceNumber /*seq*/, flash::Ppa ppa,
                                     Status st) {
  auto it = atomic_groups_.find(group);
  if (it == atomic_groups_.end()) return;
  AtomicGroup& tracker = it->second;
  if (!st.ok()) {
    tracker.failed = true;
  } else {
    tracker.ppas.push_back(ppa);
  }
  ++tracker.programmed;
  if (tracker.programmed < tracker.pages.size()) return;

  if (tracker.failed) {
    // Abort: programmed copies are garbage (never mapped, no marker).
    for (const auto& p : tracker.ppas) {
      (void)controller_->flash()->MarkInvalid(p);
    }
    if (tracker.cb) tracker.cb(Status::Internal("atomic group failed"));
    atomic_groups_.erase(it);
    return;
  }
  // All pages durable: write the commit marker, then flip mappings.
  PendingWrite marker;
  marker.lba = 0;  // ignored; PageData.lba becomes kAtomicCommitLba
  marker.token = group;
  marker.seq = next_seq_++;
  marker.group = group;
  marker.is_commit_marker = true;
  marker.epoch = epoch_;
  EnqueueWrite(std::move(marker));
}

void PageFtl::CommitAtomicGroup(std::uint64_t group) {
  auto it = atomic_groups_.find(group);
  if (it == atomic_groups_.end()) return;
  AtomicGroup tracker = std::move(it->second);
  atomic_groups_.erase(it);

  // Flip each page's mapping, respecting sequence ordering against any
  // concurrent writes/trims. ppas arrived in completion order, which may
  // differ from issue order across LUNs, so match them to (lba, seq) by
  // reading the page OOB (Peek is un-timed).
  assert(tracker.ppas.size() == tracker.pages.size());
  for (const flash::Ppa& ppa : tracker.ppas) {
    auto peek = controller_->flash()->Peek(ppa);
    if (!peek.ok()) continue;
    PendingWrite w;
    w.lba = peek->lba;
    w.seq = peek->seq;
    w.group = group;
    ApplyMapping(w, ppa);
  }
  if (tracker.cb) tracker.cb(Status::Ok());
}

// ---------------------------------------------------------------------
// Read path
// ---------------------------------------------------------------------

void PageFtl::Read(Lba lba, ReadCallback cb, trace::Ctx ctx) {
  if (lba >= logical_pages_) {
    PostGuarded(std::move(cb),
                StatusOr<std::uint64_t>(
                    Status::OutOfRange("read beyond device")));
    return;
  }
  counters_.Increment("host_reads");
  ReadAttempt(lba, 0, std::move(cb), ctx);
}

void PageFtl::ReadAttempt(Lba lba, int tries, ReadCallback cb,
                          trace::Ctx ctx) {
  const MapEntry& e = map_[lba];
  if (!e.mapped) {
    counters_.Increment("host_reads_unmapped");
    PostGuarded(std::move(cb), StatusOr<std::uint64_t>(std::uint64_t{0}));
    return;
  }
  if (e.poisoned) {
    // The data is known-lost and the physical page may be recycled:
    // answer DataLoss without touching flash (definite, repeatable).
    counters_.Increment("host_reads_poisoned");
    PostGuarded(std::move(cb),
                StatusOr<std::uint64_t>(Status::DataLoss(
                    "lba " + std::to_string(lba) + " lost to media")));
    return;
  }
  const flash::Ppa ppa = e.ppa;
  const SequenceNumber expected_seq = e.seq;
  const std::uint64_t epoch = epoch_;
  controller_->ReadPage(
      ppa,
      [this, lba, tries, ppa, expected_seq, epoch, ctx,
       cb = std::move(cb)](StatusOr<flash::PageData> res) mutable {
        if (epoch != epoch_) return;  // power-cycled away
        if (res.ok() && res->lba == lba && res->seq == expected_seq) {
          cb(res->token);
          return;
        }
        if (!res.ok() && res.status().IsDataLoss()) {
          // The whole retry ladder failed: the payload is gone for
          // good. Poison so later reads answer without re-sensing.
          counters_.Increment("read_failures");
          PoisonMapping(lba, ppa, expected_seq);
          cb(res.status());
          return;
        }
        // The page moved (GC/WL) or was erased between the mapping
        // lookup and the array read; chase the current mapping.
        counters_.Increment("read_retries");
        if (tries + 1 > kMaxReadRetries) {
          cb(Status::Internal("read retry limit for lba " +
                              std::to_string(lba)));
          return;
        }
        ReadAttempt(lba, tries + 1, std::move(cb), ctx);
      },
      ctx);
}

// ---------------------------------------------------------------------
// Trim
// ---------------------------------------------------------------------

void PageFtl::Trim(Lba lba, WriteCallback cb, trace::Ctx /*ctx*/) {
  if (lba >= logical_pages_) {
    PostGuarded(std::move(cb), Status::OutOfRange("trim beyond device"));
    return;
  }
  counters_.Increment("trims");
  MapEntry& e = map_[lba];
  e.seq = next_seq_++;
  std::uint32_t lun_of_old = ~0u;
  if (e.mapped) {
    if (!e.poisoned) {
      // (Poisoned: the old copy was invalidated at poison time and the
      // ppa may be recycled flash.)
      lun_of_old = e.ppa.GlobalLun(geom());
      InvalidatePage(e.ppa);
    }
    e.mapped = false;
    e.poisoned = false;
  }
  PostGuarded(std::move(cb), Status::Ok());
  if (lun_of_old != ~0u) MaybeStartGc(lun_of_old);
}

// ---------------------------------------------------------------------
// Garbage collection & wear leveling
// ---------------------------------------------------------------------

std::vector<BlockMeta> PageFtl::GcCandidates(std::uint32_t lun) const {
  const auto& g = geom();
  std::vector<BlockMeta> out;
  const std::uint32_t channel = lun / g.luns_per_channel;
  const std::uint32_t lun_in_channel = lun % g.luns_per_channel;
  for (std::uint32_t plane = 0; plane < g.planes_per_lun; ++plane) {
    for (std::uint32_t block = 0; block < g.blocks_per_plane; ++block) {
      const flash::BlockAddr addr{channel, lun_in_channel, plane, block};
      const std::uint64_t flat = FlatBlock(addr);
      if (is_free_[flat] || is_active_[flat] || in_flight_[flat] > 0) {
        continue;
      }
      const flash::BlockInfo& bi = controller_->flash()->GetBlockInfo(addr);
      if (bi.bad || bi.write_point == 0) continue;
      out.push_back(
          BlockMeta{addr, bi.valid_pages, bi.erase_count, last_write_[flat]});
    }
  }
  return out;
}

bool PageFtl::GcFeasible(std::uint32_t lun) const {
  for (const auto& c : GcCandidates(lun)) {
    if (c.valid_pages < geom().pages_per_block) return true;
  }
  return false;
}

// ---------------------------------------------------------------------
// Reliability: poisoning & refresh
// ---------------------------------------------------------------------

void PageFtl::PoisonMapping(Lba lba, const flash::Ppa& ppa,
                            SequenceNumber seq) {
  if (lba >= logical_pages_) return;
  MapEntry& e = map_[lba];
  if (!e.mapped || e.poisoned || e.seq != seq || !(e.ppa == ppa)) return;
  e.poisoned = true;
  counters_.Increment("pages_poisoned");
  // The copy is garbage now; let the owning block be collected/erased.
  InvalidatePage(ppa);
}

void PageFtl::PoisonLostPage(const flash::Ppa& ppa) {
  // The payload died but the OOB area is separately protected (same
  // assumption the PowerCycle rescan rests on): recover the identity of
  // the lost page from it.
  auto peek = controller_->flash()->Peek(ppa);
  if (!peek.ok()) return;
  if (peek->lba == flash::kAtomicCommitLba) {
    // A commit marker's payload is irrelevant; its OOB still proves the
    // group committed. Nothing to poison.
    return;
  }
  PoisonMapping(peek->lba, ppa, peek->seq);
}

void PageFtl::OnRefreshRequest(const flash::BlockAddr& block) {
  if (controller_->read_only()) return;
  const std::uint32_t lun = GlobalLun(block);
  luns_[lun].refresh_queue.push_back(block);
  counters_.Increment("refresh_requests");
  MaybeStartGc(lun);
}

bool PageFtl::MaybeStartRefresh(std::uint32_t lun) {
  LunState& st = luns_[lun];
  while (!st.refresh_queue.empty()) {
    const flash::BlockAddr block = st.refresh_queue.front();
    const std::uint64_t flat = FlatBlock(block);
    if (is_free_[flat] ||
        controller_->flash()->GetBlockInfo(block).bad) {
      // Already recycled or retired; nothing left to rescue.
      st.refresh_queue.pop_front();
      continue;
    }
    if (is_active_[flat] || in_flight_[flat] > 0) {
      // Still being written; retry at the next pump.
      return false;
    }
    st.refresh_queue.pop_front();
    st.gc_running = true;
    st.collecting_wl = false;
    st.gc_ctx = trace::Ctx{
        tracer_ != nullptr ? tracer_->NewSpan() : trace::SpanId{0}, 0,
        trace::Origin::kGc};
    st.gc_start = controller_->sim()->Now();
    counters_.Increment("refresh_runs");
    CollectBlock(lun, block, /*is_wl=*/false);
    return true;
  }
  return false;
}

void PageFtl::MaybeStartGc(std::uint32_t lun) {
  LunState& st = luns_[lun];
  if (st.gc_running) return;
  // Spares exhausted: every further erase is a liability and writes are
  // rejected anyway — stop background work, keep serving reads.
  if (controller_->read_only()) return;
  // Refresh requests outrank the watermark: the block is actively
  // decaying and must be rescued before its reads go uncorrectable.
  if (MaybeStartRefresh(lun)) return;
  if (st.free_blocks.size() >=
      controller_->config().gc.low_watermark_blocks) {
    MaybeStartStaticWl(lun);
    return;
  }
  auto victim = gc_policy_->PickVictim(GcCandidates(lun),
                                       controller_->sim()->Now(),
                                       geom().pages_per_block);
  if (!victim.has_value()) return;
  st.gc_running = true;
  st.collecting_wl = false;
  st.gc_ctx = trace::Ctx{
      tracer_ != nullptr ? tracer_->NewSpan() : trace::SpanId{0}, 0,
      trace::Origin::kGc};
  st.gc_start = controller_->sim()->Now();
  counters_.Increment("gc_runs");
  CollectBlock(lun, *victim, /*is_wl=*/false);
}

void PageFtl::MaybeStartStaticWl(std::uint32_t lun) {
  LunState& st = luns_[lun];
  if (st.gc_running || !wear_leveler_.config().static_enabled) return;
  // Pacing: a migration is only worth one per several GC erases —
  // otherwise a stubborn spread (e.g. a young mostly-invalid block GC
  // will soon handle anyway) causes a migration storm.
  if (st.erases_since_wl <
      wear_leveler_.config().migrate_interval_erases) {
    return;
  }
  // Erase-count spread across this LUN's *data* blocks. Free blocks are
  // excluded: a young free block is available budget, not a problem —
  // only cold data pinning a young block wastes its cycles.
  const auto candidates = GcCandidates(lun);
  std::uint32_t min_e = ~0u;
  std::uint32_t max_e = 0;
  for (const auto& c : candidates) {
    min_e = std::min(min_e, c.erase_count);
    max_e = std::max(max_e, c.erase_count);
  }
  if (min_e == ~0u || !wear_leveler_.ShouldMigrate(min_e, max_e)) return;
  auto cold =
      wear_leveler_.PickColdBlock(candidates, geom().pages_per_block);
  if (!cold.has_value()) return;
  st.gc_running = true;
  st.collecting_wl = true;
  st.gc_ctx = trace::Ctx{
      tracer_ != nullptr ? tracer_->NewSpan() : trace::SpanId{0}, 0,
      trace::Origin::kWearLevel};
  st.gc_start = controller_->sim()->Now();
  counters_.Increment("wl_runs");
  CollectBlock(lun, *cold, /*is_wl=*/true);
}

void PageFtl::CollectBlock(std::uint32_t lun, flash::BlockAddr victim,
                           bool is_wl) {
  const auto& bi = controller_->flash()->GetBlockInfo(victim);
  std::vector<flash::Ppa> live;
  for (std::uint32_t p = 0; p < bi.write_point; ++p) {
    const flash::Ppa ppa{victim.channel, victim.lun, victim.plane,
                         victim.block, p};
    if (controller_->flash()->GetPageState(ppa) == flash::PageState::kValid) {
      live.push_back(ppa);
    }
  }
  counters_.Add(is_wl ? "wl_page_moves" : "gc_page_moves", live.size());
  if (live.empty()) {
    FinishCollect(lun, victim, is_wl);
    return;
  }
  auto remaining = std::make_shared<std::size_t>(live.size());
  for (const auto& ppa : live) {
    RelocatePage(lun, ppa, is_wl, [this, lun, victim, is_wl, remaining]() {
      if (--*remaining == 0) FinishCollect(lun, victim, is_wl);
    });
  }
}

void PageFtl::RelocatePage(std::uint32_t lun, flash::Ppa ppa, bool is_wl,
                           std::function<void()> done) {
  const std::uint64_t epoch = epoch_;
  counters_.Increment(is_wl ? "wl_reads" : "gc_reads");
  controller_->ReadPage(
      ppa,
      [this, lun, ppa, epoch, is_wl,
       done = std::move(done)](StatusOr<flash::PageData> res) mutable {
        if (epoch != epoch_) return;
        if (!res.ok()) {
          // ECC death during GC: the copy is lost. Poison the mapping
          // *before* the victim erase is allowed to proceed — leaving
          // it pointing into the about-to-be-recycled block would let
          // a later host read return a different LBA's data.
          counters_.Increment("gc_read_failures");
          PoisonLostPage(ppa);
          done();
          return;
        }
        const flash::PageData d = *res;
        PendingWrite w;
        w.is_relocate = true;
        w.seq = d.seq;
        w.token = d.token;
        w.group = d.group;
        w.epoch = epoch_;
        w.expected_old = ppa;
        w.ctx = luns_[lun].gc_ctx;
        w.enq_t = controller_->sim()->Now();
        if (d.lba == flash::kAtomicCommitLba) {
          w.is_commit_marker = true;
          w.lba = 0;
        } else {
          w.lba = d.lba;
        }
        w.cb = [done = std::move(done)](Status) { done(); };
        // Relocations stay on the victim's LUN and jump the host queue.
        luns_[lun].gc_queue.push_back(std::move(w));
        PumpLun(lun);
      },
      luns_[lun].gc_ctx);
}

void PageFtl::FinishCollect(std::uint32_t lun, flash::BlockAddr victim,
                            bool is_wl) {
  const std::uint64_t epoch = epoch_;
  controller_->EraseBlock(
      victim,
      [this, lun, victim, epoch, is_wl](Status st) {
        if (epoch != epoch_) return;
        counters_.Increment(is_wl ? "wl_erases" : "gc_erases");
        LunState& lst = luns_[lun];
        if (is_wl) {
          lst.erases_since_wl = 0;
        } else {
          ++lst.erases_since_wl;
        }
        if (st.ok()) {
          lst.free_blocks.push_back(victim);
          is_free_[FlatBlock(victim)] = true;
        } else {
          // Erase failure retired the block (already marked bad).
          counters_.Increment("blocks_retired");
        }
        // The collection as one interval on the LUN's FTL track: pick
        // to erase-done, relocation traffic included.
        if (tracer_ != nullptr && tracer_->enabled() &&
            lst.gc_ctx.span != 0) {
          tracer_->Record(trace::Stage::kGc, lst.gc_ctx.origin,
                          lst.gc_ctx.span, 0, ftl_tracks_[lun],
                          lst.gc_start, controller_->sim()->Now(),
                          victim.block);
        }
        lst.gc_ctx = trace::Ctx{};
        lst.gc_running = false;
        lst.collecting_wl = false;
        // Give static wear leveling a turn between collections — under
        // sustained churn the free pool never recovers above the GC
        // watermark, and WL would otherwise starve.
        MaybeStartStaticWl(lun);
        PumpLun(lun);
      },
      luns_[lun].gc_ctx);
}

// ---------------------------------------------------------------------
// Power loss + OOB-scan recovery
// ---------------------------------------------------------------------

Status PageFtl::PowerCycle() {
  ++epoch_;
  // The controller's in-flight operations die with the power too — an
  // erase or program still "in the air" must not mutate cells after the
  // OOB rescan below has rebuilt the mapping from them.
  controller_->PowerCycle();
  counters_.Increment("power_cycles");
  for (auto& st : luns_) {
    st.host_queue.clear();
    st.gc_queue.clear();
    st.has_active = false;
    st.next_page = 0;
    st.has_gc_active = false;
    st.gc_next_page = 0;
    st.gc_running = false;
    st.stalled = false;
    st.free_blocks.clear();
    st.gc_ctx = trace::Ctx{};
    st.gc_start = 0;
    st.refresh_queue.clear();
  }
  atomic_groups_.clear();
  atomic_live_.clear();
  std::fill(in_flight_.begin(), in_flight_.end(), 0);
  std::fill(is_free_.begin(), is_free_.end(), false);
  std::fill(is_active_.begin(), is_active_.end(), false);
  map_.assign(logical_pages_, MapEntry{});

  const auto& g = geom();
  flash::FlashArray* flash = controller_->flash();

  // Pass 1: find commit markers (any programmed marker commits its
  // group — see DESIGN.md on marker lifetime).
  std::unordered_set<std::uint64_t> committed;
  std::unordered_map<std::uint64_t, flash::Ppa> marker_of;
  const std::uint64_t total_pages = g.total_pages();
  for (std::uint64_t f = 0; f < total_pages; ++f) {
    const flash::Ppa ppa = flash::Ppa::FromFlat(g, f);
    if (flash->GetPageState(ppa) == flash::PageState::kFree) continue;
    auto peek = flash->Peek(ppa);
    if (!peek.ok()) continue;
    if (peek->lba == flash::kAtomicCommitLba) {
      committed.insert(peek->group);
      marker_of[peek->group] = ppa;
    }
  }

  // Pass 2: pick the newest eligible copy of every LBA.
  struct Best {
    flash::Ppa ppa;
    SequenceNumber seq = 0;
    std::uint64_t token = 0;
    std::uint64_t group = 0;
    bool set = false;
  };
  std::unordered_map<Lba, Best> best;
  SequenceNumber max_seq = 0;
  std::uint64_t max_group = 0;
  for (std::uint64_t f = 0; f < total_pages; ++f) {
    const flash::Ppa ppa = flash::Ppa::FromFlat(g, f);
    if (flash->GetPageState(ppa) == flash::PageState::kFree) continue;
    auto peek = flash->Peek(ppa);
    if (!peek.ok()) continue;
    max_seq = std::max(max_seq, peek->seq);
    max_group = std::max(max_group, peek->group);
    if (peek->lba == flash::kAtomicCommitLba) continue;
    if (peek->group != 0 && committed.count(peek->group) == 0) {
      continue;  // uncommitted atomic page: never visible
    }
    if (peek->lba >= logical_pages_) continue;  // corrupt OOB; skip
    Best& b = best[peek->lba];
    if (!b.set || peek->seq > b.seq) {
      b = Best{ppa, peek->seq, peek->token, peek->group, true};
    }
  }

  // Pass 3: normalize page validity to the recovery decision and count
  // live pages per committed group.
  std::unordered_map<std::uint64_t, std::uint32_t> group_live;
  for (std::uint64_t f = 0; f < total_pages; ++f) {
    const flash::Ppa ppa = flash::Ppa::FromFlat(g, f);
    const flash::PageState state = flash->GetPageState(ppa);
    if (state == flash::PageState::kFree) continue;
    auto peek = flash->Peek(ppa);
    if (!peek.ok()) continue;
    bool want_valid = false;
    if (peek->lba != flash::kAtomicCommitLba &&
        peek->lba < logical_pages_) {
      auto it = best.find(peek->lba);
      want_valid = it != best.end() && it->second.set &&
                   it->second.ppa == ppa;
    }
    if (want_valid) {
      if (state == flash::PageState::kInvalid) {
        PB_RETURN_IF_ERROR(flash->Revalidate(ppa));
      }
      if (peek->group != 0) ++group_live[peek->group];
    } else if (peek->lba != flash::kAtomicCommitLba) {
      if (state == flash::PageState::kValid) {
        PB_RETURN_IF_ERROR(flash->MarkInvalid(ppa));
      }
    }
  }

  // Markers: keep one valid marker per group that still has live pages.
  for (const auto& [group, ppa] : marker_of) {
    const auto live_it = group_live.find(group);
    const bool keep = live_it != group_live.end() && live_it->second > 0;
    const flash::PageState state = flash->GetPageState(ppa);
    if (keep) {
      if (state == flash::PageState::kInvalid) {
        PB_RETURN_IF_ERROR(flash->Revalidate(ppa));
      }
      atomic_live_[group] = LiveGroup{live_it->second, ppa};
    } else if (state == flash::PageState::kValid) {
      PB_RETURN_IF_ERROR(flash->MarkInvalid(ppa));
    }
  }
  // Any duplicate markers (relocation races) beyond the remembered one
  // were already handled by pass-3 skipping markers; invalidate extras.
  for (std::uint64_t f = 0; f < total_pages; ++f) {
    const flash::Ppa ppa = flash::Ppa::FromFlat(g, f);
    if (flash->GetPageState(ppa) != flash::PageState::kValid) continue;
    auto peek = flash->Peek(ppa);
    if (!peek.ok() || peek->lba != flash::kAtomicCommitLba) continue;
    auto it = atomic_live_.find(peek->group);
    if (it == atomic_live_.end() || !(it->second.marker == ppa)) {
      PB_RETURN_IF_ERROR(flash->MarkInvalid(ppa));
    }
  }

  // Rebuild the logical map.
  for (const auto& [lba, b] : best) {
    if (!b.set) continue;
    map_[lba] = MapEntry{b.ppa, b.seq, true};
  }
  next_seq_ = max_seq + 1;
  next_group_ = max_group + 1;

  // Rebuild free lists: fully erased, non-bad blocks are free; partially
  // or fully written blocks wait for GC.
  for (std::uint32_t l = 0; l < g.luns(); ++l) {
    const std::uint32_t channel = l / g.luns_per_channel;
    const std::uint32_t lun_in_channel = l % g.luns_per_channel;
    for (std::uint32_t plane = 0; plane < g.planes_per_lun; ++plane) {
      for (std::uint32_t block = 0; block < g.blocks_per_plane; ++block) {
        const flash::BlockAddr addr{channel, lun_in_channel, plane, block};
        const auto& bi = flash->GetBlockInfo(addr);
        if (!bi.bad && bi.write_point == 0) {
          luns_[l].free_blocks.push_back(addr);
          is_free_[FlatBlock(addr)] = true;
        }
      }
    }
  }
  return Status::Ok();
}

}  // namespace postblock::ftl
