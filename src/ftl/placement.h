#ifndef POSTBLOCK_FTL_PLACEMENT_H_
#define POSTBLOCK_FTL_PLACEMENT_H_

#include <cstdint>
#include <memory>

#include "common/types.h"
#include "flash/geometry.h"
#include "ssd/config.h"

namespace postblock::ftl {

/// Decides which LUN services a host write. The paper (Myth 3, reason
/// three): "reads will benefit from parallelism only if the
/// corresponding writes have been directed to different LUNs" — this
/// policy is exactly that decision, and benches ablate it.
class WritePlacement {
 public:
  virtual ~WritePlacement() = default;

  /// Global LUN index in [0, geometry.luns()) for a host write of `lba`.
  virtual std::uint32_t LunForWrite(Lba lba) = 0;

  static std::unique_ptr<WritePlacement> Create(
      ssd::PlacementKind kind, const flash::Geometry& geometry);
};

/// Round-robin striping, channel-major: consecutive writes hit distinct
/// channels first, then distinct LUNs within a channel.
class ChannelStripePlacement : public WritePlacement {
 public:
  explicit ChannelStripePlacement(const flash::Geometry& g) : geometry_(g) {}

  std::uint32_t LunForWrite(Lba lba) override;

 private:
  flash::Geometry geometry_;
  std::uint64_t counter_ = 0;
};

/// Static range binding: a block-sized LBA range always maps to the same
/// LUN. Sequential LBA ranges colocate — later random reads of a range
/// serialize on one LUN.
class LbaStaticPlacement : public WritePlacement {
 public:
  explicit LbaStaticPlacement(const flash::Geometry& g) : geometry_(g) {}

  std::uint32_t LunForWrite(Lba lba) override;

 private:
  flash::Geometry geometry_;
};

}  // namespace postblock::ftl

#endif  // POSTBLOCK_FTL_PLACEMENT_H_
