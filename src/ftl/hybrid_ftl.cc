#include "ftl/hybrid_ftl.h"

#include <algorithm>
#include <memory>
#include <utility>

namespace postblock::ftl {

HybridFtl::HybridFtl(ssd::Controller* controller)
    : controller_(controller),
      luns_(controller->config().geometry.luns()),
      wear_leveler_(controller->config().wear) {
  const auto& cfg = controller->config();
  const auto& g = cfg.geometry;
  const std::uint32_t pool = cfg.hybrid_log_blocks_per_lun;
  // Leave the log pool plus two spares per LUN outside the user space.
  const std::uint64_t per_lun_vblocks =
      g.blocks_per_lun() > pool + 2 ? g.blocks_per_lun() - pool - 2 : 1;
  const std::uint64_t cap_by_op = static_cast<std::uint64_t>(
      static_cast<double>(g.total_blocks()) * (1.0 - cfg.over_provisioning));
  user_vblocks_ = std::min<std::uint64_t>(per_lun_vblocks * g.luns(),
                                          cap_by_op);
  user_pages_ = user_vblocks_ * g.pages_per_block;
  map_.resize(user_vblocks_);
  for (std::uint32_t l = 0; l < g.luns(); ++l) {
    const std::uint32_t channel = l / g.luns_per_channel;
    const std::uint32_t lun = l % g.luns_per_channel;
    for (std::uint32_t plane = 0; plane < g.planes_per_lun; ++plane) {
      for (std::uint32_t block = 0; block < g.blocks_per_plane; ++block) {
        luns_[l].free_blocks.push_back({channel, lun, plane, block});
      }
    }
    luns_[l].logs.resize(pool);  // slots; LogBlock.vblock==~0 means free
    for (auto& slot : luns_[l].logs) slot.vblock = ~0ull;
  }
}

double HybridFtl::WriteAmplification() const {
  const std::uint64_t host = counters_.Get("host_pages_accepted");
  if (host == 0) return 0.0;
  return static_cast<double>(
             controller_->counters().Get("pages_programmed")) /
         static_cast<double>(host);
}

void HybridFtl::EnqueueOp(std::uint32_t lun,
                          std::function<void(std::function<void()>)> op) {
  luns_[lun].ops.push_back(std::move(op));
  RunNext(lun);
}

void HybridFtl::RunNext(std::uint32_t lun) {
  LunState& st = luns_[lun];
  if (st.busy || st.ops.empty()) return;
  st.busy = true;
  auto op = std::move(st.ops.front());
  st.ops.pop_front();
  op([this, lun]() {
    luns_[lun].busy = false;
    RunNext(lun);
  });
}

bool HybridFtl::TakeFreeBlock(std::uint32_t lun, flash::BlockAddr* out) {
  LunState& st = luns_[lun];
  if (st.free_blocks.empty()) {
    counters_.Increment("free_list_exhausted");
    return false;
  }
  std::vector<std::uint32_t> wear;
  wear.reserve(st.free_blocks.size());
  for (const auto& b : st.free_blocks) {
    wear.push_back(controller_->flash()->GetBlockInfo(b).erase_count);
  }
  const std::size_t pick = wear_leveler_.SelectFreeBlock(wear);
  *out = st.free_blocks[pick];
  st.free_blocks.erase(st.free_blocks.begin() +
                       static_cast<std::ptrdiff_t>(pick));
  return true;
}

void HybridFtl::ReleaseBlock(std::uint32_t lun, flash::BlockAddr addr,
                             std::function<void()> done) {
  controller_->EraseBlock(addr, [this, lun, addr,
                                 done = std::move(done)](Status st) {
    if (st.ok()) {
      luns_[lun].free_blocks.push_back(addr);
    } else {
      counters_.Increment("blocks_retired");
    }
    done();
  });
}

std::size_t HybridFtl::PickLogVictim(const LunState& st) const {
  std::size_t best = 0;
  std::uint32_t best_fill = 0;
  for (std::size_t i = 0; i < st.logs.size(); ++i) {
    if (st.logs[i].vblock == ~0ull) continue;
    if (st.logs[i].next_page >= best_fill) {
      best_fill = st.logs[i].next_page;
      best = i;
    }
  }
  return best;
}

void HybridFtl::Write(Lba lba, std::uint64_t token, WriteCallback cb,
                      trace::Ctx ctx) {
  if (lba >= user_pages_) {
    controller_->sim()->Schedule(0, [cb = std::move(cb)]() {
      cb(Status::OutOfRange("write beyond device"));
    });
    return;
  }
  if (controller_->read_only()) {
    counters_.Increment("writes_rejected_read_only");
    controller_->sim()->Schedule(0, [cb = std::move(cb)]() {
      cb(Status::ResourceExhausted(
          "device is read-only: bad-block spares exhausted"));
    });
    return;
  }
  counters_.Increment("host_writes");
  counters_.Increment("host_pages_accepted");
  const auto& g = controller_->config().geometry;
  const std::uint64_t vblock = lba / g.pages_per_block;
  const std::uint32_t off = static_cast<std::uint32_t>(lba % g.pages_per_block);
  const std::uint32_t lun = LunOf(vblock);
  const SequenceNumber seq = next_seq_++;

  EnqueueOp(lun, [this, vblock, off, token, seq, lun, ctx,
                  cb = std::move(cb)](std::function<void()> op_done) mutable {
    VBlockEntry& e = map_[vblock];
    const auto& g = controller_->config().geometry;
    const std::uint32_t write_point =
        e.data_mapped
            ? controller_->flash()->GetBlockInfo(e.data_phys).write_point
            : 0;
    auto finish = [cb = std::move(cb),
                   op_done = std::move(op_done)](Status st) {
      cb(std::move(st));
      op_done();
    };
    if (e.log_index < 0 && (!e.data_mapped || off >= write_point)) {
      // In-order append into the data block.
      if (!e.data_mapped) {
        if (!TakeFreeBlock(lun, &e.data_phys)) {
          finish(Status::ResourceExhausted("no free blocks on lun"));
          return;
        }
        e.data_mapped = true;
      }
      counters_.Increment("direct_writes");
      const flash::Ppa ppa{e.data_phys.channel, e.data_phys.lun,
                           e.data_phys.plane, e.data_phys.block, off};
      const Lba page_lba = vblock * g.pages_per_block + off;
      controller_->ProgramPage(ppa,
                               flash::PageData{page_lba, seq, token, 0},
                               std::move(finish), ctx);
      return;
    }
    WriteToLog(lun, vblock, off, token, seq, std::move(finish), ctx);
  });
}

void HybridFtl::WriteToLog(std::uint32_t lun, std::uint64_t vblock,
                           std::uint32_t off, std::uint64_t token,
                           SequenceNumber seq,
                           std::function<void(Status)> done,
                           trace::Ctx ctx) {
  LunState& st = luns_[lun];
  VBlockEntry& e = map_[vblock];
  const auto& g = controller_->config().geometry;

  if (e.log_index < 0) {
    // Need a log slot; evict (merge) the fullest victim if the pool is
    // dry — the thrashing that makes scattered writes expensive here.
    std::int32_t free_slot = -1;
    for (std::size_t i = 0; i < st.logs.size(); ++i) {
      if (st.logs[i].vblock == ~0ull) {
        free_slot = static_cast<std::int32_t>(i);
        break;
      }
    }
    if (free_slot < 0) {
      const std::size_t victim_slot = PickLogVictim(st);
      const std::uint64_t victim_vb = st.logs[victim_slot].vblock;
      counters_.Increment("log_evictions");
      MergeVBlock(lun, victim_vb,
                  [this, lun, vblock, off, token, seq, ctx,
                   done = std::move(done)](Status merge_st) mutable {
                    if (!merge_st.ok()) {
                      done(std::move(merge_st));
                      return;
                    }
                    WriteToLog(lun, vblock, off, token, seq,
                               std::move(done), ctx);
                  });
      return;
    }
    LogBlock& log = st.logs[free_slot];
    if (!TakeFreeBlock(lun, &log.phys)) {
      controller_->sim()->Schedule(0, [done = std::move(done)]() mutable {
        done(Status::ResourceExhausted("no free blocks on lun"));
      });
      return;
    }
    log.vblock = vblock;
    log.next_page = 0;
    log.offset_map.assign(g.pages_per_block, kUnmappedPage);
    log.sequential_so_far = true;
    e.log_index = free_slot;
  }

  LogBlock& log = st.logs[static_cast<std::size_t>(e.log_index)];
  if (log.next_page >= g.pages_per_block) {
    // Log full: merge, then retry (the retry lands on the direct or a
    // fresh-log path).
    MergeVBlock(lun, vblock,
                [this, lun, vblock, off, token, seq, ctx,
                 done = std::move(done)](Status merge_st) mutable {
                  if (!merge_st.ok()) {
                    done(std::move(merge_st));
                    return;
                  }
                  WriteToLog(lun, vblock, off, token, seq, std::move(done),
                             ctx);
                });
    return;
  }

  const std::uint32_t page = log.next_page++;
  if (off != page) log.sequential_so_far = false;
  // Invalidate the superseded copy.
  if (log.offset_map[off] != kUnmappedPage) {
    const flash::Ppa prev{log.phys.channel, log.phys.lun, log.phys.plane,
                          log.phys.block, log.offset_map[off]};
    (void)controller_->flash()->MarkInvalid(prev);
  } else if (e.data_mapped) {
    const flash::Ppa prev{e.data_phys.channel, e.data_phys.lun,
                          e.data_phys.plane, e.data_phys.block, off};
    if (controller_->flash()->GetPageState(prev) ==
        flash::PageState::kValid) {
      (void)controller_->flash()->MarkInvalid(prev);
    }
  }
  log.offset_map[off] = page;
  counters_.Increment("log_appends");
  const flash::Ppa dst{log.phys.channel, log.phys.lun, log.phys.plane,
                       log.phys.block, page};
  const Lba page_lba = vblock * g.pages_per_block + off;
  controller_->ProgramPage(dst, flash::PageData{page_lba, seq, token, 0},
                           std::move(done), ctx);
}

void HybridFtl::MergeVBlock(std::uint32_t lun, std::uint64_t vblock,
                            std::function<void(Status)> done) {
  LunState& st = luns_[lun];
  VBlockEntry& e = map_[vblock];
  const auto& g = controller_->config().geometry;

  const std::int32_t slot = e.log_index;
  LogBlock* log = slot >= 0 ? &st.logs[static_cast<std::size_t>(slot)]
                            : nullptr;

  // Switch merge: a full, perfectly sequential log *is* the new data
  // block — one erase, zero copies.
  if (log != nullptr && log->next_page == g.pages_per_block &&
      log->sequential_so_far) {
    counters_.Increment("switch_merges");
    const bool had_data = e.data_mapped;
    const flash::BlockAddr old_data = e.data_phys;
    e.data_phys = log->phys;
    e.data_mapped = true;
    e.log_index = -1;
    log->vblock = ~0ull;
    if (!had_data) {
      controller_->sim()->Schedule(
          0, [done = std::move(done)]() { done(Status::Ok()); });
      return;
    }
    ReleaseBlock(lun, old_data,
                 [done = std::move(done)]() { done(Status::Ok()); });
    return;
  }

  counters_.Increment("full_merges");
  struct Job {
    std::uint32_t lun;
    std::uint64_t vblock;
    bool had_data = false;
    flash::BlockAddr old_data;
    bool had_log = false;
    flash::BlockAddr old_log;
    std::vector<std::uint32_t> offset_map;
    flash::BlockAddr merged;
    std::uint32_t page = 0;
    std::uint32_t produced = 0;  // pages programmed into `merged`
    std::function<void(Status)> done;
  };
  auto job = std::make_shared<Job>();
  job->lun = lun;
  job->vblock = vblock;
  // Claim the destination before touching the log slot: on exhaustion
  // the vblock's data+log mappings stay intact and readable.
  if (!TakeFreeBlock(lun, &job->merged)) {
    controller_->sim()->Schedule(0, [done = std::move(done)]() mutable {
      done(Status::ResourceExhausted("no free blocks on lun"));
    });
    return;
  }
  job->had_data = e.data_mapped;
  if (e.data_mapped) job->old_data = e.data_phys;
  if (log != nullptr) {
    job->had_log = true;
    job->old_log = log->phys;
    job->offset_map = log->offset_map;
    log->vblock = ~0ull;  // slot released up front (merge owns the block)
    e.log_index = -1;
  }
  job->done = std::move(done);

  auto step = std::make_shared<std::function<void()>>();
  *step = [this, job, step]() {
    const auto& g = controller_->config().geometry;
    if (job->page >= g.pages_per_block) {
      map_[job->vblock] = VBlockEntry{job->merged, true, -1};
      auto after_data = [this, job]() {
        if (job->had_log) {
          ReleaseBlock(job->lun, job->old_log,
                       [job]() { job->done(Status::Ok()); });
        } else {
          job->done(Status::Ok());
        }
      };
      if (job->had_data) {
        ReleaseBlock(job->lun, job->old_data, after_data);
      } else {
        after_data();
      }
      return;
    }
    const std::uint32_t p = job->page++;
    // Newest copy: log wins over data.
    flash::Ppa src;
    bool have_src = false;
    if (job->had_log && p < job->offset_map.size() &&
        job->offset_map[p] != kUnmappedPage) {
      src = flash::Ppa{job->old_log.channel, job->old_log.lun,
                       job->old_log.plane, job->old_log.block,
                       job->offset_map[p]};
      have_src = controller_->flash()->GetPageState(src) ==
                 flash::PageState::kValid;
    }
    if (!have_src && job->had_data) {
      src = flash::Ppa{job->old_data.channel, job->old_data.lun,
                       job->old_data.plane, job->old_data.block, p};
      have_src = controller_->flash()->GetPageState(src) ==
                 flash::PageState::kValid;
    }
    if (!have_src) {
      (*step)();
      return;
    }
    counters_.Increment("merge_page_copies");
    const flash::Ppa dst{job->merged.channel, job->merged.lun,
                         job->merged.plane, job->merged.block, p};
    controller_->ReadPage(
        src, [this, job, step, dst](StatusOr<flash::PageData> res) {
          if (!res.ok()) {
            counters_.Increment("merge_read_failures");
            (*step)();
            return;
          }
          controller_->ProgramPage(dst, *res, [job, step](Status st) {
            if (!st.ok()) {
              job->done(std::move(st));
              return;
            }
            ++job->produced;
            (*step)();
          });
        });
  };
  (*step)();
}

void HybridFtl::Read(Lba lba, ReadCallback cb, trace::Ctx ctx) {
  if (lba >= user_pages_) {
    controller_->sim()->Schedule(0, [cb = std::move(cb)]() {
      cb(Status::OutOfRange("read beyond device"));
    });
    return;
  }
  counters_.Increment("host_reads");
  const auto& g = controller_->config().geometry;
  const std::uint64_t vblock = lba / g.pages_per_block;
  const std::uint32_t off = static_cast<std::uint32_t>(lba % g.pages_per_block);
  const std::uint32_t lun = LunOf(vblock);
  EnqueueOp(lun, [this, vblock, off, lun, ctx,
                  cb = std::move(cb)](std::function<void()> op_done) mutable {
    const VBlockEntry& e = map_[vblock];
    const LunState& st = luns_[lun];
    flash::Ppa src;
    bool have_src = false;
    if (e.log_index >= 0) {
      const LogBlock& log = st.logs[static_cast<std::size_t>(e.log_index)];
      if (log.offset_map[off] != kUnmappedPage) {
        src = flash::Ppa{log.phys.channel, log.phys.lun, log.phys.plane,
                         log.phys.block, log.offset_map[off]};
        have_src = controller_->flash()->GetPageState(src) ==
                   flash::PageState::kValid;
      }
    }
    if (!have_src && e.data_mapped) {
      src = flash::Ppa{e.data_phys.channel, e.data_phys.lun,
                       e.data_phys.plane, e.data_phys.block, off};
      have_src = controller_->flash()->GetPageState(src) ==
                 flash::PageState::kValid;
    }
    if (!have_src) {
      counters_.Increment("host_reads_unmapped");
      cb(std::uint64_t{0});
      op_done();
      return;
    }
    controller_->ReadPage(
        src,
        [this, cb = std::move(cb), op_done = std::move(op_done)](
            StatusOr<flash::PageData> res) {
          if (!res.ok()) {
            counters_.Increment("read_failures");
            cb(res.status());
          } else {
            cb(res->token);
          }
          op_done();
        },
        ctx);
  });
}

void HybridFtl::Trim(Lba lba, WriteCallback cb, trace::Ctx /*ctx*/) {
  if (lba >= user_pages_) {
    controller_->sim()->Schedule(0, [cb = std::move(cb)]() {
      cb(Status::OutOfRange("trim beyond device"));
    });
    return;
  }
  counters_.Increment("trims");
  const auto& g = controller_->config().geometry;
  const std::uint64_t vblock = lba / g.pages_per_block;
  const std::uint32_t off = static_cast<std::uint32_t>(lba % g.pages_per_block);
  const std::uint32_t lun = LunOf(vblock);
  EnqueueOp(lun, [this, vblock, off, lun,
                  cb = std::move(cb)](std::function<void()> op_done) mutable {
    VBlockEntry& e = map_[vblock];
    LunState& st = luns_[lun];
    if (e.log_index >= 0) {
      LogBlock& log = st.logs[static_cast<std::size_t>(e.log_index)];
      if (log.offset_map[off] != kUnmappedPage) {
        const flash::Ppa p{log.phys.channel, log.phys.lun, log.phys.plane,
                           log.phys.block, log.offset_map[off]};
        if (controller_->flash()->GetPageState(p) ==
            flash::PageState::kValid) {
          (void)controller_->flash()->MarkInvalid(p);
        }
        log.offset_map[off] = kUnmappedPage;
        cb(Status::Ok());
        op_done();
        return;
      }
    }
    if (e.data_mapped) {
      const flash::Ppa p{e.data_phys.channel, e.data_phys.lun,
                         e.data_phys.plane, e.data_phys.block, off};
      if (controller_->flash()->GetPageState(p) ==
          flash::PageState::kValid) {
        (void)controller_->flash()->MarkInvalid(p);
      }
    }
    cb(Status::Ok());
    op_done();
  });
}

}  // namespace postblock::ftl
