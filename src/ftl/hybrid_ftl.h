#ifndef POSTBLOCK_FTL_HYBRID_FTL_H_
#define POSTBLOCK_FTL_HYBRID_FTL_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/stats.h"
#include "ftl/ftl.h"
#include "ftl/wear_leveler.h"
#include "ssd/controller.h"

namespace postblock::ftl {

/// Hybrid log-block FTL (BAST-style): block-mapped data blocks plus a
/// small per-LUN pool of page-mapped *log blocks* absorbing overwrites.
/// The mid-2000s compromise between mapping-table RAM and random-write
/// cost:
///
///   - appends in order go straight to the data block (cheap),
///   - overwrites append to the vblock's log block (cheap until the log
///     fills or the pool runs dry),
///   - a full log written exactly sequentially becomes the data block
///     (*switch merge*: one erase, zero copies),
///   - otherwise a *full merge* rebuilds the block from data+log (up to
///     pages_per_block copies + two erases).
///
/// Random writes across many vblocks thrash the small log pool and
/// degenerate into full merges — the behaviour behind the paper's
/// "random writes are very costly" era.
class HybridFtl : public Ftl {
 public:
  explicit HybridFtl(ssd::Controller* controller);

  HybridFtl(const HybridFtl&) = delete;
  HybridFtl& operator=(const HybridFtl&) = delete;

  void Write(Lba lba, std::uint64_t token, WriteCallback cb,
             trace::Ctx ctx = {}) override;
  void Read(Lba lba, ReadCallback cb, trace::Ctx ctx = {}) override;
  void Trim(Lba lba, WriteCallback cb, trace::Ctx ctx = {}) override;
  std::uint64_t user_pages() const override { return user_pages_; }
  const Counters& counters() const override { return counters_; }
  double WriteAmplification() const override;

 private:
  static constexpr std::uint32_t kUnmappedPage = ~0u;

  struct LogBlock {
    flash::BlockAddr phys;
    std::uint64_t vblock = 0;
    std::uint32_t next_page = 0;
    /// offset-in-vblock -> page-in-log of the newest copy.
    std::vector<std::uint32_t> offset_map;
    bool sequential_so_far = true;  // eligible for switch merge
  };

  struct VBlockEntry {
    flash::BlockAddr data_phys;
    bool data_mapped = false;
    std::int32_t log_index = -1;  // into LunState::logs, -1 = none
  };

  struct LunState {
    std::deque<std::function<void(std::function<void()>)>> ops;
    bool busy = false;
    std::vector<flash::BlockAddr> free_blocks;
    std::vector<LogBlock> logs;  // active log blocks (<= pool size)
  };

  void EnqueueOp(std::uint32_t lun,
                 std::function<void(std::function<void()>)> op);
  void RunNext(std::uint32_t lun);
  std::uint32_t LunOf(std::uint64_t vblock) const {
    return static_cast<std::uint32_t>(vblock % luns_.size());
  }
  /// Pops the wear-leveler's pick from the LUN's free list. Returns
  /// false when the list is empty (erase retirement can consume the
  /// reserved spares) — callers must fail the write rather than index
  /// into an empty vector.
  bool TakeFreeBlock(std::uint32_t lun, flash::BlockAddr* out);
  void ReleaseBlock(std::uint32_t lun, flash::BlockAddr addr,
                    std::function<void()> done);

  void WriteToLog(std::uint32_t lun, std::uint64_t vblock,
                  std::uint32_t off, std::uint64_t token,
                  SequenceNumber seq, std::function<void(Status)> done,
                  trace::Ctx ctx);
  /// Merges vblock's data+log into a fresh block; frees both originals.
  /// Performs a switch merge when the log is a perfect sequential image.
  void MergeVBlock(std::uint32_t lun, std::uint64_t vblock,
                   std::function<void(Status)> done);
  /// Picks the log block to evict when the pool is exhausted.
  std::size_t PickLogVictim(const LunState& st) const;

  ssd::Controller* controller_;
  std::uint64_t user_vblocks_;
  std::uint64_t user_pages_;
  std::vector<VBlockEntry> map_;
  std::vector<LunState> luns_;
  WearLeveler wear_leveler_;
  SequenceNumber next_seq_ = 1;
  Counters counters_;
};

}  // namespace postblock::ftl

#endif  // POSTBLOCK_FTL_HYBRID_FTL_H_
