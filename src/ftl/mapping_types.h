#ifndef POSTBLOCK_FTL_MAPPING_TYPES_H_
#define POSTBLOCK_FTL_MAPPING_TYPES_H_

#include <cstdint>

#include "common/types.h"
#include "flash/address.h"

namespace postblock::ftl {

/// One page-mapping entry: where an LBA currently lives, and the
/// sequence number of the last applied operation on that LBA (write or
/// trim). Sequence numbers order concurrent in-flight operations so that
/// out-of-order completions across LUNs never resurrect stale data.
struct MapEntry {
  flash::Ppa ppa;
  SequenceNumber seq = 0;
  bool mapped = false;
  /// The data at `ppa` was lost (uncorrectable ECC survived the whole
  /// retry ladder, typically during GC relocation) and the physical
  /// page may since have been erased and reused. Reads of a poisoned
  /// LBA return DataLoss deterministically — never stale data, never a
  /// different LBA's data. A fresh host write or trim clears the
  /// poison.
  bool poisoned = false;
};

/// Metadata the GC / wear-leveling policies see for each block.
struct BlockMeta {
  flash::BlockAddr addr;
  std::uint32_t valid_pages = 0;
  std::uint32_t erase_count = 0;
  SimTime last_write = 0;
};

}  // namespace postblock::ftl

#endif  // POSTBLOCK_FTL_MAPPING_TYPES_H_
