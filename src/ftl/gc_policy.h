#ifndef POSTBLOCK_FTL_GC_POLICY_H_
#define POSTBLOCK_FTL_GC_POLICY_H_

#include <memory>
#include <optional>
#include <vector>

#include "common/types.h"
#include "ftl/mapping_types.h"
#include "ssd/config.h"

namespace postblock::ftl {

/// Victim selection for garbage collection. Candidates are closed
/// (no in-flight programs), non-free, non-bad blocks of one LUN.
class GcPolicy {
 public:
  virtual ~GcPolicy() = default;

  /// Picks the candidate to reclaim, or nullopt if collecting any of
  /// them would be pointless (e.g. all fully valid).
  virtual std::optional<flash::BlockAddr> PickVictim(
      const std::vector<BlockMeta>& candidates, SimTime now,
      std::uint32_t pages_per_block) = 0;

  static std::unique_ptr<GcPolicy> Create(ssd::GcPolicyKind kind);
};

/// Fewest valid pages wins — minimizes immediate page moves.
class GreedyGcPolicy : public GcPolicy {
 public:
  std::optional<flash::BlockAddr> PickVictim(
      const std::vector<BlockMeta>& candidates, SimTime now,
      std::uint32_t pages_per_block) override;
};

/// Rosenblum/LFS cost-benefit: maximize age * (1-u) / (1+u); prefers
/// cold, mostly-invalid blocks and resists collecting hot blocks that
/// are still shedding validity.
class CostBenefitGcPolicy : public GcPolicy {
 public:
  std::optional<flash::BlockAddr> PickVictim(
      const std::vector<BlockMeta>& candidates, SimTime now,
      std::uint32_t pages_per_block) override;
};

}  // namespace postblock::ftl

#endif  // POSTBLOCK_FTL_GC_POLICY_H_
