#ifndef POSTBLOCK_FTL_GC_POLICY_H_
#define POSTBLOCK_FTL_GC_POLICY_H_

#include <memory>
#include <optional>
#include <vector>

#include "common/types.h"
#include "ftl/mapping_types.h"
#include "ssd/config.h"
#include "trace/trace.h"
#include "trace/tracer.h"

namespace postblock::ftl {

/// Victim selection for garbage collection. Candidates are closed
/// (no in-flight programs), non-free, non-bad blocks of one LUN.
class GcPolicy {
 public:
  virtual ~GcPolicy() = default;

  /// Picks the candidate to reclaim, or nullopt if collecting any of
  /// them would be pointless (e.g. all fully valid).
  virtual std::optional<flash::BlockAddr> PickVictim(
      const std::vector<BlockMeta>& candidates, SimTime now,
      std::uint32_t pages_per_block) = 0;

  /// Victim decisions become zero-duration markers on `track` (arg =
  /// valid pages to move << 32 | victim block), so a trace shows *why*
  /// GC cost appeared where it did.
  void set_tracer(trace::Tracer* tracer, std::uint32_t track) {
    tracer_ = tracer;
    track_ = track;
  }

  static std::unique_ptr<GcPolicy> Create(ssd::GcPolicyKind kind);

 protected:
  void MarkVictimPick(SimTime now, const BlockMeta& victim) {
    if (tracer_ == nullptr || !tracer_->enabled()) return;
    tracer_->Mark(trace::Stage::kGc, trace::Origin::kGc, 0, track_, now,
                  (static_cast<std::uint64_t>(victim.valid_pages) << 32) |
                      victim.addr.block);
  }

 private:
  trace::Tracer* tracer_ = nullptr;
  std::uint32_t track_ = 0;
};

/// Fewest valid pages wins — minimizes immediate page moves.
class GreedyGcPolicy : public GcPolicy {
 public:
  std::optional<flash::BlockAddr> PickVictim(
      const std::vector<BlockMeta>& candidates, SimTime now,
      std::uint32_t pages_per_block) override;
};

/// Rosenblum/LFS cost-benefit: maximize age * (1-u) / (1+u); prefers
/// cold, mostly-invalid blocks and resists collecting hot blocks that
/// are still shedding validity.
class CostBenefitGcPolicy : public GcPolicy {
 public:
  std::optional<flash::BlockAddr> PickVictim(
      const std::vector<BlockMeta>& candidates, SimTime now,
      std::uint32_t pages_per_block) override;
};

}  // namespace postblock::ftl

#endif  // POSTBLOCK_FTL_GC_POLICY_H_
