#ifndef POSTBLOCK_FTL_WEAR_LEVELER_H_
#define POSTBLOCK_FTL_WEAR_LEVELER_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "ftl/mapping_types.h"
#include "ssd/config.h"

namespace postblock::ftl {

/// Wear-leveling decisions (Figure 2's third controller module).
/// Dynamic WL biases free-block allocation toward the least-worn block;
/// static WL occasionally migrates cold (long-valid) data into worn
/// blocks so their erase budget gets spent on data that stops moving.
class WearLeveler {
 public:
  explicit WearLeveler(const ssd::WearLevelConfig& config)
      : config_(config) {}

  const ssd::WearLevelConfig& config() const { return config_; }

  /// Picks which free block to hand out next, given each free block's
  /// erase count. Dynamic WL picks min-wear (hot incoming data should
  /// land on young blocks); a static-WL migration passes
  /// `prefer_worn=true` to land *cold* data on the most-worn block —
  /// that is what retires the worn block's erase budget. Without
  /// dynamic WL: FIFO (position 0).
  std::size_t SelectFreeBlock(const std::vector<std::uint32_t>& free_block_wear,
                              bool prefer_worn = false) const;

  /// True if the erase-count spread warrants a static migration.
  bool ShouldMigrate(std::uint32_t min_erase,
                     std::uint32_t max_erase) const;

  /// Picks the cold-migration source: the fully/mostly valid block with
  /// the lowest erase count (its data is cold and pinning a young
  /// block). Returns nullopt if no candidate qualifies.
  std::optional<flash::BlockAddr> PickColdBlock(
      const std::vector<BlockMeta>& candidates,
      std::uint32_t pages_per_block) const;

 private:
  ssd::WearLevelConfig config_;
};

}  // namespace postblock::ftl

#endif  // POSTBLOCK_FTL_WEAR_LEVELER_H_
