#include "ftl/wear_leveler.h"

namespace postblock::ftl {

std::size_t WearLeveler::SelectFreeBlock(
    const std::vector<std::uint32_t>& free_block_wear,
    bool prefer_worn) const {
  if (free_block_wear.empty()) return 0;
  if (prefer_worn) {
    std::size_t best = 0;
    for (std::size_t i = 1; i < free_block_wear.size(); ++i) {
      if (free_block_wear[i] > free_block_wear[best]) best = i;
    }
    return best;
  }
  if (!config_.dynamic) return 0;
  std::size_t best = 0;
  for (std::size_t i = 1; i < free_block_wear.size(); ++i) {
    if (free_block_wear[i] < free_block_wear[best]) best = i;
  }
  return best;
}

bool WearLeveler::ShouldMigrate(std::uint32_t min_erase,
                                std::uint32_t max_erase) const {
  return config_.static_enabled &&
         max_erase - min_erase > config_.spread_threshold;
}

std::optional<flash::BlockAddr> WearLeveler::PickColdBlock(
    const std::vector<BlockMeta>& candidates,
    std::uint32_t pages_per_block) const {
  const BlockMeta* best = nullptr;
  for (const auto& c : candidates) {
    // Cold = holding mostly valid data; prefer the least-worn.
    if (c.valid_pages < pages_per_block / 2) continue;
    if (best == nullptr || c.erase_count < best->erase_count) best = &c;
  }
  if (best == nullptr) return std::nullopt;
  return best->addr;
}

}  // namespace postblock::ftl
