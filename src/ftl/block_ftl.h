#ifndef POSTBLOCK_FTL_BLOCK_FTL_H_
#define POSTBLOCK_FTL_BLOCK_FTL_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "common/stats.h"
#include "ftl/ftl.h"
#include "ftl/wear_leveler.h"
#include "ssd/controller.h"

namespace postblock::ftl {

/// Block-level mapping FTL — the pre-2009 SSD design the paper blames
/// for the "random writes are extremely costly" myth. An LBA's page
/// offset within its logical block is fixed; only whole blocks remap.
///
///   - Sequential writes append into the mapped physical block: cheap.
///   - Overwrites and backwards writes force a *merge*: copy every live
///     page of the block to a fresh block, erase the old one. One 4 KiB
///     random write can cost ~pages_per_block reads+programs + an erase.
///
/// Operations on one LUN run serially through a firmware queue (early
/// controllers had no per-LUN pipelining), so merges also block
/// unrelated reads on the same LUN.
class BlockFtl : public Ftl {
 public:
  explicit BlockFtl(ssd::Controller* controller);

  BlockFtl(const BlockFtl&) = delete;
  BlockFtl& operator=(const BlockFtl&) = delete;

  void Write(Lba lba, std::uint64_t token, WriteCallback cb,
             trace::Ctx ctx = {}) override;
  void Read(Lba lba, ReadCallback cb, trace::Ctx ctx = {}) override;
  void Trim(Lba lba, WriteCallback cb, trace::Ctx ctx = {}) override;
  std::uint64_t user_pages() const override { return user_pages_; }
  const Counters& counters() const override { return counters_; }
  double WriteAmplification() const override;

 private:
  struct VBlockEntry {
    flash::BlockAddr phys;
    bool mapped = false;
  };
  struct LunState {
    std::deque<std::function<void(std::function<void()>)>> ops;
    bool busy = false;
    std::vector<flash::BlockAddr> free_blocks;
  };

  // Firmware op queue: one op at a time per LUN.
  void EnqueueOp(std::uint32_t lun,
                 std::function<void(std::function<void()>)> op);
  void RunNext(std::uint32_t lun);

  std::uint32_t LunOf(std::uint64_t vblock) const {
    return static_cast<std::uint32_t>(vblock % luns_.size());
  }
  /// Pops the wear-leveler's pick from the LUN's free list. Returns
  /// false when the list is empty (erase retirement can consume the
  /// over-provisioned spares) — callers must fail the write rather than
  /// index into an empty vector.
  bool TakeFreeBlock(std::uint32_t lun, flash::BlockAddr* out);

  // The merge engine: builds a fresh physical block containing the old
  // block's live pages plus (optionally) one new page at `new_off`.
  void Merge(std::uint32_t lun, std::uint64_t vblock,
             std::uint64_t new_off_or_npos, std::uint64_t token,
             SequenceNumber seq, std::function<void(Status)> done,
             trace::Ctx ctx);

  ssd::Controller* controller_;
  std::uint64_t user_vblocks_;
  std::uint64_t user_pages_;
  std::vector<VBlockEntry> map_;
  std::vector<LunState> luns_;
  WearLeveler wear_leveler_;
  SequenceNumber next_seq_ = 1;
  Counters counters_;

  static constexpr std::uint64_t kNoNewPage = ~0ull;
};

}  // namespace postblock::ftl

#endif  // POSTBLOCK_FTL_BLOCK_FTL_H_
