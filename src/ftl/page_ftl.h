#ifndef POSTBLOCK_FTL_PAGE_FTL_H_
#define POSTBLOCK_FTL_PAGE_FTL_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "common/stats.h"
#include "ftl/ftl.h"
#include "ftl/gc_policy.h"
#include "ftl/mapping_types.h"
#include "ftl/placement.h"
#include "ftl/wear_leveler.h"
#include "ssd/controller.h"

namespace postblock::ftl {

/// Full page-level mapping FTL — the design the paper credits for
/// making random writes cheap on modern SSDs (Myth 2): any write can be
/// placed on any LUN, so the scheduler stripes writes across channels
/// regardless of the LBA pattern.
///
/// Implements the complete Figure 2 controller: scheduling & mapping,
/// garbage collection (greedy or cost-benefit victims, per-LUN, with
/// relocation traffic that interferes with host IO), wear leveling
/// (dynamic allocation bias + optional static cold-data migration), bad
/// block retirement, TRIM, multi-page atomic write groups with an
/// on-flash commit marker, and OOB-scan crash recovery (PowerCycle).
class PageFtl : public Ftl {
 public:
  /// `logical_pages` overrides the host-visible page count (used by
  /// Dftl to extend the space with translation pages); 0 = derive from
  /// config.UserPages().
  PageFtl(ssd::Controller* controller, std::uint64_t logical_pages = 0);
  ~PageFtl() override = default;

  PageFtl(const PageFtl&) = delete;
  PageFtl& operator=(const PageFtl&) = delete;

  // --- Ftl interface -----------------------------------------------
  void Write(Lba lba, std::uint64_t token, WriteCallback cb,
             trace::Ctx ctx = {}) override;
  void Read(Lba lba, ReadCallback cb, trace::Ctx ctx = {}) override;
  void Trim(Lba lba, WriteCallback cb, trace::Ctx ctx = {}) override;
  std::uint64_t user_pages() const override { return logical_pages_; }
  const Counters& counters() const override { return counters_; }
  double WriteAmplification() const override;
  /// A full page map pays controller DRAM for every logical page
  /// whether or not it holds data — 8 B/entry, the figure the paper's
  /// mapping-table argument (and E8's table) uses.
  std::uint64_t MappingTableBytes() const override {
    return map_.size() * 8;
  }
  void RegisterMetrics(metrics::MetricRegistry* m) override;

  // --- Extended (vision) interface ---------------------------------
  /// Atomically writes a set of pages: either all mappings flip (after
  /// an on-flash commit marker is durable) or none survive recovery.
  void WriteAtomic(std::vector<std::pair<Lba, std::uint64_t>> pages,
                   WriteCallback cb, trace::Ctx ctx = {});

  /// Called when GC/WL relocates a live page: (lba, old ppa, new ppa).
  /// Used by the nameless-write layer so host-held names track moves —
  /// the paper's "communicating peers".
  using MigrationListener =
      std::function<void(Lba, flash::Ppa, flash::Ppa)>;
  void SetMigrationListener(MigrationListener listener) {
    migration_listener_ = std::move(listener);
  }

  /// Current physical location of a mapped LBA (nameless reads, tests).
  std::optional<flash::Ppa> Locate(Lba lba) const;

  /// Simulates power loss + reboot: volatile state (mapping, queues,
  /// in-flight completions) is dropped and rebuilt by scanning page OOB
  /// areas. Uncommitted atomic groups are discarded. Note: TRIMs are not
  /// persisted, so trimmed-but-not-erased data reappears (a real
  /// behaviour of early TRIM implementations; documented in DESIGN.md).
  Status PowerCycle();

  /// Free blocks currently available on a LUN (tests/benches).
  std::size_t FreeBlocks(std::uint32_t lun) const {
    return luns_[lun].free_blocks.size();
  }

  ssd::Controller* controller() { return controller_; }

 private:
  struct PendingWrite {
    Lba lba = 0;
    std::uint64_t token = 0;
    SequenceNumber seq = 0;
    std::uint64_t group = 0;  // atomic group id, 0 = none
    bool is_relocate = false;
    bool is_commit_marker = false;
    // For relocations: the copy is only adopted if the mapping still
    // points at (expected_old, expected seq == seq).
    flash::Ppa expected_old;
    std::uint64_t epoch = 0;
    WriteCallback cb;  // may be null for relocations
    trace::Ctx ctx;
    SimTime enq_t = 0;  // when the write entered the FTL queue
  };

  struct LunState {
    std::deque<PendingWrite> host_queue;
    std::deque<PendingWrite> gc_queue;  // relocations, serviced first
    // Host and GC streams append into *separate* active blocks: GC's
    // relocation budget is then bounded by its own block and can never
    // be eaten by interleaved host writes (deadlock-free by
    // construction; also the classic hot/cold separation).
    bool has_active = false;
    flash::BlockAddr active;
    std::uint32_t next_page = 0;
    bool has_gc_active = false;
    flash::BlockAddr gc_active;
    std::uint32_t gc_next_page = 0;
    std::vector<flash::BlockAddr> free_blocks;
    bool gc_running = false;
    /// Current collection is a static-WL migration: its relocation
    /// stream targets the most-worn free block, not the least.
    bool collecting_wl = false;
    /// GC erases since the last WL migration (WL pacing).
    std::uint32_t erases_since_wl = 0;
    bool stalled = false;  // host queue blocked on free space
    /// Blocks past the correctable-read threshold, awaiting refresh
    /// (relocate-and-erase before the errors go uncorrectable).
    std::deque<flash::BlockAddr> refresh_queue;
    /// Trace identity of the collection in progress (gc_running): all
    /// its relocations and the final erase carry gc_ctx, so the victim
    /// ops show up GC-tagged on the flash tracks; the whole collection
    /// is recorded as one kGc span [gc_start, erase done).
    trace::Ctx gc_ctx;
    SimTime gc_start = 0;
  };

  struct AtomicGroup {
    std::vector<std::pair<Lba, SequenceNumber>> pages;  // lba -> seq
    std::vector<flash::Ppa> ppas;                       // filled on program
    std::size_t programmed = 0;
    bool failed = false;
    WriteCallback cb;
  };

  /// A committed atomic group whose pages are still on flash. The commit
  /// marker page must outlive every tagged page (recovery drops group
  /// pages without a marker), so the marker stays valid — and gets
  /// relocated by GC like data — until `count` reaches zero.
  struct LiveGroup {
    std::uint32_t count = 0;
    flash::Ppa marker;
  };

  // Write pipeline.
  void EnqueueWrite(PendingWrite w);
  bool LunWedged(std::uint32_t lun) const;
  void PumpLun(std::uint32_t lun);
  bool TakeFreeBlock(std::uint32_t lun, bool for_gc);
  void OnProgramDone(std::uint32_t lun, PendingWrite w, flash::Ppa ppa,
                     Status st);
  void ApplyMapping(const PendingWrite& w, const flash::Ppa& ppa);
  /// MarkInvalid plus atomic-group live-count bookkeeping.
  void InvalidatePage(const flash::Ppa& ppa);

  // Reliability.
  /// Poisons the mapping of whatever LBA currently lives at `ppa` (OOB
  /// reverse lookup — the spare area is separately protected and
  /// survives a payload loss). No-op if the mapping moved on.
  void PoisonLostPage(const flash::Ppa& ppa);
  void PoisonMapping(Lba lba, const flash::Ppa& ppa, SequenceNumber seq);
  /// Controller refresh listener: queue `block` for relocate-and-erase.
  void OnRefreshRequest(const flash::BlockAddr& block);
  /// Pops eligible refresh requests; true if a collection was started.
  bool MaybeStartRefresh(std::uint32_t lun);

  // Read pipeline.
  void ReadAttempt(Lba lba, int tries, ReadCallback cb, trace::Ctx ctx);

  /// Schedules an immediate completion that dies with the current epoch
  /// (so a power cut truly silences every pending callback).
  template <typename Cb, typename V>
  void PostGuarded(Cb cb, V value) {
    const std::uint64_t epoch = epoch_;
    controller_->sim()->Schedule(
        0, [this, epoch, cb = std::move(cb), value = std::move(value)]() {
          if (epoch != epoch_) return;
          cb(std::move(value));
        });
  }

  // Garbage collection / wear leveling.
  void MaybeStartGc(std::uint32_t lun);
  void MaybeStartStaticWl(std::uint32_t lun);
  void CollectBlock(std::uint32_t lun, flash::BlockAddr victim, bool is_wl);
  void RelocatePage(std::uint32_t lun, flash::Ppa ppa, bool is_wl,
                    std::function<void()> done);
  void FinishCollect(std::uint32_t lun, flash::BlockAddr victim, bool is_wl);
  std::vector<BlockMeta> GcCandidates(std::uint32_t lun) const;
  bool GcFeasible(std::uint32_t lun) const;

  // Atomic groups.
  void OnAtomicPageProgrammed(std::uint64_t group, Lba lba,
                              SequenceNumber seq, flash::Ppa ppa,
                              Status st);
  void CommitAtomicGroup(std::uint64_t group);

  // Block bookkeeping helpers.
  std::uint64_t FlatBlock(const flash::BlockAddr& a) const {
    return a.Flatten(geom());
  }
  const flash::Geometry& geom() const {
    return controller_->config().geometry;
  }
  std::uint32_t GlobalLun(const flash::BlockAddr& a) const {
    return a.GlobalLun(geom());
  }

  ssd::Controller* controller_;
  std::uint64_t logical_pages_;
  std::vector<MapEntry> map_;
  SequenceNumber next_seq_ = 1;
  std::uint64_t next_group_ = 1;
  std::uint64_t epoch_ = 0;  // bumped by PowerCycle to drop completions

  std::vector<LunState> luns_;
  // Per flat-block: programs in flight (blocks GC victim selection),
  // last write time (cost-benefit ages), free/active flags.
  std::vector<std::uint32_t> in_flight_;
  std::vector<SimTime> last_write_;
  std::vector<bool> is_free_;
  std::vector<bool> is_active_;

  std::map<std::uint64_t, AtomicGroup> atomic_groups_;   // in flight
  std::map<std::uint64_t, LiveGroup> atomic_live_;       // committed

  std::unique_ptr<WritePlacement> placement_;
  std::unique_ptr<GcPolicy> gc_policy_;
  WearLeveler wear_leveler_;
  MigrationListener migration_listener_;
  Counters counters_;

  trace::Tracer* tracer_ = nullptr;          // == controller's tracer
  std::vector<std::uint32_t> ftl_tracks_;    // "ftl-lun-N" per LUN
};

}  // namespace postblock::ftl

#endif  // POSTBLOCK_FTL_PAGE_FTL_H_
