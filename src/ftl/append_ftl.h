#ifndef POSTBLOCK_FTL_APPEND_FTL_H_
#define POSTBLOCK_FTL_APPEND_FTL_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "common/stats.h"
#include "ftl/ftl.h"
#include "ssd/controller.h"

namespace postblock::ftl {

/// The post-block "vision" FTL (FtlKind::kVisionAppend): physical
/// append with device-issued names, the device the paper's Section 3
/// argues for. The host owns placement and liveness; the device owns
/// the media rules it alone can see (erase-before-write, sequential
/// programming, wear, decay):
///
///   - No L2P. A name *is* the flattened physical page address at
///     program time; translation state is per-block counters — the
///     mapping-table DRAM crossover against a page-map FTL.
///   - Per-region append points: a host stream maps to region
///     (stream % append_regions); each region fills its own active
///     block, taking free blocks round-robin across LUNs so streams
///     keep channel parallelism without sharing erase blocks.
///   - No device-side GC. Liveness is declared by the host through
///     nameless-free; a block whose last live page dies is erased and
///     recycled (write amplification 1.0 by construction).
///   - Cooperative migration, not hidden cleaning: when host frees
///     fragment the array below the free-block watermark — or a block
///     decays past the correctable-read threshold — the device
///     relocates the live pages of the deadest block, *telling the
///     host about every move* (old name -> new name), then erases it.
///     The device never decides data is dead; it only compacts what
///     the host already killed, in the open.
///
/// The LBA vocabulary (Write/Read/Trim) completes with a typed
/// Unimplemented: this device has no logical address space to offer,
/// and silently degrading is exactly the interface rot the paper
/// indicts.
class AppendFtl : public Ftl {
 public:
  explicit AppendFtl(ssd::Controller* controller);
  ~AppendFtl() override = default;

  AppendFtl(const AppendFtl&) = delete;
  AppendFtl& operator=(const AppendFtl&) = delete;

  // --- Ftl interface (the block vocabulary — refused, typed) --------
  void Write(Lba lba, std::uint64_t token, WriteCallback cb,
             trace::Ctx ctx = {}) override;
  void Read(Lba lba, ReadCallback cb, trace::Ctx ctx = {}) override;
  void Trim(Lba lba, WriteCallback cb, trace::Ctx ctx = {}) override;
  std::uint64_t user_pages() const override;
  const Counters& counters() const override { return counters_; }
  double WriteAmplification() const override;
  std::uint64_t MappingTableBytes() const override;
  void RegisterMetrics(metrics::MetricRegistry* m) override;

  // --- The nameless vocabulary -------------------------------------
  using NameCallback = std::function<void(StatusOr<std::uint64_t>)>;

  /// Appends one page into `stream`'s region. The callback delivers the
  /// device-issued name. `owner`/`owner_epoch` are persisted in the
  /// page's OOB spare area (the de-indirection back-pointer) and come
  /// back from LiveNames() after a crash; pass owner = kNamelessLba for
  /// an unstamped page.
  void NamelessWrite(std::uint64_t token, std::uint64_t owner,
                     std::uint64_t owner_epoch, std::uint8_t stream,
                     NameCallback cb, trace::Ctx ctx = {});

  /// Reads a page by name. NotFound if the name is stale (freed, or
  /// migrated — the host's migration handler already has the new name).
  void NamelessRead(std::uint64_t name, ReadCallback cb,
                    trace::Ctx ctx = {});

  /// Declares a named page dead. The page's block is erased and
  /// recycled once its last live page dies.
  void NamelessFree(std::uint64_t name, WriteCallback cb,
                    trace::Ctx ctx = {});

  /// (old name, new name) — fired synchronously as each cooperative
  /// migration / refresh relocation lands.
  using MigrationListener =
      std::function<void(std::uint64_t, std::uint64_t)>;
  void SetMigrationListener(MigrationListener listener) {
    migration_listener_ = std::move(listener);
  }

  /// One live host-managed page, as the post-crash control-path scan
  /// reports it: its current name plus the OOB owner stamp.
  struct LiveName {
    std::uint64_t name = 0;
    Lba owner = 0;
    std::uint64_t owner_epoch = 0;
  };
  /// Control-path enumeration of every live page (bounded, synchronous,
  /// un-timed — the recovery analogue of PageFtl's OOB rescan; see
  /// DESIGN.md §4j for why this lives on the admin path).
  std::vector<LiveName> LiveNames() const;

  /// Power loss + reboot: in-flight programs die, append points and
  /// queued writes are dropped, per-block state is rebuilt from the
  /// array (write points and validity persist — the block-summary
  /// durability real host-managed devices provide). Fully-dead blocks
  /// found by the rebuild are queued for erase.
  Status PowerCycle();

  // --- Introspection (tests/benches) -------------------------------
  std::uint64_t live_pages() const { return live_pages_; }
  std::size_t FreeBlocksTotal() const;
  std::uint32_t regions() const {
    return static_cast<std::uint32_t>(regions_.size() - 1);
  }
  ssd::Controller* controller() { return controller_; }

 private:
  struct Region {
    bool has_active = false;
    flash::BlockAddr active;
    std::uint32_t next_page = 0;
  };

  struct PendingAppend {
    std::uint64_t token = 0;
    Lba owner = 0;
    std::uint64_t owner_epoch = 0;
    std::uint32_t region = 0;
    NameCallback cb;
    trace::Ctx ctx;
  };

  /// The hidden extra region migration/refresh relocations append into
  /// (never shared with a host stream).
  std::uint32_t MigrationRegion() const {
    return static_cast<std::uint32_t>(regions_.size() - 1);
  }

  /// Ensures `region` has an active block with a free page; false if
  /// the array is out of free blocks. Host regions never take the last
  /// free block — it is reserved as a migration destination, so the
  /// compactor can always make forward progress instead of deadlocking
  /// against the writes that are waiting on it.
  bool EnsureActive(std::uint32_t region, bool for_migration = false);
  /// Issues one append into `region` (active block must have room).
  void IssueAppend(PendingAppend a);
  /// Re-admits queued appends after blocks were freed.
  void PumpQueue();

  void EraseIfDead(const flash::BlockAddr& block);
  void OnRefreshRequest(const flash::BlockAddr& block);
  /// Starts cooperative migration if free space is below the watermark
  /// and a victim exists.
  void MaybeStartMigration();
  /// Relocates the live pages of `victim` one at a time (each move
  /// fires the migration listener), then erases it.
  void CollectVictim(flash::BlockAddr victim);
  void RelocateNext(flash::BlockAddr victim, std::uint32_t page);
  void FinishVictim(flash::BlockAddr victim);
  /// Queued appends wait only while something can still free space
  /// (a migration run or a reclaim erase in flight). Once neither is
  /// true the device is genuinely full, and the host — the owner of
  /// liveness — is told so with ResourceExhausted instead of a write
  /// that never completes.
  void FailQueueIfStuck();

  bool BlockQuiet(std::uint64_t flat) const {
    return in_flight_[flat] == 0 && !is_active_[flat];
  }

  template <typename Cb, typename V>
  void PostGuarded(Cb cb, V value) {
    const std::uint64_t epoch = epoch_;
    controller_->sim()->Schedule(
        0, [this, epoch, cb = std::move(cb), value = std::move(value)]() {
          if (epoch != epoch_) return;
          cb(std::move(value));
        });
  }

  const flash::Geometry& geom() const {
    return controller_->config().geometry;
  }
  std::uint64_t FlatBlock(const flash::BlockAddr& a) const {
    return a.Flatten(geom());
  }

  ssd::Controller* controller_;
  std::uint64_t epoch_ = 0;
  SequenceNumber next_seq_ = 1;

  /// regions_[0..append_regions) serve host streams; the last entry is
  /// the migration region.
  std::vector<Region> regions_;
  /// Free blocks per global LUN, plus the round-robin cursor regions
  /// draw from (keeps streams striped across channels).
  std::vector<std::vector<flash::BlockAddr>> free_;
  std::uint32_t next_lun_ = 0;

  // Per flat-block state. live/in-flight counts gate erase; the sum of
  // these vectors *is* the device's translation state (MappingTableBytes).
  std::vector<std::uint32_t> live_count_;
  std::vector<std::uint32_t> in_flight_;
  std::vector<bool> is_free_;
  std::vector<bool> is_active_;
  std::uint64_t live_pages_ = 0;

  std::deque<PendingAppend> queue_;  // appends waiting on free blocks

  bool migrating_ = false;
  std::size_t pending_reclaims_ = 0;  // EraseIfDead erases in flight
  std::deque<flash::BlockAddr> refresh_queue_;

  MigrationListener migration_listener_;
  Counters counters_;
};

}  // namespace postblock::ftl

#endif  // POSTBLOCK_FTL_APPEND_FTL_H_
