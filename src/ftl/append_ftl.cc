#include "ftl/append_ftl.h"

#include <algorithm>
#include <utility>

#include "flash/page_store.h"

namespace postblock::ftl {

namespace {
// Names are (generation, flat PPA): the low 40 bits address any page of
// any geometry this repo simulates; the high bits carry the block's
// erase count at program time. A recycled block bumps its erase count,
// so every name issued before the erase goes stale *by construction* —
// a dangling host name can never alias new data, only read NotFound.
constexpr std::uint64_t kPpaBits = 40;
constexpr std::uint64_t kPpaMask = (1ull << kPpaBits) - 1;

constexpr trace::Ctx kMigrateCtx{0, 0, trace::Origin::kGc};
}  // namespace

AppendFtl::AppendFtl(ssd::Controller* controller)
    : controller_(controller),
      regions_(controller->config().append_regions + 1),
      free_(controller->config().geometry.luns()),
      live_count_(controller->config().geometry.total_blocks(), 0),
      in_flight_(controller->config().geometry.total_blocks(), 0),
      is_free_(controller->config().geometry.total_blocks(), true),
      is_active_(controller->config().geometry.total_blocks(), false) {
  const auto& g = geom();
  for (std::uint32_t l = 0; l < g.luns(); ++l) {
    const std::uint32_t channel = l / g.luns_per_channel;
    const std::uint32_t lun = l % g.luns_per_channel;
    for (std::uint32_t plane = 0; plane < g.planes_per_lun; ++plane) {
      for (std::uint32_t block = 0; block < g.blocks_per_plane; ++block) {
        free_[l].push_back({channel, lun, plane, block});
      }
    }
  }
  controller_->SetRefreshListener(
      [this](const flash::BlockAddr& block) { OnRefreshRequest(block); });
}

std::uint64_t AppendFtl::user_pages() const {
  return controller_->config().UserPages();
}

double AppendFtl::WriteAmplification() const {
  const std::uint64_t host = counters_.Get("host_pages_accepted");
  if (host == 0) return 0.0;
  const std::uint64_t programmed =
      controller_->counters().Get("pages_programmed");
  return static_cast<double>(programmed) / static_cast<double>(host);
}

std::uint64_t AppendFtl::MappingTableBytes() const {
  // The whole translation state: one live/in-flight counter pair per
  // block plus an append point per region. No per-page anything.
  return live_count_.size() * 4 + regions_.size() * 16;
}

void AppendFtl::RegisterMetrics(metrics::MetricRegistry* m) {
  Ftl::RegisterMetrics(m);
  m->AddPolledCounter("ftl.migrate_page_moves", [this] {
    return counters_.Get("migrate_page_moves");
  });
  m->AddPolledCounter("ftl.reclaim_erases", [this] {
    return counters_.Get("reclaim_erases");
  });
  m->AddGauge("ftl.free_blocks",
              [this] { return static_cast<double>(FreeBlocksTotal()); });
  m->AddGauge("ftl.live_pages",
              [this] { return static_cast<double>(live_pages_); });
  m->AddGauge("ftl.mapping_table_bytes", [this] {
    return static_cast<double>(MappingTableBytes());
  });
}

std::size_t AppendFtl::FreeBlocksTotal() const {
  std::size_t total = 0;
  for (const auto& f : free_) total += f.size();
  return total;
}

// ---------------------------------------------------------------------
// The block vocabulary: refused, typed.
// ---------------------------------------------------------------------

void AppendFtl::Write(Lba, std::uint64_t, WriteCallback cb, trace::Ctx) {
  counters_.Increment("lba_commands_refused");
  PostGuarded(std::move(cb),
              Status::Unimplemented(
                  "vision-append device has no logical address space"));
}

void AppendFtl::Read(Lba, ReadCallback cb, trace::Ctx) {
  counters_.Increment("lba_commands_refused");
  PostGuarded(std::move(cb),
              StatusOr<std::uint64_t>(Status::Unimplemented(
                  "vision-append device has no logical address space")));
}

void AppendFtl::Trim(Lba, WriteCallback cb, trace::Ctx) {
  counters_.Increment("lba_commands_refused");
  PostGuarded(std::move(cb),
              Status::Unimplemented(
                  "vision-append device has no logical address space"));
}

// ---------------------------------------------------------------------
// Append path
// ---------------------------------------------------------------------

bool AppendFtl::EnsureActive(std::uint32_t region, bool for_migration) {
  Region& r = regions_[region];
  if (r.has_active && r.next_page < geom().pages_per_block) return true;
  if (r.has_active) {
    // Active block filled up: release it (it may already be fully dead
    // if the host freed faster than it wrote).
    const std::uint64_t flat = FlatBlock(r.active);
    is_active_[flat] = false;
    r.has_active = false;
    EraseIfDead(r.active);
  }
  // The last free block is the migration reserve: handing it to a host
  // stream would leave the compactor with no destination, deadlocked
  // against the very writes queued behind it.
  if (!for_migration && FreeBlocksTotal() <= 1) return false;
  const std::uint32_t luns = static_cast<std::uint32_t>(free_.size());
  for (std::uint32_t i = 0; i < luns; ++i) {
    const std::uint32_t l = (next_lun_ + i) % luns;
    if (free_[l].empty()) continue;
    next_lun_ = (l + 1) % luns;
    r.active = free_[l].back();
    free_[l].pop_back();
    r.next_page = 0;
    r.has_active = true;
    const std::uint64_t flat = FlatBlock(r.active);
    is_free_[flat] = false;
    is_active_[flat] = true;
    MaybeStartMigration();
    return true;
  }
  return false;
}

void AppendFtl::NamelessWrite(std::uint64_t token, std::uint64_t owner,
                              std::uint64_t owner_epoch,
                              std::uint8_t stream, NameCallback cb,
                              trace::Ctx ctx) {
  if (controller_->read_only()) {
    counters_.Increment("writes_rejected_read_only");
    PostGuarded(std::move(cb),
                StatusOr<std::uint64_t>(Status::ResourceExhausted(
                    "device is read-only: bad-block spares exhausted")));
    return;
  }
  counters_.Increment("host_writes");
  PendingAppend a;
  a.token = token;
  a.owner = owner;
  a.owner_epoch = owner_epoch;
  a.region = stream % static_cast<std::uint32_t>(regions_.size() - 1);
  a.cb = std::move(cb);
  a.ctx = ctx;
  if (!queue_.empty() || !EnsureActive(a.region)) {
    // Out of clean blocks (or behind writes that are): wait while
    // reclaim/migration can still free space, else tell the host the
    // truth — *it* owns liveness, so only it can make room.
    queue_.push_back(std::move(a));
    MaybeStartMigration();
    FailQueueIfStuck();
    return;
  }
  IssueAppend(std::move(a));
}

void AppendFtl::IssueAppend(PendingAppend a) {
  Region& r = regions_[a.region];
  flash::Ppa ppa{r.active.channel, r.active.lun, r.active.plane,
                 r.active.block, r.next_page++};
  const std::uint64_t flat = FlatBlock(r.active);
  ++in_flight_[flat];
  counters_.Increment("host_pages_accepted");
  flash::PageData data;
  data.lba = a.owner;
  data.seq = next_seq_++;
  data.token = a.token;
  data.group = a.owner_epoch;
  const std::uint64_t epoch = epoch_;
  controller_->ProgramPage(
      ppa, data,
      [this, epoch, ppa, flat, cb = std::move(a.cb)](Status st) {
        if (epoch != epoch_) return;
        --in_flight_[flat];
        if (!st.ok()) {
          counters_.Increment("append_failures");
          EraseIfDead(ppa.Block());
          cb(std::move(st));
          return;
        }
        ++live_count_[flat];
        ++live_pages_;
        const std::uint64_t gen =
            controller_->flash()->GetBlockInfo(ppa.Block()).erase_count;
        cb((gen << kPpaBits) | ppa.Flatten(geom()));
      },
      a.ctx);
}

void AppendFtl::FailQueueIfStuck() {
  if (migrating_ || pending_reclaims_ > 0) return;
  while (!queue_.empty()) {
    counters_.Increment("writes_rejected_full");
    PostGuarded(std::move(queue_.front().cb),
                StatusOr<std::uint64_t>(Status::ResourceExhausted(
                    "no free blocks: host must free named pages")));
    queue_.pop_front();
  }
}

void AppendFtl::PumpQueue() {
  while (!queue_.empty()) {
    if (!EnsureActive(queue_.front().region)) {
      MaybeStartMigration();
      FailQueueIfStuck();
      return;
    }
    PendingAppend a = std::move(queue_.front());
    queue_.pop_front();
    IssueAppend(std::move(a));
  }
}

// ---------------------------------------------------------------------
// Named reads and frees
// ---------------------------------------------------------------------

void AppendFtl::NamelessRead(std::uint64_t name, ReadCallback cb,
                             trace::Ctx ctx) {
  counters_.Increment("host_reads");
  const std::uint64_t flat = name & kPpaMask;
  if (flat >= geom().total_pages()) {
    PostGuarded(std::move(cb), StatusOr<std::uint64_t>(
                                   Status::NotFound("unknown name")));
    return;
  }
  const flash::Ppa ppa = flash::Ppa::FromFlat(geom(), flat);
  const std::uint64_t gen = name >> kPpaBits;
  if (controller_->flash()->GetBlockInfo(ppa.Block()).erase_count != gen ||
      controller_->flash()->GetPageState(ppa) !=
          flash::PageState::kValid) {
    counters_.Increment("stale_name_reads");
    PostGuarded(std::move(cb),
                StatusOr<std::uint64_t>(Status::NotFound(
                    "stale name: page freed or migrated")));
    return;
  }
  const std::uint64_t epoch = epoch_;
  controller_->ReadPage(
      ppa,
      [this, epoch, cb = std::move(cb)](StatusOr<flash::PageData> res) {
        if (epoch != epoch_) return;
        if (!res.ok()) {
          cb(res.status());
          return;
        }
        cb(res->token);
      },
      ctx);
}

void AppendFtl::NamelessFree(std::uint64_t name, WriteCallback cb,
                             trace::Ctx ctx) {
  (void)ctx;
  const std::uint64_t flat = name & kPpaMask;
  const std::uint64_t gen = name >> kPpaBits;
  if (flat >= geom().total_pages()) {
    PostGuarded(std::move(cb), Status::NotFound("unknown name"));
    return;
  }
  const flash::Ppa ppa = flash::Ppa::FromFlat(geom(), flat);
  if (controller_->flash()->GetBlockInfo(ppa.Block()).erase_count != gen ||
      controller_->flash()->GetPageState(ppa) !=
          flash::PageState::kValid) {
    PostGuarded(std::move(cb),
                Status::NotFound("stale name: page freed or migrated"));
    return;
  }
  counters_.Increment("host_frees");
  (void)controller_->flash()->MarkInvalid(ppa);
  const std::uint64_t flat_block = FlatBlock(ppa.Block());
  --live_count_[flat_block];
  --live_pages_;
  EraseIfDead(ppa.Block());
  PostGuarded(std::move(cb), Status::Ok());
}

void AppendFtl::EraseIfDead(const flash::BlockAddr& block) {
  const std::uint64_t flat = FlatBlock(block);
  if (is_free_[flat] || !BlockQuiet(flat) || live_count_[flat] != 0) {
    return;
  }
  const flash::BlockInfo& bi = controller_->flash()->GetBlockInfo(block);
  if (bi.bad || bi.write_point == 0) return;
  // Host freed the block's last live page: plain reclaim, no data
  // moves — the WA-1.0 path.
  counters_.Increment("reclaim_erases");
  ++in_flight_[flat];  // guards against double-erase / reuse
  ++pending_reclaims_;
  const std::uint64_t epoch = epoch_;
  controller_->EraseBlock(
      block,
      [this, epoch, block, flat](Status st) {
        if (epoch != epoch_) return;
        --in_flight_[flat];
        --pending_reclaims_;
        if (st.ok()) {  // erase failure = block retired below us
          is_free_[flat] = true;
          free_[block.GlobalLun(geom())].push_back(block);
          PumpQueue();
        }
        FailQueueIfStuck();
      },
      kMigrateCtx);
}

// ---------------------------------------------------------------------
// Cooperative migration (and refresh): relocate-and-tell, never hide.
// ---------------------------------------------------------------------

void AppendFtl::OnRefreshRequest(const flash::BlockAddr& block) {
  counters_.Increment("refresh_requests");
  refresh_queue_.push_back(block);
  MaybeStartMigration();
}

void AppendFtl::MaybeStartMigration() {
  if (migrating_) return;
  while (!refresh_queue_.empty()) {
    const flash::BlockAddr block = refresh_queue_.front();
    refresh_queue_.pop_front();
    const std::uint64_t flat = FlatBlock(block);
    if (is_free_[flat] || !BlockQuiet(flat)) continue;
    migrating_ = true;
    counters_.Increment("refresh_runs");
    CollectVictim(block);
    return;
  }
  const double watermark = controller_->config().append_migrate_watermark;
  const std::uint64_t total = geom().total_blocks();
  if (static_cast<double>(FreeBlocksTotal()) >=
      watermark * static_cast<double>(total)) {
    return;
  }
  // Deadest quiet block wins; ties break on the lower flat index so the
  // schedule is worker-count- and hash-order-independent.
  bool found = false;
  std::uint64_t victim_flat = 0;
  std::uint32_t victim_live = 0;
  for (std::uint64_t flat = 0; flat < total; ++flat) {
    if (is_free_[flat] || !BlockQuiet(flat)) continue;
    const flash::BlockAddr addr = flash::BlockAddr::FromFlat(geom(), flat);
    const flash::BlockInfo& bi = controller_->flash()->GetBlockInfo(addr);
    if (bi.bad || bi.write_point == 0) continue;
    if (live_count_[flat] == bi.write_point) continue;  // nothing dead
    if (!found || live_count_[flat] < victim_live) {
      found = true;
      victim_flat = flat;
      victim_live = live_count_[flat];
    }
  }
  if (!found) return;
  migrating_ = true;
  counters_.Increment("migrate_runs");
  CollectVictim(flash::BlockAddr::FromFlat(geom(), victim_flat));
}

void AppendFtl::CollectVictim(flash::BlockAddr victim) {
  // Pin the victim for the whole collection: a host free that kills its
  // last live page mid-migration must not let EraseIfDead recycle it
  // under us (double-erase, then two owners of one block).
  ++in_flight_[FlatBlock(victim)];
  RelocateNext(victim, 0);
}

void AppendFtl::RelocateNext(flash::BlockAddr victim, std::uint32_t page) {
  const auto& g = geom();
  while (page < g.pages_per_block &&
         controller_->flash()->GetPageState(
             {victim.channel, victim.lun, victim.plane, victim.block,
              page}) != flash::PageState::kValid) {
    ++page;
  }
  if (page >= g.pages_per_block) {
    FinishVictim(victim);
    return;
  }
  if (!EnsureActive(MigrationRegion(), /*for_migration=*/true)) {
    // No destination blocks at all: abandon the collection; the block
    // stays intact (we never erase live data).
    counters_.Increment("migrate_aborts");
    migrating_ = false;
    --in_flight_[FlatBlock(victim)];
    EraseIfDead(victim);  // the pin may have deferred a host-driven erase
    FailQueueIfStuck();
    return;
  }
  const flash::Ppa old_ppa{victim.channel, victim.lun, victim.plane,
                           victim.block, page};
  const std::uint64_t old_gen =
      controller_->flash()->GetBlockInfo(victim).erase_count;
  const std::uint64_t old_name =
      (old_gen << kPpaBits) | old_ppa.Flatten(g);
  const std::uint64_t epoch = epoch_;
  controller_->ReadPage(
      old_ppa,
      [this, epoch, victim, page, old_ppa,
       old_name](StatusOr<flash::PageData> res) {
        if (epoch != epoch_) return;
        if (!res.ok()) {
          // The copy is lost to the media. Abort: the block keeps its
          // remaining data and is never erased under a live name.
          counters_.Increment("migrate_read_failures");
          counters_.Increment("migrate_aborts");
          migrating_ = false;
          --in_flight_[FlatBlock(victim)];
          EraseIfDead(victim);
          FailQueueIfStuck();
          return;
        }
        flash::PageData d = *res;
        d.seq = next_seq_++;
        Region& r = regions_[MigrationRegion()];
        const flash::Ppa dst{r.active.channel, r.active.lun,
                             r.active.plane, r.active.block,
                             r.next_page++};
        const std::uint64_t dst_flat = FlatBlock(r.active);
        ++in_flight_[dst_flat];
        controller_->ProgramPage(
            dst, d,
            [this, epoch, victim, page, old_ppa, old_name, dst,
             dst_flat](Status st) {
              if (epoch != epoch_) return;
              --in_flight_[dst_flat];
              if (!st.ok()) {
                counters_.Increment("migrate_aborts");
                migrating_ = false;
                --in_flight_[FlatBlock(victim)];
                EraseIfDead(victim);
                FailQueueIfStuck();
                return;
              }
              ++live_count_[dst_flat];
              (void)controller_->flash()->MarkInvalid(old_ppa);
              --live_count_[FlatBlock(victim)];
              counters_.Increment("migrate_page_moves");
              const std::uint64_t new_gen = controller_->flash()
                                                ->GetBlockInfo(dst.Block())
                                                .erase_count;
              const std::uint64_t new_name =
                  (new_gen << kPpaBits) | dst.Flatten(geom());
              // The peer call the paper asks for: the device moved the
              // page, so it *says so* before the old name can go stale.
              if (migration_listener_) {
                migration_listener_(old_name, new_name);
              }
              RelocateNext(victim, page + 1);
            },
            kMigrateCtx);
      },
      kMigrateCtx);
}

void AppendFtl::FinishVictim(flash::BlockAddr victim) {
  const std::uint64_t flat = FlatBlock(victim);
  counters_.Increment("migrate_erases");
  // The collection pin from CollectVictim carries through the erase and
  // is released by its completion.
  const std::uint64_t epoch = epoch_;
  controller_->EraseBlock(
      victim,
      [this, epoch, victim, flat](Status st) {
        if (epoch != epoch_) return;
        --in_flight_[flat];
        migrating_ = false;
        if (st.ok()) {
          is_free_[flat] = true;
          free_[victim.GlobalLun(geom())].push_back(victim);
        }
        PumpQueue();
        MaybeStartMigration();
        FailQueueIfStuck();
      },
      kMigrateCtx);
}

// ---------------------------------------------------------------------
// Recovery
// ---------------------------------------------------------------------

std::vector<AppendFtl::LiveName> AppendFtl::LiveNames() const {
  std::vector<LiveName> out;
  const auto& g = geom();
  for (std::uint64_t flat = 0; flat < g.total_blocks(); ++flat) {
    const flash::BlockAddr addr = flash::BlockAddr::FromFlat(g, flat);
    const flash::BlockInfo& bi = controller_->flash()->GetBlockInfo(addr);
    if (bi.bad || bi.write_point == 0) continue;
    for (std::uint32_t page = 0; page < bi.write_point; ++page) {
      const flash::Ppa ppa{addr.channel, addr.lun, addr.plane, addr.block,
                           page};
      if (controller_->flash()->GetPageState(ppa) !=
          flash::PageState::kValid) {
        continue;
      }
      auto peek = controller_->flash()->Peek(ppa);
      if (!peek.ok()) continue;
      LiveName ln;
      ln.name = (static_cast<std::uint64_t>(bi.erase_count) << kPpaBits) |
                ppa.Flatten(g);
      ln.owner = peek->lba;
      ln.owner_epoch = peek->group;
      out.push_back(ln);
    }
  }
  return out;
}

Status AppendFtl::PowerCycle() {
  counters_.Increment("power_cycles");
  ++epoch_;
  controller_->PowerCycle();
  queue_.clear();
  refresh_queue_.clear();
  migrating_ = false;
  pending_reclaims_ = 0;
  for (Region& r : regions_) r = Region{};
  next_lun_ = 0;
  for (auto& f : free_) f.clear();
  live_pages_ = 0;
  const auto& g = geom();
  std::vector<flash::BlockAddr> dead;
  for (std::uint64_t flat = 0; flat < g.total_blocks(); ++flat) {
    const flash::BlockAddr addr = flash::BlockAddr::FromFlat(g, flat);
    const flash::BlockInfo& bi = controller_->flash()->GetBlockInfo(addr);
    in_flight_[flat] = 0;
    is_active_[flat] = false;
    live_count_[flat] = 0;
    if (bi.bad) {
      is_free_[flat] = false;
      continue;
    }
    if (bi.write_point == 0) {
      is_free_[flat] = true;
      free_[addr.GlobalLun(g)].push_back(addr);
      continue;
    }
    is_free_[flat] = false;
    std::uint32_t live = 0;
    for (std::uint32_t page = 0; page < bi.write_point; ++page) {
      if (controller_->flash()->GetPageState({addr.channel, addr.lun,
                                              addr.plane, addr.block,
                                              page}) ==
          flash::PageState::kValid) {
        ++live;
      }
    }
    live_count_[flat] = live;
    live_pages_ += live;
    if (live == 0) dead.push_back(addr);
  }
  // Fully-dead survivors (the host freed them; power died before the
  // erase) go back through the normal reclaim path.
  for (const flash::BlockAddr& addr : dead) EraseIfDead(addr);
  return Status::Ok();
}

}  // namespace postblock::ftl
