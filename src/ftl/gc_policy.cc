#include "ftl/gc_policy.h"

namespace postblock::ftl {

std::optional<flash::BlockAddr> GreedyGcPolicy::PickVictim(
    const std::vector<BlockMeta>& candidates, SimTime now,
    std::uint32_t pages_per_block) {
  const BlockMeta* best = nullptr;
  for (const auto& c : candidates) {
    if (c.valid_pages >= pages_per_block) continue;  // nothing to gain
    if (best == nullptr || c.valid_pages < best->valid_pages) best = &c;
  }
  if (best == nullptr) return std::nullopt;
  MarkVictimPick(now, *best);
  return best->addr;
}

std::optional<flash::BlockAddr> CostBenefitGcPolicy::PickVictim(
    const std::vector<BlockMeta>& candidates, SimTime now,
    std::uint32_t pages_per_block) {
  const BlockMeta* best = nullptr;
  double best_score = -1.0;
  for (const auto& c : candidates) {
    if (c.valid_pages >= pages_per_block) continue;
    const double u = static_cast<double>(c.valid_pages) /
                     static_cast<double>(pages_per_block);
    const double age =
        static_cast<double>(now - c.last_write) + 1.0;  // ns, >=1
    const double score = age * (1.0 - u) / (1.0 + u);
    if (score > best_score) {
      best_score = score;
      best = &c;
    }
  }
  if (best == nullptr) return std::nullopt;
  MarkVictimPick(now, *best);
  return best->addr;
}

std::unique_ptr<GcPolicy> GcPolicy::Create(ssd::GcPolicyKind kind) {
  switch (kind) {
    case ssd::GcPolicyKind::kGreedy:
      return std::make_unique<GreedyGcPolicy>();
    case ssd::GcPolicyKind::kCostBenefit:
      return std::make_unique<CostBenefitGcPolicy>();
  }
  return nullptr;
}

}  // namespace postblock::ftl
