#include "ftl/placement.h"

namespace postblock::ftl {

std::uint32_t ChannelStripePlacement::LunForWrite(Lba /*lba*/) {
  const std::uint64_t i = counter_++;
  const std::uint32_t channel =
      static_cast<std::uint32_t>(i % geometry_.channels);
  const std::uint32_t lun_in_channel = static_cast<std::uint32_t>(
      (i / geometry_.channels) % geometry_.luns_per_channel);
  return channel * geometry_.luns_per_channel + lun_in_channel;
}

std::uint32_t LbaStaticPlacement::LunForWrite(Lba lba) {
  const std::uint64_t range = lba / geometry_.pages_per_block;
  return static_cast<std::uint32_t>(range % geometry_.luns());
}

std::unique_ptr<WritePlacement> WritePlacement::Create(
    ssd::PlacementKind kind, const flash::Geometry& geometry) {
  switch (kind) {
    case ssd::PlacementKind::kChannelStripe:
      return std::make_unique<ChannelStripePlacement>(geometry);
    case ssd::PlacementKind::kLbaStatic:
      return std::make_unique<LbaStaticPlacement>(geometry);
  }
  return nullptr;
}

}  // namespace postblock::ftl
