#ifndef POSTBLOCK_FTL_DFTL_H_
#define POSTBLOCK_FTL_DFTL_H_

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/stats.h"
#include "ftl/ftl.h"
#include "ftl/page_ftl.h"
#include "ssd/controller.h"

namespace postblock::ftl {

/// DFTL (Gupta, Kim, Urgaonkar — ASPLOS'09, the paper's reference [10]):
/// full page-level mapping whose table lives on flash, with a small
/// demand-loaded Cached Mapping Table (CMT) in controller SRAM. The
/// global translation directory stays resident.
///
/// The paper cites DFTL as the second mechanism (after safe write
/// buffers) that makes random writes cheap on modern SSDs without
/// page-map-sized RAM. The cost model here is faithful: a CMT miss
/// issues a real timed flash read of the translation page, and evicting
/// a dirty CMT entry issues a real timed flash program — so map traffic
/// shares channels/LUNs with data traffic and inflates WA.
///
/// Implementation note: data and translation pages both flow through an
/// internal PageFtl whose logical space is extended by one LBA per
/// translation page; the in-RAM map of that PageFtl plays the role of
/// DFTL's resident global translation directory.
class Dftl : public Ftl {
 public:
  explicit Dftl(ssd::Controller* controller);

  Dftl(const Dftl&) = delete;
  Dftl& operator=(const Dftl&) = delete;

  void Write(Lba lba, std::uint64_t token, WriteCallback cb,
             trace::Ctx ctx = {}) override;
  void Read(Lba lba, ReadCallback cb, trace::Ctx ctx = {}) override;
  void Trim(Lba lba, WriteCallback cb, trace::Ctx ctx = {}) override;
  std::uint64_t user_pages() const override { return user_pages_; }
  const Counters& counters() const override { return counters_; }
  double WriteAmplification() const override;
  void RegisterMetrics(metrics::MetricRegistry* m) override;

  /// CMT occupancy (tests).
  std::size_t cached_translation_pages() const { return cmt_.size(); }

  /// Test hooks: the internal PageFtl holding data + translation pages,
  /// and the logical LBA of translation page `tp` within it (lets fault
  /// tests target the flash copy of a translation page).
  PageFtl* base() { return base_.get(); }
  Lba translation_lba(std::uint64_t tp) const { return MapLba(tp); }

 private:
  struct CmtEntry {
    std::list<std::uint64_t>::iterator lru_pos;
    bool dirty = false;
  };

  std::uint64_t TpOf(Lba lba) const { return lba / entries_per_tp_; }
  Lba MapLba(std::uint64_t tp) const { return user_pages_ + tp; }

  /// Ensures tp is CMT-resident (possibly evicting + fetching with real
  /// flash IO), then runs `then`.
  void EnsureCached(std::uint64_t tp, bool make_dirty,
                    std::function<void()> then);
  void FinishFetch(std::uint64_t tp);

  ssd::Controller* controller_;
  std::uint64_t user_pages_;
  std::uint64_t tp_count_;
  std::uint32_t entries_per_tp_;
  std::uint32_t cmt_capacity_;
  std::unique_ptr<PageFtl> base_;

  std::unordered_map<std::uint64_t, CmtEntry> cmt_;
  std::list<std::uint64_t> lru_;  // front = most recent
  std::vector<bool> tp_persisted_;
  /// Ops waiting on an in-flight fetch of the same translation page.
  struct FetchState {
    std::vector<std::function<void()>> waiters;
    bool dirty = false;
  };
  std::unordered_map<std::uint64_t, FetchState> fetch_waiters_;

  Counters counters_;
};

}  // namespace postblock::ftl

#endif  // POSTBLOCK_FTL_DFTL_H_
