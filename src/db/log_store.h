#ifndef POSTBLOCK_DB_LOG_STORE_H_
#define POSTBLOCK_DB_LOG_STORE_H_

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "blocklayer/block_device.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/statusor.h"
#include "sim/simulator.h"

namespace postblock::db {

/// A host-level log-structured KV store — the "log on log" the paper
/// calls out in §3: "the management of log-structured files ... is
/// today handled both at the database level and within the FTL".
///
/// Records append into fixed-size segments; overwrites and deletes
/// leave dead records that *host* compaction reclaims by rewriting live
/// ones — on top of a flash device whose FTL is doing the exact same
/// dance one layer down. The compounded write amplification (host WA x
/// device WA) is what `bench_vision_interface`'s log-on-log section
/// reports, along with the effect of trimming reclaimed segments so the
/// two collectors at least stop fighting over ghosts.
///
/// The key index is volatile (rebuildable by a segment scan in a real
/// system); records are fixed-size (key,value) pairs packed into pages.
class LogStructuredStore {
 public:
  struct Options {
    std::uint32_t segment_pages = 64;     // pages per segment
    std::uint32_t records_per_page = 128; // fixed-size records
    /// Host compaction triggers when a sealed segment's dead fraction
    /// reaches this level.
    double compact_threshold = 0.5;
    /// TRIM reclaimed segments (the §3.2 command) so the FTL stops
    /// relocating dead host data.
    bool trim_dead_segments = true;
  };

  using StatusCb = std::function<void(Status)>;
  using GetCb = std::function<void(StatusOr<std::uint64_t>)>;

  LogStructuredStore(sim::Simulator* sim, blocklayer::BlockDevice* device,
                     const Options& options);

  LogStructuredStore(const LogStructuredStore&) = delete;
  LogStructuredStore& operator=(const LogStructuredStore&) = delete;

  /// Appends/overwrites one key. The callback fires when the record's
  /// page reaches the device (records buffer until their page fills or
  /// Flush() is called — group commit).
  void Put(std::uint64_t key, std::uint64_t value, StatusCb cb);

  /// Point lookup (index hit + one page read).
  void Get(std::uint64_t key, GetCb cb);

  /// Drops the key (index-only; space reclaimed by compaction).
  void Delete(std::uint64_t key, StatusCb cb);

  /// Forces the open page out (fires all pending Put callbacks).
  void Flush(StatusCb cb);

  /// Host-level write amplification: pages written (appends +
  /// compaction rewrites) / pages worth of fresh records.
  double HostWriteAmplification() const;

  std::size_t live_keys() const { return index_.size(); }
  std::uint64_t SegmentsInUse() const;
  std::uint32_t SegmentCount() const {
    return static_cast<std::uint32_t>(segments_.size());
  }
  const Counters& counters() const { return counters_; }

 private:
  struct RecordLoc {
    std::uint32_t segment = 0;
    std::uint32_t page = 0;  // within segment
    std::uint32_t slot = 0;  // within page
    friend bool operator==(const RecordLoc&, const RecordLoc&) = default;
  };
  struct Segment {
    std::uint32_t live = 0;
    std::uint32_t total = 0;
    /// Page writes issued but not yet durable — such a segment must not
    /// be compacted (its pages would read back unwritten).
    std::uint32_t pending_io = 0;
    bool active = false;
    bool free = true;
  };
  using PageRecords = std::vector<std::pair<std::uint64_t, std::uint64_t>>;

  Lba SegmentBase(std::uint32_t segment) const {
    return static_cast<Lba>(segment) * options_.segment_pages;
  }
  void AppendRecord(std::uint64_t key, std::uint64_t value, bool fresh,
                    StatusCb cb);
  void FlushOpenPage(StatusCb extra_cb = nullptr);
  bool OpenNextSegment();
  void SealActiveIfFull();
  void MaybeCompact();
  void CompactSegment(std::uint32_t victim);
  void GetAttempt(std::uint64_t key, int tries, GetCb cb);

  sim::Simulator* sim_;
  blocklayer::BlockDevice* device_;
  Options options_;

  std::unordered_map<std::uint64_t, RecordLoc> index_;
  std::vector<Segment> segments_;
  std::uint32_t active_segment_ = 0;
  std::uint32_t active_page_ = 0;

  PageRecords open_page_;
  std::vector<StatusCb> open_page_cbs_;
  /// Content registry: token -> the records of that written page (see
  /// db::PageImageStore for the payload-token modeling rationale).
  std::unordered_map<std::uint64_t, PageRecords> page_payloads_;

  bool compacting_ = false;
  std::uint64_t next_token_ = 1;
  Counters counters_;
};

}  // namespace postblock::db

#endif  // POSTBLOCK_DB_LOG_STORE_H_
