#include "db/storage_manager.h"

#include <algorithm>
#include <memory>
#include <utility>

namespace postblock::db {

namespace {
constexpr std::uint64_t kMetaMagic = 0x504f535442444233ull;  // "POSTBDB3"
// Meta page field offsets.
constexpr std::size_t kOffMagic = 8;
constexpr std::size_t kOffRoot = 16;
constexpr std::size_t kOffHeapFirst = 24;
constexpr std::size_t kOffHeapLast = 32;
constexpr std::size_t kOffNextPage = 40;
}  // namespace

const char* WiringName(Wiring w) {
  return w == Wiring::kClassic ? "classic" : "vision";
}

StorageManager::StorageManager(sim::Simulator* sim, ssd::Device* device,
                               const StorageConfig& config)
    : sim_(sim), device_(device), config_(config) {
  if (config_.wiring == Wiring::kVision) {
    pcm::PcmConfig pcm_cfg;
    pcm_cfg.capacity_bytes = config_.pcm_log_bytes;
    pcm_ = std::make_unique<pcm::PcmDevice>(sim_, pcm_cfg);
    pcm_log_ = std::make_unique<core::PcmLog>(sim_, pcm_.get(), 0,
                                              config_.pcm_log_bytes);
    direct_ = std::make_unique<blocklayer::DirectDriver>(sim_, device_);
    // Capability probe, not config peeking: a device that advertises
    // append regions has no logical address space, so page IO must run
    // over the host-owned map speaking the nameless vocabulary.
    if (direct_->Caps().append_regions > 0) {
      host_map_ = std::make_unique<HostMap>(sim_, direct_.get(),
                                            device_->num_blocks(),
                                            device_->block_bytes());
    }
    store_ = std::make_unique<core::HybridStore>(sim_, direct_.get(),
                                                 pcm_log_.get());
  } else {
    block_layer_ = std::make_unique<blocklayer::BlockLayer>(
        sim_, device_, config_.block_layer);
    store_ = std::make_unique<core::HybridStore>(
        sim_, block_layer_.get(),
        /*log_region_start=*/DataRegionBlocks(),
        /*log_region_blocks=*/config_.wal_region_blocks);
  }
  RebuildVolatileState();
}

StorageManager::~StorageManager() = default;

std::uint64_t StorageManager::DataRegionBlocks() const {
  const std::uint64_t total = device_->num_blocks();
  return config_.wiring == Wiring::kClassic
             ? total - config_.wal_region_blocks
             : total;
}

void StorageManager::RebuildVolatileState() {
  if (pool_ == nullptr) {
    blocklayer::BlockDevice* data_path =
        config_.wiring == Wiring::kVision
            ? (host_map_ != nullptr
                   ? static_cast<blocklayer::BlockDevice*>(host_map_.get())
                   : static_cast<blocklayer::BlockDevice*>(direct_.get()))
            : static_cast<blocklayer::BlockDevice*>(block_layer_.get());
    pool_ = std::make_unique<BufferPool>(sim_, data_path, &images_,
                                         config_.buffer_frames);
  }
  wal_ = std::make_unique<Wal>(store_.get());
  tree_ = std::make_unique<BTree>(sim_, pool_.get(),
                                  [this]() { return AllocPage(); });
  heap_ = std::make_unique<HeapFile>(sim_, pool_.get(),
                                     [this]() { return AllocPage(); });
}

void StorageManager::WriteMetaInto(Frame* frame) {
  std::fill(frame->bytes.begin(), frame->bytes.end(), 0);
  PageView view(&frame->bytes);
  view.set_type(PageType::kMeta);
  view.WriteU64(kOffMagic, kMetaMagic);
  view.WriteU64(kOffRoot, tree_->root());
  view.WriteU64(kOffHeapFirst, heap_->first_page());
  view.WriteU64(kOffHeapLast, heap_->tail_page());
  view.WriteU64(kOffNextPage, next_page_id_);
}

void StorageManager::ReadMetaFrom(Frame* frame) {
  PageView view(&frame->bytes);
  tree_->Open(view.ReadU64(kOffRoot));
  heap_->Open(view.ReadU64(kOffHeapFirst), view.ReadU64(kOffHeapLast));
  next_page_id_ = view.ReadU64(kOffNextPage);
}

void StorageManager::Bootstrap(StatusCb cb) {
  counters_.Increment("bootstraps");
  tree_->Create([this, cb = std::move(cb)](Status st) mutable {
    if (!st.ok()) {
      cb(std::move(st));
      return;
    }
    heap_->Create([this, cb = std::move(cb)](Status st2) mutable {
      if (!st2.ok()) {
        cb(std::move(st2));
        return;
      }
      Checkpoint(std::move(cb));
    });
  });
}

void StorageManager::Put(std::uint64_t key, std::uint64_t value,
                         StatusCb cb) {
  CommitBatch({WalOp{WalOp::Kind::kPut, key, value}}, std::move(cb));
}

void StorageManager::Delete(std::uint64_t key, StatusCb cb) {
  CommitBatch({WalOp{WalOp::Kind::kDelete, key, 0}}, std::move(cb));
}

void StorageManager::Get(std::uint64_t key, GetCb cb) {
  counters_.Increment("gets");
  tree_->Get(key, std::move(cb));
}

void StorageManager::CommitBatch(std::vector<WalOp> ops, StatusCb cb) {
  counters_.Increment("txns");
  if (metrics_ != nullptr) metrics_->Increment(m_txns_);
  WalBatch batch;
  batch.txn_id = next_txn_id_++;
  batch.ops = std::move(ops);
  const SimTime start = sim_->Now();
  auto shared_ops = std::make_shared<std::vector<WalOp>>(batch.ops);
  wal_->Commit(batch, [this, shared_ops, start,
                       cb = std::move(cb)](Status st) mutable {
    const SimTime latency = sim_->Now() - start;
    commit_latency_.Record(latency);
    if (metrics_ != nullptr) metrics_->Record(m_commit_lat_, latency);
    if (!st.ok()) {
      cb(std::move(st));
      return;
    }
    // Deferred update: the transaction is durable (redo-logged); now
    // apply it to the tree in memory.
    ApplyOps(shared_ops, 0, std::move(cb));
  });
}

void StorageManager::ApplyOps(std::shared_ptr<std::vector<WalOp>> ops,
                              std::size_t index, StatusCb cb) {
  if (index >= ops->size()) {
    cb(Status::Ok());
    return;
  }
  const WalOp& op = (*ops)[index];
  auto next = [this, ops, index, cb = std::move(cb)](Status st) mutable {
    if (!st.ok()) {
      cb(std::move(st));
      return;
    }
    ApplyOps(ops, index + 1, std::move(cb));
  };
  if (op.kind == WalOp::Kind::kPut) {
    tree_->Put(op.key, op.value, std::move(next));
  } else {
    tree_->Delete(op.key, std::move(next));
  }
}

void StorageManager::Checkpoint(StatusCb cb) {
  counters_.Increment("checkpoints");
  // Stage the meta page alongside the data pages so the whole snapshot
  // lands together.
  pool_->Pin(0, [this, cb = std::move(cb)](StatusOr<Frame*> meta) mutable {
    if (!meta.ok()) {
      cb(meta.status());
      return;
    }
    WriteMetaInto(*meta);
    pool_->Unpin(0, /*dirty=*/true);

    auto after_flush = [this, cb = std::move(cb)](Status st) mutable {
      if (!st.ok()) {
        cb(std::move(st));
        return;
      }
      wal_->Truncate(std::move(cb));
    };

    if (config_.wiring == Wiring::kVision && host_map_ != nullptr) {
      // Post-block checkpoint: no atomic-write command needed — the
      // epoch protocol makes the meta page the commit point.
      CheckpointNameless(std::move(after_flush));
      return;
    }
    if (config_.wiring == Wiring::kVision &&
        device_->page_ftl() != nullptr) {
      // Atomic checkpoint: every dirty page + meta flips visibility as
      // one group — no torn-checkpoint window (the paper's atomic-write
      // command, ref [17]).
      std::vector<std::pair<Lba, std::uint64_t>> group;
      std::vector<PageId> ids;
      for (Frame* frame : pool_->DirtyFrames()) {
        group.emplace_back(frame->id, images_.Register(frame->bytes));
        ids.push_back(frame->id);
      }
      counters_.Add("checkpoint_pages", group.size());
      device_->page_ftl()->WriteAtomic(
          std::move(group),
          [this, ids = std::move(ids),
           after_flush = std::move(after_flush)](Status st) mutable {
            if (st.ok()) {
              for (PageId id : ids) pool_->MarkClean(id);
            }
            after_flush(std::move(st));
          });
      return;
    }
    // Classic: plain write-back of each dirty page + flush barrier.
    pool_->FlushAll(std::move(after_flush));
  });
}

void StorageManager::CheckpointNameless(StatusCb cb) {
  // Every page in this checkpoint is written under epoch S+1 while the
  // committed checkpoint is still S; old copies are retired, not freed.
  // The meta page (owner 0) is written *last*: the instant it lands,
  // epoch S+1 is the recovery image. Only then do the retired copies
  // die — a crash anywhere earlier leaves epoch S fully intact.
  host_map_->set_epoch(ckpt_seq_ + 1);
  std::vector<PageId> dirty;
  for (Frame* frame : pool_->DirtyFrames()) {
    if (frame->id != 0) dirty.push_back(frame->id);
  }
  std::sort(dirty.begin(), dirty.end());
  counters_.Add("checkpoint_pages", dirty.size() + 1);
  auto write_meta = [this, cb = std::move(cb)](Status st) mutable {
    if (!st.ok()) {
      cb(std::move(st));
      return;
    }
    pool_->FlushPage(0, [this, cb = std::move(cb)](Status st2) mutable {
      if (!st2.ok()) {
        cb(std::move(st2));
        return;
      }
      ++ckpt_seq_;  // the commit point is durable
      host_map_->FreeRetired(std::move(cb));
    });
  };
  if (dirty.empty()) {
    write_meta(Status::Ok());
    return;
  }
  auto remaining = std::make_shared<std::size_t>(dirty.size());
  auto first_error = std::make_shared<Status>(Status::Ok());
  auto then = std::make_shared<std::function<void(Status)>>(
      std::move(write_meta));
  for (PageId id : dirty) {
    pool_->FlushPage(id, [remaining, first_error, then](Status st) {
      if (!st.ok() && first_error->ok()) *first_error = std::move(st);
      if (--*remaining == 0) (*then)(std::move(*first_error));
    });
  }
}

Status StorageManager::SimulateCrash() {
  counters_.Increment("crashes");
  // Power the stack down from the bottom up: each layer's epoch bump
  // silences its in-flight completions, so nothing half-finished leaks
  // into the post-crash world.
  PB_RETURN_IF_ERROR(device_->PowerCycle());
  if (pcm_ != nullptr) {
    pcm_->PowerCycle();
    pcm_log_->ResetAfterCrash();
  }
  if (direct_ != nullptr) direct_->PowerCycle();
  if (block_layer_ != nullptr) block_layer_->PowerCycle();
  pool_->PowerCycle();
  // The host-owned map is DRAM: gone. Recover() rebuilds it from the
  // device's live-names scan.
  if (host_map_ != nullptr) host_map_->Crash();
  // Volatile host objects (tree/heap/wal handles) are rebuilt empty;
  // Recover() re-attaches them to the durable state.
  RebuildVolatileState();
  return Status::Ok();
}

void StorageManager::RegisterMetrics(metrics::MetricRegistry* m) {
  metrics_ = m;
  m_txns_ = m->AddCounter("db.txns");
  m_commit_lat_ = m->AddHistogram("db.commit_lat_ns");
  m->AddPolledCounter("db.gets",
                      [this] { return counters_.Get("gets"); });
  m->AddPolledCounter("db.checkpoints",
                      [this] { return counters_.Get("checkpoints"); });
  // WAL: commit rate and logical bytes synced through the store (the
  // classic-mode padding overhead is sync_padded_bytes - sync_bytes).
  m->AddPolledCounter("wal.commits", [this] {
    return wal_->counters().Get("commits");
  });
  m->AddPolledCounter("wal.ops_logged", [this] {
    return wal_->counters().Get("ops_logged");
  });
  m->AddPolledCounter("wal.bytes", [this] {
    return store_->counters().Get("sync_bytes");
  });
  m->AddPolledCounter("wal.padded_bytes", [this] {
    return store_->counters().Get("sync_padded_bytes");
  });
  static constexpr const char* kPool[] = {"hits", "misses", "evictions",
                                          "writebacks"};
  for (const char* name : kPool) {
    m->AddPolledCounter(std::string("bp.") + name, [this, name] {
      return pool_->counters().Get(name);
    });
  }
  m->AddGauge("bp.hit_rate", [this] {
    const double hits =
        static_cast<double>(pool_->counters().Get("hits"));
    const double misses =
        static_cast<double>(pool_->counters().Get("misses"));
    return hits + misses == 0 ? 0.0 : hits / (hits + misses);
  });
  static constexpr const char* kTree[] = {"gets", "puts", "deletes",
                                          "node_splits"};
  for (const char* name : kTree) {
    m->AddPolledCounter(std::string("bt.") + name, [this, name] {
      return tree_->counters().Get(name);
    });
  }
  // Vision-mode substrate registers itself; the classic-mode block
  // layer registers at construction via StorageConfig::block_layer
  // .metrics (ctor-time wiring, like the device's Config::metrics).
  if (direct_ != nullptr) direct_->RegisterMetrics(m);
  if (pcm_ != nullptr) pcm_->RegisterMetrics(m);
}

}  // namespace postblock::db
