#ifndef POSTBLOCK_DB_BTREE_H_
#define POSTBLOCK_DB_BTREE_H_

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "common/stats.h"
#include "common/status.h"
#include "common/statusor.h"
#include "db/buffer_pool.h"
#include "db/page.h"
#include "sim/simulator.h"

namespace postblock::db {

/// Disk-resident B+-tree (uint64 key -> uint64 value) over the buffer
/// pool. Single-pass inserts with preemptive splits; deletes drop leaf
/// entries without rebalancing (underflow tolerated — the common
/// engineering simplification); leaves are chained for range scans.
///
/// All operations are asynchronous: page misses become block-device
/// reads in simulated time, so tree traffic shares the IO stack with
/// everything else — exactly the DB workload the paper routes through
/// its redesigned storage interface.
class BTree {
 public:
  using StatusCb = std::function<void(Status)>;
  using GetCb = std::function<void(StatusOr<std::uint64_t>)>;  // NotFound
  using ScanCb = std::function<void(
      StatusOr<std::vector<std::pair<std::uint64_t, std::uint64_t>>>)>;

  BTree(sim::Simulator* sim, BufferPool* pool,
        std::function<PageId()> alloc_page);

  /// Formats a fresh root leaf. The tree is unusable before Create/Open.
  void Create(StatusCb cb);
  /// Attaches to an existing tree (after recovery).
  void Open(PageId root) { root_ = root; }
  PageId root() const { return root_; }

  void Put(std::uint64_t key, std::uint64_t value, StatusCb cb);
  void Get(std::uint64_t key, GetCb cb);
  void Delete(std::uint64_t key, StatusCb cb);
  /// All pairs with lo <= key <= hi, in key order.
  void Scan(std::uint64_t lo, std::uint64_t hi, ScanCb cb);

  const Counters& counters() const { return counters_; }

  // Node capacities (exposed for tests that exercise splits).
  static constexpr std::uint32_t kLeafHeader = 16;
  static constexpr std::uint32_t kLeafCapacity =
      (kPageBytes - kLeafHeader) / 16;
  static constexpr std::uint32_t kInternalHeader = 24;
  static constexpr std::uint32_t kInternalCapacity =
      (kPageBytes - kInternalHeader) / 16;

 private:
  void DescendPut(Frame* parent, std::uint64_t key, std::uint64_t value,
                  StatusCb cb);
  void SplitChild(Frame* parent, std::uint32_t child_index, Frame* child,
                  StatusCb on_done);
  void SplitRootAndRetryPut(Frame* root, std::uint64_t key,
                            std::uint64_t value, StatusCb cb);

  sim::Simulator* sim_;
  BufferPool* pool_;
  std::function<PageId()> alloc_page_;
  PageId root_ = kInvalidPageId;
  Counters counters_;
};

}  // namespace postblock::db

#endif  // POSTBLOCK_DB_BTREE_H_
