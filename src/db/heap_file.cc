#include "db/heap_file.h"

#include <cstring>
#include <memory>

namespace postblock::db {

namespace {

std::uint16_t Count(const Frame* f) {
  std::uint16_t v;
  std::memcpy(&v, f->bytes.data() + 2, 2);
  return v;
}
void SetCount(Frame* f, std::uint16_t v) {
  std::memcpy(f->bytes.data() + 2, &v, 2);
}
PageId Next(const Frame* f) {
  PageId v;
  std::memcpy(&v, f->bytes.data() + 8, 8);
  return v;
}
void SetNext(Frame* f, PageId v) {
  std::memcpy(f->bytes.data() + 8, &v, 8);
}
void ReadRecord(const Frame* f, std::uint32_t slot, std::uint64_t* a,
                std::uint64_t* b) {
  std::memcpy(a, f->bytes.data() + 16 + std::size_t{slot} * 16, 8);
  std::memcpy(b, f->bytes.data() + 24 + std::size_t{slot} * 16, 8);
}
void WriteRecord(Frame* f, std::uint32_t slot, std::uint64_t a,
                 std::uint64_t b) {
  std::memcpy(f->bytes.data() + 16 + std::size_t{slot} * 16, &a, 8);
  std::memcpy(f->bytes.data() + 24 + std::size_t{slot} * 16, &b, 8);
}
void Format(Frame* f) {
  std::fill(f->bytes.begin(), f->bytes.end(), 0);
  f->bytes[0] = static_cast<std::uint8_t>(PageType::kHeap);
  SetNext(f, kInvalidPageId);
}

}  // namespace

HeapFile::HeapFile(sim::Simulator* sim, BufferPool* pool,
                   std::function<PageId()> alloc_page)
    : sim_(sim), pool_(pool), alloc_page_(std::move(alloc_page)) {}

void HeapFile::Create(StatusCb cb) {
  const PageId first = alloc_page_();
  pool_->Pin(first, [this, first, cb = std::move(cb)](StatusOr<Frame*> f) {
    if (!f.ok()) {
      cb(f.status());
      return;
    }
    Format(*f);
    first_page_ = tail_page_ = first;
    pool_->Unpin(first, true);
    cb(Status::Ok());
  });
}

void HeapFile::Append(std::uint64_t a, std::uint64_t b, AppendCb cb) {
  if (tail_page_ == kInvalidPageId) {
    sim_->Schedule(0, [cb = std::move(cb)]() {
      cb(Status::FailedPrecondition("heap file not created/opened"));
    });
    return;
  }
  counters_.Increment("appends");
  pool_->Pin(tail_page_, [this, a, b,
                          cb = std::move(cb)](StatusOr<Frame*> f) mutable {
    if (!f.ok()) {
      cb(f.status());
      return;
    }
    Frame* tail = *f;
    const std::uint16_t count = Count(tail);
    if (count < kRecordsPerPage) {
      WriteRecord(tail, count, a, b);
      SetCount(tail, count + 1);
      const Rid rid{tail->id, count};
      pool_->Unpin(tail->id, true);
      cb(rid);
      return;
    }
    // Chain a fresh page.
    const PageId fresh = alloc_page_();
    pool_->Pin(fresh, [this, tail, fresh, a, b,
                       cb = std::move(cb)](StatusOr<Frame*> nf) mutable {
      if (!nf.ok()) {
        pool_->Unpin(tail->id, false);
        cb(nf.status());
        return;
      }
      Format(*nf);
      WriteRecord(*nf, 0, a, b);
      SetCount(*nf, 1);
      SetNext(tail, fresh);
      tail_page_ = fresh;
      pool_->Unpin(tail->id, true);
      pool_->Unpin(fresh, true);
      counters_.Increment("page_chains");
      cb(Rid{fresh, 0});
    });
  });
}

void HeapFile::Get(Rid rid, GetCb cb) {
  counters_.Increment("gets");
  pool_->Pin(rid.page, [this, rid,
                        cb = std::move(cb)](StatusOr<Frame*> f) mutable {
    if (!f.ok()) {
      cb(f.status());
      return;
    }
    Frame* page = *f;
    if (static_cast<PageType>(page->bytes[0]) != PageType::kHeap ||
        rid.slot >= Count(page)) {
      pool_->Unpin(rid.page, false);
      cb(Status::NotFound("no record at rid"));
      return;
    }
    std::uint64_t a = 0;
    std::uint64_t b = 0;
    ReadRecord(page, rid.slot, &a, &b);
    pool_->Unpin(rid.page, false);
    cb(std::make_pair(a, b));
  });
}

void HeapFile::Scan(
    std::function<void(Rid, std::uint64_t, std::uint64_t)> visit,
    ScanCb cb) {
  counters_.Increment("scans");
  auto total = std::make_shared<std::uint64_t>(0);
  auto walk = std::make_shared<std::function<void(PageId)>>();
  *walk = [this, visit = std::move(visit), cb = std::move(cb), total,
           walk](PageId id) mutable {
    if (id == kInvalidPageId) {
      cb(*total);
      *walk = nullptr;
      return;
    }
    pool_->Pin(id, [this, id, visit, cb, total,
                    walk](StatusOr<Frame*> f) mutable {
      if (!f.ok()) {
        cb(f.status());
        *walk = nullptr;
        return;
      }
      Frame* page = *f;
      const std::uint16_t count = Count(page);
      for (std::uint32_t s = 0; s < count; ++s) {
        std::uint64_t a = 0;
        std::uint64_t b = 0;
        ReadRecord(page, s, &a, &b);
        visit(Rid{id, s}, a, b);
      }
      *total += count;
      const PageId next = Next(page);
      pool_->Unpin(id, false);
      (*walk)(next);
    });
  };
  (*walk)(first_page_);
}

}  // namespace postblock::db
