#ifndef POSTBLOCK_DB_HEAP_FILE_H_
#define POSTBLOCK_DB_HEAP_FILE_H_

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "common/stats.h"
#include "common/status.h"
#include "common/statusor.h"
#include "db/buffer_pool.h"
#include "db/page.h"
#include "sim/simulator.h"

namespace postblock::db {

/// Record identifier: (page, slot).
struct Rid {
  PageId page = kInvalidPageId;
  std::uint32_t slot = 0;

  friend bool operator==(const Rid&, const Rid&) = default;
};

/// Append-oriented heap file of fixed 16-byte records (two u64 fields),
/// pages chained through a next pointer. The classic slotted-file
/// substrate for scans and RID lookups; complements the B+-tree.
///
/// Page layout: [0] type, [2..3] count, [8..15] next page id,
/// records at 16.
class HeapFile {
 public:
  using StatusCb = std::function<void(Status)>;
  using AppendCb = std::function<void(StatusOr<Rid>)>;
  using GetCb =
      std::function<void(StatusOr<std::pair<std::uint64_t, std::uint64_t>>)>;
  using ScanCb = std::function<void(StatusOr<std::uint64_t>)>;  // count

  static constexpr std::uint32_t kRecordsPerPage = (kPageBytes - 16) / 16;

  HeapFile(sim::Simulator* sim, BufferPool* pool,
           std::function<PageId()> alloc_page);

  /// Formats the first page.
  void Create(StatusCb cb);
  void Open(PageId first, PageId last) {
    first_page_ = first;
    tail_page_ = last;
  }
  PageId first_page() const { return first_page_; }
  PageId tail_page() const { return tail_page_; }

  /// Appends one record at the tail, chaining a fresh page when full.
  void Append(std::uint64_t a, std::uint64_t b, AppendCb cb);

  /// Reads one record by RID.
  void Get(Rid rid, GetCb cb);

  /// Full scan; `visit` sees each record, completion delivers the count.
  void Scan(std::function<void(Rid, std::uint64_t, std::uint64_t)> visit,
            ScanCb cb);

  const Counters& counters() const { return counters_; }

 private:
  sim::Simulator* sim_;
  BufferPool* pool_;
  std::function<PageId()> alloc_page_;
  PageId first_page_ = kInvalidPageId;
  PageId tail_page_ = kInvalidPageId;
  Counters counters_;
};

}  // namespace postblock::db

#endif  // POSTBLOCK_DB_HEAP_FILE_H_
