#include "db/btree.h"

#include <cstring>
#include <memory>

namespace postblock::db {

namespace {

// --- node layout helpers -------------------------------------------------
//
// Leaf:     [0] type  [2..3] count  [8..15] next-leaf page id
//           entries at 16: (key u64, value u64) sorted by key
// Internal: [0] type  [2..3] count (= number of separator keys)
//           slot i at 16+i*16: (child_i u64, key_i u64); the final slot
//           holds child_count only.

std::uint16_t NodeCount(const Frame* f) {
  std::uint16_t v;
  std::memcpy(&v, f->bytes.data() + 2, 2);
  return v;
}

void SetNodeCount(Frame* f, std::uint16_t v) {
  std::memcpy(f->bytes.data() + 2, &v, 2);
}

PageType NodeType(const Frame* f) {
  return static_cast<PageType>(f->bytes[0]);
}

std::uint64_t ReadU64(const Frame* f, std::size_t off) {
  std::uint64_t v;
  std::memcpy(&v, f->bytes.data() + off, 8);
  return v;
}

void WriteU64(Frame* f, std::size_t off, std::uint64_t v) {
  std::memcpy(f->bytes.data() + off, &v, 8);
}

// Leaf accessors.
std::uint64_t LeafKey(const Frame* f, std::uint32_t i) {
  return ReadU64(f, 16 + std::size_t{i} * 16);
}
std::uint64_t LeafValue(const Frame* f, std::uint32_t i) {
  return ReadU64(f, 24 + std::size_t{i} * 16);
}
void SetLeafEntry(Frame* f, std::uint32_t i, std::uint64_t key,
                  std::uint64_t value) {
  WriteU64(f, 16 + std::size_t{i} * 16, key);
  WriteU64(f, 24 + std::size_t{i} * 16, value);
}
PageId LeafNext(const Frame* f) { return ReadU64(f, 8); }
void SetLeafNext(Frame* f, PageId next) { WriteU64(f, 8, next); }

// First index with key(i) >= key.
std::uint32_t LeafLowerBound(const Frame* f, std::uint64_t key) {
  std::uint32_t lo = 0;
  std::uint32_t hi = NodeCount(f);
  while (lo < hi) {
    const std::uint32_t mid = (lo + hi) / 2;
    if (LeafKey(f, mid) < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

void LeafInsertAt(Frame* f, std::uint32_t pos, std::uint64_t key,
                  std::uint64_t value) {
  const std::uint16_t count = NodeCount(f);
  std::memmove(f->bytes.data() + 16 + (std::size_t{pos} + 1) * 16,
               f->bytes.data() + 16 + std::size_t{pos} * 16,
               (count - pos) * std::size_t{16});
  SetLeafEntry(f, pos, key, value);
  SetNodeCount(f, count + 1);
}

void LeafRemoveAt(Frame* f, std::uint32_t pos) {
  const std::uint16_t count = NodeCount(f);
  std::memmove(f->bytes.data() + 16 + std::size_t{pos} * 16,
               f->bytes.data() + 16 + (std::size_t{pos} + 1) * 16,
               (count - pos - 1) * std::size_t{16});
  SetNodeCount(f, count - 1);
}

// Internal accessors.
std::uint64_t InternalKey(const Frame* f, std::uint32_t i) {
  return ReadU64(f, 24 + std::size_t{i} * 16);
}
PageId InternalChild(const Frame* f, std::uint32_t i) {
  return ReadU64(f, 16 + std::size_t{i} * 16);
}
void SetInternalKey(Frame* f, std::uint32_t i, std::uint64_t key) {
  WriteU64(f, 24 + std::size_t{i} * 16, key);
}
void SetInternalChild(Frame* f, std::uint32_t i, PageId child) {
  WriteU64(f, 16 + std::size_t{i} * 16, child);
}

// Child index to descend into for `key`: first i with key < key_i.
std::uint32_t InternalFindIndex(const Frame* f, std::uint64_t key) {
  std::uint32_t lo = 0;
  std::uint32_t hi = NodeCount(f);
  while (lo < hi) {
    const std::uint32_t mid = (lo + hi) / 2;
    if (key < InternalKey(f, mid)) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

// Inserts separator `key` and right child after child index `idx`.
// Keys shift from idx and children from idx+1 — different ranges, so
// they move as separate arrays, not as interleaved slot pairs.
void InternalInsertAfter(Frame* f, std::uint32_t idx, std::uint64_t key,
                         PageId right) {
  const std::uint16_t count = NodeCount(f);
  for (std::uint32_t j = count; j > idx; --j) {
    SetInternalKey(f, j, InternalKey(f, j - 1));
  }
  for (std::uint32_t j = count + 1; j > idx + 1; --j) {
    SetInternalChild(f, j, InternalChild(f, j - 1));
  }
  SetInternalKey(f, idx, key);
  SetInternalChild(f, idx + 1, right);
  SetNodeCount(f, count + 1);
}

void FormatLeaf(Frame* f) {
  std::fill(f->bytes.begin(), f->bytes.end(), 0);
  f->bytes[0] = static_cast<std::uint8_t>(PageType::kBTreeLeaf);
  SetLeafNext(f, kInvalidPageId);
}

void FormatInternal(Frame* f) {
  std::fill(f->bytes.begin(), f->bytes.end(), 0);
  f->bytes[0] = static_cast<std::uint8_t>(PageType::kBTreeInternal);
}

bool IsFull(const Frame* f) {
  if (NodeType(f) == PageType::kBTreeLeaf) {
    return NodeCount(f) >= BTree::kLeafCapacity;
  }
  return NodeCount(f) >= BTree::kInternalCapacity;
}

// Splits `left` (full) into `right` (freshly formatted), returning the
// separator key for the parent.
std::uint64_t SplitNode(Frame* left, Frame* right) {
  const std::uint16_t count = NodeCount(left);
  if (NodeType(left) == PageType::kBTreeLeaf) {
    FormatLeaf(right);
    const std::uint16_t keep = count / 2;
    const std::uint16_t moved = count - keep;
    std::memcpy(right->bytes.data() + 16,
                left->bytes.data() + 16 + std::size_t{keep} * 16,
                std::size_t{moved} * 16);
    SetNodeCount(right, moved);
    SetNodeCount(left, keep);
    SetLeafNext(right, LeafNext(left));
    SetLeafNext(left, right->id);
    return LeafKey(right, 0);
  }
  FormatInternal(right);
  const std::uint16_t mid = count / 2;
  const std::uint64_t separator = InternalKey(left, mid);
  const std::uint16_t moved = count - mid - 1;
  // Right gets children mid+1..count and keys mid+1..count-1.
  std::memcpy(right->bytes.data() + 16,
              left->bytes.data() + 16 + (std::size_t{mid} + 1) * 16,
              std::size_t{moved} * 16 + 8 /* trailing child */);
  SetNodeCount(right, moved);
  SetNodeCount(left, mid);
  return separator;
}

}  // namespace

BTree::BTree(sim::Simulator* sim, BufferPool* pool,
             std::function<PageId()> alloc_page)
    : sim_(sim), pool_(pool), alloc_page_(std::move(alloc_page)) {}

void BTree::Create(StatusCb cb) {
  const PageId root = alloc_page_();
  pool_->Pin(root, [this, root, cb = std::move(cb)](StatusOr<Frame*> f) {
    if (!f.ok()) {
      cb(f.status());
      return;
    }
    FormatLeaf(*f);
    root_ = root;
    pool_->Unpin(root, /*dirty=*/true);
    cb(Status::Ok());
  });
}

// --- Put -------------------------------------------------------------------

void BTree::Put(std::uint64_t key, std::uint64_t value, StatusCb cb) {
  if (root_ == kInvalidPageId) {
    sim_->Schedule(0, [cb = std::move(cb)]() {
      cb(Status::FailedPrecondition("btree not created/opened"));
    });
    return;
  }
  counters_.Increment("puts");
  pool_->Pin(root_, [this, key, value,
                     cb = std::move(cb)](StatusOr<Frame*> f) mutable {
    if (!f.ok()) {
      cb(f.status());
      return;
    }
    if (IsFull(*f)) {
      SplitRootAndRetryPut(*f, key, value, std::move(cb));
      return;
    }
    DescendPut(*f, key, value, std::move(cb));
  });
}

void BTree::SplitRootAndRetryPut(Frame* root, std::uint64_t key,
                                 std::uint64_t value, StatusCb cb) {
  counters_.Increment("root_splits");
  const PageId sibling_id = alloc_page_();
  const PageId new_root_id = alloc_page_();
  pool_->Pin(sibling_id, [this, root, sibling_id, new_root_id, key, value,
                          cb = std::move(cb)](StatusOr<Frame*> s) mutable {
    if (!s.ok()) {
      pool_->Unpin(root->id, false);
      cb(s.status());
      return;
    }
    Frame* sibling = *s;
    const std::uint64_t separator = SplitNode(root, sibling);
    pool_->Pin(new_root_id,
               [this, root, sibling, sibling_id, new_root_id, separator,
                key, value, cb = std::move(cb)](StatusOr<Frame*> nr) mutable {
                 if (!nr.ok()) {
                   pool_->Unpin(root->id, true);
                   pool_->Unpin(sibling->id, true);
                   cb(nr.status());
                   return;
                 }
                 Frame* new_root = *nr;
                 FormatInternal(new_root);
                 SetInternalChild(new_root, 0, root->id);
                 SetInternalKey(new_root, 0, separator);
                 SetInternalChild(new_root, 1, sibling_id);
                 SetNodeCount(new_root, 1);
                 root_ = new_root_id;
                 pool_->Unpin(root->id, true);
                 pool_->Unpin(sibling->id, true);
                 pool_->Unpin(new_root_id, true);
                 Put(key, value, std::move(cb));
               });
  });
}

void BTree::SplitChild(Frame* parent, std::uint32_t child_index,
                       Frame* child, StatusCb on_done) {
  counters_.Increment("node_splits");
  const PageId sibling_id = alloc_page_();
  pool_->Pin(sibling_id, [this, parent, child_index, child, sibling_id,
                          on_done = std::move(on_done)](
                             StatusOr<Frame*> s) mutable {
    if (!s.ok()) {
      pool_->Unpin(child->id, false);
      on_done(s.status());
      return;
    }
    Frame* sibling = *s;
    const std::uint64_t separator = SplitNode(child, sibling);
    InternalInsertAfter(parent, child_index, separator, sibling_id);
    pool_->MarkDirty(parent->id);
    pool_->Unpin(child->id, true);
    pool_->Unpin(sibling_id, true);
    on_done(Status::Ok());
  });
}

void BTree::DescendPut(Frame* node, std::uint64_t key, std::uint64_t value,
                       StatusCb cb) {
  // `node` is pinned and guaranteed non-full.
  if (NodeType(node) == PageType::kBTreeLeaf) {
    const std::uint32_t pos = LeafLowerBound(node, key);
    if (pos < NodeCount(node) && LeafKey(node, pos) == key) {
      SetLeafEntry(node, pos, key, value);  // overwrite
    } else {
      LeafInsertAt(node, pos, key, value);
    }
    pool_->Unpin(node->id, /*dirty=*/true);
    cb(Status::Ok());
    return;
  }
  const std::uint32_t idx = InternalFindIndex(node, key);
  const PageId child_id = InternalChild(node, idx);
  pool_->Pin(child_id, [this, node, idx, key, value,
                        cb = std::move(cb)](StatusOr<Frame*> c) mutable {
    if (!c.ok()) {
      pool_->Unpin(node->id, false);
      cb(c.status());
      return;
    }
    Frame* child = *c;
    if (IsFull(child)) {
      // Preemptive split (parent is non-full by induction), then try
      // this level again — the key may now belong in the new sibling.
      SplitChild(node, idx, child, [this, node, key, value,
                                    cb = std::move(cb)](Status st) mutable {
        if (!st.ok()) {
          pool_->Unpin(node->id, true);
          cb(std::move(st));
          return;
        }
        DescendPut(node, key, value, std::move(cb));
      });
      return;
    }
    pool_->Unpin(node->id, false);
    DescendPut(child, key, value, std::move(cb));
  });
}

// --- Get / Delete ------------------------------------------------------------

void BTree::Get(std::uint64_t key, GetCb cb) {
  if (root_ == kInvalidPageId) {
    sim_->Schedule(0, [cb = std::move(cb)]() {
      cb(Status::FailedPrecondition("btree not created/opened"));
    });
    return;
  }
  counters_.Increment("gets");
  // Iterative descent via a self-referential closure.
  auto step = std::make_shared<std::function<void(PageId)>>();
  *step = [this, key, cb = std::move(cb), step](PageId id) mutable {
    pool_->Pin(id, [this, id, key, cb, step](StatusOr<Frame*> f) mutable {
      if (!f.ok()) {
        cb(f.status());
        *step = nullptr;
        return;
      }
      Frame* node = *f;
      if (NodeType(node) == PageType::kBTreeLeaf) {
        const std::uint32_t pos = LeafLowerBound(node, key);
        StatusOr<std::uint64_t> result =
            (pos < NodeCount(node) && LeafKey(node, pos) == key)
                ? StatusOr<std::uint64_t>(LeafValue(node, pos))
                : StatusOr<std::uint64_t>(
                      Status::NotFound("key " + std::to_string(key)));
        pool_->Unpin(id, false);
        cb(std::move(result));
        *step = nullptr;
        return;
      }
      const PageId child = InternalChild(node, InternalFindIndex(node, key));
      pool_->Unpin(id, false);
      (*step)(child);
    });
  };
  (*step)(root_);
}

void BTree::Delete(std::uint64_t key, StatusCb cb) {
  if (root_ == kInvalidPageId) {
    sim_->Schedule(0, [cb = std::move(cb)]() {
      cb(Status::FailedPrecondition("btree not created/opened"));
    });
    return;
  }
  counters_.Increment("deletes");
  auto step = std::make_shared<std::function<void(PageId)>>();
  *step = [this, key, cb = std::move(cb), step](PageId id) mutable {
    pool_->Pin(id, [this, id, key, cb, step](StatusOr<Frame*> f) mutable {
      if (!f.ok()) {
        cb(f.status());
        *step = nullptr;
        return;
      }
      Frame* node = *f;
      if (NodeType(node) == PageType::kBTreeLeaf) {
        const std::uint32_t pos = LeafLowerBound(node, key);
        bool removed = false;
        if (pos < NodeCount(node) && LeafKey(node, pos) == key) {
          LeafRemoveAt(node, pos);
          removed = true;
        }
        pool_->Unpin(id, removed);
        cb(Status::Ok());
        *step = nullptr;
        return;
      }
      const PageId child = InternalChild(node, InternalFindIndex(node, key));
      pool_->Unpin(id, false);
      (*step)(child);
    });
  };
  (*step)(root_);
}

// --- Scan ---------------------------------------------------------------------

void BTree::Scan(std::uint64_t lo, std::uint64_t hi, ScanCb cb) {
  if (root_ == kInvalidPageId) {
    sim_->Schedule(0, [cb = std::move(cb)]() {
      cb(Status::FailedPrecondition("btree not created/opened"));
    });
    return;
  }
  counters_.Increment("scans");
  auto results = std::make_shared<
      std::vector<std::pair<std::uint64_t, std::uint64_t>>>();

  auto walk = std::make_shared<std::function<void(PageId)>>();
  auto descend = std::make_shared<std::function<void(PageId)>>();

  *walk = [this, lo, hi, results, cb, walk](PageId id) mutable {
    if (id == kInvalidPageId) {
      cb(std::move(*results));
      *walk = nullptr;
      return;
    }
    pool_->Pin(id, [this, id, lo, hi, results, cb,
                    walk](StatusOr<Frame*> f) mutable {
      if (!f.ok()) {
        cb(f.status());
        *walk = nullptr;
        return;
      }
      Frame* leaf = *f;
      bool past_hi = false;
      for (std::uint32_t i = 0; i < NodeCount(leaf); ++i) {
        const std::uint64_t k = LeafKey(leaf, i);
        if (k < lo) continue;
        if (k > hi) {
          past_hi = true;
          break;
        }
        results->emplace_back(k, LeafValue(leaf, i));
      }
      const PageId next = past_hi ? kInvalidPageId : LeafNext(leaf);
      pool_->Unpin(id, false);
      (*walk)(next);
    });
  };

  *descend = [this, lo, walk, descend](PageId id) mutable {
    pool_->Pin(id, [this, id, lo, walk, descend](StatusOr<Frame*> f) mutable {
      if (!f.ok()) {
        (*walk)(kInvalidPageId);  // deliver what we have (empty)
        *descend = nullptr;
        return;
      }
      Frame* node = *f;
      if (NodeType(node) == PageType::kBTreeLeaf) {
        pool_->Unpin(id, false);
        (*walk)(id);
        *descend = nullptr;
        return;
      }
      const PageId child = InternalChild(node, InternalFindIndex(node, lo));
      pool_->Unpin(id, false);
      (*descend)(child);
    });
  };
  (*descend)(root_);
}

}  // namespace postblock::db
