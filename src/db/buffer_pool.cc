#include "db/buffer_pool.h"

#include <utility>

namespace postblock::db {

BufferPool::BufferPool(sim::Simulator* sim,
                       blocklayer::BlockDevice* device,
                       PageImageStore* images, std::size_t frames,
                       bool allow_steal)
    : sim_(sim),
      device_(device),
      images_(images),
      capacity_(frames),
      allow_steal_(allow_steal) {}

std::size_t BufferPool::dirty_count() const {
  std::size_t n = 0;
  for (const auto& [id, f] : frames_) n += f->dirty;
  return n;
}

void BufferPool::Touch(PageId id) {
  auto it = lru_pos_.find(id);
  if (it != lru_pos_.end()) lru_.erase(it->second);
  lru_.push_front(id);
  lru_pos_[id] = lru_.begin();
}

void BufferPool::Pin(PageId id, PinCallback cb) {
  auto it = frames_.find(id);
  if (it != frames_.end()) {
    counters_.Increment("hits");
    ++it->second->pins;
    Touch(id);
    cb(it->second.get());
    return;
  }
  auto [lit, first] = loading_.try_emplace(id);
  lit->second.push_back(std::move(cb));
  if (!first) {
    counters_.Increment("miss_waits");  // piggyback on in-flight load
    return;
  }
  counters_.Increment("misses");

  // Make room. Eviction is synchronous bookkeeping; in no-steal mode a
  // fully dirty pool is a configuration error surfaced to the caller.
  while (frames_.size() + loading_.size() > capacity_) {
    if (!EvictOne()) {
      auto waiters = std::move(loading_[id]);
      loading_.erase(id);
      for (auto& w : waiters) {
        w(Status::ResourceExhausted(
            "buffer pool full of pinned/dirty pages (no-steal)"));
      }
      return;
    }
  }
  LoadFrame(id);
}

bool BufferPool::EvictOne() {
  for (auto rit = lru_.rbegin(); rit != lru_.rend(); ++rit) {
    const PageId victim = *rit;
    auto fit = frames_.find(victim);
    if (fit == frames_.end()) continue;
    Frame* f = fit->second.get();
    if (f->pins > 0) continue;
    if (f->dirty && !allow_steal_) continue;
    if (f->dirty) {
      // Steal mode: asynchronous write-back, frame leaves immediately
      // (the image registry keeps the bytes alive for the IO).
      counters_.Increment("steals");
      const std::uint64_t token = images_->Register(f->bytes);
      blocklayer::IoRequest w;
      w.op = blocklayer::IoOp::kWrite;
      w.lba = victim;
      w.nblocks = 1;
      w.tokens = {token};
      w.on_complete = [](const blocklayer::IoResult&) {};
      device_->Submit(std::move(w));
    }
    counters_.Increment("evictions");
    lru_.erase(lru_pos_[victim]);
    lru_pos_.erase(victim);
    frames_.erase(fit);
    return true;
  }
  return false;
}

void BufferPool::LoadFrame(PageId id) {
  blocklayer::IoRequest r;
  r.op = blocklayer::IoOp::kRead;
  r.lba = id;
  r.nblocks = 1;
  r.on_complete = [this, id](const blocklayer::IoResult& res) {
    auto waiters = std::move(loading_[id]);
    loading_.erase(id);
    if (!res.status.ok()) {
      for (auto& w : waiters) w(res.status);
      return;
    }
    auto frame = std::make_unique<Frame>();
    frame->id = id;
    const std::vector<std::uint8_t>* image =
        images_->Fetch(res.tokens.empty() ? 0 : res.tokens[0]);
    frame->bytes = image != nullptr
                       ? *image
                       : std::vector<std::uint8_t>(kPageBytes, 0);
    frame->pins = static_cast<int>(waiters.size());
    Frame* raw = frame.get();
    frames_[id] = std::move(frame);
    Touch(id);
    for (auto& w : waiters) w(raw);
  };
  device_->Submit(std::move(r));
}

void BufferPool::Unpin(PageId id, bool dirty) {
  auto it = frames_.find(id);
  if (it == frames_.end()) return;
  Frame* f = it->second.get();
  if (f->pins > 0) --f->pins;
  if (dirty) f->dirty = true;
}

void BufferPool::FlushPage(PageId id, std::function<void(Status)> cb) {
  auto it = frames_.find(id);
  if (it == frames_.end() || !it->second->dirty) {
    sim_->Schedule(0, [cb = std::move(cb)]() { cb(Status::Ok()); });
    return;
  }
  Frame* f = it->second.get();
  const std::uint64_t token = images_->Register(f->bytes);
  counters_.Increment("writebacks");
  blocklayer::IoRequest w;
  w.op = blocklayer::IoOp::kWrite;
  w.lba = id;
  w.nblocks = 1;
  w.tokens = {token};
  w.on_complete = [this, id, cb = std::move(cb)](
                      const blocklayer::IoResult& res) {
    if (res.status.ok()) {
      auto it = frames_.find(id);
      if (it != frames_.end()) it->second->dirty = false;
    }
    cb(res.status);
  };
  device_->Submit(std::move(w));
}

void BufferPool::FlushAll(std::function<void(Status)> cb) {
  std::vector<PageId> dirty;
  for (const auto& [id, f] : frames_) {
    if (f->dirty) dirty.push_back(id);
  }
  auto state = std::make_shared<std::pair<std::size_t, Status>>(
      dirty.size(), Status::Ok());
  auto barrier = [this, cb = std::move(cb)](Status st) {
    if (!st.ok()) {
      cb(std::move(st));
      return;
    }
    blocklayer::IoRequest f;
    f.op = blocklayer::IoOp::kFlush;
    f.nblocks = 1;
    f.on_complete = [cb](const blocklayer::IoResult& r) { cb(r.status); };
    device_->Submit(std::move(f));
  };
  if (dirty.empty()) {
    barrier(Status::Ok());
    return;
  }
  for (PageId id : dirty) {
    FlushPage(id, [state, barrier](Status st) {
      if (!st.ok() && state->second.ok()) state->second = st;
      if (--state->first == 0) barrier(state->second);
    });
  }
}

std::vector<Frame*> BufferPool::DirtyFrames() {
  std::vector<Frame*> out;
  for (const auto& [id, f] : frames_) {
    if (f->dirty) out.push_back(f.get());
  }
  return out;
}

void BufferPool::PowerCycle() {
  frames_.clear();
  lru_.clear();
  lru_pos_.clear();
  loading_.clear();
  counters_.Increment("power_cycles");
}

void BufferPool::InvalidateClean() {
  for (auto it = frames_.begin(); it != frames_.end();) {
    if (!it->second->dirty && it->second->pins == 0) {
      lru_.erase(lru_pos_[it->first]);
      lru_pos_.erase(it->first);
      it = frames_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace postblock::db
