// Crash recovery for db::StorageManager: attach to the last durable
// checkpoint (meta page), then redo every durable WAL batch in commit
// order. Redo is logical (B+-tree put/delete), which is sound because
// the buffer pool runs no-steal and updates are deferred past WAL
// durability — the on-device tree is always exactly the last checkpoint
// (see DESIGN.md §4 invariants).

#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "db/storage_manager.h"
#include "flash/page_store.h"

namespace postblock::db {

/// Drives the asynchronous replay: one WAL batch at a time, each batch's
/// ops applied in order.
struct RecoveryDriver {
  StorageManager* manager;
  std::vector<WalBatch> batches;
  std::size_t index = 0;
  StorageManager::StatusCb cb;

  static void Run(std::shared_ptr<RecoveryDriver> self) {
    if (self->index >= self->batches.size()) {
      self->manager->counters_.Add("recovered_batches",
                                   self->batches.size());
      self->cb(Status::Ok());
      return;
    }
    auto ops = std::make_shared<std::vector<WalOp>>(
        std::move(self->batches[self->index].ops));
    ++self->index;
    self->manager->ApplyOps(ops, 0, [self](Status st) {
      if (!st.ok()) {
        self->cb(std::move(st));
        return;
      }
      Run(self);
    });
  }
};

void StorageManager::Recover(StatusCb cb) {
  counters_.Increment("recoveries");
  if (config_.wiring == Wiring::kVision && host_map_ != nullptr) {
    // Post-block prologue: the device kept no L2P, so before the meta
    // page can even be read the host must rebuild its map from the
    // device's live names + OOB owner stamps.
    RebuildHostMap([this, cb = std::move(cb)](Status st) mutable {
      if (!st.ok()) {
        cb(std::move(st));
        return;
      }
      RecoverFromMeta(std::move(cb));
    });
    return;
  }
  RecoverFromMeta(std::move(cb));
}

void StorageManager::RebuildHostMap(StatusCb cb) {
  // Control-path scan (no simulated IO): every live page's name plus
  // the (owner page id, checkpoint epoch) the host stamped into its OOB
  // at write time.
  const auto names = device_->LiveNames();
  // The committed checkpoint is the newest epoch whose *meta* page
  // (owner 0) survived — the meta write is the commit point, so any
  // higher-epoch page is an orphan of a torn checkpoint.
  std::uint64_t ckpt = 0;
  for (const auto& ln : names) {
    if (ln.owner == 0 && ln.owner_epoch > ckpt) ckpt = ln.owner_epoch;
  }
  // Per page id keep the newest copy with epoch <= ckpt; everything
  // else — orphans, superseded copies, unstamped pages — is junk to
  // free (it was never reachable from the committed meta).
  struct Copy {
    std::uint64_t epoch;
    std::uint64_t name;
  };
  std::unordered_map<PageId, Copy> best;
  std::vector<std::uint64_t> junk;
  for (const auto& ln : names) {
    if (ln.owner == flash::kNamelessLba || ln.owner_epoch == 0 ||
        ln.owner_epoch > ckpt) {
      junk.push_back(ln.name);
      continue;
    }
    auto [it, inserted] = best.try_emplace(
        static_cast<PageId>(ln.owner), Copy{ln.owner_epoch, ln.name});
    if (inserted) continue;
    if (ln.owner_epoch > it->second.epoch) {
      junk.push_back(it->second.name);
      it->second = Copy{ln.owner_epoch, ln.name};
    } else {
      junk.push_back(ln.name);
    }
  }
  host_map_->Crash();  // start from an empty map
  for (const auto& [page, copy] : best) host_map_->Adopt(page, copy.name);
  host_map_->set_epoch(ckpt);
  ckpt_seq_ = ckpt;
  counters_.Add("recovered_names", best.size());
  counters_.Add("orphan_names", junk.size());
  if (junk.empty()) {
    sim_->Schedule(0, [cb = std::move(cb)]() { cb(Status::Ok()); });
    return;
  }
  // Reclaim the junk before replay so the append device gets its space
  // back. NotFound is tolerated (a migration may have renamed a copy
  // between scan and free — the generation guard makes that benign).
  auto remaining = std::make_shared<std::size_t>(junk.size());
  auto shared_cb =
      std::make_shared<std::function<void(Status)>>(std::move(cb));
  for (std::uint64_t name : junk) {
    direct_->Execute(host::Command::NamelessFree(
        name, blocklayer::IoCallback(
                  [remaining, shared_cb](const blocklayer::IoResult& res) {
                    (void)res;  // NotFound tolerated
                    if (--*remaining == 0) (*shared_cb)(Status::Ok());
                  })));
  }
}

void StorageManager::RecoverFromMeta(StatusCb cb) {
  pool_->Pin(0, [this, cb = std::move(cb)](StatusOr<Frame*> meta) mutable {
    if (!meta.ok()) {
      cb(meta.status());
      return;
    }
    PageView view(&(*meta)->bytes);
    if (view.type() != PageType::kMeta) {
      pool_->Unpin(0, false);
      cb(Status::DataLoss("meta page missing or corrupt"));
      return;
    }
    ReadMetaFrom(*meta);
    pool_->Unpin(0, false);

    // Media-verified replay: re-read the log from the device so an
    // uncorrectable log page truncates redo at the torn point instead
    // of replaying past a hole.
    wal_->RecoverVerified(
        [this, cb = std::move(cb)](std::vector<WalBatch> batches) mutable {
          auto driver = std::make_shared<RecoveryDriver>();
          driver->manager = this;
          driver->batches = std::move(batches);
          driver->cb = std::move(cb);
          RecoveryDriver::Run(std::move(driver));
        });
  });
}

}  // namespace postblock::db
