// Crash recovery for db::StorageManager: attach to the last durable
// checkpoint (meta page), then redo every durable WAL batch in commit
// order. Redo is logical (B+-tree put/delete), which is sound because
// the buffer pool runs no-steal and updates are deferred past WAL
// durability — the on-device tree is always exactly the last checkpoint
// (see DESIGN.md §4 invariants).

#include <memory>
#include <utility>
#include <vector>

#include "db/storage_manager.h"

namespace postblock::db {

/// Drives the asynchronous replay: one WAL batch at a time, each batch's
/// ops applied in order.
struct RecoveryDriver {
  StorageManager* manager;
  std::vector<WalBatch> batches;
  std::size_t index = 0;
  StorageManager::StatusCb cb;

  static void Run(std::shared_ptr<RecoveryDriver> self) {
    if (self->index >= self->batches.size()) {
      self->manager->counters_.Add("recovered_batches",
                                   self->batches.size());
      self->cb(Status::Ok());
      return;
    }
    auto ops = std::make_shared<std::vector<WalOp>>(
        std::move(self->batches[self->index].ops));
    ++self->index;
    self->manager->ApplyOps(ops, 0, [self](Status st) {
      if (!st.ok()) {
        self->cb(std::move(st));
        return;
      }
      Run(self);
    });
  }
};

void StorageManager::Recover(StatusCb cb) {
  counters_.Increment("recoveries");
  pool_->Pin(0, [this, cb = std::move(cb)](StatusOr<Frame*> meta) mutable {
    if (!meta.ok()) {
      cb(meta.status());
      return;
    }
    PageView view(&(*meta)->bytes);
    if (view.type() != PageType::kMeta) {
      pool_->Unpin(0, false);
      cb(Status::DataLoss("meta page missing or corrupt"));
      return;
    }
    ReadMetaFrom(*meta);
    pool_->Unpin(0, false);

    // Media-verified replay: re-read the log from the device so an
    // uncorrectable log page truncates redo at the torn point instead
    // of replaying past a hole.
    wal_->RecoverVerified(
        [this, cb = std::move(cb)](std::vector<WalBatch> batches) mutable {
          auto driver = std::make_shared<RecoveryDriver>();
          driver->manager = this;
          driver->batches = std::move(batches);
          driver->cb = std::move(cb);
          RecoveryDriver::Run(std::move(driver));
        });
  });
}

}  // namespace postblock::db
