#ifndef POSTBLOCK_DB_BUFFER_POOL_H_
#define POSTBLOCK_DB_BUFFER_POOL_H_

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "blocklayer/block_device.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/statusor.h"
#include "db/page.h"
#include "db/page_image.h"
#include "sim/simulator.h"

namespace postblock::db {

/// One cached page frame. Contents are raw bytes; use PageView.
struct Frame {
  PageId id = kInvalidPageId;
  std::vector<std::uint8_t> bytes;
  int pins = 0;
  bool dirty = false;
};

/// Page cache over a block device, with LRU eviction and asynchronous
/// miss handling.
///
/// Operated in *no-steal* mode (the default): dirty frames are never
/// written back by eviction, only by explicit FlushPage/FlushAll at
/// commit/checkpoint time. Together with the storage manager's
/// deferred-update policy this keeps the on-device tree exactly at the
/// last checkpoint, which is what makes logical WAL redo sound (see
/// DESIGN.md). Steal mode exists for IO-pattern experiments.
class BufferPool {
 public:
  using PinCallback = std::function<void(StatusOr<Frame*>)>;

  BufferPool(sim::Simulator* sim, blocklayer::BlockDevice* device,
             PageImageStore* images, std::size_t frames,
             bool allow_steal = false);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Pins a page, loading it from the device on a miss. The frame stays
  /// resident until the matching Unpin.
  void Pin(PageId id, PinCallback cb);

  /// Releases a pin; `dirty` marks the frame modified.
  void Unpin(PageId id, bool dirty);

  /// Marks a resident frame modified without changing its pin count.
  void MarkDirty(PageId id) {
    auto it = frames_.find(id);
    if (it != frames_.end()) it->second->dirty = true;
  }

  /// Writes one dirty frame back (no-op if clean or absent).
  void FlushPage(PageId id, std::function<void(Status)> cb);

  /// Writes every dirty frame back; fires when all are durable (plus a
  /// device flush barrier).
  void FlushAll(std::function<void(Status)> cb);

  /// Drops every clean, unpinned frame (post-recovery cache reset).
  void InvalidateClean();

  /// Simulates power loss: every frame, pin, pending load and waiter is
  /// gone (the lower layers' epoch guards keep stale completions from
  /// ever reaching this pool again).
  void PowerCycle();

  /// Resident dirty frames — for externally orchestrated checkpoints
  /// (e.g. the storage manager's atomic-write checkpoint).
  std::vector<Frame*> DirtyFrames();
  /// Marks a frame clean after such a checkpoint persisted it.
  void MarkClean(PageId id) {
    auto it = frames_.find(id);
    if (it != frames_.end()) it->second->dirty = false;
  }

  std::size_t resident() const { return frames_.size(); }
  std::size_t dirty_count() const;
  const Counters& counters() const { return counters_; }

 private:
  void LoadFrame(PageId id);
  bool EvictOne();
  void Touch(PageId id);

  sim::Simulator* sim_;
  blocklayer::BlockDevice* device_;
  PageImageStore* images_;
  std::size_t capacity_;
  bool allow_steal_;

  std::unordered_map<PageId, std::unique_ptr<Frame>> frames_;
  std::list<PageId> lru_;  // front = most recent
  std::unordered_map<PageId, std::list<PageId>::iterator> lru_pos_;
  std::unordered_map<PageId, std::vector<PinCallback>> loading_;

  Counters counters_;
};

}  // namespace postblock::db

#endif  // POSTBLOCK_DB_BUFFER_POOL_H_
