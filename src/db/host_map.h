#ifndef POSTBLOCK_DB_HOST_MAP_H_
#define POSTBLOCK_DB_HOST_MAP_H_

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "blocklayer/block_device.h"
#include "common/stats.h"
#include "db/page.h"
#include "host/command.h"
#include "sim/simulator.h"

namespace postblock::db {

/// The host side of the Section 3 crossover: a page-id-addressed
/// BlockDevice whose *only* downstream vocabulary is the nameless
/// command set. The host owns the logical-to-physical map — page id to
/// device-issued name — so the device below keeps no L2P at all, and
/// the map is sized by *live* pages, not by the logical address space
/// (the DRAM-footprint argument: the host already tracks these pages in
/// its own metadata; the device's copy of the map was pure redundancy).
///
/// Semantics seen by the buffer pool (identical to an SSD data path):
///   read  — unmapped page ids read as token 0 (zero page); a read that
///           races a device migration retries under the updated name.
///   write — a tagged nameless write (owner = page id, epoch = current
///           checkpoint epoch). The *old* copy is not freed inline: it
///           goes to the retired list and dies only at FreeRetired(),
///           which the storage manager calls after the checkpoint's
///           commit point — crash before that leaves both copies on
///           flash and recovery picks by epoch (see DESIGN.md §4j).
///   trim  — drops the mapping; the name is retired, not freed inline
///           (same crash-ordering argument).
///   flush — forwarded (the append device completes it as a barrier).
///
/// Crash story: the map is host DRAM — Crash() wipes it; Recover in the
/// storage manager rebuilds it from the device's LiveNames() scan
/// (names + OOB owner stamps) and re-Adopt()s the surviving copies.
class HostMap : public blocklayer::BlockDevice {
 public:
  /// `dev` is the typed stack underneath (it must speak nameless — the
  /// storage manager probes Caps() before wiring this in). `num_pages`
  /// is the advertised logical capacity, `page_bytes` the page size.
  HostMap(sim::Simulator* sim, host::HostInterface* dev,
          std::uint64_t num_pages, std::uint32_t page_bytes);

  HostMap(const HostMap&) = delete;
  HostMap& operator=(const HostMap&) = delete;

  // --- BlockDevice ---------------------------------------------------
  std::uint64_t num_blocks() const override { return num_pages_; }
  std::uint32_t block_bytes() const override { return page_bytes_; }
  void Submit(blocklayer::IoRequest request) override;
  const Counters& counters() const override { return counters_; }

  // --- Checkpoint protocol (storage manager) -------------------------
  /// Epoch stamped into subsequent writes' OOB (the checkpoint being
  /// built). Bump before flushing a checkpoint's pages.
  void set_epoch(std::uint64_t epoch) { epoch_ = epoch; }
  std::uint64_t epoch() const { return epoch_; }

  /// Frees every retired name (overwritten/trimmed old copies). Call
  /// only after the checkpoint's commit point (meta page durable):
  /// until then the old copies are the recovery image. NotFound on an
  /// individual free is tolerated (the device migrated-and-told-us or a
  /// crash already reclaimed it).
  void FreeRetired(std::function<void(Status)> cb);
  std::size_t retired() const { return retired_.size(); }

  // --- Recovery (storage manager) ------------------------------------
  /// Power loss: the map is volatile host state.
  void Crash();
  /// Re-adopts a surviving copy found by the post-crash LiveNames scan.
  void Adopt(PageId page, std::uint64_t name);

  // --- Introspection -------------------------------------------------
  /// Host DRAM the mapping occupies: 16 B per *live* page (id + name) —
  /// the number the crossover study reports against the device-side
  /// page map's 8 B per *logical* page.
  std::uint64_t MappingBytes() const { return map_.size() * 16; }
  std::size_t live() const { return map_.size(); }
  /// Current name of a page id, or false (tests).
  bool Lookup(PageId page, std::uint64_t* name) const;

 private:
  void ReadPage(PageId page, int tries,
                std::function<void(Status, std::uint64_t)> done);
  void WritePage(PageId page, std::uint64_t token,
                 std::function<void(Status)> done);
  void OnMigration(std::uint64_t old_name, std::uint64_t new_name);

  sim::Simulator* sim_;
  host::HostInterface* dev_;
  std::uint64_t num_pages_;
  std::uint32_t page_bytes_;

  std::uint64_t epoch_ = 0;

  /// The host-owned L2P, both directions (migration callbacks arrive
  /// name-first).
  std::unordered_map<PageId, std::uint64_t> map_;
  std::unordered_map<std::uint64_t, PageId> name_to_page_;
  /// Old copies awaiting the post-commit free.
  std::vector<std::uint64_t> retired_;

  Counters counters_;
};

}  // namespace postblock::db

#endif  // POSTBLOCK_DB_HOST_MAP_H_
