#include "db/wal.h"

#include <cstring>

namespace postblock::db {

namespace {
constexpr std::uint32_t kBatchMagic = 0x57414C42;  // "WALB"
}  // namespace

std::vector<std::uint8_t> EncodeBatch(const WalBatch& batch) {
  std::vector<std::uint8_t> out(4 + 8 + 4 + batch.ops.size() * 17);
  std::size_t off = 0;
  std::memcpy(out.data() + off, &kBatchMagic, 4);
  off += 4;
  std::memcpy(out.data() + off, &batch.txn_id, 8);
  off += 8;
  const std::uint32_t count = static_cast<std::uint32_t>(batch.ops.size());
  std::memcpy(out.data() + off, &count, 4);
  off += 4;
  for (const WalOp& op : batch.ops) {
    out[off++] = static_cast<std::uint8_t>(op.kind);
    std::memcpy(out.data() + off, &op.key, 8);
    off += 8;
    std::memcpy(out.data() + off, &op.value, 8);
    off += 8;
  }
  return out;
}

bool DecodeBatch(const std::vector<std::uint8_t>& bytes, WalBatch* out) {
  if (bytes.size() < 16) return false;
  std::uint32_t magic = 0;
  std::memcpy(&magic, bytes.data(), 4);
  if (magic != kBatchMagic) return false;
  std::memcpy(&out->txn_id, bytes.data() + 4, 8);
  std::uint32_t count = 0;
  std::memcpy(&count, bytes.data() + 12, 4);
  if (bytes.size() < 16 + static_cast<std::size_t>(count) * 17) {
    return false;
  }
  out->ops.clear();
  out->ops.reserve(count);
  std::size_t off = 16;
  for (std::uint32_t i = 0; i < count; ++i) {
    WalOp op;
    op.kind = static_cast<WalOp::Kind>(bytes[off++]);
    std::memcpy(&op.key, bytes.data() + off, 8);
    off += 8;
    std::memcpy(&op.value, bytes.data() + off, 8);
    off += 8;
    out->ops.push_back(op);
  }
  return true;
}

void Wal::Commit(const WalBatch& batch, std::function<void(Status)> cb,
                 trace::Ctx ctx) {
  counters_.Increment("commits");
  counters_.Add("ops_logged", batch.ops.size());
  store_->SyncPersist(EncodeBatch(batch), std::move(cb), ctx);
}

std::vector<WalBatch> Wal::Recover() const {
  std::vector<WalBatch> out;
  for (const auto& record : store_->DurableRecords()) {
    WalBatch batch;
    if (DecodeBatch(record, &batch)) {
      out.push_back(std::move(batch));
    }
  }
  return out;
}

void Wal::RecoverVerified(std::function<void(std::vector<WalBatch>)> cb) {
  counters_.Increment("verified_recoveries");
  store_->RecoverRecords(
      [cb = std::move(cb)](std::vector<std::vector<std::uint8_t>> records) {
        std::vector<WalBatch> out;
        for (const auto& record : records) {
          WalBatch batch;
          if (DecodeBatch(record, &batch)) {
            out.push_back(std::move(batch));
          }
        }
        cb(std::move(out));
      });
}

}  // namespace postblock::db
