#include "db/log_store.h"

#include <algorithm>
#include <memory>
#include <utility>

namespace postblock::db {

LogStructuredStore::LogStructuredStore(sim::Simulator* sim,
                                       blocklayer::BlockDevice* device,
                                       const Options& options)
    : sim_(sim), device_(device), options_(options) {
  const std::uint64_t segment_count =
      device->num_blocks() / options_.segment_pages;
  segments_.resize(segment_count);
  segments_[0].free = false;
  segments_[0].active = true;
  active_segment_ = 0;
  active_page_ = 0;
}

std::uint64_t LogStructuredStore::SegmentsInUse() const {
  std::uint64_t n = 0;
  for (const auto& s : segments_) n += !s.free;
  return n;
}

double LogStructuredStore::HostWriteAmplification() const {
  const std::uint64_t fresh = counters_.Get("fresh_records");
  if (fresh == 0) return 0.0;
  const double fresh_pages = static_cast<double>(fresh) /
                             static_cast<double>(options_.records_per_page);
  return static_cast<double>(counters_.Get("pages_written")) / fresh_pages;
}

void LogStructuredStore::Put(std::uint64_t key, std::uint64_t value,
                             StatusCb cb) {
  counters_.Increment("puts");
  AppendRecord(key, value, /*fresh=*/true, std::move(cb));
}

void LogStructuredStore::AppendRecord(std::uint64_t key,
                                      std::uint64_t value, bool fresh,
                                      StatusCb cb) {
  if (fresh) {
    counters_.Increment("fresh_records");
  } else {
    counters_.Increment("compaction_rewrites");
  }
  // Kill the previous version.
  auto it = index_.find(key);
  if (it != index_.end()) {
    --segments_[it->second.segment].live;
  }
  Segment& seg = segments_[active_segment_];
  index_[key] = RecordLoc{active_segment_, active_page_,
                          static_cast<std::uint32_t>(open_page_.size())};
  ++seg.live;
  ++seg.total;
  open_page_.emplace_back(key, value);
  if (cb) open_page_cbs_.push_back(std::move(cb));
  if (open_page_.size() >= options_.records_per_page) {
    FlushOpenPage();
  }
}

void LogStructuredStore::Flush(StatusCb cb) {
  if (open_page_.empty()) {
    sim_->Schedule(0, [cb = std::move(cb)]() { cb(Status::Ok()); });
    return;
  }
  FlushOpenPage(std::move(cb));
}

void LogStructuredStore::FlushOpenPage(StatusCb extra_cb) {
  const std::uint64_t token = next_token_++;
  page_payloads_[token] = open_page_;
  const Lba lba = SegmentBase(active_segment_) + active_page_;
  auto cbs = std::make_shared<std::vector<StatusCb>>(
      std::move(open_page_cbs_));
  if (extra_cb) cbs->push_back(std::move(extra_cb));
  open_page_.clear();
  open_page_cbs_.clear();
  counters_.Increment("pages_written");
  const std::uint32_t segment = active_segment_;
  ++segments_[segment].pending_io;

  blocklayer::IoRequest w;
  w.op = blocklayer::IoOp::kWrite;
  w.lba = lba;
  w.nblocks = 1;
  w.tokens = {token};
  w.on_complete = [this, segment, cbs](const blocklayer::IoResult& r) {
    --segments_[segment].pending_io;
    for (auto& cb : *cbs) cb(r.status);
    MaybeCompact();  // the segment may have just become compactable
  };
  device_->Submit(std::move(w));

  ++active_page_;
  SealActiveIfFull();
}

void LogStructuredStore::SealActiveIfFull() {
  if (active_page_ < options_.segment_pages) return;
  segments_[active_segment_].active = false;
  if (!OpenNextSegment()) {
    // No free segment: compaction must free one before the next page
    // flush; writes into the open page still buffer meanwhile.
    counters_.Increment("segment_exhaustion");
  }
  MaybeCompact();
}

bool LogStructuredStore::OpenNextSegment() {
  for (std::uint32_t s = 0; s < segments_.size(); ++s) {
    if (segments_[s].free) {
      segments_[s] = Segment{};
      segments_[s].active = true;
      segments_[s].free = false;
      active_segment_ = s;
      active_page_ = 0;
      return true;
    }
  }
  return false;
}

void LogStructuredStore::Delete(std::uint64_t key, StatusCb cb) {
  counters_.Increment("deletes");
  auto it = index_.find(key);
  if (it != index_.end()) {
    --segments_[it->second.segment].live;
    index_.erase(it);
    MaybeCompact();
  }
  sim_->Schedule(0, [cb = std::move(cb)]() { cb(Status::Ok()); });
}

void LogStructuredStore::Get(std::uint64_t key, GetCb cb) {
  counters_.Increment("gets");
  GetAttempt(key, 0, std::move(cb));
}

void LogStructuredStore::GetAttempt(std::uint64_t key, int tries,
                                    GetCb cb) {
  auto it = index_.find(key);
  if (it == index_.end()) {
    sim_->Schedule(0, [cb = std::move(cb)]() {
      cb(Status::NotFound("key not in store"));
    });
    return;
  }
  const RecordLoc loc = it->second;
  // Still in the open (unwritten) page?
  if (loc.segment == active_segment_ && loc.page == active_page_) {
    const std::uint64_t value = loc.slot < open_page_.size()
                                    ? open_page_[loc.slot].second
                                    : 0;
    sim_->Schedule(0, [cb = std::move(cb), value]() { cb(value); });
    return;
  }
  blocklayer::IoRequest r;
  r.op = blocklayer::IoOp::kRead;
  r.lba = SegmentBase(loc.segment) + loc.page;
  r.nblocks = 1;
  r.on_complete = [this, key, loc, tries, cb = std::move(cb)](
                      const blocklayer::IoResult& res) mutable {
    if (!res.status.ok()) {
      cb(res.status);
      return;
    }
    const auto pit = page_payloads_.find(res.tokens[0]);
    if (pit != page_payloads_.end() && loc.slot < pit->second.size() &&
        pit->second[loc.slot].first == key) {
      cb(pit->second[loc.slot].second);
      return;
    }
    // The record moved (compaction raced the read); chase the index.
    if (tries >= 3) {
      cb(Status::Internal("log store read retry limit"));
      return;
    }
    GetAttempt(key, tries + 1, std::move(cb));
  };
  device_->Submit(std::move(r));
}

void LogStructuredStore::MaybeCompact() {
  if (compacting_) return;
  std::int64_t best = -1;
  std::uint32_t best_dead = 0;
  for (std::uint32_t s = 0; s < segments_.size(); ++s) {
    const Segment& seg = segments_[s];
    if (seg.free || seg.active || seg.pending_io > 0 || seg.total == 0) {
      continue;
    }
    const std::uint32_t dead = seg.total - seg.live;
    const double frac =
        static_cast<double>(dead) / static_cast<double>(seg.total);
    if (frac >= options_.compact_threshold && dead > best_dead) {
      best = s;
      best_dead = dead;
    }
  }
  if (best < 0) return;
  compacting_ = true;
  counters_.Increment("compactions");
  CompactSegment(static_cast<std::uint32_t>(best));
}

void LogStructuredStore::CompactSegment(std::uint32_t victim) {
  // Read the victim's pages one by one, re-appending live records.
  auto page = std::make_shared<std::uint32_t>(0);
  auto step = std::make_shared<std::function<void()>>();
  *step = [this, victim, page, step]() {
    if (*page >= options_.segment_pages) {
      // Everything live rewritten: release the segment.
      segments_[victim] = Segment{};  // free
      auto finish = [this]() {
        compacting_ = false;
        MaybeCompact();
      };
      if (options_.trim_dead_segments) {
        blocklayer::IoRequest t;
        t.op = blocklayer::IoOp::kTrim;
        t.lba = SegmentBase(victim);
        t.nblocks = options_.segment_pages;
        t.on_complete = [finish](const blocklayer::IoResult&) { finish(); };
        device_->Submit(std::move(t));
      } else {
        finish();
      }
      *step = nullptr;
      return;
    }
    const std::uint32_t p = (*page)++;
    blocklayer::IoRequest r;
    r.op = blocklayer::IoOp::kRead;
    r.lba = SegmentBase(victim) + p;
    r.nblocks = 1;
    r.on_complete = [this, victim, p, step](
                        const blocklayer::IoResult& res) {
      if (res.status.ok()) {
        const auto pit = page_payloads_.find(res.tokens[0]);
        if (pit != page_payloads_.end()) {
          for (std::uint32_t slot = 0; slot < pit->second.size(); ++slot) {
            const auto [key, value] = pit->second[slot];
            const auto iit = index_.find(key);
            if (iit != index_.end() &&
                iit->second == RecordLoc{victim, p, slot}) {
              AppendRecord(key, value, /*fresh=*/false, nullptr);
            }
          }
          // The page's cells are dead now; drop the payload entry.
          page_payloads_.erase(pit);
        }
      }
      (*step)();
    };
    device_->Submit(std::move(r));
  };
  (*step)();
}

}  // namespace postblock::db
