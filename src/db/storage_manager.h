#ifndef POSTBLOCK_DB_STORAGE_MANAGER_H_
#define POSTBLOCK_DB_STORAGE_MANAGER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "blocklayer/block_layer.h"
#include "blocklayer/direct_driver.h"
#include "common/stats.h"
#include "core/hybrid_store.h"
#include "core/pcm_log.h"
#include "db/btree.h"
#include "db/buffer_pool.h"
#include "db/heap_file.h"
#include "db/host_map.h"
#include "db/page_image.h"
#include "db/wal.h"
#include "metrics/metrics.h"
#include "pcm/pcm_device.h"
#include "ssd/device.h"

namespace postblock::db {

/// How the database reaches persistent storage — the two sides of the
/// paper's argument:
///
///   kClassic — everything through the block device interface: WAL
///     records are padded to whole log blocks on the SSD and fenced with
///     flushes; checkpoints are plain page writes (torn-checkpoint
///     window included, as real systems must journal around).
///   kVision  — Section 3 wiring: synchronous WAL appends go to PCM over
///     the memory bus; data page IO takes the direct driver (no block
///     layer). What checkpoints look like depends on what the device
///     underneath speaks — discovered through Caps(), never by reading
///     its config:
///       * a page-map device executes the checkpoint as one atomic
///         write group;
///       * a post-block append device (Caps().append_regions > 0) gets
///         the full de-indirected data path: page IO runs over a
///         host-owned map (db::HostMap) speaking only the nameless
///         vocabulary, checkpoints are epoch-tagged nameless writes
///         with the meta page written last as the commit point, and
///         recovery rebuilds the host map from the device's LiveNames
///         scan (OOB owner stamps) before WAL replay.
enum class Wiring { kClassic = 0, kVision };

const char* WiringName(Wiring w);

struct StorageConfig {
  Wiring wiring = Wiring::kVision;
  std::size_t buffer_frames = 512;
  /// Classic mode: log blocks reserved at the top of the LBA space.
  std::uint64_t wal_region_blocks = 64;
  /// Vision mode: PCM log region size.
  std::uint64_t pcm_log_bytes = 8 * kMiB;
  blocklayer::BlockLayerConfig block_layer;  // classic data path
};

/// A small but complete storage manager: buffer pool + WAL + B+-tree +
/// heap file, with group commit, checkpoints, crash simulation and
/// recovery. The deliverable the paper asks database researchers to
/// rethink — built twice over the same simulated hardware so the two
/// architectures can race (bench E7/E8).
class StorageManager {
 public:
  using StatusCb = std::function<void(Status)>;
  using GetCb = BTree::GetCb;

  StorageManager(sim::Simulator* sim, ssd::Device* device,
                 const StorageConfig& config);
  ~StorageManager();

  StorageManager(const StorageManager&) = delete;
  StorageManager& operator=(const StorageManager&) = delete;

  /// Formats a fresh database (meta + tree + heap) and checkpoints.
  void Bootstrap(StatusCb cb);

  /// Single-op transactions.
  void Put(std::uint64_t key, std::uint64_t value, StatusCb cb);
  void Delete(std::uint64_t key, StatusCb cb);
  void Get(std::uint64_t key, GetCb cb);
  void Scan(std::uint64_t lo, std::uint64_t hi, BTree::ScanCb cb) {
    tree_->Scan(lo, hi, std::move(cb));
  }

  /// Multi-op transaction: one WAL record, ops applied after it is
  /// durable (deferred update; commit acknowledged at WAL durability).
  void CommitBatch(std::vector<WalOp> ops, StatusCb cb);

  /// Flushes dirty pages + meta (atomically in vision mode), truncates
  /// the WAL.
  void Checkpoint(StatusCb cb);

  /// Simulates power loss: device loses volatile state; every cached
  /// frame and in-flight completion is gone. Call Recover() next.
  Status SimulateCrash();

  /// Rebuilds from the last checkpoint + WAL replay.
  void Recover(StatusCb cb);

  BufferPool* buffer_pool() { return pool_.get(); }
  /// Non-null in vision wiring over an append-mode device: the
  /// host-owned page-id -> name mapping layer.
  HostMap* host_map() { return host_map_.get(); }
  /// Checkpoint epoch of the last committed checkpoint.
  std::uint64_t ckpt_seq() const { return ckpt_seq_; }
  Wal* wal() { return wal_.get(); }
  BTree* tree() { return tree_.get(); }
  HeapFile* heap() { return heap_.get(); }
  core::HybridStore* store() { return store_.get(); }
  const Counters& counters() const { return counters_; }
  /// Commit (WAL durability) latency distribution.
  const Histogram& commit_latency() const { return commit_latency_; }

  /// Registers the DB layer's time-series streams: transaction/commit
  /// rates, WAL bytes, buffer-pool hit rate, B+-tree page IOs, plus a
  /// windowed commit-latency histogram. Call once, after construction,
  /// with the same registry attached to the device stack below.
  void RegisterMetrics(metrics::MetricRegistry* m);

 private:
  friend struct RecoveryDriver;

  PageId AllocPage() { return next_page_id_++; }
  void WriteMetaInto(Frame* frame);
  void ReadMetaFrom(Frame* frame);
  void ApplyOps(std::shared_ptr<std::vector<WalOp>> ops, std::size_t index,
                StatusCb cb);
  void RebuildVolatileState();
  std::uint64_t DataRegionBlocks() const;
  /// Post-block checkpoint: epoch-tagged nameless writes of every dirty
  /// data page, then the meta page last (the commit point), then frees
  /// of the superseded copies.
  void CheckpointNameless(StatusCb cb);
  /// Post-crash: rebuilds the host map from the device's LiveNames scan
  /// (adopt the newest copy with epoch <= the committed checkpoint,
  /// free orphans and superseded copies).
  void RebuildHostMap(StatusCb cb);
  /// The common recovery tail: read the meta page, replay the WAL.
  void RecoverFromMeta(StatusCb cb);

  sim::Simulator* sim_;
  ssd::Device* device_;
  StorageConfig config_;

  // Vision-mode substrate.
  std::unique_ptr<pcm::PcmDevice> pcm_;
  std::unique_ptr<core::PcmLog> pcm_log_;

  // Data path (one of the two).
  std::unique_ptr<blocklayer::BlockLayer> block_layer_;
  std::unique_ptr<blocklayer::DirectDriver> direct_;

  std::unique_ptr<core::HybridStore> store_;
  /// Vision wiring over an append-mode device only (capability-probed).
  std::unique_ptr<HostMap> host_map_;
  PageImageStore images_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<Wal> wal_;
  std::unique_ptr<BTree> tree_;
  std::unique_ptr<HeapFile> heap_;

  PageId next_page_id_ = 1;  // page 0 = meta
  std::uint64_t next_txn_id_ = 1;
  /// Committed checkpoint epoch (nameless checkpoints stamp S+1 while
  /// building, bump to S+1 once the meta page is durable).
  std::uint64_t ckpt_seq_ = 0;
  Counters counters_;
  Histogram commit_latency_;

  // Pushed in parallel with counters_ ("txns") and commit_latency_ for
  // the sampler-vs-Counters cross-check and windowed commit p99.
  metrics::MetricRegistry* metrics_ = nullptr;
  metrics::Id m_txns_ = metrics::kInvalidId;
  metrics::Id m_commit_lat_ = metrics::kInvalidId;
};

}  // namespace postblock::db

#endif  // POSTBLOCK_DB_STORAGE_MANAGER_H_
