#ifndef POSTBLOCK_DB_WAL_H_
#define POSTBLOCK_DB_WAL_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/stats.h"
#include "common/status.h"
#include "core/hybrid_store.h"

namespace postblock::db {

/// One logged operation (logical redo record).
struct WalOp {
  enum class Kind : std::uint8_t { kPut = 1, kDelete = 2 };
  Kind kind = Kind::kPut;
  std::uint64_t key = 0;
  std::uint64_t value = 0;
};

/// A committed transaction's record batch.
struct WalBatch {
  std::uint64_t txn_id = 0;
  std::vector<WalOp> ops;
};

/// Serialization (stable little-endian layout).
std::vector<std::uint8_t> EncodeBatch(const WalBatch& batch);
bool DecodeBatch(const std::vector<std::uint8_t>& bytes, WalBatch* out);

/// Write-ahead log over a core::HybridStore: the commit path is one
/// SyncPersist — sub-microsecond on the PCM route, a page program plus
/// flush on the classic block-device route (the paper's E7 contrast).
class Wal {
 public:
  explicit Wal(core::HybridStore* store) : store_(store) {}

  /// Appends a commit record; callback fires when durable. `ctx` links
  /// the commit to a trace span (see core::HybridStore::SyncPersist).
  void Commit(const WalBatch& batch, std::function<void(Status)> cb,
              trace::Ctx ctx = {});

  /// Replays every durable batch in commit order (post-crash).
  std::vector<WalBatch> Recover() const;

  /// Media-verified recovery: re-reads the log from the device and
  /// replays only the intact prefix — a log page lost to an
  /// uncorrectable media error truncates replay at the torn point (see
  /// core::HybridStore::RecoverRecords). Asynchronous because the
  /// verification reads go through the whole IO stack.
  void RecoverVerified(std::function<void(std::vector<WalBatch>)> cb);

  /// Empties the log after a checkpoint.
  void Truncate(std::function<void(Status)> cb) {
    store_->TruncateLog(std::move(cb));
  }

  const Counters& counters() const { return counters_; }

 private:
  core::HybridStore* store_;
  Counters counters_;
};

}  // namespace postblock::db

#endif  // POSTBLOCK_DB_WAL_H_
