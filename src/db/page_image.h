#ifndef POSTBLOCK_DB_PAGE_IMAGE_H_
#define POSTBLOCK_DB_PAGE_IMAGE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace postblock::db {

/// Content registry bridging the database's real 4 KiB page bytes and
/// the device simulator's 64-bit payload tokens.
///
/// The flash substrate models page *contents* as one token per page (a
/// deliberate simulation choice, see DESIGN.md): physically, whatever
/// token a read returns corresponds to bytes that are still in the
/// cells. This registry is that correspondence — every image ever
/// written is retained under its token, exactly as the charge remains in
/// a flash page until erase. The database stores bytes here, writes the
/// token through the block stack, and resolves whatever token a later
/// read returns (possibly an older version after a crash) back to bytes.
class PageImageStore {
 public:
  /// Registers one page image, returning its token (never 0; token 0 is
  /// the "never written / trimmed" all-zeroes page).
  std::uint64_t Register(std::vector<std::uint8_t> bytes) {
    const std::uint64_t token = next_token_++;
    images_[token] = std::move(bytes);
    return token;
  }

  /// Bytes for a token previously returned by Register. Token 0 or an
  /// unknown token yields nullptr (callers substitute a zero page).
  const std::vector<std::uint8_t>* Fetch(std::uint64_t token) const {
    auto it = images_.find(token);
    return it == images_.end() ? nullptr : &it->second;
  }

  std::size_t size() const { return images_.size(); }

 private:
  std::uint64_t next_token_ = 1;
  std::unordered_map<std::uint64_t, std::vector<std::uint8_t>> images_;
};

}  // namespace postblock::db

#endif  // POSTBLOCK_DB_PAGE_IMAGE_H_
