#include "db/host_map.h"

#include <memory>
#include <utility>

namespace postblock::db {

HostMap::HostMap(sim::Simulator* sim, host::HostInterface* dev,
                 std::uint64_t num_pages, std::uint32_t page_bytes)
    : sim_(sim), dev_(dev), num_pages_(num_pages),
      page_bytes_(page_bytes) {
  // The peer channel: the device tells us about every page it moves,
  // before the old name can go stale under a future read.
  dev_->SetMigrationHandler(
      [this](std::uint64_t old_name, std::uint64_t new_name) {
        OnMigration(old_name, new_name);
      });
}

void HostMap::Submit(blocklayer::IoRequest request) {
  counters_.Increment("requests");
  if (request.op == blocklayer::IoOp::kFlush) {
    auto done = std::make_shared<blocklayer::IoCallback>(
        std::move(request.on_complete));
    host::Command f = host::Command::Flush(
        [done](const blocklayer::IoResult& res) {
          if (*done) (*done)(blocklayer::IoResult{res.status, {}});
        });
    f.span = request.span;
    dev_->Execute(std::move(f));
    return;
  }
  if (request.nblocks == 0) {
    sim_->Schedule(0, [request = std::move(request)]() {
      request.on_complete(blocklayer::IoResult{Status::Ok(), {}});
    });
    return;
  }
  if (request.lba + request.nblocks > num_pages_) {
    sim_->Schedule(0, [request = std::move(request)]() {
      request.on_complete(blocklayer::IoResult{
          Status::OutOfRange("request beyond host map"), {}});
    });
    return;
  }
  if (request.op == blocklayer::IoOp::kWrite &&
      request.tokens.size() != request.nblocks) {
    sim_->Schedule(0, [request = std::move(request)]() {
      request.on_complete(blocklayer::IoResult{
          Status::InvalidArgument("write token count != nblocks"), {}});
    });
    return;
  }

  struct Tracker {
    std::uint32_t remaining;
    Status first_error;
    std::vector<std::uint64_t> tokens;
    blocklayer::IoCallback cb;
  };
  auto t = std::make_shared<Tracker>();
  t->remaining = request.nblocks;
  t->tokens.assign(
      request.op == blocklayer::IoOp::kRead ? request.nblocks : 0, 0);
  t->cb = std::move(request.on_complete);
  auto on_page = [t](std::uint32_t index, Status st,
                     std::uint64_t token) {
    if (!st.ok() && t->first_error.ok()) t->first_error = st;
    if (index < t->tokens.size()) t->tokens[index] = token;
    if (--t->remaining > 0) return;
    if (t->cb) {
      t->cb(blocklayer::IoResult{t->first_error, std::move(t->tokens)});
    }
  };

  switch (request.op) {
    case blocklayer::IoOp::kRead:
      for (std::uint32_t i = 0; i < request.nblocks; ++i) {
        ReadPage(request.lba + i, 0,
                 [on_page, i](Status st, std::uint64_t token) {
                   on_page(i, std::move(st), token);
                 });
      }
      return;
    case blocklayer::IoOp::kWrite:
      for (std::uint32_t i = 0; i < request.nblocks; ++i) {
        WritePage(request.lba + i, request.tokens[i],
                  [on_page, i](Status st) {
                    on_page(i, std::move(st), 0);
                  });
      }
      return;
    case blocklayer::IoOp::kTrim:
      // Drop the mapping now; the name dies at the next FreeRetired so
      // a crash between trim and checkpoint commit can still recover
      // the old copy.
      for (std::uint32_t i = 0; i < request.nblocks; ++i) {
        const PageId page = request.lba + i;
        auto it = map_.find(page);
        if (it != map_.end()) {
          counters_.Increment("trims");
          retired_.push_back(it->second);
          name_to_page_.erase(it->second);
          map_.erase(it);
        }
        sim_->Schedule(0, [on_page, i]() { on_page(i, Status::Ok(), 0); });
      }
      return;
    default:
      sim_->Schedule(0, [on_page]() {
        on_page(0, Status::InvalidArgument("unsupported op"), 0);
      });
      return;
  }
}

void HostMap::ReadPage(PageId page, int tries,
                       std::function<void(Status, std::uint64_t)> done) {
  auto it = map_.find(page);
  if (it == map_.end()) {
    // Never written (or trimmed): reads as zeroes, like an unmapped LBA.
    counters_.Increment("zero_reads");
    sim_->Schedule(0, [done = std::move(done)]() {
      done(Status::Ok(), 0);
    });
    return;
  }
  counters_.Increment("reads");
  dev_->Execute(host::Command::NamelessRead(
      it->second,
      [this, page, tries,
       done = std::move(done)](const blocklayer::IoResult& res) {
        if (res.status.ok()) {
          done(Status::Ok(), res.tokens.empty() ? 0 : res.tokens[0]);
          return;
        }
        if (res.status.IsNotFound() && tries < 3) {
          // The device migrated the page between our lookup and its
          // read — its callback already updated the map. Re-resolve.
          counters_.Increment("read_retries");
          ReadPage(page, tries + 1, std::move(done));
          return;
        }
        done(res.status, 0);
      }));
}

void HostMap::WritePage(PageId page, std::uint64_t token,
                        std::function<void(Status)> done) {
  counters_.Increment("writes");
  dev_->Execute(host::Command::NamelessWriteTagged(
      token, page, static_cast<std::uint32_t>(epoch_),
      [this, page, done = std::move(done)](
          const blocklayer::IoResult& res) {
        if (!res.status.ok()) {
          done(res.status);
          return;
        }
        if (res.tokens.empty()) {
          done(Status::Internal("nameless write returned no name"));
          return;
        }
        const std::uint64_t name = res.tokens[0];
        auto old = map_.find(page);
        if (old != map_.end()) {
          retired_.push_back(old->second);
          name_to_page_.erase(old->second);
          old->second = name;
        } else {
          map_[page] = name;
        }
        name_to_page_[name] = page;
        done(Status::Ok());
      }));
}

void HostMap::FreeRetired(std::function<void(Status)> cb) {
  if (retired_.empty()) {
    sim_->Schedule(0, [cb = std::move(cb)]() { cb(Status::Ok()); });
    return;
  }
  auto names = std::make_shared<std::vector<std::uint64_t>>(
      std::move(retired_));
  retired_.clear();
  struct Tracker {
    std::size_t remaining;
    Status first_error;
    std::function<void(Status)> cb;
  };
  auto t = std::make_shared<Tracker>();
  t->remaining = names->size();
  t->cb = std::move(cb);
  counters_.Add("retired_freed", names->size());
  for (const std::uint64_t name : *names) {
    dev_->Execute(host::Command::NamelessFree(
        name, [this, t](const blocklayer::IoResult& res) {
          // NotFound = already gone (crash reclaim); not an error.
          if (!res.status.ok() && !res.status.IsNotFound() &&
              t->first_error.ok()) {
            t->first_error = res.status;
          }
          if (!res.status.ok() && res.status.IsNotFound()) {
            counters_.Increment("free_stale");
          }
          if (--t->remaining == 0) t->cb(t->first_error);
        }));
  }
}

void HostMap::OnMigration(std::uint64_t old_name, std::uint64_t new_name) {
  auto it = name_to_page_.find(old_name);
  if (it != name_to_page_.end()) {
    const PageId page = it->second;
    name_to_page_.erase(it);
    name_to_page_[new_name] = page;
    map_[page] = new_name;
    counters_.Increment("migrations");
    return;
  }
  // A retired (not-yet-freed) copy can be migrated too; track it so the
  // eventual free hits the right name instead of leaking the page.
  for (std::uint64_t& name : retired_) {
    if (name == old_name) {
      name = new_name;
      counters_.Increment("retired_migrations");
      return;
    }
  }
  counters_.Increment("stale_migrations");
}

void HostMap::Crash() {
  counters_.Increment("crashes");
  map_.clear();
  name_to_page_.clear();
  retired_.clear();
}

void HostMap::Adopt(PageId page, std::uint64_t name) {
  map_[page] = name;
  name_to_page_[name] = page;
}

bool HostMap::Lookup(PageId page, std::uint64_t* name) const {
  auto it = map_.find(page);
  if (it == map_.end()) return false;
  if (name != nullptr) *name = it->second;
  return true;
}

}  // namespace postblock::db
