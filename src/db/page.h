#ifndef POSTBLOCK_DB_PAGE_H_
#define POSTBLOCK_DB_PAGE_H_

#include <cstdint>
#include <cstring>
#include <vector>

#include "common/types.h"

namespace postblock::db {

/// Database pages are one logical block (4 KiB by default).
using PageId = std::uint64_t;
inline constexpr PageId kInvalidPageId = ~0ull;
inline constexpr std::uint32_t kPageBytes = 4096;

/// On-page object kinds (first byte of every page).
enum class PageType : std::uint8_t {
  kFree = 0,
  kMeta,
  kBTreeLeaf,
  kBTreeInternal,
  kHeap,
};

/// Little-endian field accessors over a raw page buffer. The database
/// serializes everything explicitly — pages are bytes on a device, not
/// C++ objects.
class PageView {
 public:
  explicit PageView(std::vector<std::uint8_t>* bytes) : bytes_(bytes) {}

  std::uint8_t ReadU8(std::size_t off) const { return (*bytes_)[off]; }
  void WriteU8(std::size_t off, std::uint8_t v) { (*bytes_)[off] = v; }

  std::uint16_t ReadU16(std::size_t off) const {
    std::uint16_t v;
    std::memcpy(&v, bytes_->data() + off, sizeof(v));
    return v;
  }
  void WriteU16(std::size_t off, std::uint16_t v) {
    std::memcpy(bytes_->data() + off, &v, sizeof(v));
  }

  std::uint64_t ReadU64(std::size_t off) const {
    std::uint64_t v;
    std::memcpy(&v, bytes_->data() + off, sizeof(v));
    return v;
  }
  void WriteU64(std::size_t off, std::uint64_t v) {
    std::memcpy(bytes_->data() + off, &v, sizeof(v));
  }

  PageType type() const { return static_cast<PageType>(ReadU8(0)); }
  void set_type(PageType t) {
    WriteU8(0, static_cast<std::uint8_t>(t));
  }

 private:
  std::vector<std::uint8_t>* bytes_;
};

}  // namespace postblock::db

#endif  // POSTBLOCK_DB_PAGE_H_
