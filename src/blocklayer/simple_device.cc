#include "blocklayer/simple_device.h"

#include <memory>
#include <utility>

namespace postblock::blocklayer {

SimpleBlockDevice::SimpleBlockDevice(sim::Simulator* sim,
                                     const SimpleDeviceConfig& config)
    : sim_(sim),
      config_(config),
      units_(sim, "simple-dev", static_cast<int>(config.units)),
      tokens_(config.num_blocks, 0) {}

void SimpleBlockDevice::Submit(IoRequest request) {
  counters_.Increment("requests");
  if (request.nblocks == 0 || request.op == IoOp::kFlush) {
    sim_->Schedule(0, [request = std::move(request)]() {
      request.on_complete(IoResult{Status::Ok(), {}});
    });
    return;
  }
  if (request.lba + request.nblocks > config_.num_blocks) {
    sim_->Schedule(0, [request = std::move(request)]() {
      request.on_complete(
          IoResult{Status::OutOfRange("beyond device"), {}});
    });
    return;
  }
  if (request.op == IoOp::kWrite &&
      request.tokens.size() != request.nblocks) {
    sim_->Schedule(0, [request = std::move(request)]() {
      request.on_complete(IoResult{
          Status::InvalidArgument("write token count != nblocks"), {}});
    });
    return;
  }
  auto req = std::make_shared<IoRequest>(std::move(request));
  sim_->Schedule(config_.controller_overhead_ns, [this, req]() {
    struct Tracker {
      std::uint32_t remaining;
      std::vector<std::uint64_t> tokens;
    };
    auto tracker = std::make_shared<Tracker>();
    tracker->remaining = req->nblocks;
    if (req->op == IoOp::kRead) tracker->tokens.assign(req->nblocks, 0);
    for (std::uint32_t i = 0; i < req->nblocks; ++i) {
      const Lba lba = req->lba + i;
      const SimTime service = req->op == IoOp::kRead ? config_.read_ns
                              : req->op == IoOp::kWrite
                                  ? config_.write_ns
                                  : 0;
      units_.UseFor(service, [this, req, tracker, lba, i]() {
        switch (req->op) {
          case IoOp::kRead:
            tracker->tokens[i] = tokens_[lba];
            counters_.Increment("blocks_read");
            break;
          case IoOp::kWrite:
            tokens_[lba] = req->tokens[i];
            counters_.Increment("blocks_written");
            break;
          case IoOp::kTrim:
            tokens_[lba] = 0;
            counters_.Increment("blocks_trimmed");
            break;
          case IoOp::kFlush:
            break;
        }
        if (--tracker->remaining == 0) {
          req->on_complete(
              IoResult{Status::Ok(), std::move(tracker->tokens)});
        }
      });
    }
  });
}

}  // namespace postblock::blocklayer
