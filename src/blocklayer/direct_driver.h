#ifndef POSTBLOCK_BLOCKLAYER_DIRECT_DRIVER_H_
#define POSTBLOCK_BLOCKLAYER_DIRECT_DRIVER_H_

#include <cstdint>

#include "blocklayer/block_device.h"
#include "blocklayer/cpu_model.h"
#include "common/histogram.h"
#include "common/stats.h"
#include "metrics/metrics.h"
#include "sim/resource.h"
#include "sim/simulator.h"

namespace postblock::blocklayer {

/// Direct user-space access to the device, bypassing the block layer —
/// the FusionIO ioMemory SDK path the paper cites: no software queue, no
/// scheduler, no interrupt; just a thin submit cost and a polled
/// completion cost.
class DirectDriver : public BlockDevice {
 public:
  DirectDriver(sim::Simulator* sim, BlockDevice* lower,
               const CpuCosts& cpu = CpuCosts::Direct(),
               std::uint32_t cores = 4,
               const IoRetryPolicy& retry = IoRetryPolicy());
  ~DirectDriver() override = default;

  std::uint64_t num_blocks() const override { return lower_->num_blocks(); }
  std::uint32_t block_bytes() const override {
    return lower_->block_bytes();
  }
  void Submit(IoRequest request) override;
  const Counters& counters() const override { return counters_; }

  /// Typed commands: block-expressible kinds pay the driver's thin
  /// submit/poll costs; extended kinds (atomic groups, nameless writes)
  /// pass straight through to the device when it supports them — the
  /// direct path exists precisely to not stand between host and device.
  void Execute(host::Command cmd) override;
  bool Supports(host::CommandKind kind) const override;
  /// Capability discovery and migration handling pass straight through
  /// (the driver only restates its own command mask).
  host::DeviceCaps Caps() const override {
    host::DeviceCaps caps = lower_->Caps();
    caps.command_mask = CapabilityMask();
    return caps;
  }
  void SetMigrationHandler(host::MigrationHandler handler) override {
    lower_->SetMigrationHandler(std::move(handler));
  }

  const Histogram& latency() const { return latency_; }
  double CpuUtilization() const { return cpu_res_.Utilization(); }

  /// Simulates power loss / host reset: in-flight requests are dropped.
  void PowerCycle() { ++epoch_; }

  /// Registers this driver's time-series streams (polled-only — the
  /// driver's hot path stays untouched). Call once per registry.
  void RegisterMetrics(metrics::MetricRegistry* m);

 private:
  /// One device submission; re-entered (with the same `start`) by the
  /// EIO retry path when a read comes back DataLoss.
  void SubmitAttempt(IoRequest request, SimTime start,
                     std::uint32_t attempt);

  sim::Simulator* sim_;
  BlockDevice* lower_;
  CpuCosts cpu_;
  sim::Resource cpu_res_;
  IoRetryPolicy retry_;
  std::uint64_t epoch_ = 0;
  Histogram latency_;
  Counters counters_;
};

}  // namespace postblock::blocklayer

#endif  // POSTBLOCK_BLOCKLAYER_DIRECT_DRIVER_H_
