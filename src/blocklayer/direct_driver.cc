#include "blocklayer/direct_driver.h"

#include <utility>

namespace postblock::blocklayer {

DirectDriver::DirectDriver(sim::Simulator* sim, BlockDevice* lower,
                           const CpuCosts& cpu, std::uint32_t cores,
                           const IoRetryPolicy& retry)
    : sim_(sim),
      lower_(lower),
      cpu_(cpu),
      cpu_res_(sim, "direct-cpu", static_cast<int>(cores)),
      retry_(retry) {}

void DirectDriver::Submit(IoRequest request) {
  counters_.Increment("submitted");
  SubmitAttempt(std::move(request), sim_->Now(), 1);
}

void DirectDriver::SubmitAttempt(IoRequest request, SimTime start,
                                 std::uint32_t attempt) {
  const std::uint64_t epoch = epoch_;
  IoCallback user_cb = std::move(request.on_complete);
  // Resubmission parameters, captured before `request` is moved below.
  const IoOp op = request.op;
  const Lba lba = request.lba;
  const std::uint32_t nblocks = request.nblocks;
  const std::uint8_t priority = request.priority;
  const trace::SpanId span = request.span;
  request.on_complete = [this, start, epoch, op, lba, nblocks, priority,
                         span, attempt, user_cb = std::move(user_cb)](
                            const IoResult& result) mutable {
    if (epoch != epoch_) return;
    // EIO retry: a read that still fails after the device's internal
    // ladder gets a bounded, backed-off resubmission (full attempt,
    // including submit CPU — the user-space driver really re-polls).
    if (op == IoOp::kRead && result.status.IsDataLoss() &&
        attempt < retry_.max_attempts) {
      counters_.Increment("eio_retries");
      IoRequest r;
      r.op = op;
      r.lba = lba;
      r.nblocks = nblocks;
      r.priority = priority;
      r.span = span;
      r.on_complete = std::move(user_cb);
      sim_->Schedule(retry_.backoff_ns << (attempt - 1),
                     [this, start, attempt, r = std::move(r)]() mutable {
                       SubmitAttempt(std::move(r), start, attempt + 1);
                     });
      return;
    }
    if (!result.status.ok()) counters_.Increment("io_errors");
    cpu_res_.UseFor(cpu_.polled_ns,
                    [this, start, epoch, user_cb = std::move(user_cb),
                     result]() {
                      if (epoch != epoch_) return;
                      latency_.Record(sim_->Now() - start);
                      counters_.Increment("completed");
                      if (user_cb) user_cb(result);
                    });
  };
  cpu_res_.UseFor(cpu_.submit_ns,
                  [this, epoch, request = std::move(request)]() mutable {
                    if (epoch != epoch_) return;
                    lower_->Submit(std::move(request));
                  });
}

void DirectDriver::Execute(host::Command cmd) {
  if (host::IsBlockExpressible(cmd.kind)) {
    Submit(host::LowerToIoRequest(std::move(cmd)));
    return;
  }
  if (cmd.kind == host::CommandKind::kHint) {
    counters_.Increment("hints");
    if (cmd.on_complete) cmd.on_complete(IoResult{Status::Ok(), {}});
    return;
  }
  if (lower_->Supports(cmd.kind)) {
    counters_.Increment("passthrough_cmds");
    lower_->Execute(std::move(cmd));
    return;
  }
  if (cmd.on_complete) {
    cmd.on_complete(IoResult{
        Status::Unimplemented("command not supported below driver"), {}});
  }
}

bool DirectDriver::Supports(host::CommandKind kind) const {
  if (host::IsBlockExpressible(kind) || kind == host::CommandKind::kHint) {
    return true;
  }
  return lower_->Supports(kind);
}

void DirectDriver::RegisterMetrics(metrics::MetricRegistry* m) {
  m->AddPolledCounter("direct.submitted",
                      [this] { return counters_.Get("submitted"); });
  m->AddPolledCounter("direct.completed",
                      [this] { return counters_.Get("completed"); });
  m->AddPolledCounter("direct.cpu_busy_ns",
                      [this] { return cpu_res_.busy_ns(); });
  m->AddGauge("direct.inflight", [this] {
    // Submitted-but-not-completed; exact because both counters advance
    // only in sim callbacks.
    return static_cast<double>(counters_.Get("submitted") -
                               counters_.Get("completed"));
  });
}

}  // namespace postblock::blocklayer
