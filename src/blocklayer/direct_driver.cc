#include "blocklayer/direct_driver.h"

#include <utility>

namespace postblock::blocklayer {

DirectDriver::DirectDriver(sim::Simulator* sim, BlockDevice* lower,
                           const CpuCosts& cpu, std::uint32_t cores)
    : sim_(sim),
      lower_(lower),
      cpu_(cpu),
      cpu_res_(sim, "direct-cpu", static_cast<int>(cores)) {}

void DirectDriver::Submit(IoRequest request) {
  counters_.Increment("submitted");
  const SimTime start = sim_->Now();
  const std::uint64_t epoch = epoch_;
  IoCallback user_cb = std::move(request.on_complete);
  request.on_complete = [this, start, epoch, user_cb = std::move(user_cb)](
                            const IoResult& result) {
    if (epoch != epoch_) return;
    cpu_res_.UseFor(cpu_.polled_ns,
                    [this, start, epoch, user_cb, result]() {
                      if (epoch != epoch_) return;
                      latency_.Record(sim_->Now() - start);
                      counters_.Increment("completed");
                      if (user_cb) user_cb(result);
                    });
  };
  cpu_res_.UseFor(cpu_.submit_ns,
                  [this, epoch, request = std::move(request)]() mutable {
                    if (epoch != epoch_) return;
                    lower_->Submit(std::move(request));
                  });
}

void DirectDriver::RegisterMetrics(metrics::MetricRegistry* m) {
  m->AddPolledCounter("direct.submitted",
                      [this] { return counters_.Get("submitted"); });
  m->AddPolledCounter("direct.completed",
                      [this] { return counters_.Get("completed"); });
  m->AddPolledCounter("direct.cpu_busy_ns",
                      [this] { return cpu_res_.busy_ns(); });
  m->AddGauge("direct.inflight", [this] {
    // Submitted-but-not-completed; exact because both counters advance
    // only in sim callbacks.
    return static_cast<double>(counters_.Get("submitted") -
                               counters_.Get("completed"));
  });
}

}  // namespace postblock::blocklayer
