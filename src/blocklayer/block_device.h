#ifndef POSTBLOCK_BLOCKLAYER_BLOCK_DEVICE_H_
#define POSTBLOCK_BLOCKLAYER_BLOCK_DEVICE_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "blocklayer/request.h"
#include "common/stats.h"
#include "host/command.h"

namespace postblock::blocklayer {

/// The block device interface the paper argues must die: a flat array of
/// fixed-size logical blocks accepting asynchronous read/write (plus the
/// retrofitted trim/flush). Implemented by the simulated SSD, the HDD
/// model, and simple fixed-latency devices.
///
/// Every BlockDevice is also a host::HostInterface: the typed
/// `Execute(host::Command)` is the unified host-facing entry point, and
/// `Submit(IoRequest)` remains as the thin untyped adapter underneath
/// it (existing callers and tests compile unchanged). Block-expressible
/// commands lower onto Submit; devices that natively speak the extended
/// kinds (atomic groups, nameless writes, hints) override Execute and
/// Supports — capability discovery is how a host finds out.
class BlockDevice : public host::HostInterface {
 public:
  ~BlockDevice() override = default;

  /// Number of addressable logical blocks.
  virtual std::uint64_t num_blocks() const = 0;
  /// Logical block size in bytes.
  virtual std::uint32_t block_bytes() const = 0;

  /// Submits one asynchronous request. The completion callback fires in
  /// simulated time; it must always fire exactly once.
  virtual void Submit(IoRequest request) = 0;

  /// Batched doorbell submission: all requests were made visible to the
  /// device by one doorbell ring. The default lowers to per-request
  /// Submit (a device with no doorbell model); the simulated SSD
  /// overrides it to amortize admission across the batch.
  virtual void SubmitBatch(std::vector<IoRequest> batch) {
    for (IoRequest& r : batch) Submit(std::move(r));
  }

  /// host::HostInterface — block-expressible commands lower onto
  /// Submit; hints are advisory (accepted and dropped); anything else
  /// completes Unimplemented inline (check Supports first).
  void Execute(host::Command cmd) override {
    if (host::IsBlockExpressible(cmd.kind)) {
      Submit(host::LowerToIoRequest(std::move(cmd)));
      return;
    }
    if (cmd.kind == host::CommandKind::kHint) {
      if (cmd.on_complete) cmd.on_complete(IoResult{Status::Ok(), {}});
      return;
    }
    if (cmd.on_complete) {
      cmd.on_complete(IoResult{
          Status::Unimplemented("command kind not supported by this"
                                " device"),
          {}});
    }
  }

  bool Supports(host::CommandKind kind) const override {
    return host::IsBlockExpressible(kind) ||
           kind == host::CommandKind::kHint;
  }

  virtual const Counters& counters() const = 0;
};

}  // namespace postblock::blocklayer

#endif  // POSTBLOCK_BLOCKLAYER_BLOCK_DEVICE_H_
