#ifndef POSTBLOCK_BLOCKLAYER_BLOCK_DEVICE_H_
#define POSTBLOCK_BLOCKLAYER_BLOCK_DEVICE_H_

#include <cstdint>

#include "blocklayer/request.h"
#include "common/stats.h"

namespace postblock::blocklayer {

/// The block device interface the paper argues must die: a flat array of
/// fixed-size logical blocks accepting asynchronous read/write (plus the
/// retrofitted trim/flush). Implemented by the simulated SSD, the HDD
/// model, and simple fixed-latency devices.
class BlockDevice {
 public:
  virtual ~BlockDevice() = default;

  /// Number of addressable logical blocks.
  virtual std::uint64_t num_blocks() const = 0;
  /// Logical block size in bytes.
  virtual std::uint32_t block_bytes() const = 0;

  /// Submits one asynchronous request. The completion callback fires in
  /// simulated time; it must always fire exactly once.
  virtual void Submit(IoRequest request) = 0;

  virtual const Counters& counters() const = 0;
};

}  // namespace postblock::blocklayer

#endif  // POSTBLOCK_BLOCKLAYER_BLOCK_DEVICE_H_
