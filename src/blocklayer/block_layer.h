#ifndef POSTBLOCK_BLOCKLAYER_BLOCK_LAYER_H_
#define POSTBLOCK_BLOCKLAYER_BLOCK_LAYER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "blocklayer/block_device.h"
#include "blocklayer/cpu_model.h"
#include "blocklayer/io_scheduler.h"
#include "blocklayer/request.h"
#include "common/histogram.h"
#include "common/stats.h"
#include "metrics/metrics.h"
#include "sim/resource.h"
#include "sim/simulator.h"
#include "trace/trace.h"
#include "trace/tracer.h"

namespace postblock::blocklayer {

/// Configuration of the kernel block layer model.
struct BlockLayerConfig {
  CpuCosts cpu = CpuCosts::Legacy();
  std::uint32_t cores = 4;
  /// Max requests outstanding at the device (per-queue depth).
  std::uint32_t queue_depth = 32;
  /// Number of software/hardware queue pairs (1 = the 2012 single-queue
  /// design with its shared-lock behaviour; >1 = blk-mq style).
  std::uint32_t nr_queues = 1;
  SchedulerKind scheduler = SchedulerKind::kMerge;
  /// Completion by interrupt (true) or polling (false).
  bool interrupt_completion = true;
  /// Bounded resubmission of reads that completed with DataLoss.
  IoRetryPolicy retry;
  /// Optional latency-attribution tracer (see trace/). When set and
  /// enabled, every IO's submit CPU, queue wait and completion CPU
  /// become spans on a per-queue "blkq-N" track; when null or disabled
  /// the hot path pays only a pointer test.
  trace::Tracer* tracer = nullptr;
  /// Optional time-series registry (see src/metrics/). When set, the
  /// layer registers queue depth, inflight, CPU busy time and a
  /// windowed latency histogram at construction; null costs the hot
  /// path only a pointer test.
  metrics::MetricRegistry* metrics = nullptr;
};

/// The Linux-style block layer: software queues feeding a lower
/// BlockDevice, per-IO host CPU costs, completion via interrupt or
/// polling. Stackable — it is itself a BlockDevice.
///
/// This is the layer the paper says "provides too much abstraction in
/// the absence of a simple performance model": every request pays
/// submit+schedule+completion CPU, which caps IOPS once the device
/// itself stops being the bottleneck (E9).
class BlockLayer : public BlockDevice {
 public:
  BlockLayer(sim::Simulator* sim, BlockDevice* lower,
             const BlockLayerConfig& config);
  ~BlockLayer() override = default;

  std::uint64_t num_blocks() const override { return lower_->num_blocks(); }
  std::uint32_t block_bytes() const override {
    return lower_->block_bytes();
  }
  void Submit(IoRequest request) override;
  const Counters& counters() const override { return counters_; }

  const Histogram& latency() const { return latency_; }
  const IoScheduler& scheduler(std::uint32_t q) const {
    return *queues_[q].scheduler;
  }
  double CpuUtilization() const { return cpu_.Utilization(); }

  /// Simulates power loss / host reset: queued and in-flight requests
  /// are dropped without completing (their pooled IoStates are
  /// reclaimed — scheduler-resident ones immediately, in-flight ones
  /// when their stale completion arrives).
  void PowerCycle();

  /// IoState pool accounting, for tests: records ever allocated and
  /// records currently recycled. Equal when no IO is in flight — a gap
  /// at quiescence means pooled state leaked.
  std::size_t io_states_allocated() const { return io_states_.size(); }
  std::size_t io_states_free() const { return io_free_.size(); }

 private:
  struct QueuePair {
    std::unique_ptr<IoScheduler> scheduler;
    /// Serializes scheduler insertion — the single-queue lock whose
    /// contention the paper mentions the Linux community was removing.
    std::unique_ptr<sim::Resource> lock;
    std::uint32_t outstanding = 0;
  };

  /// Per-IO state, pooled and recycled: submission and completion stage
  /// lambdas capture only {this, IoState*}, small enough for both
  /// std::function's SSO and InplaceCallback's inline buffer, so the
  /// block layer's hot path schedules without heap allocation.
  struct IoState {
    SimTime start = 0;
    std::uint64_t epoch = 0;
    std::uint32_t q = 0;
    IoRequest req;
    IoCallback user_cb;
    IoResult result;
    // Trace identity (stable copies — req is moved into the scheduler).
    trace::SpanId span = 0;
    trace::Origin origin = trace::Origin::kMeta;
    bool root = false;  // this layer minted the span -> it records kIo
    Lba lba = 0;
    SimTime complete_t = 0;  // device completion (interrupt/poll start)
    // EIO retry bookkeeping (reads only; req is moved into the
    // scheduler, so the resubmission parameters live here).
    IoOp op = IoOp::kRead;
    std::uint32_t nblocks = 1;
    std::uint8_t priority = 0;
    std::uint8_t attempts = 1;  // total device submissions so far
  };

  IoState* AcquireIo();
  void ReleaseIo(IoState* st);

  void SubmitToQueue(IoState* st);
  void EnqueueLocked(IoState* st);
  void OnDeviceComplete(IoState* st, const IoResult& result);
  void FinishIo(IoState* st);
  void RetrySubmit(IoState* st);
  void Dispatch(std::uint32_t q);

  bool Traced() const { return tracer_ != nullptr && tracer_->enabled(); }

  sim::Simulator* sim_;
  BlockDevice* lower_;
  BlockLayerConfig config_;
  sim::Resource cpu_;
  std::vector<QueuePair> queues_;
  std::uint64_t rr_ = 0;  // submission queue choice (models per-core)
  std::uint64_t epoch_ = 0;
  std::vector<std::unique_ptr<IoState>> io_states_;  // owns every record
  std::vector<IoState*> io_free_;                    // recycled records
  Histogram latency_;
  Counters counters_;
  trace::Tracer* tracer_;
  std::vector<std::uint32_t> q_tracks_;  // "blkq-N" per queue pair

  // Pushed in parallel with counters_ ("submitted"/"completed") for the
  // sampler-vs-Counters cross-check.
  metrics::MetricRegistry* metrics_ = nullptr;
  metrics::Id m_submitted_ = metrics::kInvalidId;
  metrics::Id m_completed_ = metrics::kInvalidId;
  metrics::Id m_lat_ = metrics::kInvalidId;
};

}  // namespace postblock::blocklayer

#endif  // POSTBLOCK_BLOCKLAYER_BLOCK_LAYER_H_
