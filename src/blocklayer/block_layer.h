#ifndef POSTBLOCK_BLOCKLAYER_BLOCK_LAYER_H_
#define POSTBLOCK_BLOCKLAYER_BLOCK_LAYER_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "blocklayer/block_device.h"
#include "blocklayer/cpu_model.h"
#include "blocklayer/io_scheduler.h"
#include "blocklayer/request.h"
#include "common/histogram.h"
#include "common/stats.h"
#include "host/tag_set.h"
#include "metrics/metrics.h"
#include "sim/resource.h"
#include "sim/simulator.h"
#include "trace/trace.h"
#include "trace/tracer.h"

namespace postblock::blocklayer {

/// Configuration of the kernel block layer model.
///
/// Every multi-queue knob defaults to the behaviour of the pre-mq
/// layer: elastic tags, no stream pinning, unbatched doorbells,
/// uncoalesced completions, per-queue depth accounting. A default
/// config therefore produces a schedule byte-identical to the old
/// block layer at any nr_queues.
struct BlockLayerConfig {
  CpuCosts cpu = CpuCosts::Legacy();
  std::uint32_t cores = 4;
  /// Max requests outstanding at the device (per-queue depth).
  std::uint32_t queue_depth = 32;
  /// Number of software/hardware queue pairs (1 = the 2012 single-queue
  /// design with its shared-lock behaviour; >1 = blk-mq style).
  std::uint32_t nr_queues = 1;
  SchedulerKind scheduler = SchedulerKind::kMerge;
  /// Completion by interrupt (true) or polling (false).
  bool interrupt_completion = true;
  /// Bounded resubmission of reads that completed with DataLoss.
  IoRetryPolicy retry;

  // ---- multi-queue host path (blk-mq style) -------------------------
  /// Fixed inflight tags per queue; an IO holds one tag from submit to
  /// completion and the tag indexes its state record. 0 = elastic (the
  /// old pooled behaviour: grows on demand, never backpressures).
  /// Exhaustion of a fixed set parks the request until a tag frees.
  std::uint32_t tags_per_queue = 0;
  /// Pin nonzero IoRequest::stream to queue (stream % nr_queues), so
  /// e.g. commit-critical WAL traffic owns a queue instead of sharing
  /// the round-robin. Stream 0 stays round-robin.
  bool stream_queues = false;
  /// Dispatch batching: up to this many requests enter the device per
  /// doorbell ring (BlockDevice::SubmitBatch). 1 = ring per request.
  std::uint32_t doorbell_batch = 1;
  /// Host CPU cost of one batched doorbell ring (only paid when
  /// doorbell_batch > 1).
  SimTime doorbell_ns = 0;
  /// Completion coalescing: completions accumulate in a per-queue
  /// completion ring and one completion-CPU charge drains up to this
  /// many. 1 = deliver each completion individually (old behaviour).
  std::uint32_t coalesce_depth = 1;
  /// Max time a posted completion may sit in the ring before a flush is
  /// forced (the interrupt-coalescing timeout). 0 with coalesce_depth>1
  /// flushes at the next simulator event boundary (same-instant
  /// batching).
  SimTime coalesce_ns = 0;
  /// Shared device-slot budget across all queues, arbitrated by
  /// deficit-round-robin over qos_weights. 0 = independent per-queue
  /// queue_depth accounting (old behaviour).
  std::uint32_t shared_depth = 0;
  /// Per-queue DRR weight (empty = 1 each; 0 entries clamp to 1 so
  /// every queue with work gets at least one slot per round —
  /// starvation-free by construction).
  std::vector<std::uint32_t> qos_weights;
  /// Scheduler merge policy (per queue): how far from the tail a new
  /// request may back-merge, and whether merging may cross streams.
  std::uint32_t merge_window = 1;
  bool cross_stream_merge = false;
  /// Register per-queue depth/inflight/latency metrics ("blk.qN.*")
  /// when a registry is attached. Off by default so attaching a
  /// registry to a default config keeps the pre-mq metric inventory.
  bool per_queue_metrics = false;

  /// Optional latency-attribution tracer (see trace/). When set and
  /// enabled, every IO's submit CPU, queue wait and completion CPU
  /// become spans on a per-queue "blkq-N" track; when null or disabled
  /// the hot path pays only a pointer test.
  trace::Tracer* tracer = nullptr;
  /// Optional time-series registry (see src/metrics/). When set, the
  /// layer registers queue depth, inflight, CPU busy time and a
  /// windowed latency histogram at construction; null costs the hot
  /// path only a pointer test.
  metrics::MetricRegistry* metrics = nullptr;
};

/// The Linux-style block layer: software queues feeding a lower
/// BlockDevice, per-IO host CPU costs, completion via interrupt or
/// polling. Stackable — it is itself a BlockDevice.
///
/// This is the layer the paper says "provides too much abstraction in
/// the absence of a simple performance model": every request pays
/// submit+schedule+completion CPU, which caps IOPS once the device
/// itself stops being the bottleneck (E9). The multi-queue path (§3
/// principle 3 — import the networking stack's lessons) splits the
/// submission side into per-context queues with private locks, fixed
/// tag sets for inflight state, batched doorbells, and per-queue
/// completion rings with interrupt coalescing.
class BlockLayer : public BlockDevice {
 public:
  BlockLayer(sim::Simulator* sim, BlockDevice* lower,
             const BlockLayerConfig& config);
  ~BlockLayer() override = default;

  std::uint64_t num_blocks() const override { return lower_->num_blocks(); }
  std::uint32_t block_bytes() const override {
    return lower_->block_bytes();
  }
  void Submit(IoRequest request) override;
  const Counters& counters() const override { return counters_; }

  /// Typed commands: block-expressible kinds go through the queued
  /// Submit path; extended kinds the block vocabulary cannot express
  /// (atomic groups, nameless writes) pass through to the lower device
  /// when it supports them — the block layer cannot add value to a
  /// command it cannot name, which is the paper's point.
  void Execute(host::Command cmd) override;
  bool Supports(host::CommandKind kind) const override;
  /// Capability discovery and migration handling are pure pass-through:
  /// this layer adds nothing to either (only its own mask bits).
  host::DeviceCaps Caps() const override {
    host::DeviceCaps caps = lower_->Caps();
    caps.command_mask = CapabilityMask();
    return caps;
  }
  void SetMigrationHandler(host::MigrationHandler handler) override {
    lower_->SetMigrationHandler(std::move(handler));
  }

  const Histogram& latency() const { return latency_; }
  const IoScheduler& scheduler(std::uint32_t q) const {
    return *queues_[q].scheduler;
  }
  double CpuUtilization() const { return cpu_.Utilization(); }

  /// Simulates power loss / host reset: queued and in-flight requests
  /// are dropped without completing (their tagged IoStates are
  /// reclaimed — scheduler-resident and ring-resident ones immediately,
  /// in-flight ones when their stale completion arrives). Tag waiters
  /// are dropped too.
  void PowerCycle();

  /// IoState accounting, for tests: records ever allocated (across all
  /// queues) and records currently free. Equal when no IO is in flight
  /// — a gap at quiescence means tagged state leaked.
  std::size_t io_states_allocated() const;
  std::size_t io_states_free() const;

  /// Tag set of queue q (tests: capacity/in_use/exhausted).
  const host::TagSet& tags(std::uint32_t q) const {
    return queues_[q].tags;
  }
  /// Requests parked waiting for a tag on queue q.
  std::size_t tag_waiters(std::uint32_t q) const {
    return queues_[q].waiters.size();
  }

 private:
  /// Per-IO state, tag-addressed per queue: `tag` indexes into the
  /// owning queue's `states` deque (stable addresses), so inflight
  /// lookup is an index, not a pooled-pointer search. Submission and
  /// completion stage lambdas capture only {this, IoState*}, small
  /// enough for InplaceCallback's inline buffer, so the block layer's
  /// hot path schedules without heap allocation.
  struct IoState {
    SimTime start = 0;
    std::uint64_t epoch = 0;
    std::uint32_t q = 0;
    std::uint32_t tag = 0;
    IoRequest req;
    IoCallback user_cb;
    IoResult result;
    // Trace identity (stable copies — req is moved into the scheduler).
    trace::SpanId span = 0;
    trace::Origin origin = trace::Origin::kMeta;
    bool root = false;  // this layer minted the span -> it records kIo
    Lba lba = 0;
    SimTime complete_t = 0;  // device completion (interrupt/poll start)
    // EIO retry bookkeeping (reads only; req is moved into the
    // scheduler, so the resubmission parameters live here).
    IoOp op = IoOp::kRead;
    std::uint32_t nblocks = 1;
    std::uint8_t priority = 0;
    std::uint8_t attempts = 1;  // total device submissions so far
  };

  struct QueuePair {
    std::unique_ptr<IoScheduler> scheduler;
    /// Serializes scheduler insertion — the single-queue lock whose
    /// contention the paper mentions the Linux community was removing.
    /// Per queue pair, so nr_queues > 1 splits the contention.
    std::unique_ptr<sim::Resource> lock;
    std::uint32_t outstanding = 0;
    /// Inflight tag allocator + tag-indexed state records.
    host::TagSet tags;
    std::deque<IoState> states;
    /// Requests parked on tag exhaustion (fixed tag sets only).
    std::deque<IoRequest> waiters;
    /// Completion ring: device completions awaiting the coalesced
    /// completion-CPU charge.
    std::vector<IoState*> cq_ring;
    bool cq_flush_armed = false;
    std::uint64_t cq_gen = 0;  // invalidates armed flush timers
  };

  IoState* AcquireIo(std::uint32_t q);
  void ReleaseIo(IoState* st);

  std::uint32_t SelectQueue(const IoRequest& request);
  void StartIo(std::uint32_t q, IoRequest request);
  void SubmitToQueue(IoState* st);
  void EnqueueLocked(IoState* st);
  void OnDeviceComplete(IoState* st, const IoResult& result);
  void FlushCq(std::uint32_t q);
  void FinishIo(IoState* st);
  void RetrySubmit(IoState* st);
  /// Wraps a dequeued request's completion with the depth-accounting
  /// release (exactly once per device IO — a merged request's fan-out
  /// runs k per-state wrappers but frees one slot).
  IoRequest WrapDispatchAccounting(std::uint32_t q, IoRequest r);
  void DispatchEntry(std::uint32_t q);
  void Dispatch(std::uint32_t q);
  void DispatchShared();
  std::uint32_t WeightOf(std::uint32_t q) const;

  bool Traced() const { return tracer_ != nullptr && tracer_->enabled(); }

  sim::Simulator* sim_;
  BlockDevice* lower_;
  BlockLayerConfig config_;
  sim::Resource cpu_;
  std::vector<QueuePair> queues_;
  std::uint64_t rr_ = 0;  // submission queue choice (models per-core)
  std::uint64_t epoch_ = 0;
  // Shared-depth DRR arbitration state (shared_depth > 0 only).
  std::vector<std::uint32_t> drr_credits_;
  std::uint32_t drr_pos_ = 0;
  std::uint32_t shared_outstanding_ = 0;
  Histogram latency_;
  Counters counters_;
  trace::Tracer* tracer_;
  std::vector<std::uint32_t> q_tracks_;  // "blkq-N" per queue pair

  // Pushed in parallel with counters_ ("submitted"/"completed") for the
  // sampler-vs-Counters cross-check.
  metrics::MetricRegistry* metrics_ = nullptr;
  metrics::Id m_submitted_ = metrics::kInvalidId;
  metrics::Id m_completed_ = metrics::kInvalidId;
  metrics::Id m_lat_ = metrics::kInvalidId;
  std::vector<metrics::Id> m_q_lat_;  // per-queue, when per_queue_metrics
};

}  // namespace postblock::blocklayer

#endif  // POSTBLOCK_BLOCKLAYER_BLOCK_LAYER_H_
