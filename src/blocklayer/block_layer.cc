#include "blocklayer/block_layer.h"

#include <string>
#include <utility>

#include "sim/inplace_callback.h"

namespace postblock::blocklayer {

BlockLayer::BlockLayer(sim::Simulator* sim, BlockDevice* lower,
                       const BlockLayerConfig& config)
    : sim_(sim),
      lower_(lower),
      config_(config),
      cpu_(sim, "host-cpu", static_cast<int>(config.cores)),
      tracer_(config.tracer) {
  IoSchedulerConfig sched;
  sched.kind = config_.scheduler;
  sched.merge_window = config_.merge_window;
  sched.cross_stream_merge = config_.cross_stream_merge;
  for (std::uint32_t q = 0; q < config_.nr_queues; ++q) {
    QueuePair pair;
    pair.scheduler = std::make_unique<IoScheduler>(sched);
    pair.lock = std::make_unique<sim::Resource>(
        sim, "blkq-lock-" + std::to_string(q));
    pair.tags = host::TagSet(config_.tags_per_queue);
    if (tracer_ != nullptr) {
      q_tracks_.push_back(tracer_->RegisterTrack(
          trace::kPidHost, "blkq-" + std::to_string(q)));
      pair.scheduler->set_tracer(tracer_, q_tracks_.back(), sim_);
    }
    queues_.push_back(std::move(pair));
  }
  if (config_.shared_depth > 0) {
    drr_credits_.resize(config_.nr_queues);
    for (std::uint32_t q = 0; q < config_.nr_queues; ++q) {
      drr_credits_[q] = WeightOf(q);
    }
  }
  metrics_ = config_.metrics;
  if (metrics_ != nullptr) {
    metrics::MetricRegistry* m = metrics_;
    m_submitted_ = m->AddCounter("blk.submitted");
    m_completed_ = m->AddCounter("blk.completed");
    m_lat_ = m->AddHistogram("blk.lat_ns");
    m->AddPolledCounter("blk.cpu_busy_ns",
                        [this] { return cpu_.busy_ns(); });
    m->AddPolledCounter("blk.back_merges", [this] {
      std::uint64_t total = 0;
      for (const auto& p : queues_) {
        total += p.scheduler->counters().Get("back_merges");
      }
      return total;
    });
    m->AddGauge("blk.queue_depth", [this] {
      std::size_t total = 0;
      for (const auto& p : queues_) total += p.scheduler->depth();
      return static_cast<double>(total);
    });
    m->AddGauge("blk.inflight", [this] {
      std::uint64_t total = 0;
      for (const auto& p : queues_) total += p.outstanding;
      return static_cast<double>(total);
    });
    if (config_.per_queue_metrics) {
      for (std::uint32_t q = 0; q < config_.nr_queues; ++q) {
        const std::string prefix = "blk.q" + std::to_string(q);
        m->AddGauge(prefix + ".depth", [this, q] {
          return static_cast<double>(queues_[q].scheduler->depth());
        });
        m->AddGauge(prefix + ".inflight", [this, q] {
          return static_cast<double>(queues_[q].outstanding);
        });
        m->AddPolledCounter(prefix + ".dispatched", [this, q] {
          return queues_[q].scheduler->counters().Get("dispatched");
        });
        m_q_lat_.push_back(m->AddHistogram(prefix + ".lat_ns"));
      }
    }
  }
}

BlockLayer::IoState* BlockLayer::AcquireIo(std::uint32_t q) {
  QueuePair& pair = queues_[q];
  const std::uint32_t tag = pair.tags.Acquire();
  if (tag == host::TagSet::kNoTag) return nullptr;
  while (pair.states.size() <= tag) pair.states.emplace_back();
  IoState* st = &pair.states[tag];
  st->q = q;
  st->tag = tag;
  return st;
}

void BlockLayer::ReleaseIo(IoState* st) {
  st->req = IoRequest{};
  st->user_cb = nullptr;
  st->result = IoResult{};
  QueuePair& pair = queues_[st->q];
  pair.tags.Release(st->tag);
  // A freed tag resumes one parked request through the full submit path
  // (it pays submission CPU now — the backpressure stall is visible in
  // its latency).
  if (!pair.waiters.empty()) {
    counters_.Increment("tag_resumes");
    IoRequest next = std::move(pair.waiters.front());
    pair.waiters.pop_front();
    StartIo(st->q, std::move(next));
  }
}

std::uint32_t BlockLayer::SelectQueue(const IoRequest& request) {
  if (config_.stream_queues && request.stream != 0) {
    counters_.Increment("stream_pins");
    return request.stream % static_cast<std::uint32_t>(queues_.size());
  }
  return static_cast<std::uint32_t>(rr_++ % queues_.size());
}

void BlockLayer::Submit(IoRequest request) {
  counters_.Increment("submitted");
  if (metrics_ != nullptr) metrics_->Increment(m_submitted_);
  const std::uint32_t q = SelectQueue(request);
  StartIo(q, std::move(request));
}

void BlockLayer::StartIo(std::uint32_t q, IoRequest request) {
  IoState* st = AcquireIo(q);
  if (st == nullptr) {
    // Fixed tag set exhausted: the host cannot post to a full SQ. Park
    // the request; ReleaseIo resumes it when a tag frees.
    counters_.Increment("tag_waits");
    queues_[q].waiters.push_back(std::move(request));
    return;
  }
  st->start = sim_->Now();
  st->epoch = epoch_;
  st->user_cb = std::move(request.on_complete);

  // Trace identity: mint the root span if nobody above us did. Copies
  // live in the IoState because `req` is moved into the scheduler.
  st->root = false;
  if (Traced() && request.span == 0) {
    request.span = tracer_->NewSpan();
    st->root = true;
  }
  st->span = request.span;
  st->origin = OriginOf(request.op);
  st->lba = request.lba;
  st->op = request.op;
  st->nblocks = request.nblocks;
  st->priority = request.priority;
  st->attempts = 1;

  // Wrap the completion: device completion -> completion CPU cost
  // (interrupt or poll) -> caller. Dropped if the host reset meanwhile.
  // The wrapper carries (queue_id, tag) so lower layers can attribute
  // the completion to its software queue without a lookup.
  request.on_complete = [this, st](const IoResult& result) {
    OnDeviceComplete(st, result);
  };
  request.on_complete.queue_id = static_cast<std::uint16_t>(st->q);
  request.on_complete.tag =
      st->tag < IoCallback::kNoTag ? static_cast<std::uint16_t>(st->tag)
                                   : IoCallback::kNoTag;
  st->req = std::move(request);

  // Submission path: per-core CPU work, then the (possibly contended)
  // queue lock for scheduler insertion — the single-queue bottleneck the
  // 2012 Linux block layer was being reworked to remove.
  auto submit_stage = [this, st] { SubmitToQueue(st); };
  static_assert(sim::InplaceCallback::fits<decltype(submit_stage)>());
  cpu_.UseFor(config_.cpu.submit_ns, submit_stage);
}

void BlockLayer::SubmitToQueue(IoState* st) {
  if (st->epoch != epoch_) {
    ReleaseIo(st);
    return;
  }
  auto enqueue_stage = [this, st] { EnqueueLocked(st); };
  static_assert(sim::InplaceCallback::fits<decltype(enqueue_stage)>());
  queues_[st->q].lock->UseFor(config_.cpu.schedule_ns, enqueue_stage);
}

void BlockLayer::EnqueueLocked(IoState* st) {
  if (st->epoch != epoch_) {
    ReleaseIo(st);
    return;
  }
  const std::uint32_t q = st->q;
  // Submission-side CPU + lock wait: everything since Submit().
  if (Traced() && st->span != 0) {
    tracer_->Record(trace::Stage::kSchedule, st->origin, st->span, 0,
                    q_tracks_[q], st->start, sim_->Now(), st->lba);
  }
  st->req.enqueued_at = sim_->Now();
  queues_[q].scheduler->Enqueue(std::move(st->req));
  DispatchEntry(q);
}

void BlockLayer::OnDeviceComplete(IoState* st, const IoResult& result) {
  if (st->epoch != epoch_) {
    ReleaseIo(st);
    return;
  }
  st->result = result;
  st->complete_t = sim_->Now();
  if (config_.coalesce_depth <= 1 && config_.coalesce_ns == 0) {
    // Uncoalesced: one completion-CPU charge per IO (old behaviour).
    const SimTime cost = config_.interrupt_completion
                             ? config_.cpu.interrupt_ns
                             : config_.cpu.polled_ns;
    auto finish_stage = [this, st] { FinishIo(st); };
    static_assert(sim::InplaceCallback::fits<decltype(finish_stage)>());
    cpu_.UseFor(cost, finish_stage);
    return;
  }
  // Coalesced: post to the per-queue completion ring; one CPU charge
  // will drain the whole ring (fewer interrupts per IO — the NVMe
  // coalescing knob).
  QueuePair& pair = queues_[st->q];
  pair.cq_ring.push_back(st);
  counters_.Increment("cq_posts");
  if (pair.cq_ring.size() >=
      static_cast<std::size_t>(config_.coalesce_depth)) {
    FlushCq(st->q);
    return;
  }
  if (!pair.cq_flush_armed) {
    pair.cq_flush_armed = true;
    const std::uint64_t gen = pair.cq_gen;
    const std::uint32_t q = st->q;
    auto timeout = [this, q, gen] {
      QueuePair& p = queues_[q];
      if (p.cq_gen == gen && !p.cq_ring.empty()) FlushCq(q);
    };
    static_assert(sim::InplaceCallback::fits<decltype(timeout)>());
    sim_->Schedule(config_.coalesce_ns, timeout);
  }
}

void BlockLayer::FlushCq(std::uint32_t q) {
  QueuePair& pair = queues_[q];
  ++pair.cq_gen;  // cancels any armed timeout
  pair.cq_flush_armed = false;
  if (pair.cq_ring.empty()) return;
  counters_.Increment("cq_flushes");
  std::vector<IoState*> batch;
  batch.swap(pair.cq_ring);
  // One completion-CPU charge (the coalesced interrupt, or one poll
  // reap) covers the whole batch; each IO then finishes individually.
  const SimTime cost = config_.interrupt_completion
                           ? config_.cpu.interrupt_ns
                           : config_.cpu.polled_ns;
  cpu_.UseFor(cost, [this, q, batch = std::move(batch)] {
    for (IoState* st : batch) FinishIo(st);
    // The drained completions freed device slots (accounted at device
    // completion); now that the host has processed the ring, refill
    // them in one go — a deep refill is what fills a doorbell batch.
    DispatchEntry(q);
  });
}

void BlockLayer::FinishIo(IoState* st) {
  if (st->epoch != epoch_) {
    ReleaseIo(st);
    return;
  }
  // EIO retry: resubmit a failed read before it counts as completed.
  // Only uncorrectable media errors qualify — the device's own retry
  // ladder already ran, but a re-read can still succeed when the
  // failure was a transient (injected or queueing-sensitive) one.
  if (st->op == IoOp::kRead && st->result.status.IsDataLoss() &&
      st->attempts < config_.retry.max_attempts) {
    const SimTime backoff = config_.retry.backoff_ns
                            << (st->attempts - 1);
    ++st->attempts;
    counters_.Increment("eio_retries");
    auto resubmit = [this, st] { RetrySubmit(st); };
    static_assert(sim::InplaceCallback::fits<decltype(resubmit)>());
    sim_->Schedule(backoff, resubmit);
    return;
  }
  if (!st->result.status.ok()) counters_.Increment("io_errors");
  const SimTime latency = sim_->Now() - st->start;
  latency_.Record(latency);
  counters_.Increment("completed");
  if (metrics_ != nullptr) {
    metrics_->Increment(m_completed_);
    metrics_->Record(m_lat_, latency);
    if (!m_q_lat_.empty()) metrics_->Record(m_q_lat_[st->q], latency);
  }
  if (Traced() && st->span != 0) {
    const std::uint32_t track = q_tracks_[st->q];
    // Completion-side CPU (interrupt or poll) since device completion.
    if (sim_->Now() > st->complete_t) {
      tracer_->Record(trace::Stage::kSchedule, st->origin, st->span, 0,
                      track, st->complete_t, sim_->Now(), st->lba);
    }
    if (st->root) {
      tracer_->Record(trace::Stage::kIo, st->origin, st->span, 0, track,
                      st->start, sim_->Now(), st->lba);
    }
  }
  IoCallback cb = std::move(st->user_cb);
  IoResult result = std::move(st->result);
  ReleaseIo(st);
  if (cb) cb(result);
}

void BlockLayer::RetrySubmit(IoState* st) {
  if (st->epoch != epoch_) {  // host reset during the backoff
    ReleaseIo(st);
    return;
  }
  IoRequest r;
  r.op = st->op;
  r.lba = st->lba;
  r.nblocks = st->nblocks;
  r.priority = st->priority;
  r.span = st->span;
  r.on_complete = [this, st](const IoResult& result) {
    OnDeviceComplete(st, result);
  };
  r.on_complete.queue_id = static_cast<std::uint16_t>(st->q);
  r.on_complete.tag =
      st->tag < IoCallback::kNoTag ? static_cast<std::uint16_t>(st->tag)
                                   : IoCallback::kNoTag;
  st->result = IoResult{};
  st->req = std::move(r);
  // Re-enter at the queue stage: the retry pays lock + scheduling again
  // (it is a fresh request to the device) but not the submit-side CPU,
  // and keeps its original start time so latency shows the whole tax.
  SubmitToQueue(st);
}

void BlockLayer::PowerCycle() {
  ++epoch_;
  for (auto& pair : queues_) {
    // Tag waiters first: they were never tagged; dropping them must not
    // be resurrected by the ReleaseIo calls below.
    pair.waiters.clear();
    // Ring-resident completions: their device completion already ran;
    // reclaim the tagged state directly.
    ++pair.cq_gen;
    pair.cq_flush_armed = false;
    for (IoState* st : pair.cq_ring) ReleaseIo(st);
    pair.cq_ring.clear();
    while (!pair.scheduler->empty()) {
      // Each queued request's on_complete is the OnDeviceComplete
      // wrapper holding a tagged IoState. Run it under the already
      // bumped epoch: the stale-epoch check returns the IoState to the
      // pool without touching `outstanding` or the caller's callback,
      // so dropped requests don't orphan their tagged state.
      IoRequest r = pair.scheduler->Dequeue();
      if (r.on_complete) {
        IoResult dropped;
        dropped.status = Status::Unavailable("dropped by power cycle");
        r.on_complete(dropped);
      }
    }
    pair.outstanding = 0;
  }
  shared_outstanding_ = 0;
  for (std::uint32_t q = 0; q < drr_credits_.size(); ++q) {
    drr_credits_[q] = WeightOf(q);
  }
}

IoRequest BlockLayer::WrapDispatchAccounting(std::uint32_t q,
                                             IoRequest r) {
  // Depth accounting must track *device* IOs, not submitter callbacks:
  // a k-way merged request is one dispatch whose completion fans out to
  // k per-state wrappers, so decrementing in the per-state wrapper
  // would underflow `outstanding` by k-1. The slot is released here,
  // exactly once per dequeued request, before the fan-out runs.
  const std::uint64_t epoch = epoch_;
  IoCallback done = std::move(r.on_complete);
  const std::uint16_t qid = done.queue_id;
  const std::uint16_t tag = done.tag;
  r.on_complete = [this, q, epoch,
                   done = std::move(done)](const IoResult& result) {
    if (epoch == epoch_) {
      --queues_[q].outstanding;
      if (config_.shared_depth > 0) --shared_outstanding_;
      // Uncoalesced: the host notices the freed slot immediately (one
      // interrupt per IO) and refills it. Coalesced: the slot is free
      // at the device but the host only sees it when the completion
      // ring is drained — FlushCq re-enters dispatch for the whole
      // batch, which is what lets doorbell batching amortize.
      if (config_.coalesce_depth <= 1 && config_.coalesce_ns == 0) {
        DispatchEntry(q);
      }
    }
    done(result);
  };
  r.on_complete.queue_id = qid;
  r.on_complete.tag = tag;
  return r;
}

void BlockLayer::DispatchEntry(std::uint32_t q) {
  if (config_.shared_depth > 0) {
    DispatchShared();
  } else {
    Dispatch(q);
  }
}

void BlockLayer::Dispatch(std::uint32_t q) {
  QueuePair& pair = queues_[q];
  if (config_.doorbell_batch <= 1) {
    while (pair.outstanding < config_.queue_depth &&
           !pair.scheduler->empty()) {
      IoRequest r = pair.scheduler->Dequeue();
      if (Traced() && r.span != 0 && sim_->Now() > r.enqueued_at) {
        tracer_->Record(trace::Stage::kQueueWait, OriginOf(r.op), r.span,
                        0, q_tracks_[q], r.enqueued_at, sim_->Now(),
                        r.lba);
      }
      ++pair.outstanding;
      lower_->Submit(WrapDispatchAccounting(q, std::move(r)));
    }
    return;
  }
  // Batched doorbell: collect up to doorbell_batch dispatchable
  // requests, pay one doorbell CPU charge, hand the batch to the device
  // in one ring. `outstanding` is claimed up front so a completion
  // arriving during the doorbell CPU time cannot over-dispatch.
  while (pair.outstanding < config_.queue_depth &&
         !pair.scheduler->empty()) {
    std::vector<IoRequest> batch;
    while (pair.outstanding < config_.queue_depth &&
           !pair.scheduler->empty() &&
           batch.size() < config_.doorbell_batch) {
      IoRequest r = pair.scheduler->Dequeue();
      if (Traced() && r.span != 0 && sim_->Now() > r.enqueued_at) {
        tracer_->Record(trace::Stage::kQueueWait, OriginOf(r.op), r.span,
                        0, q_tracks_[q], r.enqueued_at, sim_->Now(),
                        r.lba);
      }
      ++pair.outstanding;
      batch.push_back(WrapDispatchAccounting(q, std::move(r)));
    }
    counters_.Increment("doorbells");
    counters_.Add("doorbell_cmds", batch.size());
    if (config_.doorbell_ns > 0) {
      cpu_.UseFor(config_.doorbell_ns,
                  [this, batch = std::move(batch)]() mutable {
                    lower_->SubmitBatch(std::move(batch));
                  });
    } else {
      lower_->SubmitBatch(std::move(batch));
    }
  }
}

std::uint32_t BlockLayer::WeightOf(std::uint32_t q) const {
  if (config_.qos_weights.empty()) return 1;
  const std::uint32_t w =
      config_.qos_weights[q % config_.qos_weights.size()];
  return w == 0 ? 1 : w;  // >=1: every queue drains — starvation-free
}

void BlockLayer::DispatchShared() {
  // Deficit round-robin over the shared device-slot budget: a queue
  // spends one credit per dispatch; when every backlogged queue is out
  // of credit, all credits replenish to their weights. A weight-w queue
  // gets w slots per round, and every queue gets at least one — no
  // starvation regardless of the weight ratio.
  const std::uint32_t n = static_cast<std::uint32_t>(queues_.size());
  while (shared_outstanding_ < config_.shared_depth) {
    bool any_work = false;
    bool dispatched = false;
    for (std::uint32_t i = 0; i < n; ++i) {
      const std::uint32_t q = (drr_pos_ + i) % n;
      QueuePair& pair = queues_[q];
      if (pair.scheduler->empty()) continue;
      any_work = true;
      if (drr_credits_[q] == 0) continue;
      --drr_credits_[q];
      IoRequest r = pair.scheduler->Dequeue();
      if (Traced() && r.span != 0 && sim_->Now() > r.enqueued_at) {
        tracer_->Record(trace::Stage::kQueueWait, OriginOf(r.op), r.span,
                        0, q_tracks_[q], r.enqueued_at, sim_->Now(),
                        r.lba);
      }
      ++pair.outstanding;
      ++shared_outstanding_;
      drr_pos_ = q;  // keep draining this queue while it has credit
      lower_->Submit(WrapDispatchAccounting(q, std::move(r)));
      dispatched = true;
      break;
    }
    if (!any_work) return;
    if (!dispatched) {
      // Backlogged queues exist but none has credit: new DRR round.
      counters_.Increment("drr_rounds");
      for (std::uint32_t q = 0; q < n; ++q) drr_credits_[q] = WeightOf(q);
      drr_pos_ = (drr_pos_ + 1) % n;
    }
  }
}

void BlockLayer::Execute(host::Command cmd) {
  if (host::IsBlockExpressible(cmd.kind)) {
    Submit(host::LowerToIoRequest(std::move(cmd)));
    return;
  }
  if (cmd.kind == host::CommandKind::kHint) {
    counters_.Increment("hints");
    if (cmd.on_complete) cmd.on_complete(IoResult{Status::Ok(), {}});
    return;
  }
  // Extended kinds bypass the queues: the block vocabulary cannot name
  // them, so the layer cannot schedule or merge them — passthrough when
  // the device below speaks them, Unimplemented otherwise.
  if (lower_->Supports(cmd.kind)) {
    counters_.Increment("passthrough_cmds");
    lower_->Execute(std::move(cmd));
    return;
  }
  if (cmd.on_complete) {
    cmd.on_complete(IoResult{
        Status::Unimplemented("command not supported below block layer"),
        {}});
  }
}

bool BlockLayer::Supports(host::CommandKind kind) const {
  if (host::IsBlockExpressible(kind) || kind == host::CommandKind::kHint) {
    return true;
  }
  return lower_->Supports(kind);
}

std::size_t BlockLayer::io_states_allocated() const {
  std::size_t total = 0;
  for (const auto& pair : queues_) total += pair.states.size();
  return total;
}

std::size_t BlockLayer::io_states_free() const {
  std::size_t total = 0;
  for (const auto& pair : queues_) {
    total += pair.states.size() - pair.tags.in_use();
  }
  return total;
}

}  // namespace postblock::blocklayer
