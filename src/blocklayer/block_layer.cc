#include "blocklayer/block_layer.h"

#include <string>
#include <utility>

#include "sim/inplace_callback.h"

namespace postblock::blocklayer {

BlockLayer::BlockLayer(sim::Simulator* sim, BlockDevice* lower,
                       const BlockLayerConfig& config)
    : sim_(sim),
      lower_(lower),
      config_(config),
      cpu_(sim, "host-cpu", static_cast<int>(config.cores)),
      tracer_(config.tracer) {
  queues_.reserve(config_.nr_queues);
  for (std::uint32_t q = 0; q < config_.nr_queues; ++q) {
    QueuePair pair;
    pair.scheduler = std::make_unique<IoScheduler>(config_.scheduler);
    pair.lock = std::make_unique<sim::Resource>(
        sim, "blkq-lock-" + std::to_string(q));
    if (tracer_ != nullptr) {
      q_tracks_.push_back(tracer_->RegisterTrack(
          trace::kPidHost, "blkq-" + std::to_string(q)));
      pair.scheduler->set_tracer(tracer_, q_tracks_.back(), sim_);
    }
    queues_.push_back(std::move(pair));
  }
  metrics_ = config_.metrics;
  if (metrics_ != nullptr) {
    metrics::MetricRegistry* m = metrics_;
    m_submitted_ = m->AddCounter("blk.submitted");
    m_completed_ = m->AddCounter("blk.completed");
    m_lat_ = m->AddHistogram("blk.lat_ns");
    m->AddPolledCounter("blk.cpu_busy_ns",
                        [this] { return cpu_.busy_ns(); });
    m->AddPolledCounter("blk.back_merges", [this] {
      std::uint64_t total = 0;
      for (const auto& p : queues_) {
        total += p.scheduler->counters().Get("back_merges");
      }
      return total;
    });
    m->AddGauge("blk.queue_depth", [this] {
      std::size_t total = 0;
      for (const auto& p : queues_) total += p.scheduler->depth();
      return static_cast<double>(total);
    });
    m->AddGauge("blk.inflight", [this] {
      std::uint64_t total = 0;
      for (const auto& p : queues_) total += p.outstanding;
      return static_cast<double>(total);
    });
  }
}

BlockLayer::IoState* BlockLayer::AcquireIo() {
  if (!io_free_.empty()) {
    IoState* st = io_free_.back();
    io_free_.pop_back();
    return st;
  }
  io_states_.push_back(std::make_unique<IoState>());
  return io_states_.back().get();
}

void BlockLayer::ReleaseIo(IoState* st) {
  st->req = IoRequest{};
  st->user_cb = nullptr;
  st->result = IoResult{};
  io_free_.push_back(st);
}

void BlockLayer::Submit(IoRequest request) {
  counters_.Increment("submitted");
  if (metrics_ != nullptr) metrics_->Increment(m_submitted_);
  IoState* st = AcquireIo();
  st->start = sim_->Now();
  st->epoch = epoch_;
  st->q = static_cast<std::uint32_t>(rr_++ % queues_.size());
  st->user_cb = std::move(request.on_complete);

  // Trace identity: mint the root span if nobody above us did. Copies
  // live in the IoState because `req` is moved into the scheduler.
  st->root = false;
  if (Traced() && request.span == 0) {
    request.span = tracer_->NewSpan();
    st->root = true;
  }
  st->span = request.span;
  st->origin = OriginOf(request.op);
  st->lba = request.lba;
  st->op = request.op;
  st->nblocks = request.nblocks;
  st->priority = request.priority;
  st->attempts = 1;

  // Wrap the completion: device completion -> completion CPU cost
  // (interrupt or poll) -> caller. Dropped if the host reset meanwhile.
  request.on_complete = [this, st](const IoResult& result) {
    OnDeviceComplete(st, result);
  };
  st->req = std::move(request);

  // Submission path: per-core CPU work, then the (possibly contended)
  // queue lock for scheduler insertion — the single-queue bottleneck the
  // 2012 Linux block layer was being reworked to remove.
  auto submit_stage = [this, st] { SubmitToQueue(st); };
  static_assert(sim::InplaceCallback::fits<decltype(submit_stage)>());
  cpu_.UseFor(config_.cpu.submit_ns, submit_stage);
}

void BlockLayer::SubmitToQueue(IoState* st) {
  if (st->epoch != epoch_) {
    ReleaseIo(st);
    return;
  }
  auto enqueue_stage = [this, st] { EnqueueLocked(st); };
  static_assert(sim::InplaceCallback::fits<decltype(enqueue_stage)>());
  queues_[st->q].lock->UseFor(config_.cpu.schedule_ns, enqueue_stage);
}

void BlockLayer::EnqueueLocked(IoState* st) {
  if (st->epoch != epoch_) {
    ReleaseIo(st);
    return;
  }
  const std::uint32_t q = st->q;
  // Submission-side CPU + lock wait: everything since Submit().
  if (Traced() && st->span != 0) {
    tracer_->Record(trace::Stage::kSchedule, st->origin, st->span, 0,
                    q_tracks_[q], st->start, sim_->Now(), st->lba);
  }
  st->req.enqueued_at = sim_->Now();
  queues_[q].scheduler->Enqueue(std::move(st->req));
  Dispatch(q);
}

void BlockLayer::OnDeviceComplete(IoState* st, const IoResult& result) {
  if (st->epoch != epoch_) {
    ReleaseIo(st);
    return;
  }
  --queues_[st->q].outstanding;
  Dispatch(st->q);
  st->result = result;
  st->complete_t = sim_->Now();
  const SimTime cost = config_.interrupt_completion
                           ? config_.cpu.interrupt_ns
                           : config_.cpu.polled_ns;
  auto finish_stage = [this, st] { FinishIo(st); };
  static_assert(sim::InplaceCallback::fits<decltype(finish_stage)>());
  cpu_.UseFor(cost, finish_stage);
}

void BlockLayer::FinishIo(IoState* st) {
  if (st->epoch != epoch_) {
    ReleaseIo(st);
    return;
  }
  // EIO retry: resubmit a failed read before it counts as completed.
  // Only uncorrectable media errors qualify — the device's own retry
  // ladder already ran, but a re-read can still succeed when the
  // failure was a transient (injected or queueing-sensitive) one.
  if (st->op == IoOp::kRead && st->result.status.IsDataLoss() &&
      st->attempts < config_.retry.max_attempts) {
    const SimTime backoff = config_.retry.backoff_ns
                            << (st->attempts - 1);
    ++st->attempts;
    counters_.Increment("eio_retries");
    auto resubmit = [this, st] { RetrySubmit(st); };
    static_assert(sim::InplaceCallback::fits<decltype(resubmit)>());
    sim_->Schedule(backoff, resubmit);
    return;
  }
  if (!st->result.status.ok()) counters_.Increment("io_errors");
  const SimTime latency = sim_->Now() - st->start;
  latency_.Record(latency);
  counters_.Increment("completed");
  if (metrics_ != nullptr) {
    metrics_->Increment(m_completed_);
    metrics_->Record(m_lat_, latency);
  }
  if (Traced() && st->span != 0) {
    const std::uint32_t track = q_tracks_[st->q];
    // Completion-side CPU (interrupt or poll) since device completion.
    if (sim_->Now() > st->complete_t) {
      tracer_->Record(trace::Stage::kSchedule, st->origin, st->span, 0,
                      track, st->complete_t, sim_->Now(), st->lba);
    }
    if (st->root) {
      tracer_->Record(trace::Stage::kIo, st->origin, st->span, 0, track,
                      st->start, sim_->Now(), st->lba);
    }
  }
  IoCallback cb = std::move(st->user_cb);
  IoResult result = std::move(st->result);
  ReleaseIo(st);
  if (cb) cb(result);
}

void BlockLayer::RetrySubmit(IoState* st) {
  if (st->epoch != epoch_) {  // host reset during the backoff
    ReleaseIo(st);
    return;
  }
  IoRequest r;
  r.op = st->op;
  r.lba = st->lba;
  r.nblocks = st->nblocks;
  r.priority = st->priority;
  r.span = st->span;
  r.on_complete = [this, st](const IoResult& result) {
    OnDeviceComplete(st, result);
  };
  st->result = IoResult{};
  st->req = std::move(r);
  // Re-enter at the queue stage: the retry pays lock + scheduling again
  // (it is a fresh request to the device) but not the submit-side CPU,
  // and keeps its original start time so latency shows the whole tax.
  SubmitToQueue(st);
}

void BlockLayer::PowerCycle() {
  ++epoch_;
  for (auto& pair : queues_) {
    while (!pair.scheduler->empty()) {
      // Each queued request's on_complete is the OnDeviceComplete
      // wrapper holding a pooled IoState. Run it under the already
      // bumped epoch: the stale-epoch check returns the IoState to the
      // pool without touching `outstanding` or the caller's callback,
      // so dropped requests don't orphan their pooled state.
      IoRequest r = pair.scheduler->Dequeue();
      if (r.on_complete) {
        IoResult dropped;
        dropped.status = Status::Unavailable("dropped by power cycle");
        r.on_complete(dropped);
      }
    }
    pair.outstanding = 0;
  }
}

void BlockLayer::Dispatch(std::uint32_t q) {
  QueuePair& pair = queues_[q];
  while (pair.outstanding < config_.queue_depth &&
         !pair.scheduler->empty()) {
    // The request's on_complete is already the per-IO completion wrapper
    // (OnDeviceComplete), which decrements `outstanding` and re-enters
    // Dispatch — no per-dispatch closure wrapping needed.
    IoRequest r = pair.scheduler->Dequeue();
    if (Traced() && r.span != 0 && sim_->Now() > r.enqueued_at) {
      tracer_->Record(trace::Stage::kQueueWait, OriginOf(r.op), r.span, 0,
                      q_tracks_[q], r.enqueued_at, sim_->Now(), r.lba);
    }
    ++pair.outstanding;
    lower_->Submit(std::move(r));
  }
}

}  // namespace postblock::blocklayer
