#include "blocklayer/block_layer.h"

#include <string>
#include <utility>

namespace postblock::blocklayer {

BlockLayer::BlockLayer(sim::Simulator* sim, BlockDevice* lower,
                       const BlockLayerConfig& config)
    : sim_(sim),
      lower_(lower),
      config_(config),
      cpu_(sim, "host-cpu", static_cast<int>(config.cores)) {
  queues_.reserve(config_.nr_queues);
  for (std::uint32_t q = 0; q < config_.nr_queues; ++q) {
    QueuePair pair;
    pair.scheduler = std::make_unique<IoScheduler>(config_.scheduler);
    pair.lock = std::make_unique<sim::Resource>(
        sim, "blkq-lock-" + std::to_string(q));
    queues_.push_back(std::move(pair));
  }
}

void BlockLayer::Submit(IoRequest request) {
  counters_.Increment("submitted");
  const SimTime start = sim_->Now();
  const std::uint64_t epoch = epoch_;
  const std::uint32_t q =
      static_cast<std::uint32_t>(rr_++ % queues_.size());

  // Wrap the completion: device completion -> completion CPU cost
  // (interrupt or poll) -> caller. Dropped if the host reset meanwhile.
  IoCallback user_cb = std::move(request.on_complete);
  request.on_complete = [this, start, epoch, user_cb = std::move(user_cb)](
                            const IoResult& result) {
    if (epoch != epoch_) return;
    const SimTime cost = config_.interrupt_completion
                             ? config_.cpu.interrupt_ns
                             : config_.cpu.polled_ns;
    cpu_.UseFor(cost, [this, start, epoch, user_cb, result]() {
      if (epoch != epoch_) return;
      latency_.Record(sim_->Now() - start);
      counters_.Increment("completed");
      if (user_cb) user_cb(result);
    });
  };

  // Submission path: per-core CPU work, then the (possibly contended)
  // queue lock for scheduler insertion — the single-queue bottleneck the
  // 2012 Linux block layer was being reworked to remove.
  cpu_.UseFor(config_.cpu.submit_ns,
              [this, q, epoch, request = std::move(request)]() mutable {
                if (epoch != epoch_) return;
                QueuePair& pair = queues_[q];
                pair.lock->UseFor(
                    config_.cpu.schedule_ns,
                    [this, q, epoch,
                     request = std::move(request)]() mutable {
                      if (epoch != epoch_) return;
                      queues_[q].scheduler->Enqueue(std::move(request));
                      Dispatch(q);
                    });
              });
}

void BlockLayer::PowerCycle() {
  ++epoch_;
  for (auto& pair : queues_) {
    while (!pair.scheduler->empty()) (void)pair.scheduler->Dequeue();
    pair.outstanding = 0;
  }
}

void BlockLayer::Dispatch(std::uint32_t q) {
  QueuePair& pair = queues_[q];
  while (pair.outstanding < config_.queue_depth &&
         !pair.scheduler->empty()) {
    IoRequest r = pair.scheduler->Dequeue();
    ++pair.outstanding;
    IoCallback inner = std::move(r.on_complete);
    const std::uint64_t epoch = epoch_;
    r.on_complete = [this, q, epoch, inner = std::move(inner)](
                        const IoResult& result) {
      if (epoch != epoch_) return;
      --queues_[q].outstanding;
      Dispatch(q);
      if (inner) inner(result);
    };
    lower_->Submit(std::move(r));
  }
}

}  // namespace postblock::blocklayer
