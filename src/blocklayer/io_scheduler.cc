#include "blocklayer/io_scheduler.h"

#include <utility>

namespace postblock::blocklayer {

IoScheduler::IoScheduler(SchedulerKind kind,
                         std::uint32_t max_merged_blocks)
    : kind_(kind), max_merged_blocks_(max_merged_blocks) {}

void IoScheduler::Enqueue(IoRequest request) {
  counters_.Increment("enqueued");
  if (kind_ == SchedulerKind::kMerge && !queue_.empty() &&
      (request.op == IoOp::kRead || request.op == IoOp::kWrite)) {
    IoRequest& tail = queue_.back();
    const bool contiguous =
        tail.op == request.op &&
        tail.lba + tail.nblocks == request.lba &&
        tail.nblocks + request.nblocks <= max_merged_blocks_;
    if (contiguous) {
      counters_.Increment("back_merges");
      if (tracer_ != nullptr && tracer_->enabled() && sim_ != nullptr) {
        tracer_->Mark(trace::Stage::kSchedule, OriginOf(request.op),
                      request.span, track_, sim_->Now(), request.lba);
      }
      tail.nblocks += request.nblocks;
      for (auto t : request.tokens) tail.tokens.push_back(t);
      // Chain the completions: both submitters hear about the merged IO.
      IoCallback prev = std::move(tail.on_complete);
      IoCallback next = std::move(request.on_complete);
      const std::uint32_t head_blocks =
          tail.nblocks - request.nblocks;
      tail.on_complete = [prev = std::move(prev), next = std::move(next),
                          head_blocks](const IoResult& result) {
        if (prev) {
          IoResult head = result;
          if (head.tokens.size() > head_blocks) {
            head.tokens.resize(head_blocks);
          }
          prev(head);
        }
        if (next) {
          IoResult rest;
          rest.status = result.status;
          if (result.tokens.size() > head_blocks) {
            rest.tokens.assign(result.tokens.begin() + head_blocks,
                               result.tokens.end());
          }
          next(rest);
        }
      };
      return;
    }
  }
  queue_.push_back(std::move(request));
}

IoRequest IoScheduler::Dequeue() {
  auto it = queue_.begin();
  if (kind_ == SchedulerKind::kPriority) {
    for (auto cand = queue_.begin(); cand != queue_.end(); ++cand) {
      if (cand->priority > it->priority) it = cand;  // FIFO within class
    }
    if (it->priority > 0) counters_.Increment("priority_dispatches");
  }
  IoRequest r = std::move(*it);
  queue_.erase(it);
  counters_.Increment("dispatched");
  return r;
}

}  // namespace postblock::blocklayer
