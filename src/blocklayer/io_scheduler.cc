#include "blocklayer/io_scheduler.h"

#include <utility>

namespace postblock::blocklayer {

IoScheduler::IoScheduler(IoSchedulerConfig config) : config_(config) {}

IoScheduler::IoScheduler(SchedulerKind kind,
                         std::uint32_t max_merged_blocks)
    : IoScheduler(IoSchedulerConfig{kind, max_merged_blocks}) {}

bool IoScheduler::TryMerge(IoRequest& request) {
  if (config_.kind != SchedulerKind::kMerge || queue_.empty()) return false;
  if (request.op != IoOp::kRead && request.op != IoOp::kWrite) return false;
  std::uint32_t scanned = 0;
  for (auto it = queue_.rbegin();
       it != queue_.rend() && scanned < config_.merge_window;
       ++it, ++scanned) {
    IoRequest& tail = *it;
    if (tail.op != request.op) continue;
    if (!config_.cross_stream_merge && tail.stream != request.stream) {
      counters_.Increment("merge_stream_rejects");
      continue;
    }
    if (tail.lba + tail.nblocks != request.lba) continue;
    if (tail.nblocks + request.nblocks > config_.max_merged_blocks) continue;
    counters_.Increment("back_merges");
    if (tracer_ != nullptr && tracer_->enabled() && sim_ != nullptr) {
      tracer_->Mark(trace::Stage::kSchedule, OriginOf(request.op),
                    request.span, track_, sim_->Now(), request.lba);
    }
    tail.nblocks += request.nblocks;
    for (auto t : request.tokens) tail.tokens.push_back(t);
    // Chain the completions: both submitters hear about the merged IO.
    IoCallback prev = std::move(tail.on_complete);
    IoCallback next = std::move(request.on_complete);
    // The merged IO keeps the head's completion-routing identity.
    const std::uint16_t queue_id = prev.queue_id;
    const std::uint16_t merged_tag = prev.tag;
    const std::uint32_t head_blocks = tail.nblocks - request.nblocks;
    tail.on_complete = [prev = std::move(prev), next = std::move(next),
                        head_blocks](const IoResult& result) {
      if (prev) {
        IoResult head = result;
        if (head.tokens.size() > head_blocks) {
          head.tokens.resize(head_blocks);
        }
        prev(head);
      }
      if (next) {
        IoResult rest;
        rest.status = result.status;
        if (result.tokens.size() > head_blocks) {
          rest.tokens.assign(result.tokens.begin() + head_blocks,
                             result.tokens.end());
        }
        next(rest);
      }
    };
    tail.on_complete.queue_id = queue_id;
    tail.on_complete.tag = merged_tag;
    return true;
  }
  return false;
}

void IoScheduler::Enqueue(IoRequest request) {
  counters_.Increment("enqueued");
  if (TryMerge(request)) return;
  queue_.push_back(std::move(request));
}

IoRequest IoScheduler::Dequeue() {
  auto it = queue_.begin();
  if (config_.kind == SchedulerKind::kPriority) {
    for (auto cand = queue_.begin(); cand != queue_.end(); ++cand) {
      if (cand->priority > it->priority) it = cand;  // FIFO within class
    }
    if (it->priority > 0) counters_.Increment("priority_dispatches");
  }
  IoRequest r = std::move(*it);
  queue_.erase(it);
  counters_.Increment("dispatched");
  return r;
}

}  // namespace postblock::blocklayer
