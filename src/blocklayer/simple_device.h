#ifndef POSTBLOCK_BLOCKLAYER_SIMPLE_DEVICE_H_
#define POSTBLOCK_BLOCKLAYER_SIMPLE_DEVICE_H_

#include <cstdint>
#include <vector>

#include "blocklayer/block_device.h"
#include "common/stats.h"
#include "common/types.h"
#include "sim/resource.h"
#include "sim/simulator.h"

namespace postblock::blocklayer {

/// A fixed-latency block device with `units` internal parallel units:
/// the Onyx-style PCM SSD of the paper's discussion (Section 2.4 / E11),
/// and a handy stand-in wherever a naive "constant service time" device
/// model is the point of comparison.
struct SimpleDeviceConfig {
  std::uint64_t num_blocks = 1 << 20;
  std::uint32_t block_bytes = 4096;
  SimTime read_ns = 10 * kMicrosecond;   // PCM-array read of 4 KiB
  SimTime write_ns = 30 * kMicrosecond;  // PCM-array write of 4 KiB
  std::uint32_t units = 8;               // internal parallelism
  SimTime controller_overhead_ns = 2 * kMicrosecond;
};

class SimpleBlockDevice : public BlockDevice {
 public:
  SimpleBlockDevice(sim::Simulator* sim, const SimpleDeviceConfig& config);
  ~SimpleBlockDevice() override = default;

  std::uint64_t num_blocks() const override { return config_.num_blocks; }
  std::uint32_t block_bytes() const override {
    return config_.block_bytes;
  }
  void Submit(IoRequest request) override;
  const Counters& counters() const override { return counters_; }

 private:
  sim::Simulator* sim_;
  SimpleDeviceConfig config_;
  sim::Resource units_;
  std::vector<std::uint64_t> tokens_;
  Counters counters_;
};

}  // namespace postblock::blocklayer

#endif  // POSTBLOCK_BLOCKLAYER_SIMPLE_DEVICE_H_
