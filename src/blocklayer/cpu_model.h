#ifndef POSTBLOCK_BLOCKLAYER_CPU_MODEL_H_
#define POSTBLOCK_BLOCKLAYER_CPU_MODEL_H_

#include "common/types.h"

namespace postblock::blocklayer {

/// Host CPU cost of pushing one IO through the kernel block layer. On
/// disks these costs were noise next to a 10 ms seek; at SSD latencies
/// they bound IOPS — the paper's Section 3 "streamlined execution /
/// low-latency networking" argument. Benches sweep these.
struct CpuCosts {
  SimTime submit_ns = 4000;     // syscall + bio setup + queue insert
  SimTime schedule_ns = 1500;   // elevator/scheduler work per request
  SimTime interrupt_ns = 5000;  // IRQ, context switch, completion path
  SimTime polled_ns = 700;      // completion cost when polling instead

  /// The 2012-era single-queue block layer the paper describes.
  static CpuCosts Legacy() { return CpuCosts{}; }
  /// A streamlined multiqueue-style stack (reduced locking, per-core
  /// completions).
  static CpuCosts Streamlined() { return {1200, 300, 1500, 400}; }
  /// User-space direct access (ioMemory SDK analogy): no kernel costs.
  static CpuCosts Direct() { return {500, 0, 0, 250}; }
};

}  // namespace postblock::blocklayer

#endif  // POSTBLOCK_BLOCKLAYER_CPU_MODEL_H_
