#ifndef POSTBLOCK_BLOCKLAYER_REQUEST_H_
#define POSTBLOCK_BLOCKLAYER_REQUEST_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "sim/inplace_callback.h"
#include "trace/trace.h"

namespace postblock::blocklayer {

/// Operations supported by the (legacy) block device interface. Note
/// that kTrim is already a crack in the "pure memory abstraction" — the
/// paper's Section 3 point 2.
enum class IoOp : std::uint8_t {
  kRead = 0,
  kWrite,
  kTrim,
  kFlush,  // drain volatile write cache
};

const char* IoOpName(IoOp op);

/// Completion payload. For reads, `tokens` carries one payload token per
/// logical block (postblock models page contents as 64-bit stamps; see
/// flash::PageData).
struct IoResult {
  Status status;
  std::vector<std::uint64_t> tokens;
};

/// Move-only completion callable for one IO, replacing the old
/// `std::function<void(const IoResult&)>`:
///
///   - captures up to kInlineBytes live inside the object (no heap
///     allocation per IO on the hot path); larger captures are boxed in
///     a recycled sim::CallbackSlab chunk, so even the fallback is
///     allocation-free in steady state;
///   - it carries the multi-queue completion-routing context — which
///     software queue the IO belongs to (`queue_id`) and its inflight
///     tag (`tag`) — so lower layers (the SSD's completion path) can
///     attribute a completion to its queue without a map lookup. Both
///     default to "none" for IOs submitted outside the mq block layer.
///
/// Like std::function, operator() is const-callable and the target may
/// be invoked more than once (the merge scheduler fans one device
/// completion out to every absorbed request's callback).
class IoCallback {
 public:
  static constexpr std::size_t kInlineBytes = 48;
  static constexpr std::uint16_t kNoQueue = 0xffff;
  static constexpr std::uint16_t kNoTag = 0xffff;

  template <typename F>
  static constexpr bool fits() {
    using D = std::decay_t<F>;
    return sizeof(D) <= kInlineBytes &&
           alignof(D) <= alignof(std::max_align_t);
  }

  IoCallback() = default;
  IoCallback(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, IoCallback> &&
                !std::is_same_v<std::decay_t<F>, std::nullptr_t> &&
                std::is_invocable_r_v<void, std::decay_t<F>&,
                                      const IoResult&>>>
  IoCallback(F&& f) {  // NOLINT(google-explicit-constructor)
    using D = std::decay_t<F>;
    if constexpr (fits<D>()) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      ops_ = &kInlineOps<D>;
    } else {
      void* p = sim::CallbackSlab::Allocate(sizeof(D));
      ::new (p) D(std::forward<F>(f));
      ::new (static_cast<void*>(buf_)) void*(p);
      ops_ = &kBoxedOps<D>;
    }
  }

  IoCallback(IoCallback&& other) noexcept
      : queue_id(other.queue_id), tag(other.tag), ops_(other.ops_) {
    if (ops_ != nullptr) {
      Relocate(other);
      other.ops_ = nullptr;
    }
  }

  IoCallback& operator=(IoCallback&& other) noexcept {
    if (this != &other) {
      Reset();
      ops_ = other.ops_;
      queue_id = other.queue_id;
      tag = other.tag;
      if (ops_ != nullptr) {
        Relocate(other);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  IoCallback& operator=(std::nullptr_t) {
    Reset();
    queue_id = kNoQueue;
    tag = kNoTag;
    return *this;
  }

  IoCallback(const IoCallback&) = delete;
  IoCallback& operator=(const IoCallback&) = delete;

  ~IoCallback() { Reset(); }

  explicit operator bool() const { return ops_ != nullptr; }

  /// True when the callable lives in the inline buffer (no slab chunk).
  bool stored_inline() const { return ops_ != nullptr && ops_->is_inline; }

  void operator()(const IoResult& result) const {
    ops_->invoke(const_cast<unsigned char*>(buf_), result);
  }

  /// Multi-queue completion-routing context, carried with the callback
  /// down the device stack. kNoQueue/kNoTag when the IO was not
  /// submitted through a multi-queue host path.
  std::uint16_t queue_id = kNoQueue;
  std::uint16_t tag = kNoTag;

 private:
  struct Ops {
    void (*invoke)(void* self, const IoResult& result);
    void (*relocate)(void* dst, void* src);  // move-construct + destroy src
    void (*destroy)(void* self);
    bool is_inline;
    bool trivial_relocate;
  };

  void Reset() {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  void Relocate(IoCallback& other) {
    if (ops_->trivial_relocate) {
      std::memcpy(buf_, other.buf_, kInlineBytes);
    } else {
      ops_->relocate(buf_, other.buf_);
    }
  }

  template <typename D>
  static constexpr Ops kInlineOps = {
      [](void* self, const IoResult& result) {
        (*std::launder(reinterpret_cast<D*>(self)))(result);
      },
      [](void* dst, void* src) {
        D* s = std::launder(reinterpret_cast<D*>(src));
        ::new (dst) D(std::move(*s));
        s->~D();
      },
      [](void* self) { std::launder(reinterpret_cast<D*>(self))->~D(); },
      /*is_inline=*/true,
      /*trivial_relocate=*/std::is_trivially_copyable_v<D>,
  };

  template <typename D>
  static constexpr Ops kBoxedOps = {
      [](void* self, const IoResult& result) {
        (**std::launder(reinterpret_cast<D**>(self)))(result);
      },
      [](void* dst, void* src) {
        ::new (dst) void*(*std::launder(reinterpret_cast<void**>(src)));
      },
      [](void* self) {
        D* p = *std::launder(reinterpret_cast<D**>(self));
        p->~D();
        sim::CallbackSlab::Deallocate(p, sizeof(D));
      },
      /*is_inline=*/false,
      /*trivial_relocate=*/true,
  };

  const Ops* ops_ = nullptr;
  alignas(std::max_align_t) unsigned char buf_[kInlineBytes] = {};
};

/// Bounded EIO retry for reads, mirroring the kernel's per-bio retry
/// count: a read completing with DataLoss (uncorrectable media even
/// after the device's own retry ladder) is resubmitted up to
/// `max_attempts` total tries, each preceded by an exponentially grown
/// backoff (`backoff_ns << attempt`). Writes and trims are never
/// retried here — the FTL already places them on fresh blocks, so a
/// failed write is a policy decision for the layer above.
struct IoRetryPolicy {
  std::uint32_t max_attempts = 3;  // total tries; 1 = no retry
  SimTime backoff_ns = 2000;
};

/// One asynchronous block IO. Move-only (the completion callable owns
/// inline state); accidental copies on the submit path are compile
/// errors.
struct IoRequest {
  IoOp op = IoOp::kRead;
  Lba lba = 0;
  std::uint32_t nblocks = 1;
  /// Payload tokens for writes; size must equal nblocks.
  std::vector<std::uint64_t> tokens;
  /// Scheduling priority (higher dispatches first under the priority
  /// scheduler) — the database-IO-priority idea of the paper's ref
  /// [13] (Hall & Bonnet): commit-critical log writes must not queue
  /// behind lazy page flushes.
  std::uint8_t priority = 0;
  /// Submission stream/context id. 0 = unclassified. The multi-queue
  /// block layer can pin a stream to its own software queue
  /// (BlockLayerConfig::stream_queues), and the merge scheduler never
  /// coalesces requests from different streams — interleaved streams
  /// that happen to abut in LBA space are distinct IOs, not one.
  std::uint8_t stream = 0;
  IoCallback on_complete;
  /// Trace identity. 0 = untraced; the topmost layer that sees 0 with an
  /// enabled tracer mints the root span, lower layers inherit it, so a
  /// stacked IO is one span across the whole path.
  trace::SpanId span = 0;
  /// When the request entered a software queue (set by the layer that
  /// enqueues it; measures scheduler queueing delay).
  SimTime enqueued_at = 0;
};

/// Maps a block-layer op onto its trace origin class.
inline trace::Origin OriginOf(IoOp op) {
  switch (op) {
    case IoOp::kRead:
      return trace::Origin::kHostRead;
    case IoOp::kWrite:
      return trace::Origin::kHostWrite;
    case IoOp::kTrim:
      return trace::Origin::kHostTrim;
    case IoOp::kFlush:
      return trace::Origin::kHostFlush;
  }
  return trace::Origin::kMeta;
}

inline const char* IoOpName(IoOp op) {
  switch (op) {
    case IoOp::kRead:
      return "read";
    case IoOp::kWrite:
      return "write";
    case IoOp::kTrim:
      return "trim";
    case IoOp::kFlush:
      return "flush";
  }
  return "?";
}

}  // namespace postblock::blocklayer

#endif  // POSTBLOCK_BLOCKLAYER_REQUEST_H_
