#ifndef POSTBLOCK_BLOCKLAYER_REQUEST_H_
#define POSTBLOCK_BLOCKLAYER_REQUEST_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "trace/trace.h"

namespace postblock::blocklayer {

/// Operations supported by the (legacy) block device interface. Note
/// that kTrim is already a crack in the "pure memory abstraction" — the
/// paper's Section 3 point 2.
enum class IoOp : std::uint8_t {
  kRead = 0,
  kWrite,
  kTrim,
  kFlush,  // drain volatile write cache
};

const char* IoOpName(IoOp op);

/// Completion payload. For reads, `tokens` carries one payload token per
/// logical block (postblock models page contents as 64-bit stamps; see
/// flash::PageData).
struct IoResult {
  Status status;
  std::vector<std::uint64_t> tokens;
};

using IoCallback = std::function<void(const IoResult&)>;

/// Bounded EIO retry for reads, mirroring the kernel's per-bio retry
/// count: a read completing with DataLoss (uncorrectable media even
/// after the device's own retry ladder) is resubmitted up to
/// `max_attempts` total tries, each preceded by an exponentially grown
/// backoff (`backoff_ns << attempt`). Writes and trims are never
/// retried here — the FTL already places them on fresh blocks, so a
/// failed write is a policy decision for the layer above.
struct IoRetryPolicy {
  std::uint32_t max_attempts = 3;  // total tries; 1 = no retry
  SimTime backoff_ns = 2000;
};

/// One asynchronous block IO.
struct IoRequest {
  IoOp op = IoOp::kRead;
  Lba lba = 0;
  std::uint32_t nblocks = 1;
  /// Payload tokens for writes; size must equal nblocks.
  std::vector<std::uint64_t> tokens;
  /// Scheduling priority (higher dispatches first under the priority
  /// scheduler) — the database-IO-priority idea of the paper's ref
  /// [13] (Hall & Bonnet): commit-critical log writes must not queue
  /// behind lazy page flushes.
  std::uint8_t priority = 0;
  IoCallback on_complete;
  /// Trace identity. 0 = untraced; the topmost layer that sees 0 with an
  /// enabled tracer mints the root span, lower layers inherit it, so a
  /// stacked IO is one span across the whole path.
  trace::SpanId span = 0;
  /// When the request entered a software queue (set by the layer that
  /// enqueues it; measures scheduler queueing delay).
  SimTime enqueued_at = 0;
};

/// Maps a block-layer op onto its trace origin class.
inline trace::Origin OriginOf(IoOp op) {
  switch (op) {
    case IoOp::kRead:
      return trace::Origin::kHostRead;
    case IoOp::kWrite:
      return trace::Origin::kHostWrite;
    case IoOp::kTrim:
      return trace::Origin::kHostTrim;
    case IoOp::kFlush:
      return trace::Origin::kHostFlush;
  }
  return trace::Origin::kMeta;
}

inline const char* IoOpName(IoOp op) {
  switch (op) {
    case IoOp::kRead:
      return "read";
    case IoOp::kWrite:
      return "write";
    case IoOp::kTrim:
      return "trim";
    case IoOp::kFlush:
      return "flush";
  }
  return "?";
}

}  // namespace postblock::blocklayer

#endif  // POSTBLOCK_BLOCKLAYER_REQUEST_H_
