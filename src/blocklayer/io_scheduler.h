#ifndef POSTBLOCK_BLOCKLAYER_IO_SCHEDULER_H_
#define POSTBLOCK_BLOCKLAYER_IO_SCHEDULER_H_

#include <cstdint>
#include <deque>
#include <memory>

#include "blocklayer/request.h"
#include "common/stats.h"
#include "sim/simulator.h"
#include "trace/tracer.h"

namespace postblock::blocklayer {

/// Software-queue policy of the block layer.
enum class SchedulerKind {
  kNoop = 0,  // FIFO dispatch
  kMerge,     // FIFO + back-merge of contiguous same-op requests
  kPriority,  // higher IoRequest::priority first, FIFO within a class
};

const char* SchedulerKindName(SchedulerKind kind);

/// Per-queue scheduling policy knobs.
struct IoSchedulerConfig {
  SchedulerKind kind = SchedulerKind::kNoop;
  /// Cap on a merged request's total span.
  std::uint32_t max_merged_blocks = 128;
  /// How many queued requests (from the tail) a new request may merge
  /// into. 1 = the classic tail-only back-merge. A wider window lets a
  /// request coalesce past unrelated interleaved traffic.
  std::uint32_t merge_window = 1;
  /// Whether requests from different streams may merge. Off by default:
  /// two interleaved streams that happen to abut in LBA space are
  /// distinct IOs with distinct fates (QoS, completion attribution),
  /// not one.
  bool cross_stream_merge = false;
};

/// A single software request queue. Requests enter via Enqueue and leave
/// via Dequeue in dispatch order; the merge scheduler coalesces a newly
/// enqueued request into a queued request that it extends contiguously
/// (the classic elevator back-merge, minus disk-oriented sorting — the
/// paper notes sorting lost its purpose on SSDs). The merge window is
/// explicit per queue (IoSchedulerConfig::merge_window) and merging
/// never crosses stream boundaries unless configured to.
class IoScheduler {
 public:
  explicit IoScheduler(IoSchedulerConfig config);
  explicit IoScheduler(SchedulerKind kind,
                       std::uint32_t max_merged_blocks = 128);

  /// Takes ownership of the request. Merged requests complete their
  /// original callbacks individually when the merged IO completes.
  void Enqueue(IoRequest request);

  bool empty() const { return queue_.empty(); }
  std::size_t depth() const { return queue_.size(); }

  /// Pops the next request to dispatch. Requires !empty().
  IoRequest Dequeue();

  const Counters& counters() const { return counters_; }
  const IoSchedulerConfig& config() const { return config_; }

  /// Back-merges become zero-duration markers on `track` (arg = merged
  /// request's LBA, span = the absorbed request's span), so a trace
  /// shows which IOs were coalesced away.
  void set_tracer(trace::Tracer* tracer, std::uint32_t track,
                  sim::Simulator* sim) {
    tracer_ = tracer;
    track_ = track;
    sim_ = sim;
  }

 private:
  /// Attempts a back-merge of `request` into a request within the merge
  /// window. Returns true when absorbed.
  bool TryMerge(IoRequest& request);

  IoSchedulerConfig config_;
  std::deque<IoRequest> queue_;
  Counters counters_;
  trace::Tracer* tracer_ = nullptr;
  std::uint32_t track_ = 0;
  sim::Simulator* sim_ = nullptr;
};

inline const char* SchedulerKindName(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kNoop:
      return "noop";
    case SchedulerKind::kMerge:
      return "merge";
    case SchedulerKind::kPriority:
      return "priority";
  }
  return "?";
}

}  // namespace postblock::blocklayer

#endif  // POSTBLOCK_BLOCKLAYER_IO_SCHEDULER_H_
