#ifndef POSTBLOCK_SSD_DEVICE_H_
#define POSTBLOCK_SSD_DEVICE_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "blocklayer/block_device.h"
#include "common/histogram.h"
#include "common/stats.h"
#include "ftl/append_ftl.h"
#include "ftl/ftl.h"
#include "ftl/page_ftl.h"
#include "metrics/metrics.h"
#include "sim/simulator.h"
#include "ssd/config.h"
#include "ssd/controller.h"
#include "ssd/write_buffer.h"
#include "trace/trace.h"
#include "trace/tracer.h"

namespace postblock::ssd {

/// A complete simulated SSD exposed through the legacy block device
/// interface: controller + FTL (per Config::ftl) + optional safe write
/// cache. This is the device every myth bench and the "conservative"
/// DB wiring talk to.
class Device : public blocklayer::BlockDevice {
 public:
  Device(sim::Simulator* sim, const Config& config);

  /// Sharded mode: the firmware (this object, the FTL, the write
  /// buffer, all latency/counter state) lives on the router's
  /// controller shard; each channel's bus and LUN resources live on
  /// that channel's shard, with GC relocation traffic riding the same
  /// dispatch/completion edges as host ops. Submit()/Execute() must be
  /// called from controller-shard event context (or before the engine
  /// runs); introspection accessors are safe between engine runs. The
  /// committed schedule is byte-identical at every engine worker count.
  Device(ShardRouter* router, const Config& config,
         const std::vector<trace::Tracer*>& channel_tracers = {});

  ~Device() override = default;

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  // --- BlockDevice -------------------------------------------------
  std::uint64_t num_blocks() const override { return ftl_->user_pages(); }
  std::uint32_t block_bytes() const override {
    return config_.geometry.page_size_bytes;
  }
  void Submit(blocklayer::IoRequest request) override;
  /// One doorbell ring admitting the whole batch: the fixed controller
  /// overhead is paid once, then commands are fetched from the SQ at
  /// doorbell_cmd_ns intervals — admission is pipelined, not serial.
  void SubmitBatch(std::vector<blocklayer::IoRequest> batch) override;
  const Counters& counters() const override { return counters_; }

  /// Typed host commands (host::HostInterface). Beyond the block
  /// vocabulary, the device natively executes atomic write groups and
  /// the nameless vocabulary (write/read/free) when running the
  /// page-mapping FTL — and, under FtlKind::kVisionAppend, *only* the
  /// post-block vocabulary: the block kinds are refused with a typed
  /// Unimplemented because the device has no logical address space.
  void Execute(host::Command cmd) override;
  bool Supports(host::CommandKind kind) const override;
  /// Identify: adds the truths only the device knows (append regions,
  /// live mapping-table DRAM) to the derivable command mask.
  host::DeviceCaps Caps() const override;
  /// Host migration handler for named pages (old name -> new name).
  /// Registration is lazy on both FTL paths so un-wired stacks keep
  /// byte-identical schedules.
  void SetMigrationHandler(host::MigrationHandler handler) override;

  /// Completions routed to multi-queue submitters, per software queue
  /// (read from IoCallback::queue_id). 0 for queues never seen.
  std::uint64_t cq_posts(std::uint16_t queue_id) const {
    return queue_id < cq_posts_.size() ? cq_posts_[queue_id] : 0;
  }

  // --- Introspection ------------------------------------------------
  /// The firmware's event loop (the controller shard's in sharded mode).
  sim::Simulator* sim() { return sim_; }
  /// Non-null iff this device runs on a sharded engine.
  ShardRouter* router() { return router_; }
  const Config& config() const { return config_; }
  Controller* controller() { return controller_.get(); }
  ftl::Ftl* ftl() { return ftl_.get(); }
  /// Non-null when Config::ftl is kPageMap (extended vision commands:
  /// atomic writes, nameless writes, power-cycle recovery).
  ftl::PageFtl* page_ftl() { return page_ftl_; }
  /// Non-null when Config::ftl is kVisionAppend (host-managed physical
  /// append; the block vocabulary is refused).
  ftl::AppendFtl* append_ftl() { return append_ftl_; }
  /// Control-path (admin) enumeration of live host-managed pages with
  /// their OOB owner stamps — the post-crash scan hosts rebuild their
  /// mapping from. Empty unless running kVisionAppend.
  std::vector<ftl::AppendFtl::LiveName> LiveNames() const {
    return append_ftl_ != nullptr
               ? append_ftl_->LiveNames()
               : std::vector<ftl::AppendFtl::LiveName>{};
  }
  WriteBuffer* write_buffer() { return write_buffer_.get(); }

  /// Host-visible latency distributions.
  const Histogram& read_latency() const { return read_latency_; }
  const Histogram& write_latency() const { return write_latency_; }

  double WriteAmplification() const { return ftl_->WriteAmplification(); }

  /// Simulates power loss + reboot. Un-drained buffered writes vanish
  /// unless the buffer is battery-backed; the FTL rebuilds its mapping
  /// from OOB metadata. Supported for the page-mapping and
  /// vision-append FTLs.
  Status PowerCycle();

 private:
  /// `root` = this device minted the request's span (no layer above is
  /// tracing), so it records the end-to-end kIo span; `submit_t` is when
  /// Submit() saw the request (kIo start, before admission cost).
  void SubmitPageOps(const std::shared_ptr<blocklayer::IoRequest>& req,
                     bool root, SimTime submit_t);

  /// Common admission path: validation, trace, then page-op fanout
  /// after controller_overhead_ns + admit_delay (the extra delay is the
  /// batched doorbell's per-command fetch offset).
  void Admit(blocklayer::IoRequest request, SimTime admit_delay);

  void ExecuteAtomicGroup(host::Command cmd);
  void ExecuteNamelessWrite(host::Command cmd);
  void ExecuteNamelessRead(host::Command cmd);
  void ExecuteNamelessFree(host::Command cmd);
  /// Lazily registers this device on its FTL's migration listener seam
  /// (first nameless write or handler install) and fans relocations out
  /// to the host handler.
  void EnsureMigrationListener();
  void OnPageFtlMigration(Lba lba, const flash::Ppa& old_ppa,
                          const flash::Ppa& new_ppa);

  bool Traced() const { return tracer_ != nullptr && tracer_->enabled(); }

  /// Shared ctor body (FTL, write buffer, metrics, trace track).
  void Init();

  sim::Simulator* sim_;
  ShardRouter* router_ = nullptr;  // non-null iff sharded mode
  Config config_;
  std::uint64_t epoch_ = 0;  // bumped by PowerCycle; drops stale events
  std::unique_ptr<Controller> controller_;
  std::unique_ptr<ftl::Ftl> ftl_;
  ftl::PageFtl* page_ftl_ = nullptr;      // borrowed view into ftl_
  ftl::AppendFtl* append_ftl_ = nullptr;  // borrowed view into ftl_
  std::unique_ptr<WriteBuffer> write_buffer_;

  Histogram read_latency_;
  Histogram write_latency_;
  Counters counters_;

  /// Per-software-queue completion counts (indexed by the submitting
  /// queue's IoCallback::queue_id; grows on demand). Deliberately not a
  /// Counters entry so default counter dumps are unchanged.
  std::vector<std::uint64_t> cq_posts_;

  /// Nameless vocabulary on the page-mapping FTL: the device *emulates*
  /// physical append by parking each nameless page in a hidden LBA slot
  /// (lowest-unused-first, recycled on free) and reporting the slot's
  /// current physical address as the name. name_to_slot_ resolves
  /// kNamelessRead/kNamelessFree and is rewritten when GC/WL moves a
  /// slot (the migration handler tells the host). The vision-append FTL
  /// needs none of this: names *are* physical there.
  Lba nameless_next_ = 0;
  std::deque<Lba> nameless_free_;
  std::map<std::uint64_t, Lba> name_to_slot_;
  std::map<Lba, std::uint64_t> slot_to_name_;
  bool migration_listener_registered_ = false;
  host::MigrationHandler migration_handler_;

  trace::Tracer* tracer_ = nullptr;  // == config_.tracer
  std::uint32_t dev_track_ = 0;      // "ssd-device" (host pid)

  // Pushed in parallel with counters_ ("requests"/"completions") so the
  // sampler's final row cross-checks against the device Counters.
  metrics::MetricRegistry* metrics_ = nullptr;  // == config_.metrics
  metrics::Id m_requests_ = metrics::kInvalidId;
  metrics::Id m_completions_ = metrics::kInvalidId;
  metrics::Id m_read_lat_ = metrics::kInvalidId;
  metrics::Id m_write_lat_ = metrics::kInvalidId;
};

/// Builds the FTL named by `config.ftl` over `controller`.
std::unique_ptr<ftl::Ftl> MakeFtl(Controller* controller);

}  // namespace postblock::ssd

#endif  // POSTBLOCK_SSD_DEVICE_H_
