#ifndef POSTBLOCK_SSD_CHANNEL_H_
#define POSTBLOCK_SSD_CHANNEL_H_

#include <cstdint>
#include <string>

#include "common/types.h"
#include "flash/timing.h"
#include "sim/inplace_callback.h"
#include "sim/resource.h"
#include "sim/simulator.h"

namespace postblock::ssd {

/// A flash channel: the shared command/data bus connecting the
/// controller to the LUNs of one channel. Transfers serialize here —
/// this is the resource that makes reads "channel-bound" in Figure 1.
class Channel {
 public:
  Channel(sim::Simulator* sim, std::uint32_t index,
          const flash::Timing& timing, std::uint32_t page_bytes);

  /// Occupies the bus for one page data transfer + command cycles, then
  /// runs `done`.
  void Transfer(sim::InplaceCallback done);

  /// Occupies the bus for command/address cycles only (erase dispatch).
  void Command(sim::InplaceCallback done);

  std::uint32_t index() const { return index_; }
  sim::Resource* resource() { return &bus_; }
  double Utilization() const { return bus_.Utilization(); }

 private:
  std::uint32_t index_;
  SimTime transfer_ns_;
  SimTime cmd_ns_;
  sim::Resource bus_;
};

}  // namespace postblock::ssd

#endif  // POSTBLOCK_SSD_CHANNEL_H_
