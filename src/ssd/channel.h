#ifndef POSTBLOCK_SSD_CHANNEL_H_
#define POSTBLOCK_SSD_CHANNEL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/types.h"
#include "flash/timing.h"
#include "sim/inplace_callback.h"
#include "sim/resource.h"
#include "sim/simulator.h"
#include "trace/trace.h"
#include "trace/tracer.h"

namespace postblock::ssd {

/// A flash channel: the shared command/data bus connecting the
/// controller to the LUNs of one channel. Transfers serialize here —
/// this is the resource that makes reads "channel-bound" in Figure 1.
///
/// Each timed bus use carries a trace::Ctx so bus occupancy lands on
/// the channel's trace track and bus waits can be split into plain
/// queueing vs GC-induced stall (a BusyClock integrates how long
/// GC-origin work held the bus; the overlap with a host op's wait is
/// exactly the GC share of its delay). The per-origin stall counters
/// are always on; event recording costs one predicted branch when the
/// tracer is off.
class Channel {
 public:
  Channel(sim::Simulator* sim, std::uint32_t index,
          const flash::Timing& timing, std::uint32_t page_bytes);

  /// Occupies the bus for one page data transfer + command cycles, then
  /// runs `done`.
  void Transfer(trace::Ctx ctx, sim::InplaceCallback done) {
    TimedUse(transfer_ns_, ctx, std::move(done));
  }
  void Transfer(sim::InplaceCallback done) {
    TimedUse(transfer_ns_, trace::Ctx{}, std::move(done));
  }

  /// Occupies the bus for command/address cycles only (erase dispatch).
  void Command(trace::Ctx ctx, sim::InplaceCallback done) {
    TimedUse(cmd_ns_, ctx, std::move(done));
  }
  void Command(sim::InplaceCallback done) {
    TimedUse(cmd_ns_, trace::Ctx{}, std::move(done));
  }

  std::uint32_t index() const { return index_; }
  sim::Resource* resource() { return &bus_; }
  double Utilization() const { return bus_.Utilization(); }

  /// Attaches the tracer and registers this channel's trace track.
  void set_tracer(trace::Tracer* tracer);

  /// Bus wait attributable to GC/WL bus occupancy, by victim origin.
  std::uint64_t gc_stall_read_ns() const { return gc_stall_read_ns_; }
  std::uint64_t gc_stall_write_ns() const { return gc_stall_write_ns_; }

  /// Cumulative bus time held by GC/WL-origin work as of `now`
  /// (BusyClock integral; safe to poll mid-run).
  std::uint64_t gc_busy_ns(SimTime now) const {
    return gc_busy_.Total(now);
  }

 private:
  /// Per-use state, pooled like Resource::UseOp so the scheduling
  /// lambdas capture one pointer and stay inline in the event queue.
  struct BusOp {
    Channel* ch = nullptr;
    SimTime duration = 0;
    SimTime wait_start = 0;
    std::uint64_t gc_mark = 0;
    trace::Ctx ctx;
    sim::InplaceCallback done;
  };

  /// Acquire the bus, hold for `duration`, release, run `done` — the
  /// exact event shape of Resource::UseFor (one grant handoff event per
  /// release, duration event capturing only the BusOp pointer), with
  /// attribution folded into the grant and completion.
  void TimedUse(SimTime duration, trace::Ctx ctx,
                sim::InplaceCallback done);
  void OnBusGrant(BusOp* op);
  void FinishBusOp(BusOp* op);
  BusOp* AcquireBusOp();
  void ReleaseBusOp(BusOp* op);

  std::uint32_t index_;
  SimTime transfer_ns_;
  SimTime cmd_ns_;
  sim::Simulator* sim_;
  sim::Resource bus_;

  trace::Tracer* tracer_ = nullptr;
  std::uint32_t track_ = 0;
  trace::BusyClock gc_busy_;
  std::uint64_t gc_stall_read_ns_ = 0;
  std::uint64_t gc_stall_write_ns_ = 0;

  std::vector<std::unique_ptr<BusOp>> bus_ops_;  // owns every BusOp
  std::vector<BusOp*> bus_op_free_;              // recycled records
};

}  // namespace postblock::ssd

#endif  // POSTBLOCK_SSD_CHANNEL_H_
