#include "ssd/config.h"

namespace postblock::ssd {

const char* FtlKindName(FtlKind kind) {
  switch (kind) {
    case FtlKind::kPageMap:
      return "page-map";
    case FtlKind::kBlockMap:
      return "block-map";
    case FtlKind::kHybrid:
      return "hybrid";
    case FtlKind::kDftl:
      return "dftl";
    case FtlKind::kVisionAppend:
      return "vision-append";
  }
  return "?";
}

const char* PlacementKindName(PlacementKind kind) {
  switch (kind) {
    case PlacementKind::kChannelStripe:
      return "channel-stripe";
    case PlacementKind::kLbaStatic:
      return "lba-static";
  }
  return "?";
}

const char* GcPolicyKindName(GcPolicyKind kind) {
  switch (kind) {
    case GcPolicyKind::kGreedy:
      return "greedy";
    case GcPolicyKind::kCostBenefit:
      return "cost-benefit";
  }
  return "?";
}

Config Config::Small() {
  Config c;
  c.geometry.channels = 2;
  c.geometry.luns_per_channel = 2;
  c.geometry.planes_per_lun = 1;
  c.geometry.blocks_per_plane = 32;
  c.geometry.pages_per_block = 16;
  c.geometry.page_size_bytes = 4096;
  return c;
}

Config Config::Consumer2012() {
  Config c;
  c.geometry.channels = 8;
  c.geometry.luns_per_channel = 4;
  c.geometry.planes_per_lun = 1;
  c.geometry.blocks_per_plane = 64;
  c.geometry.pages_per_block = 64;
  c.geometry.page_size_bytes = 4096;
  return c;
}

Config Config::SingleChip() {
  Config c;
  c.geometry.channels = 1;
  c.geometry.luns_per_channel = 1;
  c.geometry.planes_per_lun = 1;
  c.geometry.blocks_per_plane = 128;
  c.geometry.pages_per_block = 32;
  c.geometry.page_size_bytes = 4096;
  return c;
}

}  // namespace postblock::ssd
